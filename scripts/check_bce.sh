#!/bin/sh
# check_bce.sh — bounds-check-elimination regression lint for the kernel floor.
#
# Builds the hot-kernel packages with the SSA prover's check_bce debug pass
# and diffs the findings against the committed allowlist. Every entry in the
# allowlist is a KNOWN, amortized check: per-tile/per-row-block slice headers,
# per-stage factor loads, data-dependent gathers (Xmvp's v[i^mask]), panic
# guards — checks that execute once per block or launch, not once per element.
# The per-element inner loops of blocked.go / fwht.go / xmvp.go /
# veckernels.go are written in the slice-advance idiom (constant indexes on a
# shrinking slice), which the go1.24 prover discharges completely, so NO
# finding in this lint sits inside a hot element loop.
#
# A new finding means an edit re-introduced a bounds check — rewrite the loop
# (see DESIGN.md §5.6) or, if the check is genuinely amortized, regenerate
# the allowlist:
#
#   scripts/check_bce.sh -update
#
# Exit status: 0 clean, 1 findings differ from the allowlist.
set -eu

cd "$(dirname "$0")/.."

PKGS="./internal/mutation/ ./internal/vec/ ./internal/device/"
ALLOW=scripts/bce_allowlist.txt
GOFLAGS_BCE='-gcflags=-d=ssa/check_bce'

# -a defeats the build cache so the compiler actually re-emits diagnostics;
# sort -u makes the listing stable across compile orders.
current() {
	# shellcheck disable=SC2086
	go build -a $GOFLAGS_BCE $PKGS 2>&1 |
		grep -E 'Found (IsInBounds|IsSliceInBounds)' |
		sort -u
}

if [ "${1:-}" = "-update" ]; then
	current >"$ALLOW"
	echo "check_bce: wrote $(wc -l <"$ALLOW" | tr -d ' ') findings to $ALLOW"
	exit 0
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
current >"$tmp"

if cmp -s "$tmp" "$ALLOW"; then
	echo "check_bce: OK ($(wc -l <"$ALLOW" | tr -d ' ') allowlisted findings, none new)"
	exit 0
fi

echo "check_bce: bounds-check findings differ from $ALLOW" >&2
echo "unified diff, allowlist vs current findings ('+' = new check, '-' = stale entry):" >&2
diff -u --label "$ALLOW" --label "current findings" "$ALLOW" "$tmp" >&2 || true
echo "If every new finding is an amortized per-block check, run: scripts/check_bce.sh -update" >&2
exit 1
