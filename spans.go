package quasispecies

import (
	"io"
	"time"

	"repro/internal/hwc"
	"repro/internal/obs"
)

// Span profiling: a hierarchical wall-time profile of the solver's own
// structure. While a profile is running, every layer of the solver emits
// nested spans — facade solve → eigensolve → iteration phase (matvec,
// shift, rayleigh, residual, normalize) → kernel pass → stage group →
// device launch / queue wait — and the profile aggregates them into a
// per-phase time table and an exportable execution timeline.
//
// The hooks are nil by default: with no profile running the solver pays one
// atomic pointer load per instrumented scope, performs no timing calls,
// allocates nothing, and produces bit-identical numerics (enforced by the
// alloc/bit-identity tests in internal/core and internal/mutation).
//
// Usage:
//
//	prof := quasispecies.StartSpanProfile(0)
//	sol, err := model.Solve()
//	prof.Stop()
//	prof.WriteTable(os.Stderr)                  // per-phase self/total table
//	prof.WriteChromeTraceFile("spans.json")     // load in Perfetto
//
// When a Go execution trace is active (go test -trace, runtime/trace.Start),
// the same spans additionally appear as runtime/trace regions in the
// execution-trace timeline.

// PhaseTime is the aggregate of one span site: how often it ran, its summed
// wall time, and its self time (total minus time in nested child spans —
// the column that partitions wall time across the layers).
type PhaseTime struct {
	// Layer is the solver layer that emitted the span ("facade", "batch",
	// "core", "mutation", "device").
	Layer string
	// Name is the span site within the layer (e.g. "matvec", "stage_group").
	Name  string
	Count int64
	Total time.Duration
	Self  time.Duration

	// Hardware-counter attribution, populated only when the profile was
	// started with HWC enabled on a host with usable counters (see
	// SpanProfileOptions). HWCSamples counts the spans whose counter
	// deltas were attributed to this site; IPC is self instructions per
	// cycle; CacheMissRate is self cache-misses per cache-reference;
	// MissesPerOp / CyclesPerOp are count-normalized self values.
	HWCSamples    int64
	IPC           float64
	CacheMissRate float64
	MissesPerOp   float64
	CyclesPerOp   float64
}

// SpanProfile is a running or stopped span recording. Create with
// StartSpanProfile; safe for concurrent use (batched sweeps record from all
// workers into one profile).
type SpanProfile struct {
	p *obs.SpanProfiler
}

// SpanProfileOptions configures a span profile beyond the buffer bound.
type SpanProfileOptions struct {
	// MaxEvents bounds the buffered timeline events (≤ 0 selects the
	// default of ~1M); the aggregate table stays exact past the bound.
	MaxEvents int
	// HWC attaches the process-wide hardware-counter session
	// (perf_event_open counter groups: cycles, instructions, cache
	// references/misses, branch misses, plus QS_HWC_EVENTS extras), so
	// every phase additionally reports IPC and cache-miss attribution.
	// On hosts without usable counters (perf_event_paranoid denial, no
	// PMU, non-Linux) the profile degrades to wall-time-only and
	// HWCReason names the single cause; solver numerics are bit-identical
	// either way.
	HWC bool
}

// StartSpanProfile installs the process-wide span recorder and starts
// recording. maxEvents bounds the buffered timeline events (≤ 0 selects the
// default of ~1M); the aggregate table stays exact past the bound. Only one
// profile records at a time — starting a new one supersedes the previous.
func StartSpanProfile(maxEvents int) *SpanProfile {
	return StartSpanProfileOpts(SpanProfileOptions{MaxEvents: maxEvents})
}

// StartSpanProfileOpts is StartSpanProfile with options (hardware-counter
// attribution).
func StartSpanProfileOpts(opts SpanProfileOptions) *SpanProfile {
	if opts.HWC {
		return &SpanProfile{p: obs.StartSpanProfilerHWC(opts.MaxEvents)}
	}
	return &SpanProfile{p: obs.StartSpanProfiler(opts.MaxEvents)}
}

// HWCActive reports whether hardware counters are being attributed to
// this profile's phases.
func (sp *SpanProfile) HWCActive() bool { return sp.p.HWCActive() }

// HWCReason returns why hardware counters are unavailable when they were
// requested but could not be enabled ("" when active or never requested).
func (sp *SpanProfile) HWCReason() string { return sp.p.HWCReason() }

// HWCEventNames returns the live counter event names in column order.
func (sp *SpanProfile) HWCEventNames() []string { return sp.p.HWCEventNames() }

// HWCSamples returns how many spans had counter deltas attributed;
// HWCDropped how many were discarded (OS-thread migration mid-span).
func (sp *SpanProfile) HWCSamples() int64 { return sp.p.HWCSamples() }

// HWCDropped returns the count of spans whose counter deltas were
// discarded rather than misattributed.
func (sp *SpanProfile) HWCDropped() int64 { return sp.p.HWCDropped() }

// HWCAvailable reports whether hardware counters are usable on this host,
// with the degradation reason when they are not (perf_event_paranoid
// denial, no PMU, unsupported platform). Probing opens the process-wide
// counter session.
func HWCAvailable() (bool, string) { return hwc.Available() }

// ensureHWC upgrades the installed span profiler with the process-wide
// counter session (WithHWC / SweepOptions.HWC). Callers invoke it on
// their own goroutine before the instrumented work fans out, so the
// attach happens-before every span the work records.
func ensureHWC() {
	if p := obs.InstalledProfiler(); p != nil && !p.HWCActive() {
		p.AttachHWC(hwc.Shared())
	}
}

// Stop uninstalls the recorder and freezes the profile's wall clock. Safe
// to call more than once.
func (sp *SpanProfile) Stop() { sp.p.Stop() }

// Wall returns the profiled wall time (start to Stop, or to now while
// running).
func (sp *SpanProfile) Wall() time.Duration { return sp.p.Wall() }

// Dropped returns how many timeline events exceeded the buffer bound.
func (sp *SpanProfile) Dropped() int64 { return sp.p.Dropped() }

// Phases returns the per-site aggregates sorted by total time descending.
func (sp *SpanProfile) Phases() []PhaseTime {
	stats := sp.p.Stats()
	out := make([]PhaseTime, len(stats))
	for i, s := range stats {
		out[i] = PhaseTime{
			Layer: s.Layer, Name: s.Name, Count: s.Count, Total: s.Total, Self: s.Self,
			HWCSamples:    s.HWCSamples,
			IPC:           s.IPC(),
			CacheMissRate: s.CacheMissRate(),
			MissesPerOp:   s.MissesPerOp(),
			CyclesPerOp:   s.CyclesPerOp(),
		}
	}
	return out
}

// WriteTable writes the per-phase time table (count, total, self, avg per
// span site, wall-time footer) to w.
func (sp *SpanProfile) WriteTable(w io.Writer) error { return sp.p.WriteTable(w) }

// WriteChromeTrace writes the recorded timeline as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
func (sp *SpanProfile) WriteChromeTrace(w io.Writer) error { return sp.p.WriteChromeTrace(w) }

// WriteChromeTraceFile writes the Chrome trace-event JSON to path.
func (sp *SpanProfile) WriteChromeTraceFile(path string) error {
	return sp.p.WriteChromeTraceFile(path)
}
