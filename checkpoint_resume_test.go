package quasispecies

import (
	"path/filepath"
	"testing"
)

// TestCheckpointResumeBitIdentical is the resume-after-interrupt check: a
// sweep interrupted after point p₁ and resumed from its checkpoint file
// must produce exactly the solution the uninterrupted warm continuation
// would have — the checkpoint is binary float64, so WithStart from the
// loaded concentrations and WithStart from the in-memory ones are the
// same start vector bit for bit.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const nu = 10
	l, err := SinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	solveAt := func(p float64, opts ...Option) *Solution {
		t.Helper()
		mut, err := UniformMutation(nu, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(mut, l, append([]Option{WithMethod(MethodFmmp)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}

	// Point p₁, then "interrupt": checkpoint to disk.
	sol1 := solveAt(0.010)
	path := filepath.Join(t.TempDir(), "p1.qs")
	if err := sol1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSolutionFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The checkpoint must be lossless: same start vector bit for bit.
	if len(loaded.Concentrations) != len(sol1.Concentrations) {
		t.Fatalf("checkpoint lost concentrations: %d vs %d",
			len(loaded.Concentrations), len(sol1.Concentrations))
	}
	for i := range sol1.Concentrations {
		if loaded.Concentrations[i] != sol1.Concentrations[i] {
			t.Fatalf("checkpoint concentration %d drifted: %g vs %g",
				i, loaded.Concentrations[i], sol1.Concentrations[i])
		}
	}

	// Point p₂ both ways: resumed from the file vs continued in memory.
	resumed := solveAt(0.012, WithStart(loaded.Concentrations))
	continued := solveAt(0.012, WithStart(sol1.Concentrations))

	if resumed.Lambda != continued.Lambda {
		t.Fatalf("resumed λ %.17g != continued λ %.17g", resumed.Lambda, continued.Lambda)
	}
	if resumed.Iterations != continued.Iterations || resumed.Residual != continued.Residual {
		t.Fatalf("resumed (iters=%d, res=%g) != continued (iters=%d, res=%g)",
			resumed.Iterations, resumed.Residual, continued.Iterations, continued.Residual)
	}
	for i := range continued.Concentrations {
		if resumed.Concentrations[i] != continued.Concentrations[i] {
			t.Fatalf("concentration %d differs after resume: %g vs %g",
				i, resumed.Concentrations[i], continued.Concentrations[i])
		}
	}

	// The warm start must actually continue rather than restart: fewer
	// iterations than the cold solve of the same point.
	cold := solveAt(0.012)
	if resumed.Iterations >= cold.Iterations {
		t.Fatalf("warm resume took %d iterations, cold solve %d — start vector ignored",
			resumed.Iterations, cold.Iterations)
	}
	if resumed.Lambda == 0 || cold.Lambda == 0 {
		t.Fatal("degenerate solve in fixture")
	}
}

// TestWithStartValidation: bad start vectors are rejected at the right
// layer with the right error.
func TestWithStartValidation(t *testing.T) {
	l, err := SinglePeak(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := UniformMutation(8, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(mut, l, WithStart(nil)); err == nil {
		t.Fatal("WithStart(nil) accepted")
	}
	m, err := New(mut, l, WithMethod(MethodFmmp), WithStart(make([]float64, 7)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Solve(); err == nil {
		t.Fatal("length-mismatched start vector accepted at solve time")
	}
}
