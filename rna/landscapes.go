package rna

import (
	"fmt"

	"repro/internal/landscape"
)

// This file provides fitness-landscape constructors over the four-letter
// sequence space, expressed in nucleotide distance rather than bit
// distance.

// ClassLandscape returns the landscape fᵢ = ϕ(d_nt(i, 0)) over 4^L
// sequences from a table ϕ(0..L) — the four-letter analogue of the
// Hamming-distance landscapes of Section 5.1.
func ClassLandscape(l int, phi []float64) (landscape.Landscape, error) {
	if len(phi) != l+1 {
		return nil, fmt.Errorf("rna: ϕ table has %d entries, want %d", len(phi), l+1)
	}
	if l > 13 {
		return nil, fmt.Errorf("rna: explicit class landscape at L = %d would need 4^%d entries; "+
			"use SolveReduced for long chains", l, l)
	}
	n := 1 << (2 * uint(l))
	f := make([]float64, n)
	for i := range f {
		f[i] = phi[Hamming(uint64(i), 0, l)]
	}
	return landscape.NewVector(f)
}

// SinglePeakLandscape returns the four-letter single-peak landscape:
// the master sequence has fitness peak, everything else base.
func SinglePeakLandscape(l int, peak, base float64) (landscape.Landscape, error) {
	phi := make([]float64, l+1)
	phi[0] = peak
	for k := 1; k <= l; k++ {
		phi[k] = base
	}
	return ClassLandscape(l, phi)
}

// SolveAuto picks the best available strategy: the exact (L+1)×(L+1)
// reduction when the model qualifies, the full Fmmp solve when the state
// space is materializable, and ErrNotReducible otherwise.
func (m *Model) SolveAuto(opts SolveOptions) (*Solution, error) {
	if p, phi, ok := m.CanReduce(); ok {
		return SolveReduced(m.l, p, phi)
	}
	if m.Dim() <= 1<<26 {
		return m.Solve(opts)
	}
	return nil, fmt.Errorf("%w: L = %d, N = 4^%d", ErrNotReducible, m.l, m.l)
}
