package rna

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/landscape"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestEncodeLetters(t *testing.T) {
	seq, err := Encode("ACGU")
	if err != nil {
		t.Fatal(err)
	}
	// A=0 at bits 0-1, C=1 at bits 2-3, G=2 at bits 4-5, U=3 at bits 6-7.
	if seq != 0<<0|1<<2|2<<4|3<<6 {
		t.Errorf("Encode = %b", seq)
	}
	if Letters(seq, 4) != "ACGU" {
		t.Errorf("Letters = %s", Letters(seq, 4))
	}
	if _, err := Encode("ACGT"); err == nil {
		t.Error("T (DNA) must be rejected")
	}
	if _, err := Encode(string(make([]byte, 40))); err == nil {
		t.Error("over-long sequence must be rejected")
	}
}

func TestNucleotideHamming(t *testing.T) {
	a, _ := Encode("AAAA")
	b, _ := Encode("ACGU")
	if Hamming(a, b, 4) != 3 {
		t.Errorf("d(AAAA, ACGU) = %d, want 3", Hamming(a, b, 4))
	}
	if Hamming(a, a, 4) != 0 {
		t.Error("self-distance must be 0")
	}
	// Changing one nucleotide changes distance by exactly 1, even when
	// both bits of the code differ (e.g. A=00 → U=11).
	u, _ := Encode("UAAA")
	if Hamming(a, u, 4) != 1 {
		t.Errorf("d(AAAA, UAAA) = %d, want 1", Hamming(a, u, 4))
	}
}

func TestClassSizes(t *testing.T) {
	// Σ_k C(L,k)·3^k = 4^L.
	for l := 1; l <= 10; l++ {
		var sum float64
		for k := 0; k <= l; k++ {
			sum += ClassSize(l, k)
		}
		want := math.Pow(4, float64(l))
		if math.Abs(sum-want) > 1e-6*want {
			t.Errorf("L=%d: Σ|Γk| = %g, want %g", l, sum, want)
		}
	}
}

func TestSubstitutionModelsAreStochastic(t *testing.T) {
	jc, err := JukesCantor(0.05)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Kimura(0.03, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*dense.Matrix{"JC": jc, "K2P": k2} {
		for c, s := range m.ColumnSums() {
			if math.Abs(s-1) > 1e-14 {
				t.Errorf("%s column %d sums to %g", name, c, s)
			}
		}
	}
	// Kimura with α = β = p/3 degenerates to Jukes–Cantor.
	k2jc, _ := Kimura(0.05/3, 0.05/3)
	if vec.DistInf(k2jc.Data, jc.Data) > 1e-14 {
		t.Error("Kimura(p/3, p/3) must equal JukesCantor(p)")
	}
}

func TestSubstitutionValidation(t *testing.T) {
	if _, err := JukesCantor(0); err == nil {
		t.Error("p = 0 must be rejected")
	}
	if _, err := JukesCantor(0.8); err == nil {
		t.Error("p > 3/4 must be rejected")
	}
	if _, err := Kimura(0.5, 0.3); err == nil {
		t.Error("α + 2β ≥ 1 must be rejected")
	}
	if _, err := Kimura(0, 0.1); err == nil {
		t.Error("α = 0 must be rejected")
	}
}

func TestJukesCantorDetection(t *testing.T) {
	jc, _ := JukesCantor(0.06)
	land, _ := SinglePeakLandscape(3, 2, 1)
	m, err := New(3, jc, land)
	if err != nil {
		t.Fatal(err)
	}
	p, phi, ok := m.CanReduce()
	if !ok || math.Abs(p-0.06) > 1e-12 {
		t.Errorf("CanReduce = (%g, %v)", p, ok)
	}
	if phi[0] != 2 || phi[1] != 1 {
		t.Errorf("recovered ϕ = %v", phi)
	}
	k2, _ := Kimura(0.03, 0.01)
	m2, err := New(3, k2, land)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := m2.CanReduce(); ok {
		t.Error("Kimura model must not report Jukes–Cantor reducibility")
	}
}

func TestModelSolveMatchesDense(t *testing.T) {
	// Full grouped Fmmp solve vs explicit dense W on 4^3 = 64 states.
	const l = 3
	jc, _ := JukesCantor(0.05)
	r := rng.New(1)
	f := make([]float64, 64)
	for i := range f {
		f[i] = 0.5 + 2*r.Float64()
	}
	land, err := landscape.NewVector(f)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(l, jc, land)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(SolveOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}

	dw, err := core.NewDenseW(m.process, land, core.Right)
	if err != nil {
		t.Fatal(err)
	}
	wantLam, wantX, _, err := dense.Dominant(dw.M, &dense.DominantOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Lambda-wantLam) > 1e-9 {
		t.Errorf("λ = %.14g, want %.14g", sol.Lambda, wantLam)
	}
	if err := core.Concentrations(wantX); err != nil {
		t.Fatal(err)
	}
	if d := vec.DistInf(sol.Concentrations, wantX); d > 1e-8 {
		t.Errorf("eigenvector deviates by %g", d)
	}
}

func TestReducedQRowsStochastic(t *testing.T) {
	for _, l := range []int{1, 4, 10, 50, 200} {
		for _, p := range []float64{0.001, 0.05, 0.3, 0.75} {
			m, err := ReducedQ(l, p)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d <= l; d++ {
				if s := vec.Sum(m.Row(d)); math.Abs(s-1) > 1e-9 {
					t.Errorf("L=%d p=%g: row %d sums to %.12g", l, p, d, s)
				}
			}
		}
	}
}

func TestReducedQMatchesExplicitAggregation(t *testing.T) {
	// QΓ[d][k] must equal the dense class aggregation Σ_{j∈Γk} Q[rep_d][j].
	const l = 4
	const p = 0.07
	jc, _ := JukesCantor(p)
	land, _ := SinglePeakLandscape(l, 2, 1)
	m, _ := New(l, jc, land)
	q := m.process.Dense()
	red, err := ReducedQ(l, p)
	if err != nil {
		t.Fatal(err)
	}
	n := m.Dim()
	for d := 0; d <= l; d++ {
		// Representative: first d nucleotides mutated A→C.
		var rep uint64
		for k := 0; k < d; k++ {
			rep |= uint64(C) << (2 * uint(k))
		}
		for k := 0; k <= l; k++ {
			var want float64
			for j := 0; j < n; j++ {
				if Hamming(uint64(j), 0, l) == k {
					want += q.At(int(rep), j)
				}
			}
			if got := red.At(d, k); math.Abs(got-want) > 1e-12 {
				t.Fatalf("QΓ[%d][%d] = %.15g, want %.15g", d, k, got, want)
			}
		}
	}
}

func TestReducedQClassSymmetry(t *testing.T) {
	// |Γd|·QΓ[d][k] = |Γk|·QΓ[k][d] (detailed-balance of the symmetric Q).
	const l = 12
	const p = 0.04
	m, err := ReducedQ(l, p)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d <= l; d++ {
		for k := 0; k <= l; k++ {
			lhs := ClassSize(l, d) * m.At(d, k)
			rhs := ClassSize(l, k) * m.At(k, d)
			if math.Abs(lhs-rhs) > 1e-12*(lhs+rhs+1e-300) {
				t.Fatalf("symmetry violated at (%d,%d): %g vs %g", d, k, lhs, rhs)
			}
		}
	}
}

func TestReducedSolveMatchesFullSolve(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		l := 2 + int(r.Uint64n(3)) // L in [2,4] → N ≤ 256
		p := 0.01 + 0.2*r.Float64()
		phi := make([]float64, l+1)
		for k := range phi {
			phi[k] = 0.5 + 2*r.Float64()
		}
		jc, err := JukesCantor(p)
		if err != nil {
			return false
		}
		land, err := ClassLandscape(l, phi)
		if err != nil {
			return false
		}
		m, err := New(l, jc, land)
		if err != nil {
			return false
		}
		full, err := m.Solve(SolveOptions{Tol: 1e-13})
		if err != nil {
			return false
		}
		red, err := SolveReduced(l, p, phi)
		if err != nil {
			return false
		}
		if math.Abs(red.Lambda-full.Lambda) > 1e-8*(1+full.Lambda) {
			return false
		}
		for k := 0; k <= l; k++ {
			if math.Abs(red.Gamma[k]-full.Gamma[k]) > 1e-7 {
				return false
			}
		}
		return true
	}
	// Fixed generator: the property compares two iterative solves under
	// absolute tolerances, and rare time-seeded draws land near the
	// tolerance boundary; a pinned seed keeps the checked inputs (and the
	// pass/fail verdict) reproducible run to run.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRNAErrorThreshold(t *testing.T) {
	// The error threshold exists for four letters too: single peak with
	// σ = 2 at L = 50 collapses once p passes ≈ ln2/L·(correction).
	const l = 50
	phi := make([]float64, l+1)
	phi[0] = 2
	for k := 1; k <= l; k++ {
		phi[k] = 1
	}
	low, err := SolveReduced(l, 0.005, phi)
	if err != nil {
		t.Fatal(err)
	}
	if low.Gamma[0] < 0.3 {
		t.Errorf("ordered regime: [Γ0] = %g", low.Gamma[0])
	}
	high, err := SolveReduced(l, 0.08, phi)
	if err != nil {
		t.Fatal(err)
	}
	if high.Gamma[0] > 1e-6 {
		t.Errorf("random regime: [Γ0] = %g", high.Gamma[0])
	}
}

func TestSolveAuto(t *testing.T) {
	jc, _ := JukesCantor(0.04)
	land, _ := SinglePeakLandscape(4, 2, 1)
	m, _ := New(4, jc, land)
	sol, err := m.SolveAuto(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reduced {
		t.Error("JC + class landscape must auto-reduce")
	}
	// Kimura forces the full solve.
	k2, _ := Kimura(0.02, 0.01)
	m2, _ := New(4, k2, land)
	sol2, err := m2.SolveAuto(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Reduced {
		t.Error("Kimura model must not claim reduction")
	}
	if math.Abs(vec.Sum(sol2.Gamma)-1) > 1e-10 {
		t.Error("Γ must sum to 1")
	}
}

func TestPerPositionModel(t *testing.T) {
	// Heterogeneous positions: hypervariable site with 10× the error rate.
	const l = 3
	jcLow, _ := JukesCantor(0.01)
	jcHigh, _ := JukesCantor(0.1)
	land, _ := SinglePeakLandscape(l, 2, 1)
	m, err := NewPerPosition([]*dense.Matrix{jcLow, jcHigh, jcLow}, land)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// The hypervariable position (index 1) must carry more mutant mass:
	// compare single-mutant concentrations at position 1 vs position 0.
	c, _ := Encode("CAA")  // mutation at position 0
	c1, _ := Encode("ACA") // mutation at position 1
	if sol.Concentrations[c1] <= sol.Concentrations[c] {
		t.Errorf("hypervariable-site mutant %g should exceed stable-site mutant %g",
			sol.Concentrations[c1], sol.Concentrations[c])
	}
}

func TestModelValidation(t *testing.T) {
	jc, _ := JukesCantor(0.05)
	landWrong, _ := landscape.NewUniform(5, 1) // 2^5, not 4^L
	if _, err := New(3, jc, landWrong); err == nil {
		t.Error("landscape dimension mismatch must be rejected")
	}
	land, _ := SinglePeakLandscape(2, 2, 1)
	if _, err := New(0, jc, land); err == nil {
		t.Error("L = 0 must be rejected")
	}
	bad := dense.NewMatrix(3, 3)
	if _, err := NewPerPosition([]*dense.Matrix{bad, bad}, land); err == nil {
		t.Error("non-4×4 substitution must be rejected")
	}
	if _, err := SolveReduced(3, 0.05, []float64{1, 1}); err == nil {
		t.Error("ϕ length mismatch must be rejected")
	}
	if _, err := SolveReduced(3, 0.05, []float64{1, -1, 1, 1}); err == nil {
		t.Error("negative ϕ must be rejected")
	}
	if _, err := ClassLandscape(20, make([]float64, 21)); err == nil {
		t.Error("oversized explicit class landscape must be rejected")
	}
}

func TestUniformLimitFourLetters(t *testing.T) {
	// p = 3/4 is the four-letter random-replication limit: uniform
	// distribution regardless of fitness.
	const l = 3
	jc, _ := JukesCantor(0.75)
	land, _ := SinglePeakLandscape(l, 2, 1)
	m, _ := New(l, jc, land)
	sol, err := m.Solve(SolveOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 64
	for i, v := range sol.Concentrations {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("x[%d] = %g, want uniform %g", i, v, want)
		}
	}
}
