// Package rna extends the quasispecies solver from the paper's binary
// alphabet to the full four-letter RNA alphabet {A, C, G, U} — the
// extension Section 5.2 describes as "relatively easy" once mutation is
// expressed through Kronecker products: a sequence of L nucleotides is a
// group structure of L independent 4×4 column-stochastic factors (Eq. 11
// with gᵢ = 2), so the entire Fmmp machinery applies unchanged with
// N = 4^L states.
//
// Nucleotides are encoded in two bits each (A=0, C=1, G=2, U=3,
// nucleotide k in bits [2k, 2k+1]); distance is the nucleotide Hamming
// distance (number of differing positions), under which error class Γ_k
// has C(L,k)·3^k members.
//
// Substitution models provided: Jukes–Cantor (uniform), Kimura
// two-parameter (transitions A↔G, C↔U vs. transversions) and arbitrary
// column-stochastic matrices. For Jukes–Cantor with a nucleotide-class
// landscape the package also implements the four-letter analogue of the
// paper's Section 5.1 reduction: an exact (L+1)×(L+1) eigenproblem.
package rna

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// Nucleotide codes.
const (
	A = 0
	C = 1
	G = 2
	U = 3
)

// MaxLen is the largest nucleotide chain length for explicit state
// enumeration (2L bits must fit the index range).
const MaxLen = 31

// Letters renders a packed sequence as a string of nucleotide letters,
// position 0 first.
func Letters(seq uint64, l int) string {
	const alphabet = "ACGU"
	out := make([]byte, l)
	for k := 0; k < l; k++ {
		out[k] = alphabet[(seq>>(2*uint(k)))&3]
	}
	return string(out)
}

// Encode packs a nucleotide string (letters ACGU, case-sensitive) into an
// index.
func Encode(s string) (uint64, error) {
	if len(s) > MaxLen {
		return 0, fmt.Errorf("rna: sequence length %d exceeds %d", len(s), MaxLen)
	}
	var seq uint64
	for k := 0; k < len(s); k++ {
		var code uint64
		switch s[k] {
		case 'A':
			code = A
		case 'C':
			code = C
		case 'G':
			code = G
		case 'U':
			code = U
		default:
			return 0, fmt.Errorf("rna: invalid nucleotide %q at position %d", s[k], k)
		}
		seq |= code << (2 * uint(k))
	}
	return seq, nil
}

// Hamming returns the nucleotide Hamming distance between two packed
// sequences of length l: the number of positions whose 2-bit codes differ.
func Hamming(x, y uint64, l int) int {
	d := 0
	diff := x ^ y
	for k := 0; k < l; k++ {
		if diff&(3<<(2*uint(k))) != 0 {
			d++
		}
	}
	return d
}

// ClassSize returns |Γ_k| = C(L,k)·3^k, the number of sequences at
// nucleotide distance k from a fixed sequence.
func ClassSize(l, k int) float64 {
	return bits.BinomialFloat(l, k) * math.Pow(3, float64(k))
}

// ---------------------------------------------------------------------------
// Substitution models

// JukesCantor returns the 4×4 single-nucleotide substitution matrix with
// total error rate p: each of the three wrong letters is reached with
// probability p/3. Requires 0 < p ≤ 3/4 (p = 3/4 is the uniform limit).
func JukesCantor(p float64) (*dense.Matrix, error) {
	if !(p > 0 && p <= 0.75) {
		return nil, fmt.Errorf("rna: Jukes–Cantor rate p = %g outside (0, 3/4]", p)
	}
	m := dense.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				m.Set(i, j, 1-p)
			} else {
				m.Set(i, j, p/3)
			}
		}
	}
	return m, nil
}

// Kimura returns the Kimura two-parameter substitution matrix:
// transitions (A↔G and C↔U, i.e. within purines / within pyrimidines)
// occur with probability alpha, each of the two transversions with
// probability beta. Requires alpha, beta > 0 and alpha + 2·beta < 1.
func Kimura(alpha, beta float64) (*dense.Matrix, error) {
	if !(alpha > 0 && beta > 0 && alpha+2*beta < 1) {
		return nil, fmt.Errorf("rna: Kimura parameters α = %g, β = %g invalid", alpha, beta)
	}
	transition := map[[2]int]bool{{A, G}: true, {G, A}: true, {C, U}: true, {U, C}: true}
	m := dense.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			switch {
			case i == j:
				m.Set(i, j, 1-alpha-2*beta)
			case transition[[2]int{i, j}]:
				m.Set(i, j, alpha)
			default:
				m.Set(i, j, beta)
			}
		}
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// The RNA quasispecies model

// Model is a four-letter quasispecies problem: L nucleotides, a
// substitution matrix per position and a fitness landscape over the 4^L
// sequences.
type Model struct {
	l       int
	process *mutation.Process
	land    landscape.Landscape
	// jcRate is > 0 when every position uses the same Jukes–Cantor
	// matrix, enabling the exact class reduction.
	jcRate float64
}

// New builds a model with the same substitution matrix at every position.
func New(l int, substitution *dense.Matrix, land landscape.Landscape) (*Model, error) {
	if l < 1 || l > MaxLen {
		return nil, fmt.Errorf("rna: chain length %d outside [1, %d]", l, MaxLen)
	}
	if land.ChainLen() != 2*l {
		return nil, fmt.Errorf("rna: landscape covers 2^%d states, want 4^%d = 2^%d",
			land.ChainLen(), l, 2*l)
	}
	factors := make([]*dense.Matrix, l)
	for k := range factors {
		factors[k] = substitution
	}
	proc, err := mutation.NewGrouped(factors)
	if err != nil {
		return nil, err
	}
	m := &Model{l: l, process: proc, land: land}
	m.jcRate = jcRateOf(substitution)
	return m, nil
}

// NewPerPosition builds a model with an individual substitution matrix per
// nucleotide position.
func NewPerPosition(substitutions []*dense.Matrix, land landscape.Landscape) (*Model, error) {
	l := len(substitutions)
	if l < 1 || l > MaxLen {
		return nil, fmt.Errorf("rna: chain length %d outside [1, %d]", l, MaxLen)
	}
	if land.ChainLen() != 2*l {
		return nil, fmt.Errorf("rna: landscape covers 2^%d states, want 4^%d", land.ChainLen(), l)
	}
	for i, s := range substitutions {
		if s.Rows != 4 || s.Cols != 4 {
			return nil, fmt.Errorf("rna: substitution %d is %d×%d, want 4×4", i, s.Rows, s.Cols)
		}
	}
	proc, err := mutation.NewGrouped(substitutions)
	if err != nil {
		return nil, err
	}
	return &Model{l: l, process: proc, land: land}, nil
}

// jcRateOf returns p if m is a Jukes–Cantor matrix (within 1e-12), else 0.
func jcRateOf(m *dense.Matrix) float64 {
	if m.Rows != 4 || m.Cols != 4 {
		return 0
	}
	off := m.At(0, 1)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := off
			if i == j {
				want = 1 - 3*off
			}
			if math.Abs(m.At(i, j)-want) > 1e-12 {
				return 0
			}
		}
	}
	return 3 * off
}

// Len returns L, the nucleotide chain length.
func (m *Model) Len() int { return m.l }

// Dim returns 4^L.
func (m *Model) Dim() int { return m.process.Dim() }

// Solution is a solved RNA quasispecies.
type Solution struct {
	Lambda         float64
	Concentrations []float64 // Σ = 1; nil for reduced solves of long chains
	Gamma          []float64 // [Γ_0] … [Γ_L] by nucleotide distance
	Iterations     int
	Residual       float64
	Reduced        bool // solved via the (L+1)×(L+1) reduction
}

// SolveOptions configures Solve.
type SolveOptions struct {
	Tol     float64 // default: the problem's floating-point-floor tolerance
	MaxIter int     // default 500000
}

// Solve computes the quasispecies with power iteration on the grouped
// Fmmp operator (Θ(N·log₂N·…) with the 4×4 group factor).
func (m *Model) Solve(opts SolveOptions) (*Solution, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = core.DefaultTolerance(m.land)
	}
	op, err := core.NewFmmpOperator(m.process, m.land, core.Right, nil)
	if err != nil {
		return nil, err
	}
	res, err := core.PowerIteration(op, core.PowerOptions{
		Tol: tol, MaxIter: opts.MaxIter, Start: core.FitnessStart(m.land),
	})
	if err != nil {
		return nil, err
	}
	x := res.Vector
	if err := core.Concentrations(x); err != nil {
		return nil, err
	}
	gamma, err := m.ClassConcentrations(x)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Lambda: res.Lambda, Concentrations: x, Gamma: gamma,
		Iterations: res.Iterations, Residual: res.Residual,
	}, nil
}

// ClassConcentrations accumulates a concentration vector into the L+1
// nucleotide-distance error classes around the master sequence.
func (m *Model) ClassConcentrations(x []float64) ([]float64, error) {
	if len(x) != m.Dim() {
		return nil, fmt.Errorf("rna: vector length %d, want %d", len(x), m.Dim())
	}
	gamma := make([]float64, m.l+1)
	for i, v := range x {
		gamma[Hamming(uint64(i), 0, m.l)] += v
	}
	return gamma, nil
}

// ---------------------------------------------------------------------------
// Exact class reduction for Jukes–Cantor models (four-letter Section 5.1)

// ReducedQ returns the (L+1)×(L+1) reduced mutation matrix for the
// Jukes–Cantor model: entry (d, k) is the probability that a fixed
// sequence at nucleotide distance d from the master mutates into any
// sequence at distance k. The closed form sums over b corrected positions:
//
//	QΓ[d][k] = Σ_b C(d,b)·(p/3)^b·(1−p/3)^(d−b)
//	              · C(L−d, k−d+b)·p^(k−d+b)·(1−p)^(L−k−b),
//
// where a correct position goes wrong with probability p (three wrong
// letters) and a wrong position becomes correct with probability p/3
// (stays wrong — same or different letter — with 1−p/3).
func ReducedQ(l int, p float64) (*dense.Matrix, error) {
	if l < 1 {
		return nil, fmt.Errorf("rna: chain length %d must be positive", l)
	}
	if !(p > 0 && p <= 0.75) {
		return nil, fmt.Errorf("rna: Jukes–Cantor rate p = %g outside (0, 3/4]", p)
	}
	m := dense.NewMatrix(l+1, l+1)
	for d := 0; d <= l; d++ {
		for k := 0; k <= l; k++ {
			var sum float64
			for b := 0; b <= d; b++ {
				a := k - d + b // newly wrong positions among the L−d correct ones
				if a < 0 || a > l-d {
					continue
				}
				term := bits.BinomialFloat(d, b) * math.Pow(p/3, float64(b)) *
					math.Pow(1-p/3, float64(d-b)) *
					bits.BinomialFloat(l-d, a) * math.Pow(p, float64(a)) *
					math.Pow(1-p, float64(l-d-a))
				sum += term
			}
			m.Set(d, k, sum)
		}
	}
	return m, nil
}

// SolveReduced solves a Jukes–Cantor model with a nucleotide-class
// landscape ϕ(0..L) through the exact (L+1)×(L+1) reduction, exactly as
// Section 5.1 does for the binary alphabet. As in the binary case the
// solve runs in class-total coordinates (similarity transform by
// diag(|Γ_k|)), so the returned Gamma is well-scaled at any chain length.
func SolveReduced(l int, p float64, phi []float64) (*Solution, error) {
	if len(phi) != l+1 {
		return nil, fmt.Errorf("rna: ϕ table has %d entries, want %d", len(phi), l+1)
	}
	for k, v := range phi {
		if v <= 0 {
			return nil, fmt.Errorf("rna: ϕ(%d) = %g must be positive", k, v)
		}
	}
	qg, err := ReducedQ(l, p)
	if err != nil {
		return nil, err
	}
	// Class-total coordinates: M = QΓᵀ·diag(ϕ) by the symmetry
	// |Γ_d|·QΓ[d][k] = |Γ_k|·QΓ[k][d].
	m := qg.Transpose()
	m.ScaleColumns(phi)
	start := make([]float64, l+1)
	vec.Fill(start, 1/float64(l+1))
	lam, u, iters, err := dense.Dominant(m, &dense.DominantOptions{
		Tol: 1e-14, MaxIter: 5000000, Start: start,
	})
	if err != nil {
		return nil, fmt.Errorf("rna: reduced eigensolve failed: %w", err)
	}
	for i, v := range u {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("rna: reduced eigenvector entry %d = %g negative", i, v)
			}
			u[i] = 0
		}
	}
	vec.Normalize1(u)
	return &Solution{Lambda: lam, Gamma: u, Iterations: iters, Reduced: true}, nil
}

// CanReduce reports whether the model qualifies for SolveReduced (uniform
// Jukes–Cantor process and nucleotide-class landscape) and returns its
// parameters when it does.
func (m *Model) CanReduce() (p float64, phi []float64, ok bool) {
	if m.jcRate == 0 {
		return 0, nil, false
	}
	phi = make([]float64, m.l+1)
	seen := make([]bool, m.l+1)
	for i := 0; i < m.Dim(); i++ {
		k := Hamming(uint64(i), 0, m.l)
		f := m.land.At(uint64(i))
		if !seen[k] {
			phi[k], seen[k] = f, true
		} else if phi[k] != f {
			return 0, nil, false
		}
	}
	return m.jcRate, phi, true
}

// ErrNotReducible is returned by Model.SolveAuto when no reduction exists
// and the full space is too large.
var ErrNotReducible = errors.New("rna: model not reducible and too large for a full solve")
