package quasispecies

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// solveProfiled runs one Pi(Fmmp) solve under a fresh span profile and
// returns the stopped profile.
func solveProfiled(t *testing.T, nu int, workers int) *SpanProfile {
	t.Helper()
	mut, err := UniformMutation(nu, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	land, err := SinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(mut, land, WithMethod(MethodFmmp), WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	prof := StartSpanProfile(0)
	defer prof.Stop()
	if _, err := model.Solve(); err != nil {
		t.Fatal(err)
	}
	prof.Stop()
	return prof
}

func phase(phases []PhaseTime, layer, name string) (PhaseTime, bool) {
	for _, p := range phases {
		if p.Layer == layer && p.Name == name {
			return p, true
		}
	}
	return PhaseTime{}, false
}

func TestSpanProfileCoversSolve(t *testing.T) {
	// ν large enough that per-iteration compute dominates the fixed
	// Begin/End bookkeeping of ~4 phase spans per iteration: with the
	// AVX2 kernel floor a ν=12 matvec is sub-microsecond, which pushed
	// instrumentation overhead past the coverage bar below.
	prof := solveProfiled(t, 15, 1)
	phases := prof.Phases()

	facade, ok := phase(phases, "facade", "solve")
	if !ok {
		t.Fatalf("no facade solve span; phases: %+v", phases)
	}
	power, ok := phase(phases, "core", "power")
	if !ok {
		t.Fatalf("no core power span; phases: %+v", phases)
	}
	if _, ok := phase(phases, "mutation", "apply"); !ok {
		t.Errorf("no mutation apply span; phases: %+v", phases)
	}

	// The iteration phases partition the loop body: their totals are
	// nested inside the power span, so they can never exceed it, and
	// together they account for nearly all of it.
	var phaseSum time.Duration
	for _, name := range []string{"matvec", "shift", "rayleigh", "residual", "normalize"} {
		p, ok := phase(phases, "core", name)
		if !ok {
			t.Fatalf("no core %s span; phases: %+v", name, phases)
		}
		if p.Count == 0 || p.Total <= 0 {
			t.Errorf("core %s: count=%d total=%v", name, p.Count, p.Total)
		}
		phaseSum += p.Total
	}
	if phaseSum > power.Total {
		t.Errorf("iteration phases sum to %v > power span %v", phaseSum, power.Total)
	}
	if phaseSum < power.Total/2 {
		t.Errorf("iteration phases sum to %v, less than half the power span %v", phaseSum, power.Total)
	}
	if power.Total > facade.Total {
		t.Errorf("power span %v exceeds facade solve span %v", power.Total, facade.Total)
	}
	// The profile starts immediately before Solve, so the facade span
	// accounts for (nearly) the whole recording: within 5% of wall time.
	wall := prof.Wall()
	if facade.Total > wall {
		t.Errorf("facade span %v exceeds wall %v", facade.Total, wall)
	}
	if facade.Total < wall-wall/20 {
		t.Errorf("facade span %v covers less than 95%% of wall %v", facade.Total, wall)
	}
}

func TestSpanProfileChromeExport(t *testing.T) {
	prof := solveProfiled(t, 10, 2)
	var buf bytes.Buffer
	if err := prof.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	cats := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID == 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		cats[ev.Cat] = true
	}
	// A worker-pool solve reaches every instrumented layer except batch.
	for _, want := range []string{"facade", "core", "mutation", "device"} {
		if !cats[want] {
			t.Errorf("no %s-layer events in export (cats: %v)", want, cats)
		}
	}
	var table bytes.Buffer
	if err := prof.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if table.Len() == 0 {
		t.Error("empty span table")
	}
}

// Solves with and without the profiler installed must be bit-identical:
// span recording is passive observation.
func TestSpanProfileBitIdentical(t *testing.T) {
	run := func(profiled bool) *Solution {
		mut, _ := UniformMutation(10, 0.05)
		land, _ := SinglePeak(10, 2, 1)
		model, err := New(mut, land, WithMethod(MethodFmmp))
		if err != nil {
			t.Fatal(err)
		}
		if profiled {
			prof := StartSpanProfile(0)
			defer prof.Stop()
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	bare := run(false)
	prof := run(true)
	if bare.Lambda != prof.Lambda || bare.Iterations != prof.Iterations || bare.Residual != prof.Residual {
		t.Fatalf("profiled solve diverged: λ %v vs %v, iters %d vs %d, residual %v vs %v",
			bare.Lambda, prof.Lambda, bare.Iterations, prof.Iterations, bare.Residual, prof.Residual)
	}
	for i := range bare.Concentrations {
		if bare.Concentrations[i] != prof.Concentrations[i] {
			t.Fatalf("concentration %d differs: %v vs %v", i, bare.Concentrations[i], prof.Concentrations[i])
		}
	}
}

// TestHWCProfileBitIdenticalAndDegrades covers the -hwc acceptance
// contract at the facade: a counter-attributed solve is bit-identical to
// a plain profiled solve, and on hosts without usable counters the
// profile degrades to wall-time-only with a single reason.
func TestHWCProfileBitIdenticalAndDegrades(t *testing.T) {
	run := func(hwcOn bool) (*Solution, *SpanProfile) {
		mut, _ := UniformMutation(10, 0.05)
		land, _ := SinglePeak(10, 2, 1)
		model, err := New(mut, land, WithMethod(MethodFmmp), WithHWC(hwcOn))
		if err != nil {
			t.Fatal(err)
		}
		prof := StartSpanProfileOpts(SpanProfileOptions{HWC: hwcOn})
		sol, err := model.Solve()
		prof.Stop()
		if err != nil {
			t.Fatal(err)
		}
		return sol, prof
	}
	plain, _ := run(false)
	counted, prof := run(true)
	if plain.Lambda != counted.Lambda || plain.Iterations != counted.Iterations || plain.Residual != counted.Residual {
		t.Fatalf("hwc solve diverged: λ %v vs %v, iters %d vs %d, residual %v vs %v",
			plain.Lambda, counted.Lambda, plain.Iterations, counted.Iterations, plain.Residual, counted.Residual)
	}
	for i := range plain.Concentrations {
		if plain.Concentrations[i] != counted.Concentrations[i] {
			t.Fatalf("concentration %d differs: %v vs %v", i, plain.Concentrations[i], counted.Concentrations[i])
		}
	}

	ok, reason := HWCAvailable()
	if prof.HWCActive() != ok {
		t.Fatalf("profile HWCActive=%v but HWCAvailable=%v (%s)", prof.HWCActive(), ok, reason)
	}
	if !ok {
		if prof.HWCReason() == "" {
			t.Error("degraded profile reports no reason")
		}
		t.Logf("degraded host: %s", prof.HWCReason())
		return
	}
	// Live counters: the hot phases carry IPC once at least one span was
	// attributed on a stable thread.
	if prof.HWCSamples() == 0 {
		t.Skip("all spans migrated threads; nothing attributed this run")
	}
	if p, found := phase(prof.Phases(), "core", "matvec"); found && p.HWCSamples > 0 {
		if p.IPC <= 0 || p.IPC > 16 {
			t.Errorf("matvec IPC = %g, outside plausible range", p.IPC)
		}
	}
}

// TestSweepHWCOptionIsPassive checks SweepOptions.HWC changes no numbers:
// a full-space sweep with the option set matches one without, point for
// point, bit for bit.
func TestSweepHWCOptionIsPassive(t *testing.T) {
	land, err := SinglePeak(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0.01, 0.03, 0.05}
	run := func(hwcOn bool) []ThresholdPoint {
		prof := StartSpanProfileOpts(SpanProfileOptions{HWC: false})
		defer prof.Stop()
		pts, err := ThresholdCurveFullWith(land, ps, SweepOptions{HWC: hwcOn, WarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	plain := run(false)
	counted := run(true)
	for i := range plain {
		if plain[i].P != counted[i].P {
			t.Fatalf("point %d p differs", i)
		}
		for k := range plain[i].Gamma {
			if plain[i].Gamma[k] != counted[i].Gamma[k] {
				t.Fatalf("point %d Γ_%d differs: %v vs %v", i, k, plain[i].Gamma[k], counted[i].Gamma[k])
			}
		}
	}
}
