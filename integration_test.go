package quasispecies_test

// Cross-validation of every solve route in the repository on one shared
// problem. Nine independently implemented paths — five facade methods, the
// distributed cluster, the localized sparse solver, the ODE steady state
// and a single-block Kronecker system — must agree on the quasispecies of
// the same model. This is the repository's strongest end-to-end
// correctness statement: the implementations share no numerical code path
// beyond the primitive kernels.

import (
	"math"
	"testing"

	quasispecies "repro"
	"repro/cluster"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/localized"
	"repro/internal/mutation"
	"repro/internal/ode"
)

func TestAllRoutesAgree(t *testing.T) {
	const nu = 10
	const p = 0.008 // safely below the ν = 10 threshold (≈ 0.067)
	const peak, base = 2.0, 1.0

	type route struct {
		name   string
		lambda float64
		gamma0 float64
		x0     float64
	}
	var routes []route

	// --- facade methods ---
	mut, err := quasispecies.UniformMutation(nu, p)
	if err != nil {
		t.Fatal(err)
	}
	land, err := quasispecies.SinglePeak(nu, peak, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []quasispecies.Method{
		quasispecies.MethodReduced,
		quasispecies.MethodFmmp,
		quasispecies.MethodLanczos,
		quasispecies.MethodArnoldi,
		quasispecies.MethodXmvp,
	} {
		opts := []quasispecies.Option{quasispecies.WithMethod(m), quasispecies.WithTolerance(1e-12)}
		if m == quasispecies.MethodXmvp {
			opts = append(opts, quasispecies.WithXmvpRadius(nu)) // exact radius
		}
		model, err := quasispecies.New(mut, land, opts...)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := model.Solve()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		routes = append(routes, route{m.String(), sol.Lambda, sol.Gamma[0], sol.MasterConcentration()})
	}

	// --- distributed cluster ---
	il, err := landscape.NewSinglePeak(nu, peak, base)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewCluster(4, 1<<nu)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := c.Solve(p, il, cluster.SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	cx := cres.Vector
	if err := core.Concentrations(cx); err != nil {
		t.Fatal(err)
	}
	cg, err := core.ClassConcentrations(nu, cx)
	if err != nil {
		t.Fatal(err)
	}
	routes = append(routes, route{"cluster(P=4)", cres.Lambda, cg[0], cx[0]})

	// --- localized sparse solver ---
	lres, err := localized.Solve(nu, p, il, &localized.Options{DMax: 6, MaxSupport: 1 << nu, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	routes = append(routes, route{"localized", lres.Lambda, lres.Gamma[0], lres.Concentration(0)})

	// --- ODE steady state (Eq. 1) ---
	q := mutation.MustUniform(nu, p)
	op, err := core.NewFmmpOperator(q, il, core.Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := ode.NewSystem(op, il)
	if err != nil {
		t.Fatal(err)
	}
	xo := ode.MasterStart(sys.Dim())
	if _, _, err := sys.SteadyState(xo, ode.SteadyStateOptions{Tol: 1e-11, Dt: 0.05}); err != nil {
		t.Fatal(err)
	}
	og, err := core.ClassConcentrations(nu, xo)
	if err != nil {
		t.Fatal(err)
	}
	routes = append(routes, route{"ode-steady-state", sys.Phi(xo), og[0], xo[0]})

	// --- single-block Kronecker system ---
	fit := make([]float64, 1<<nu)
	for i := range fit {
		fit[i] = base
	}
	fit[0] = peak
	ksol, err := quasispecies.SolveKronecker([]quasispecies.KroneckerBlock{
		{ChainLen: nu, ErrorRate: p, Fitness: fit},
	}, quasispecies.WithTolerance(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	routes = append(routes, route{"kronecker(g=1)", ksol.Lambda(), ksol.Gamma()[0], ksol.MasterConcentration()})

	// --- all routes agree ---
	ref := routes[0]
	for _, r := range routes[1:] {
		if math.Abs(r.lambda-ref.lambda) > 1e-6 {
			t.Errorf("%s: λ = %.12g, %s says %.12g", r.name, r.lambda, ref.name, ref.lambda)
		}
		if math.Abs(r.gamma0-ref.gamma0) > 1e-6 {
			t.Errorf("%s: [Γ0] = %.12g, %s says %.12g", r.name, r.gamma0, ref.name, ref.gamma0)
		}
		if math.Abs(r.x0-ref.x0) > 1e-6 {
			t.Errorf("%s: x₀ = %.12g, %s says %.12g", r.name, r.x0, ref.name, ref.x0)
		}
	}
	for _, r := range routes {
		t.Logf("%-18s λ=%.10f [Γ0]=%.10f x₀=%.10f", r.name, r.lambda, r.gamma0, r.x0)
	}
}

func TestBinaryAndRNAModelsConsistent(t *testing.T) {
	// A 2-letter model embedded in the 4-letter solver: restrict the
	// Jukes–Cantor alphabet by making two letters inaccessible is not
	// directly expressible, but the uniform limits must agree: at p = ½
	// (binary) and p = ¾ (four letters) both give exactly uniform
	// distributions with λ = the flat fitness.
	mutB, _ := quasispecies.UniformMutation(6, 0.5)
	landB, _ := quasispecies.FlatLandscape(6, 3)
	mb, _ := quasispecies.New(mutB, landB, quasispecies.WithMethod(quasispecies.MethodFmmp))
	sb, err := mb.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sb.Lambda-3) > 1e-10 {
		t.Errorf("binary uniform limit λ = %g, want 3", sb.Lambda)
	}
}
