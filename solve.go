package quasispecies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/errorclass"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/span"
	"repro/internal/vec"
)

// Method selects the solver backend.
type Method int

const (
	// MethodAuto picks the exact error-class reduction when the landscape
	// permits it, Pi(Fmmp) otherwise.
	MethodAuto Method = iota
	// MethodFmmp is the paper's fast solver: power iteration on the
	// Θ(N·log₂N) implicit product.
	MethodFmmp
	// MethodLanczos is restarted Lanczos on the symmetric formulation
	// F^½QF^½ — fewer matrix products near the error threshold, at the
	// cost of storing a Krylov basis.
	MethodLanczos
	// MethodXmvp is the sparsified XOR-based baseline of the authors'
	// earlier work; accuracy is bounded by the truncation radius.
	MethodXmvp
	// MethodReduced forces the exact (ν+1)×(ν+1) error-class reduction
	// (fails for landscapes without class structure).
	MethodReduced
	// MethodArnoldi is restarted Arnoldi iteration on Q·F — the Krylov
	// solver that remains applicable when generalized (asymmetric)
	// mutation makes W non-symmetrizable and Lanczos unusable.
	MethodArnoldi
)

func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodFmmp:
		return "Pi(Fmmp)"
	case MethodLanczos:
		return "Lanczos(Fmmp)"
	case MethodXmvp:
		return "Pi(Xmvp)"
	case MethodReduced:
		return "reduced"
	case MethodArnoldi:
		return "Arnoldi(Fmmp)"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Model is a configured quasispecies problem ready to solve. Create with
// New; a Model is safe for repeated Solve calls but not for concurrent use.
type Model struct {
	mut  Mutation
	land Landscape

	method     Method
	tol        float64
	tolSet     bool
	maxIter    int
	useShift   bool
	workers    int
	xmvpRadius int
	start      []float64
	observer   SolveObserver
	hwc        bool
	dev        *device.Device

	// Operator cache: the Fmmp operators (and their landscape diagonals)
	// are immutable once built, so repeated Solve/Residual calls on the
	// same Model reuse them instead of re-materializing Θ(N) diagonals.
	opRight *core.FmmpOperator
	opSym   *core.FmmpOperator
	// residScratch backs Residual's product vector across calls.
	residScratch []float64
}

// fmmpOperator returns the cached Fmmp operator for the formulation,
// building it on first use.
func (mo *Model) fmmpOperator(form core.Formulation) (*core.FmmpOperator, error) {
	switch form {
	case core.Right:
		if mo.opRight == nil {
			op, err := core.NewFmmpOperator(mo.mut.q, mo.land.l, core.Right, mo.dev)
			if err != nil {
				return nil, err
			}
			mo.opRight = op
		}
		return mo.opRight, nil
	case core.Symmetric:
		if mo.opSym == nil {
			op, err := core.NewFmmpOperator(mo.mut.q, mo.land.l, core.Symmetric, mo.dev)
			if err != nil {
				return nil, err
			}
			mo.opSym = op
		}
		return mo.opSym, nil
	default:
		return nil, fmt.Errorf("%w: no cached operator for formulation %d", ErrInvalidModel, int(form))
	}
}

// Option configures a Model.
type Option func(*Model) error

// WithMethod selects the solver backend (default MethodAuto).
func WithMethod(m Method) Option {
	return func(mo *Model) error {
		if m < MethodAuto || m > MethodArnoldi {
			return fmt.Errorf("quasispecies: unknown method %d", int(m))
		}
		mo.method = m
		return nil
	}
}

// WithTolerance sets the residual threshold τ on ‖W·x − λ·x‖₂. The
// default adapts to the problem's floating-point floor,
// max(1e−12, 64·ε·f_max·√N), so large chain lengths do not request an
// unattainable residual.
func WithTolerance(tol float64) Option {
	return func(mo *Model) error {
		if tol <= 0 {
			return fmt.Errorf("quasispecies: tolerance %g must be positive", tol)
		}
		mo.tol = tol
		mo.tolSet = true
		return nil
	}
}

// WithMaxIterations caps the iteration count (default 500000).
func WithMaxIterations(n int) Option {
	return func(mo *Model) error {
		if n <= 0 {
			return fmt.Errorf("quasispecies: max iterations %d must be positive", n)
		}
		mo.maxIter = n
		return nil
	}
}

// WithShift toggles the conservative convergence shift
// µ = (1−2p)^ν·f_min (default on; ignored for non-uniform processes).
func WithShift(enabled bool) Option {
	return func(mo *Model) error {
		mo.useShift = enabled
		return nil
	}
}

// WithWorkers runs the solver's kernels on a pool of n worker goroutines
// (the paper's GPU analogue); n <= 0 selects all available cores, n == 1
// is serial (default).
func WithWorkers(n int) Option {
	return func(mo *Model) error {
		mo.workers = n
		return nil
	}
}

// WithXmvpRadius sets the truncation radius dmax for MethodXmvp
// (default 5, the paper's ≈1e-10-accuracy setting).
func WithXmvpRadius(dmax int) Option {
	return func(mo *Model) error {
		if dmax < 1 {
			return fmt.Errorf("quasispecies: Xmvp radius %d must be ≥ 1", dmax)
		}
		mo.xmvpRadius = dmax
		return nil
	}
}

// WithStart seeds the iterative solvers with the given concentration
// vector (length 2^ν, Right-form) instead of the fitness start — e.g. the
// Concentrations of a checkpointed Solution, so an interrupted sweep
// resumes where it stopped. The slice is copied at solve time and never
// mutated; formulations other than Right (MethodLanczos) convert the copy.
// The reduced method, which is direct, ignores it.
func WithStart(x []float64) Option {
	return func(mo *Model) error {
		if len(x) == 0 {
			return fmt.Errorf("quasispecies: start vector must be non-empty")
		}
		mo.start = x
		return nil
	}
}

// SolveObserver receives the convergence trace of a power-method solve:
// Step after every residual check and Event at lifecycle transitions
// ("start", "converged", "stagnated", …). obs.Trace recorders satisfy it;
// so does core.Observer, which it mirrors. Krylov and reduced backends do
// not report traces and ignore the observer.
type SolveObserver interface {
	Step(iter int, lambda, residual float64)
	Event(event string, iter int, lambda, residual float64)
}

// WithObserver attaches a convergence-trace observer to the model's solves
// (see SolveObserver). Observing is passive: results are bit-identical
// with and without an observer.
func WithObserver(o SolveObserver) Option {
	return func(mo *Model) error {
		mo.observer = o
		return nil
	}
}

// WithHWC enables hardware-counter attribution for the model's solves:
// when a span profile is recording, Solve attaches the process-wide
// perf_event_open counter session to it (see SpanProfileOptions.HWC), so
// the per-phase table gains IPC and cache-miss columns. On hosts without
// usable counters this is a documented no-op (HWCReason on the profile
// names the cause) and solver numerics are bit-identical either way.
func WithHWC(enabled bool) Option {
	return func(mo *Model) error {
		mo.hwc = enabled
		return nil
	}
}

// New assembles a model from a mutation process and a fitness landscape
// of the same chain length.
func New(m Mutation, l Landscape, opts ...Option) (*Model, error) {
	if !m.valid() || !l.valid() {
		return nil, fmt.Errorf("%w: use the package constructors for Mutation and Landscape", ErrInvalidModel)
	}
	if m.ChainLen() != l.ChainLen() {
		return nil, fmt.Errorf("%w: mutation ν = %d but landscape ν = %d",
			ErrInvalidModel, m.ChainLen(), l.ChainLen())
	}
	mo := &Model{
		mut: m, land: l,
		method: MethodAuto, tol: 1e-12, maxIter: 500000,
		useShift: true, workers: 1, xmvpRadius: 5,
	}
	for _, o := range opts {
		if err := o(mo); err != nil {
			return nil, err
		}
	}
	if mo.workers != 1 {
		mo.dev = device.New(mo.workers)
	}
	return mo, nil
}

// ChainLen returns ν.
func (mo *Model) ChainLen() int { return mo.mut.ChainLen() }

// Dim returns N = 2^ν.
func (mo *Model) Dim() int { return mo.mut.q.Dim() }

// Solution is a solved quasispecies.
type Solution struct {
	// Lambda is the dominant eigenvalue of W = Q·F — the mean fitness of
	// the stationary population.
	Lambda float64
	// Concentrations holds the relative concentration xᵢ of every
	// sequence, Σxᵢ = 1. Nil when the reduced method solved a chain too
	// long to materialize; Gamma is always populated.
	Concentrations []float64
	// Gamma holds the cumulative error-class concentrations
	// [Γ_0] … [Γ_ν] around the master sequence (the Figure 1 curves).
	Gamma []float64
	// Iterations used by the underlying eigensolver.
	Iterations int
	// Residual is the final ‖W·x − λ·x‖₂ (0 reported by the reduced
	// method, which is exact to dense-solver precision).
	Residual float64
	// Method that produced the solution.
	Method Method
}

// MasterConcentration returns x₀, the stationary concentration of the
// error-free master sequence.
func (s *Solution) MasterConcentration() float64 {
	if s.Concentrations != nil {
		return s.Concentrations[0]
	}
	return s.Gamma[0] // Γ₀ = {master} alone
}

// Solve computes the quasispecies distribution.
func (mo *Model) Solve() (*Solution, error) {
	// The facade span brackets everything a solve does — operator build,
	// eigensolve, concentration post-processing — so the per-phase table
	// accounts setup time that the core-layer solve span cannot see.
	if mo.hwc {
		ensureHWC()
	}
	sp := span.Begin(span.LayerFacade, "solve")
	sol, err := mo.solve()
	span.End(sp, int64(mo.Dim()), 0)
	return sol, err
}

func (mo *Model) solve() (*Solution, error) {
	method := mo.method
	if method == MethodAuto {
		if _, ok := mo.mut.q.Uniform(); ok && mo.land.IsClassBased() {
			method = MethodReduced
		} else {
			method = MethodFmmp
		}
	}
	switch method {
	case MethodReduced:
		return mo.solveReduced()
	case MethodFmmp:
		return mo.solvePower()
	case MethodXmvp:
		op, err := mo.buildXmvpOperator()
		if err != nil {
			return nil, err
		}
		return mo.solveWithOperator(op, MethodXmvp)
	case MethodLanczos:
		return mo.solveLanczos()
	case MethodArnoldi:
		return mo.solveArnoldi()
	default:
		return nil, fmt.Errorf("%w: unknown method %v", ErrInvalidModel, method)
	}
}

func (mo *Model) buildXmvpOperator() (core.Operator, error) {
	p, ok := mo.mut.q.Uniform()
	if !ok {
		return nil, fmt.Errorf("%w: MethodXmvp requires the uniform-rate process", ErrInvalidModel)
	}
	x, err := mutation.NewXmvp(mo.ChainLen(), p, mo.xmvpRadius)
	if err != nil {
		return nil, err
	}
	return core.NewXmvpOperator(x, mo.land.l, core.Right, mo.dev)
}

func (mo *Model) solvePower() (*Solution, error) {
	op, err := mo.fmmpOperator(core.Right)
	if err != nil {
		return nil, err
	}
	return mo.solveWithOperator(op, MethodFmmp)
}

func (mo *Model) solveWithOperator(op core.Operator, method Method) (*Solution, error) {
	start, err := mo.startVector(core.Right)
	if err != nil {
		return nil, err
	}
	popts := core.PowerOptions{
		Tol: mo.effectiveTol(), MaxIter: mo.maxIter,
		Start: start,
		Dev:   mo.dev,
	}
	if mo.observer != nil {
		popts.Observer = mo.observer
	}
	if mo.useShift {
		popts.Shift = core.ConservativeShift(mo.mut.q, mo.land.l)
	}
	res, err := core.PowerIteration(op, popts)
	if err != nil {
		return nil, err
	}
	return mo.finishSolution(res.Lambda, res.Vector, res.Iterations, res.Residual, method)
}

func (mo *Model) solveLanczos() (*Solution, error) {
	op, err := mo.fmmpOperator(core.Symmetric)
	if err != nil {
		return nil, err
	}
	start, err := mo.startVector(core.Symmetric)
	if err != nil {
		return nil, err
	}
	res, err := core.Lanczos(op, core.LanczosOptions{Tol: mo.effectiveTol(), Start: start})
	if err != nil {
		return nil, err
	}
	// Convert the symmetric-form eigenvector back to concentrations.
	x := res.Vector
	if err := core.ConvertEigenvector(x, core.Symmetric, core.Right, mo.land.l); err != nil {
		return nil, err
	}
	return mo.finishSolution(res.Lambda, x, res.MatVecs, res.Residual, MethodLanczos)
}

func (mo *Model) finishSolution(lambda float64, x []float64, iters int, residual float64, method Method) (*Solution, error) {
	if err := core.Concentrations(x); err != nil {
		return nil, err
	}
	gamma, err := core.ClassConcentrations(mo.ChainLen(), x)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Lambda: lambda, Concentrations: x, Gamma: gamma,
		Iterations: iters, Residual: residual, Method: method,
	}, nil
}

func (mo *Model) solveArnoldi() (*Solution, error) {
	op, err := mo.fmmpOperator(core.Right)
	if err != nil {
		return nil, err
	}
	start, err := mo.startVector(core.Right)
	if err != nil {
		return nil, err
	}
	res, err := core.Arnoldi(op, core.ArnoldiOptions{
		Tol: mo.effectiveTol(), Start: start,
	})
	if err != nil {
		return nil, err
	}
	return mo.finishSolution(res.Lambda, res.Vector, res.MatVecs, res.Residual, MethodArnoldi)
}

// startVector returns the starting iterate in the requested formulation:
// a converted copy of the WithStart vector when one was set, else the
// fitness start.
func (mo *Model) startVector(form core.Formulation) ([]float64, error) {
	if mo.start == nil {
		// The fitness start serves every formulation as-is (any positive
		// vector is an admissible iterate); converting it here would
		// perturb long-standing bit-identical baselines.
		return core.FitnessStart(mo.land.l), nil
	}
	if len(mo.start) != mo.Dim() {
		return nil, fmt.Errorf("%w: start vector length %d, want %d",
			ErrInvalidModel, len(mo.start), mo.Dim())
	}
	x := make([]float64, len(mo.start))
	copy(x, mo.start)
	if err := core.ConvertEigenvector(x, core.Right, form, mo.land.l); err != nil {
		return nil, err
	}
	return x, nil
}

// effectiveTol returns the user's tolerance, or the floating-point-floor
// default for this problem when none was set.
func (mo *Model) effectiveTol() float64 {
	if mo.tolSet {
		return mo.tol
	}
	return core.DefaultTolerance(mo.land.l)
}

func (mo *Model) solveReduced() (*Solution, error) {
	p, ok := mo.mut.q.Uniform()
	if !ok {
		return nil, fmt.Errorf("%w: the error-class reduction requires the uniform-rate process", ErrInvalidModel)
	}
	phi, ok := landscape.ClassBased(mo.land.l)
	if !ok {
		return nil, fmt.Errorf("%w: the error-class reduction requires a class-based landscape", ErrInvalidModel)
	}
	red, err := errorclass.New(phi, p)
	if err != nil {
		return nil, err
	}
	res, err := red.Solve()
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Lambda: res.Lambda, Gamma: res.Gamma,
		Iterations: res.Iterations, Method: MethodReduced,
	}
	if mo.ChainLen() <= 30 {
		x, err := errorclass.Expand(res.ClassVector)
		if err != nil {
			return nil, err
		}
		sol.Concentrations = x
	}
	return sol, nil
}

// Residual evaluates ‖W·x − λ·x‖₂ for an arbitrary candidate solution —
// the paper's accuracy measure R(λ̃, x̃), usable to cross-check any method
// against the fast exact operator.
func (mo *Model) Residual(lambda float64, x []float64) (float64, error) {
	if len(x) != mo.Dim() {
		return 0, fmt.Errorf("%w: vector length %d, want %d", ErrInvalidModel, len(x), mo.Dim())
	}
	op, err := mo.fmmpOperator(core.Right)
	if err != nil {
		return 0, err
	}
	if len(mo.residScratch) != len(x) {
		mo.residScratch = make([]float64, len(x))
	}
	w := mo.residScratch
	op.Apply(w, x)
	vec.AXPY(-lambda, x, w)
	return vec.Norm2(w), nil
}
