package quasispecies

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

func TestSolveContextCompletes(t *testing.T) {
	mut, _ := UniformMutation(10, 0.01)
	land, _ := RandomLandscape(10, 5, 1, 1)
	model, err := New(mut, land, WithMethod(MethodFmmp))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Lambda-plain.Lambda) > 1e-12 {
		t.Errorf("context solve λ = %g vs plain %g", sol.Lambda, plain.Lambda)
	}
}

func TestSolveContextCancelled(t *testing.T) {
	mut, _ := UniformMutation(12, 0.01)
	land, _ := RandomLandscape(12, 5, 1, 2)
	model, err := New(mut, land, WithMethod(MethodFmmp), WithTolerance(1e-13))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled
	if _, err := model.SolveContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSolveContextDeadline(t *testing.T) {
	// A near-threshold problem at larger ν runs long enough for a 1 ns
	// deadline to fire mid-iteration.
	mut, _ := UniformMutation(14, 0.06)
	land, _ := SinglePeak(14, 2, 1)
	model, err := New(mut, land, WithMethod(MethodFmmp), WithTolerance(1e-13), WithShift(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Microsecond)
	if _, err := model.SolveContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSolveContextReducedPath(t *testing.T) {
	// Class landscapes route to the instant reduction; a live context
	// passes through.
	mut, _ := UniformMutation(12, 0.01)
	land, _ := SinglePeak(12, 2, 1)
	model, _ := New(mut, land)
	sol, err := model.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodReduced {
		t.Errorf("method = %v", sol.Method)
	}
}

func TestSolveContextXmvpPath(t *testing.T) {
	mut, _ := UniformMutation(8, 0.01)
	land, _ := RandomLandscape(8, 5, 1, 3)
	model, err := New(mut, land, WithMethod(MethodXmvp), WithXmvpRadius(8))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := model.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != MethodXmvp {
		t.Errorf("method = %v", sol.Method)
	}
}
