package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randVector(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(3, 8); err == nil {
		t.Error("non-power-of-two node count must be rejected")
	}
	if _, err := NewCluster(4, 12); err == nil {
		t.Error("non-power-of-two vector length must be rejected")
	}
	if _, err := NewCluster(16, 8); err == nil {
		t.Error("more nodes than entries must be rejected")
	}
	if _, err := NewCluster(0, 8); err == nil {
		t.Error("zero nodes must be rejected")
	}
	c, err := NewCluster(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes() != 4 || c.BlockLen() != 16 {
		t.Errorf("cluster shape %d×%d", c.Nodes(), c.BlockLen())
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	r := rng.New(1)
	c, _ := NewCluster(8, 128)
	x := randVector(r, 128)
	blocks, err := c.Scatter(x)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks are private copies.
	blocks[0][0] = 99
	if x[0] == 99 {
		t.Error("Scatter aliases the global vector")
	}
	blocks[0][0] = x[0]
	back, err := c.Gather(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if vec.DistInf(back, x) != 0 {
		t.Error("Scatter/Gather round trip failed")
	}
	if _, err := c.Scatter(make([]float64, 64)); err == nil {
		t.Error("wrong global length must be rejected")
	}
	if _, err := c.Gather(blocks[:4]); err == nil {
		t.Error("wrong block count must be rejected")
	}
}

func TestDistributedFmmpMatchesSerial(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 3 + int(r.Uint64n(8)) // ν in [3, 10]
		n := 1 << nu
		maxLogP := nu
		if maxLogP > 4 {
			maxLogP = 4
		}
		p := 0.001 + 0.45*r.Float64()
		x := randVector(r, n)

		want := vec.Clone(x)
		mutation.MustUniform(nu, p).Apply(want)

		for logP := 0; logP <= maxLogP; logP++ {
			c, err := NewCluster(1<<logP, n)
			if err != nil {
				return false
			}
			blocks, err := c.Scatter(x)
			if err != nil {
				return false
			}
			if err := c.FmmpApply(blocks, p); err != nil {
				return false
			}
			got, err := c.Gather(blocks)
			if err != nil {
				return false
			}
			if vec.DistInf(got, want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCommunicationVolumeExact(t *testing.T) {
	// One matvec must move exactly 8·N·log₂P bytes of block traffic.
	for _, cfg := range []struct{ nodes, n int }{{1, 256}, {2, 256}, {4, 256}, {8, 256}, {16, 256}} {
		c, err := NewCluster(cfg.nodes, cfg.n)
		if err != nil {
			t.Fatal(err)
		}
		blocks, _ := c.Scatter(make([]float64, cfg.n))
		if err := c.FmmpApply(blocks, 0.01); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Bytes != c.ExpectedMatvecBytes() {
			t.Errorf("P=%d: %d bytes moved, want %d", cfg.nodes, st.Bytes, c.ExpectedMatvecBytes())
		}
		logP := 0
		for 1<<logP < cfg.nodes {
			logP++
		}
		if st.CrossStages != int64(logP) {
			t.Errorf("P=%d: %d cross stages, want %d", cfg.nodes, st.CrossStages, logP)
		}
		wantMsgs := int64(cfg.nodes * logP)
		if st.Messages != wantMsgs {
			t.Errorf("P=%d: %d messages, want %d", cfg.nodes, st.Messages, wantMsgs)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	c, _ := NewCluster(8, 64)
	got := c.AllreduceSum(func(rank int) float64 { return float64(rank + 1) })
	if got != 36 {
		t.Errorf("allreduce = %g, want 36", got)
	}
	if c.Stats().Allreduces != 1 {
		t.Error("allreduce not counted")
	}
}

func TestDistributedBLAS(t *testing.T) {
	r := rng.New(2)
	c, _ := NewCluster(4, 256)
	x := randVector(r, 256)
	y := randVector(r, 256)
	bx, _ := c.Scatter(x)
	by, _ := c.Scatter(y)
	if got, want := c.Dot(bx, by), vec.Dot(x, y); math.Abs(got-want) > 1e-10 {
		t.Errorf("Dot = %g, want %g", got, want)
	}
	if got, want := c.Norm2(bx), vec.Norm2(x); math.Abs(got-want) > 1e-10 {
		t.Errorf("Norm2 = %g, want %g", got, want)
	}
	c.Scale(bx, 2)
	back, _ := c.Gather(bx)
	vec.Scale(x, 2)
	if vec.DistInf(back, x) != 0 {
		t.Error("Scale mismatch")
	}
}

func TestAllreduceDeterministicAcrossRuns(t *testing.T) {
	r := rng.New(3)
	c, _ := NewCluster(8, 1024)
	x := randVector(r, 1024)
	bx, _ := c.Scatter(x)
	first := c.Norm2(bx)
	for i := 0; i < 10; i++ {
		if got := c.Norm2(bx); got != first {
			t.Fatalf("run %d: Norm2 = %v, want bit-identical %v", i, got, first)
		}
	}
}

func TestDistributedSolveMatchesSerial(t *testing.T) {
	const nu = 9
	const p = 0.01
	l, err := landscape.NewRandom(nu, 5, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference.
	q := mutation.MustUniform(nu, p)
	op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
	ref, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-12, Start: core.FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 8} {
		c, err := NewCluster(nodes, 1<<nu)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Solve(p, l, SolveOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("P=%d: %v", nodes, err)
		}
		if math.Abs(res.Lambda-ref.Lambda) > 1e-10 {
			t.Errorf("P=%d: λ = %.15g, want %.15g", nodes, res.Lambda, ref.Lambda)
		}
		if d := vec.DistInf(res.Vector, ref.Vector); d > 1e-8 {
			t.Errorf("P=%d: eigenvector deviates by %g", nodes, d)
		}
		if nodes > 1 && res.Traffic.Bytes == 0 {
			t.Errorf("P=%d: no traffic recorded", nodes)
		}
	}
}

func TestDistributedSolveWithShift(t *testing.T) {
	const nu = 8
	const p = 0.01
	l, _ := landscape.NewRandom(nu, 5, 1, 9)
	q := mutation.MustUniform(nu, p)
	mu := core.ConservativeShift(q, l)
	c, _ := NewCluster(4, 1<<nu)
	plain, err := c.Solve(p, l, SolveOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCluster(4, 1<<nu)
	shifted, err := c2.Solve(p, l, SolveOptions{Tol: 1e-11, Shift: mu})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Lambda-shifted.Lambda) > 1e-9 {
		t.Error("shift changed the distributed answer")
	}
	if shifted.Iterations >= plain.Iterations {
		t.Errorf("shift did not reduce distributed iterations: %d vs %d",
			shifted.Iterations, plain.Iterations)
	}
}

func TestDistributedSolveErrors(t *testing.T) {
	c, _ := NewCluster(2, 16)
	l, _ := landscape.NewUniform(5, 1) // dimension 32 ≠ 16
	if _, err := c.Solve(0.01, l, SolveOptions{}); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
	l4, _ := landscape.NewUniform(4, 1)
	if _, err := c.Solve(0, l4, SolveOptions{}); err == nil {
		t.Error("invalid p must be rejected")
	}
	lr, _ := landscape.NewRandom(4, 5, 1, 1)
	res, err := c.Solve(0.01, lr, SolveOptions{Tol: 1e-30, MaxIter: 2})
	if err == nil {
		t.Error("budget exhaustion must surface as error")
	}
	if res == nil || res.Iterations != 2 {
		t.Error("partial result must be returned on exhaustion")
	}
}

func TestFmmpApplyValidation(t *testing.T) {
	c, _ := NewCluster(2, 16)
	blocks, _ := c.Scatter(make([]float64, 16))
	if err := c.FmmpApply(blocks[:1], 0.01); err == nil {
		t.Error("wrong block count must be rejected")
	}
	if err := c.FmmpApply(blocks, 0.9); err == nil {
		t.Error("invalid rate must be rejected")
	}
}

func TestSingleNodeClusterIsSerial(t *testing.T) {
	// P = 1: no communication at all, identical results.
	r := rng.New(4)
	const nu = 6
	c, _ := NewCluster(1, 1<<nu)
	x := randVector(r, 1<<nu)
	want := vec.Clone(x)
	mutation.MustUniform(nu, 0.03).Apply(want)
	blocks, _ := c.Scatter(x)
	if err := c.FmmpApply(blocks, 0.03); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Gather(blocks)
	if vec.DistInf(got, want) > 1e-13 {
		t.Error("P=1 result differs from serial")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Messages != 0 {
		t.Errorf("P=1 cluster communicated: %+v", st)
	}
}
