// Package cluster implements the distributed-memory direction named in
// the paper's conclusions: "the main limiting factor in computationally
// solving the quasispecies model is not any more the runtime, but the
// memory requirements. Consequently, in the future we will focus on
// distributed memory approaches."
//
// The package simulates a cluster of P nodes (P a power of two), each
// owning a contiguous block of N/P vector entries in private storage.
// Nodes run as goroutines and exchange data exclusively through counted
// message channels — no shared vector memory — so the implementation is a
// faithful software model of an MPI-style port and its statistics report
// exactly the traffic such a port would generate.
//
// The butterfly structure of Fmmp maps onto this layout as it does for
// the distributed FFT: stages with stride < N/P are node-local, and the
// log₂P stages with stride ≥ N/P pair each node with the partner whose
// rank differs in one bit — a hypercube exchange of one block per node
// per stage. A matvec therefore communicates exactly 8·N·log₂P bytes in
// total, and norms/dots use a recursive-doubling allreduce.
package cluster

import (
	"errors"
	"fmt"
	"math"
	mathbits "math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// Stats counts the simulated network traffic of a Cluster.
type Stats struct {
	// Messages is the number of point-to-point messages sent.
	Messages int64
	// Bytes is the total payload volume in bytes.
	Bytes int64
	// CrossStages is the number of butterfly stages that required
	// communication.
	CrossStages int64
	// Allreduces is the number of collective reductions performed.
	Allreduces int64
}

// Cluster is a simulated distributed-memory machine dedicated to one
// vector distribution: P nodes each holding N/P contiguous entries.
type Cluster struct {
	nodes    int
	logNodes int
	n        int
	blockLen int

	// mailbox[to][from] carries one block-sized message at a time.
	mailbox [][]chan []float64
	// reduceBox[to][from] carries scalar contributions for allreduce.
	reduceBox [][]chan float64

	messages    atomic.Int64
	bytes       atomic.Int64
	crossStages atomic.Int64
	allreduces  atomic.Int64
}

// NewCluster builds a cluster of nodes ranks for vectors of length n.
// Both must be powers of two with nodes ≤ n.
func NewCluster(nodes, n int) (*Cluster, error) {
	if nodes < 1 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("cluster: node count %d is not a power of two", nodes)
	}
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cluster: vector length %d is not a power of two", n)
	}
	if nodes > n {
		return nil, fmt.Errorf("cluster: more nodes (%d) than vector entries (%d)", nodes, n)
	}
	c := &Cluster{
		nodes:    nodes,
		logNodes: mathbits.TrailingZeros(uint(nodes)),
		n:        n,
		blockLen: n / nodes,
	}
	c.mailbox = make([][]chan []float64, nodes)
	c.reduceBox = make([][]chan float64, nodes)
	for to := 0; to < nodes; to++ {
		c.mailbox[to] = make([]chan []float64, nodes)
		c.reduceBox[to] = make([]chan float64, nodes)
		for from := 0; from < nodes; from++ {
			c.mailbox[to][from] = make(chan []float64, 1)
			c.reduceBox[to][from] = make(chan float64, 1)
		}
	}
	return c, nil
}

// Nodes returns P.
func (c *Cluster) Nodes() int { return c.nodes }

// BlockLen returns N/P, the entries per node.
func (c *Cluster) BlockLen() int { return c.blockLen }

// Stats returns a snapshot of the traffic counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Messages:    c.messages.Load(),
		Bytes:       c.bytes.Load(),
		CrossStages: c.crossStages.Load(),
		Allreduces:  c.allreduces.Load(),
	}
}

// ResetStats zeroes the traffic counters.
func (c *Cluster) ResetStats() {
	c.messages.Store(0)
	c.bytes.Store(0)
	c.crossStages.Store(0)
	c.allreduces.Store(0)
}

// send delivers payload from rank `from` to rank `to`, counting traffic.
// The payload is copied so nodes never alias each other's memory.
func (c *Cluster) send(from, to int, payload []float64) {
	cp := make([]float64, len(payload))
	copy(cp, payload)
	c.messages.Add(1)
	c.bytes.Add(int64(8 * len(payload)))
	c.mailbox[to][from] <- cp
}

func (c *Cluster) recv(at, from int) []float64 {
	return <-c.mailbox[at][from]
}

// sendScalar/recvScalar carry reduction contributions (8 bytes each).
func (c *Cluster) sendScalar(from, to int, v float64) {
	c.messages.Add(1)
	c.bytes.Add(8)
	c.reduceBox[to][from] <- v
}

func (c *Cluster) recvScalar(at, from int) float64 {
	return <-c.reduceBox[at][from]
}

// Scatter splits a global vector into per-node private blocks.
func (c *Cluster) Scatter(global []float64) ([][]float64, error) {
	if len(global) != c.n {
		return nil, fmt.Errorf("cluster: vector length %d, want %d", len(global), c.n)
	}
	blocks := make([][]float64, c.nodes)
	for r := 0; r < c.nodes; r++ {
		blocks[r] = make([]float64, c.blockLen)
		copy(blocks[r], global[r*c.blockLen:(r+1)*c.blockLen])
	}
	return blocks, nil
}

// Gather reassembles a global vector from per-node blocks.
func (c *Cluster) Gather(blocks [][]float64) ([]float64, error) {
	if len(blocks) != c.nodes {
		return nil, fmt.Errorf("cluster: %d blocks, want %d", len(blocks), c.nodes)
	}
	out := make([]float64, c.n)
	for r, b := range blocks {
		if len(b) != c.blockLen {
			return nil, fmt.Errorf("cluster: block %d has %d entries, want %d", r, len(b), c.blockLen)
		}
		copy(out[r*c.blockLen:], b)
	}
	return out, nil
}

// runSPMD executes body(rank) on one goroutine per node and waits for all
// of them — one SPMD region.
func (c *Cluster) runSPMD(body func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(c.nodes)
	for r := 0; r < c.nodes; r++ {
		go func(rank int) {
			defer wg.Done()
			body(rank)
		}(r)
	}
	wg.Wait()
}

// FmmpApply computes blocks ← Q·blocks in place for a uniform mutation
// process with error rate p over ν = log₂N positions. Local stages touch
// only private memory; each of the log₂P cross stages performs one
// block-sized hypercube exchange per node.
func (c *Cluster) FmmpApply(blocks [][]float64, p float64) error {
	if err := mutation.ValidateRate(p); err != nil {
		return err
	}
	if len(blocks) != c.nodes {
		return fmt.Errorf("cluster: %d blocks, want %d", len(blocks), c.nodes)
	}
	a, b := 1-p, p
	c.runSPMD(func(rank int) {
		blk := blocks[rank]
		// Local stages: stride < blockLen.
		for stride := 1; stride < c.blockLen; stride <<= 1 {
			for j := 0; j < c.blockLen; j += 2 * stride {
				for k := j; k < j+stride; k++ {
					t1, t2 := blk[k], blk[k+stride]
					blk[k] = a*t1 + b*t2
					blk[k+stride] = b*t1 + a*t2
				}
			}
		}
		// Cross stages: stride = blockLen·2^s pairs rank with rank^2^s.
		for s := 0; s < c.logNodes; s++ {
			partner := rank ^ (1 << uint(s))
			c.send(rank, partner, blk)
			other := c.recv(rank, partner)
			if rank&(1<<uint(s)) == 0 {
				// This node holds the t1 ("upper") entries.
				for k := range blk {
					blk[k] = a*blk[k] + b*other[k]
				}
			} else {
				for k := range blk {
					blk[k] = b*other[k] + a*blk[k]
				}
			}
		}
	})
	c.crossStages.Add(int64(c.logNodes))
	return nil
}

// ScaleByFitness multiplies each block entrywise by the local slice of
// the fitness landscape — no communication (F is diagonal).
func (c *Cluster) ScaleByFitness(blocks [][]float64, fBlocks [][]float64) {
	c.runSPMD(func(rank int) {
		blk, f := blocks[rank], fBlocks[rank]
		for i := range blk {
			blk[i] *= f[i]
		}
	})
}

// AllreduceSum returns Σ over all nodes of local(rank), computed with the
// recursive-doubling butterfly: log₂P rounds of pairwise scalar exchange,
// after which every node holds the global value. Every node combines
// partial sums in the same (rank-bit) order, so the result is
// deterministic and identical on all nodes.
func (c *Cluster) AllreduceSum(local func(rank int) float64) float64 {
	results := make([]float64, c.nodes)
	c.runSPMD(func(rank int) {
		acc := local(rank)
		for s := 0; s < c.logNodes; s++ {
			partner := rank ^ (1 << uint(s))
			c.sendScalar(rank, partner, acc)
			other := c.recvScalar(rank, partner)
			// Deterministic order: lower rank's contribution first.
			if rank&(1<<uint(s)) == 0 {
				acc = acc + other
			} else {
				acc = other + acc
			}
		}
		results[rank] = acc
	})
	c.allreduces.Add(1)
	// All nodes agree; return rank 0's copy.
	for r := 1; r < c.nodes; r++ {
		if results[r] != results[0] {
			// Cannot happen with the deterministic combine order; guard
			// against future edits breaking the invariant.
			panic("cluster: allreduce produced divergent values across nodes")
		}
	}
	return results[0]
}

// Norm2 returns the global ‖x‖₂ of the distributed vector.
func (c *Cluster) Norm2(blocks [][]float64) float64 {
	return math.Sqrt(c.AllreduceSum(func(rank int) float64 {
		var s float64
		for _, v := range blocks[rank] {
			s += v * v
		}
		return s
	}))
}

// Dot returns the global xᵀy of two distributed vectors.
func (c *Cluster) Dot(x, y [][]float64) float64 {
	return c.AllreduceSum(func(rank int) float64 {
		var s float64
		bx, by := x[rank], y[rank]
		for i := range bx {
			s += bx[i] * by[i]
		}
		return s
	})
}

// Scale multiplies the distributed vector by a — purely local.
func (c *Cluster) Scale(blocks [][]float64, a float64) {
	c.runSPMD(func(rank int) {
		vec.Scale(blocks[rank], a)
	})
}

// SolveResult is the outcome of the distributed power iteration.
type SolveResult struct {
	Lambda     float64
	Vector     []float64 // gathered, unit 2-norm, non-negative orientation
	Iterations int
	Residual   float64
	Traffic    Stats
}

// ErrNoConvergence mirrors core.ErrNoConvergence for the distributed path.
var ErrNoConvergence = errors.New("cluster: iteration budget exhausted before convergence")

// SolveOptions configures the distributed solve.
type SolveOptions struct {
	// Tol is the residual threshold (default: the problem's
	// floating-point-floor tolerance, max(1e−12, 64·ε·f_max·√N)).
	Tol     float64
	MaxIter int     // default 500000
	Shift   float64 // spectral shift µ (0 = none)
}

// Solve runs the distributed power iteration for W = Q·F with a uniform
// process (rate p) and the given landscape: the distributed twin of
// core.PowerIteration. Every vector operation is node-local except the
// Fmmp cross stages and the scalar allreduces.
func (c *Cluster) Solve(p float64, l landscape.Landscape, opts SolveOptions) (*SolveResult, error) {
	if l.Dim() != c.n {
		return nil, fmt.Errorf("cluster: landscape dimension %d, want %d", l.Dim(), c.n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = core.DefaultTolerance(l)
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500000
	}
	mu := opts.Shift

	// Distribute the fitness diagonal and the start vector
	// s = diag(F)/‖diag F‖₁ (each node materializes only its slice).
	fBlocks := make([][]float64, c.nodes)
	x := make([][]float64, c.nodes)
	c.runSPMD(func(rank int) {
		f := make([]float64, c.blockLen)
		base := uint64(rank * c.blockLen)
		for i := range f {
			f[i] = l.At(base + uint64(i))
		}
		fBlocks[rank] = f
		xb := make([]float64, c.blockLen)
		copy(xb, f)
		x[rank] = xb
	})
	norm1 := c.AllreduceSum(func(rank int) float64 {
		var s float64
		for _, v := range x[rank] {
			s += math.Abs(v)
		}
		return s
	})
	c.Scale(x, 1/norm1)
	n2 := c.Norm2(x)
	c.Scale(x, 1/n2)

	// w buffers, one per node.
	w := make([][]float64, c.nodes)
	for r := range w {
		w[r] = make([]float64, c.blockLen)
	}

	res := &SolveResult{}
	bestResidual := math.Inf(1)
	stalled := 0
	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		// w ← Q·(F⊙x) − µ·x
		c.runSPMD(func(rank int) {
			wb, xb, fb := w[rank], x[rank], fBlocks[rank]
			for i := range wb {
				wb[i] = xb[i] * fb[i]
			}
		})
		if err := c.FmmpApply(w, p); err != nil {
			return nil, err
		}
		if mu != 0 {
			c.runSPMD(func(rank int) {
				wb, xb := w[rank], x[rank]
				for i := range wb {
					wb[i] -= mu * xb[i]
				}
			})
		}
		lamShifted := c.Dot(x, w)
		res.Lambda = lamShifted + mu
		// Residual ‖w − λ̃x‖₂ via one more allreduce.
		res.Residual = math.Sqrt(c.AllreduceSum(func(rank int) float64 {
			var s float64
			wb, xb := w[rank], x[rank]
			for i := range wb {
				d := wb[i] - lamShifted*xb[i]
				s += d * d
			}
			return s
		}))
		if res.Residual <= tol {
			break
		}
		// Stagnation guard: stop burning the budget once the residual has
		// hit the floating-point floor (mirrors core.PowerIteration).
		if res.Residual < bestResidual*(1-1e-6) {
			bestResidual = res.Residual
			stalled = 0
		} else if stalled++; stalled >= 100 {
			break
		}
		nrm := c.Norm2(w)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			return res, fmt.Errorf("cluster: iteration broke down at step %d", iter)
		}
		inv := 1 / nrm
		c.runSPMD(func(rank int) {
			wb, xb := w[rank], x[rank]
			for i := range wb {
				xb[i] = wb[i] * inv
			}
		})
	}

	gathered, err := c.Gather(x)
	if err != nil {
		return nil, err
	}
	vec.Normalize2(gathered)
	orientPositive(gathered)
	res.Vector = gathered
	res.Traffic = c.Stats()
	if res.Residual > tol {
		return res, fmt.Errorf("%w after %d iterations (residual %g)", ErrNoConvergence, res.Iterations, res.Residual)
	}
	return res, nil
}

func orientPositive(x []float64) {
	idx, m := 0, 0.0
	for i, v := range x {
		if a := math.Abs(v); a > m {
			idx, m = i, a
		}
	}
	if x[idx] < 0 {
		vec.Scale(x, -1)
	}
}

// ExpectedMatvecBytes returns the exact communication volume of one
// distributed Fmmp matvec: P nodes each send one block of N/P floats in
// each of the log₂P cross stages, i.e. 8·N·log₂P bytes.
func (c *Cluster) ExpectedMatvecBytes() int64 {
	return int64(8 * c.n * c.logNodes)
}
