package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

// Property-based cross-validation: for random problem sizes, error rates,
// landscapes and node counts, the distributed solve must reproduce the
// shared-memory eigenpair, and the distributed norms must match the
// serial ones.

func TestSolveMatchesSerialProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 4 + int(r.Uint64n(5)) // ν ∈ [4, 8]
		p := 0.002 + 0.05*r.Float64()
		nodes := 1 << r.Uint64n(4) // P ∈ {1, 2, 4, 8}
		if nodes > 1<<nu {
			nodes = 1 << nu
		}
		l, err := landscape.NewRandom(nu, 5, 1, r.Uint64())
		if err != nil {
			return false
		}
		q, err := mutation.NewUniform(nu, p)
		if err != nil {
			return false
		}
		op, err := core.NewFmmpOperator(q, l, core.Right, nil)
		if err != nil {
			return false
		}
		ref, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-11, Start: core.FitnessStart(l)})
		if err != nil {
			return false
		}
		c, err := NewCluster(nodes, 1<<nu)
		if err != nil {
			return false
		}
		res, err := c.Solve(p, l, SolveOptions{Tol: 1e-11})
		if err != nil {
			return false
		}
		if math.Abs(res.Lambda-ref.Lambda) > 1e-8 {
			return false
		}
		return vec.DistInf(res.Vector, ref.Vector) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistributedNormsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 3 + int(r.Uint64n(8))
		n := 1 << nu
		nodes := 1 << r.Uint64n(4)
		if nodes > n {
			nodes = n
		}
		c, err := NewCluster(nodes, n)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = 2*r.Float64() - 1
			y[i] = 2*r.Float64() - 1
		}
		bx, err := c.Scatter(x)
		if err != nil {
			return false
		}
		by, err := c.Scatter(y)
		if err != nil {
			return false
		}
		if math.Abs(c.Norm2(bx)-vec.Norm2(x)) > 1e-9 {
			return false
		}
		return math.Abs(c.Dot(bx, by)-vec.Dot(x, y)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
