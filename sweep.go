package quasispecies

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kron"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// ThresholdPoint is one error rate of an error-threshold sweep: the
// cumulative class concentrations [Γ_0] … [Γ_ν] at that p.
type ThresholdPoint struct {
	P     float64
	Gamma []float64
}

// SweepOptions configures the batched sweep engine behind ThresholdCurve
// and LocateErrorThreshold. The zero value is the serial cold-start sweep.
type SweepOptions struct {
	// Workers runs that many eigensolves concurrently; 0 or 1 is serial,
	// < 0 selects all available cores. Sweep results are bit-identical at
	// every worker count.
	Workers int
	// WarmStart seeds each solve with the converged solution of the
	// previous error rate along fixed-length continuation chains — a large
	// iteration saving on monotone p-grids, at identical accuracy.
	WarmStart bool
	// Observe, when non-nil, supplies a convergence-trace observer for
	// point i (p = ps[i]) of a full-space sweep (ThresholdCurveFullWith);
	// return nil to skip a point. Factories may be called concurrently.
	// The reduced sweep does not trace and ignores it.
	Observe func(i int, p float64) SolveObserver
	// Progress, when non-nil, is called once per finished sweep point with
	// its solver iteration count, warm-start status, and the name of the
	// solve method that produced it ("power", "chebyshev", "shiftinvert",
	// …). Calls arrive concurrently from the sweep workers.
	Progress func(i int, p float64, iters int, warm bool, method string)
	// Method selects the per-point eigensolver: "" or "power" (the
	// historical default, byte-for-byte identical to previous releases),
	// "auto" (per-point adaptive selection — power far from the error
	// threshold, Chebyshev-filtered restarts and shift-invert Lanczos
	// inside the critical window), or a forced gear ("chebyshev",
	// "shiftinvert", "lanczos"). Reduced sweeps map every non-power method
	// onto the dense shift-invert (RQI) path.
	Method string
	// HWC attaches the process-wide hardware-counter session to the
	// recording span profile before the sweep fans out, so its per-phase
	// table gains IPC and cache-miss attribution (see
	// SpanProfileOptions.HWC). No-op without a recording profile or on
	// hosts without usable counters; sweep results are bit-identical
	// either way.
	HWC bool
}

// ThresholdCurve sweeps the error rate p over the given values for a
// class-based landscape and returns the Figure 1 curves. The exact
// (ν+1)×(ν+1) reduction makes the sweep cheap at any chain length.
func ThresholdCurve(l Landscape, ps []float64) ([]ThresholdPoint, error) {
	return ThresholdCurveWith(l, ps, SweepOptions{})
}

// ThresholdCurveWith is ThresholdCurve on the batched sweep engine:
// eigensolves are scheduled over opts.Workers concurrent slots and may be
// warm-started along the grid. The returned curves are bit-identical to
// the serial sweep at every worker count.
func ThresholdCurveWith(l Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, error) {
	if opts.HWC {
		ensureHWC()
	}
	if !l.valid() {
		return nil, fmt.Errorf("%w: use the package constructors for Landscape", ErrInvalidModel)
	}
	method, err := core.ParseSolveMethod(opts.Method)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	pts, _, err := harness.ThresholdSweepOpts(l.l, ps, harness.SweepOptions{
		Workers: normalizeSweepWorkers(opts.Workers), WarmStart: opts.WarmStart,
		Progress: opts.Progress, Method: method,
	})
	if err != nil {
		return nil, err
	}
	return convertThresholdPoints(pts), nil
}

// ThresholdCurveFullWith sweeps the error rate with full 2^ν Pi(Fmmp)
// solves instead of the exact class reduction — the path that exercises
// the instrumented solver core end to end (butterfly kernels, power
// iterations, warm-start continuation) and therefore the one behind
// qs-threshold's -full mode. Works for any landscape; convergence traces
// attach via opts.Observe.
func ThresholdCurveFullWith(l Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, error) {
	if opts.HWC {
		ensureHWC()
	}
	if !l.valid() {
		return nil, fmt.Errorf("%w: use the package constructors for Landscape", ErrInvalidModel)
	}
	if len(ps) == 0 {
		return nil, nil
	}
	q, err := mutation.NewUniform(l.ChainLen(), ps[0])
	if err != nil {
		return nil, fmt.Errorf("quasispecies: %w", err)
	}
	method, err := core.ParseSolveMethod(opts.Method)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	hopts := harness.SweepOptions{
		Workers: normalizeSweepWorkers(opts.Workers), WarmStart: opts.WarmStart,
		Progress: opts.Progress, Method: method,
	}
	if opts.Observe != nil {
		hopts.Observe = func(i int, p float64) core.Observer {
			if o := opts.Observe(i, p); o != nil {
				return o
			}
			return nil // avoid a non-nil interface wrapping a nil observer
		}
	}
	pts, _, err := harness.ThresholdSweepFullOpts(q, l.l, ps, hopts)
	if err != nil {
		return nil, err
	}
	return convertThresholdPoints(pts), nil
}

func convertThresholdPoints(pts []harness.ThresholdPoint) []ThresholdPoint {
	out := make([]ThresholdPoint, len(pts))
	for i, pt := range pts {
		out[i] = ThresholdPoint{P: pt.P, Gamma: pt.Gamma}
	}
	return out
}

// LocateErrorThreshold bisects the critical error rate p_max at which the
// ordered quasispecies of a class-based landscape collapses into the
// uniform distribution (the Figure 1 phase transition), searching the
// bracket [lo, hi] to within tol.
func LocateErrorThreshold(l Landscape, lo, hi, tol float64) (float64, error) {
	return LocateErrorThresholdWith(l, lo, hi, tol, SweepOptions{})
}

// LocateErrorThresholdWith is LocateErrorThreshold with opts.Workers
// bracket points evaluated concurrently per round (k-section search),
// shrinking the bracket by a factor Workers+1 per round instead of 2.
func LocateErrorThresholdWith(l Landscape, lo, hi, tol float64, opts SweepOptions) (float64, error) {
	if opts.HWC {
		ensureHWC()
	}
	if !l.valid() {
		return 0, fmt.Errorf("%w: use the package constructors for Landscape", ErrInvalidModel)
	}
	method, err := core.ParseSolveMethod(opts.Method)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalidModel, err)
	}
	return harness.LocateThresholdOpts(l.l, lo, hi, tol, harness.SweepOptions{
		Workers: normalizeSweepWorkers(opts.Workers), Method: method,
	})
}

// normalizeSweepWorkers maps the public convention (0 or 1 serial, < 0 all
// cores) onto the harness convention (≤ 0 all cores).
func normalizeSweepWorkers(n int) int {
	if n == 0 {
		return 1
	}
	if n < 0 {
		return 0 // harness/batch: ≤ 0 selects GOMAXPROCS
	}
	return n
}

// TheoreticalErrorThreshold returns the first-order estimate
// p_max ≈ 1 − σ^(−1/ν) for a single-peak landscape with superiority
// σ = f₀/f_base.
func TheoreticalErrorThreshold(sigma float64, chainLen int) (float64, error) {
	return harness.TheoreticalThreshold(sigma, chainLen)
}

// ---------------------------------------------------------------------------
// Kronecker-structured systems (Section 5.2)

// KroneckerBlock is one independent group of a long-chain system: a block
// of positions with its own error rate and fitness factor.
type KroneckerBlock struct {
	// ChainLen is the block's width gᵢ in positions.
	ChainLen int
	// ErrorRate is the uniform per-position error rate within the block.
	ErrorRate float64
	// Fitness is the block's diagonal fitness factor of length 2^ChainLen;
	// the full landscape is the Kronecker product of the block factors.
	Fitness []float64
}

// KroneckerSolution is the implicitly represented quasispecies of a
// Kronecker-structured system. The full eigenvector has 2^ν entries and is
// never materialized; concentrations are accessed per sequence or as
// class aggregates.
type KroneckerSolution struct {
	res      *kron.Result
	chainLen int
}

// ChainLen returns the total ν = Σ gᵢ.
func (s *KroneckerSolution) ChainLen() int { return s.chainLen }

// Lambda returns the dominant eigenvalue λ = Π λᵢ.
func (s *KroneckerSolution) Lambda() float64 { return s.res.Lambda }

// Concentration returns xᵢ for a single sequence (ν ≤ 62).
func (s *KroneckerSolution) Concentration(i uint64) (float64, error) { return s.res.At(i) }

// MasterConcentration returns x₀ at any chain length.
func (s *KroneckerSolution) MasterConcentration() float64 { return s.res.MasterConcentration() }

// Gamma returns the exact cumulative class concentrations [Γ_0] … [Γ_ν],
// computed by convolution over the blocks — Θ(ν²) regardless of 2^ν.
func (s *KroneckerSolution) Gamma() []float64 { return s.res.ClassConcentrations() }

// ClassEnvelope returns per-class minimum and maximum single-sequence
// concentrations — the error-threshold diagnostic Section 5.2 proposes.
func (s *KroneckerSolution) ClassEnvelope() (min, max []float64) { return s.res.ClassMinMax() }

// SolveKronecker solves a long-chain quasispecies problem whose mutation
// process and fitness landscape share Kronecker block structure (Eqs. 11
// and 18): the problem decouples into one independent solve per block
// ("for a Kronecker fitness landscape with g = 4 [a chain length ν = 100]
// could be reduced to four subproblems of dimension 2^25").
func SolveKronecker(blocks []KroneckerBlock, opts ...Option) (*KroneckerSolution, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks", ErrInvalidModel)
	}
	// Reuse Model option parsing for tolerance/shift settings.
	cfg := &Model{maxIter: 500000, useShift: true, workers: 1, xmvpRadius: 5}
	for _, o := range opts {
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	factors := make([]kron.Factor, len(blocks))
	total := 0
	for i, b := range blocks {
		q, err := mutation.NewUniform(b.ChainLen, b.ErrorRate)
		if err != nil {
			return nil, fmt.Errorf("quasispecies: block %d: %w", i, err)
		}
		f, err := landscape.NewVector(b.Fitness)
		if err != nil {
			return nil, fmt.Errorf("quasispecies: block %d: %w", i, err)
		}
		if f.ChainLen() != b.ChainLen {
			return nil, fmt.Errorf("%w: block %d fitness has 2^%d entries, want 2^%d",
				ErrInvalidModel, i, f.ChainLen(), b.ChainLen)
		}
		factors[i] = kron.Factor{Q: q, F: f}
		total += b.ChainLen
	}
	sys, err := kron.NewSystem(factors)
	if err != nil {
		return nil, err
	}
	tol := 0.0 // 0 selects each factor's floating-point-floor default
	if cfg.tolSet {
		tol = cfg.tol
	}
	// WithWorkers here parallelizes across blocks: the subproblems are
	// independent, so block-level scheduling is the natural concurrency.
	res, err := sys.Solve(kron.SolveOptions{
		Tol: tol, MaxIter: cfg.maxIter, UseShift: cfg.useShift,
		Workers: cfg.workers,
	})
	if err != nil {
		return nil, err
	}
	return &KroneckerSolution{res: res, chainLen: total}, nil
}
