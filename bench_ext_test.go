package quasispecies_test

// Benchmarks for the systems built along the paper's outlook (DESIGN.md
// rows 15–22): distributed solving, the four-letter alphabet, the
// localized approximative solver, multi-resolution analysis and
// checkpoint I/O.

import (
	"bytes"
	"fmt"
	"testing"

	quasispecies "repro"
	"repro/cluster"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/localized"
	"repro/internal/mutation"
	"repro/internal/resolution"
	"repro/rna"
)

// BenchmarkClusterSolve runs the distributed power iteration across node
// counts; on a multicore host the wall time drops with P, and the traffic
// counters scale as 8·N·log₂P per matvec.
func BenchmarkClusterSolve(b *testing.B) {
	const nu = 12
	l, err := landscape.NewRandom(nu, 5, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, nodes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("nodes%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := cluster.NewCluster(nodes, 1<<nu)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Solve(0.01, l, cluster.SolveOptions{Tol: 1e-11}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRNASolve solves a four-letter model: full grouped transform
// (Kimura) vs the exact class reduction (Jukes–Cantor).
func BenchmarkRNASolve(b *testing.B) {
	const l = 7 // 4^7 = 16384 states
	land, err := rna.SinglePeakLandscape(l, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("kimura-full", func(b *testing.B) {
		k2, _ := rna.Kimura(0.015, 0.005)
		m, err := rna.New(l, k2, land)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(rna.SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jukescantor-reduced", func(b *testing.B) {
		phi := make([]float64, l+1)
		phi[0] = 2
		for k := 1; k <= l; k++ {
			phi[k] = 1
		}
		for i := 0; i < b.N; i++ {
			if _, err := rna.SolveReduced(l, 0.02, phi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jukescantor-reduced-L300", func(b *testing.B) {
		phi := make([]float64, 301)
		phi[0] = 2
		for k := 1; k <= 300; k++ {
			phi[k] = 1
		}
		for i := 0; i < b.N; i++ {
			if _, err := rna.SolveReduced(300, 0.001, phi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLocalizedSolve runs the sparse-support approximative solver at
// a chain length whose dense vector would need 8 TB.
func BenchmarkLocalizedSolve(b *testing.B) {
	const nu = 40
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := localized.Solve(nu, 0.002, l, &localized.Options{
			DMax: 2, MaxSupport: 2000, Tol: 1e-9,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalshMoments measures the one-transform marginal/linkage
// analysis against direct accumulation.
func BenchmarkWalshMoments(b *testing.B) {
	const nu = 16
	mut, _ := quasispecies.UniformMutation(nu, 0.01)
	land, _ := quasispecies.SinglePeak(nu, 2, 1)
	model, _ := quasispecies.New(mut, land, quasispecies.WithMethod(quasispecies.MethodFmmp))
	sol, err := model.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("walsh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := resolution.WalshMoments(sol.Concentrations); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-marginals", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := resolution.Marginals(sol.Concentrations); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCheckpointIO measures serialization of a 2^18-entry solution.
func BenchmarkCheckpointIO(b *testing.B) {
	mut, _ := quasispecies.UniformMutation(18, 0.01)
	land, _ := quasispecies.SinglePeak(18, 2, 1)
	model, _ := quasispecies.New(mut, land)
	sol, err := model.Solve()
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := sol.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := sol.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := quasispecies.ReadSolution(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.SetBytes(int64(len(raw)))
}

// BenchmarkThresholdLocate bisects p_max for the ν = 20 single peak.
func BenchmarkThresholdLocate(b *testing.B) {
	land, _ := quasispecies.SinglePeak(20, 2, 1)
	for i := 0; i < b.N; i++ {
		if _, err := quasispecies.LocateErrorThreshold(land, 0.005, 0.08, 1e-5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectralGap estimates λ₀, λ₁ and the convergence rate through
// the internal gap estimator.
func BenchmarkSpectralGap(b *testing.B) {
	const nu = 12
	q := mutation.MustUniform(nu, 0.02)
	l, err := landscape.NewRandom(nu, 5, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	op, err := core.NewFmmpOperator(q, l, core.Symmetric, nil)
	if err != nil {
		b.Fatal(err)
	}
	mu := core.ConservativeShift(q, l)
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateGap(op, mu, core.PowerOptions{
			Tol: 1e-11, Start: core.FitnessStart(l),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
