package errorclass

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randPhi(r *rng.Source, nu int) []float64 {
	phi := make([]float64, nu+1)
	for k := range phi {
		phi[k] = 0.5 + 2*r.Float64()
	}
	return phi
}

func TestReducedQRowsAreStochastic(t *testing.T) {
	// Row d of QΓ sums over all possible target classes: Σ_k QΓ[d][k] = 1.
	for _, nu := range []int{1, 5, 20, 100} {
		for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
			m, err := ReducedQ(nu, p)
			if err != nil {
				t.Fatal(err)
			}
			for d := 0; d <= nu; d++ {
				s := vec.Sum(m.Row(d))
				if math.Abs(s-1) > 1e-10 {
					t.Errorf("ν=%d p=%g: row %d sums to %.15g", nu, p, d, s)
				}
			}
		}
	}
}

func TestReducedQMatchesExplicitSum(t *testing.T) {
	// QΓ[d][k] must equal Σ_{j∈Γk} Q[rep_d][j] computed from the full Q.
	const nu = 8
	const p = 0.03
	m, err := ReducedQ(nu, p)
	if err != nil {
		t.Fatal(err)
	}
	qv := mutation.ClassValues(nu, p)
	for d := 0; d <= nu; d++ {
		rep := bits.ClassRepresentative(nu, d)
		for k := 0; k <= nu; k++ {
			var want float64
			bits.EnumerateClass(nu, k, 0, func(j uint64) {
				want += qv[bits.Hamming(rep, j)]
			})
			if got := m.At(d, k); math.Abs(got-want) > 1e-12 {
				t.Fatalf("QΓ[%d][%d] = %.15g, want %.15g", d, k, got, want)
			}
		}
	}
}

func TestReducedQValidation(t *testing.T) {
	if _, err := ReducedQ(5, 0); err == nil {
		t.Error("p = 0 must be rejected")
	}
	if _, err := ReducedQ(-1, 0.1); err == nil {
		t.Error("negative ν must be rejected")
	}
	if _, err := ReducedQ(MaxChainLen+1, 0.1); err == nil {
		t.Error("oversized ν must be rejected")
	}
}

// TestErrorClassVectorsClosedUnderW is Lemma 2: W maps error-class
// vectors to error-class vectors.
func TestErrorClassVectorsClosedUnderW(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 2 + int(r.Uint64n(7))
		p := 0.01 + 0.3*r.Float64()
		phi := randPhi(r, nu)
		l, err := landscape.NewErrorClass(phi)
		if err != nil {
			return false
		}
		q := mutation.MustUniform(nu, p)
		op, err := core.NewFmmpOperator(q, l, core.Right, nil)
		if err != nil {
			return false
		}
		// Random error-class vector.
		cls := randPhi(r, nu)
		v := make([]float64, q.Dim())
		for i := range v {
			v[i] = cls[bits.Weight(uint64(i))]
		}
		w := make([]float64, q.Dim())
		op.Apply(w, v)
		// All entries within a class must coincide.
		seen := make([]float64, nu+1)
		init := make([]bool, nu+1)
		for i, x := range w {
			k := bits.Weight(uint64(i))
			if !init[k] {
				seen[k], init[k] = x, true
			} else if math.Abs(x-seen[k]) > 1e-10*(1+math.Abs(x)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReductionMatchesFullSolve(t *testing.T) {
	// The headline claim of Section 5.1: the (ν+1)×(ν+1) solve reproduces
	// the full N×N dominant eigenpair exactly.
	r := rng.New(7)
	for _, nu := range []int{4, 8, 12} {
		p := 0.01 + 0.02*r.Float64()
		phi := randPhi(r, nu)
		l, err := landscape.NewErrorClass(phi)
		if err != nil {
			t.Fatal(err)
		}
		q := mutation.MustUniform(nu, p)

		// Full solve via Pi(Fmmp).
		op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
		full, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-13, Start: core.FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		fullX := vec.Clone(full.Vector)
		if err := core.Concentrations(fullX); err != nil {
			t.Fatal(err)
		}
		fullGamma, err := core.ClassConcentrations(nu, fullX)
		if err != nil {
			t.Fatal(err)
		}

		// Reduced solve.
		red, err := New(phi, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := red.Solve()
		if err != nil {
			t.Fatal(err)
		}

		if math.Abs(res.Lambda-full.Lambda) > 1e-8*(1+math.Abs(full.Lambda)) {
			t.Errorf("ν=%d: reduced λ = %.15g, full λ = %.15g", nu, res.Lambda, full.Lambda)
		}
		for k := 0; k <= nu; k++ {
			if math.Abs(res.Gamma[k]-fullGamma[k]) > 1e-7 {
				t.Errorf("ν=%d: [Γ%d] reduced %.12g vs full %.12g", nu, k, res.Gamma[k], fullGamma[k])
			}
		}

		// Expanded eigenvector matches the full concentration vector.
		x, err := Expand(res.ClassVector)
		if err != nil {
			t.Fatal(err)
		}
		if d := vec.DistInf(x, fullX); d > 1e-8 {
			t.Errorf("ν=%d: expanded eigenvector deviates by %g", nu, d)
		}
	}
}

func TestReductionSinglePeakThreshold(t *testing.T) {
	// Below the error threshold the master class dominates; above it the
	// distribution is uniform and [Γk] → C(ν,k)/N.
	const nu = 20
	l, _ := landscape.NewSinglePeak(nu, 2, 1)

	solve := func(p float64) []float64 {
		red, err := FromLandscape(l, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := red.Solve()
		if err != nil {
			t.Fatal(err)
		}
		return res.Gamma
	}

	ordered := solve(0.005)
	if ordered[0] < 0.5 {
		t.Errorf("p=0.005: [Γ0] = %g; expected master-class dominance", ordered[0])
	}
	random := solve(0.08) // beyond pmax ≈ 0.035 for ν=20, f0/f1=2
	for k := 0; k <= nu; k++ {
		want := bits.BinomialFloat(nu, k) / math.Pow(2, nu)
		if math.Abs(random[k]-want) > 1e-3 {
			t.Errorf("p=0.08: [Γ%d] = %g, want ≈ uniform %g", k, random[k], want)
		}
	}
}

func TestRescaleToGamma(t *testing.T) {
	// Uniform representative concentrations ⇒ [Γk] = C(ν,k)/2^ν.
	const nu = 6
	v := make([]float64, nu+1)
	for i := range v {
		v[i] = 1.0 / float64(nu+1)
	}
	g := RescaleToGamma(v)
	var sum float64
	for k := range g {
		want := bits.BinomialFloat(nu, k) / 64
		if math.Abs(g[k]-want) > 1e-14 {
			t.Errorf("[Γ%d] = %g, want %g", k, g[k], want)
		}
		sum += g[k]
	}
	if math.Abs(sum-1) > 1e-14 {
		t.Errorf("Σ[Γk] = %g", sum)
	}
}

func TestVeryLongChains(t *testing.T) {
	// ν = 500: far beyond any 2^ν method; the reduction must still work
	// and produce an ordered distribution at p well below the threshold
	// p_max ≈ ln(2)/ν ≈ 1.39e-3, and the uniform one above it.
	const nu = 500
	phi := make([]float64, nu+1)
	phi[0] = 2
	for k := 1; k <= nu; k++ {
		phi[k] = 1
	}
	red, err := New(phi, 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	res, err := red.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Gamma[0] < 0.3 {
		t.Errorf("[Γ0] = %g; expected ordered distribution at p well below threshold", res.Gamma[0])
	}
	// λ ≈ f0·(1−p)^ν = 2·e^{−νp} in the ordered regime (perturbative).
	wantLam := 2 * math.Pow(1-0.0005, nu)
	if math.Abs(res.Lambda-wantLam) > 0.05 {
		t.Errorf("λ = %g, want ≈ %g", res.Lambda, wantLam)
	}
	var sum float64
	for _, g := range res.Gamma {
		sum += g
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Σ[Γk] = %g", sum)
	}

	// Above the threshold: the distribution collapses to the binomial
	// profile of the uniform state.
	redHi, err := New(phi, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := redHi.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if resHi.Gamma[0] > 1e-10 {
		t.Errorf("above threshold [Γ0] = %g; expected vanishing master class", resHi.Gamma[0])
	}
}

func TestFromLandscapeRejectsUnstructured(t *testing.T) {
	l, _ := landscape.NewRandom(6, 5, 1, 1)
	if _, err := FromLandscape(l, 0.01); err == nil {
		t.Error("random landscape must be rejected")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0.01); err == nil {
		t.Error("empty ϕ must be rejected")
	}
	if _, err := New([]float64{1, -1}, 0.01); err == nil {
		t.Error("negative ϕ must be rejected")
	}
	if _, err := New([]float64{1, 1}, 0.7); err == nil {
		t.Error("invalid p must be rejected")
	}
}

func TestExpandValidation(t *testing.T) {
	if _, err := Expand(nil); err == nil {
		t.Error("empty class vector must be rejected")
	}
	if _, err := Expand(make([]float64, 40)); err == nil {
		t.Error("oversized expansion must be rejected")
	}
}

func TestMatrixAccessorsReturnCopies(t *testing.T) {
	red, err := New([]float64{2, 1, 1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m := red.Matrix()
	m.Set(0, 0, 999)
	if red.Matrix().At(0, 0) == 999 {
		t.Error("Matrix() must return a copy")
	}
	q := red.MutationMatrix()
	q.Set(0, 0, 999)
	if red.MutationMatrix().At(0, 0) == 999 {
		t.Error("MutationMatrix() must return a copy")
	}
}

func TestSolveShiftInvertMatchesPowerSolve(t *testing.T) {
	// The RQI shift-invert path must agree with the dense power path at
	// every distance from the threshold, warm or cold, in a few dozen
	// factorizations at most.
	phi := make([]float64, 15)
	phi[0] = 8
	for k := 1; k < len(phi); k++ {
		phi[k] = 1
	}
	nu := len(phi) - 1
	pc := 1 - math.Pow(8, -1/float64(nu))
	var warm []float64
	for _, frac := range []float64{0.3, 0.8, 0.99, 1.01, 1.3} {
		p := frac * pc
		red, err := New(phi, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := red.Solve()
		if err != nil {
			t.Fatal(err)
		}
		got, err := red.SolveShiftInvertFrom(warm)
		if err != nil {
			t.Fatalf("p = %g: %v", p, err)
		}
		if math.Abs(got.Lambda-want.Lambda) > 1e-10*want.Lambda {
			t.Fatalf("p = %g: λ = %.15g, power path %.15g", p, got.Lambda, want.Lambda)
		}
		for k := range want.Gamma {
			if math.Abs(got.Gamma[k]-want.Gamma[k]) > 1e-9 {
				t.Fatalf("p = %g: Gamma[%d] = %.12g, power path %.12g", p, k, got.Gamma[k], want.Gamma[k])
			}
		}
		if got.Iterations > 200 {
			t.Fatalf("p = %g: %d iterations — shift-invert should be O(10)", p, got.Iterations)
		}
		warm = got.Gamma
	}
}

func TestSolveShiftInvertValidation(t *testing.T) {
	red, err := New([]float64{2, 1, 1, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := red.SolveShiftInvertFrom([]float64{1, 2}); err == nil {
		t.Error("mis-sized start must be rejected")
	}
	if _, err := red.SolveShiftInvertFrom(make([]float64, 4)); err == nil {
		t.Error("zero start must be rejected")
	}
}
