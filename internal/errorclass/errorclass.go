// Package errorclass implements the exact problem reduction of Section 5.1:
// for fitness landscapes that depend only on the Hamming distance to the
// master sequence (fᵢ = ϕ(dH(i,0))), the N×N eigenproblem for W = Q·F
// reduces *exactly* — not approximately, as in the earlier literature — to
// a (ν+1)×(ν+1) problem built from the reduced mutation matrix
//
//	QΓ[d][k] = Σ_j C(ν−d, k−j)·C(d, j)·p^(k+d−2j)·(1−p)^(ν−(k+d−2j))   (Eq. 14)
//
// (the probability that a fixed molecule of error class Γ_d mutates into
// any molecule of class Γ_k). Lemma 2 shows W maps error-class vectors to
// error-class vectors, so the dominant eigenvector of the full problem is
// an error-class vector and can be recovered from the reduced one; the
// cumulative concentrations follow from the rescaling
//
//	[Γ_k] = C(ν,k)·vΓ_k / Σ_j C(ν,j)·vΓ_j,
//
// which accounts for the reduced eigenvector holding *representative*
// concentrations, not class totals.
//
// Because the reduction never touches the 2^ν space, it works for chain
// lengths far beyond dense storage (ν in the thousands).
package errorclass

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dense"
	"repro/internal/landscape"
	"repro/internal/span"
	"repro/internal/vec"
)

// MaxChainLen bounds ν for the reduction; (ν+1)² dense work stays trivial
// far beyond any biologically meaningful chain length.
const MaxChainLen = 1 << 14

// Reduction is the reduced (ν+1)×(ν+1) eigenproblem for an error-class
// landscape ϕ at error rate p.
type Reduction struct {
	nu  int
	p   float64
	phi []float64
	// w is the reduced matrix W̃[d][k] = QΓ[d][k]·ϕ(k).
	w *dense.Matrix
	// qGamma is the reduced mutation matrix QΓ.
	qGamma *dense.Matrix
}

// ReducedQ returns the reduced mutation matrix QΓ of Eq. 14 for chain
// length nu and error rate p. Row d, column k is the probability that a
// fixed sequence of class Γ_d mutates into any sequence of class Γ_k.
func ReducedQ(nu int, p float64) (*dense.Matrix, error) {
	if nu < 0 || nu > MaxChainLen {
		return nil, fmt.Errorf("errorclass: chain length %d out of range [0,%d]", nu, MaxChainLen)
	}
	if !(p > 0 && p <= 0.5) {
		return nil, fmt.Errorf("errorclass: error rate p = %g outside (0, 1/2]", p)
	}
	m := dense.NewMatrix(nu+1, nu+1)
	// log-space accumulation keeps entries finite for very long chains,
	// where C(ν,·) overflows float64 mid-product.
	logP, logQ := math.Log(p), math.Log1p(-p) // log(1−p)
	logFact := make([]float64, nu+2)
	for i := 2; i <= nu+1; i++ {
		logFact[i] = logFact[i-1] + math.Log(float64(i))
	}
	logBin := func(n, k int) float64 {
		if k < 0 || k > n {
			return math.Inf(-1)
		}
		return logFact[n] - logFact[k] - logFact[n-k]
	}
	for d := 0; d <= nu; d++ {
		for k := 0; k <= nu; k++ {
			lo := k + d - nu
			if lo < 0 {
				lo = 0
			}
			hi := k
			if d < hi {
				hi = d
			}
			var sum float64
			for j := lo; j <= hi; j++ {
				h := k + d - 2*j // Hamming distance of this transition
				logTerm := logBin(nu-d, k-j) + logBin(d, j) +
					float64(h)*logP + float64(nu-h)*logQ
				sum += math.Exp(logTerm)
			}
			m.Set(d, k, sum)
		}
	}
	return m, nil
}

// New builds the reduction for the class fitness table phi (length ν+1,
// all positive) and error rate p.
func New(phi []float64, p float64) (*Reduction, error) {
	nu := len(phi) - 1
	if nu < 0 {
		return nil, errors.New("errorclass: empty ϕ table")
	}
	for k, v := range phi {
		if v <= 0 {
			return nil, fmt.Errorf("errorclass: ϕ(%d) = %g must be positive", k, v)
		}
	}
	qg, err := ReducedQ(nu, p)
	if err != nil {
		return nil, err
	}
	w := qg.Clone()
	w.ScaleColumns(phi)
	cp := make([]float64, len(phi))
	copy(cp, phi)
	return &Reduction{nu: nu, p: p, phi: cp, w: w, qGamma: qg}, nil
}

// FromLandscape builds the reduction for any class-based landscape,
// returning an error for landscapes without class structure.
func FromLandscape(l landscape.Landscape, p float64) (*Reduction, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return nil, fmt.Errorf("errorclass: landscape %T is not error-class structured", l)
	}
	return New(phi, p)
}

// ChainLen returns ν.
func (r *Reduction) ChainLen() int { return r.nu }

// Matrix returns the reduced matrix W̃ = QΓ·diag(ϕ) (a copy).
func (r *Reduction) Matrix() *dense.Matrix { return r.w.Clone() }

// MutationMatrix returns QΓ (a copy).
func (r *Reduction) MutationMatrix() *dense.Matrix { return r.qGamma.Clone() }

// Result is the solved reduced eigenproblem.
type Result struct {
	// Lambda is the dominant eigenvalue — identical to that of the full
	// N×N problem.
	Lambda float64
	// ClassVector is vΓ, the reduced eigenvector of representative
	// concentrations, normalized to Σ vΓ_k = 1.
	ClassVector []float64
	// Gamma holds the cumulative class concentrations [Γ_k] obtained by
	// the C(ν,k) rescaling; Σ [Γ_k] = 1.
	Gamma []float64
	// Iterations used by the dense eigensolver.
	Iterations int
}

// Solve computes the dominant eigenpair of the reduced problem with the
// dense power method (the matrix is (ν+1)² — trivially small).
//
// Numerically the iteration runs on the similarity-transformed matrix
// M = D·W̃·D⁻¹ with D = diag(C(ν,k)), which by the symmetry
// C(ν,d)·QΓ[d][k] = C(ν,k)·QΓ[k][d] equals QΓᵀ·diag(ϕ). Its dominant
// eigenvector is the class-total distribution [Γ_k] directly. This is the
// same mathematics as the paper's representative-form rescaling, but it
// avoids amplifying the eigensolver's round-off floor by C(ν,ν/2) — which
// reaches 10^299 at ν = 1000 and would otherwise drown the true tail of
// the distribution.
func (r *Reduction) Solve() (*Result, error) {
	return r.SolveFrom(nil)
}

// SolveFrom is Solve seeded with a starting guess in Γ space — typically
// the Gamma vector of a neighboring error rate's solution. Because the
// iteration runs on M = QΓᵀ·diag(ϕ) whose dominant eigenvector IS the
// class-total distribution, a previous point's Gamma is exactly the right
// warm start for a monotone p-sweep; the batched sweep engine uses it for
// its continuation chains. A nil start falls back to the uniform vector.
func (r *Reduction) SolveFrom(start []float64) (*Result, error) {
	n := r.nu + 1
	m := r.qGamma.Transpose()
	m.ScaleColumns(r.phi)
	if start == nil {
		start = make([]float64, n)
		vec.Fill(start, 1/float64(n))
	} else if len(start) != n {
		return nil, fmt.Errorf("errorclass: start vector length %d, want %d", len(start), n)
	}
	lam, u, iters, err := dense.Dominant(m, &dense.DominantOptions{
		Tol: 1e-14, MaxIter: 5000000, Start: start,
	})
	if err != nil {
		return nil, fmt.Errorf("errorclass: reduced eigensolve failed: %w", err)
	}
	// u is a Perron vector: clamp round-off and normalize to Σ[Γk] = 1.
	for i, x := range u {
		if x < 0 {
			if x < -1e-9 {
				return nil, fmt.Errorf("errorclass: reduced eigenvector entry %d = %g is negative", i, x)
			}
			u[i] = 0
		}
	}
	vec.Normalize1(u)
	res := &Result{Lambda: lam, Gamma: u, Iterations: iters}
	// Representative concentrations vΓ_k = [Γ_k]/C(ν,k); entries may
	// underflow to zero for very long chains, where only Gamma is
	// representable in float64.
	v := make([]float64, n)
	for k := range v {
		v[k] = u[k] / bits.BinomialFloat(r.nu, k)
	}
	vec.Normalize1(v)
	res.ClassVector = v
	return res, nil
}

// RescaleToGamma converts a reduced eigenvector vΓ into cumulative class
// concentrations [Γ_k] = C(ν,k)·vΓ_k / Σ_j C(ν,j)·vΓ_j.
func RescaleToGamma(classVector []float64) []float64 {
	nu := len(classVector) - 1
	gamma := make([]float64, nu+1)
	var denom float64
	for k, v := range classVector {
		gamma[k] = bits.BinomialFloat(nu, k) * v
		denom += gamma[k]
	}
	for k := range gamma {
		gamma[k] /= denom
	}
	return gamma
}

// Expand materializes the full 2^ν eigenvector from the reduced one:
// x[i] = vΓ_{dH(i,0)}, normalized to Σ xᵢ = 1 so it is directly the
// quasispecies concentration vector of the Right formulation. Θ(N)
// memory — requires ν within dense range.
func Expand(classVector []float64) ([]float64, error) {
	nu := len(classVector) - 1
	if nu < 0 {
		return nil, errors.New("errorclass: empty class vector")
	}
	if nu > 30 {
		return nil, fmt.Errorf("errorclass: refusing to materialize 2^%d entries", nu)
	}
	n := bits.SpaceSize(nu)
	x := make([]float64, n)
	for i := range x {
		x[i] = classVector[bits.Weight(uint64(i))]
	}
	vec.Normalize1(x)
	return x, nil
}

// SolveShiftInvert computes the dominant eigenpair of the reduced problem
// by Rayleigh-quotient iteration with dense LU shift factorizations — the
// reduced-space sibling of the full-space shift-invert Lanczos gear. Each
// step factorizes (M − λI) and solves one linear system, converging
// quadratically where the power method's rate degrades to λ₁/λ₀ → 1 near
// the error threshold. See SolveShiftInvertFrom for warm starts.
func (r *Reduction) SolveShiftInvert() (*Result, error) {
	return r.SolveShiftInvertFrom(nil)
}

// SolveShiftInvertFrom is SolveShiftInvert seeded with a Γ-space starting
// guess (a neighboring error rate's Gamma vector, exactly like SolveFrom).
// A handful of shifted power steps first steer the iterate into the
// dominant basin; the RQI loop then takes over. Results match SolveFrom to
// the same tolerance; iteration counts stay O(10) at any distance from the
// threshold.
func (r *Reduction) SolveShiftInvertFrom(start []float64) (*Result, error) {
	n := r.nu + 1
	m := r.qGamma.Transpose()
	m.ScaleColumns(r.phi)
	x := make([]float64, n)
	if start == nil {
		vec.Fill(x, 1/float64(n))
	} else if len(start) != n {
		return nil, fmt.Errorf("errorclass: start vector length %d, want %d", len(start), n)
	} else {
		copy(x, start)
	}
	nrm := vec.Norm2(x)
	if nrm == 0 {
		return nil, errors.New("errorclass: start vector is zero")
	}
	vec.Scale(x, 1/nrm)

	w := make([]float64, n)
	y := make([]float64, n)
	const tol = 1e-14
	iters := 0
	// Power pre-steps: cheap insurance that RQI locks onto the Perron
	// eigenpair, not an interior one, from cold or stale starts.
	lambda := 0.0
	for k := 0; k < 20; k++ {
		m.MatVec(w, x)
		iters++
		lambda = vec.Dot(x, w)
		nrm = vec.Norm2(w)
		if nrm == 0 {
			return nil, errors.New("errorclass: power pre-step broke down")
		}
		for i := range x {
			x[i] = w[i] / nrm
		}
	}
	sr := span.Installed()
	converged := false
	for k := 0; k < 60; k++ {
		m.MatVec(w, x)
		lambda = vec.Dot(x, w)
		var rs float64
		for i, wi := range w {
			d := wi - lambda*x[i]
			rs += d * d
		}
		if math.Sqrt(rs) <= tol*math.Max(1, math.Abs(lambda)) {
			converged = true
			break
		}
		// Factorize the shifted matrix and take one inverse-iteration step
		// at the current Rayleigh quotient.
		var sp span.Handle
		if sr != nil {
			sp = sr.Begin(span.LayerCore, "shift_factor") // core.PhaseShiftFactor
		}
		a := m.Clone()
		a.AddDiag(-lambda)
		lu, err := dense.Factorize(a)
		span.End(sp, int64(n), int64(k))
		if err != nil {
			// λ is an eigenvalue to machine precision — the shifted matrix
			// is singular, i.e. we are done.
			converged = true
			break
		}
		lu.Solve(y, x)
		iters++
		nrm = vec.Norm2(y)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			converged = true // solution blew up: λ numerically exact
			break
		}
		for i := range x {
			x[i] = y[i] / nrm
		}
	}
	if !converged {
		return nil, fmt.Errorf("errorclass: shift-invert RQI did not converge at p = %g", r.p)
	}
	// Orient the Perron vector positive, clamp round-off, normalize — the
	// same post-processing as SolveFrom.
	pos, neg := 0, 0
	for _, v := range x {
		if v > 0 {
			pos++
		} else if v < 0 {
			neg++
		}
	}
	if neg > pos {
		vec.Scale(x, -1)
	}
	for i, v := range x {
		if v < 0 {
			if v < -1e-9 {
				return nil, fmt.Errorf("errorclass: reduced eigenvector entry %d = %g is negative", i, v)
			}
			x[i] = 0
		}
	}
	vec.Normalize1(x)
	res := &Result{Lambda: lambda, Gamma: x, Iterations: iters}
	v := make([]float64, n)
	for k := range v {
		v[k] = x[k] / bits.BinomialFloat(r.nu, k)
	}
	vec.Normalize1(v)
	res.ClassVector = v
	return res, nil
}
