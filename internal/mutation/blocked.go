package mutation

import (
	"sync/atomic"

	"repro/internal/device"
)

// This file implements the cache-blocked, stage-fused form of the butterfly
// kernels. The naive loops of Algorithm 1 walk the full vector once per
// stage with strides up to N/2; at ν ≥ 20 every late stage is a pass over
// tens or hundreds of megabytes, so the kernel's Θ(N·log₂N) flops hide
// behind Θ(N·log₂N) DRAM traffic. Blocking restructures the same dataflow
// into few passes:
//
//   - The first stages — all with butterfly span 2·stride ≤ B — are fused
//     into ONE pass over contiguous B-element tiles. A tile is loaded into
//     L1/L2 once, every small-stride stage is applied inside it, and it is
//     written back: log₂B stages for one pass of memory traffic.
//   - The remaining stages (stride ≥ B) are handled by a transposed-block
//     view: the vector becomes an (N/B)×B row matrix, a stage with stride
//     2^k pairs row r with row r ± 2^(k−log₂B), and groups of up to
//     fuseStages consecutive stages are fused by gathering the 2^m
//     interacting rows and sweeping them column-chunk by column-chunk, so
//     each chunk set stays cache-resident across the whole group.
//
// On top of the traversal change the production kernels strength-reduce the
// butterfly arithmetic: every mutation factor is symmetric ([[a,b],[b,a]]),
// and for the stochastic (a+b = 1) and inverse (a−b = 1) shapes the pair
// update needs ONE multiply instead of four:
//
//	d = b·(t2−t1)  ⇒  (a·t1+b·t2, b·t1+a·t2) = (t1+d, t2−d)   for a+b = 1
//	u = b·(t1+t2)  ⇒  (a·t1+b·t2, b·t1+a·t2) = (t1+u, t2+u)   for a−b = 1
//
// The reduced forms are exact in real arithmetic and round differently by at
// most a few ULPs per stage, so blocked vs naive is compared under a tight
// tolerance (≤ 1 ULP of ‖v‖∞ per stage). Within the blocked family the
// dataflow is deterministic and worker-independent: every butterfly output
// depends on exactly two inputs and stages run in the same ascending order
// per interacting group, so the device kernels are BIT-IDENTICAL to the
// serial blocked path at every worker count — that equality is asserted
// exactly.

const (
	// defaultTileBits selects B = 2^11 float64s = 16 KiB per tile, half of
	// a typical 32 KiB L1d so the tile and its store buffer coexist.
	defaultTileBits = 11
	// fuseStages is the number of large-stride stages fused per pass: 2^3
	// row streams at a time keeps the hardware prefetchers effective.
	fuseStages = 3
	// maxFuseStages bounds the stack-allocated row-pointer array of a
	// fused cross-stage group.
	maxFuseStages = 4
	// minColChunk keeps the innermost column sweep long enough to
	// amortize loop overhead even for tiny tiles.
	minColChunk = 64
)

var tileBitsVar atomic.Int32

func init() { tileBitsVar.Store(defaultTileBits) }

// TileBits returns log₂ of the current kernel tile size B (in float64
// elements). The default (11, i.e. B = 2048 elements = 16 KiB) targets a
// 32 KiB L1d cache.
func TileBits() int { return int(tileBitsVar.Load()) }

// SetTileBits sets the kernel tile size to B = 2^bits float64 elements for
// all subsequent blocked transforms, clamped to [1, 30]. It is a process-
// wide tuning knob (like GOMAXPROCS); call it once at startup, not
// concurrently with running kernels.
func SetTileBits(bits int) {
	if bits < 1 {
		bits = 1
	}
	if bits > 30 {
		bits = 30
	}
	tileBitsVar.Store(int32(bits))
}

// splitStages returns the tile size B for a vector of length n and the
// number of leading stages of fs that are tile-local: stage i acts on bit
// off0+i with stride 2^(off0+i) and pairs elements within aligned
// 2^(off0+i+1) blocks, so it stays inside every aligned B-tile iff
// 2^(off0+i+1) ≤ B.
func splitStages(n, off0, nStages, tb int) (B, nSmall int) {
	B = 1 << uint(tb)
	if B > n {
		B = n
	}
	for nSmall < nStages && (2<<uint(off0+nSmall)) <= B {
		nSmall++
	}
	return B, nSmall
}

// applyStagesBlocked applies the single-bit butterfly stages fs — fs[i]
// acting on bit off0+i — to v in ascending stage order, using tiling for
// the small strides and fused row-block passes for the large ones. The
// result is bit-identical to applying the stages one full pass at a time.
func applyStagesBlocked(v []float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(v)
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		for t := 0; t < n; t += B {
			tileStages(v[t:t+B], off0, small)
		}
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		crossStages(v, B, off0+s, fs[s:s+m])
		s += m
	}
}

// applyStagesBlockedDevice is applyStagesBlocked with each fused pass
// dispatched as one device launch: tiles (resp. row groups) are mutually
// independent across the whole stage group, so a single barrier per group
// replaces the per-stage barrier of Algorithm 2.
func applyStagesBlockedDevice(d *device.Device, v []float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(v)
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		d.LaunchStages(nSmall, n/B, B, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				tileStages(v[t*B:(t+1)*B], off0, small)
			}
		})
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		k0 := off0 + s
		group := fs[s : s+m]
		rb0 := k0 - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		d.LaunchStages(m, nBases, B<<uint(m), func(lo, hi int) {
			for bb := lo; bb < hi; bb++ {
				base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
				crossGroup(v, B, base, rb0, group)
			}
		})
		s += m
	}
}

// Butterfly kinds selected per stage by factor shape; the reduced forms
// save three of the four multiplies of the general 2×2 update.
const (
	kindGeneral    = iota // arbitrary [[a,b],[c,d]]
	kindStochastic        // symmetric with a+b = 1 (mutation factors)
	kindUnitDiff          // symmetric with a−b = 1 (inverse factors)
)

// butterflyKind classifies f. The reduced forms require the defining
// identity to hold exactly in float64; anything else takes the general path.
func butterflyKind(f *Factor2) int {
	if f.C != f.B || f.D != f.A {
		return kindGeneral
	}
	if f.A+f.B == 1 {
		return kindStochastic
	}
	if f.A-f.B == 1 {
		return kindUnitDiff
	}
	return kindGeneral
}

// tileStages applies stages fs (fs[i] on bit off0+i, all with
// 2·stride ≤ len(tile)) inside one cache-resident tile. Consecutive stage
// PAIRS of the same reduced kind run as one radix-4 pass: four elements are
// loaded into registers, both stages applied, four stored — halving the
// load/store and loop traffic of the L1-resident sweep. The per-element
// rounding sequence is exactly that of two radix-2 passes, so the fusion is
// bit-identical to the unfused blocked path.
func tileStages(tile []float64, off0 int, fs []Factor2) {
	s := 0
	for ; s+1 < len(fs); s += 2 {
		f1, f2 := &fs[s], &fs[s+1]
		stride := 1 << uint(off0+s)
		k1, k2 := butterflyKind(f1), butterflyKind(f2)
		switch {
		case k1 == kindStochastic && k2 == kindStochastic:
			tilePairStochastic(tile, stride, f1.B, f2.B)
		case k1 == kindUnitDiff && k2 == kindUnitDiff:
			tilePairUnitDiff(tile, stride, f1.B, f2.B)
		default:
			tileStage(tile, stride, f1)
			tileStage(tile, 2*stride, f2)
		}
	}
	if s < len(fs) {
		tileStage(tile, 1<<uint(off0+s), &fs[s])
	}
}

// tileStage applies one butterfly stage with the given stride inside a tile.
func tileStage(tile []float64, stride int, f *Factor2) {
	switch butterflyKind(f) {
	case kindStochastic:
		b := f.B
		for j := 0; j < len(tile); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := tile[k], tile[k+stride]
				d := b * (t2 - t1)
				tile[k] = t1 + d
				tile[k+stride] = t2 - d
			}
		}
	case kindUnitDiff:
		b := f.B
		for j := 0; j < len(tile); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := tile[k], tile[k+stride]
				u := b * (t1 + t2)
				tile[k] = t1 + u
				tile[k+stride] = t2 + u
			}
		}
	default:
		a, b, c, dd := f.A, f.B, f.C, f.D
		for j := 0; j < len(tile); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := tile[k], tile[k+stride]
				tile[k] = a*t1 + b*t2
				tile[k+stride] = c*t1 + dd*t2
			}
		}
	}
}

// tilePairStochastic applies two consecutive stochastic stages (strides
// stride and 2·stride, off-diagonal entries b1 and b2) in one radix-4 pass.
func tilePairStochastic(tile []float64, stride int, b1, b2 float64) {
	for j := 0; j < len(tile); j += 4 * stride {
		for k := j; k < j+stride; k++ {
			e0, e1 := tile[k], tile[k+stride]
			e2, e3 := tile[k+2*stride], tile[k+3*stride]
			d := b1 * (e1 - e0)
			e0, e1 = e0+d, e1-d
			d = b1 * (e3 - e2)
			e2, e3 = e2+d, e3-d
			d = b2 * (e2 - e0)
			e0, e2 = e0+d, e2-d
			d = b2 * (e3 - e1)
			e1, e3 = e1+d, e3-d
			tile[k], tile[k+stride] = e0, e1
			tile[k+2*stride], tile[k+3*stride] = e2, e3
		}
	}
}

// tilePairUnitDiff is tilePairStochastic for two unit-difference stages
// (the inverse factors of Eq. 12).
func tilePairUnitDiff(tile []float64, stride int, b1, b2 float64) {
	for j := 0; j < len(tile); j += 4 * stride {
		for k := j; k < j+stride; k++ {
			e0, e1 := tile[k], tile[k+stride]
			e2, e3 := tile[k+2*stride], tile[k+3*stride]
			u := b1 * (e0 + e1)
			e0, e1 = e0+u, e1+u
			u = b1 * (e2 + e3)
			e2, e3 = e2+u, e3+u
			u = b2 * (e0 + e2)
			e0, e2 = e0+u, e2+u
			u = b2 * (e1 + e3)
			e1, e3 = e1+u, e3+u
			tile[k], tile[k+stride] = e0, e1
			tile[k+2*stride], tile[k+3*stride] = e2, e3
		}
	}
}

// crossStages applies a fused group of large-stride stages — fs[i] on bit
// k0+i with 2^k0 ≥ B — by enumerating the independent groups of 2^len(fs)
// interacting rows of the (n/B)×B row matrix.
func crossStages(v []float64, B, k0 int, fs []Factor2) {
	m := len(fs)
	rb0 := k0 - log2(B)
	lowMask := 1<<uint(rb0) - 1
	nBases := (len(v) >> uint(log2(B))) >> uint(m)
	for bb := 0; bb < nBases; bb++ {
		base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
		crossGroup(v, B, base, rb0, fs)
	}
}

// crossGroup applies the fused stages to one interacting set of 2^m rows
// (row t of the set has index baseRow | t<<rb0), sweeping column chunks so
// the working set of the whole group stays cache-resident.
func crossGroup(v []float64, B, baseRow, rb0 int, fs []Factor2) {
	m := len(fs)
	size := 1 << uint(m)
	var rp [1 << maxFuseStages][]float64
	for t := 0; t < size; t++ {
		r := baseRow | t<<uint(rb0)
		rp[t] = v[r*B : r*B+B]
	}
	colChunk := colChunkFor(size, B)
	for c0 := 0; c0 < B; c0 += colChunk {
		c1 := c0 + colChunk
		if c1 > B {
			c1 = B
		}
		// Stage pairs of the same reduced kind run radix-4 over the chunk
		// (see tileStages); odd or mixed-kind stages fall back to radix-2.
		s := 0
		for ; s+1 < m; s += 2 {
			f1, f2 := &fs[s], &fs[s+1]
			k1, k2 := butterflyKind(f1), butterflyKind(f2)
			bit1, bit2 := 1<<uint(s), 2<<uint(s)
			switch {
			case k1 == kindStochastic && k2 == kindStochastic:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					r0, r1 := rp[t][c0:c1], rp[t|bit1][c0:c1]
					r2, r3 := rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1]
					for i := range r0 {
						e0, e1, e2, e3 := r0[i], r1[i], r2[i], r3[i]
						d := b1 * (e1 - e0)
						e0, e1 = e0+d, e1-d
						d = b1 * (e3 - e2)
						e2, e3 = e2+d, e3-d
						d = b2 * (e2 - e0)
						e0, e2 = e0+d, e2-d
						d = b2 * (e3 - e1)
						e1, e3 = e1+d, e3-d
						r0[i], r1[i], r2[i], r3[i] = e0, e1, e2, e3
					}
				}
			case k1 == kindUnitDiff && k2 == kindUnitDiff:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					r0, r1 := rp[t][c0:c1], rp[t|bit1][c0:c1]
					r2, r3 := rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1]
					for i := range r0 {
						e0, e1, e2, e3 := r0[i], r1[i], r2[i], r3[i]
						u := b1 * (e0 + e1)
						e0, e1 = e0+u, e1+u
						u = b1 * (e2 + e3)
						e2, e3 = e2+u, e3+u
						u = b2 * (e0 + e2)
						e0, e2 = e0+u, e2+u
						u = b2 * (e1 + e3)
						e1, e3 = e1+u, e3+u
						r0[i], r1[i], r2[i], r3[i] = e0, e1, e2, e3
					}
				}
			default:
				crossStage(rp[:size], c0, c1, s, f1)
				crossStage(rp[:size], c0, c1, s+1, f2)
			}
		}
		if s < m {
			crossStage(rp[:size], c0, c1, s, &fs[s])
		}
	}
}

// crossStage applies one radix-2 stage (row bit s) over the column chunk
// [c0, c1) of the gathered rows.
func crossStage(rp [][]float64, c0, c1, s int, f *Factor2) {
	bit := 1 << uint(s)
	switch butterflyKind(f) {
	case kindStochastic:
		b := f.B
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for i := range u {
				t1, t2 := u[i], w[i]
				d := b * (t2 - t1)
				u[i] = t1 + d
				w[i] = t2 - d
			}
		}
	case kindUnitDiff:
		b := f.B
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for i := range u {
				t1, t2 := u[i], w[i]
				uu := b * (t1 + t2)
				u[i] = t1 + uu
				w[i] = t2 + uu
			}
		}
	default:
		a, b, c, dd := f.A, f.B, f.C, f.D
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for i := range u {
				t1, t2 := u[i], w[i]
				u[i] = a*t1 + b*t2
				w[i] = c*t1 + dd*t2
			}
		}
	}
}

// colChunkFor sizes the column sweep so that size rows × chunk columns of
// float64s stay near 32 KiB.
func colChunkFor(size, B int) int {
	c := 4096 / size
	if c < minColChunk {
		c = minColChunk
	}
	if c > B {
		c = B
	}
	return c
}

// log2 returns log₂(n) for a power-of-two n.
func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
