package mutation

import (
	"sync/atomic"

	"repro/internal/device"
)

// This file implements the cache-blocked, stage-fused form of the butterfly
// kernels. The naive loops of Algorithm 1 walk the full vector once per
// stage with strides up to N/2; at ν ≥ 20 every late stage is a pass over
// tens or hundreds of megabytes, so the kernel's Θ(N·log₂N) flops hide
// behind Θ(N·log₂N) DRAM traffic. Blocking restructures the same dataflow
// into few passes:
//
//   - The first stages — all with butterfly span 2·stride ≤ B — are fused
//     into ONE pass over contiguous B-element tiles. A tile is loaded into
//     L1/L2 once, every small-stride stage is applied inside it, and it is
//     written back: log₂B stages for one pass of memory traffic.
//   - The remaining stages (stride ≥ B) are handled by a transposed-block
//     view: the vector becomes an (N/B)×B row matrix, a stage with stride
//     2^k pairs row r with row r ± 2^(k−log₂B), and groups of up to
//     fuseStages consecutive stages are fused by gathering the 2^m
//     interacting rows and sweeping them column-chunk by column-chunk, so
//     each chunk set stays cache-resident across the whole group.
//
// On top of the traversal change the production kernels strength-reduce the
// butterfly arithmetic: every mutation factor is symmetric ([[a,b],[b,a]]),
// and for the stochastic (a+b = 1) and inverse (a−b = 1) shapes the pair
// update needs ONE multiply instead of four:
//
//	d = b·(t2−t1)  ⇒  (a·t1+b·t2, b·t1+a·t2) = (t1+d, t2−d)   for a+b = 1
//	u = b·(t1+t2)  ⇒  (a·t1+b·t2, b·t1+a·t2) = (t1+u, t2+u)   for a−b = 1
//
// The reduced forms are exact in real arithmetic and round differently by at
// most a few ULPs per stage, so blocked vs naive is compared under a tight
// tolerance (≤ 1 ULP of ‖v‖∞ per stage). Within the blocked family the
// dataflow is deterministic and worker-independent: every butterfly output
// depends on exactly two inputs and stages run in the same ascending order
// per interacting group, so the device kernels are BIT-IDENTICAL to the
// serial blocked path at every worker count — that equality is asserted
// exactly.
//
// Inner-loop discipline (the "kernel floor", DESIGN.md §5.6): every hot
// loop in this file is written so the compiler proves bounds-check
// elimination — the interacting lanes of a butterfly block are hoisted as
// exact-length subslices and every index is discharged against the loop
// bound — and runs 4-wide, four independent butterfly chains in flight per
// iteration so the out-of-order core overlaps their FP latencies. The
// unrolling never reorders the operation sequence OF ONE ELEMENT, only
// interleaves independent elements, so the unrolled kernels are
// bit-identical to their scalar forms (and therefore to the PR 1 kernels).
// CI enforces the no-new-bounds-checks invariant with a
// `-gcflags=-d=ssa/check_bce` lint against scripts/bce_allowlist.txt.

const (
	// defaultTileBits selects B = 2^12 float64s = 32 KiB per tile: one more
	// butterfly stage is absorbed into the single L1/L2-resident tile pass,
	// which at ν ≥ 18 saves a full-vector cross pass — worth more than the
	// tighter L1 fit of a 16 KiB tile on every host measured.
	defaultTileBits = 12
	// fuseStages is the number of large-stride stages fused per pass: 2^4
	// row streams per pass is the fewest-passes point that still keeps the
	// hardware prefetchers effective (16 concurrent streams).
	fuseStages = 4
	// maxFuseStages bounds the stack-allocated row-pointer array of a
	// fused cross-stage group.
	maxFuseStages = 4
	// minColChunk keeps the innermost column sweep long enough to
	// amortize loop overhead even for tiny tiles.
	minColChunk = 64
)

var tileBitsVar atomic.Int32

func init() { tileBitsVar.Store(defaultTileBits) }

// TileBits returns log₂ of the current kernel tile size B (in float64
// elements). The default (12, i.e. B = 4096 elements = 32 KiB) trades L1
// residency for one more fused stage per tile pass; see defaultTileBits.
func TileBits() int { return int(tileBitsVar.Load()) }

// SetTileBits sets the kernel tile size to B = 2^bits float64 elements for
// all subsequent blocked transforms, clamped to [1, 30]. It is a process-
// wide tuning knob (like GOMAXPROCS); call it once at startup, not
// concurrently with running kernels.
func SetTileBits(bits int) {
	if bits < 1 {
		bits = 1
	}
	if bits > 30 {
		bits = 30
	}
	tileBitsVar.Store(int32(bits))
}

// splitStages returns the tile size B for a vector of length n and the
// number of leading stages of fs that are tile-local: stage i acts on bit
// off0+i with stride 2^(off0+i) and pairs elements within aligned
// 2^(off0+i+1) blocks, so it stays inside every aligned B-tile iff
// 2^(off0+i+1) ≤ B.
func splitStages(n, off0, nStages, tb int) (B, nSmall int) {
	B = 1 << uint(tb)
	if B > n {
		B = n
	}
	for nSmall < nStages && (2<<uint(off0+nSmall)) <= B {
		nSmall++
	}
	return B, nSmall
}

// applyStagesBlocked applies the single-bit butterfly stages fs — fs[i]
// acting on bit off0+i — to v in ascending stage order, using tiling for
// the small strides and fused row-block passes for the large ones. The
// result is bit-identical to applying the stages one full pass at a time.
func applyStagesBlocked(v []float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(v)
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		for t := 0; t < n; t += B {
			tileStages(v[t:t+B], off0, small)
		}
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		crossStages(v, B, off0+s, fs[s:s+m])
		s += m
	}
}

// applyStagesBlockedDevice is applyStagesBlocked with each fused pass
// dispatched as one device launch: tiles (resp. row groups) are mutually
// independent across the whole stage group, so a single barrier per group
// replaces the per-stage barrier of Algorithm 2.
func applyStagesBlockedDevice(d *device.Device, v []float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(v)
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		d.LaunchStages(nSmall, n/B, B, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				tileStages(v[t*B:(t+1)*B], off0, small)
			}
		})
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		k0 := off0 + s
		group := fs[s : s+m]
		rb0 := k0 - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		d.LaunchStages(m, nBases, B<<uint(m), func(lo, hi int) {
			for bb := lo; bb < hi; bb++ {
				base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
				crossGroup(v, B, base, rb0, group)
			}
		})
		s += m
	}
}

// Butterfly kinds selected per stage by factor shape; the reduced forms
// save three of the four multiplies of the general 2×2 update.
const (
	kindGeneral    = iota // arbitrary [[a,b],[c,d]]
	kindStochastic        // symmetric with a+b = 1 (mutation factors)
	kindUnitDiff          // symmetric with a−b = 1 (inverse factors)
)

// butterflyKind classifies f. The reduced forms require the defining
// identity to hold exactly in float64; anything else takes the general path.
func butterflyKind(f *Factor2) int {
	if f.C != f.B || f.D != f.A {
		return kindGeneral
	}
	if f.A+f.B == 1 {
		return kindStochastic
	}
	if f.A-f.B == 1 {
		return kindUnitDiff
	}
	return kindGeneral
}

// ---------------------------------------------------------------------------
// straight-line butterfly bodies
//
// bfly4s / bfly4u are the radix-4 pair updates of the stochastic and
// unit-difference kinds as pure register functions: four elements in, both
// stages applied, four out. The operation sequence is exactly that of two
// radix-2 passes (first-stage pair (e0,e1), (e2,e3); second-stage pair
// (e0,e2), (e1,e3)), which is the sequence every correctness test pins.

func bfly4s(e0, e1, e2, e3, b1, b2 float64) (float64, float64, float64, float64) {
	d := b1 * (e1 - e0)
	e0, e1 = e0+d, e1-d
	d = b1 * (e3 - e2)
	e2, e3 = e2+d, e3-d
	d = b2 * (e2 - e0)
	e0, e2 = e0+d, e2-d
	d = b2 * (e3 - e1)
	e1, e3 = e1+d, e3-d
	return e0, e1, e2, e3
}

func bfly4u(e0, e1, e2, e3, b1, b2 float64) (float64, float64, float64, float64) {
	u := b1 * (e0 + e1)
	e0, e1 = e0+u, e1+u
	u = b1 * (e2 + e3)
	e2, e3 = e2+u, e3+u
	u = b2 * (e0 + e2)
	e0, e2 = e0+u, e2+u
	u = b2 * (e1 + e3)
	e1, e3 = e1+u, e3+u
	return e0, e1, e2, e3
}

// tileStages applies stages fs (fs[i] on bit off0+i, all with
// 2·stride ≤ len(tile)) inside one cache-resident tile. Consecutive stage
// PAIRS of the same reduced kind run as one radix-4 pass: four elements are
// loaded into registers, both stages applied, four stored — halving the
// load/store and loop traffic of the L1-resident sweep. The per-element
// rounding sequence is exactly that of two radix-2 passes, so the fusion is
// bit-identical to the unfused blocked path.
func tileStages(tile []float64, off0 int, fs []Factor2) {
	s := 0
	for ; s+1 < len(fs); s += 2 {
		f1, f2 := &fs[s], &fs[s+1]
		stride := 1 << uint(off0+s)
		k1, k2 := butterflyKind(f1), butterflyKind(f2)
		switch {
		case k1 == kindStochastic && k2 == kindStochastic:
			tilePairStochastic(tile, stride, f1.B, f2.B)
		case k1 == kindUnitDiff && k2 == kindUnitDiff:
			tilePairUnitDiff(tile, stride, f1.B, f2.B)
		default:
			tileStage(tile, stride, f1)
			tileStage(tile, 2*stride, f2)
		}
	}
	if s < len(fs) {
		tileStage(tile, 1<<uint(off0+s), &fs[s])
	}
}

// tileStage applies one butterfly stage with the given stride inside a tile.
// The two lanes of each 2·stride block are hoisted as exact-length
// subslices (BCE) and the element loop runs 4-wide.
func tileStage(tile []float64, stride int, f *Factor2) {
	switch butterflyKind(f) {
	case kindStochastic:
		b := f.B
		if stride == 1 {
			// Slice-advance with constant indexes: the one loop form the
			// go1.24 prover discharges completely (scripts/check_bce.sh).
			for t := tile; len(t) >= 2; t = t[2:] {
				t1, t2 := t[0], t[1]
				d := b * (t2 - t1)
				t[0] = t1 + d
				t[1] = t2 - d
			}
			return
		}
		for j := 0; j+2*stride <= len(tile); j += 2 * stride {
			u := tile[j : j+stride : j+stride]
			w := tile[j+stride : j+2*stride : j+2*stride]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				da := b * (t2a - t1a)
				db := b * (t2b - t1b)
				dc := b * (t2c - t1c)
				dd := b * (t2d - t1d)
				u[0], w[0] = t1a+da, t2a-da
				u[1], w[1] = t1b+db, t2b-db
				u[2], w[2] = t1c+dc, t2c-dc
				u[3], w[3] = t1d+dd, t2d-dd
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				d := b * (t2 - t1)
				u[0] = t1 + d
				w[0] = t2 - d
				u, w = u[1:], w[1:]
			}
		}
	case kindUnitDiff:
		b := f.B
		if stride == 1 {
			for t := tile; len(t) >= 2; t = t[2:] {
				t1, t2 := t[0], t[1]
				uu := b * (t1 + t2)
				t[0] = t1 + uu
				t[1] = t2 + uu
			}
			return
		}
		for j := 0; j+2*stride <= len(tile); j += 2 * stride {
			u := tile[j : j+stride : j+stride]
			w := tile[j+stride : j+2*stride : j+2*stride]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				ua := b * (t1a + t2a)
				ub := b * (t1b + t2b)
				uc := b * (t1c + t2c)
				ud := b * (t1d + t2d)
				u[0], w[0] = t1a+ua, t2a+ua
				u[1], w[1] = t1b+ub, t2b+ub
				u[2], w[2] = t1c+uc, t2c+uc
				u[3], w[3] = t1d+ud, t2d+ud
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				uu := b * (t1 + t2)
				u[0] = t1 + uu
				w[0] = t2 + uu
				u, w = u[1:], w[1:]
			}
		}
	default:
		a, b, c, dd := f.A, f.B, f.C, f.D
		if stride == 1 {
			for t := tile; len(t) >= 2; t = t[2:] {
				t1, t2 := t[0], t[1]
				t[0] = a*t1 + b*t2
				t[1] = c*t1 + dd*t2
			}
			return
		}
		for j := 0; j+2*stride <= len(tile); j += 2 * stride {
			u := tile[j : j+stride : j+stride]
			w := tile[j+stride : j+2*stride : j+2*stride]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				u[0], w[0] = a*t1a+b*t2a, c*t1a+dd*t2a
				u[1], w[1] = a*t1b+b*t2b, c*t1b+dd*t2b
				u[2], w[2] = a*t1c+b*t2c, c*t1c+dd*t2c
				u[3], w[3] = a*t1d+b*t2d, c*t1d+dd*t2d
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				u[0] = a*t1 + b*t2
				w[0] = c*t1 + dd*t2
				u, w = u[1:], w[1:]
			}
		}
	}
}

// tilePairStochastic applies two consecutive stochastic stages (strides
// stride and 2·stride, off-diagonal entries b1 and b2) in one radix-4 pass.
func tilePairStochastic(tile []float64, stride int, b1, b2 float64) {
	if useAVX2 && stride >= 4 && len(tile) >= 4*stride {
		// Same block/column traversal and per-element op sequence, four
		// butterflies per instruction (avx_amd64.s); the Go loop below
		// likewise leaves any partial trailing block untouched.
		avxTilePairS(&tile[0], len(tile)&^(4*stride-1), stride, b1, b2)
		return
	}
	if stride == 1 {
		// Contiguous quads: two independent butterflies per iteration.
		t := tile
		for len(t) >= 8 {
			a0, a1, a2, a3 := bfly4s(t[0], t[1], t[2], t[3], b1, b2)
			c0, c1, c2, c3 := bfly4s(t[4], t[5], t[6], t[7], b1, b2)
			t[0], t[1], t[2], t[3] = a0, a1, a2, a3
			t[4], t[5], t[6], t[7] = c0, c1, c2, c3
			t = t[8:]
		}
		if len(t) >= 4 {
			t[0], t[1], t[2], t[3] = bfly4s(t[0], t[1], t[2], t[3], b1, b2)
		}
		return
	}
	if stride == 2 {
		// Blocks of 8: butterflies (k, k+2, k+4, k+6) and (k+1, k+3, k+5, k+7).
		for t := tile; len(t) >= 8; t = t[8:] {
			a0, a1, a2, a3 := bfly4s(t[0], t[2], t[4], t[6], b1, b2)
			c0, c1, c2, c3 := bfly4s(t[1], t[3], t[5], t[7], b1, b2)
			t[0], t[2], t[4], t[6] = a0, a1, a2, a3
			t[1], t[3], t[5], t[7] = c0, c1, c2, c3
		}
		return
	}
	// stride ≥ 4 (a power of two): hoist the four lanes of each 4·stride
	// block and run the column loop 4-wide.
	for j := 0; j+4*stride <= len(tile); j += 4 * stride {
		s0 := tile[j : j+stride : j+stride]
		s1 := tile[j+stride : j+2*stride : j+2*stride]
		s2 := tile[j+2*stride : j+3*stride : j+3*stride]
		s3 := tile[j+3*stride : j+4*stride : j+4*stride]
		for len(s0) >= 4 && len(s1) >= 4 && len(s2) >= 4 && len(s3) >= 4 {
			a0, a1, a2, a3 := bfly4s(s0[0], s1[0], s2[0], s3[0], b1, b2)
			c0, c1, c2, c3 := bfly4s(s0[1], s1[1], s2[1], s3[1], b1, b2)
			e0, e1, e2, e3 := bfly4s(s0[2], s1[2], s2[2], s3[2], b1, b2)
			g0, g1, g2, g3 := bfly4s(s0[3], s1[3], s2[3], s3[3], b1, b2)
			s0[0], s1[0], s2[0], s3[0] = a0, a1, a2, a3
			s0[1], s1[1], s2[1], s3[1] = c0, c1, c2, c3
			s0[2], s1[2], s2[2], s3[2] = e0, e1, e2, e3
			s0[3], s1[3], s2[3], s3[3] = g0, g1, g2, g3
			s0, s1, s2, s3 = s0[4:], s1[4:], s2[4:], s3[4:]
		}
		for len(s0) > 0 && len(s1) > 0 && len(s2) > 0 && len(s3) > 0 {
			s0[0], s1[0], s2[0], s3[0] = bfly4s(s0[0], s1[0], s2[0], s3[0], b1, b2)
			s0, s1, s2, s3 = s0[1:], s1[1:], s2[1:], s3[1:]
		}
	}
}

// tilePairUnitDiff is tilePairStochastic for two unit-difference stages
// (the inverse factors of Eq. 12).
func tilePairUnitDiff(tile []float64, stride int, b1, b2 float64) {
	if useAVX2 && stride >= 4 && len(tile) >= 4*stride {
		avxTilePairU(&tile[0], len(tile)&^(4*stride-1), stride, b1, b2)
		return
	}
	if stride == 1 {
		t := tile
		for len(t) >= 8 {
			a0, a1, a2, a3 := bfly4u(t[0], t[1], t[2], t[3], b1, b2)
			c0, c1, c2, c3 := bfly4u(t[4], t[5], t[6], t[7], b1, b2)
			t[0], t[1], t[2], t[3] = a0, a1, a2, a3
			t[4], t[5], t[6], t[7] = c0, c1, c2, c3
			t = t[8:]
		}
		if len(t) >= 4 {
			t[0], t[1], t[2], t[3] = bfly4u(t[0], t[1], t[2], t[3], b1, b2)
		}
		return
	}
	if stride == 2 {
		for t := tile; len(t) >= 8; t = t[8:] {
			a0, a1, a2, a3 := bfly4u(t[0], t[2], t[4], t[6], b1, b2)
			c0, c1, c2, c3 := bfly4u(t[1], t[3], t[5], t[7], b1, b2)
			t[0], t[2], t[4], t[6] = a0, a1, a2, a3
			t[1], t[3], t[5], t[7] = c0, c1, c2, c3
		}
		return
	}
	for j := 0; j+4*stride <= len(tile); j += 4 * stride {
		s0 := tile[j : j+stride : j+stride]
		s1 := tile[j+stride : j+2*stride : j+2*stride]
		s2 := tile[j+2*stride : j+3*stride : j+3*stride]
		s3 := tile[j+3*stride : j+4*stride : j+4*stride]
		for len(s0) >= 4 && len(s1) >= 4 && len(s2) >= 4 && len(s3) >= 4 {
			a0, a1, a2, a3 := bfly4u(s0[0], s1[0], s2[0], s3[0], b1, b2)
			c0, c1, c2, c3 := bfly4u(s0[1], s1[1], s2[1], s3[1], b1, b2)
			e0, e1, e2, e3 := bfly4u(s0[2], s1[2], s2[2], s3[2], b1, b2)
			g0, g1, g2, g3 := bfly4u(s0[3], s1[3], s2[3], s3[3], b1, b2)
			s0[0], s1[0], s2[0], s3[0] = a0, a1, a2, a3
			s0[1], s1[1], s2[1], s3[1] = c0, c1, c2, c3
			s0[2], s1[2], s2[2], s3[2] = e0, e1, e2, e3
			s0[3], s1[3], s2[3], s3[3] = g0, g1, g2, g3
			s0, s1, s2, s3 = s0[4:], s1[4:], s2[4:], s3[4:]
		}
		for len(s0) > 0 && len(s1) > 0 && len(s2) > 0 && len(s3) > 0 {
			s0[0], s1[0], s2[0], s3[0] = bfly4u(s0[0], s1[0], s2[0], s3[0], b1, b2)
			s0, s1, s2, s3 = s0[1:], s1[1:], s2[1:], s3[1:]
		}
	}
}

// crossStages applies a fused group of large-stride stages — fs[i] on bit
// k0+i with 2^k0 ≥ B — by enumerating the independent groups of 2^len(fs)
// interacting rows of the (n/B)×B row matrix.
func crossStages(v []float64, B, k0 int, fs []Factor2) {
	m := len(fs)
	rb0 := k0 - log2(B)
	lowMask := 1<<uint(rb0) - 1
	nBases := (len(v) >> uint(log2(B))) >> uint(m)
	for bb := 0; bb < nBases; bb++ {
		base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
		crossGroup(v, B, base, rb0, fs)
	}
}

// crossGroup applies the fused stages to one interacting set of 2^m rows
// (row t of the set has index baseRow | t<<rb0), sweeping column chunks so
// the working set of the whole group stays cache-resident.
func crossGroup(v []float64, B, baseRow, rb0 int, fs []Factor2) {
	m := len(fs)
	size := 1 << uint(m)
	var rp [1 << maxFuseStages][]float64
	for t := 0; t < size; t++ {
		r := baseRow | t<<uint(rb0)
		rp[t] = v[r*B : r*B+B]
	}
	colChunk := colChunkFor(size, B)
	for c0 := 0; c0 < B; c0 += colChunk {
		c1 := c0 + colChunk
		if c1 > B {
			c1 = B
		}
		// Stage pairs of the same reduced kind run radix-4 over the chunk
		// (see tileStages); odd or mixed-kind stages fall back to radix-2.
		s := 0
		for ; s+1 < m; s += 2 {
			f1, f2 := &fs[s], &fs[s+1]
			k1, k2 := butterflyKind(f1), butterflyKind(f2)
			bit1, bit2 := 1<<uint(s), 2<<uint(s)
			switch {
			case k1 == kindStochastic && k2 == kindStochastic:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					crossQuadStochastic(rp[t][c0:c1], rp[t|bit1][c0:c1],
						rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1], b1, b2)
				}
			case k1 == kindUnitDiff && k2 == kindUnitDiff:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					crossQuadUnitDiff(rp[t][c0:c1], rp[t|bit1][c0:c1],
						rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1], b1, b2)
				}
			default:
				crossStage(rp[:size], c0, c1, s, f1)
				crossStage(rp[:size], c0, c1, s+1, f2)
			}
		}
		if s < m {
			crossStage(rp[:size], c0, c1, s, &fs[s])
		}
	}
}

// crossQuadStochastic applies a fused pair of stochastic stages radix-4
// across four gathered row chunks: column i of the four rows is one
// butterfly, and the column loop runs 4-wide.
func crossQuadStochastic(r0, r1, r2, r3 []float64, b1, b2 float64) {
	if useAVX2 {
		n := min(len(r0), len(r1), len(r2), len(r3)) &^ 3
		if n > 0 {
			avxQuadS(&r0[0], &r1[0], &r2[0], &r3[0], n, b1, b2)
			r0, r1, r2, r3 = r0[n:], r1[n:], r2[n:], r3[n:]
		}
	}
	for len(r0) >= 4 && len(r1) >= 4 && len(r2) >= 4 && len(r3) >= 4 {
		a0, a1, a2, a3 := bfly4s(r0[0], r1[0], r2[0], r3[0], b1, b2)
		c0, c1, c2, c3 := bfly4s(r0[1], r1[1], r2[1], r3[1], b1, b2)
		e0, e1, e2, e3 := bfly4s(r0[2], r1[2], r2[2], r3[2], b1, b2)
		g0, g1, g2, g3 := bfly4s(r0[3], r1[3], r2[3], r3[3], b1, b2)
		r0[0], r1[0], r2[0], r3[0] = a0, a1, a2, a3
		r0[1], r1[1], r2[1], r3[1] = c0, c1, c2, c3
		r0[2], r1[2], r2[2], r3[2] = e0, e1, e2, e3
		r0[3], r1[3], r2[3], r3[3] = g0, g1, g2, g3
		r0, r1, r2, r3 = r0[4:], r1[4:], r2[4:], r3[4:]
	}
	for len(r0) > 0 && len(r1) > 0 && len(r2) > 0 && len(r3) > 0 {
		r0[0], r1[0], r2[0], r3[0] = bfly4s(r0[0], r1[0], r2[0], r3[0], b1, b2)
		r0, r1, r2, r3 = r0[1:], r1[1:], r2[1:], r3[1:]
	}
}

// crossQuadUnitDiff is crossQuadStochastic for the unit-difference kind.
func crossQuadUnitDiff(r0, r1, r2, r3 []float64, b1, b2 float64) {
	if useAVX2 {
		n := min(len(r0), len(r1), len(r2), len(r3)) &^ 3
		if n > 0 {
			avxQuadU(&r0[0], &r1[0], &r2[0], &r3[0], n, b1, b2)
			r0, r1, r2, r3 = r0[n:], r1[n:], r2[n:], r3[n:]
		}
	}
	for len(r0) >= 4 && len(r1) >= 4 && len(r2) >= 4 && len(r3) >= 4 {
		a0, a1, a2, a3 := bfly4u(r0[0], r1[0], r2[0], r3[0], b1, b2)
		c0, c1, c2, c3 := bfly4u(r0[1], r1[1], r2[1], r3[1], b1, b2)
		e0, e1, e2, e3 := bfly4u(r0[2], r1[2], r2[2], r3[2], b1, b2)
		g0, g1, g2, g3 := bfly4u(r0[3], r1[3], r2[3], r3[3], b1, b2)
		r0[0], r1[0], r2[0], r3[0] = a0, a1, a2, a3
		r0[1], r1[1], r2[1], r3[1] = c0, c1, c2, c3
		r0[2], r1[2], r2[2], r3[2] = e0, e1, e2, e3
		r0[3], r1[3], r2[3], r3[3] = g0, g1, g2, g3
		r0, r1, r2, r3 = r0[4:], r1[4:], r2[4:], r3[4:]
	}
	for len(r0) > 0 && len(r1) > 0 && len(r2) > 0 && len(r3) > 0 {
		r0[0], r1[0], r2[0], r3[0] = bfly4u(r0[0], r1[0], r2[0], r3[0], b1, b2)
		r0, r1, r2, r3 = r0[1:], r1[1:], r2[1:], r3[1:]
	}
}

// crossStage applies one radix-2 stage (row bit s) over the column chunk
// [c0, c1) of the gathered rows.
func crossStage(rp [][]float64, c0, c1, s int, f *Factor2) {
	bit := 1 << uint(s)
	switch butterflyKind(f) {
	case kindStochastic:
		b := f.B
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				da := b * (t2a - t1a)
				db := b * (t2b - t1b)
				dc := b * (t2c - t1c)
				dd := b * (t2d - t1d)
				u[0], w[0] = t1a+da, t2a-da
				u[1], w[1] = t1b+db, t2b-db
				u[2], w[2] = t1c+dc, t2c-dc
				u[3], w[3] = t1d+dd, t2d-dd
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				d := b * (t2 - t1)
				u[0] = t1 + d
				w[0] = t2 - d
				u, w = u[1:], w[1:]
			}
		}
	case kindUnitDiff:
		b := f.B
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				ua := b * (t1a + t2a)
				ub := b * (t1b + t2b)
				uc := b * (t1c + t2c)
				ud := b * (t1d + t2d)
				u[0], w[0] = t1a+ua, t2a+ua
				u[1], w[1] = t1b+ub, t2b+ub
				u[2], w[2] = t1c+uc, t2c+uc
				u[3], w[3] = t1d+ud, t2d+ud
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				uu := b * (t1 + t2)
				u[0] = t1 + uu
				w[0] = t2 + uu
				u, w = u[1:], w[1:]
			}
		}
	default:
		a, b, c, dd := f.A, f.B, f.C, f.D
		for t := 0; t < len(rp); t++ {
			if t&bit != 0 {
				continue
			}
			u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				u[0], w[0] = a*t1a+b*t2a, c*t1a+dd*t2a
				u[1], w[1] = a*t1b+b*t2b, c*t1b+dd*t2b
				u[2], w[2] = a*t1c+b*t2c, c*t1c+dd*t2c
				u[3], w[3] = a*t1d+b*t2d, c*t1d+dd*t2d
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				u[0] = a*t1 + b*t2
				w[0] = c*t1 + dd*t2
				u, w = u[1:], w[1:]
			}
		}
	}
}

// colChunkFor sizes the column sweep so that size rows × chunk columns of
// float64s stay near 32 KiB.
func colChunkFor(size, B int) int {
	c := 4096 / size
	if c < minColChunk {
		c = minColChunk
	}
	if c > B {
		c = B
	}
	return c
}

// log2 returns log₂(n) for a power-of-two n.
func log2(n int) int {
	k := 0
	for 1<<uint(k) < n {
		k++
	}
	return k
}
