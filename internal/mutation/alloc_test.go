package mutation

import (
	"testing"

	"repro/internal/dense"
	"repro/internal/rng"
	"repro/internal/vec"
)

// Allocation regression guards: the hot kernels of the solver must not
// allocate. "There is no need to store any element of the matrix" is the
// paper's headline property — a per-apply allocation would silently erode
// it at scale.

func TestFmmpApplyDoesNotAllocate(t *testing.T) {
	q := MustUniform(12, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	if allocs := testing.AllocsPerRun(10, func() { q.Apply(v) }); allocs != 0 {
		t.Errorf("Fmmp Apply allocates %.0f objects per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyNaive(v) }); allocs != 0 {
		t.Errorf("ApplyNaive allocates %.0f objects per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyDescending(v) }); allocs != 0 {
		t.Errorf("ApplyDescending allocates %.0f objects per call", allocs)
	}
}

func TestGroupedApplyDoesNotAllocate(t *testing.T) {
	// The grouped-factor path gathers each group through Process-owned
	// scratch; a per-apply allocation here would run nBases times per group
	// per matvec.
	r := rng.New(41)
	q, err := NewGrouped([]*dense.Matrix{
		randStochasticMatrix(r, 2),
		randStochasticMatrix(r, 8),
		randStochasticMatrix(r, 4),
		randStochasticMatrix(r, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	if allocs := testing.AllocsPerRun(10, func() { q.Apply(v) }); allocs != 0 {
		t.Errorf("grouped Apply allocates %.0f objects per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyNaive(v) }); allocs != 0 {
		t.Errorf("grouped ApplyNaive allocates %.0f objects per call", allocs)
	}
}

func TestBlockedApplySmallTilesDoNotAllocate(t *testing.T) {
	q := MustUniform(12, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	old := TileBits()
	defer SetTileBits(old)
	for _, tb := range []int{1, 4, 20} {
		SetTileBits(tb)
		if allocs := testing.AllocsPerRun(10, func() { q.Apply(v) }); allocs != 0 {
			t.Errorf("tileBits=%d: blocked Apply allocates %.0f objects per call", tb, allocs)
		}
	}
}

func TestFWHTDoesNotAllocate(t *testing.T) {
	v := make([]float64, 1<<12)
	vec.Fill(v, 1)
	if allocs := testing.AllocsPerRun(10, func() { FWHT(v) }); allocs != 0 {
		t.Errorf("FWHT allocates %.0f objects per call", allocs)
	}
}

func TestXmvpApplyDoesNotAllocate(t *testing.T) {
	x := MustXmvp(12, 0.01, 3)
	src := make([]float64, x.Dim())
	dst := make([]float64, x.Dim())
	vec.Fill(src, 1)
	if allocs := testing.AllocsPerRun(5, func() { x.Apply(dst, src) }); allocs != 0 {
		t.Errorf("Xmvp Apply allocates %.0f objects per call", allocs)
	}
}

func TestApplyInverseDoesNotAllocate(t *testing.T) {
	q := MustUniform(10, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	// The inverse factors are precomputed on the Process, so the whole call
	// must be allocation free.
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyInverse(v) }); allocs != 0 {
		t.Errorf("ApplyInverse allocates %.0f objects per call", allocs)
	}
}

func TestApplyShiftInvertDoesNotAllocate(t *testing.T) {
	q := MustUniform(10, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	mu := 0.5 // between the eigenvalue clusters; never equals (1−2p)^k here
	if allocs := testing.AllocsPerRun(10, func() {
		if err := q.ApplyShiftInvert(v, mu); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ApplyShiftInvert allocates %.0f objects per call", allocs)
	}
}
