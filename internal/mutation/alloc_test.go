package mutation

import (
	"testing"

	"repro/internal/vec"
)

// Allocation regression guards: the hot kernels of the solver must not
// allocate. "There is no need to store any element of the matrix" is the
// paper's headline property — a per-apply allocation would silently erode
// it at scale.

func TestFmmpApplyDoesNotAllocate(t *testing.T) {
	q := MustUniform(12, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	if allocs := testing.AllocsPerRun(10, func() { q.Apply(v) }); allocs != 0 {
		t.Errorf("Fmmp Apply allocates %.0f objects per call", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyDescending(v) }); allocs != 0 {
		t.Errorf("ApplyDescending allocates %.0f objects per call", allocs)
	}
}

func TestFWHTDoesNotAllocate(t *testing.T) {
	v := make([]float64, 1<<12)
	vec.Fill(v, 1)
	if allocs := testing.AllocsPerRun(10, func() { FWHT(v) }); allocs != 0 {
		t.Errorf("FWHT allocates %.0f objects per call", allocs)
	}
}

func TestXmvpApplyDoesNotAllocate(t *testing.T) {
	x := MustXmvp(12, 0.01, 3)
	src := make([]float64, x.Dim())
	dst := make([]float64, x.Dim())
	vec.Fill(src, 1)
	if allocs := testing.AllocsPerRun(5, func() { x.Apply(dst, src) }); allocs != 0 {
		t.Errorf("Xmvp Apply allocates %.0f objects per call", allocs)
	}
}

func TestApplyInverseDoesNotAllocate(t *testing.T) {
	q := MustUniform(10, 0.01)
	v := make([]float64, q.Dim())
	vec.Fill(v, 1)
	// One small allocation (the per-class scale table) is acceptable; the
	// vector-sized work must be allocation free.
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyInverse(v) }); allocs > 1 {
		t.Errorf("ApplyInverse allocates %.0f objects per call", allocs)
	}
}
