package mutation

import (
	"testing"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/vec"
)

// randVectors returns k deterministic pseudo-random vectors of length n.
func randVectors(seed uint64, k, n int) [][]float64 {
	r := rng.New(seed)
	vs := make([][]float64, k)
	for j := range vs {
		vs[j] = make([]float64, n)
		for i := range vs[j] {
			vs[j][i] = r.Float64() + 0.1
		}
	}
	return vs
}

func cloneVectors(vs [][]float64) [][]float64 {
	out := make([][]float64, len(vs))
	for j, v := range vs {
		out[j] = vec.Clone(v)
	}
	return out
}

func TestApplyBatchBitIdenticalToApply(t *testing.T) {
	for _, nu := range []int{0, 1, 4, 9, 13} {
		for _, k := range []int{1, 2, 3, 5} {
			q := MustUniform(nu, 0.013)
			vs := randVectors(uint64(100*nu+k), k, q.Dim())
			want := cloneVectors(vs)
			for _, v := range want {
				q.Apply(v)
			}
			q.ApplyBatch(vs)
			for j := range vs {
				for i := range vs[j] {
					if vs[j][i] != want[j][i] {
						t.Fatalf("ν=%d k=%d: vector %d entry %d: batch %v vs apply %v",
							nu, k, j, i, vs[j][i], want[j][i])
					}
				}
			}
		}
	}
}

func TestApplyBatchGroupedProcess(t *testing.T) {
	r := rng.New(7)
	q, err := NewGrouped([]*dense.Matrix{
		randStochasticMatrix(r, 2),
		randStochasticMatrix(r, 8),
		randStochasticMatrix(r, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	vs := randVectors(11, 3, q.Dim())
	want := cloneVectors(vs)
	for _, v := range want {
		q.Apply(v)
	}
	q.ApplyBatch(vs)
	for j := range vs {
		for i := range vs[j] {
			if vs[j][i] != want[j][i] {
				t.Fatalf("grouped: vector %d entry %d differs", j, i)
			}
		}
	}
}

func TestApplyBatchDeviceBitIdentical(t *testing.T) {
	q := MustUniform(12, 0.02)
	for _, workers := range []int{1, 2, 4} {
		d := device.New(workers, device.WithGrain(64))
		vs := randVectors(uint64(workers), 3, q.Dim())
		want := cloneVectors(vs)
		q.ApplyBatch(want)
		q.ApplyBatchDevice(d, vs)
		for j := range vs {
			for i := range vs[j] {
				if vs[j][i] != want[j][i] {
					t.Fatalf("workers=%d: vector %d entry %d: device batch deviates", workers, j, i)
				}
			}
		}
	}
}

func TestApplyBatchDoesNotAllocate(t *testing.T) {
	q := MustUniform(12, 0.01)
	vs := randVectors(3, 4, q.Dim())
	if allocs := testing.AllocsPerRun(10, func() { q.ApplyBatch(vs) }); allocs != 0 {
		t.Errorf("ApplyBatch allocates %.0f objects per call", allocs)
	}
}

func TestApplyBatchEmptyAndSingle(t *testing.T) {
	q := MustUniform(8, 0.01)
	q.ApplyBatch(nil) // must not panic
	v := randVectors(1, 1, q.Dim())
	w := cloneVectors(v)
	q.Apply(w[0])
	q.ApplyBatch(v)
	for i := range v[0] {
		if v[0][i] != w[0][i] {
			t.Fatal("single-vector batch deviates from Apply")
		}
	}
}
