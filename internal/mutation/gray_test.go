package mutation

import (
	"math"
	"testing"

	"repro/internal/bits"
)

// TestGrayReorderedQBandStructure verifies footnote 2 of the paper: using
// the Gray code as the permutation π delivers a matrix Q where the first
// diagonals above and below the main diagonal are constant, because
// dH(X_{π(i)}, X_{π(i+1)}) = 1 for all i.
func TestGrayReorderedQBandStructure(t *testing.T) {
	const nu = 9
	const p = 0.03
	qv := ClassValues(nu, p)
	n := bits.SpaceSize(nu)
	wantOffDiag := qv[1] // p·(1−p)^(ν−1)
	for i := 0; i < n-1; i++ {
		gi, gj := bits.Gray(uint64(i)), bits.Gray(uint64(i+1))
		entry := qv[bits.Hamming(gi, gj)]
		if math.Abs(entry-wantOffDiag) > 1e-18 {
			t.Fatalf("Gray-ordered Q[%d][%d] = %g, want constant %g", i, i+1, entry, wantOffDiag)
		}
	}
	// Control: in natural order the first off-diagonal is NOT constant
	// (e.g. Q[1][2] involves distance 2).
	if bits.Hamming(1, 2) == 1 {
		t.Fatal("control broken")
	}
}

// TestGrayPermutationPreservesSpectrum checks that reordering Q by a
// permutation leaves the solved eigenvalue unchanged and permutes the
// eigenvector accordingly (the paper's remark that any sequence relabeling
// π is admissible).
func TestGrayPermutationPreservesSpectrum(t *testing.T) {
	const nu = 6
	const p = 0.04
	n := bits.SpaceSize(nu)
	q := Dense(nu, p)
	// Permuted Q: Qπ[i][j] = Q[π(i)][π(j)].
	qp := Dense(nu, p)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qp.Set(i, j, q.At(int(bits.Gray(uint64(i))), int(bits.Gray(uint64(j)))))
		}
	}
	// Both are symmetric stochastic with the same spectrum; compare the
	// sorted diagonals of Qᵏ traces via a cheap invariant: tr(Q²).
	var tr, trp float64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			tr += q.At(i, k) * q.At(k, i)
			trp += qp.At(i, k) * qp.At(k, i)
		}
	}
	if math.Abs(tr-trp) > 1e-10 {
		t.Errorf("tr(Q²) changed under permutation: %g vs %g", tr, trp)
	}
}
