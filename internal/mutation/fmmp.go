package mutation

import (
	"fmt"
	"time"

	"repro/internal/device"
	"repro/internal/span"
)

// This file implements the paper's central contribution: the fast mutation
// matrix product Fmmp (Section 2.1). The Kronecker recursion
//
//	Q(ν)·v = [ (1−p)·v̄₁ + p·v̄₂ ]   with  v̄ᵢ = Q(ν−1)·vᵢ          (Eq. 9)
//	         [ p·v̄₁ + (1−p)·v̄₂ ]
//
// unrolls into log₂N butterfly stages over the vector, exactly like the
// FFT/FWHT, giving Θ(N·log₂N) time, in-situ operation and zero matrix
// storage. The production kernels are the cache-blocked, stage-fused form
// of blocked.go; ApplyNaive keeps the literal one-pass-per-stage loop of
// Algorithm 1 as the bit-identical reference and ablation baseline.

// Apply computes v ← Q·v in place with the stage order of Algorithm 1
// (Eq. 9: strides ascending), executed by the cache-blocked kernels. The
// result is bit-identical to ApplyNaive. It panics if len(v) != 2^ν.
func (q *Process) Apply(v []float64) {
	q.checkDim(len(v))
	h := kernelObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerMutation, KindApply)
	}
	if h != nil {
		defer h.span(KindApply, q.nu, 1, time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		var t0 time.Time
		if h != nil {
			t0 = time.Now()
		}
		var gsp span.Handle
		if sr != nil {
			gsp = sr.Begin(span.LayerMutation, KindStageGroup)
		}
		if s.grp < 0 {
			applyStagesBlocked(v, s.off0, s.fs, tb, fuseStages)
			span.End(gsp, int64(len(s.fs)), 1)
			if h != nil {
				h.span(KindStageGroup, len(s.fs), 1, t0)
			}
		} else {
			q.applyGroupSerial(q.groups[s.grp], v)
			span.End(gsp, int64(q.groups[s.grp].bitsLen), 1)
			if h != nil {
				h.span(KindStageGroup, q.groups[s.grp].bitsLen, 1, t0)
			}
		}
	}
	span.End(sp, int64(q.nu), 1)
}

// ApplyNaive computes v ← Q·v with the literal stage loop of Algorithm 1:
// one full pass over the vector per butterfly stage. It is the reference
// the blocked kernels are verified against (bit-identical) and the
// baseline of the blocked-vs-naive benchmarks.
func (q *Process) ApplyNaive(v []float64) {
	q.checkDim(len(v))
	for _, g := range q.groups {
		q.applyGroupSerial(g, v)
	}
}

// ApplyDescending computes v ← Q·v with the stage order of Eq. 10 (strides
// descending, obtained "by turning around the outermost i-loop"). The
// stages act on disjoint bit positions and commute in exact arithmetic, so
// the result matches Apply up to floating-point rounding; both orders are
// kept for the ablation benchmarks.
func (q *Process) ApplyDescending(v []float64) {
	q.checkDim(len(v))
	for gi := len(q.groups) - 1; gi >= 0; gi-- {
		q.applyGroupSerial(q.groups[gi], v)
	}
}

// ApplyRecursive computes v ← Q·v by the literal recursion of Eq. 9
// (split, recurse, combine). It allocates Θ(N) scratch and exists as an
// executable statement of the derivation; Apply is the production path.
// Only valid for single-bit groups (standard and per-site processes).
func (q *Process) ApplyRecursive(v []float64) {
	q.checkDim(len(v))
	for _, g := range q.groups {
		if g.bitsLen != 1 {
			panic("mutation: ApplyRecursive supports only single-position factors")
		}
	}
	res := q.recurse(v, len(q.groups))
	copy(v, res)
}

// recurse returns Q(level)·v where level counts remaining factors; the
// factor consumed at each level is the highest-order remaining bit,
// matching the block structure of Eq. 8.
func (q *Process) recurse(v []float64, level int) []float64 {
	if level == 0 {
		out := make([]float64, 1)
		out[0] = v[0]
		return out
	}
	f := q.groups[level-1].f2
	half := len(v) / 2
	v1 := q.recurse(v[:half], level-1)
	v2 := q.recurse(v[half:], level-1)
	out := make([]float64, len(v))
	for i := 0; i < half; i++ {
		out[i] = f.A*v1[i] + f.B*v2[i]
		out[half+i] = f.C*v1[i] + f.D*v2[i]
	}
	return out
}

// ApplyDevice computes v ← Q·v on the device runtime with the blocked
// kernels: each fused stage-group is one LaunchStages dispatch (tiles and
// row groups are independent across the whole group), so a matvec costs
// O(log₂N / fuse) barriers instead of log₂N. With one worker it executes
// the serial blocked path bit-identically.
func (q *Process) ApplyDevice(d *device.Device, v []float64) {
	q.checkDim(len(v))
	h := kernelObs.Load()
	sp := span.Begin(span.LayerMutation, KindApplyDevice)
	if h != nil {
		defer h.span(KindApplyDevice, q.nu, 1, time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		if s.grp < 0 {
			applyStagesBlockedDevice(d, v, s.off0, s.fs, tb, fuseStages)
		} else {
			q.applyGroupDevice(d, q.groups[s.grp], v)
		}
	}
	span.End(sp, int64(q.nu), 1)
}

// ApplyDeviceNaive computes v ← Q·v with the literal device-parallel
// kernel of Algorithm 2: per stage one kernel launch with N/2 logical
// threads and the branch-free index computation j = 2·ID − (ID & (i−1)).
// The host stage loop is the implicit barrier between launches. Kept as
// the dispatch-cost baseline for the pool-vs-spawn benchmarks.
func (q *Process) ApplyDeviceNaive(d *device.Device, v []float64) {
	q.checkDim(len(v))
	for _, g := range q.groups {
		q.applyGroupDeviceNaive(d, g, v)
	}
}

// applyGroupSerial applies one Kronecker factor to v on the calling
// goroutine with one pass per stage.
func (q *Process) applyGroupSerial(g group, v []float64) {
	if g.bitsLen == 1 {
		stride := 1 << uint(g.offset)
		a, b, c, dd := g.f2.A, g.f2.B, g.f2.C, g.f2.D
		// Algorithm 1's two inner loops: blocks of 2·stride, pairs within.
		for j := 0; j < len(v); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = a*t1 + b*t2
				v[k+stride] = c*t1 + dd*t2
			}
		}
		return
	}
	// Grouped factor (Eq. 11): dense 2^g × 2^g matvec applied across the
	// strided gather of the group's bit positions. The gather/scatter
	// scratch lives on the Process so Apply stays allocation-free.
	size := 1 << uint(g.bitsLen)
	stride := 1 << uint(g.offset)
	lowMask := stride - 1
	nBases := len(v) >> uint(g.bitsLen)
	in := q.grpIn[:size]
	out := q.grpOut[:size]
	for b := 0; b < nBases; b++ {
		base := ((b &^ lowMask) << uint(g.bitsLen)) | (b & lowMask)
		for s := 0; s < size; s++ {
			in[s] = v[base|(s<<uint(g.offset))]
		}
		g.mat.MatVec(out, in)
		for s := 0; s < size; s++ {
			v[base|(s<<uint(g.offset))] = out[s]
		}
	}
}

// applyGroupDevice applies one grouped (or single-bit) Kronecker factor
// with a device kernel launch; single-bit factors on the blocked path
// never reach it, but mixed processes use it for their dense groups.
func (q *Process) applyGroupDevice(d *device.Device, g group, v []float64) {
	if g.bitsLen == 1 {
		q.applyGroupDeviceNaive(d, g, v)
		return
	}
	size := 1 << uint(g.bitsLen)
	stride := 1 << uint(g.offset)
	lowMask := stride - 1
	nBases := len(v) >> uint(g.bitsLen)
	d.LaunchRange(nBases, func(lo, hi int) {
		in := make([]float64, size)
		out := make([]float64, size)
		for b := lo; b < hi; b++ {
			base := ((b &^ lowMask) << uint(g.bitsLen)) | (b & lowMask)
			for s := 0; s < size; s++ {
				in[s] = v[base|(s<<uint(g.offset))]
			}
			g.mat.MatVec(out, in)
			for s := 0; s < size; s++ {
				v[base|(s<<uint(g.offset))] = out[s]
			}
		}
	})
}

// applyGroupDeviceNaive applies one Kronecker factor with one device
// launch per stage over the independent logical threads of the stage.
func (q *Process) applyGroupDeviceNaive(d *device.Device, g group, v []float64) {
	if g.bitsLen == 1 {
		stride := 1 << uint(g.offset)
		a, b, c, dd := g.f2.A, g.f2.B, g.f2.C, g.f2.D
		d.LaunchRange(len(v)/2, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				// Algorithm 2, line 3: j = 2·ID − (ID & (i−1)).
				j := 2*id - (id & (stride - 1))
				t1, t2 := v[j], v[j+stride]
				v[j] = a*t1 + b*t2
				v[j+stride] = c*t1 + dd*t2
			}
		})
		return
	}
	q.applyGroupDevice(d, g, v)
}

func (q *Process) checkDim(n int) {
	if n != q.n {
		panic(fmt.Sprintf("mutation: vector length %d does not match N = %d (ν = %d)", n, q.n, q.nu))
	}
}
