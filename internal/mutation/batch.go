package mutation

import (
	"time"

	"repro/internal/device"
	"repro/internal/span"
)

// This file implements the multi-vector form of the fast mutation matrix
// product: K independent vectors pushed through the butterfly stages in
// ONE shared stage traversal. The batched sweep engine (internal/batch +
// internal/harness) uses it for block power iterations and for verifying
// all solutions of a sweep with a single operator pass.
//
// The traversal is restructured so the *stage plan* — tile split, fused
// cross-stage groups, row-block enumeration — is computed once and the
// vectors stream through it innermost: for the tile pass the tile index is
// outer and the vectors inner (each vector's tile is cache-resident while
// every small-stride stage is applied to it), and for the fused
// large-stride passes the interacting row block is enumerated once and all
// K vectors' row groups are swept before the next block (row-block
// interleaving). Per vector the arithmetic — stage order, fusion grouping,
// rounding sequence — is exactly that of Apply, so ApplyBatch is
// BIT-IDENTICAL to applying Apply to each vector separately; the batched
// device dispatch additionally fuses the K vectors' launches into one grid
// per stage group, cutting barrier count by the batch width.

// ApplyBatch computes vᵢ ← Q·vᵢ in place for every vector of vs with one
// shared stage traversal. Results are bit-identical to calling Apply on
// each vector. All vectors must have length 2^ν; vs may be empty.
func (q *Process) ApplyBatch(vs [][]float64) {
	for _, v := range vs {
		q.checkDim(len(v))
	}
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		q.Apply(vs[0])
		return
	}
	sp := span.Begin(span.LayerMutation, KindApplyBatch)
	if h := kernelObs.Load(); h != nil {
		defer h.span(KindApplyBatch, q.nu, len(vs), time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		if s.grp < 0 {
			applyStagesBlockedBatch(vs, s.off0, s.fs, tb, fuseStages)
		} else {
			// Grouped factors share the Process-owned gather scratch, so
			// vectors pass through sequentially.
			for _, v := range vs {
				q.applyGroupSerial(q.groups[s.grp], v)
			}
		}
	}
	span.End(sp, int64(q.nu), int64(len(vs)))
}

// ApplyBatchDevice is ApplyBatch on the device runtime: each fused stage
// group is ONE launch over the combined grid of all K vectors' tiles
// (resp. row blocks), so a batch of K matvecs costs the same number of
// barriers as a single matvec. Bit-identical to ApplyBatch (and hence to
// per-vector Apply) at every worker count.
func (q *Process) ApplyBatchDevice(d *device.Device, vs [][]float64) {
	for _, v := range vs {
		q.checkDim(len(v))
	}
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		q.ApplyDevice(d, vs[0])
		return
	}
	sp := span.Begin(span.LayerMutation, KindApplyBatchDevice)
	if h := kernelObs.Load(); h != nil {
		defer h.span(KindApplyBatchDevice, q.nu, len(vs), time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		if s.grp < 0 {
			applyStagesBlockedBatchDevice(d, vs, s.off0, s.fs, tb, fuseStages)
		} else {
			for _, v := range vs {
				q.applyGroupDevice(d, q.groups[s.grp], v)
			}
		}
	}
	span.End(sp, int64(q.nu), int64(len(vs)))
}

// applyStagesBlockedBatch is applyStagesBlocked over K vectors with the
// vector loop innermost at every level of the traversal.
func applyStagesBlockedBatch(vs [][]float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(vs[0])
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		for t := 0; t < n; t += B {
			for _, v := range vs {
				tileStages(v[t:t+B], off0, small)
			}
		}
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		group := fs[s : s+m]
		rb0 := off0 + s - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		for bb := 0; bb < nBases; bb++ {
			base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
			for _, v := range vs {
				crossGroup(v, B, base, rb0, group)
			}
		}
		s += m
	}
}

// applyStagesBlockedBatchDevice dispatches each fused stage group as one
// launch over the K·(tiles or row blocks) combined grid, vector-major so
// a contiguous chunk of logical threads walks contiguous memory of one
// vector.
func applyStagesBlockedBatchDevice(d *device.Device, vs [][]float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(vs[0])
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		ntiles := n / B
		d.LaunchStages(nSmall, len(vs)*ntiles, B, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				v, t := vs[id/ntiles], id%ntiles
				tileStages(v[t*B:(t+1)*B], off0, small)
			}
		})
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		group := fs[s : s+m]
		rb0 := off0 + s - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		d.LaunchStages(m, len(vs)*nBases, B<<uint(m), func(lo, hi int) {
			for id := lo; id < hi; id++ {
				v, bb := vs[id/nBases], id%nBases
				base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
				crossGroup(v, B, base, rb0, group)
			}
		})
		s += m
	}
}
