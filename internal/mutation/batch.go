package mutation

import (
	"time"

	"repro/internal/device"
	"repro/internal/span"
)

// This file implements the multi-vector form of the fast mutation matrix
// product: K independent vectors pushed through the butterfly stages in
// ONE shared stage traversal. The batched sweep engine (internal/batch +
// internal/harness) uses it for block power iterations and for verifying
// all solutions of a sweep with a single operator pass.
//
// The traversal is restructured so the *stage plan* — tile split, fused
// cross-stage groups, row-block enumeration — is computed once and the
// vectors stream through it innermost: for the tile pass the tile index is
// outer and the vectors inner (each vector's tile is cache-resident while
// every small-stride stage is applied to it), and for the fused
// large-stride passes the interacting row block is enumerated once and all
// K vectors' row groups are swept before the next block (row-block
// interleaving). Per vector the arithmetic — stage order, fusion grouping,
// rounding sequence — is exactly that of Apply, so ApplyBatch is
// BIT-IDENTICAL to applying Apply to each vector separately; the batched
// device dispatch additionally fuses the K vectors' launches into one grid
// per stage group, cutting barrier count by the batch width.

// ApplyBatch computes vᵢ ← Q·vᵢ in place for every vector of vs with one
// shared stage traversal. Results are bit-identical to calling Apply on
// each vector. All vectors must have length 2^ν; vs may be empty.
func (q *Process) ApplyBatch(vs [][]float64) {
	for _, v := range vs {
		q.checkDim(len(v))
	}
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		q.Apply(vs[0])
		return
	}
	sp := span.Begin(span.LayerMutation, KindApplyBatch)
	if h := kernelObs.Load(); h != nil {
		defer h.span(KindApplyBatch, q.nu, len(vs), time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		if s.grp < 0 {
			applyStagesBlockedBatch(vs, s.off0, s.fs, tb, fuseStages)
		} else {
			// Grouped factors share the Process-owned gather scratch, so
			// vectors pass through sequentially.
			for _, v := range vs {
				q.applyGroupSerial(q.groups[s.grp], v)
			}
		}
	}
	span.End(sp, int64(q.nu), int64(len(vs)))
}

// ApplyBatchDevice is ApplyBatch on the device runtime: each fused stage
// group is ONE launch over the combined grid of all K vectors' tiles
// (resp. row blocks), so a batch of K matvecs costs the same number of
// barriers as a single matvec. Bit-identical to ApplyBatch (and hence to
// per-vector Apply) at every worker count.
func (q *Process) ApplyBatchDevice(d *device.Device, vs [][]float64) {
	for _, v := range vs {
		q.checkDim(len(v))
	}
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		q.ApplyDevice(d, vs[0])
		return
	}
	sp := span.Begin(span.LayerMutation, KindApplyBatchDevice)
	if h := kernelObs.Load(); h != nil {
		defer h.span(KindApplyBatchDevice, q.nu, len(vs), time.Now())
	}
	tb := TileBits()
	for _, s := range q.segs {
		if s.grp < 0 {
			applyStagesBlockedBatchDevice(d, vs, s.off0, s.fs, tb, fuseStages)
		} else {
			for _, v := range vs {
				q.applyGroupDevice(d, q.groups[s.grp], v)
			}
		}
	}
	span.End(sp, int64(q.nu), int64(len(vs)))
}

// applyStagesBlockedBatch is applyStagesBlocked over K vectors with the
// vector loop innermost at every level of the traversal, unrolled over K:
// vectors stream through each tile (resp. row block) of the shared stage
// plan TWO at a time via the dual-vector stage walks below, so the stage
// dispatch, butterfly-kind classification and factor loads amortize across
// the pair. Per vector the arithmetic is exactly that of the single-vector
// walk, so the unroll preserves bit-identity with Apply.
func applyStagesBlockedBatch(vs [][]float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(vs[0])
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		for t := 0; t < n; t += B {
			kv := 0
			for ; kv+2 <= len(vs); kv += 2 {
				tileStagesDual(vs[kv][t:t+B], vs[kv+1][t:t+B], off0, small)
			}
			if kv < len(vs) {
				tileStages(vs[kv][t:t+B], off0, small)
			}
		}
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		group := fs[s : s+m]
		rb0 := off0 + s - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		for bb := 0; bb < nBases; bb++ {
			base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
			kv := 0
			for ; kv+2 <= len(vs); kv += 2 {
				crossGroupDual(vs[kv], vs[kv+1], B, base, rb0, group)
			}
			if kv < len(vs) {
				crossGroup(vs[kv], B, base, rb0, group)
			}
		}
		s += m
	}
}

// tileStagesDual is tileStages applied to the same tile index of two
// vectors: one walk of the stage plan, each fused kernel invoked on both
// tiles back to back while the stage's factors sit in registers. Rounding
// per vector is identical to the single-vector walk.
func tileStagesDual(ta, tb []float64, off0 int, fs []Factor2) {
	s := 0
	for ; s+1 < len(fs); s += 2 {
		f1, f2 := &fs[s], &fs[s+1]
		stride := 1 << uint(off0+s)
		k1, k2 := butterflyKind(f1), butterflyKind(f2)
		switch {
		case k1 == kindStochastic && k2 == kindStochastic:
			tilePairStochastic(ta, stride, f1.B, f2.B)
			tilePairStochastic(tb, stride, f1.B, f2.B)
		case k1 == kindUnitDiff && k2 == kindUnitDiff:
			tilePairUnitDiff(ta, stride, f1.B, f2.B)
			tilePairUnitDiff(tb, stride, f1.B, f2.B)
		default:
			tileStage(ta, stride, f1)
			tileStage(tb, stride, f1)
			tileStage(ta, 2*stride, f2)
			tileStage(tb, 2*stride, f2)
		}
	}
	if s < len(fs) {
		stride := 1 << uint(off0+s)
		tileStage(ta, stride, &fs[s])
		tileStage(tb, stride, &fs[s])
	}
}

// crossGroupDual is crossGroup applied to the same row block of two
// vectors: the row gather, chunk split and per-stage kind dispatch run
// once, each fused kernel sweeping the chunk of both vectors in turn.
func crossGroupDual(va, vb []float64, B, baseRow, rb0 int, fs []Factor2) {
	m := len(fs)
	size := 1 << uint(m)
	var rpa, rpb [1 << maxFuseStages][]float64
	for t := 0; t < size; t++ {
		r := baseRow | t<<uint(rb0)
		rpa[t] = va[r*B : r*B+B]
		rpb[t] = vb[r*B : r*B+B]
	}
	colChunk := colChunkFor(size, B)
	for c0 := 0; c0 < B; c0 += colChunk {
		c1 := c0 + colChunk
		if c1 > B {
			c1 = B
		}
		s := 0
		for ; s+1 < m; s += 2 {
			f1, f2 := &fs[s], &fs[s+1]
			k1, k2 := butterflyKind(f1), butterflyKind(f2)
			bit1, bit2 := 1<<uint(s), 2<<uint(s)
			switch {
			case k1 == kindStochastic && k2 == kindStochastic:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					crossQuadStochastic(rpa[t][c0:c1], rpa[t|bit1][c0:c1],
						rpa[t|bit2][c0:c1], rpa[t|bit1|bit2][c0:c1], b1, b2)
					crossQuadStochastic(rpb[t][c0:c1], rpb[t|bit1][c0:c1],
						rpb[t|bit2][c0:c1], rpb[t|bit1|bit2][c0:c1], b1, b2)
				}
			case k1 == kindUnitDiff && k2 == kindUnitDiff:
				b1, b2 := f1.B, f2.B
				for t := 0; t < size; t++ {
					if t&(bit1|bit2) != 0 {
						continue
					}
					crossQuadUnitDiff(rpa[t][c0:c1], rpa[t|bit1][c0:c1],
						rpa[t|bit2][c0:c1], rpa[t|bit1|bit2][c0:c1], b1, b2)
					crossQuadUnitDiff(rpb[t][c0:c1], rpb[t|bit1][c0:c1],
						rpb[t|bit2][c0:c1], rpb[t|bit1|bit2][c0:c1], b1, b2)
				}
			default:
				crossStage(rpa[:size], c0, c1, s, f1)
				crossStage(rpb[:size], c0, c1, s, f1)
				crossStage(rpa[:size], c0, c1, s+1, f2)
				crossStage(rpb[:size], c0, c1, s+1, f2)
			}
		}
		if s < m {
			crossStage(rpa[:size], c0, c1, s, &fs[s])
			crossStage(rpb[:size], c0, c1, s, &fs[s])
		}
	}
}

// applyStagesBlockedBatchDevice dispatches each fused stage group as one
// launch over the K·(tiles or row blocks) combined grid, vector-major so
// a contiguous chunk of logical threads walks contiguous memory of one
// vector.
func applyStagesBlockedBatchDevice(d *device.Device, vs [][]float64, off0 int, fs []Factor2, tb, fuse int) {
	n := len(vs[0])
	if n == 0 || len(fs) == 0 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B, nSmall := splitStages(n, off0, len(fs), tb)
	if nSmall > 0 {
		small := fs[:nSmall]
		ntiles := n / B
		d.LaunchStages(nSmall, len(vs)*ntiles, B, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				v, t := vs[id/ntiles], id%ntiles
				tileStages(v[t*B:(t+1)*B], off0, small)
			}
		})
	}
	for s := nSmall; s < len(fs); {
		m := len(fs) - s
		if m > fuse {
			m = fuse
		}
		group := fs[s : s+m]
		rb0 := off0 + s - log2(B)
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(log2(B))) >> uint(m)
		d.LaunchStages(m, len(vs)*nBases, B<<uint(m), func(lo, hi int) {
			for id := lo; id < hi; id++ {
				v, bb := vs[id/nBases], id%nBases
				base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
				crossGroup(v, B, base, rb0, group)
			}
		})
		s += m
	}
}
