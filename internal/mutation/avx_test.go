package mutation

import (
	"math/rand"
	"testing"
)

// TestAVX2KernelsBitIdenticalToScalar toggles the AVX2 dispatch gate and
// asserts the assembly and pure-Go kernel paths produce bit-identical
// results for every transform that dispatches to assembly: Apply
// (stochastic pairs), ApplyInverse (unit-difference pairs) and FWHT
// (Hadamard pairs), across sizes that exercise the tile pair, cross quad
// and odd-stage code shapes. Skipped on hosts without AVX2, where only the
// Go path exists.
func TestAVX2KernelsBitIdenticalToScalar(t *testing.T) {
	if !avx2Detected {
		t.Skip("host has no AVX2; single code path")
	}
	was := useAVX2
	defer func() { useAVX2 = was }()

	rng := rand.New(rand.NewSource(71))
	for _, nu := range []int{2, 3, 5, 8, 11, 13, 14, 15} {
		n := 1 << uint(nu)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		p := 231.0 / 1024 // dyadic, so both reduced kinds trigger exactly

		q := MustUniform(nu, p)
		check := func(name string, transform func([]float64)) {
			a := append([]float64(nil), v...)
			b := append([]float64(nil), v...)
			useAVX2 = true
			transform(a)
			useAVX2 = false
			transform(b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("ν=%d %s: AVX2 and scalar paths differ at %d: %g vs %g",
						nu, name, i, a[i], b[i])
				}
			}
		}
		check("Apply", q.Apply)
		check("ApplyInverse", q.ApplyInverse)
		check("FWHT", FWHT)
	}
}
