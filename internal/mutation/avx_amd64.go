//go:build amd64

package mutation

import "os"

// The hot butterfly kernels dispatch to the AVX2 assembly in avx_amd64.s
// when the CPU supports it: Go's compiler never auto-vectorizes, so the
// 4-wide Go loops execute one scalar FP op per element while the machine
// has 4-lane float64 units sitting idle — on compute-bound hosts that is
// the whole remaining gap to the hardware floor. The assembly applies the
// identical per-element operation sequence with VADDPD/VSUBPD/VMULPD only
// (per-lane IEEE-754 semantics, no FMA contraction), so results are
// bit-identical to the pure-Go path; TestAVX2KernelsBitIdenticalToScalar
// asserts that equality directly and the exact-equality transform suites
// (blocked FWHT ≡ naive, fused ≡ radix-2) run against whichever path is
// active.
//
// QS_NOAVX2=1 forces the pure-Go kernels (diagnostics / A-B timing).

// avx2Detected reports hardware+OS support; useAVX2 is the dispatch gate
// (mutable so tests can compare both paths on one host).
var (
	avx2Detected = detectAVX2()
	useAVX2      = avx2Detected && os.Getenv("QS_NOAVX2") == ""
)

// detectAVX2 is the standard CPUID/XGETBV dance: AVX needs OSXSAVE and
// XMM+YMM state enabled by the OS in XCR0, AVX2 is leaf-7 EBX bit 5.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 { // XMM and YMM state
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// The assembly kernels. n counts float64 elements and must be a positive
// multiple of 4 (quad forms) resp. of 4·stride (tile forms, stride ≥ 4 a
// multiple of 4); callers guarantee both. go:noescape keeps the slice
// bases off the heap so the kernels stay allocation-free.

//go:noescape
func avxQuadS(r0, r1, r2, r3 *float64, n int, b1, b2 float64)

//go:noescape
func avxQuadU(r0, r1, r2, r3 *float64, n int, b1, b2 float64)

//go:noescape
func avxQuadH(r0, r1, r2, r3 *float64, n int)

//go:noescape
func avxTilePairS(p *float64, n, stride int, b1, b2 float64)

//go:noescape
func avxTilePairU(p *float64, n, stride int, b1, b2 float64)

//go:noescape
func avxTileHad(p *float64, n, stride int)
