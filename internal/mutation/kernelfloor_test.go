package mutation

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/vec"
)

// Property tests for the kernel floor (blocked.go, fwht.go, batch.go): the
// unrolled, bounds-check-eliminated, radix-4-fused stage engines against
// the literal naive references, across every butterfly kind, all small ν,
// and odd tile sizes that force ragged main-loop/tail splits everywhere.
//
// Contract under test (see DESIGN.md §5.6):
//   - general factors: the blocked engine is BIT-IDENTICAL to the naive
//     stage loop (same literal a·t1 + b·t2 per element, any traversal);
//   - stochastic / unit-diff factors: the strength-reduced forms match the
//     naive literal butterfly within naiveTol (≈ ULPs per stage);
//   - radix-4 fusion is BIT-IDENTICAL to the two radix-2 reduced stages it
//     replaces, at every stride and tail shape;
//   - FWHT is BIT-IDENTICAL to FWHTNaive; ApplyBatch to per-vector Apply.

// naiveStageLoop is the literal Algorithm-1 stage loop for an arbitrary
// factor list: stage s applies fs[s] at stride 2^(off0+s) with the
// four-multiply butterfly, exactly like applyGroupSerial's single-bit path.
func naiveStageLoop(v []float64, off0 int, fs []Factor2) {
	for s := range fs {
		f := &fs[s]
		stride := 1 << uint(off0+s)
		for j := 0; j < len(v); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = f.A*t1 + f.B*t2
				v[k+stride] = f.C*t1 + f.D*t2
			}
		}
	}
}

// reducedStageLoop is the naive traversal with the strength-reduced
// butterfly bodies (single multiply, as in the blocked kernels), the
// reference the fused radix-4 paths must reproduce bit-exactly.
func reducedStageLoop(v []float64, off0 int, fs []Factor2) {
	for s := range fs {
		f := &fs[s]
		stride := 1 << uint(off0+s)
		for j := 0; j < len(v); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				switch butterflyKind(f) {
				case kindStochastic:
					d := f.B * (t2 - t1)
					v[k] = t1 + d
					v[k+stride] = t2 - d
				case kindUnitDiff:
					u := f.B * (t1 + t2)
					v[k] = t1 + u
					v[k+stride] = t2 + u
				default:
					v[k] = f.A*t1 + f.B*t2
					v[k+stride] = f.C*t1 + f.D*t2
				}
			}
		}
	}
}

// factorsForKind builds nu single-bit factors of the requested butterfly
// kind with randomized entries. The reduced kinds use dyadic rates
// p = k/1024 so the defining identities (a+b = 1 resp. a−b = 1) hold
// EXACTLY in float64 — butterflyKind demands exact identities, arbitrary
// rates would silently fall back to the general path.
func factorsForKind(r *rng.Source, kind, nu int) []Factor2 {
	fs := make([]Factor2, nu)
	for i := range fs {
		p := dyadicRate(r)
		switch kind {
		case kindStochastic:
			fs[i] = Factor2{A: 1 - p, B: p, C: p, D: 1 - p}
		case kindUnitDiff:
			fs[i] = Factor2{A: 1 + p, B: p, C: p, D: 1 + p}
		default:
			// Random entries; the reduced-form identities hold with
			// probability ~0, and butterflyKind demands them exactly.
			fs[i] = Factor2{A: 2*r.Float64() - 1, B: 2*r.Float64() - 1,
				C: 2*r.Float64() - 1, D: 2*r.Float64() - 1}
		}
		if butterflyKind(&fs[i]) != kind {
			panic("factorsForKind: generated factor has wrong kind")
		}
	}
	return fs
}

// oddTileBits forces ragged tile/cross splits: tiles of 2, 8, 32, … never
// line up with the 4-wide unrolls or the radix-4 pairing evenly.
var oddTileBits = []int{1, 3, 5, 7, 9, 13}

// ulpTol is naiveTol scaled to whichever of input and output has the
// larger magnitude: unit-diff factors have row sums 1+2p > 1, so the
// running magnitude (and with it the per-stage ULP) can grow across
// stages, unlike the row-stochastic case naiveTol was written for.
func ulpTol(nStages int, in, out []float64) float64 {
	tol := naiveTol(nStages, in)
	if t2 := naiveTol(nStages, out); t2 > tol {
		tol = t2
	}
	return tol
}

// dyadicRate returns a random rate k/1024 ∈ (0, 0.5): dyadic, so the
// butterfly-kind identities a+b = 1 and a−b = 1 hold exactly in float64.
func dyadicRate(r *rng.Source) float64 {
	return float64(1+r.Uint64n(511)) / 1024
}

func TestStageEngineMatchesNaiveAllKindsOddTiles(t *testing.T) {
	r := rng.New(2026)
	for nu := 1; nu <= 14; nu++ {
		for _, kind := range []int{kindGeneral, kindStochastic, kindUnitDiff} {
			fs := factorsForKind(r, kind, nu)
			v := randVector(r, 1<<uint(nu))
			for _, tb := range oddTileBits {
				for _, fuse := range []int{1, 2, 3, 4} {
					got := vec.Clone(v)
					applyStagesBlocked(got, 0, fs, tb, fuse)
					want := vec.Clone(v)
					naiveStageLoop(want, 0, fs)
					d := vec.DistInf(got, want)
					if kind == kindGeneral {
						if d != 0 {
							t.Fatalf("ν=%d kind=general tb=%d fuse=%d: blocked differs from naive by %g, want bit-identity", nu, tb, fuse, d)
						}
					} else if tol := ulpTol(nu, v, want); d > tol {
						t.Fatalf("ν=%d kind=%d tb=%d fuse=%d: blocked deviates from naive by %g (tol %g)", nu, kind, tb, fuse, d, tol)
					}
				}
			}
		}
	}
}

func TestStageEngineBitIdenticalToReducedLoop(t *testing.T) {
	// The fused radix-4 paths must reproduce the reduced radix-2 sequence
	// EXACTLY — this is the invariant that lets blocked.go fuse stage pairs
	// without changing any result bits.
	r := rng.New(404)
	for nu := 1; nu <= 14; nu++ {
		for _, kind := range []int{kindStochastic, kindUnitDiff} {
			fs := factorsForKind(r, kind, nu)
			v := randVector(r, 1<<uint(nu))
			for _, tb := range oddTileBits {
				got := vec.Clone(v)
				applyStagesBlocked(got, 0, fs, tb, fuseStages)
				want := vec.Clone(v)
				reducedStageLoop(want, 0, fs)
				if d := vec.DistInf(got, want); d != 0 {
					t.Fatalf("ν=%d kind=%d tb=%d: fused engine differs from reduced radix-2 loop by %g, want bit-identity", nu, kind, tb, d)
				}
			}
		}
	}
}

func TestRadix4PairBitIdenticalToTwoStages(t *testing.T) {
	// Direct unit test of the pair kernels at every stride and a ragged
	// tile length: fused two-stage tile pass vs two sequential tileStage
	// calls.
	r := rng.New(31)
	for _, tileLen := range []int{4, 8, 12, 64, 96, 1 << 10} {
		for stride := 1; 4*stride <= tileLen; stride *= 2 {
			if tileLen%(4*stride) != 0 {
				continue
			}
			p1 := dyadicRate(r)
			p2 := dyadicRate(r)
			fs1 := Factor2{A: 1 - p1, B: p1, C: p1, D: 1 - p1}
			fs2 := Factor2{A: 1 - p2, B: p2, C: p2, D: 1 - p2}
			fu1 := Factor2{A: 1 + p1, B: p1, C: p1, D: 1 + p1}
			fu2 := Factor2{A: 1 + p2, B: p2, C: p2, D: 1 + p2}
			v := randVector(r, tileLen)

			got := vec.Clone(v)
			tilePairStochastic(got, stride, fs1.B, fs2.B)
			want := vec.Clone(v)
			tileStage(want, stride, &fs1)
			tileStage(want, 2*stride, &fs2)
			if vec.DistInf(got, want) != 0 {
				t.Fatalf("tileLen=%d stride=%d: tilePairStochastic not bit-identical to two tileStage calls", tileLen, stride)
			}

			got = vec.Clone(v)
			tilePairUnitDiff(got, stride, fu1.B, fu2.B)
			want = vec.Clone(v)
			tileStage(want, stride, &fu1)
			tileStage(want, 2*stride, &fu2)
			if vec.DistInf(got, want) != 0 {
				t.Fatalf("tileLen=%d stride=%d: tilePairUnitDiff not bit-identical to two tileStage calls", tileLen, stride)
			}
		}
	}
}

func TestCrossQuadBitIdenticalToTwoCrossStages(t *testing.T) {
	r := rng.New(77)
	for _, cols := range []int{1, 2, 3, 4, 5, 7, 8, 129} {
		p1 := dyadicRate(r)
		p2 := dyadicRate(r)
		rows := func() [][]float64 {
			m := make([][]float64, 4)
			for i := range m {
				m[i] = randVector(rng.New(uint64(1000+i)), cols)
			}
			return m
		}

		fs1 := Factor2{A: 1 - p1, B: p1, C: p1, D: 1 - p1}
		fs2 := Factor2{A: 1 - p2, B: p2, C: p2, D: 1 - p2}
		got, want := rows(), rows()
		crossQuadStochastic(got[0], got[1], got[2], got[3], p1, p2)
		crossStage(want, 0, cols, 0, &fs1)
		crossStage(want, 0, cols, 1, &fs2)
		for i := range got {
			if vec.DistInf(got[i], want[i]) != 0 {
				t.Fatalf("cols=%d row %d: crossQuadStochastic not bit-identical to two crossStage calls", cols, i)
			}
		}

		fu1 := Factor2{A: 1 + p1, B: p1, C: p1, D: 1 + p1}
		fu2 := Factor2{A: 1 + p2, B: p2, C: p2, D: 1 + p2}
		got, want = rows(), rows()
		crossQuadUnitDiff(got[0], got[1], got[2], got[3], p1, p2)
		crossStage(want, 0, cols, 0, &fu1)
		crossStage(want, 0, cols, 1, &fu2)
		for i := range got {
			if vec.DistInf(got[i], want[i]) != 0 {
				t.Fatalf("cols=%d row %d: crossQuadUnitDiff not bit-identical to two crossStage calls", cols, i)
			}
		}
	}
}

func TestApplyBatchBitIdenticalAllNuOddTiles(t *testing.T) {
	r := rng.New(555)
	for nu := 1; nu <= 14; nu++ {
		q := MustUniform(nu, 0.001+0.4*r.Float64())
		for _, K := range []int{2, 3, 5} {
			for _, tb := range []int{1, 3, 7, 13} {
				withTileBits(t, tb, func() {
					vs := make([][]float64, K)
					want := make([][]float64, K)
					for k := 0; k < K; k++ {
						vs[k] = randVector(r, q.Dim())
						want[k] = vec.Clone(vs[k])
					}
					q.ApplyBatch(vs)
					for k := 0; k < K; k++ {
						q.Apply(want[k])
						if d := vec.DistInf(vs[k], want[k]); d != 0 {
							t.Fatalf("ν=%d K=%d tb=%d vector %d: ApplyBatch differs from Apply by %g, want bit-identity", nu, K, tb, k, d)
						}
					}
				})
			}
		}
	}
}

func TestFWHTBitIdenticalAllNuOddTiles(t *testing.T) {
	r := rng.New(808)
	for nu := 0; nu <= 14; nu++ {
		v := randVector(r, 1<<uint(nu))
		for _, tb := range oddTileBits {
			withTileBits(t, tb, func() {
				got := vec.Clone(v)
				FWHT(got)
				want := vec.Clone(v)
				FWHTNaive(want)
				if d := vec.DistInf(got, want); d != 0 {
					t.Fatalf("ν=%d tb=%d: FWHT differs from FWHTNaive by %g, want bit-identity", nu, tb, d)
				}
			})
		}
	}
}

// FuzzStageEngine fuzzes the blocked stage engine against the naive loop
// over (seed, ν, tile bits, fuse depth, butterfly kind).
func FuzzStageEngine(f *testing.F) {
	f.Add(uint64(1), byte(3), byte(1), byte(2), byte(0))
	f.Add(uint64(2), byte(10), byte(5), byte(4), byte(1))
	f.Add(uint64(3), byte(14), byte(13), byte(3), byte(2))
	f.Add(uint64(4), byte(1), byte(1), byte(1), byte(1))
	f.Fuzz(func(t *testing.T, seed uint64, nuB, tbB, fuseB, kindB byte) {
		nu := 1 + int(nuB)%14
		tb := 1 + int(tbB)%16
		fuse := 1 + int(fuseB)%maxFuseStages
		kind := int(kindB) % 3
		r := rng.New(seed)
		fs := factorsForKind(r, kind, nu)
		v := randVector(r, 1<<uint(nu))
		got := vec.Clone(v)
		applyStagesBlocked(got, 0, fs, tb, fuse)
		want := vec.Clone(v)
		naiveStageLoop(want, 0, fs)
		d := vec.DistInf(got, want)
		if kind == kindGeneral {
			if d != 0 {
				t.Fatalf("ν=%d tb=%d fuse=%d: general blocked differs from naive by %g", nu, tb, fuse, d)
			}
		} else if tol := ulpTol(nu, v, want); d > tol {
			t.Fatalf("ν=%d tb=%d fuse=%d kind=%d: deviation %g exceeds tol %g", nu, tb, fuse, kind, d, tol)
		}
	})
}
