package mutation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/vec"
)

func hadamardDense(nu int) *dense.Matrix {
	h := dense.FromRows([][]float64{{1}})
	h2 := dense.FromRows([][]float64{{1, 1}, {1, -1}})
	for i := 0; i < nu; i++ {
		h = h2.Kronecker(h)
	}
	return h
}

func TestFWHTMatchesDenseHadamard(t *testing.T) {
	r := rng.New(1)
	for _, nu := range []int{0, 1, 2, 5, 9} {
		n := 1 << nu
		h := hadamardDense(nu)
		v := randVector(r, n)
		want := make([]float64, n)
		h.MatVec(want, v)
		got := vec.Clone(v)
		FWHT(got)
		if vec.DistInf(got, want) > 1e-10 {
			t.Errorf("ν=%d: FWHT deviates from dense H by %g", nu, vec.DistInf(got, want))
		}
	}
}

func TestFWHTInvolution(t *testing.T) {
	// H·H = N·I, so FWHT twice recovers N·v; V = H/√N is involutory.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := int(r.Uint64n(12))
		n := 1 << nu
		v := randVector(r, n)
		w := vec.Clone(v)
		FWHTNormalized(w)
		FWHTNormalized(w)
		return vec.DistInf(w, v) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFWHTDeviceMatchesSerial(t *testing.T) {
	r := rng.New(2)
	for _, nu := range []int{1, 4, 10} {
		v := randVector(r, 1<<nu)
		serial := vec.Clone(v)
		FWHT(serial)
		for _, workers := range []int{1, 3, 8} {
			par := vec.Clone(v)
			FWHTDevice(device.New(workers, device.WithGrain(2)), par)
			if vec.DistInf(serial, par) != 0 {
				t.Errorf("ν=%d workers=%d: device FWHT differs", nu, workers)
			}
		}
	}
}

func TestFWHTPanicsOnNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FWHT(len %d) must panic", n)
				}
			}()
			FWHT(make([]float64, n))
		}()
	}
}

func TestEigenvectorEntryMatchesHadamard(t *testing.T) {
	// V(ν)[i][j] from the componentwise formula must equal H/√N entrywise.
	const nu = 6
	n := 1 << nu
	h := hadamardDense(nu)
	scale := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := h.At(i, j) * scale
			if got := EigenvectorEntry(nu, uint64(i), uint64(j)); math.Abs(got-want) > 1e-15 {
				t.Fatalf("V[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestEigendecompositionReconstructsQ(t *testing.T) {
	// Q·v == V·Λ·V·v with V applied via FWHT and Λ from the closed form.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(10))
		p := 0.001 + 0.497*r.Float64()
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())

		want := vec.Clone(v)
		q.Apply(want)

		got := vec.Clone(v)
		FWHT(got)
		lams := q.Eigenvalues()
		scale := 1 / float64(q.Dim())
		for i := range got {
			got[i] *= lams[i] * scale
		}
		FWHT(got)
		return vec.DistInf(got, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEigenvalueMultiplicities(t *testing.T) {
	// Eigenvalue (1−2p)^k has multiplicity C(ν,k).
	const nu = 10
	const p = 0.02
	q := MustUniform(nu, p)
	lams := q.Eigenvalues()
	counts := map[int]uint64{}
	for i, l := range lams {
		k := bits.Weight(uint64(i))
		counts[k]++
		want := math.Pow(1-2*p, float64(k))
		if math.Abs(l-want) > 1e-14 {
			t.Fatalf("λ[%d] = %g, want %g", i, l, want)
		}
	}
	for k := 0; k <= nu; k++ {
		if counts[k] != bits.Binomial(nu, k) {
			t.Errorf("multiplicity of (1−2p)^%d = %d, want %d", k, counts[k], bits.Binomial(nu, k))
		}
	}
}

func TestQPositiveDefiniteForSmallP(t *testing.T) {
	// All eigenvalues (1−2p)^k > 0 for p < ½ — Section 2's positive
	// definiteness claim, checked through the dense symmetric eigensolver.
	q := Dense(6, 0.05)
	vals, _, err := dense.JacobiEigen(q, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range vals {
		if l <= 0 {
			t.Fatalf("eigenvalue %g is not positive", l)
		}
	}
}

func TestApplyInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(10))
		p := 0.001 + 0.4*r.Float64() // stay away from the singular p = ½
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())
		w := vec.Clone(v)
		q.ApplyInverse(w)
		q.Apply(w)
		return vec.DistInf(w, v) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestApplyInverseRowSums(t *testing.T) {
	// Eq. 12: absolute row/column sums of Q⁻¹ are all (1−2p)^(−ν).
	const nu, p = 6, 0.03
	q := MustUniform(nu, p)
	n := q.Dim()
	want := math.Pow(1-2*p, -float64(nu))
	// Column sums of |Q⁻¹| via applying to basis vectors.
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		q.ApplyInverse(e)
		var s float64
		for _, v := range e {
			s += math.Abs(v)
		}
		if math.Abs(s-want)/want > 1e-10 {
			t.Fatalf("‖Q⁻¹ e_%d‖₁ = %g, want %g", c, s, want)
		}
	}
}

func TestApplyInverseSingularAtHalf(t *testing.T) {
	q := MustUniform(3, 0.5)
	defer func() {
		if recover() == nil {
			t.Error("ApplyInverse at p = 1/2 must panic")
		}
	}()
	q.ApplyInverse(make([]float64, 8))
}

func TestShiftInvertRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(9))
		p := 0.001 + 0.45*r.Float64()
		q := MustUniform(nu, p)
		mu := -0.5 - r.Float64() // safely below the spectrum
		v := randVector(r, q.Dim())
		w := vec.Clone(v)
		if err := q.ApplyShiftInvert(w, mu); err != nil {
			return false
		}
		// (Q − µI)w must reproduce v.
		qw := vec.Clone(w)
		q.Apply(qw)
		vec.AXPY(-mu, w, qw)
		return vec.DistInf(qw, v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestShiftInvertRejectsEigenvalueShift(t *testing.T) {
	q := MustUniform(4, 0.1)
	if err := q.ApplyShiftInvert(make([]float64, 16), 1.0); err == nil {
		t.Error("µ = 1 is an eigenvalue of Q and must be rejected")
	}
	if err := q.ApplyShiftInvert(make([]float64, 16), math.Pow(0.8, 2)); err == nil {
		t.Error("µ = (1−2p)² is an eigenvalue of Q and must be rejected")
	}
}

func TestShiftInvertDeviceMatchesSerial(t *testing.T) {
	r := rng.New(9)
	q := MustUniform(10, 0.01)
	v := randVector(r, q.Dim())
	serial := vec.Clone(v)
	if err := q.ApplyShiftInvert(serial, -0.7); err != nil {
		t.Fatal(err)
	}
	par := vec.Clone(v)
	if err := q.ApplyShiftInvertDevice(device.New(4, device.WithGrain(16)), par, -0.7); err != nil {
		t.Fatal(err)
	}
	if vec.DistInf(serial, par) > 1e-13 {
		t.Errorf("device shift-invert differs by %g", vec.DistInf(serial, par))
	}
}

func TestSpectralOpsRequireUniform(t *testing.T) {
	r := rng.New(10)
	factors := []Factor2{randStochasticFactor(r), randStochasticFactor(r)}
	q, err := NewPerSite(factors)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Uniform(); ok {
		t.Skip("random factors accidentally uniform")
	}
	for name, fn := range map[string]func(){
		"Eigenvalues":  func() { q.Eigenvalues() },
		"ApplyInverse": func() { q.ApplyInverse(make([]float64, 4)) },
		"ShiftInvert":  func() { _ = q.ApplyShiftInvert(make([]float64, 4), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on non-uniform process must panic", name)
				}
			}()
			fn()
		}()
	}
}
