package mutation

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/device"
)

// Xmvp is the XOR-based implicit (and optionally sparsified) matrix–vector
// product of the authors' earlier work [10], which the paper uses as its
// baseline. For a maximum Hamming distance dmax it computes
//
//	(Q·v)[i] ≈ Σ_{dH(i,j) ≤ dmax} QΓ_{dH(i,j)} · v[j]
//	         = Σ_{weight(m) ≤ dmax} QΓ_{weight(m)} · v[i ⊕ m],
//
// enumerating neighbours via XOR masks so Q is never stored. With
// dmax = ν it is exact and "basically identical to Smvp up to some small
// constant factor" (the paper's Θ(N²) reference); with dmax < ν it is the
// approximation whose accuracy/speed trade-off Figures 2–4 chart.
// Time is Θ(N·Σ_{k≤dmax} C(ν,k)); extra space is Θ(#masks).
type Xmvp struct {
	nu   int
	n    int
	p    float64
	dmax int
	// masks of weight ≤ dmax paired with the class value of their weight.
	masks  []uint64
	values []float64
}

// NewXmvp builds the mask table for chain length nu, error rate p and
// sparsification radius dmax (clamped to nu; dmax = nu is exact).
func NewXmvp(nu int, p float64, dmax int) (*Xmvp, error) {
	if err := ValidateRate(p); err != nil {
		return nil, err
	}
	if nu < 0 || nu > bits.MaxChainLen {
		return nil, fmt.Errorf("mutation: chain length %d out of range", nu)
	}
	if dmax < 0 {
		return nil, fmt.Errorf("mutation: dmax %d must be non-negative", dmax)
	}
	if dmax > nu {
		dmax = nu
	}
	size := bits.NeighborhoodSize(nu, dmax)
	const maxMasks = 1 << 28
	if size > maxMasks {
		return nil, fmt.Errorf("mutation: Xmvp mask table with %d entries exceeds the %d cap", size, maxMasks)
	}
	qv := ClassValues(nu, p)
	x := &Xmvp{nu: nu, n: bits.SpaceSize(nu), p: p, dmax: dmax,
		masks: make([]uint64, 0, size), values: make([]float64, 0, size)}
	bits.EnumerateUpToWeight(nu, dmax, func(m uint64, w int) {
		x.masks = append(x.masks, m)
		x.values = append(x.values, qv[w])
	})
	return x, nil
}

// MustXmvp is NewXmvp that panics on error.
func MustXmvp(nu int, p float64, dmax int) *Xmvp {
	x, err := NewXmvp(nu, p, dmax)
	if err != nil {
		panic(err)
	}
	return x
}

// ChainLen returns ν.
func (x *Xmvp) ChainLen() int { return x.nu }

// Dim returns N = 2^ν.
func (x *Xmvp) Dim() int { return x.n }

// DMax returns the sparsification radius.
func (x *Xmvp) DMax() int { return x.dmax }

// MaskCount returns the number of XOR masks, Σ_{k≤dmax} C(ν,k).
func (x *Xmvp) MaskCount() int { return len(x.masks) }

// Apply computes dst ← Q·v (restricted to the dmax-neighbourhood).
// dst must not alias v.
func (x *Xmvp) Apply(dst, v []float64) {
	x.checkDims(dst, v)
	x.applyRows(dst, v, 0, x.n)
}

// ApplyDevice is Apply with the row loop distributed over device workers;
// rows are independent, so this mirrors the paper's GPU port of Xmvp.
func (x *Xmvp) ApplyDevice(d *device.Device, dst, v []float64) {
	x.checkDims(dst, v)
	d.LaunchRange(x.n, func(lo, hi int) {
		x.applyRows(dst, v, lo, hi)
	})
}

// applyRows computes rows [lo, hi) of dst ← Q·v. The value table is
// re-sliced to the mask table's length so the paired loads run without
// bounds checks, and the mask loop is unrolled 4-wide WITHOUT changing the
// accumulation order (s gathers the products strictly left to right, as in
// the scalar loop), so sparsification-accuracy results are unchanged. Only
// the gather v[ui^m] keeps its check — its index is data-dependent.
func (x *Xmvp) applyRows(dst, v []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		ui := uint64(i)
		ms, vals := x.masks, x.values[:len(x.masks)]
		for len(ms) >= 4 && len(vals) >= 4 {
			p0 := vals[0] * v[ui^ms[0]]
			p1 := vals[1] * v[ui^ms[1]]
			p2 := vals[2] * v[ui^ms[2]]
			p3 := vals[3] * v[ui^ms[3]]
			s = ((s + p0 + p1) + p2) + p3
			ms, vals = ms[4:], vals[4:]
		}
		for len(ms) > 0 && len(vals) > 0 {
			s += vals[0] * v[ui^ms[0]]
			ms, vals = ms[1:], vals[1:]
		}
		dst[i] = s
	}
}

func (x *Xmvp) checkDims(dst, v []float64) {
	if len(dst) != x.n || len(v) != x.n {
		panic(fmt.Sprintf("mutation: Xmvp dimension mismatch: dst %d, v %d, N %d", len(dst), len(v), x.n))
	}
	if &dst[0] == &v[0] {
		panic("mutation: Xmvp.Apply dst must not alias v")
	}
}
