package mutation

// AVX2 reports whether the AVX2 butterfly kernels are active for this
// process, with the degradation reason when they are not ("" when active).
// The answer is what run manifests record: it distinguishes a host without
// the instruction set from an operator-forced scalar run (QS_NOAVX2), the
// two causes a post-hoc perf investigation must tell apart.
func AVX2() (active bool, reason string) {
	switch {
	case useAVX2:
		return true, ""
	case !avx2Detected:
		return false, "cpu or build lacks AVX2"
	default:
		return false, "disabled by QS_NOAVX2"
	}
}
