package mutation

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/device"
)

// This file implements the spectral machinery of Section 2: the fast
// Walsh–Hadamard transform that realizes multiplication with the
// eigenvector matrix V(ν) of Q(ν), the closed-form eigenvalues
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0), the explicit inverse Q⁻¹ (Eq. 12) and the
// Θ(N·log₂N) shift-and-invert product (Q − µI)⁻¹·v = V·(Λ−µI)⁻¹·V·v.

// FWHT performs the unnormalized in-place fast Walsh–Hadamard transform
// of v: v ← H(ν)·v with H(ν) = ⊗ᵢ [[1,1],[1,−1]]. len(v) must be a power
// of two. Applying FWHT twice multiplies by N.
func FWHT(v []float64) {
	n := len(v)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("mutation: FWHT length %d is not a power of two", n))
	}
	for stride := 1; stride < n; stride <<= 1 {
		for j := 0; j < n; j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = t1 + t2
				v[k+stride] = t1 - t2
			}
		}
	}
}

// FWHTNormalized performs v ← V(ν)·v with the orthonormal (and involutory)
// V(ν) = 2^(−ν/2)·H(ν), the eigenvector matrix of Q(ν).
func FWHTNormalized(v []float64) {
	FWHT(v)
	scale := 1 / math.Sqrt(float64(len(v)))
	for i := range v {
		v[i] *= scale
	}
}

// FWHTDevice performs the unnormalized FWHT with one device kernel launch
// per butterfly stage (the transform shares Algorithm 2's structure).
func FWHTDevice(d *device.Device, v []float64) {
	n := len(v)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("mutation: FWHT length %d is not a power of two", n))
	}
	for stride := 1; stride < n; stride <<= 1 {
		s := stride
		d.LaunchRange(n/2, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				j := 2*id - (id & (s - 1))
				t1, t2 := v[j], v[j+s]
				v[j] = t1 + t2
				v[j+s] = t1 - t2
			}
		})
	}
}

// Eigenvalue returns the eigenvalue of Q(ν) associated with Walsh index i:
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0). Only valid for uniform processes.
func (q *Process) Eigenvalue(i uint64) float64 {
	q.requireUniform("Eigenvalue")
	return math.Pow(1-2*q.p, float64(bits.Weight(i)))
}

// Eigenvalues returns all N eigenvalues of a uniform Q(ν) in Walsh order.
// Θ(N) memory — small ν only.
func (q *Process) Eigenvalues() []float64 {
	q.requireUniform("Eigenvalues")
	out := make([]float64, q.n)
	base := 1 - 2*q.p
	// (1−2p)^k for k = 0…ν, then scatter by Hamming weight.
	pow := make([]float64, q.nu+1)
	pow[0] = 1
	for k := 1; k <= q.nu; k++ {
		pow[k] = pow[k-1] * base
	}
	for i := range out {
		out[i] = pow[bits.Weight(uint64(i))]
	}
	return out
}

// EigenvectorEntry returns V(ν)[i][j] = 2^(−ν/2)·(−1)^((dH(i,0)+dH(j,0)−dH(i,j))/2),
// the componentwise form of the eigenvector matrix given in Section 2.
func EigenvectorEntry(nu int, i, j uint64) float64 {
	e := (bits.Weight(i) + bits.Weight(j) - bits.Hamming(i, j)) / 2
	sign := 1.0
	if e%2 == 1 {
		sign = -1
	}
	return sign / math.Sqrt(float64(bits.SpaceSize(nu)))
}

// ApplyInverse computes v ← Q⁻¹·v in place in Θ(N·log₂N) time using the
// Kronecker representation of the inverse (Eq. 12):
// Q(ν)⁻¹ = (1−2p)^(−ν) ⊗ᵢ [[1−p, −p], [−p, 1−p]].
// Only valid for uniform processes with p < ½ (Q is singular at p = ½).
func (q *Process) ApplyInverse(v []float64) {
	q.requireUniform("ApplyInverse")
	q.checkDim(len(v))
	if q.p >= 0.5 {
		panic("mutation: Q is singular at p = 1/2; ApplyInverse undefined")
	}
	a := 1 - q.p
	b := -q.p
	for stride := 1; stride < q.n; stride <<= 1 {
		for j := 0; j < q.n; j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = a*t1 + b*t2
				v[k+stride] = b*t1 + a*t2
			}
		}
	}
	scale := math.Pow(1-2*q.p, -float64(q.nu))
	for i := range v {
		v[i] *= scale
	}
}

// ApplyShiftInvert computes v ← (Q − µI)⁻¹·v in place in Θ(N·log₂N) time
// via the eigendecomposition route of Section 3:
//
//	(Q − µI)⁻¹·v = V·(Λ − µI)⁻¹·V·v,
//
// where V·v is one FWHT. µ must not equal any eigenvalue (1−2p)^k.
// Only valid for uniform processes.
func (q *Process) ApplyShiftInvert(v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvert")
	q.checkDim(len(v))
	base := 1 - 2*q.p
	inv := make([]float64, q.nu+1)
	lam := 1.0
	for k := 0; k <= q.nu; k++ {
		d := lam - mu
		if d == 0 {
			return fmt.Errorf("mutation: shift µ = %g equals eigenvalue (1−2p)^%d", mu, k)
		}
		inv[k] = 1 / d
		lam *= base
	}
	FWHT(v)
	scale := 1 / float64(q.n) // the two 2^(−ν/2) factors of V·…·V combined
	for i := range v {
		v[i] *= inv[bits.Weight(uint64(i))] * scale
	}
	FWHT(v)
	return nil
}

// ApplyShiftInvertDevice is ApplyShiftInvert with device-parallel
// transforms and diagonal scaling.
func (q *Process) ApplyShiftInvertDevice(d *device.Device, v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvertDevice")
	q.checkDim(len(v))
	base := 1 - 2*q.p
	inv := make([]float64, q.nu+1)
	lam := 1.0
	for k := 0; k <= q.nu; k++ {
		dd := lam - mu
		if dd == 0 {
			return fmt.Errorf("mutation: shift µ = %g equals eigenvalue (1−2p)^%d", mu, k)
		}
		inv[k] = 1 / dd
		lam *= base
	}
	FWHTDevice(d, v)
	scale := 1 / float64(q.n)
	d.LaunchRange(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= inv[bits.Weight(uint64(i))] * scale
		}
	})
	FWHTDevice(d, v)
	return nil
}

func (q *Process) requireUniform(op string) {
	if !q.uniform {
		panic(fmt.Sprintf("mutation: %s requires the uniform-rate process", op))
	}
}
