package mutation

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/device"
	"repro/internal/span"
)

// This file implements the spectral machinery of Section 2: the fast
// Walsh–Hadamard transform that realizes multiplication with the
// eigenvector matrix V(ν) of Q(ν), the closed-form eigenvalues
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0), the explicit inverse Q⁻¹ (Eq. 12) and the
// Θ(N·log₂N) shift-and-invert product (Q − µI)⁻¹·v = V·(Λ−µI)⁻¹·V·v.
// The transforms run on the cache-blocked kernels of blocked.go, with the
// Hadamard butterfly specialized to additions; FWHTNaive keeps the
// one-pass-per-stage loop as the bit-identical reference.

// FWHT performs the unnormalized in-place fast Walsh–Hadamard transform
// of v: v ← H(ν)·v with H(ν) = ⊗ᵢ [[1,1],[1,−1]]. len(v) must be a power
// of two. Applying FWHT twice multiplies by N. The blocked execution is
// bit-identical to FWHTNaive.
func FWHT(v []float64) {
	checkFWHTLen(len(v))
	fwhtBlocked(v, TileBits(), fuseStages)
}

// FWHTNaive is the literal stage loop of the transform — one full pass
// over the vector per stride — kept as the reference and benchmark
// baseline for the blocked kernel.
func FWHTNaive(v []float64) {
	checkFWHTLen(len(v))
	n := len(v)
	for stride := 1; stride < n; stride <<= 1 {
		for j := 0; j < n; j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = t1 + t2
				v[k+stride] = t1 - t2
			}
		}
	}
}

// FWHTNormalized performs v ← V(ν)·v with the orthonormal (and involutory)
// V(ν) = 2^(−ν/2)·H(ν), the eigenvector matrix of Q(ν).
func FWHTNormalized(v []float64) {
	FWHT(v)
	scale := 1 / math.Sqrt(float64(len(v)))
	for i := range v {
		v[i] *= scale
	}
}

// FWHTDevice performs the unnormalized FWHT on the device runtime with the
// blocked kernels — one LaunchStages dispatch per fused stage-group
// instead of one launch per butterfly stage.
func FWHTDevice(d *device.Device, v []float64) {
	checkFWHTLen(len(v))
	fwhtBlockedDevice(d, v, TileBits(), fuseStages)
}

func checkFWHTLen(n int) {
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("mutation: FWHT length %d is not a power of two", n))
	}
}

// fwhtBlocked is the cache-blocked transform: all stages with span ≤ B
// fused into one pass over B-element tiles, the remaining stages fused in
// groups of ≤ fuse row-block passes (see blocked.go for the scheme).
func fwhtBlocked(v []float64, tb, fuse int) {
	n := len(v)
	if n <= 1 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B := 1 << uint(tb)
	if B > n {
		B = n
	}
	for t := 0; t < n; t += B {
		fwhtTile(v[t : t+B])
	}
	lgR := log2(n / B)
	for s := 0; s < lgR; {
		m := lgR - s
		if m > fuse {
			m = fuse
		}
		fwhtCross(v, B, s, m)
		s += m
	}
}

// fwhtBlockedDevice is fwhtBlocked with one device launch per fused pass.
func fwhtBlockedDevice(d *device.Device, v []float64, tb, fuse int) {
	n := len(v)
	if n <= 1 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B := 1 << uint(tb)
	if B > n {
		B = n
	}
	lgB := log2(B)
	d.LaunchStages(lgB, n/B, B, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			fwhtTile(v[t*B : (t+1)*B])
		}
	})
	lgR := log2(n / B)
	for s := 0; s < lgR; {
		m := lgR - s
		if m > fuse {
			m = fuse
		}
		rb0 := s
		mm := m
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(lgB)) >> uint(mm)
		d.LaunchStages(mm, nBases, B<<uint(mm), func(lo, hi int) {
			for bb := lo; bb < hi; bb++ {
				base := ((bb &^ lowMask) << uint(mm)) | (bb & lowMask)
				fwhtCrossGroup(v, B, base, rb0, mm)
			}
		})
		s += m
	}
}

// fwhtTile applies every stage with span ≤ len(tile) inside one tile.
// Stage pairs run radix-4 (four elements in registers per load/store sweep);
// the per-element rounding sequence matches the radix-2 stage loop exactly.
func fwhtTile(tile []float64) {
	stride := 1
	for ; 4*stride <= len(tile); stride *= 4 {
		for j := 0; j < len(tile); j += 4 * stride {
			for k := j; k < j+stride; k++ {
				e0, e1 := tile[k], tile[k+stride]
				e2, e3 := tile[k+2*stride], tile[k+3*stride]
				e0, e1 = e0+e1, e0-e1
				e2, e3 = e2+e3, e2-e3
				e0, e2 = e0+e2, e0-e2
				e1, e3 = e1+e3, e1-e3
				tile[k], tile[k+stride] = e0, e1
				tile[k+2*stride], tile[k+3*stride] = e2, e3
			}
		}
	}
	if stride < len(tile) {
		for j := 0; j < len(tile); j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := tile[k], tile[k+stride]
				tile[k] = t1 + t2
				tile[k+stride] = t1 - t2
			}
		}
	}
}

// fwhtCross applies m fused row stages starting at row-bit rb0 over the
// (n/B)×B row matrix view of v.
func fwhtCross(v []float64, B, rb0, m int) {
	lowMask := 1<<uint(rb0) - 1
	nBases := (len(v) / B) >> uint(m)
	for bb := 0; bb < nBases; bb++ {
		base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
		fwhtCrossGroup(v, B, base, rb0, m)
	}
}

// fwhtCrossGroup applies the fused Hadamard stages to one interacting set
// of 2^m rows, sweeping cache-resident column chunks; stage pairs run
// radix-4 like in fwhtTile.
func fwhtCrossGroup(v []float64, B, baseRow, rb0, m int) {
	size := 1 << uint(m)
	var rp [1 << maxFuseStages][]float64
	for t := 0; t < size; t++ {
		r := baseRow | t<<uint(rb0)
		rp[t] = v[r*B : r*B+B]
	}
	colChunk := colChunkFor(size, B)
	for c0 := 0; c0 < B; c0 += colChunk {
		c1 := c0 + colChunk
		if c1 > B {
			c1 = B
		}
		s := 0
		for ; s+1 < m; s += 2 {
			bit1, bit2 := 1<<uint(s), 2<<uint(s)
			for t := 0; t < size; t++ {
				if t&(bit1|bit2) != 0 {
					continue
				}
				r0, r1 := rp[t][c0:c1], rp[t|bit1][c0:c1]
				r2, r3 := rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1]
				for i := range r0 {
					e0, e1, e2, e3 := r0[i], r1[i], r2[i], r3[i]
					e0, e1 = e0+e1, e0-e1
					e2, e3 = e2+e3, e2-e3
					e0, e2 = e0+e2, e0-e2
					e1, e3 = e1+e3, e1-e3
					r0[i], r1[i], r2[i], r3[i] = e0, e1, e2, e3
				}
			}
		}
		if s < m {
			bit := 1 << uint(s)
			for t := 0; t < size; t++ {
				if t&bit != 0 {
					continue
				}
				u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
				for i := range u {
					t1, t2 := u[i], w[i]
					u[i] = t1 + t2
					w[i] = t1 - t2
				}
			}
		}
	}
}

// Eigenvalue returns the eigenvalue of Q(ν) associated with Walsh index i:
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0). Only valid for uniform processes.
func (q *Process) Eigenvalue(i uint64) float64 {
	q.requireUniform("Eigenvalue")
	return math.Pow(1-2*q.p, float64(bits.Weight(i)))
}

// Eigenvalues returns all N eigenvalues of a uniform Q(ν) in Walsh order.
// Θ(N) memory — small ν only.
func (q *Process) Eigenvalues() []float64 {
	q.requireUniform("Eigenvalues")
	out := make([]float64, q.n)
	base := 1 - 2*q.p
	// (1−2p)^k for k = 0…ν, then scatter by Hamming weight.
	pow := make([]float64, q.nu+1)
	pow[0] = 1
	for k := 1; k <= q.nu; k++ {
		pow[k] = pow[k-1] * base
	}
	for i := range out {
		out[i] = pow[bits.Weight(uint64(i))]
	}
	return out
}

// EigenvectorEntry returns V(ν)[i][j] = 2^(−ν/2)·(−1)^((dH(i,0)+dH(j,0)−dH(i,j))/2),
// the componentwise form of the eigenvector matrix given in Section 2.
func EigenvectorEntry(nu int, i, j uint64) float64 {
	e := (bits.Weight(i) + bits.Weight(j) - bits.Hamming(i, j)) / 2
	sign := 1.0
	if e%2 == 1 {
		sign = -1
	}
	return sign / math.Sqrt(float64(bits.SpaceSize(nu)))
}

// ApplyInverse computes v ← Q⁻¹·v in place in Θ(N·log₂N) time using the
// Kronecker representation of the inverse (Eq. 12):
// Q(ν)⁻¹ = (1−2p)^(−ν) ⊗ᵢ [[1−p, −p], [−p, 1−p]],
// executed by the blocked butterfly kernels with the precomputed inverse
// factors (allocation-free). Only valid for uniform processes with p < ½
// (Q is singular at p = ½).
func (q *Process) ApplyInverse(v []float64) {
	q.requireUniform("ApplyInverse")
	q.checkDim(len(v))
	if q.p >= 0.5 {
		panic("mutation: Q is singular at p = 1/2; ApplyInverse undefined")
	}
	sp := span.Begin(span.LayerMutation, KindApplyInverse)
	applyStagesBlocked(v, 0, q.invFactors, TileBits(), fuseStages)
	scale := math.Pow(1-2*q.p, -float64(q.nu))
	for i := range v {
		v[i] *= scale
	}
	span.End(sp, int64(q.nu), 1)
}

// fillShiftInvertSpectrum fills q.siInv with (Λ−µI)⁻¹ per Hamming weight,
// or reports the eigenvalue µ collides with.
func (q *Process) fillShiftInvertSpectrum(mu float64) error {
	base := 1 - 2*q.p
	lam := 1.0
	for k := 0; k <= q.nu; k++ {
		d := lam - mu
		if d == 0 {
			return fmt.Errorf("mutation: shift µ = %g equals eigenvalue (1−2p)^%d", mu, k)
		}
		q.siInv[k] = 1 / d
		lam *= base
	}
	return nil
}

// ApplyShiftInvert computes v ← (Q − µI)⁻¹·v in place in Θ(N·log₂N) time
// via the eigendecomposition route of Section 3:
//
//	(Q − µI)⁻¹·v = V·(Λ − µI)⁻¹·V·v,
//
// where V·v is one FWHT. µ must not equal any eigenvalue (1−2p)^k.
// Only valid for uniform processes. The spectrum scratch lives on the
// Process, so the call is allocation-free (and therefore must not run
// concurrently with itself on one Process).
func (q *Process) ApplyShiftInvert(v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvert")
	q.checkDim(len(v))
	if err := q.fillShiftInvertSpectrum(mu); err != nil {
		return err
	}
	sp := span.Begin(span.LayerMutation, KindShiftInvert)
	inv := q.siInv
	FWHT(v)
	scale := 1 / float64(q.n) // the two 2^(−ν/2) factors of V·…·V combined
	for i := range v {
		v[i] *= inv[bits.Weight(uint64(i))] * scale
	}
	FWHT(v)
	span.End(sp, int64(q.nu), 1)
	return nil
}

// ApplyShiftInvertDevice is ApplyShiftInvert with device-parallel
// transforms and diagonal scaling.
func (q *Process) ApplyShiftInvertDevice(d *device.Device, v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvertDevice")
	q.checkDim(len(v))
	if err := q.fillShiftInvertSpectrum(mu); err != nil {
		return err
	}
	sp := span.Begin(span.LayerMutation, KindShiftInvert)
	inv := q.siInv
	FWHTDevice(d, v)
	scale := 1 / float64(q.n)
	d.LaunchRange(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= inv[bits.Weight(uint64(i))] * scale
		}
	})
	FWHTDevice(d, v)
	span.End(sp, int64(q.nu), 1)
	return nil
}

func (q *Process) requireUniform(op string) {
	if !q.uniform {
		panic(fmt.Sprintf("mutation: %s requires the uniform-rate process", op))
	}
}
