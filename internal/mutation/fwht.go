package mutation

import (
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/device"
	"repro/internal/span"
)

// This file implements the spectral machinery of Section 2: the fast
// Walsh–Hadamard transform that realizes multiplication with the
// eigenvector matrix V(ν) of Q(ν), the closed-form eigenvalues
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0), the explicit inverse Q⁻¹ (Eq. 12) and the
// Θ(N·log₂N) shift-and-invert product (Q − µI)⁻¹·v = V·(Λ−µI)⁻¹·V·v.
// The transforms run on the cache-blocked kernels of blocked.go, with the
// Hadamard butterfly specialized to additions; FWHTNaive keeps the
// one-pass-per-stage loop as the bit-identical reference.

// FWHT performs the unnormalized in-place fast Walsh–Hadamard transform
// of v: v ← H(ν)·v with H(ν) = ⊗ᵢ [[1,1],[1,−1]]. len(v) must be a power
// of two. Applying FWHT twice multiplies by N. The blocked execution is
// bit-identical to FWHTNaive.
func FWHT(v []float64) {
	checkFWHTLen(len(v))
	fwhtBlocked(v, TileBits(), fuseStages)
}

// FWHTNaive is the literal stage loop of the transform — one full pass
// over the vector per stride — kept as the reference and benchmark
// baseline for the blocked kernel.
func FWHTNaive(v []float64) {
	checkFWHTLen(len(v))
	n := len(v)
	for stride := 1; stride < n; stride <<= 1 {
		for j := 0; j < n; j += 2 * stride {
			for k := j; k < j+stride; k++ {
				t1, t2 := v[k], v[k+stride]
				v[k] = t1 + t2
				v[k+stride] = t1 - t2
			}
		}
	}
}

// FWHTNormalized performs v ← V(ν)·v with the orthonormal (and involutory)
// V(ν) = 2^(−ν/2)·H(ν), the eigenvector matrix of Q(ν).
func FWHTNormalized(v []float64) {
	FWHT(v)
	scale := 1 / math.Sqrt(float64(len(v)))
	for i := range v {
		v[i] *= scale
	}
}

// FWHTDevice performs the unnormalized FWHT on the device runtime with the
// blocked kernels — one LaunchStages dispatch per fused stage-group
// instead of one launch per butterfly stage.
func FWHTDevice(d *device.Device, v []float64) {
	checkFWHTLen(len(v))
	fwhtBlockedDevice(d, v, TileBits(), fuseStages)
}

func checkFWHTLen(n int) {
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("mutation: FWHT length %d is not a power of two", n))
	}
}

// fwhtBlocked is the cache-blocked transform: all stages with span ≤ B
// fused into one pass over B-element tiles, the remaining stages fused in
// groups of ≤ fuse row-block passes (see blocked.go for the scheme).
func fwhtBlocked(v []float64, tb, fuse int) {
	n := len(v)
	if n <= 1 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B := 1 << uint(tb)
	if B > n {
		B = n
	}
	for t := 0; t < n; t += B {
		fwhtTile(v[t : t+B])
	}
	lgR := log2(n / B)
	for s := 0; s < lgR; {
		m := lgR - s
		if m > fuse {
			m = fuse
		}
		fwhtCross(v, B, s, m)
		s += m
	}
}

// fwhtBlockedDevice is fwhtBlocked with one device launch per fused pass.
func fwhtBlockedDevice(d *device.Device, v []float64, tb, fuse int) {
	n := len(v)
	if n <= 1 {
		return
	}
	if fuse < 1 {
		fuse = 1
	}
	if fuse > maxFuseStages {
		fuse = maxFuseStages
	}
	B := 1 << uint(tb)
	if B > n {
		B = n
	}
	lgB := log2(B)
	d.LaunchStages(lgB, n/B, B, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			fwhtTile(v[t*B : (t+1)*B])
		}
	})
	lgR := log2(n / B)
	for s := 0; s < lgR; {
		m := lgR - s
		if m > fuse {
			m = fuse
		}
		rb0 := s
		mm := m
		lowMask := 1<<uint(rb0) - 1
		nBases := (n >> uint(lgB)) >> uint(mm)
		d.LaunchStages(mm, nBases, B<<uint(mm), func(lo, hi int) {
			for bb := lo; bb < hi; bb++ {
				base := ((bb &^ lowMask) << uint(mm)) | (bb & lowMask)
				fwhtCrossGroup(v, B, base, rb0, mm)
			}
		})
		s += m
	}
}

// bfly4h is the radix-4 Hadamard butterfly as a pure register function:
// the operation sequence is exactly that of two radix-2 stages (first the
// (e0,e1) and (e2,e3) pairs, then the (e0,e2) and (e1,e3) pairs), so every
// fused path built on it stays bit-identical to the naive stage loop.
func bfly4h(e0, e1, e2, e3 float64) (float64, float64, float64, float64) {
	e0, e1 = e0+e1, e0-e1
	e2, e3 = e2+e3, e2-e3
	e0, e2 = e0+e2, e0-e2
	e1, e3 = e1+e3, e1-e3
	return e0, e1, e2, e3
}

// fwhtTile applies every stage with span ≤ len(tile) inside one tile.
// Stage pairs run radix-4 (four elements in registers per load/store sweep);
// the per-element rounding sequence matches the radix-2 stage loop exactly.
// Like the mutation kernels (blocked.go), the loops hoist exact-length lane
// subslices for bounds-check elimination and run 4-wide for ILP.
func fwhtTile(tile []float64) {
	stride := 1
	if 4 <= len(tile) {
		// First radix-4 pass: contiguous quads, two butterflies in flight.
		// Slice-advance with constant indexes is the loop form the go1.24
		// prover discharges completely (scripts/check_bce.sh).
		t := tile
		for len(t) >= 8 {
			a0, a1, a2, a3 := bfly4h(t[0], t[1], t[2], t[3])
			c0, c1, c2, c3 := bfly4h(t[4], t[5], t[6], t[7])
			t[0], t[1], t[2], t[3] = a0, a1, a2, a3
			t[4], t[5], t[6], t[7] = c0, c1, c2, c3
			t = t[8:]
		}
		if len(t) >= 4 {
			t[0], t[1], t[2], t[3] = bfly4h(t[0], t[1], t[2], t[3])
		}
		stride = 4
	}
	for ; 4*stride <= len(tile); stride *= 4 {
		if useAVX2 {
			// stride ≥ 4 here (the contiguous first pass already ran), so
			// the whole radix-4 pass vectorizes (avx_amd64.s).
			avxTileHad(&tile[0], len(tile)&^(4*stride-1), stride)
			continue
		}
		for j := 0; j+4*stride <= len(tile); j += 4 * stride {
			s0 := tile[j : j+stride : j+stride]
			s1 := tile[j+stride : j+2*stride : j+2*stride]
			s2 := tile[j+2*stride : j+3*stride : j+3*stride]
			s3 := tile[j+3*stride : j+4*stride : j+4*stride]
			for len(s0) >= 4 && len(s1) >= 4 && len(s2) >= 4 && len(s3) >= 4 {
				a0, a1, a2, a3 := bfly4h(s0[0], s1[0], s2[0], s3[0])
				c0, c1, c2, c3 := bfly4h(s0[1], s1[1], s2[1], s3[1])
				e0, e1, e2, e3 := bfly4h(s0[2], s1[2], s2[2], s3[2])
				g0, g1, g2, g3 := bfly4h(s0[3], s1[3], s2[3], s3[3])
				s0[0], s1[0], s2[0], s3[0] = a0, a1, a2, a3
				s0[1], s1[1], s2[1], s3[1] = c0, c1, c2, c3
				s0[2], s1[2], s2[2], s3[2] = e0, e1, e2, e3
				s0[3], s1[3], s2[3], s3[3] = g0, g1, g2, g3
				s0, s1, s2, s3 = s0[4:], s1[4:], s2[4:], s3[4:]
			}
			for len(s0) > 0 && len(s1) > 0 && len(s2) > 0 && len(s3) > 0 {
				s0[0], s1[0], s2[0], s3[0] = bfly4h(s0[0], s1[0], s2[0], s3[0])
				s0, s1, s2, s3 = s0[1:], s1[1:], s2[1:], s3[1:]
			}
		}
	}
	if stride < len(tile) {
		// One leftover radix-2 stage (log₂ len odd).
		for j := 0; j+2*stride <= len(tile); j += 2 * stride {
			u := tile[j : j+stride : j+stride]
			w := tile[j+stride : j+2*stride : j+2*stride]
			for len(u) >= 4 && len(w) >= 4 {
				t1a, t2a := u[0], w[0]
				t1b, t2b := u[1], w[1]
				t1c, t2c := u[2], w[2]
				t1d, t2d := u[3], w[3]
				u[0], w[0] = t1a+t2a, t1a-t2a
				u[1], w[1] = t1b+t2b, t1b-t2b
				u[2], w[2] = t1c+t2c, t1c-t2c
				u[3], w[3] = t1d+t2d, t1d-t2d
				u, w = u[4:], w[4:]
			}
			for len(u) > 0 && len(w) > 0 {
				t1, t2 := u[0], w[0]
				u[0] = t1 + t2
				w[0] = t1 - t2
				u, w = u[1:], w[1:]
			}
		}
	}
}

// fwhtCross applies m fused row stages starting at row-bit rb0 over the
// (n/B)×B row matrix view of v.
func fwhtCross(v []float64, B, rb0, m int) {
	lowMask := 1<<uint(rb0) - 1
	nBases := (len(v) / B) >> uint(m)
	for bb := 0; bb < nBases; bb++ {
		base := ((bb &^ lowMask) << uint(m)) | (bb & lowMask)
		fwhtCrossGroup(v, B, base, rb0, m)
	}
}

// fwhtCrossGroup applies the fused Hadamard stages to one interacting set
// of 2^m rows, sweeping cache-resident column chunks; stage pairs run
// radix-4 like in fwhtTile.
func fwhtCrossGroup(v []float64, B, baseRow, rb0, m int) {
	size := 1 << uint(m)
	var rp [1 << maxFuseStages][]float64
	for t := 0; t < size; t++ {
		r := baseRow | t<<uint(rb0)
		rp[t] = v[r*B : r*B+B]
	}
	colChunk := colChunkFor(size, B)
	for c0 := 0; c0 < B; c0 += colChunk {
		c1 := c0 + colChunk
		if c1 > B {
			c1 = B
		}
		s := 0
		for ; s+1 < m; s += 2 {
			bit1, bit2 := 1<<uint(s), 2<<uint(s)
			for t := 0; t < size; t++ {
				if t&(bit1|bit2) != 0 {
					continue
				}
				fwhtCrossQuad(rp[t][c0:c1], rp[t|bit1][c0:c1],
					rp[t|bit2][c0:c1], rp[t|bit1|bit2][c0:c1])
			}
		}
		if s < m {
			bit := 1 << uint(s)
			for t := 0; t < size; t++ {
				if t&bit != 0 {
					continue
				}
				u, w := rp[t][c0:c1], rp[t|bit][c0:c1]
				for len(u) >= 4 && len(w) >= 4 {
					t1a, t2a := u[0], w[0]
					t1b, t2b := u[1], w[1]
					t1c, t2c := u[2], w[2]
					t1d, t2d := u[3], w[3]
					u[0], w[0] = t1a+t2a, t1a-t2a
					u[1], w[1] = t1b+t2b, t1b-t2b
					u[2], w[2] = t1c+t2c, t1c-t2c
					u[3], w[3] = t1d+t2d, t1d-t2d
					u, w = u[4:], w[4:]
				}
				for len(u) > 0 && len(w) > 0 {
					t1, t2 := u[0], w[0]
					u[0] = t1 + t2
					w[0] = t1 - t2
					u, w = u[1:], w[1:]
				}
			}
		}
	}
}

// fwhtCrossQuad applies a fused pair of Hadamard stages radix-4 across four
// gathered row chunks, 4 columns (independent butterflies) per iteration.
func fwhtCrossQuad(r0, r1, r2, r3 []float64) {
	if useAVX2 {
		n := min(len(r0), len(r1), len(r2), len(r3)) &^ 3
		if n > 0 {
			avxQuadH(&r0[0], &r1[0], &r2[0], &r3[0], n)
			r0, r1, r2, r3 = r0[n:], r1[n:], r2[n:], r3[n:]
		}
	}
	for len(r0) >= 4 && len(r1) >= 4 && len(r2) >= 4 && len(r3) >= 4 {
		a0, a1, a2, a3 := bfly4h(r0[0], r1[0], r2[0], r3[0])
		c0, c1, c2, c3 := bfly4h(r0[1], r1[1], r2[1], r3[1])
		e0, e1, e2, e3 := bfly4h(r0[2], r1[2], r2[2], r3[2])
		g0, g1, g2, g3 := bfly4h(r0[3], r1[3], r2[3], r3[3])
		r0[0], r1[0], r2[0], r3[0] = a0, a1, a2, a3
		r0[1], r1[1], r2[1], r3[1] = c0, c1, c2, c3
		r0[2], r1[2], r2[2], r3[2] = e0, e1, e2, e3
		r0[3], r1[3], r2[3], r3[3] = g0, g1, g2, g3
		r0, r1, r2, r3 = r0[4:], r1[4:], r2[4:], r3[4:]
	}
	for len(r0) > 0 && len(r1) > 0 && len(r2) > 0 && len(r3) > 0 {
		r0[0], r1[0], r2[0], r3[0] = bfly4h(r0[0], r1[0], r2[0], r3[0])
		r0, r1, r2, r3 = r0[1:], r1[1:], r2[1:], r3[1:]
	}
}

// Eigenvalue returns the eigenvalue of Q(ν) associated with Walsh index i:
// Λ(ν)ᵢᵢ = (1−2p)^dH(i,0). Only valid for uniform processes.
func (q *Process) Eigenvalue(i uint64) float64 {
	q.requireUniform("Eigenvalue")
	return math.Pow(1-2*q.p, float64(bits.Weight(i)))
}

// Eigenvalues returns all N eigenvalues of a uniform Q(ν) in Walsh order.
// Θ(N) memory — small ν only.
func (q *Process) Eigenvalues() []float64 {
	q.requireUniform("Eigenvalues")
	out := make([]float64, q.n)
	base := 1 - 2*q.p
	// (1−2p)^k for k = 0…ν, then scatter by Hamming weight.
	pow := make([]float64, q.nu+1)
	pow[0] = 1
	for k := 1; k <= q.nu; k++ {
		pow[k] = pow[k-1] * base
	}
	for i := range out {
		out[i] = pow[bits.Weight(uint64(i))]
	}
	return out
}

// EigenvectorEntry returns V(ν)[i][j] = 2^(−ν/2)·(−1)^((dH(i,0)+dH(j,0)−dH(i,j))/2),
// the componentwise form of the eigenvector matrix given in Section 2.
func EigenvectorEntry(nu int, i, j uint64) float64 {
	e := (bits.Weight(i) + bits.Weight(j) - bits.Hamming(i, j)) / 2
	sign := 1.0
	if e%2 == 1 {
		sign = -1
	}
	return sign / math.Sqrt(float64(bits.SpaceSize(nu)))
}

// ApplyInverse computes v ← Q⁻¹·v in place in Θ(N·log₂N) time using the
// Kronecker representation of the inverse (Eq. 12):
// Q(ν)⁻¹ = (1−2p)^(−ν) ⊗ᵢ [[1−p, −p], [−p, 1−p]],
// executed by the blocked butterfly kernels with the precomputed inverse
// factors (allocation-free). Only valid for uniform processes with p < ½
// (Q is singular at p = ½).
func (q *Process) ApplyInverse(v []float64) {
	q.requireUniform("ApplyInverse")
	q.checkDim(len(v))
	if q.p >= 0.5 {
		panic("mutation: Q is singular at p = 1/2; ApplyInverse undefined")
	}
	sp := span.Begin(span.LayerMutation, KindApplyInverse)
	applyStagesBlocked(v, 0, q.invFactors, TileBits(), fuseStages)
	scale := math.Pow(1-2*q.p, -float64(q.nu))
	for i := range v {
		v[i] *= scale
	}
	span.End(sp, int64(q.nu), 1)
}

// fillShiftInvertSpectrum fills q.siInv with (Λ−µI)⁻¹ per Hamming weight,
// or reports the eigenvalue µ collides with.
func (q *Process) fillShiftInvertSpectrum(mu float64) error {
	base := 1 - 2*q.p
	lam := 1.0
	for k := 0; k <= q.nu; k++ {
		d := lam - mu
		if d == 0 {
			return fmt.Errorf("mutation: shift µ = %g equals eigenvalue (1−2p)^%d", mu, k)
		}
		q.siInv[k] = 1 / d
		lam *= base
	}
	return nil
}

// ApplyShiftInvert computes v ← (Q − µI)⁻¹·v in place in Θ(N·log₂N) time
// via the eigendecomposition route of Section 3:
//
//	(Q − µI)⁻¹·v = V·(Λ − µI)⁻¹·V·v,
//
// where V·v is one FWHT. µ must not equal any eigenvalue (1−2p)^k.
// Only valid for uniform processes. The spectrum scratch lives on the
// Process, so the call is allocation-free (and therefore must not run
// concurrently with itself on one Process).
func (q *Process) ApplyShiftInvert(v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvert")
	q.checkDim(len(v))
	if err := q.fillShiftInvertSpectrum(mu); err != nil {
		return err
	}
	sp := span.Begin(span.LayerMutation, KindShiftInvert)
	inv := q.siInv
	FWHT(v)
	scale := 1 / float64(q.n) // the two 2^(−ν/2) factors of V·…·V combined
	for i := range v {
		v[i] *= inv[bits.Weight(uint64(i))] * scale
	}
	FWHT(v)
	span.End(sp, int64(q.nu), 1)
	return nil
}

// ApplyShiftInvertDevice is ApplyShiftInvert with device-parallel
// transforms and diagonal scaling.
func (q *Process) ApplyShiftInvertDevice(d *device.Device, v []float64, mu float64) error {
	q.requireUniform("ApplyShiftInvertDevice")
	q.checkDim(len(v))
	if err := q.fillShiftInvertSpectrum(mu); err != nil {
		return err
	}
	sp := span.Begin(span.LayerMutation, KindShiftInvert)
	inv := q.siInv
	FWHTDevice(d, v)
	scale := 1 / float64(q.n)
	d.LaunchRange(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= inv[bits.Weight(uint64(i))] * scale
		}
	})
	FWHTDevice(d, v)
	span.End(sp, int64(q.nu), 1)
	return nil
}

func (q *Process) requireUniform(op string) {
	if !q.uniform {
		panic(fmt.Sprintf("mutation: %s requires the uniform-rate process", op))
	}
}
