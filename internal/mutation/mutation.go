// Package mutation implements every representation of the quasispecies
// mutation matrix Q studied in the paper, together with the fast implicit
// matrix–vector products built on them:
//
//   - the entrywise definition Q[i][j] = p^dH(i,j)·(1−p)^(ν−dH(i,j))
//     (Eq. 2) and its dense materialization (the Smvp baseline);
//   - the Kronecker product representation Q(ν) = ⊗ᵢ [[1−p, p],[p, 1−p]]
//     (Eq. 7) and the Θ(N·log₂N) fast mutation matrix product Fmmp derived
//     from it (Eqs. 9–10, Algorithms 1–2), including the device-parallel
//     form with the GPU index computation j = 2·ID − (ID & (i−1));
//   - generalized processes: independent per-site 2×2 column-stochastic
//     factors and grouped 2^gᵢ×2^gᵢ factors (Eq. 11, Section 2.2);
//   - the closed-form eigendecomposition Q = V·Λ·V with V the normalized
//     Hadamard matrix (Section 2), the fast Walsh–Hadamard transform, the
//     explicit inverse Q⁻¹ (Eq. 12) and the Θ(N·log₂N) shift-and-invert
//     product (Q − µI)⁻¹·v (Section 3);
//   - the sparse XOR-based product Xmvp(dmax) of the authors' earlier work
//     [Niederbrucker & Gansterer, Procedia CS 4 (2011) 126–135], which the
//     paper uses as its accuracy/performance baseline.
//
// Sequence bit convention: bit k of an index (LSB = bit 0) is sequence
// position k, and the per-position factor acting on bit k is applied by the
// butterfly stage with stride 2^k. With that convention the code realizes
// Q = M_{ν−1} ⊗ ··· ⊗ M₁ ⊗ M₀.
package mutation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
	"repro/internal/dense"
)

// ErrInvalidRate is returned for error rates outside the model's domain.
var ErrInvalidRate = errors.New("mutation: error rate p must satisfy 0 < p ≤ 1/2")

// ValidateRate checks 0 < p ≤ ½ (the paper's admissible range; p = ½ is the
// random-replication limit and is allowed).
func ValidateRate(p float64) error {
	if !(p > 0 && p <= 0.5) {
		return fmt.Errorf("%w (got %g)", ErrInvalidRate, p)
	}
	return nil
}

// Entry returns Q[i][j] = p^dH(i,j) · (1−p)^(ν−dH(i,j)) (Eq. 2).
func Entry(nu int, p float64, i, j uint64) float64 {
	d := bits.Hamming(i, j)
	return math.Pow(p, float64(d)) * math.Pow(1-p, float64(nu-d))
}

// ClassValues returns the ν+1 distinct entries of Q,
// QΓ_k = p^k·(1−p)^(ν−k) for 0 ≤ k ≤ ν.
func ClassValues(nu int, p float64) []float64 {
	q := make([]float64, nu+1)
	for k := 0; k <= nu; k++ {
		q[k] = math.Pow(p, float64(k)) * math.Pow(1-p, float64(nu-k))
	}
	return q
}

// Dense materializes Q(ν) for the uniform error rate p as a dense matrix.
// Requires Θ(4^ν) memory — only for small ν (tests and the Smvp baseline).
func Dense(nu int, p float64) *dense.Matrix {
	n := bits.SpaceSize(nu)
	qv := ClassValues(nu, p)
	m := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < n; j++ {
			row[j] = qv[bits.Hamming(uint64(i), uint64(j))]
		}
	}
	return m
}

// Factor2 is a 2×2 single-position mutation factor in row-major order:
// [[A, B], [C, D]] with columns summing to one for a valid process.
// The uniform process uses A = D = 1−p, B = C = p.
type Factor2 struct {
	A, B, C, D float64
}

// UniformFactor returns the symmetric single-point mutation factor
// [[1−p, p], [p, 1−p]] of Eq. 7.
func UniformFactor(p float64) Factor2 {
	return Factor2{A: 1 - p, B: p, C: p, D: 1 - p}
}

// IsColumnStochastic reports whether both columns sum to 1 within tol and
// all entries are non-negative.
func (f Factor2) IsColumnStochastic(tol float64) bool {
	if f.A < 0 || f.B < 0 || f.C < 0 || f.D < 0 {
		return false
	}
	return math.Abs(f.A+f.C-1) <= tol && math.Abs(f.B+f.D-1) <= tol
}

// Dense returns the factor as a 2×2 dense matrix.
func (f Factor2) Dense() *dense.Matrix {
	return dense.FromRows([][]float64{{f.A, f.B}, {f.C, f.D}})
}

// group describes one independent block of the mutation process: a
// 2^bitsLen × 2^bitsLen column-stochastic matrix acting on the contiguous
// bit range [offset, offset+bitsLen).
type group struct {
	offset  int
	bitsLen int
	// fast path for bitsLen == 1
	f2 Factor2
	// general path for bitsLen > 1 (nil when the fast path applies)
	mat *dense.Matrix
}

// Process is an implicit representation of a mutation matrix Q with
// Kronecker structure (Eq. 7 general case, Eq. 11 grouped case). It
// supports exact Θ(N·log₂N) matrix–vector products without storing Q.
//
// A Process is immutable after construction. Apply and its variants on
// single-bit (uniform and per-site) processes are safe to run concurrently
// on distinct vectors; processes with grouped factors, as well as
// ApplyShiftInvert*, reuse per-Process scratch (hoisted there to keep the
// hot paths allocation-free) and must not be applied concurrently with
// themselves — the same contract as core.Operator.
type Process struct {
	nu      int
	n       int
	uniform bool    // all factors equal UniformFactor(p)
	p       float64 // valid only when uniform
	groups  []group

	// segs is the execution plan of Apply: maximal runs of consecutive
	// single-bit factors fused into blocked butterfly passes, interleaved
	// with grouped factors in Kronecker order.
	segs []segment
	// grpIn/grpOut are the gather/scatter scratch of the grouped-factor
	// path, sized to the largest group (nil without grouped factors).
	grpIn, grpOut []float64
	// invFactors are the ν identical Kronecker factors of Q⁻¹ (Eq. 12),
	// precomputed so ApplyInverse is allocation-free (uniform only).
	invFactors []Factor2
	// siInv is the (Λ−µI)⁻¹ spectrum scratch of ApplyShiftInvert*,
	// refilled per call (uniform only).
	siInv []float64
}

// segment is one step of Apply's execution plan: either a fused run of
// consecutive single-bit butterfly stages (fs != nil, first stage on bit
// off0) or a single grouped factor (grp indexing Process.groups).
type segment struct {
	off0 int
	fs   []Factor2
	grp  int
}

// finalize derives the execution plan and scratch from q.groups; every
// constructor calls it exactly once.
func (q *Process) finalize() {
	maxGroupBits := 0
	for i := 0; i < len(q.groups); {
		g := q.groups[i]
		if g.bitsLen == 1 {
			var fs []Factor2
			for i < len(q.groups) && q.groups[i].bitsLen == 1 {
				fs = append(fs, q.groups[i].f2)
				i++
			}
			q.segs = append(q.segs, segment{off0: g.offset, fs: fs, grp: -1})
			continue
		}
		if g.bitsLen > maxGroupBits {
			maxGroupBits = g.bitsLen
		}
		q.segs = append(q.segs, segment{grp: i})
		i++
	}
	if maxGroupBits > 0 {
		q.grpIn = make([]float64, 1<<uint(maxGroupBits))
		q.grpOut = make([]float64, 1<<uint(maxGroupBits))
	}
	if q.uniform {
		q.invFactors = make([]Factor2, q.nu)
		for k := range q.invFactors {
			q.invFactors[k] = Factor2{A: 1 - q.p, B: -q.p, C: -q.p, D: 1 - q.p}
		}
		q.siInv = make([]float64, q.nu+1)
	}
}

// NewUniform returns the standard quasispecies mutation process with a
// single error rate p for every position (Eqs. 2 and 7).
func NewUniform(nu int, p float64) (*Process, error) {
	if err := ValidateRate(p); err != nil {
		return nil, err
	}
	if nu < 0 || nu > bits.MaxChainLen {
		return nil, fmt.Errorf("mutation: chain length %d out of range [0,%d]", nu, bits.MaxChainLen)
	}
	gs := make([]group, nu)
	for k := range gs {
		gs[k] = group{offset: k, bitsLen: 1, f2: UniformFactor(p)}
	}
	q := &Process{nu: nu, n: bits.SpaceSize(nu), uniform: true, p: p, groups: gs}
	q.finalize()
	return q, nil
}

// MustUniform is NewUniform that panics on error, for tests and examples
// with constant parameters.
func MustUniform(nu int, p float64) *Process {
	q, err := NewUniform(nu, p)
	if err != nil {
		panic(err)
	}
	return q
}

// NewPerSite returns a mutation process with an independent 2×2
// column-stochastic factor per sequence position (Section 2.2: "there is
// actually no need for the single point mutations to have the same
// properties"). factors[k] acts on position k; ν = len(factors).
func NewPerSite(factors []Factor2) (*Process, error) {
	nu := len(factors)
	if nu > bits.MaxChainLen {
		return nil, fmt.Errorf("mutation: chain length %d out of range", nu)
	}
	const tol = 1e-12
	gs := make([]group, nu)
	uniform := true
	for k, f := range factors {
		if !f.IsColumnStochastic(tol) {
			return nil, fmt.Errorf("mutation: factor %d is not column stochastic: %+v", k, f)
		}
		if f != factors[0] || f.A != f.D || f.B != f.C {
			uniform = false
		}
		gs[k] = group{offset: k, bitsLen: 1, f2: f}
	}
	p := 0.0
	if nu > 0 {
		p = factors[0].B
		if !(p > 0 && p <= 0.5) {
			uniform = false
		}
	}
	q := &Process{nu: nu, n: bits.SpaceSize(nu), uniform: uniform, p: p, groups: gs}
	q.finalize()
	return q, nil
}

// NewGrouped returns a mutation process composed of g independent groups of
// dependent positions (Eq. 11): Q = ⊗ᵢ Q_{Gᵢ} with Q_{Gᵢ} a column-
// stochastic 2^gᵢ × 2^gᵢ matrix. factors[0] acts on the lowest-order bits.
func NewGrouped(factors []*dense.Matrix) (*Process, error) {
	const tol = 1e-10
	gs := make([]group, 0, len(factors))
	offset := 0
	for idx, m := range factors {
		if m.Rows != m.Cols {
			return nil, fmt.Errorf("mutation: group %d is not square (%d×%d)", idx, m.Rows, m.Cols)
		}
		gbits := 0
		for 1<<gbits < m.Rows {
			gbits++
		}
		if 1<<gbits != m.Rows || m.Rows < 2 {
			return nil, fmt.Errorf("mutation: group %d size %d is not a power of two ≥ 2", idx, m.Rows)
		}
		for c, s := range m.ColumnSums() {
			if math.Abs(s-1) > tol {
				return nil, fmt.Errorf("mutation: group %d column %d sums to %g, not 1", idx, c, s)
			}
		}
		for _, v := range m.Data {
			if v < 0 {
				return nil, fmt.Errorf("mutation: group %d has a negative entry", idx)
			}
		}
		if gbits == 1 {
			gs = append(gs, group{offset: offset, bitsLen: 1,
				f2: Factor2{A: m.At(0, 0), B: m.At(0, 1), C: m.At(1, 0), D: m.At(1, 1)}})
		} else {
			gs = append(gs, group{offset: offset, bitsLen: gbits, mat: m.Clone()})
		}
		offset += gbits
	}
	if offset > bits.MaxChainLen {
		return nil, fmt.Errorf("mutation: total chain length %d out of range", offset)
	}
	q := &Process{nu: offset, n: bits.SpaceSize(offset), groups: gs}
	q.finalize()
	return q, nil
}

// ChainLen returns ν, the chain length.
func (q *Process) ChainLen() int { return q.nu }

// Dim returns N = 2^ν, the dimension of the sequence space.
func (q *Process) Dim() int { return q.n }

// Uniform reports whether the process is the standard uniform-rate model,
// and if so returns its error rate.
func (q *Process) Uniform() (p float64, ok bool) { return q.p, q.uniform }

// GroupSizes returns the gᵢ of the Kronecker structure (all 1 for the
// standard and per-site models).
func (q *Process) GroupSizes() []int {
	out := make([]int, len(q.groups))
	for i, g := range q.groups {
		out[i] = g.bitsLen
	}
	return out
}

// Dense materializes the full Q as a dense matrix via the Kronecker
// product of the factors. Exponential memory — small ν only.
func (q *Process) Dense() *dense.Matrix {
	out := dense.Identity(1)
	// Q = G_{last} ⊗ … ⊗ G_0 with G_0 on the low bits.
	for _, g := range q.groups {
		var f *dense.Matrix
		if g.bitsLen == 1 {
			f = g.f2.Dense()
		} else {
			f = g.mat
		}
		out = f.Kronecker(out)
	}
	return out
}
