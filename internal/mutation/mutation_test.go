package mutation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randVector(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func randStochasticFactor(r *rng.Source) Factor2 {
	c0 := r.Float64()
	c1 := r.Float64()
	return Factor2{A: 1 - c0, B: c1, C: c0, D: 1 - c1}
}

func randStochasticMatrix(r *rng.Source, n int) *dense.Matrix {
	m := dense.NewMatrix(n, n)
	for c := 0; c < n; c++ {
		var sum float64
		col := make([]float64, n)
		for i := range col {
			col[i] = r.Float64() + 1e-3
			sum += col[i]
		}
		for i := range col {
			m.Set(i, c, col[i]/sum)
		}
	}
	return m
}

func TestValidateRate(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.25, 0.5} {
		if err := ValidateRate(p); err != nil {
			t.Errorf("ValidateRate(%g) = %v", p, err)
		}
	}
	for _, p := range []float64{0, -0.1, 0.51, 1, math.NaN()} {
		if err := ValidateRate(p); err == nil {
			t.Errorf("ValidateRate(%g) must fail", p)
		}
	}
}

func TestEntryAndClassValues(t *testing.T) {
	const nu = 6
	const p = 0.03
	qv := ClassValues(nu, p)
	for i := uint64(0); i < 1<<nu; i++ {
		for j := uint64(0); j < 1<<nu; j++ {
			if got, want := Entry(nu, p, i, j), qv[bits.Hamming(i, j)]; math.Abs(got-want) > 1e-16 {
				t.Fatalf("Entry(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	// QΓ₀ = (1−p)^ν, QΓ_ν = p^ν.
	if math.Abs(qv[0]-math.Pow(1-p, nu)) > 1e-16 || math.Abs(qv[nu]-math.Pow(p, nu)) > 1e-16 {
		t.Error("class value endpoints wrong")
	}
}

func TestDenseQIsSymmetricStochastic(t *testing.T) {
	q := Dense(8, 0.05)
	if !q.IsSymmetric(0) {
		t.Error("uniform Q must be exactly symmetric")
	}
	for c, s := range q.ColumnSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("column %d sums to %.17g", c, s)
		}
	}
}

func TestDenseMatchesKroneckerDense(t *testing.T) {
	// Entrywise definition (Eq. 2) == Kronecker definition (Eq. 7).
	for _, nu := range []int{1, 2, 5, 8} {
		p := 0.07
		a := Dense(nu, p)
		b := MustUniform(nu, p).Dense()
		if vec.DistInf(a.Data, b.Data) > 1e-14 {
			t.Errorf("ν=%d: entrywise and Kronecker Q differ by %g", nu, vec.DistInf(a.Data, b.Data))
		}
	}
}

func TestFmmpMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(10))
		p := 0.001 + 0.499*r.Float64()
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())
		want := make([]float64, q.Dim())
		Dense(nu, p).MatVec(want, v)
		got := vec.Clone(v)
		q.Apply(got)
		return vec.DistInf(got, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFmmpVariantsAgree(t *testing.T) {
	r := rng.New(42)
	for _, nu := range []int{1, 3, 7, 11} {
		q := MustUniform(nu, 0.01)
		v := randVector(r, q.Dim())

		asc := vec.Clone(v)
		q.Apply(asc)

		desc := vec.Clone(v)
		q.ApplyDescending(desc)
		// The stage matrices commute exactly; only rounding order differs.
		if vec.DistInf(asc, desc) > 1e-13 {
			t.Errorf("ν=%d: Eq.9 and Eq.10 stage orders differ (max %g)", nu, vec.DistInf(asc, desc))
		}

		rec := vec.Clone(v)
		q.ApplyRecursive(rec)
		if vec.DistInf(asc, rec) > 1e-14 {
			t.Errorf("ν=%d: recursive and iterative Fmmp differ by %g", nu, vec.DistInf(asc, rec))
		}

		for _, workers := range []int{1, 2, 8} {
			dev := device.New(workers, device.WithGrain(4))
			par := vec.Clone(v)
			q.ApplyDevice(dev, par)
			if vec.DistInf(asc, par) != 0 {
				t.Errorf("ν=%d workers=%d: Algorithm 2 differs from Algorithm 1", nu, workers)
			}
		}
	}
}

func TestFmmpPreservesTotalMass(t *testing.T) {
	// Q is column stochastic ⇒ Σ(Q·v) = Σv.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(12))
		q := MustUniform(nu, 0.001+0.499*r.Float64())
		v := randVector(r, q.Dim())
		sum := vec.SumKahan(v)
		q.Apply(v)
		return math.Abs(vec.SumKahan(v)-sum) < 1e-10*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPerSiteMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(8))
		factors := make([]Factor2, nu)
		for i := range factors {
			factors[i] = randStochasticFactor(r)
		}
		q, err := NewPerSite(factors)
		if err != nil {
			return false
		}
		v := randVector(r, q.Dim())
		want := make([]float64, q.Dim())
		q.Dense().MatVec(want, v)
		got := vec.Clone(v)
		q.Apply(got)
		return vec.DistInf(got, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPerSiteUniformDetection(t *testing.T) {
	q, err := NewPerSite([]Factor2{UniformFactor(0.1), UniformFactor(0.1)})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := q.Uniform(); !ok || p != 0.1 {
		t.Errorf("Uniform() = (%g,%v), want (0.1,true)", p, ok)
	}
	q2, err := NewPerSite([]Factor2{UniformFactor(0.1), UniformFactor(0.2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q2.Uniform(); ok {
		t.Error("heterogeneous factors must not report uniform")
	}
}

func TestPerSiteRejectsNonStochastic(t *testing.T) {
	if _, err := NewPerSite([]Factor2{{A: 0.5, B: 0.5, C: 0.6, D: 0.5}}); err == nil {
		t.Error("non-stochastic factor must be rejected")
	}
	if _, err := NewPerSite([]Factor2{{A: -0.1, B: 0.5, C: 1.1, D: 0.5}}); err == nil {
		t.Error("negative entries must be rejected")
	}
}

func TestGroupedMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		// Random partition of ν ≤ 8 into groups of size 1–3 bits.
		var mats []*dense.Matrix
		total := 0
		for total < 6 {
			g := 1 + int(r.Uint64n(3))
			if total+g > 8 {
				g = 1
			}
			mats = append(mats, randStochasticMatrix(r, 1<<g))
			total += g
		}
		q, err := NewGrouped(mats)
		if err != nil {
			return false
		}
		v := randVector(r, q.Dim())
		want := make([]float64, q.Dim())
		q.Dense().MatVec(want, v)
		got := vec.Clone(v)
		q.Apply(got)
		if vec.DistInf(got, want) > 1e-11 {
			return false
		}
		// Device path agrees too.
		dev := device.New(4, device.WithGrain(2))
		par := vec.Clone(v)
		q.ApplyDevice(dev, par)
		return vec.DistInf(par, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGroupedValidation(t *testing.T) {
	bad := dense.FromRows([][]float64{{0.5, 0.5}, {0.6, 0.5}})
	if _, err := NewGrouped([]*dense.Matrix{bad}); err == nil {
		t.Error("non-stochastic group must be rejected")
	}
	notSquare := dense.NewMatrix(2, 4)
	if _, err := NewGrouped([]*dense.Matrix{notSquare}); err == nil {
		t.Error("non-square group must be rejected")
	}
	odd := randStochasticMatrix(rng.New(1), 3)
	if _, err := NewGrouped([]*dense.Matrix{odd}); err == nil {
		t.Error("non-power-of-two group must be rejected")
	}
}

func TestGroupedStochasticClosure(t *testing.T) {
	// "The Kronecker product of two column stochastic matrices is again
	// column stochastic" — Section 2.2.
	r := rng.New(5)
	a := randStochasticMatrix(r, 4)
	b := randStochasticMatrix(r, 2)
	k := a.Kronecker(b)
	for c, s := range k.ColumnSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("column %d of A⊗B sums to %g", c, s)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	r := rng.New(6)
	q, err := NewGrouped([]*dense.Matrix{
		randStochasticMatrix(r, 4), randStochasticMatrix(r, 2), randStochasticMatrix(r, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 1, 3}
	got := q.GroupSizes()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GroupSizes = %v, want %v", got, want)
		}
	}
	if q.ChainLen() != 6 || q.Dim() != 64 {
		t.Errorf("ν = %d, N = %d", q.ChainLen(), q.Dim())
	}
}

func TestApplyDimensionPanics(t *testing.T) {
	q := MustUniform(4, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("Apply with wrong length must panic")
		}
	}()
	q.Apply(make([]float64, 8))
}

func TestNewUniformValidation(t *testing.T) {
	if _, err := NewUniform(5, 0); err == nil {
		t.Error("p = 0 must be rejected")
	}
	if _, err := NewUniform(-1, 0.1); err == nil {
		t.Error("negative ν must be rejected")
	}
	if _, err := NewUniform(63, 0.1); err == nil {
		t.Error("ν > 62 must be rejected")
	}
}
