package mutation

import (
	"sync/atomic"
	"time"
)

// Observability hook for the butterfly kernels. The hook is nil by
// default; the disabled cost in every Apply variant is a single atomic
// pointer load (no timing calls, no allocations — guarded by the
// alloc/bit-identity tests). internal/obs installs an observer that feeds
// the qs_kernel_* metric families.

// Kernel pass kinds reported to the KernelObserver. The span profiler
// reuses them as the names of the mutation-layer spans.
const (
	KindApply            = "apply"              // Process.Apply (serial blocked)
	KindApplyDevice      = "apply_device"       // Process.ApplyDevice
	KindApplyBatch       = "apply_batch"        // Process.ApplyBatch
	KindApplyBatchDevice = "apply_batch_device" // Process.ApplyBatchDevice
	KindStageGroup       = "stage_group"        // one fused stage-group pass within an Apply
	KindApplyInverse     = "apply_inverse"      // Process.ApplyInverse
	KindShiftInvert      = "shift_invert"       // Process.ApplyShiftInvert[Device]
)

// KernelObserver receives one callback per completed kernel span. For the
// apply kinds, stages is the total butterfly stage count ν and vectors the
// batch width; for KindStageGroup, stages is the stage count of that fused
// pass. Callbacks may arrive concurrently from device workers and batch
// slots; implementations must be safe for concurrent use and fast — they
// sit directly on the solver hot path when enabled.
type KernelObserver interface {
	KernelApply(kind string, stages, vectors int, d time.Duration)
}

type kernelHook struct{ o KernelObserver }

var kernelObs atomic.Pointer[kernelHook]

// SetKernelObserver installs o as the process-wide kernel observer
// (nil uninstalls). Not intended to be toggled concurrently with running
// kernels: like SetTileBits, call it at startup.
func SetKernelObserver(o KernelObserver) {
	if o == nil {
		kernelObs.Store(nil)
		return
	}
	kernelObs.Store(&kernelHook{o: o})
}

// span reports a completed span that began at start. Used via
// `defer h.span(kind, stages, vectors, time.Now())`, which stays
// allocation-free (open-coded defer with value arguments).
func (h *kernelHook) span(kind string, stages, vectors int, start time.Time) {
	h.o.KernelApply(kind, stages, vectors, time.Since(start))
}
