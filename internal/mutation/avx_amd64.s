//go:build amd64

#include "textflag.h"

// AVX2 butterfly kernels (see DESIGN.md §5.6). Each routine applies the
// SAME per-element operation sequence as its scalar twin (bfly4s / bfly4u /
// bfly4h in blocked.go / fwht.go), just four butterflies per instruction:
// only VADDPD/VSUBPD/VMULPD are used — which round per lane exactly like
// the scalar ADDSD/SUBSD/MULSD — and no FMA is ever emitted (the Go spec
// does not license contraction and neither do we), so every result is
// BIT-IDENTICAL to the pure-Go path. The exact-equality kernel tests run
// against these bodies on AVX2 hosts and against the Go bodies elsewhere.
//
// Lane layout shared by all bodies: Y0..Y3 hold e0..e3 of four independent
// butterflies (one column each), Y6/Y7 the broadcast stage factors, Y4/Y5
// are temporaries.

// Two fused stochastic stages (a+b = 1 reduced form), the sequence of
// bfly4s:  d = b1·(e1−e0); e0 += d; e1 −= d;  d = b1·(e3−e2); e2 += d;
// e3 −= d;  d = b2·(e2−e0); e0 += d; e2 −= d;  d = b2·(e3−e1); e1 += d;
// e3 −= d.  (VMULPD operand order differs from the scalar b·(x−y) only by
// mul commutativity, which is exact in IEEE-754.)
#define BFLYS \
	VSUBPD Y0, Y1, Y4; \
	VMULPD Y6, Y4, Y4; \
	VADDPD Y4, Y0, Y0; \
	VSUBPD Y4, Y1, Y1; \
	VSUBPD Y2, Y3, Y5; \
	VMULPD Y6, Y5, Y5; \
	VADDPD Y5, Y2, Y2; \
	VSUBPD Y5, Y3, Y3; \
	VSUBPD Y0, Y2, Y4; \
	VMULPD Y7, Y4, Y4; \
	VADDPD Y4, Y0, Y0; \
	VSUBPD Y4, Y2, Y2; \
	VSUBPD Y1, Y3, Y5; \
	VMULPD Y7, Y5, Y5; \
	VADDPD Y5, Y1, Y1; \
	VSUBPD Y5, Y3, Y3

// Two fused unit-difference stages (a−b = 1 reduced form), the sequence of
// bfly4u:  u = b1·(e0+e1); e0 += u; e1 += u;  u = b1·(e2+e3); e2 += u;
// e3 += u;  u = b2·(e0+e2); e0 += u; e2 += u;  u = b2·(e1+e3); e1 += u;
// e3 += u.
#define BFLYU \
	VADDPD Y1, Y0, Y4; \
	VMULPD Y6, Y4, Y4; \
	VADDPD Y4, Y0, Y0; \
	VADDPD Y4, Y1, Y1; \
	VADDPD Y3, Y2, Y5; \
	VMULPD Y6, Y5, Y5; \
	VADDPD Y5, Y2, Y2; \
	VADDPD Y5, Y3, Y3; \
	VADDPD Y2, Y0, Y4; \
	VMULPD Y7, Y4, Y4; \
	VADDPD Y4, Y0, Y0; \
	VADDPD Y4, Y2, Y2; \
	VADDPD Y3, Y1, Y5; \
	VMULPD Y7, Y5, Y5; \
	VADDPD Y5, Y1, Y1; \
	VADDPD Y5, Y3, Y3

// Two fused Hadamard stages, the sequence of bfly4h:
// e0,e1 = e0+e1, e0−e1;  e2,e3 = e2+e3, e2−e3;
// e0,e2 = e0+e2, e0−e2;  e1,e3 = e1+e3, e1−e3.
// Registers rename through the flow: afterwards e0=Y2, e1=Y0, e2=Y3, e3=Y1.
#define BFLYH \
	VADDPD Y1, Y0, Y4; \
	VSUBPD Y1, Y0, Y5; \
	VADDPD Y3, Y2, Y0; \
	VSUBPD Y3, Y2, Y1; \
	VADDPD Y0, Y4, Y2; \
	VSUBPD Y0, Y4, Y3; \
	VADDPD Y1, Y5, Y0; \
	VSUBPD Y1, Y5, Y1

// func avxQuadS(r0, r1, r2, r3 *float64, n int, b1, b2 float64)
// Columns i of the four rows form one butterfly; n > 0, a multiple of 4.
TEXT ·avxQuadS(SB), NOSPLIT, $0-56
	MOVQ r0+0(FP), R8
	MOVQ r1+8(FP), R9
	MOVQ r2+16(FP), R10
	MOVQ r3+24(FP), R11
	MOVQ n+32(FP), CX
	VBROADCASTSD b1+40(FP), Y6
	VBROADCASTSD b2+48(FP), Y7
	SHLQ $3, CX
qsLoop:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYS
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, (R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  qsLoop
	VZEROUPPER
	RET

// func avxQuadU(r0, r1, r2, r3 *float64, n int, b1, b2 float64)
TEXT ·avxQuadU(SB), NOSPLIT, $0-56
	MOVQ r0+0(FP), R8
	MOVQ r1+8(FP), R9
	MOVQ r2+16(FP), R10
	MOVQ r3+24(FP), R11
	MOVQ n+32(FP), CX
	VBROADCASTSD b1+40(FP), Y6
	VBROADCASTSD b2+48(FP), Y7
	SHLQ $3, CX
quLoop:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYU
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, (R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  quLoop
	VZEROUPPER
	RET

// func avxQuadH(r0, r1, r2, r3 *float64, n int)
TEXT ·avxQuadH(SB), NOSPLIT, $0-40
	MOVQ r0+0(FP), R8
	MOVQ r1+8(FP), R9
	MOVQ r2+16(FP), R10
	MOVQ r3+24(FP), R11
	MOVQ n+32(FP), CX
	SHLQ $3, CX
qhLoop:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYH
	VMOVUPD Y2, (R8)
	VMOVUPD Y0, (R9)
	VMOVUPD Y3, (R10)
	VMOVUPD Y1, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  qhLoop
	VZEROUPPER
	RET

// func avxTilePairS(p *float64, n, stride int, b1, b2 float64)
// Whole-tile fused stochastic stage pair: for each aligned 4·stride block
// the four lanes are the contiguous stride-length segments, swept 4 columns
// per iteration. stride ≥ 4 a multiple of 4; n a multiple of 4·stride.
// Keeping both loops in assembly makes the small strides (stride = 4 ⇒ one
// vector iteration per block) free of per-block call overhead.
TEXT ·avxTilePairS(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), SI
	MOVQ stride+16(FP), DX
	VBROADCASTSD b1+24(FP), Y6
	VBROADCASTSD b2+32(FP), Y7
	SHLQ $3, DX
	SHLQ $3, SI
	ADDQ DI, SI
tpsBlock:
	CMPQ DI, SI
	JGE  tpsDone
	MOVQ DI, R8
	LEAQ (DI)(DX*1), R9
	LEAQ (DI)(DX*2), R10
	LEAQ (R9)(DX*2), R11
	MOVQ DX, CX
tpsCol:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYS
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, (R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  tpsCol
	LEAQ (DI)(DX*4), DI
	JMP  tpsBlock
tpsDone:
	VZEROUPPER
	RET

// func avxTilePairU(p *float64, n, stride int, b1, b2 float64)
TEXT ·avxTilePairU(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), SI
	MOVQ stride+16(FP), DX
	VBROADCASTSD b1+24(FP), Y6
	VBROADCASTSD b2+32(FP), Y7
	SHLQ $3, DX
	SHLQ $3, SI
	ADDQ DI, SI
tpuBlock:
	CMPQ DI, SI
	JGE  tpuDone
	MOVQ DI, R8
	LEAQ (DI)(DX*1), R9
	LEAQ (DI)(DX*2), R10
	LEAQ (R9)(DX*2), R11
	MOVQ DX, CX
tpuCol:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYU
	VMOVUPD Y0, (R8)
	VMOVUPD Y1, (R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  tpuCol
	LEAQ (DI)(DX*4), DI
	JMP  tpuBlock
tpuDone:
	VZEROUPPER
	RET

// func avxTileHad(p *float64, n, stride int)
// Whole-tile fused Hadamard stage pair, same block/column structure as
// avxTilePairS.
TEXT ·avxTileHad(SB), NOSPLIT, $0-24
	MOVQ p+0(FP), DI
	MOVQ n+8(FP), SI
	MOVQ stride+16(FP), DX
	SHLQ $3, DX
	SHLQ $3, SI
	ADDQ DI, SI
thBlock:
	CMPQ DI, SI
	JGE  thDone
	MOVQ DI, R8
	LEAQ (DI)(DX*1), R9
	LEAQ (DI)(DX*2), R10
	LEAQ (R9)(DX*2), R11
	MOVQ DX, CX
thCol:
	VMOVUPD (R8), Y0
	VMOVUPD (R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD (R11), Y3
	BFLYH
	VMOVUPD Y2, (R8)
	VMOVUPD Y0, (R9)
	VMOVUPD Y3, (R10)
	VMOVUPD Y1, (R11)
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	SUBQ $32, CX
	JNZ  thCol
	LEAQ (DI)(DX*4), DI
	JMP  thBlock
thDone:
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
