package mutation

import (
	"testing"
	"testing/quick"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/vec"
)

// The blocked kernels reorder memory traversal but not the per-element
// dataflow, and strength-reduce the symmetric butterfly to a single
// multiply (see blocked.go). The reduced forms are exact in real arithmetic
// and differ from the literal a·t1 + b·t2 reference by at most ~1 ULP of
// ‖v‖∞ per stage, so blocked vs naive is compared under naiveTol below.
// Within the blocked family the dataflow is worker-independent, so serial
// vs device results are asserted BIT-IDENTICAL (exact equality).

// naiveTol bounds the rounding divergence between the strength-reduced and
// the literal butterfly over nStages stages: each stage perturbs an element
// by at most a couple of ULPs of the running magnitude, which the
// row-stochastic factors never grow beyond ‖v‖∞.
func naiveTol(nStages int, v []float64) float64 {
	return 4e-16 * float64(nStages+1) * (1 + vec.NormInf(v))
}

// withTileBits runs f under a temporary global tile size.
func withTileBits(t *testing.T, bits int, f func()) {
	t.Helper()
	old := TileBits()
	SetTileBits(bits)
	defer SetTileBits(old)
	f()
}

// tileSizes spans the interesting regimes for a vector of 2^nu elements:
// the degenerate B = 2 tile, tiles smaller than, equal to and larger than
// the vector, and the default.
func tileSizes(nu int) []int {
	sizes := []int{1, 2, 3}
	if nu > 1 {
		sizes = append(sizes, nu-1, nu)
	}
	sizes = append(sizes, nu+2, defaultTileBits)
	return sizes
}

func TestBlockedApplyMatchesNaiveUniform(t *testing.T) {
	r := rng.New(7)
	for nu := 1; nu <= 12; nu++ {
		p := 0.001 + 0.499*r.Float64()
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())
		for _, tb := range tileSizes(nu) {
			withTileBits(t, tb, func() {
				got := vec.Clone(v)
				q.Apply(got)
				want := vec.Clone(v)
				q.ApplyNaive(want)
				if d := vec.DistInf(got, want); d > naiveTol(nu, v) {
					t.Errorf("ν=%d p=%g tileBits=%d: blocked Apply deviates from naive by %g (tol %g)",
						nu, p, tb, d, naiveTol(nu, v))
				}
			})
		}
	}
}

func TestBlockedApplyMatchesNaivePerSite(t *testing.T) {
	r := rng.New(8)
	for nu := 1; nu <= 12; nu++ {
		factors := make([]Factor2, nu)
		for k := range factors {
			factors[k] = randStochasticFactor(r)
		}
		q, err := NewPerSite(factors)
		if err != nil {
			t.Fatal(err)
		}
		v := randVector(r, q.Dim())
		for _, tb := range tileSizes(nu) {
			withTileBits(t, tb, func() {
				got := vec.Clone(v)
				q.Apply(got)
				want := vec.Clone(v)
				q.ApplyNaive(want)
				if d := vec.DistInf(got, want); d > naiveTol(nu, v) {
					t.Errorf("ν=%d tileBits=%d: per-site blocked Apply deviates from naive by %g", nu, tb, d)
				}
			})
		}
	}
}

func TestBlockedApplyMatchesNaiveGrouped(t *testing.T) {
	r := rng.New(9)
	// Grouped factors interleave fused single-bit runs with dense groups;
	// the layouts (group sizes in bits) cover runs before, between and
	// after groups.
	layouts := [][]int{
		{2, 1, 1},       // group on the low bits, run above
		{1, 1, 3, 1},    // run – group – run
		{1, 3, 2},       // mixed group sizes
		{1, 1, 1, 1, 1}, // pure single-bit run expressed via NewGrouped
		{2, 2},          // groups only, no fused run
	}
	for _, layout := range layouts {
		factors := make([]*dense.Matrix, len(layout))
		nu := 0
		for i, gbits := range layout {
			factors[i] = randStochasticMatrix(r, 1<<uint(gbits))
			nu += gbits
		}
		q, err := NewGrouped(factors)
		if err != nil {
			t.Fatal(err)
		}
		v := randVector(r, q.Dim())
		for _, tb := range tileSizes(nu) {
			withTileBits(t, tb, func() {
				got := vec.Clone(v)
				q.Apply(got)
				want := vec.Clone(v)
				q.ApplyNaive(want)
				if d := vec.DistInf(got, want); d > naiveTol(nu, v) {
					t.Errorf("layout %v tileBits=%d: grouped blocked Apply deviates from naive by %g", layout, tb, d)
				}
			})
		}
	}
}

func TestBlockedApplyProperty(t *testing.T) {
	// Random ν, p, tile size and fuse depth: the serial blocked engine must
	// reproduce the naive stage loop exactly.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(12))
		p := 0.001 + 0.499*r.Float64()
		tb := 1 + int(r.Uint64n(uint64(nu)+3))
		fuse := 1 + int(r.Uint64n(maxFuseStages))
		q := MustUniform(nu, p)
		got := randVector(r, q.Dim())
		want := vec.Clone(got)
		tol := naiveTol(nu, got)
		applyStagesBlocked(got, 0, q.segs[0].fs, tb, fuse)
		q.ApplyNaive(want)
		return vec.DistInf(got, want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBlockedFWHTMatchesNaive(t *testing.T) {
	r := rng.New(10)
	for nu := 0; nu <= 13; nu++ {
		v := randVector(r, 1<<uint(nu))
		for _, tb := range tileSizes(nu) {
			for fuse := 1; fuse <= maxFuseStages; fuse++ {
				got := vec.Clone(v)
				fwhtBlocked(got, tb, fuse)
				want := vec.Clone(v)
				FWHTNaive(want)
				if vec.DistInf(got, want) != 0 {
					t.Errorf("ν=%d tileBits=%d fuse=%d: blocked FWHT differs from naive", nu, tb, fuse)
				}
			}
		}
	}
}

func TestBlockedApplyInverseRoundTrip(t *testing.T) {
	r := rng.New(11)
	for _, nu := range []int{1, 4, 9, 12} {
		p := 0.001 + 0.4*r.Float64()
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())
		for _, tb := range tileSizes(nu) {
			withTileBits(t, tb, func() {
				w := vec.Clone(v)
				q.Apply(w)
				q.ApplyInverse(w)
				if d := vec.DistInf(w, v); d > 1e-8 {
					t.Errorf("ν=%d p=%g tileBits=%d: Q⁻¹·Q·v deviates by %g", nu, p, tb, d)
				}
			})
		}
	}
}

// TestBlockedDeviceBitIdenticalAcrossWorkers asserts the determinism
// contract of the parallel kernels: because butterflies are element-
// independent and reductions combine in fixed chunk order, every worker
// count (and the spawn dispatch) must produce bit-identical vectors.
func TestBlockedDeviceBitIdenticalAcrossWorkers(t *testing.T) {
	r := rng.New(12)
	devs := []*device.Device{
		device.Serial(),
		device.New(2, device.WithGrain(1)),
		device.New(3, device.WithGrain(2)),
		device.New(8, device.WithGrain(1)),
		device.New(4, device.WithGrain(1), device.WithSpawnDispatch()),
	}
	for _, nu := range []int{1, 5, 10, 12} {
		p := 0.001 + 0.499*r.Float64()
		q := MustUniform(nu, p)
		v := randVector(r, q.Dim())
		wantNaive := vec.Clone(v)
		q.ApplyNaive(wantNaive)
		for _, tb := range []int{2, defaultTileBits} {
			withTileBits(t, tb, func() {
				want := vec.Clone(v)
				q.Apply(want) // serial blocked reference at this tile size
				for _, d := range devs {
					got := vec.Clone(v)
					q.ApplyDevice(d, got)
					if vec.DistInf(got, want) != 0 {
						t.Errorf("ν=%d tileBits=%d %v: ApplyDevice not bit-identical to serial", nu, tb, d)
					}
					got = vec.Clone(v)
					q.ApplyDeviceNaive(d, got)
					if vec.DistInf(got, wantNaive) != 0 {
						t.Errorf("ν=%d tileBits=%d %v: ApplyDeviceNaive not bit-identical to serial naive", nu, tb, d)
					}
				}
			})
		}
		wantH := vec.Clone(v)
		FWHT(wantH)
		for _, d := range devs {
			got := vec.Clone(v)
			FWHTDevice(d, got)
			if vec.DistInf(got, wantH) != 0 {
				t.Errorf("ν=%d %v: FWHTDevice not bit-identical to serial", nu, d)
			}
		}
	}
}

func TestBlockedDeviceGroupedMatchesSerial(t *testing.T) {
	r := rng.New(13)
	factors := []*dense.Matrix{
		randStochasticMatrix(r, 2),
		randStochasticMatrix(r, 4),
		randStochasticMatrix(r, 2),
		randStochasticMatrix(r, 8), // ν = 1+2+1+3 = 7
	}
	q, err := NewGrouped(factors)
	if err != nil {
		t.Fatal(err)
	}
	v := randVector(r, q.Dim())
	want := vec.Clone(v)
	q.Apply(want)
	for _, workers := range []int{1, 2, 7} {
		d := device.New(workers, device.WithGrain(1))
		got := vec.Clone(v)
		q.ApplyDevice(d, got)
		if vec.DistInf(got, want) != 0 {
			t.Errorf("workers=%d: grouped ApplyDevice not bit-identical to serial", workers)
		}
	}
}

func TestSetTileBitsClamps(t *testing.T) {
	old := TileBits()
	defer SetTileBits(old)
	SetTileBits(-5)
	if TileBits() != 1 {
		t.Errorf("SetTileBits(-5) → %d, want clamp to 1", TileBits())
	}
	SetTileBits(99)
	if TileBits() != 30 {
		t.Errorf("SetTileBits(99) → %d, want clamp to 30", TileBits())
	}
}
