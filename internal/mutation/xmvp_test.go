package mutation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/device"
	"repro/internal/rng"
	"repro/internal/vec"
)

func TestXmvpFullMatchesDense(t *testing.T) {
	// Xmvp(ν) "is basically identical to Smvp" — here exactly, since both
	// sum the same terms.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(9))
		p := 0.001 + 0.499*r.Float64()
		x := MustXmvp(nu, p, nu)
		v := randVector(r, x.Dim())
		want := make([]float64, x.Dim())
		Dense(nu, p).MatVec(want, v)
		got := make([]float64, x.Dim())
		x.Apply(got, v)
		return vec.DistInf(got, want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestXmvpFullMatchesFmmp(t *testing.T) {
	r := rng.New(3)
	for _, nu := range []int{4, 8, 12} {
		const p = 0.01
		q := MustUniform(nu, p)
		x := MustXmvp(nu, p, nu)
		v := randVector(r, q.Dim())
		fm := vec.Clone(v)
		q.Apply(fm)
		xm := make([]float64, q.Dim())
		x.Apply(xm, v)
		if d := vec.DistInf(fm, xm); d > 1e-12 {
			t.Errorf("ν=%d: Fmmp vs Xmvp(ν) differ by %g", nu, d)
		}
	}
}

func TestXmvpTruncationErrorDecreasesWithDmax(t *testing.T) {
	// The approximation error must fall monotonically (in norm) as dmax
	// grows, reaching ~1e-10 around dmax = 5 for small p (paper, Sec. 4).
	const nu = 12
	const p = 0.01
	r := rng.New(4)
	q := MustUniform(nu, p)
	v := make([]float64, q.Dim())
	for i := range v {
		v[i] = r.Float64()
	}
	vec.Normalize1(v)
	exact := vec.Clone(v)
	q.Apply(exact)

	prevErr := math.Inf(1)
	for dmax := 0; dmax <= nu; dmax++ {
		x := MustXmvp(nu, p, dmax)
		approx := make([]float64, q.Dim())
		x.Apply(approx, v)
		errNorm := vec.Dist2(approx, exact)
		if errNorm > prevErr*(1+1e-12) {
			t.Errorf("dmax=%d: error %g did not decrease from %g", dmax, errNorm, prevErr)
		}
		prevErr = errNorm
		if dmax == 5 && errNorm > 1e-8 {
			t.Errorf("Xmvp(5) error %g, expected ≲1e-8 for p=0.01 (paper: ≈1e-10)", errNorm)
		}
		if dmax == nu && errNorm > 1e-13 {
			t.Errorf("Xmvp(ν) must be exact, error %g", errNorm)
		}
	}
}

func TestXmvpMaskCount(t *testing.T) {
	for _, c := range []struct{ nu, dmax int }{{10, 1}, {10, 3}, {25, 5}, {8, 8}} {
		x := MustXmvp(c.nu, 0.01, c.dmax)
		if got, want := uint64(x.MaskCount()), bits.NeighborhoodSize(c.nu, c.dmax); got != want {
			t.Errorf("ν=%d dmax=%d: %d masks, want %d", c.nu, c.dmax, got, want)
		}
	}
}

func TestXmvpDmaxClamped(t *testing.T) {
	x := MustXmvp(6, 0.01, 100)
	if x.DMax() != 6 {
		t.Errorf("DMax = %d, want clamped 6", x.DMax())
	}
}

func TestXmvpDeviceMatchesSerial(t *testing.T) {
	r := rng.New(5)
	x := MustXmvp(10, 0.02, 3)
	v := randVector(r, x.Dim())
	serial := make([]float64, x.Dim())
	x.Apply(serial, v)
	for _, workers := range []int{1, 4} {
		par := make([]float64, x.Dim())
		x.ApplyDevice(device.New(workers, device.WithGrain(8)), par, v)
		if vec.DistInf(serial, par) != 0 {
			t.Errorf("workers=%d: device Xmvp differs", workers)
		}
	}
}

func TestXmvpValidation(t *testing.T) {
	if _, err := NewXmvp(5, 0, 2); err == nil {
		t.Error("invalid p must be rejected")
	}
	if _, err := NewXmvp(-1, 0.1, 2); err == nil {
		t.Error("negative ν must be rejected")
	}
	if _, err := NewXmvp(5, 0.1, -1); err == nil {
		t.Error("negative dmax must be rejected")
	}
	if _, err := NewXmvp(40, 0.1, 20); err == nil {
		t.Error("oversized mask table must be rejected")
	}
}

func TestXmvpAliasPanics(t *testing.T) {
	x := MustXmvp(4, 0.1, 2)
	v := make([]float64, 16)
	defer func() {
		if recover() == nil {
			t.Error("aliased Apply must panic")
		}
	}()
	x.Apply(v, v)
}
