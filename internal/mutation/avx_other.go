//go:build !amd64

package mutation

// Non-amd64 builds always take the pure-Go kernel paths; the stubs below
// exist only to satisfy the dispatch call sites, which are all guarded by
// useAVX2.

var (
	avx2Detected = false
	useAVX2      = false
)

func avxQuadS(r0, r1, r2, r3 *float64, n int, b1, b2 float64) {
	panic("mutation: avxQuadS called without AVX2")
}

func avxQuadU(r0, r1, r2, r3 *float64, n int, b1, b2 float64) {
	panic("mutation: avxQuadU called without AVX2")
}

func avxQuadH(r0, r1, r2, r3 *float64, n int) {
	panic("mutation: avxQuadH called without AVX2")
}

func avxTilePairS(p *float64, n, stride int, b1, b2 float64) {
	panic("mutation: avxTilePairS called without AVX2")
}

func avxTilePairU(p *float64, n, stride int, b1, b2 float64) {
	panic("mutation: avxTilePairU called without AVX2")
}

func avxTileHad(p *float64, n, stride int) {
	panic("mutation: avxTileHad called without AVX2")
}
