package device

import "sync/atomic"

// Process-wide resource accounting for the telemetry sampler: arena
// occupancy per NUMA node and work-stealing pool pressure. Everything here
// is a handful of atomics updated where the runtime already pays an atomic
// (slab growth, batch barriers), so the counters are always on — there is
// no hook to install and reading them never perturbs a run. The sampler
// (internal/obs) polls these at ~1 Hz; nothing in this file is on a
// per-element kernel path.

// maxStatNodes bounds the per-node accounting array; nodes beyond it fold
// into the last bucket (larger hosts exist, but 16 covers every machine
// this solver has met, and the sampler only needs stable attribution).
const maxStatNodes = 16

// arenaStatIdx maps a NUMA node id onto its accounting bucket (bucket 0 is
// for unattributed arenas).
func arenaStatIdx(node int) int {
	if node < 0 {
		return 0
	}
	if node >= maxStatNodes {
		node = maxStatNodes - 1
	}
	return node + 1
}

// arenaAcct holds one bucket per node (plus the unattributed bucket 0):
// total slab capacity, live bump occupancy, and the occupancy high-water.
var arenaAcct [maxStatNodes + 1]struct {
	foot atomic.Int64
	used atomic.Int64
	hi   atomic.Int64
}

func arenaNoteGrow(idx int, floats int64) {
	arenaAcct[idx].foot.Add(floats)
}

func arenaNoteUsed(idx int, delta int64) {
	a := &arenaAcct[idx]
	used := a.used.Add(delta)
	for {
		hi := a.hi.Load()
		if used <= hi || a.hi.CompareAndSwap(hi, used) {
			return
		}
	}
}

// ArenaStats is the live arena accounting of one NUMA node bucket, in
// float64s (multiply by 8 for bytes). Node is -1 for arenas that were
// created without node attribution.
type ArenaStats struct {
	Node            int
	FootprintFloats int64
	UsedFloats      int64
	HighWaterFloats int64
}

// AllArenaStats returns the non-empty arena buckets in node order
// (unattributed first as Node == -1). Buckets that never grew a slab are
// omitted.
func AllArenaStats() []ArenaStats {
	var out []ArenaStats
	for idx := range arenaAcct {
		a := &arenaAcct[idx]
		foot := a.foot.Load()
		if foot == 0 && a.hi.Load() == 0 {
			continue
		}
		out = append(out, ArenaStats{
			Node:            idx - 1,
			FootprintFloats: foot,
			UsedFloats:      a.used.Load(),
			HighWaterFloats: a.hi.Load(),
		})
	}
	return out
}

// ArenaTotals sums the buckets: total slab capacity, live occupancy, and
// the largest per-bucket high-water (the memory-regression signal qs-perf
// stamps into ledger entries).
func ArenaTotals() (footprint, used, highWater int64) {
	for idx := range arenaAcct {
		a := &arenaAcct[idx]
		footprint += a.foot.Load()
		used += a.used.Load()
		if hi := a.hi.Load(); hi > highWater {
			highWater = hi
		}
	}
	return
}

// NewWorkerArena returns an arena attributed to the NUMA node that worker w
// of a pool of `total` workers is pinned to (the same block mapping the
// pool uses), so per-worker scratch shows up under its node in the
// telemetry rather than in the unattributed bucket.
func NewWorkerArena(w, total int) *Arena {
	if total < 1 {
		total = 1
	}
	a := NewArena(0)
	a.statIdx = arenaStatIdx(Topo().NodeOf(w, total))
	return a
}

// Pool pressure counters (pool.go): chunks claimed from a participant's
// home part vs stolen from another part, and the live depth of the worker
// task queues. One atomic add per participant per launch, amortized in
// runPart.
var poolAcct struct {
	started atomic.Bool
	claimed atomic.Int64
	stolen  atomic.Int64
}

// PoolStats is a point-in-time view of the persistent worker pool.
type PoolStats struct {
	// Workers is the pool size (0 until the first launch starts it).
	Workers int
	// QueueDepth is the number of batches currently sitting unclaimed in
	// worker task queues — sustained > 0 means submitters outpace workers.
	QueueDepth int
	// ChunksClaimed counts chunks executed from a participant's home part;
	// ChunksStolen counts chunks taken from another part after the home
	// part drained. A rising steal share means the sticky partition is
	// unbalanced (stragglers, asymmetric chunk cost).
	ChunksClaimed int64
	ChunksStolen  int64
}

// PoolStatsNow reads the pool counters without starting the pool.
func PoolStatsNow() PoolStats {
	st := PoolStats{
		ChunksClaimed: poolAcct.claimed.Load(),
		ChunksStolen:  poolAcct.stolen.Load(),
	}
	if !poolAcct.started.Load() {
		return st
	}
	st.Workers = len(pool.workers)
	for _, pw := range pool.workers {
		st.QueueDepth += len(pw.tasks)
	}
	return st
}
