package device

import (
	"os"
	"path/filepath"
	"testing"
)

// Fixture-driven tests for detectTopology: each case builds a sysfs-style
// node tree in a temp dir and checks the parsed node → CPU map. These run
// everywhere, so the parser's behaviour on multi-node, single-node and
// malformed layouts is pinned even when CI hosts are single-socket.

// writeSysfsNodes lays out dir/nodeK/cpulist files. A "" cpulist writes the
// node directory without a cpulist file (as sysfs does for memory-only
// nodes with the file elsewhere, or a truncated tree).
func writeSysfsNodes(t *testing.T, nodes map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, cpulist := range nodes {
		if err := os.MkdirAll(filepath.Join(dir, name), 0o755); err != nil {
			t.Fatal(err)
		}
		if cpulist == "" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, name, "cpulist"), []byte(cpulist), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func sameCPUs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDetectTopologyMultiNode(t *testing.T) {
	// A two-socket box with interleaved cpulists (SMT siblings enumerated
	// after the physical cores, as real kernels do): 0-7,16-23 / 8-15,24-31.
	dir := writeSysfsNodes(t, map[string]string{
		"node0": "0-7,16-23\n",
		"node1": "8-15,24-31\n",
	})
	topo := detectTopology(dir)
	if topo.Nodes() != 2 {
		t.Fatalf("nodes = %d, want 2", topo.Nodes())
	}
	want0 := []int{0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23}
	want1 := []int{8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 26, 27, 28, 29, 30, 31}
	if !sameCPUs(topo.NodeCPUs[0], want0) || !sameCPUs(topo.NodeCPUs[1], want1) {
		t.Fatalf("cpu map = %v", topo.NodeCPUs)
	}
}

func TestDetectTopologyNodeOrderIsNumeric(t *testing.T) {
	// Directory listings sort lexically ("node10" < "node2"); the parser
	// must order nodes numerically so NodeCPUs[k] is node k's list.
	nodes := map[string]string{}
	for _, id := range []string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11"} {
		nodes["node"+id] = id + "\n"
	}
	dir := writeSysfsNodes(t, nodes)
	topo := detectTopology(dir)
	if topo.Nodes() != 12 {
		t.Fatalf("nodes = %d, want 12", topo.Nodes())
	}
	for k := 0; k < 12; k++ {
		if !sameCPUs(topo.NodeCPUs[k], []int{k}) {
			t.Fatalf("NodeCPUs[%d] = %v, want [%d]", k, topo.NodeCPUs[k], k)
		}
	}
}

func TestDetectTopologySingleNode(t *testing.T) {
	// The common laptop/VM layout: one node holding every CPU. Also checks
	// that non-node sysfs entries (has_cpu, possible, online…) are ignored.
	dir := writeSysfsNodes(t, map[string]string{"node0": "0-15\n"})
	for _, extra := range []string{"has_cpu", "possible", "online"} {
		if err := os.WriteFile(filepath.Join(dir, extra), []byte("0-15\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	topo := detectTopology(dir)
	if topo.Nodes() != 1 {
		t.Fatalf("nodes = %d, want 1", topo.Nodes())
	}
	if len(topo.NodeCPUs[0]) != 16 {
		t.Fatalf("node0 cpus = %v, want 16 CPUs", topo.NodeCPUs[0])
	}
	if topo.NodeOf(3, 8) != 0 {
		t.Error("single-node topology must map every worker to node 0")
	}
}

func TestDetectTopologyMalformed(t *testing.T) {
	cases := []struct {
		name      string
		nodes     map[string]string
		wantNodes int
		// wantCPUs is checked against NodeCPUs[0] when non-nil.
		wantCPUs []int
	}{
		{
			// A node with a garbled cpulist is skipped; the good one stays.
			name:      "one garbled cpulist",
			nodes:     map[string]string{"node0": "0-xyz\n", "node1": "4-7\n"},
			wantNodes: 1,
			wantCPUs:  []int{4, 5, 6, 7},
		},
		{
			// Reversed range is malformed per the kernel format.
			name:      "reversed range",
			nodes:     map[string]string{"node0": "3-1\n", "node1": "0-1\n"},
			wantNodes: 1,
			wantCPUs:  []int{0, 1},
		},
		{
			// Every cpulist unreadable/garbled → single-node fallback, so
			// node-keyed behaviour still has its node 0.
			name:      "all garbled",
			nodes:     map[string]string{"node0": ",,,\n", "node1": "a-b\n"},
			wantNodes: 1,
			wantCPUs:  []int{0},
		},
		{
			// node directory without a cpulist file (memory-only node or
			// truncated tree) is skipped.
			name:      "missing cpulist file",
			nodes:     map[string]string{"node0": "", "node1": "2-3\n"},
			wantNodes: 1,
			wantCPUs:  []int{2, 3},
		},
		{
			// Empty cpulist (trailing newline only) yields no CPUs → skip.
			name:      "empty cpulist",
			nodes:     map[string]string{"node0": "\n", "node1": "0-1\n"},
			wantNodes: 1,
			wantCPUs:  []int{0, 1},
		},
		{
			// Entries that are not nodeN ("nodeX", "nodes") are ignored;
			// nothing valid remains → fallback.
			name:      "no node entries",
			nodes:     map[string]string{"nodeX": "0-3\n", "nodes": "0-3\n"},
			wantNodes: 1,
			wantCPUs:  []int{0},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo := detectTopology(writeSysfsNodes(t, c.nodes))
			if topo.Nodes() != c.wantNodes {
				t.Fatalf("nodes = %d, want %d (map %v)", topo.Nodes(), c.wantNodes, topo.NodeCPUs)
			}
			if c.wantCPUs != nil && !sameCPUs(topo.NodeCPUs[0], c.wantCPUs) {
				t.Fatalf("NodeCPUs[0] = %v, want %v", topo.NodeCPUs[0], c.wantCPUs)
			}
		})
	}
}
