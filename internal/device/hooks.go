package device

import (
	"sync/atomic"
	"time"
)

// Observability hook for the kernel-launch runtime. Nil by default; the
// disabled cost per launch is one atomic pointer load. internal/obs
// installs an observer that feeds the qs_device_* metric families.

// Launch kinds reported to the LaunchObserver. The span profiler reuses
// them as the names of the device-layer launch spans.
const (
	LaunchKindRange  = "range"  // Launch / LaunchRange dispatches
	LaunchKindStages = "stages" // fused stage-group dispatches (LaunchStages)
	LaunchKindReduce = "reduce" // reduction launches
)

// SpanQueueWait is the device-layer span reported post hoc for the barrier
// tail the submitting goroutine spent blocked on pool workers.
const SpanQueueWait = "queue_wait"

// LaunchObserver receives one callback per completed kernel launch that
// actually dispatched (n > 0, after planning). total is the wall time of
// the whole launch including the submitting goroutine's own share of the
// work; wait is the tail the submitter spent blocked on the batch barrier
// after exhausting the chunk queue — the pool's queue-wait/straggler
// signal (0 for single-chunk and spawn dispatches). Callbacks can arrive
// concurrently; implementations must be safe for concurrent use.
type LaunchObserver interface {
	Launch(kind string, n, chunks int, total, wait time.Duration)
}

type launchHook struct{ o LaunchObserver }

var launchObs atomic.Pointer[launchHook]

// SetLaunchObserver installs o as the process-wide launch observer (nil
// uninstalls). Call at startup, not concurrently with running launches.
func SetLaunchObserver(o LaunchObserver) {
	if o == nil {
		launchObs.Store(nil)
		return
	}
	launchObs.Store(&launchHook{o: o})
}
