package device

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func randVec(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func devices() map[string]*Device {
	return map[string]*Device{
		"serial":     Serial(),
		"2-workers":  New(2, WithGrain(8)),
		"8-workers":  New(8, WithGrain(1)),
		"gomaxprocs": New(0),
	}
}

func TestLaunchCoversAllIDs(t *testing.T) {
	for name, d := range devices() {
		for _, n := range []int{0, 1, 7, 100, 10000} {
			hits := make([]atomic.Int32, n)
			d.Launch(n, func(id int) { hits[id].Add(1) })
			for id := range hits {
				if got := hits[id].Load(); got != 1 {
					t.Fatalf("%s: id %d executed %d times (n=%d)", name, id, got, n)
				}
			}
		}
	}
}

func TestLaunchRangePartition(t *testing.T) {
	for name, d := range devices() {
		const n = 5000
		hits := make([]atomic.Int32, n)
		d.LaunchRange(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("%s: invalid chunk [%d,%d)", name, lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("%s: index %d covered %d times", name, i, hits[i].Load())
			}
		}
	}
}

func TestReduceSumMatchesSerial(t *testing.T) {
	r := rng.New(1)
	x := randVec(r, 100003)
	want := vec.Sum(x)
	for name, d := range devices() {
		got := d.ReduceSum(len(x), func(i int) float64 { return x[i] })
		if math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("%s: ReduceSum = %g, want %g", name, got, want)
		}
	}
}

func TestReduceDeterministicAcrossRuns(t *testing.T) {
	// The combination order is fixed by chunk index, so repeated runs must
	// produce bit-identical results despite goroutine scheduling.
	r := rng.New(2)
	x := randVec(r, 50000)
	d := New(4, WithGrain(16))
	first := d.ReduceSum(len(x), func(i int) float64 { return x[i] })
	for run := 0; run < 20; run++ {
		if got := d.ReduceSum(len(x), func(i int) float64 { return x[i] }); got != first {
			t.Fatalf("run %d: ReduceSum = %v, want bit-identical %v", run, got, first)
		}
	}
}

func TestReduceEmptyReturnsIdentity(t *testing.T) {
	d := New(4)
	if got := d.Reduce(0, 42, func(int) float64 { return 0 }, math.Max); got != 42 {
		t.Errorf("empty Reduce = %g, want identity 42", got)
	}
}

func TestVecKernelsMatchSerial(t *testing.T) {
	r := rng.New(3)
	n := 12345
	x, y := randVec(r, n), randVec(r, n)
	for name, d := range devices() {
		if got, want := d.Dot(x, y), vec.Dot(x, y); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s Dot = %g want %g", name, got, want)
		}
		if got, want := d.Norm1(x), vec.Norm1(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s Norm1 = %g want %g", name, got, want)
		}
		if got, want := d.Norm2(x), vec.Norm2(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s Norm2 = %g want %g", name, got, want)
		}
		if got, want := d.NormInf(x), vec.NormInf(x); got != want {
			t.Errorf("%s NormInf = %g want %g", name, got, want)
		}
		if got, want := d.Sum(x), vec.Sum(x); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s Sum = %g want %g", name, got, want)
		}
	}
}

func TestDeviceScaleAXPYCopyMul(t *testing.T) {
	r := rng.New(4)
	n := 9999
	for name, d := range devices() {
		x, y := randVec(r, n), randVec(r, n)
		xs, ys := vec.Clone(x), vec.Clone(y)

		d.AXPY(1.5, x, y)
		vec.AXPY(1.5, xs, ys)
		if vec.DistInf(y, ys) != 0 {
			t.Errorf("%s AXPY mismatch", name)
		}

		d.Scale(y, 0.25)
		vec.Scale(ys, 0.25)
		if vec.DistInf(y, ys) != 0 {
			t.Errorf("%s Scale mismatch", name)
		}

		dst1, dst2 := make([]float64, n), make([]float64, n)
		d.Mul(dst1, x, y)
		vec.Mul(dst2, xs, ys)
		if vec.DistInf(dst1, dst2) != 0 {
			t.Errorf("%s Mul mismatch", name)
		}

		d.Copy(dst1, x)
		if vec.DistInf(dst1, x) != 0 {
			t.Errorf("%s Copy mismatch", name)
		}
	}
}

func TestResidualNorm2(t *testing.T) {
	r := rng.New(5)
	n := 4097
	w, x := randVec(r, n), randVec(r, n)
	lambda := 1.7
	want := 0.0
	for i := range w {
		d := w[i] - lambda*x[i]
		want += d * d
	}
	want = math.Sqrt(want)
	for name, d := range devices() {
		if got := d.ResidualNorm2(w, x, lambda); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s ResidualNorm2 = %g want %g", name, got, want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	d := New(4, WithGrain(10))
	d.Launch(100, func(int) {})
	d.Launch(50, func(int) {})
	d.ReduceSum(30, func(int) float64 { return 0 })
	s := d.Stats()
	if s.Launches != 2 {
		t.Errorf("Launches = %d, want 2", s.Launches)
	}
	if s.ThreadsTotal != 150 {
		t.Errorf("ThreadsTotal = %d, want 150", s.ThreadsTotal)
	}
	if s.ReduceLaunches != 1 {
		t.Errorf("ReduceLaunches = %d, want 1", s.ReduceLaunches)
	}
	d.ResetStats()
	if s := d.Stats(); s.Launches != 0 || s.ThreadsTotal != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestWorkersDefault(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("New(0) must select at least one worker")
	}
	if New(3).Workers() != 3 {
		t.Error("explicit worker count not honored")
	}
	if Serial().Workers() != 1 {
		t.Error("Serial must have one worker")
	}
}

func TestParallelMatchesSerialProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + int(r.Uint64n(5000))
		x := randVec(r, n)
		serial := Serial().Sum(x)
		par := New(7, WithGrain(13)).Sum(x)
		return math.Abs(serial-par) <= 1e-9*(1+math.Abs(serial))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
