package device

import (
	"sync"
)

// Arena is a bump allocator over CacheLine-aligned, huge-page-advised
// slabs. It exists for the solver's per-worker scratch: a batch-engine slot
// (or any other long-lived worker context) grabs its Θ(N) vectors from one
// arena, so the vectors of one worker are packed into a handful of large
// contiguous slabs instead of being scattered across the heap — fewer TLB
// entries, denser huge-page coverage, and (with first-touch) single-node
// placement for everything one worker owns.
//
// Arenas only grow: Alloc never frees, Reset recycles every slab at once.
// That is exactly the slot lifetime — scratch lives for a whole sweep and
// is dropped wholesale — and it is what keeps Alloc alloc-free in steady
// state. An Arena is not safe for concurrent use; each worker owns its own.
type Arena struct {
	slabFloats int         // capacity of newly grown slabs
	slabs      [][]float64 // all slabs ever grown, reused after Reset
	cur        int         // index into slabs of the slab being bumped
	off        int         // bump offset within slabs[cur]

	// statIdx is the arena's bucket in the process-wide accounting
	// (stats.go): 0 for unattributed arenas, node+1 for node arenas.
	// usedFloats mirrors the arena's contribution to its bucket's used
	// counter so Reset can retract it.
	statIdx    int
	usedFloats int64
}

// defaultSlabFloats is one huge page worth of float64s: slabs at least this
// large make the huge-page advice in AlignedFloat64s effective for the
// small grabs too.
const defaultSlabFloats = 1 << 18

// NewArena returns an empty arena whose slabs hold at least slabFloats
// float64s each (≤ 0 selects one huge page, 2^18 float64s).
func NewArena(slabFloats int) *Arena {
	if slabFloats <= 0 {
		slabFloats = defaultSlabFloats
	}
	return &Arena{slabFloats: slabFloats}
}

// Alloc returns a CacheLine-aligned slice of n float64s bumped off the
// arena. The memory is zeroed the first time a slab is used and holds
// arbitrary prior contents after a Reset — the Slot.Vec contract. n larger
// than the slab size gets a dedicated slab. n ≤ 0 returns an empty slice.
func (a *Arena) Alloc(n int) []float64 {
	if n <= 0 {
		return nil
	}
	// Round the bump step to a whole number of cache lines so the next
	// grab starts aligned too.
	step := (n + CacheLine/8 - 1) &^ (CacheLine/8 - 1)
	for a.cur < len(a.slabs) {
		s := a.slabs[a.cur]
		if a.off+n <= len(s) {
			v := s[a.off : a.off+n : a.off+n]
			a.off += step
			a.noteUsed(int64(step))
			return v
		}
		a.cur++
		a.off = 0
	}
	size := a.slabFloats
	if n > size {
		size = step
	}
	slab := AlignedFloat64s(size)
	a.slabs = append(a.slabs, slab)
	a.cur = len(a.slabs) - 1
	arenaNoteGrow(a.statIdx, int64(len(slab)))
	if n == len(slab) {
		// Dedicated slab: leave cur past it so the next small grab does
		// not scan a full slab.
		a.cur++
		a.off = 0
		a.noteUsed(int64(step))
		return slab[:n:n]
	}
	a.off = step
	a.noteUsed(int64(step))
	return slab[:n:n]
}

// noteUsed adds delta floats to the arena's occupancy, mirrored into the
// process-wide accounting bucket (stats.go) the telemetry sampler reads.
func (a *Arena) noteUsed(delta int64) {
	a.usedFloats += delta
	arenaNoteUsed(a.statIdx, delta)
}

// Reset makes every slab available again without releasing memory. Slices
// handed out before the Reset alias the recycled slabs; callers must treat
// Reset as invalidating all of them.
func (a *Arena) Reset() {
	a.cur = 0
	a.off = 0
	if a.usedFloats != 0 {
		arenaNoteUsed(a.statIdx, -a.usedFloats)
		a.usedFloats = 0
	}
}

// Footprint returns the total float64 capacity held by the arena's slabs.
func (a *Arena) Footprint() int {
	total := 0
	for _, s := range a.slabs {
		total += len(s)
	}
	return total
}

// nodeArenas hands out one shared arena per NUMA node for callers that want
// node-keyed rather than worker-keyed scratch. On single-node hosts this is
// one arena for the whole process. Access is serialized per call; the
// arenas themselves are still single-owner at a time (callers coordinate
// longer-lived ownership themselves).
var nodeArenas struct {
	mu     sync.Mutex
	arenas []*Arena
}

// NodeArena returns the process-wide arena of NUMA node k (clamped to the
// detected topology). Callers that hold vectors across calls must not
// Reset an arena they share.
func NodeArena(k int) *Arena {
	t := Topo()
	if k < 0 {
		k = 0
	}
	if k >= t.Nodes() {
		k = t.Nodes() - 1
	}
	nodeArenas.mu.Lock()
	defer nodeArenas.mu.Unlock()
	for len(nodeArenas.arenas) < t.Nodes() {
		a := NewArena(0)
		a.statIdx = arenaStatIdx(len(nodeArenas.arenas))
		nodeArenas.arenas = append(nodeArenas.arenas, a)
	}
	return nodeArenas.arenas[k]
}
