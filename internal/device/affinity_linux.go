//go:build linux

package device

import (
	"syscall"
	"unsafe"
)

// pinThreadToCPUs restricts the calling OS thread to the given CPU set via
// sched_setaffinity(2). The caller must have locked the goroutine to its
// thread first (runtime.LockOSThread), or the pin would apply to whichever
// thread happens to host it. Returns false (and changes nothing) on any
// error — an invalid CPU id, a cpuset-restricted container — so pinning
// stays strictly best-effort.
func pinThreadToCPUs(cpus []int) bool {
	if len(cpus) == 0 {
		return false
	}
	var mask [16]uint64 // 1024 CPUs, the kernel's default CPU_SETSIZE
	for _, c := range cpus {
		if c < 0 || c >= len(mask)*64 {
			return false
		}
		mask[c/64] |= 1 << uint(c%64)
	}
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	return errno == 0
}
