//go:build !linux

package device

// adviseHuge is a no-op off Linux: alignment and first-touch still apply,
// page-size advice does not exist portably.
func adviseHuge(v []float64) {}
