package device

import "math"

// This file provides the device-parallel twins of the internal/vec kernels.
// The power iteration needs only a handful of BLAS-1 operations besides the
// matrix–vector product; the paper notes (Section 4) that vector summation
// parallelizes well enough that it has "almost no influence on the overall
// execution time", and these kernels reproduce that behaviour.

// Dot returns xᵀy computed with a parallel reduction.
func (d *Device) Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("device: Dot length mismatch")
	}
	return d.ReduceSum(len(x), func(i int) float64 { return x[i] * y[i] })
}

// Sum returns Σ xᵢ computed with a parallel reduction.
func (d *Device) Sum(x []float64) float64 {
	return d.ReduceSum(len(x), func(i int) float64 { return x[i] })
}

// Norm1 returns ‖x‖₁ computed with a parallel reduction.
func (d *Device) Norm1(x []float64) float64 {
	return d.ReduceSum(len(x), func(i int) float64 { return math.Abs(x[i]) })
}

// Norm2 returns ‖x‖₂ computed with a parallel reduction over squares.
// Unlike the serially scaled vec.Norm2 it can overflow for entries near
// √MaxFloat64; quasispecies concentration vectors are bounded by 1 so this
// is not a concern on solver paths.
func (d *Device) Norm2(x []float64) float64 {
	return math.Sqrt(d.ReduceSum(len(x), func(i int) float64 { return x[i] * x[i] }))
}

// NormInf returns ‖x‖∞ computed with a parallel max-reduction.
func (d *Device) NormInf(x []float64) float64 {
	return d.Reduce(len(x), 0,
		func(i int) float64 { return math.Abs(x[i]) },
		math.Max)
}

// Scale multiplies x by a in place with a parallel kernel.
func (d *Device) Scale(x []float64, a float64) {
	d.LaunchRange(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] *= a
		}
	})
}

// AXPY computes y ← a·x + y in place with a parallel kernel.
func (d *Device) AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("device: AXPY length mismatch")
	}
	d.LaunchRange(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] += a * x[i]
		}
	})
}

// Copy copies src into dst with a parallel kernel.
func (d *Device) Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("device: Copy length mismatch")
	}
	d.LaunchRange(len(dst), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Mul computes dst ← x ⊙ y elementwise with a parallel kernel.
// dst may alias x or y.
func (d *Device) Mul(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("device: Mul length mismatch")
	}
	d.LaunchRange(len(dst), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = x[i] * y[i]
		}
	})
}

// ResidualNorm2 returns ‖w − λx‖₂, the power-iteration residual
// R(λ̃, x̃) of the paper, in one fused parallel pass over the operands.
func (d *Device) ResidualNorm2(w, x []float64, lambda float64) float64 {
	if len(w) != len(x) {
		panic("device: ResidualNorm2 length mismatch")
	}
	return math.Sqrt(d.ReduceSum(len(w), func(i int) float64 {
		r := w[i] - lambda*x[i]
		return r * r
	}))
}
