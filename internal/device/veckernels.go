package device

import "math"

// This file provides the device-parallel twins of the internal/vec kernels.
// The power iteration needs only a handful of BLAS-1 operations besides the
// matrix–vector product; the paper notes (Section 4) that vector summation
// parallelizes well enough that it has "almost no influence on the overall
// execution time", and these kernels reproduce that behaviour.
//
// They sit inside every power/Lanczos iteration, so they are written to the
// same kernel-floor discipline as the butterfly stages (see DESIGN.md §5.6):
// each launch dispatches CHUNK bodies, not per-element closures — the old
// ReduceSum(func(i)…) form paid an indirect call per element — and each
// chunk body is a bounds-check-eliminated loop unrolled 4-wide.
//
// SUMMATION ORDER (the reduction contract): a reduction over [0, n) is
// split into the device's chunks; within a chunk [lo, hi), accumulator
// lane ℓ ∈ {0,1,2,3} sums elements lo+ℓ, lo+ℓ+4, lo+ℓ+8, …, the lanes
// combine as ((s0+s1)+s2)+s3, and the ≤ 3 tail elements fold onto that in
// index order. Chunk partials combine in ascending chunk order. The result
// is therefore a pure function of (operands, n, chunk size): bit-identical
// across runs and across schedules for a fixed Device, independent of
// which worker executes which chunk. It differs from a strict serial left
// fold by the usual O(ε·Σ|xᵢyᵢ|) regrouping error — the same reassociation
// any chunked/parallel reduction already performed — and the solver
// tolerances (≥1e-9) absorb it; tests pin the fixed-schedule bit-identity.

// reduceChunks reduces chunkFn over the device's chunk partition of [0, n),
// combining the per-chunk partials with combine in ascending chunk order.
func (d *Device) reduceChunks(n int, identity float64, chunkFn func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	d.reduceLaunches.Add(1)
	chunk, nchunks := d.plan(n, d.grain)
	if nchunks == 1 || d.workers == 1 {
		return combine(identity, chunkFn(0, n))
	}
	partial := make([]float64, nchunks)
	d.run(LaunchKindReduce, n, chunk, nchunks, func(lo, hi int) {
		partial[lo/chunk] = chunkFn(lo, hi)
	})
	acc := identity
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

func addf(a, b float64) float64 { return a + b }

// dotChunk is Σ x[k]·y[k] over one chunk in the documented 4-lane order.
// The caller guarantees len(y) ≥ len(x); the re-slice makes the prover see
// it, so the loop body runs without bounds checks.
func dotChunk(x, y []float64) float64 {
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	// Slice-advance loops: constant indexes on shrinking slices are the one
	// form the go1.24 prover eliminates completely (counter loops keep a
	// check per iteration — see scripts/check_bce.sh).
	for len(x) >= 4 && len(y) >= 4 {
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		x, y = x[4:], y[4:]
	}
	s := ((s0 + s1) + s2) + s3
	for len(x) > 0 && len(y) > 0 {
		s += x[0] * y[0]
		x, y = x[1:], y[1:]
	}
	return s
}

// Dot returns xᵀy computed with a parallel reduction.
func (d *Device) Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("device: Dot length mismatch")
	}
	return d.reduceChunks(len(x), 0, func(lo, hi int) float64 {
		return dotChunk(x[lo:hi], y[lo:hi])
	}, addf)
}

// sumChunk is Σ x[k] over one chunk in the documented 4-lane order.
func sumChunk(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += x[0]
		s1 += x[1]
		s2 += x[2]
		s3 += x[3]
		x = x[4:]
	}
	s := ((s0 + s1) + s2) + s3
	for len(x) > 0 {
		s += x[0]
		x = x[1:]
	}
	return s
}

// Sum returns Σ xᵢ computed with a parallel reduction.
func (d *Device) Sum(x []float64) float64 {
	return d.reduceChunks(len(x), 0, func(lo, hi int) float64 {
		return sumChunk(x[lo:hi])
	}, addf)
}

// norm1Chunk is Σ |x[k]| over one chunk in the documented 4-lane order.
func norm1Chunk(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += math.Abs(x[0])
		s1 += math.Abs(x[1])
		s2 += math.Abs(x[2])
		s3 += math.Abs(x[3])
		x = x[4:]
	}
	s := ((s0 + s1) + s2) + s3
	for len(x) > 0 {
		s += math.Abs(x[0])
		x = x[1:]
	}
	return s
}

// Norm1 returns ‖x‖₁ computed with a parallel reduction.
func (d *Device) Norm1(x []float64) float64 {
	return d.reduceChunks(len(x), 0, func(lo, hi int) float64 {
		return norm1Chunk(x[lo:hi])
	}, addf)
}

// norm2SqChunk is Σ x[k]² over one chunk in the documented 4-lane order.
func norm2SqChunk(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 += x[0] * x[0]
		s1 += x[1] * x[1]
		s2 += x[2] * x[2]
		s3 += x[3] * x[3]
		x = x[4:]
	}
	s := ((s0 + s1) + s2) + s3
	for len(x) > 0 {
		s += x[0] * x[0]
		x = x[1:]
	}
	return s
}

// Norm2 returns ‖x‖₂ computed with a parallel reduction over squares.
// Unlike the serially scaled vec.Norm2 it can overflow for entries near
// √MaxFloat64; quasispecies concentration vectors are bounded by 1 so this
// is not a concern on solver paths.
func (d *Device) Norm2(x []float64) float64 {
	return math.Sqrt(d.reduceChunks(len(x), 0, func(lo, hi int) float64 {
		return norm2SqChunk(x[lo:hi])
	}, addf))
}

// normInfChunk is max |x[k]| over one chunk. Max is associative and
// commutative, so the 4-lane split is exact, not just deterministic; NaNs
// propagate through math.Max exactly as in the serial fold.
func normInfChunk(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for len(x) >= 4 {
		s0 = math.Max(s0, math.Abs(x[0]))
		s1 = math.Max(s1, math.Abs(x[1]))
		s2 = math.Max(s2, math.Abs(x[2]))
		s3 = math.Max(s3, math.Abs(x[3]))
		x = x[4:]
	}
	s := math.Max(math.Max(s0, s1), math.Max(s2, s3))
	for len(x) > 0 {
		s = math.Max(s, math.Abs(x[0]))
		x = x[1:]
	}
	return s
}

// NormInf returns ‖x‖∞ computed with a parallel max-reduction.
func (d *Device) NormInf(x []float64) float64 {
	return d.reduceChunks(len(x), 0, func(lo, hi int) float64 {
		return normInfChunk(x[lo:hi])
	}, math.Max)
}

// residSqChunk is Σ (w[k] − λ·x[k])² over one chunk in the documented
// 4-lane order.
func residSqChunk(w, x []float64, lambda float64) float64 {
	x = x[:len(w)]
	var s0, s1, s2, s3 float64
	for len(w) >= 4 && len(x) >= 4 {
		r0 := w[0] - lambda*x[0]
		r1 := w[1] - lambda*x[1]
		r2 := w[2] - lambda*x[2]
		r3 := w[3] - lambda*x[3]
		s0 += r0 * r0
		s1 += r1 * r1
		s2 += r2 * r2
		s3 += r3 * r3
		w, x = w[4:], x[4:]
	}
	s := ((s0 + s1) + s2) + s3
	for len(w) > 0 && len(x) > 0 {
		r := w[0] - lambda*x[0]
		s += r * r
		w, x = w[1:], x[1:]
	}
	return s
}

// ResidualNorm2 returns ‖w − λx‖₂, the power-iteration residual
// R(λ̃, x̃) of the paper, in one fused parallel pass over the operands.
func (d *Device) ResidualNorm2(w, x []float64, lambda float64) float64 {
	if len(w) != len(x) {
		panic("device: ResidualNorm2 length mismatch")
	}
	return math.Sqrt(d.reduceChunks(len(w), 0, func(lo, hi int) float64 {
		return residSqChunk(w[lo:hi], x[lo:hi], lambda)
	}, addf))
}

// Scale multiplies x by a in place with a parallel kernel. The 4-wide
// unroll touches each element exactly once with the same single multiply,
// so results are bit-identical to the scalar loop.
func (d *Device) Scale(x []float64, a float64) {
	d.LaunchRange(len(x), func(lo, hi int) {
		s := x[lo:hi]
		for len(s) >= 4 {
			s[0] *= a
			s[1] *= a
			s[2] *= a
			s[3] *= a
			s = s[4:]
		}
		for len(s) > 0 {
			s[0] *= a
			s = s[1:]
		}
	})
}

// AXPY computes y ← a·x + y in place with a parallel kernel. Element-wise,
// so the unroll is bit-identical to the scalar loop.
func (d *Device) AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("device: AXPY length mismatch")
	}
	d.LaunchRange(len(x), func(lo, hi int) {
		xs, ys := x[lo:hi], y[lo:hi]
		for len(xs) >= 4 && len(ys) >= 4 {
			ys[0] += a * xs[0]
			ys[1] += a * xs[1]
			ys[2] += a * xs[2]
			ys[3] += a * xs[3]
			xs, ys = xs[4:], ys[4:]
		}
		for len(xs) > 0 && len(ys) > 0 {
			ys[0] += a * xs[0]
			xs, ys = xs[1:], ys[1:]
		}
	})
}

// Copy copies src into dst with a parallel kernel.
func (d *Device) Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("device: Copy length mismatch")
	}
	d.LaunchRange(len(dst), func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Mul computes dst ← x ⊙ y elementwise with a parallel kernel.
// dst may alias x or y.
func (d *Device) Mul(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("device: Mul length mismatch")
	}
	d.LaunchRange(len(dst), func(lo, hi int) {
		ds, xs, ys := dst[lo:hi], x[lo:hi], y[lo:hi]
		for len(ds) >= 4 && len(xs) >= 4 && len(ys) >= 4 {
			ds[0] = xs[0] * ys[0]
			ds[1] = xs[1] * ys[1]
			ds[2] = xs[2] * ys[2]
			ds[3] = xs[3] * ys[3]
			ds, xs, ys = ds[4:], xs[4:], ys[4:]
		}
		for len(ds) > 0 && len(xs) > 0 && len(ys) > 0 {
			ds[0] = xs[0] * ys[0]
			ds, xs, ys = ds[1:], xs[1:], ys[1:]
		}
	})
}
