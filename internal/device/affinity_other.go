//go:build !linux

package device

// pinThreadToCPUs is unavailable off Linux; the pool runs unpinned.
func pinThreadToCPUs(cpus []int) bool { return false }
