// Package device provides a software stand-in for the paper's OpenCL
// execution environment: a "kernel launch" runtime that runs a data-parallel
// kernel body over a logical thread grid using a pool of worker goroutines.
//
// The paper's GPU implementation (Section 4, Algorithm 2) launches one
// kernel with N/2 threads per butterfly stage; each logical thread executes
// an independent body and the host loop forms an implicit barrier between
// stages. This package reproduces exactly that execution model:
//
//   - Launch(n, kernel) runs kernel(id) for every id in [0, n) and returns
//     only after all logical threads finished (the stage barrier);
//   - LaunchStages dispatches a whole fused stage-group as one launch with
//     a single barrier, the dispatch form used by the cache-blocked
//     butterfly kernels (one barrier per group instead of one per stage);
//   - logical threads are chunked over a persistent pool of long-lived
//     worker goroutines parked on a channel (see pool.go), the software
//     analogue of scheduling thread blocks over resident multiprocessors;
//   - Reduce implements the parallel reduction tree used for norms and
//     residuals, which the paper notes "can be relatively well parallelized".
//
// A Device with one worker executes everything on the calling goroutine,
// giving a serial twin with identical semantics for testing. Launch
// statistics are recorded so benchmarks can report grid sizes. The legacy
// goroutine-per-chunk dispatch is kept behind WithSpawnDispatch so the
// pool-vs-spawn cost can be measured rather than asserted.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/span"
)

// Device executes data-parallel kernels over worker goroutines. A Device is
// safe for sequential reuse; concurrent Launch calls on the same Device are
// permitted (the pool serves them independently) but kernels racing on the
// same data remain the caller's responsibility.
type Device struct {
	workers int
	grain   int
	spawn   bool // legacy goroutine-per-chunk dispatch (benchmarks only)

	launches       atomic.Int64
	threadsTotal   atomic.Int64
	chunksTotal    atomic.Int64
	reduceLaunches atomic.Int64
	stageLaunches  atomic.Int64
	stagesFused    atomic.Int64
}

// Option configures a Device.
type Option func(*Device)

// WithGrain sets the minimum number of logical threads per dispatched chunk.
// Smaller grains increase scheduling overhead; larger grains reduce
// available parallelism. The default (4096) matches the memory-bound
// character of the butterfly kernel.
func WithGrain(g int) Option {
	return func(d *Device) {
		if g > 0 {
			d.grain = g
		}
	}
}

// WithSpawnDispatch selects the legacy dispatch that spawns one goroutine
// per chunk on every launch instead of reusing the persistent worker pool.
// It exists so benchmarks can quantify the per-launch scheduling cost the
// pool removes; solver code should never use it.
func WithSpawnDispatch() Option {
	return func(d *Device) { d.spawn = true }
}

// New returns a Device with the given number of workers. workers <= 0
// selects runtime.GOMAXPROCS(0), the software analogue of "all
// multiprocessors on the card".
func New(workers int, opts ...Option) *Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	d := &Device{workers: workers, grain: 4096}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Serial returns a Device that runs every kernel on the calling goroutine.
// It is the bit-identical reference for the parallel paths.
func Serial() *Device { return New(1) }

// Workers returns the worker count of the device.
func (d *Device) Workers() int { return d.workers }

// Launch runs kernel(id) for every logical thread id in [0, n) and returns
// after all of them completed — one kernel launch with grid size n in GPU
// terms. Kernels must not assume any execution order between ids.
func (d *Device) Launch(n int, kernel func(id int)) {
	d.LaunchRange(n, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			kernel(id)
		}
	})
}

// plan partitions a grid of n logical threads into contiguous chunks of at
// least grain threads, at most one chunk per worker.
func (d *Device) plan(n, grain int) (chunk, nchunks int) {
	if grain < 1 {
		grain = 1
	}
	chunk = (n + d.workers - 1) / d.workers
	if chunk < grain {
		chunk = grain
	}
	return chunk, (n + chunk - 1) / chunk
}

// LaunchRange runs kernel(lo, hi) over a partition of [0, n) into
// contiguous chunks. It is the chunked form of Launch for kernels that can
// amortize per-thread setup over a range, mirroring how real kernels
// process several elements per thread when profitable.
func (d *Device) LaunchRange(n int, kernel func(lo, hi int)) {
	if n <= 0 {
		return
	}
	d.launches.Add(1)
	d.threadsTotal.Add(int64(n))

	chunk, nchunks := d.plan(n, d.grain)
	d.chunksTotal.Add(int64(nchunks))
	d.run(LaunchKindRange, n, chunk, nchunks, kernel)
}

// LaunchStages dispatches a fused group of `stages` dependent butterfly
// stages as ONE data-parallel launch over n independent work items: the
// kernel applies the whole stage-group to each item it receives, so the
// only barrier is the launch's own completion — one barrier per group
// instead of one per stage. weight is the number of scalar elements each
// work item touches (e.g. the tile length); the dispatch grain is scaled by
// it so heavyweight items still spread across workers.
func (d *Device) LaunchStages(stages, n, weight int, kernel func(lo, hi int)) {
	if n <= 0 || stages <= 0 {
		return
	}
	d.launches.Add(1)
	d.stageLaunches.Add(1)
	d.stagesFused.Add(int64(stages))
	d.threadsTotal.Add(int64(n))

	if weight < 1 {
		weight = 1
	}
	chunk, nchunks := d.plan(n, d.grain/weight)
	d.chunksTotal.Add(int64(nchunks))
	d.run(LaunchKindStages, n, chunk, nchunks, kernel)
}

// run executes a planned launch with the configured dispatch. kind is the
// launch family reported to an installed LaunchObserver and the name of the
// device-layer span; with neither hook installed the only instrumentation
// cost is the two atomic loads.
func (d *Device) run(kind string, n, chunk, nchunks int, kernel func(lo, hi int)) {
	h := launchObs.Load()
	sr := span.Installed()
	if h == nil && sr == nil {
		d.dispatch(n, chunk, nchunks, kernel, false)
		return
	}
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerDevice, kind)
	}
	start := time.Now()
	wait := d.dispatch(n, chunk, nchunks, kernel, true)
	if sr != nil {
		// The barrier tail is reported post hoc inside the still-open
		// launch span, so it shows as the launch's child in the profile.
		if wait > 0 {
			sr.Record(span.LayerDevice, SpanQueueWait, wait, int64(nchunks), 0)
		}
		span.End(sp, int64(n), int64(nchunks))
	}
	if h != nil {
		h.o.Launch(kind, n, nchunks, time.Since(start), wait)
	}
}

// dispatch runs a planned launch; with measureWait it returns the barrier
// tail the submitting goroutine spent waiting on pool workers.
func (d *Device) dispatch(n, chunk, nchunks int, kernel func(lo, hi int), measureWait bool) time.Duration {
	if nchunks == 1 || d.workers == 1 {
		kernel(0, n)
		return 0
	}
	if d.spawn {
		var wg sync.WaitGroup
		wg.Add(nchunks)
		for c := 0; c < nchunks; c++ {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			go func(lo, hi int) {
				defer wg.Done()
				kernel(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return 0
	}
	return runPooled(&batch{kernel: kernel, n: n, chunk: chunk, nchunks: nchunks}, d.workers-1, measureWait)
}

// Reduce computes the combination of f(0) … f(n−1) under the associative
// operator combine, with identity as the neutral element. Each worker
// reduces a contiguous chunk locally; partial results are combined in
// deterministic chunk order, so the result is independent of scheduling and
// of the worker count (floating-point addition is not associative, and a
// fixed combination order keeps runs reproducible).
func (d *Device) Reduce(n int, identity float64, f func(i int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	d.reduceLaunches.Add(1)

	chunk, nchunks := d.plan(n, d.grain)
	if nchunks == 1 || d.workers == 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = combine(acc, f(i))
		}
		return acc
	}
	partial := make([]float64, nchunks)
	d.run(LaunchKindReduce, n, chunk, nchunks, func(lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, f(i))
		}
		partial[lo/chunk] = acc
	})
	acc := identity
	for _, p := range partial {
		acc = combine(acc, p)
	}
	return acc
}

// ReduceSum computes Σ f(i) for i in [0, n) using Reduce.
func (d *Device) ReduceSum(n int, f func(i int) float64) float64 {
	return d.Reduce(n, 0, f, func(a, b float64) float64 { return a + b })
}

// Stats is a snapshot of the launch counters of a Device.
type Stats struct {
	Launches       int64 // kernel launches performed (incl. stage-group launches)
	ReduceLaunches int64 // reduction launches performed
	ThreadsTotal   int64 // sum of grid sizes over all launches
	ChunksTotal    int64 // dispatched chunks over all launches
	StageLaunches  int64 // fused stage-group launches (LaunchStages calls)
	StagesFused    int64 // butterfly stages covered by stage-group launches
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		Launches:       d.launches.Load(),
		ReduceLaunches: d.reduceLaunches.Load(),
		ThreadsTotal:   d.threadsTotal.Load(),
		ChunksTotal:    d.chunksTotal.Load(),
		StageLaunches:  d.stageLaunches.Load(),
		StagesFused:    d.stagesFused.Load(),
	}
}

// ResetStats zeroes the device counters.
func (d *Device) ResetStats() {
	d.launches.Store(0)
	d.threadsTotal.Store(0)
	d.chunksTotal.Store(0)
	d.reduceLaunches.Store(0)
	d.stageLaunches.Store(0)
	d.stagesFused.Store(0)
}

// String describes the device, e.g. "device(8 workers, grain 4096)".
func (d *Device) String() string {
	mode := ""
	if d.spawn {
		mode = ", spawn dispatch"
	}
	return fmt.Sprintf("device(%d workers, grain %d%s)", d.workers, d.grain, mode)
}
