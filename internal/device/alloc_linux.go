//go:build linux

package device

import (
	"runtime"
	"syscall"
	"unsafe"
)

// adviseHuge asks the kernel to back the 2 MiB-aligned interior of v with
// transparent huge pages. The advice is best-effort: madvise on a Go-heap
// range is legal (the heap is an anonymous private mapping, which THP
// accepts), but the call can still fail — old kernels, THP disabled — and
// every failure mode is silently ignored. Correctness never depends on it.
func adviseHuge(v []float64) {
	const huge = 2 << 20
	lo := uintptr(unsafe.Pointer(&v[0]))
	hi := lo + uintptr(len(v))*8
	// Round inward to huge-page boundaries; advice on partial pages is
	// useless and madvise wants page-aligned addresses anyway.
	alo := (lo + huge - 1) &^ (huge - 1)
	ahi := hi &^ (huge - 1)
	if ahi <= alo {
		return
	}
	const madvHugepage = 14 // MADV_HUGEPAGE
	syscall.Syscall(syscall.SYS_MADVISE, alo, ahi-alo, madvHugepage)
	runtime.KeepAlive(v)
}
