package device

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the persistent worker pool behind every Device.
//
// The original runtime spawned fresh goroutines for every kernel launch —
// log₂N launches per matvec, thousands of matvecs per solve — so the
// scheduler cost of goroutine creation was paid millions of times per run.
// Real devices do not re-create their multiprocessors per launch; they keep
// them parked and hand them work. The pool reproduces that: a process-wide
// set of GOMAXPROCS long-lived workers parked on a channel, woken with one
// pointer-sized send per launch, and a work-stealing chunk counter so load
// balances without per-chunk goroutines.
//
// The submitting goroutine always participates in its own batch, so a
// launch completes even if every pool worker is busy (or the pool channel
// is full): in the worst case the caller runs all chunks itself. This also
// makes nested launches deadlock-free by construction.

// batch is one kernel launch in flight: a grid of nchunks contiguous chunks
// claimed via an atomic counter by however many workers join in.
type batch struct {
	kernel  func(lo, hi int)
	n       int
	chunk   int
	nchunks int
	next    atomic.Int64
	wg      sync.WaitGroup
}

// run claims and executes chunks until the batch is exhausted. It is called
// by the submitting goroutine and by any pool worker that received the
// batch; a worker arriving after completion returns immediately.
func (b *batch) run() {
	for {
		c := int(b.next.Add(1)) - 1
		if c >= b.nchunks {
			return
		}
		lo := c * b.chunk
		hi := lo + b.chunk
		if hi > b.n {
			hi = b.n
		}
		b.kernel(lo, hi)
		b.wg.Done()
	}
}

var pool struct {
	once  sync.Once
	tasks chan *batch
}

// poolTasks lazily starts the process-wide worker pool and returns its
// submission channel. The pool is sized to runtime.GOMAXPROCS(0) at first
// use — the software analogue of "all multiprocessors on the card" — and
// lives for the remainder of the process; per-Device worker counts below
// that merely cap how many workers are invited to a given batch.
func poolTasks() chan *batch {
	pool.once.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		pool.tasks = make(chan *batch, 4*w)
		for i := 0; i < w; i++ {
			go func() {
				for b := range pool.tasks {
					b.run()
				}
			}()
		}
	})
	return pool.tasks
}

// runPooled executes the batch on the persistent pool: up to helpers pool
// workers are invited with non-blocking sends (a busy pool just means the
// caller does a larger share), the caller joins the batch itself, and the
// barrier is the batch's own WaitGroup. With measureWait it returns how
// long the caller was blocked on that barrier after finishing its own
// chunks — the straggler/queue-wait tail reported to a LaunchObserver.
func runPooled(b *batch, helpers int, measureWait bool) time.Duration {
	b.wg.Add(b.nchunks)
	if helpers > b.nchunks-1 {
		helpers = b.nchunks - 1
	}
	tasks := poolTasks()
enqueue:
	for i := 0; i < helpers; i++ {
		select {
		case tasks <- b:
		default:
			break enqueue
		}
	}
	b.run()
	if measureWait {
		start := time.Now()
		b.wg.Wait()
		return time.Since(start)
	}
	b.wg.Wait()
	return 0
}
