package device

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the persistent worker pool behind every Device.
//
// The original runtime spawned fresh goroutines for every kernel launch —
// log₂N launches per matvec, thousands of matvecs per solve — so the
// scheduler cost of goroutine creation was paid millions of times per run.
// Real devices do not re-create their multiprocessors per launch; they keep
// them parked and hand them work. The pool reproduces that: a process-wide
// set of GOMAXPROCS long-lived workers, woken with one pointer-sized send
// per launch, and work-stealing chunk claiming so load balances without
// per-chunk goroutines.
//
// Two topology refinements sit on top of the original design:
//
//   - Sticky chunk→worker affinity. The chunk index space of a batch is
//     split into contiguous PARTS, one per invited participant, and worker
//     w always starts on part w+1 (the caller on part 0). Because a given
//     Device produces the same chunk geometry for the same grid, worker w
//     re-visits the same rows launch after launch — the stage passes of a
//     matvec, and the matvecs of an iteration, stay cache- and (via
//     first-touch, see alloc.go) NUMA-node-warm. Each part has its own
//     atomic cursor; a participant that drains its part steals from the
//     others in ring order, so the worst-case balance of the old single
//     counter is preserved. Which worker executes a chunk never affects
//     results — kernels write disjoint ranges and reductions combine in
//     chunk order — so stickiness is invisible to the determinism
//     guarantees.
//
//   - Topology pinning. On hosts with multiple NUMA nodes (or when forced
//     with QS_PIN=1) each worker locks its goroutine to an OS thread and
//     pins that thread to the CPUs of its node (contiguous worker blocks
//     per node, matching Topology.NodeOf). Strictly best-effort: any
//     failure leaves the worker unpinned and correct. QS_PIN=0 disables
//     pinning even on multi-node hosts.
//
// The submitting goroutine always participates in its own batch, so a
// launch completes even if every pool worker is busy (or its queue is
// full): in the worst case the caller runs all chunks itself. This also
// makes nested launches deadlock-free by construction.

// maxBatchParts caps how many sticky parts a batch is split into; workers
// beyond the cap share parts round-robin. 32 unpadded cursors keep the
// batch header at a few cache lines — cursor contention is one atomic add
// per chunk, far below the kernel work per chunk (≥ grain elements).
const maxBatchParts = 32

// batch is one kernel launch in flight: a grid of nchunks contiguous
// chunks, split into nparts contiguous parts claimed via per-part atomic
// cursors by however many workers join in.
type batch struct {
	kernel  func(lo, hi int)
	n       int
	chunk   int
	nchunks int
	nparts  int
	wg      sync.WaitGroup
	parts   [maxBatchParts]atomic.Int64
}

// partBounds returns the chunk-index range [lo, hi) of part p.
func (b *batch) partBounds(p int) (lo, hi int) {
	return p * b.nchunks / b.nparts, (p + 1) * b.nchunks / b.nparts
}

// runPart claims and executes chunks starting from part home, stealing from
// the other parts in ring order once home is drained, until the batch is
// exhausted. It is called by the submitting goroutine (home 0) and by any
// pool worker that received the batch; a worker arriving after completion
// scans nparts drained cursors and returns.
func (b *batch) runPart(home int) {
	var claimed, stolen int64
	for q := 0; q < b.nparts; q++ {
		p := home + q
		if p >= b.nparts {
			p -= b.nparts
		}
		lo, hi := b.partBounds(p)
		for {
			c := lo + int(b.parts[p].Add(1)) - 1
			if c >= hi {
				break
			}
			if q == 0 {
				claimed++
			} else {
				stolen++
			}
			clo := c * b.chunk
			chi := clo + b.chunk
			if chi > b.n {
				chi = b.n
			}
			b.kernel(clo, chi)
			b.wg.Done()
		}
	}
	// Telemetry: one amortized atomic add per participant per launch, far
	// below the per-chunk cursor traffic above.
	if claimed != 0 {
		poolAcct.claimed.Add(claimed)
	}
	if stolen != 0 {
		poolAcct.stolen.Add(stolen)
	}
}

// poolWorker is one persistent worker: a parked goroutine with its own
// queue (so launches can address workers individually — the sticky map) and
// a fixed home node from the detected topology.
type poolWorker struct {
	id    int
	tasks chan *batch
}

var pool struct {
	once    sync.Once
	workers []*poolWorker
}

// pinningWanted decides whether pool workers pin to their node's CPUs:
// QS_PIN=1 forces it, QS_PIN=0 forbids it, and the default is to pin
// exactly when the host has more than one NUMA node (where placement pays
// for the loss of scheduler freedom).
func pinningWanted(t *Topology) bool {
	switch os.Getenv("QS_PIN") {
	case "1":
		return true
	case "0":
		return false
	}
	return t.Nodes() > 1
}

// poolWorkers lazily starts the process-wide worker pool. The pool is sized
// to runtime.GOMAXPROCS(0) at first use — the software analogue of "all
// multiprocessors on the card" — and lives for the remainder of the
// process; per-Device worker counts below that merely cap how many workers
// are invited to a given batch.
func poolWorkers() []*poolWorker {
	pool.once.Do(func() {
		w := runtime.GOMAXPROCS(0)
		if w < 1 {
			w = 1
		}
		t := Topo()
		pin := pinningWanted(t)
		pool.workers = make([]*poolWorker, w)
		for i := 0; i < w; i++ {
			pw := &poolWorker{id: i, tasks: make(chan *batch, 8)}
			pool.workers[i] = pw
			go func() {
				if pin {
					// Dedicated worker: locking the goroutine to its
					// thread for the process lifetime is the point.
					runtime.LockOSThread()
					pinThreadToCPUs(t.NodeCPUs[t.NodeOf(pw.id, w)])
				}
				for b := range pw.tasks {
					home := 0
					if b.nparts > 1 {
						home = 1 + pw.id%(b.nparts-1)
					}
					b.runPart(home)
				}
			}()
		}
		poolAcct.started.Store(true)
	})
	return pool.workers
}

// runPooled executes the batch on the persistent pool: up to helpers pool
// workers are invited with non-blocking sends to their own queues (a busy
// worker just means the caller and the others cover its part via
// stealing), the caller joins the batch itself on part 0, and the barrier
// is the batch's own WaitGroup. With measureWait it returns how long the
// caller was blocked on that barrier after finishing its own chunks — the
// straggler/queue-wait tail reported to a LaunchObserver.
func runPooled(b *batch, helpers int, measureWait bool) time.Duration {
	b.wg.Add(b.nchunks)
	if helpers > b.nchunks-1 {
		helpers = b.nchunks - 1
	}
	ws := poolWorkers()
	if helpers > len(ws) {
		helpers = len(ws)
	}
	b.nparts = helpers + 1
	if b.nparts > maxBatchParts {
		b.nparts = maxBatchParts
	}
	if b.nparts < 1 {
		b.nparts = 1
	}
	for i := 0; i < helpers; i++ {
		select {
		case ws[i].tasks <- b:
		default:
		}
	}
	b.runPart(0)
	if measureWait {
		start := time.Now()
		b.wg.Wait()
		return time.Since(start)
	}
	b.wg.Wait()
	return 0
}
