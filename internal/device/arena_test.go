package device

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAlignedFloat64sAlignmentAndShape(t *testing.T) {
	for _, n := range []int{1, 7, 8, 63, 64, 1000, 1 << 12, hugeAdviseMin} {
		v := AlignedFloat64s(n)
		if len(v) != n || cap(v) != n {
			t.Fatalf("n=%d: len=%d cap=%d, want both %d", n, len(v), cap(v), n)
		}
		if !IsAligned(v) {
			t.Fatalf("n=%d: first element not %d-byte aligned", n, CacheLine)
		}
		for i, x := range v {
			if x != 0 {
				t.Fatalf("n=%d: element %d = %v, want zeroed", n, i, x)
			}
		}
	}
	if AlignedFloat64s(0) != nil || AlignedFloat64s(-3) != nil {
		t.Error("non-positive n must return nil")
	}
	if !IsAligned(nil) {
		t.Error("empty slice counts as aligned")
	}
}

func TestAllocVectorFirstTouchVariants(t *testing.T) {
	n := 1 << 15
	serial := AllocVector(n)
	d := New(4, WithGrain(1024))
	pooled := d.AllocVector(n)
	if len(serial) != n || len(pooled) != n {
		t.Fatal("wrong lengths")
	}
	if !IsAligned(serial) || !IsAligned(pooled) {
		t.Fatal("AllocVector results must be aligned")
	}
	for i := 0; i < n; i++ {
		if serial[i] != 0 || pooled[i] != 0 {
			t.Fatalf("element %d not zeroed", i)
		}
	}
	if got := d.AllocVector(0); len(got) != 0 {
		t.Error("n=0 must return an empty vector")
	}
}

func TestArenaBumpRespectsAlignmentAndIsolation(t *testing.T) {
	a := NewArena(1 << 10)
	v1 := a.Alloc(100)
	v2 := a.Alloc(33)
	if !IsAligned(v1) || !IsAligned(v2) {
		t.Fatal("arena grabs must be cache-line aligned")
	}
	if cap(v1) != 100 || cap(v2) != 33 {
		t.Fatalf("grabs must be capacity-clamped: cap(v1)=%d cap(v2)=%d", cap(v1), cap(v2))
	}
	for i := range v1 {
		v1[i] = 1
	}
	for _, x := range v2 {
		if x != 0 {
			t.Fatal("writes to one grab leaked into the next")
		}
	}
}

func TestArenaGrowsAndHandlesOversizedGrabs(t *testing.T) {
	a := NewArena(256)
	big := a.Alloc(1000) // dedicated slab
	small := a.Alloc(10)
	if len(big) != 1000 || len(small) != 10 {
		t.Fatal("wrong grab lengths")
	}
	if !IsAligned(big) || !IsAligned(small) {
		t.Fatal("grabs must stay aligned across slab growth")
	}
	if a.Footprint() < 1010 {
		t.Errorf("footprint %d too small for grabs issued", a.Footprint())
	}
}

func TestArenaResetReusesSlabsWithoutGrowth(t *testing.T) {
	a := NewArena(1 << 10)
	for i := 0; i < 4; i++ {
		a.Alloc(500)
	}
	grown := a.Footprint()
	for round := 0; round < 3; round++ {
		a.Reset()
		for i := 0; i < 4; i++ {
			if v := a.Alloc(500); len(v) != 500 {
				t.Fatal("wrong length after reset")
			}
		}
		if a.Footprint() != grown {
			t.Fatalf("round %d: footprint grew from %d to %d despite reset", round, grown, a.Footprint())
		}
	}
}

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"0", []int{0}},
		{"0-3", []int{0, 1, 2, 3}},
		{"0-1,4-5", []int{0, 1, 4, 5}},
		{"7,3", []int{3, 7}},
		{"", nil},
		{"x", nil},
		{"3-1", nil},
	}
	for _, c := range cases {
		got := parseCPUList(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseCPUList(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestDetectTopologyFromFakeSysfs(t *testing.T) {
	dir := t.TempDir()
	for node, cpulist := range map[string]string{"node0": "0-1", "node1": "2-3"} {
		if err := os.MkdirAll(filepath.Join(dir, node), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, node, "cpulist"), []byte(cpulist+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	topo := detectTopology(dir)
	if topo.Nodes() != 2 {
		t.Fatalf("detected %d nodes, want 2", topo.Nodes())
	}
	if len(topo.NodeCPUs[0]) != 2 || topo.NodeCPUs[0][0] != 0 || topo.NodeCPUs[1][0] != 2 {
		t.Errorf("wrong cpu map: %v", topo.NodeCPUs)
	}
	// Workers split into contiguous per-node blocks.
	if topo.NodeOf(0, 4) != 0 || topo.NodeOf(1, 4) != 0 || topo.NodeOf(2, 4) != 1 || topo.NodeOf(3, 4) != 1 {
		t.Error("NodeOf must assign contiguous worker blocks to nodes")
	}
}

func TestDetectTopologyFallback(t *testing.T) {
	topo := detectTopology("/definitely/not/a/sysfs/path")
	if topo.Nodes() != 1 {
		t.Fatalf("missing sysfs must fall back to 1 node, got %d", topo.Nodes())
	}
	if topo.NodeOf(5, 8) != 0 {
		t.Error("single-node topology must map every worker to node 0")
	}
}

func TestNodeArenaClampsAndPersists(t *testing.T) {
	a := NodeArena(0)
	if a == nil {
		t.Fatal("nil arena")
	}
	if NodeArena(0) != a {
		t.Error("NodeArena must return the same arena per node")
	}
	if NodeArena(-1) != a || NodeArena(999) == nil {
		t.Error("out-of-range nodes must clamp, not fail")
	}
}

func TestBatchPartBoundsPartitionChunks(t *testing.T) {
	for _, nchunks := range []int{1, 2, 7, 31, 32, 33, 1000} {
		for _, nparts := range []int{1, 2, 5, maxBatchParts} {
			b := &batch{nchunks: nchunks, nparts: nparts}
			prev := 0
			for p := 0; p < nparts; p++ {
				lo, hi := b.partBounds(p)
				if lo != prev || hi < lo {
					t.Fatalf("nchunks=%d nparts=%d: part %d = [%d,%d), prev end %d", nchunks, nparts, p, lo, hi, prev)
				}
				prev = hi
			}
			if prev != nchunks {
				t.Fatalf("nchunks=%d nparts=%d: parts cover %d chunks", nchunks, nparts, prev)
			}
		}
	}
}
