package device

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/vec"
)

// refFourLane reproduces the documented reduction order of one chunk —
// lane ℓ sums elements ℓ, ℓ+4, …, lanes combine as ((s0+s1)+s2)+s3, tail
// folds on in index order — for an arbitrary element function. The kernel
// implementations must match it BIT-exactly.
func refFourLane(n int, f func(k int) float64) float64 {
	var lane [4]float64
	k := 0
	for ; k+4 <= n; k += 4 {
		for l := 0; l < 4; l++ {
			lane[l] += f(k + l)
		}
	}
	s := ((lane[0] + lane[1]) + lane[2]) + lane[3]
	for ; k < n; k++ {
		s += f(k)
	}
	return s
}

func TestChunkKernelsMatchDocumentedOrder(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 1023, 4096} {
		x, y := randVec(r, n), randVec(r, n)
		if got, want := dotChunk(x, y), refFourLane(n, func(k int) float64 { return x[k] * y[k] }); got != want {
			t.Errorf("n=%d: dotChunk = %v, want %v (order contract)", n, got, want)
		}
		if got, want := sumChunk(x), refFourLane(n, func(k int) float64 { return x[k] }); got != want {
			t.Errorf("n=%d: sumChunk = %v, want %v", n, got, want)
		}
		if got, want := norm1Chunk(x), refFourLane(n, func(k int) float64 { return math.Abs(x[k]) }); got != want {
			t.Errorf("n=%d: norm1Chunk = %v, want %v", n, got, want)
		}
		if got, want := norm2SqChunk(x), refFourLane(n, func(k int) float64 { return x[k] * x[k] }); got != want {
			t.Errorf("n=%d: norm2SqChunk = %v, want %v", n, got, want)
		}
		lambda := 0.37
		if got, want := residSqChunk(x, y, lambda), refFourLane(n, func(k int) float64 {
			r := x[k] - lambda*y[k]
			return r * r
		}); got != want {
			t.Errorf("n=%d: residSqChunk = %v, want %v", n, got, want)
		}
		// Max is exactly order-independent; still must equal the serial max.
		if got, want := normInfChunk(x), vec.NormInf(x); got != want {
			t.Errorf("n=%d: normInfChunk = %v, want %v", n, got, want)
		}
	}
}

func TestReductionsBitIdenticalAcrossRuns(t *testing.T) {
	r := rng.New(11)
	n := 100003 // odd: exercises chunk tails
	x, y := randVec(r, n), randVec(r, n)
	for name, d := range devices() {
		dot, sum, n1, n2, ninf := d.Dot(x, y), d.Sum(x), d.Norm1(x), d.Norm2(x), d.NormInf(x)
		res := d.ResidualNorm2(x, y, 0.4)
		for run := 0; run < 20; run++ {
			if d.Dot(x, y) != dot || d.Sum(x) != sum || d.Norm1(x) != n1 ||
				d.Norm2(x) != n2 || d.NormInf(x) != ninf || d.ResidualNorm2(x, y, 0.4) != res {
				t.Fatalf("%s: reduction not bit-identical across runs (run %d)", name, run)
			}
		}
	}
}

func TestReductionsCloseToSerialVec(t *testing.T) {
	r := rng.New(13)
	n := 1 << 16
	x, y := randVec(r, n), randVec(r, n)
	for name, d := range devices() {
		if got, want := d.Dot(x, y), vec.Dot(x, y); math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Errorf("%s: Dot = %v, want ≈ %v", name, got, want)
		}
		if got, want := d.Norm2(x), vec.Norm2(x); math.Abs(got-want) > 1e-9*want+1e-12 {
			t.Errorf("%s: Norm2 = %v, want ≈ %v", name, got, want)
		}
		want := 0.0
		for i := range x {
			rr := x[i] - 0.25*y[i]
			want += rr * rr
		}
		want = math.Sqrt(want)
		if got := d.ResidualNorm2(x, y, 0.25); math.Abs(got-want) > 1e-9*want+1e-12 {
			t.Errorf("%s: ResidualNorm2 = %v, want ≈ %v", name, got, want)
		}
	}
}

func TestElementwiseKernelsBitIdenticalToVec(t *testing.T) {
	r := rng.New(17)
	for _, n := range []int{0, 1, 3, 4, 5, 1000, 99991} {
		x, y := randVec(r, n), randVec(r, n)
		for name, d := range devices() {
			xs, ys := append([]float64(nil), x...), append([]float64(nil), y...)
			xd, yd := append([]float64(nil), x...), append([]float64(nil), y...)

			vec.AXPY(1.75, xs, ys)
			d.AXPY(1.75, xd, yd)
			if n > 0 && vec.DistInf(ys, yd) != 0 {
				t.Fatalf("%s n=%d: AXPY not bit-identical to vec.AXPY", name, n)
			}

			vec.Scale(xs, 0.3)
			d.Scale(xd, 0.3)
			if n > 0 && vec.DistInf(xs, xd) != 0 {
				t.Fatalf("%s n=%d: Scale not bit-identical to vec.Scale", name, n)
			}

			ms, md := make([]float64, n), make([]float64, n)
			vec.Mul(ms, xs, ys)
			d.Mul(md, xd, yd)
			if n > 0 && vec.DistInf(ms, md) != 0 {
				t.Fatalf("%s n=%d: Mul not bit-identical to vec.Mul", name, n)
			}
		}
	}
}
