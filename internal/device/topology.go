package device

import (
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file discovers the machine topology the pool pins against. Real NUMA
// machines expose their node → CPU map under /sys/devices/system/node; on
// single-socket boxes (and on non-Linux hosts, where the directory does not
// exist) detection degrades to one node holding every CPU, and all
// node-keyed behaviour — worker pinning, node arenas — collapses to the
// per-P fallback without any special casing at the call sites.

// Topology is the detected node → CPU map of the host.
type Topology struct {
	// NodeCPUs[k] lists the CPU ids of NUMA node k, sorted ascending.
	// Always has at least one node; node 0 is never empty.
	NodeCPUs [][]int
}

// Nodes returns the number of NUMA nodes (≥ 1).
func (t *Topology) Nodes() int { return len(t.NodeCPUs) }

// NodeOf maps worker w of a pool of size total onto a node: workers are
// split into contiguous blocks, one block per node, so neighbouring workers
// (which claim neighbouring chunk parts under the sticky dispatch) share a
// node and its last-level cache.
func (t *Topology) NodeOf(w, total int) int {
	n := len(t.NodeCPUs)
	if n <= 1 || total <= 0 {
		return 0
	}
	if w < 0 {
		w = 0
	}
	node := w * n / total
	if node >= n {
		node = n - 1
	}
	return node
}

var topo struct {
	once sync.Once
	t    Topology
}

// Topo returns the host topology, detected once per process.
func Topo() *Topology {
	topo.once.Do(func() { topo.t = detectTopology("/sys/devices/system/node") })
	return &topo.t
}

// detectTopology parses the node layout from a sysfs-style tree. Any error
// (missing directory, unreadable or malformed cpulist) yields the
// single-node fallback: topology awareness must never be a hard dependency.
func detectTopology(sysNodeDir string) Topology {
	fallback := Topology{NodeCPUs: [][]int{{0}}}
	entries, err := os.ReadDir(sysNodeDir)
	if err != nil {
		return fallback
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "node") {
			continue
		}
		id, err := strconv.Atoi(name[len("node"):])
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return fallback
	}
	sort.Ints(ids)
	t := Topology{}
	for _, id := range ids {
		raw, err := os.ReadFile(sysNodeDir + "/node" + strconv.Itoa(id) + "/cpulist")
		if err != nil {
			continue
		}
		cpus := parseCPUList(strings.TrimSpace(string(raw)))
		if len(cpus) > 0 {
			t.NodeCPUs = append(t.NodeCPUs, cpus)
		}
	}
	if len(t.NodeCPUs) == 0 {
		return fallback
	}
	return t
}

// parseCPUList parses the kernel's cpulist format: comma-separated entries
// that are either single CPUs ("7") or inclusive ranges ("0-3"). Returns nil
// on any malformed entry.
func parseCPUList(s string) []int {
	if s == "" {
		return nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				return nil
			}
			for c := a; c <= b; c++ {
				cpus = append(cpus, c)
			}
		} else {
			c, err := strconv.Atoi(part)
			if err != nil {
				return nil
			}
			cpus = append(cpus, c)
		}
	}
	sort.Ints(cpus)
	return cpus
}
