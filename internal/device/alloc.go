package device

// Aligned, huge-page-friendly vector allocation for the solver's Θ(N)
// scratch. Two concerns are separated on purpose:
//
//   - Alignment. AlignedFloat64s over-allocates from the Go heap and
//     re-slices to a 64-byte boundary, so a vector's first element starts a
//     cache line (and an AVX-512 lane). The memory stays ordinary GC-managed
//     heap — no mmap lifetime to track, no leak on reshape.
//   - Page size. For allocations at or above hugeAdviseMin the interior
//     2 MiB-aligned span is advised MADV_HUGEPAGE (Linux; no-op elsewhere),
//     so ν ≥ 18 vectors are backed by transparent huge pages when the
//     kernel agrees: one TLB entry per 2 MiB instead of per 4 KiB, which is
//     where the stage sweeps of the butterfly kernels spend their TLB
//     budget.
//
// First-touch placement is the third leg: pages are physically allocated on
// the node of the CPU that first writes them, so Device.AllocVector faults
// the pages in with the same sticky worker→chunk map the stage kernels use,
// and repeated passes find their rows node-local.

import "unsafe"

// CacheLine is the alignment (bytes) of vectors returned by the allocators
// here; 64 bytes is a cache line and an AVX-512 register on amd64.
const CacheLine = 64

// hugeAdviseMin is the allocation size (in float64s) from which the huge-page
// advice is worth a syscall: 2 MiB = one huge page = 2^18 float64s, i.e.
// vectors of ν ≥ 18.
const hugeAdviseMin = 1 << 18

// AlignedFloat64s returns a zeroed slice of n float64s whose first element
// is CacheLine-aligned, with len == cap == n. Large allocations are advised
// toward huge pages. n ≤ 0 returns an empty slice.
func AlignedFloat64s(n int) []float64 {
	if n <= 0 {
		return nil
	}
	const pad = CacheLine / 8 // extra elements to guarantee an aligned start
	buf := make([]float64, n+pad)
	addr := uintptr(unsafe.Pointer(&buf[0]))
	off := 0
	if rem := addr % CacheLine; rem != 0 {
		off = int((CacheLine - rem) / 8)
	}
	v := buf[off : off+n : off+n]
	if n >= hugeAdviseMin {
		adviseHuge(v)
	}
	return v
}

// IsAligned reports whether v starts on a CacheLine boundary (true for the
// trivial empty slice).
func IsAligned(v []float64) bool {
	if len(v) == 0 {
		return true
	}
	return uintptr(unsafe.Pointer(&v[0]))%CacheLine == 0
}

// AllocVector returns an aligned, huge-page-advised vector of n float64s,
// first-touched serially by the calling goroutine (its pages land on the
// caller's NUMA node). Use Device.AllocVector when the vector will be swept
// by pool workers.
func AllocVector(n int) []float64 {
	v := AlignedFloat64s(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// AllocVector returns an aligned, huge-page-advised vector of n float64s
// whose pages are first-touched by the device's workers under the same
// sticky chunk→worker map every kernel launch uses, so on NUMA hosts each
// page is faulted onto the node of the worker that will sweep it.
func (d *Device) AllocVector(n int) []float64 {
	v := AlignedFloat64s(n)
	if n > 0 {
		d.LaunchRange(n, func(lo, hi int) {
			s := v[lo:hi]
			for i := range s {
				s[i] = 0
			}
		})
	}
	return v
}
