package device

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
	"repro/internal/vec"
)

// Tests for the persistent worker-pool dispatch and the fused stage-group
// launch API. The pool is process-wide and lazily started; these tests
// exercise coverage, nesting, concurrent submitters and the spawn/pool
// equivalence the benchmarks rely on.

func TestLaunchStagesCoversAllItems(t *testing.T) {
	for name, d := range devices() {
		for _, n := range []int{0, 1, 63, 4096} {
			hits := make([]atomic.Int32, n)
			d.LaunchStages(3, n, 128, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("%s: item %d covered %d times (n=%d)", name, i, hits[i].Load(), n)
				}
			}
		}
	}
}

func TestLaunchStagesStatsAccounting(t *testing.T) {
	d := New(4, WithGrain(64))
	d.LaunchStages(3, 100, 16, func(lo, hi int) {})
	d.LaunchStages(2, 50, 1, func(lo, hi int) {})
	d.LaunchStages(2, 0, 1, func(lo, hi int) {})  // empty grid: not counted
	d.LaunchStages(0, 10, 1, func(lo, hi int) {}) // no stages: not counted
	s := d.Stats()
	if s.StageLaunches != 2 {
		t.Errorf("StageLaunches = %d, want 2", s.StageLaunches)
	}
	if s.StagesFused != 5 {
		t.Errorf("StagesFused = %d, want 5", s.StagesFused)
	}
	if s.Launches != 2 {
		t.Errorf("Launches = %d, want 2", s.Launches)
	}
	if s.ThreadsTotal != 150 {
		t.Errorf("ThreadsTotal = %d, want 150", s.ThreadsTotal)
	}
}

func TestLaunchStagesWeightScalesGrain(t *testing.T) {
	// With grain 4096 and weight 2048, a grid of 8 items must split across
	// workers (effective grain 2), not run as one serial chunk.
	d := New(4) // default grain 4096
	var chunks atomic.Int32
	d.LaunchStages(1, 8, 2048, func(lo, hi int) { chunks.Add(1) })
	if chunks.Load() < 2 {
		t.Errorf("weighted stage launch ran %d chunks, want ≥ 2", chunks.Load())
	}
}

func TestSpawnDispatchMatchesPool(t *testing.T) {
	r := rng.New(21)
	n := 100000
	x := randVec(r, n)
	pooled := New(6, WithGrain(32))
	spawned := New(6, WithGrain(32), WithSpawnDispatch())

	yp, ys := make([]float64, n), make([]float64, n)
	pooled.LaunchRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			yp[i] = 3*x[i] + 1
		}
	})
	spawned.LaunchRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ys[i] = 3*x[i] + 1
		}
	})
	if vec.DistInf(yp, ys) != 0 {
		t.Error("pool and spawn dispatch produced different results")
	}
	if got, want := pooled.ReduceSum(n, func(i int) float64 { return x[i] }),
		spawned.ReduceSum(n, func(i int) float64 { return x[i] }); got != want {
		t.Errorf("pooled ReduceSum = %v, spawn = %v (must be bit-identical)", got, want)
	}
}

func TestNestedLaunchDoesNotDeadlock(t *testing.T) {
	// A kernel body that itself launches on the pool must complete: the
	// caller always participates in its own batch, so progress never depends
	// on a parked worker being free.
	d := New(8, WithGrain(1))
	var count atomic.Int64
	d.LaunchRange(16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.LaunchRange(8, func(lo2, hi2 int) {
				count.Add(int64(hi2 - lo2))
			})
		}
	})
	if count.Load() != 16*8 {
		t.Errorf("nested launches covered %d items, want %d", count.Load(), 16*8)
	}
}

func TestConcurrentLaunchesFromManyGoroutines(t *testing.T) {
	// The pool serves concurrent submitters independently; each launch must
	// still cover its own grid exactly once.
	d := New(4, WithGrain(8))
	const G, n = 16, 3000
	var wg sync.WaitGroup
	wg.Add(G)
	errs := make(chan string, G)
	for g := 0; g < G; g++ {
		go func() {
			defer wg.Done()
			hits := make([]atomic.Int32, n)
			d.LaunchRange(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					errs <- "item covered wrong number of times under concurrent launches"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestPoolDispatchDoesNotLoseChunksUnderLoad(t *testing.T) {
	// Saturate the pool task channel so some batch sends fall back to
	// caller-runs-all; every chunk must still execute exactly once.
	d := New(16, WithGrain(1))
	for round := 0; round < 50; round++ {
		var sum atomic.Int64
		n := 257
		d.LaunchRange(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sum.Add(int64(i))
			}
		})
		if want := int64(n*(n-1)) / 2; sum.Load() != want {
			t.Fatalf("round %d: sum = %d, want %d", round, sum.Load(), want)
		}
	}
}
