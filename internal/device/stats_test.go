package device

import "testing"

func TestArenaStatIdxMapping(t *testing.T) {
	cases := []struct{ node, idx int }{
		{-1, 0}, {-7, 0}, // unattributed bucket
		{0, 1}, {1, 2},
		{maxStatNodes - 1, maxStatNodes},
		{maxStatNodes, maxStatNodes},     // folds into the last bucket
		{maxStatNodes + 9, maxStatNodes}, // ditto
	}
	for _, c := range cases {
		if got := arenaStatIdx(c.node); got != c.idx {
			t.Errorf("arenaStatIdx(%d) = %d, want %d", c.node, got, c.idx)
		}
	}
}

// TestArenaAccountingThroughAllocReset checks the always-on occupancy
// counters the telemetry sampler polls: Alloc adds the rounded bump step to
// used (and slab growth to footprint), Reset retracts exactly the arena's
// own contribution, and the high-water only ever rises. All assertions are
// deltas against the process-wide totals, since other tests in the package
// share the buckets.
func TestArenaAccountingThroughAllocReset(t *testing.T) {
	foot0, used0, _ := ArenaTotals()

	a := NewArena(1024)
	if v := a.Alloc(64); len(v) != 64 {
		t.Fatalf("Alloc(64) len = %d", len(v))
	}
	foot1, used1, hi1 := ArenaTotals()
	if foot1-foot0 != 1024 {
		t.Fatalf("footprint delta = %d, want 1024 (one slab)", foot1-foot0)
	}
	if used1-used0 != 64 {
		t.Fatalf("used delta = %d, want 64", used1-used0)
	}

	// 100 floats round up to a whole number of cache lines (13 lines = 104).
	a.Alloc(100)
	_, used2, _ := ArenaTotals()
	if used2-used1 != 104 {
		t.Fatalf("rounded bump delta = %d, want 104", used2-used1)
	}

	// Oversized grab gets a dedicated slab of exactly the rounded size.
	a.Alloc(2048)
	foot3, used3, _ := ArenaTotals()
	if foot3-foot1 != 2048 {
		t.Fatalf("oversized slab footprint delta = %d, want 2048", foot3-foot1)
	}
	if used3-used2 != 2048 {
		t.Fatalf("oversized used delta = %d, want 2048", used3-used2)
	}

	a.Reset()
	foot4, used4, hi4 := ArenaTotals()
	if used4 != used0 {
		t.Fatalf("Reset did not retract: used = %d, want %d", used4, used0)
	}
	if foot4 != foot3 {
		t.Fatalf("Reset released slabs: footprint %d → %d", foot3, foot4)
	}
	if hi4 < hi1 {
		t.Fatalf("high-water regressed: %d → %d", hi1, hi4)
	}

	// Unattributed arenas surface as the Node == -1 bucket.
	found := false
	for _, st := range AllArenaStats() {
		if st.Node == -1 {
			found = true
			if st.FootprintFloats < 1024 {
				t.Fatalf("unattributed footprint = %d", st.FootprintFloats)
			}
		}
	}
	if !found {
		t.Fatal("no unattributed bucket in AllArenaStats after growth")
	}
}

// TestWorkerArenaAttributesToNode: NewWorkerArena books its occupancy under
// the worker's NUMA node, not the unattributed bucket.
func TestWorkerArenaAttributesToNode(t *testing.T) {
	node := Topo().NodeOf(0, 1)
	idx := arenaStatIdx(node)
	used0 := arenaAcct[idx].used.Load()

	a := NewWorkerArena(0, 1)
	if a.statIdx != idx {
		t.Fatalf("statIdx = %d, want %d (node %d)", a.statIdx, idx, node)
	}
	a.Alloc(64)
	if delta := arenaAcct[idx].used.Load() - used0; delta != 64 {
		t.Fatalf("node bucket used delta = %d, want 64", delta)
	}
	a.Reset()
	if delta := arenaAcct[idx].used.Load() - used0; delta != 0 {
		t.Fatalf("node bucket not retracted: delta = %d", delta)
	}

	// A degenerate pool size is clamped rather than trusted.
	b := NewWorkerArena(0, 0)
	if b.statIdx != arenaStatIdx(Topo().NodeOf(0, 1)) {
		t.Fatalf("clamped statIdx = %d", b.statIdx)
	}
}

// TestPoolStatsNowIsPassive: reading pool stats never starts the pool, and
// the chunk counters are monotone.
func TestPoolStatsNowIsPassive(t *testing.T) {
	before := poolAcct.started.Load()
	st1 := PoolStatsNow()
	if poolAcct.started.Load() != before {
		t.Fatal("PoolStatsNow flipped the started flag")
	}
	if st1.ChunksClaimed < 0 || st1.ChunksStolen < 0 || st1.QueueDepth < 0 {
		t.Fatalf("negative counters: %+v", st1)
	}
	if !before && st1.Workers != 0 {
		t.Fatalf("workers reported before pool start: %+v", st1)
	}
	st2 := PoolStatsNow()
	if st2.ChunksClaimed < st1.ChunksClaimed || st2.ChunksStolen < st1.ChunksStolen {
		t.Fatalf("counters regressed: %+v then %+v", st1, st2)
	}
}
