package batch

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestLiveStatsTrackRuns checks the always-on scheduler counters the
// telemetry sampler polls: planned grows by the task count of every Run,
// done catches up when the run drains, and inflight returns to its baseline.
// Deltas, not absolutes — the counters accumulate across the whole test
// binary.
func TestLiveStatsTrackRuns(t *testing.T) {
	inflight0, done0, planned0 := LiveStats()

	var sawInflight atomic.Bool
	err := Run(5, 2, func(i int, s *Slot) error {
		if in, _, _ := LiveStats(); in > inflight0 {
			sawInflight.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawInflight.Load() {
		t.Error("inflight never rose above baseline during a run")
	}

	inflight1, done1, planned1 := LiveStats()
	if inflight1 != inflight0 {
		t.Fatalf("inflight did not drain: %d, want %d", inflight1, inflight0)
	}
	if planned1-planned0 != 5 {
		t.Fatalf("planned delta = %d, want 5", planned1-planned0)
	}
	if done1-done0 != 5 {
		t.Fatalf("done delta = %d, want 5", done1-done0)
	}

	// Failing tasks still count as done — progress must reach 100% even on
	// a partially failed sweep, or the dashboard shows a stuck chain.
	boom := errors.New("boom")
	if err := Run(3, 1, func(i int, s *Slot) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v", err)
	}
	inflight2, done2, planned2 := LiveStats()
	if inflight2 != inflight0 || done2-done1 != 3 || planned2-planned1 != 3 {
		t.Fatalf("after failing run: inflight=%d done Δ=%d planned Δ=%d",
			inflight2, done2-done1, planned2-planned1)
	}
}
