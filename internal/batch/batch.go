// Package batch schedules many independent eigensolves over a bounded set
// of worker goroutines. The workloads the paper actually reports — the
// Figure 1 error-threshold curves, threshold bisection, speedup and
// accuracy scans — are sweeps of tens to hundreds of eigensolves that are
// mutually independent, so solve-level parallelism composes with the
// kernel-level parallelism of internal/device: one shared device serves
// the BLAS kernels while the scheduler here keeps several power
// iterations in flight.
//
// Design constraints, in order:
//
//   - Deterministic results. Tasks are identified by their index; every
//     task writes into its own caller-owned result slot, so the output
//     order never depends on scheduling. Combined with the worker-count
//     invariance of the blocked kernels (see internal/mutation), a sweep
//     is bit-identical at every worker count.
//   - Bounded memory. At most `workers` tasks are in flight, and each
//     in-flight task borrows a Slot of reusable scratch vectors, so a
//     500-point sweep allocates the scratch of `workers` solves, not 500.
//   - Warm-start friendliness. Continuation along a monotone sweep is
//     inherently sequential, so the unit of scheduling for warm-started
//     sweeps is a fixed-length chain of consecutive points (see Chains);
//     the chain length is independent of the worker count, which keeps
//     warm-started results worker-count invariant too.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/span"
)

// Batch-layer span names (internal/span): SpanRun covers a whole Run call,
// SpanTask one task execution (its End args are slot and task index, so the
// exported trace shows slot occupancy over time).
const (
	SpanRun  = "run"
	SpanTask = "task"
)

// Observer receives scheduler lifecycle callbacks: run boundaries and
// per-task start/done events with slot attribution, the source of the
// qs_batch_* occupancy and task-latency metrics. The hook is nil by
// default (disabled cost: one atomic pointer load per Run); TaskStart and
// TaskDone arrive concurrently from the worker goroutines, so
// implementations must be safe for concurrent use.
type Observer interface {
	RunStart(tasks, workers int)
	TaskStart(slot, task int)
	TaskDone(slot, task int, d time.Duration, failed bool)
	RunDone(tasks int, d time.Duration)
}

type observerHook struct{ o Observer }

var schedObs atomic.Pointer[observerHook]

// SetObserver installs o as the process-wide scheduler observer (nil
// uninstalls). Call at startup, not concurrently with running batches.
func SetObserver(o Observer) {
	if o == nil {
		schedObs.Store(nil)
		return
	}
	schedObs.Store(&observerHook{o: o})
}

// PanicHook receives a task panic caught in a scheduler worker: the task
// index, the recovered value, and the worker's stack at the panic site.
// The worker re-panics with the original value after the hook returns, so
// installing a hook never changes crash semantics — it only gives the
// flight recorder a chance to dump a diagnostic bundle first. Hooks may
// be called concurrently and must not panic themselves.
type PanicHook func(task int, recovered any, stack []byte)

type panicHookHolder struct{ h PanicHook }

var panicHook atomic.Pointer[panicHookHolder]

// SetPanicHook installs h as the process-wide worker panic hook (nil
// uninstalls). The disabled cost is one atomic pointer load per task.
func SetPanicHook(h PanicHook) {
	if h == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&panicHookHolder{h: h})
}

// runHooked executes task(i, s) with a recover bracket that feeds the
// panic hook and then re-panics. Split from runOne so the nil-hook path
// never pays for the deferred closure.
func runHooked(hook PanicHook, h *observerHook, task func(i int, s *Slot) error, i int, s *Slot) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			hook(i, r, buf)
			panic(r)
		}
	}()
	if h == nil {
		return task(i, s)
	}
	return h.runTask(task, i, s)
}

// runTask executes one task under the observer's start/done bracket.
func (h *observerHook) runTask(task func(i int, s *Slot) error, i int, s *Slot) error {
	h.o.TaskStart(s.id, i)
	start := time.Now()
	err := task(i, s)
	h.o.TaskDone(s.id, i, time.Since(start), err != nil)
	return err
}

// Live scheduler counters for the telemetry sampler: unlike the Observer
// hook these are always on (a task is a whole eigensolve, so two atomic
// adds per task are free) and therefore readable even when no metrics
// observer was installed. Planned accumulates the task count of every Run;
// done/planned is the sweep's chain-progress signal.
var live struct {
	inflight atomic.Int64
	done     atomic.Int64
	planned  atomic.Int64
}

// LiveStats reads the always-on scheduler counters: tasks currently
// executing, tasks completed, and tasks ever submitted across all runs.
func LiveStats() (inflight, done, planned int64) {
	return live.inflight.Load(), live.done.Load(), live.planned.Load()
}

// DefaultChainLen is the number of consecutive sweep points per warm-start
// chain when the caller does not choose one. Within a chain, point k seeds
// the solve of point k+1; across chains solves are independent, which is
// what the scheduler parallelizes. Eight points per chain keeps most solves
// warm while still exposing parallelism on ≥ 16-point sweeps.
const DefaultChainLen = 8

// Workers normalizes a requested worker count: n ≤ 0 selects all available
// cores (the solver convention shared with device.New), anything else is
// returned as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Slot is the reusable per-worker scratch of a batched run. Each of the
// `workers` goroutines owns one Slot for the whole run and hands it to
// every task it executes, so tasks can keep Θ(N) vectors (power-iteration
// iterates, warm-start seeds) alive across the tasks of one worker without
// re-allocating per task. Vectors come from a slot-owned device.Arena —
// cache-line aligned, huge-page advised, and packed per worker, so the
// whole scratch of one worker is a handful of contiguous slabs whose pages
// are first-touched (hence NUMA-placed) by the goroutine that sweeps them.
type Slot struct {
	id      int
	workers int
	arena   *device.Arena
	bufs    map[int][]float64
}

// ID returns the slot's index in [0, workers).
func (s *Slot) ID() int { return s.id }

// Vec returns the slot-owned float64 buffer with the given key, sized to
// n. The buffer is reused across tasks (contents are arbitrary on entry);
// it is grown or reshaped only when n changes. When any key is reshaped
// the slot's arena is recycled wholesale: all keys are dropped and
// re-grabbed at their next request, which keeps the arena from leaking
// abandoned sizes across a sweep that changes ν.
func (s *Slot) Vec(key, n int) []float64 {
	if s.bufs == nil {
		// Attribute the slot's arena to the worker's NUMA node so the
		// telemetry's per-node occupancy matches first-touch placement.
		s.arena = device.NewWorkerArena(s.id, s.workers)
		s.bufs = make(map[int][]float64)
	}
	b, ok := s.bufs[key]
	if ok && len(b) == n {
		return b
	}
	if ok {
		// Reshape: recycle every grab (they alias the recycled slabs, and
		// the Vec contract already says contents are arbitrary on entry).
		s.arena.Reset()
		clear(s.bufs)
	}
	b = s.arena.Alloc(n)
	for i := range b {
		b[i] = 0
	}
	s.bufs[key] = b
	return b
}

// Run executes task(i, slot) for every i in [0, n) over min(workers, n)
// goroutines. Tasks are claimed from a shared queue in index order; each
// goroutine reuses one Slot for all tasks it executes. Run returns after
// every launched task finished. If tasks fail, the error of the
// lowest-indexed failing task is returned (deterministic regardless of
// scheduling); remaining queued tasks are still executed, so the caller's
// result slice is fully populated for the indices that succeeded.
func Run(n, workers int, task func(i int, s *Slot) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	h := schedObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerBatch, SpanRun)
	}
	live.planned.Add(int64(n))
	if h != nil {
		h.o.RunStart(n, workers)
		defer func(start time.Time) { h.o.RunDone(n, time.Since(start)) }(time.Now())
	}
	if workers == 1 {
		// Serial fast path: no goroutines, no synchronization — the
		// reference execution the parallel path is tested against.
		s := &Slot{id: 0, workers: 1}
		var firstErr error
		firstIdx := n
		for i := 0; i < n; i++ {
			err := runOne(h, sr, task, i, s)
			if err != nil && i < firstIdx {
				firstErr, firstIdx = fmt.Errorf("batch: task %d: %w", i, err), i
			}
		}
		span.End(sp, int64(n), int64(workers))
		return firstErr
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
		firstIdx = n
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot *Slot) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := runOne(h, sr, task, i, slot); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstErr, firstIdx = fmt.Errorf("batch: task %d: %w", i, err), i
					}
					mu.Unlock()
				}
			}
		}(&Slot{id: w, workers: workers})
	}
	wg.Wait()
	span.End(sp, int64(n), int64(workers))
	return firstErr
}

// runOne executes task(i, s), bracketed by the observer and a task span
// when installed. Worker goroutines open their task spans on their own
// goroutine, so each worker is its own track in the exported trace.
func runOne(h *observerHook, sr span.Recorder, task func(i int, s *Slot) error, i int, s *Slot) error {
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerBatch, SpanTask)
	}
	live.inflight.Add(1)
	defer func() {
		live.inflight.Add(-1)
		live.done.Add(1)
	}()
	var err error
	if ph := panicHook.Load(); ph != nil {
		err = runHooked(ph.h, h, task, i, s)
	} else if h == nil {
		err = task(i, s)
	} else {
		err = h.runTask(task, i, s)
	}
	span.End(sp, int64(s.id), int64(i))
	return err
}

// Chain is one contiguous run of sweep points, [Lo, Hi), processed
// sequentially by a single task so each point can seed the next
// (warm-start continuation).
type Chain struct{ Lo, Hi int }

// Chains partitions [0, n) into contiguous chains of chainLen points
// (the last chain may be shorter). chainLen ≤ 0 selects DefaultChainLen.
// The partition depends only on n and chainLen — never on the worker
// count — so scheduling chains in parallel yields results bit-identical
// to processing them serially.
func Chains(n, chainLen int) []Chain {
	if n <= 0 {
		return nil
	}
	if chainLen <= 0 {
		chainLen = DefaultChainLen
	}
	out := make([]Chain, 0, (n+chainLen-1)/chainLen)
	for lo := 0; lo < n; lo += chainLen {
		hi := lo + chainLen
		if hi > n {
			hi = n
		}
		out = append(out, Chain{Lo: lo, Hi: hi})
	}
	return out
}
