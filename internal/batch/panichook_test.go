package batch

import (
	"fmt"
	"strings"
	"testing"
)

func TestPanicHookObservesAndRepanics(t *testing.T) {
	type capture struct {
		task      int
		recovered any
		stack     string
	}
	var got *capture
	SetPanicHook(func(task int, recovered any, stack []byte) {
		got = &capture{task: task, recovered: recovered, stack: string(stack)}
	})
	defer SetPanicHook(nil)

	// workers=1 runs tasks on the caller's goroutine, so the re-panic is
	// recoverable here; crash semantics on worker goroutines are identical.
	var repanicked any
	func() {
		defer func() { repanicked = recover() }()
		_ = Run(3, 1, func(i int, s *Slot) error {
			if i == 1 {
				panic("task one exploded")
			}
			return nil
		})
	}()

	if repanicked != "task one exploded" {
		t.Fatalf("panic was swallowed: recovered %v", repanicked)
	}
	if got == nil {
		t.Fatal("panic hook did not fire")
	}
	if got.task != 1 || got.recovered != "task one exploded" {
		t.Fatalf("hook saw (task=%d, recovered=%v)", got.task, got.recovered)
	}
	if !strings.Contains(got.stack, "panichook_test.go") {
		t.Fatalf("hook stack does not point at the panic site:\n%s", got.stack)
	}
}

func TestPanicHookNilPathUnchanged(t *testing.T) {
	SetPanicHook(nil)
	var ran int
	err := Run(4, 1, func(i int, s *Slot) error {
		ran++
		if i == 2 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if ran != 4 {
		t.Fatalf("ran %d tasks, want 4", ran)
	}
	if err == nil || !strings.Contains(err.Error(), "task 2") {
		t.Fatalf("err = %v, want task 2 failure", err)
	}
}
