package batch

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 53
		counts := make([]atomic.Int32, n)
		err := Run(n, workers, func(i int, s *Slot) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Errorf("workers=%d: task %d executed %d times", workers, i, c)
			}
		}
	}
}

func TestRunDeterministicResultOrdering(t *testing.T) {
	// Results written by index must be independent of scheduling.
	const n = 40
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		if err := Run(n, workers, func(i int, s *Slot) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := Run(20, workers, func(i int, s *Slot) error {
			if i == 7 || i == 13 {
				return sentinel
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if !strings.Contains(err.Error(), "task 7") {
			t.Errorf("workers=%d: want the lowest-indexed failure reported, got %v", workers, err)
		}
	}
}

func TestRunBoundsSlots(t *testing.T) {
	// At most `workers` distinct slots may ever be observed.
	const n, workers = 64, 3
	var mu sync.Mutex
	seen := map[int]bool{}
	if err := Run(n, workers, func(i int, s *Slot) error {
		mu.Lock()
		seen[s.ID()] = true
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) > workers {
		t.Errorf("observed %d slots, want ≤ %d", len(seen), workers)
	}
}

func TestSlotVecReuse(t *testing.T) {
	s := &Slot{}
	a := s.Vec(0, 100)
	b := s.Vec(0, 100)
	if &a[0] != &b[0] {
		t.Error("same key and size must return the same buffer")
	}
	c := s.Vec(1, 100)
	if &a[0] == &c[0] {
		t.Error("distinct keys must return distinct buffers")
	}
	d := s.Vec(0, 50)
	if len(d) != 50 {
		t.Errorf("resized buffer has length %d", len(d))
	}
}

func TestChainsPartition(t *testing.T) {
	cs := Chains(19, 8)
	if len(cs) != 3 || cs[0] != (Chain{0, 8}) || cs[1] != (Chain{8, 16}) || cs[2] != (Chain{16, 19}) {
		t.Errorf("chains = %v", cs)
	}
	if got := Chains(0, 8); got != nil {
		t.Errorf("empty range gave %v", got)
	}
	// Default chain length kicks in for chainLen <= 0.
	if cs := Chains(DefaultChainLen+1, 0); len(cs) != 2 {
		t.Errorf("default chain split = %v", cs)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit count must pass through")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("non-positive count must select at least one worker")
	}
}
