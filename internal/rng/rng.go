// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used for reproducible random fitness landscapes and for
// property-based tests. It implements xoshiro256** seeded through
// splitmix64, so streams are identical across platforms and Go releases
// (unlike math/rand's global source, whose sequence is not guaranteed).
package rng

import (
	"math"
	mathbits "math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed via splitmix64, which
// guarantees a well-mixed nonzero internal state for any seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Split returns a new independent Source derived from the current state.
// The parent stream advances by one step.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits,
// the η_rnd(i) of the paper's random landscape (Eq. 13).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	threshold := (-n) % n
	for {
		hi, lo := mathbits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// IntRange returns a uniform int in [lo, hi]. It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + int(r.Uint64n(uint64(hi-lo+1)))
}

// Normal returns a standard normal variate via the polar Marsaglia method.
func (r *Source) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm fills out with a uniform random permutation of 0..len(out)-1
// using Fisher–Yates.
func (r *Source) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		out[i], out[j] = out[j], out[i]
	}
}
