package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %g, want ≈ 0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %g, want ≈ %g", variance, 1.0/12)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 7, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nCoversRange(t *testing.T) {
	r := New(5)
	seen := make([]bool, 8)
	for i := 0; i < 1000; i++ {
		seen[r.Uint64n(8)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Uint64n(8) never produced %d in 1000 draws", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) must panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("IntRange(-5,5) = %d", v)
		}
	}
	if r.IntRange(3, 3) != 3 {
		t.Error("degenerate IntRange must return the single value")
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g, want ≈ 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	out := make([]int, 100)
	r.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Error("Split stream tracks parent stream")
	}
}
