package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// Sweep benchmark: the four scheduling/continuation variants of one
// threshold sweep — serial-cold (the pre-batch-engine baseline),
// parallel-cold, serial-warm and parallel-warm — measured on the same
// point grid, with a bit-identity cross-check between the serial and
// parallel runs of each continuation mode.

// SweepBenchConfig parameterizes RunSweepBench.
type SweepBenchConfig struct {
	Nu     int     // chain length (default 14)
	Points int     // sweep points (default 16)
	Sigma  float64 // single-peak superiority f₀/f_base (default 2)
	// PMin/PMax bracket the sweep; when unset the grid climbs toward the
	// theoretical threshold p_max ≈ 1 − σ^(−1/ν), stopping at 0.94·p_max:
	// the shrinking spectral gap makes those cold solves most expensive —
	// the regime the warm-start continuation is built for — while the
	// exponentially small gap *inside* the critical window (where power
	// iteration stagnates regardless of scheduling; see ErrStagnated)
	// stays excluded.
	PMin, PMax float64
	Workers    int // parallel worker count (default 4)
	ChainLen   int // warm-start chain length (default batch.DefaultChainLen)
	Tol        float64
	MaxIter    int
	Dev        *device.Device
	// Method selects the per-point eigensolver of every variant (zero value
	// = the historical power path; see core.SolveMethod).
	Method core.SolveMethod
}

// SweepBenchVariant is one measured sweep configuration.
type SweepBenchVariant struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Warm       bool    `json:"warm"`
	Seconds    float64 `json:"seconds"`
	Iterations int     `json:"iterations"` // total solver iterations over the sweep
	// Methods tallies the variant's sweep points by the solve method that
	// produced them (all "power" unless SweepBenchConfig.Method changes the
	// gear).
	Methods map[string]int `json:"methods,omitempty"`
}

// HostInfo records the execution environment of a benchmark run so stored
// result files stay interpretable: timings from a 1-core CI runner and a
// 32-core workstation must not be compared as if equivalent.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CollectHostInfo snapshots the current process's execution environment.
func CollectHostInfo() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// SweepBenchResult is the outcome of RunSweepBench.
type SweepBenchResult struct {
	Nu       int                 `json:"nu"`
	Points   int                 `json:"points"`
	Workers  int                 `json:"workers"`
	PMin     float64             `json:"p_min"`
	PMax     float64             `json:"p_max"`
	Host     HostInfo            `json:"host"`
	Variants []SweepBenchVariant `json:"variants"`
	// WarmIterReductionPct is the iteration saving of serial-warm over
	// serial-cold (100·(1 − warm/cold)).
	WarmIterReductionPct float64 `json:"warm_iter_reduction_pct"`
	// Speedup is serial-cold seconds / parallel-warm seconds — the
	// end-to-end win of the batch engine over the baseline sweep.
	Speedup float64 `json:"speedup"`
	// BitIdentical reports that the parallel runs reproduced their serial
	// counterparts' Gamma curves exactly, bit for bit.
	BitIdentical bool `json:"bit_identical"`
}

func (cfg *SweepBenchConfig) defaults() error {
	if cfg.Nu <= 0 {
		cfg.Nu = 14
	}
	if cfg.Points <= 0 {
		cfg.Points = 16
	}
	if cfg.Points < 2 {
		return fmt.Errorf("harness: sweep bench needs at least 2 points, got %d", cfg.Points)
	}
	if cfg.Sigma <= 1 {
		cfg.Sigma = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PMin <= 0 || cfg.PMax <= cfg.PMin {
		pmax := 1 - math.Pow(cfg.Sigma, -1/float64(cfg.Nu))
		cfg.PMin = 0.5 * pmax
		cfg.PMax = 0.94 * pmax
	}
	return nil
}

// RunSweepBench measures a full-pipeline threshold sweep under the four
// variants and cross-checks bit-identity of the parallel runs against the
// serial ones.
func RunSweepBench(cfg SweepBenchConfig) (*SweepBenchResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	l, err := landscape.NewSinglePeak(cfg.Nu, cfg.Sigma, 1)
	if err != nil {
		return nil, err
	}
	q, err := mutation.NewUniform(cfg.Nu, cfg.PMin)
	if err != nil {
		return nil, err
	}
	ps := make([]float64, cfg.Points)
	for i := range ps {
		ps[i] = cfg.PMin + (cfg.PMax-cfg.PMin)*float64(i)/float64(cfg.Points-1)
	}

	res := &SweepBenchResult{
		Nu: cfg.Nu, Points: cfg.Points, Workers: cfg.Workers,
		PMin: cfg.PMin, PMax: cfg.PMax,
		Host:         CollectHostInfo(),
		BitIdentical: true,
	}
	run := func(name string, workers int, warm bool) ([]ThresholdPoint, error) {
		opts := SweepOptions{
			Workers: workers, WarmStart: warm, ChainLen: cfg.ChainLen,
			Tol: cfg.Tol, MaxIter: cfg.MaxIter, Dev: cfg.Dev, Method: cfg.Method,
		}
		var pts []ThresholdPoint
		var stats *SweepStats
		var runErr error
		secs := MeasureSeconds(func() {
			pts, stats, runErr = ThresholdSweepFullOpts(q, l, ps, opts)
		})
		if runErr != nil {
			return nil, fmt.Errorf("%s: %w", name, runErr)
		}
		res.Variants = append(res.Variants, SweepBenchVariant{
			Name: name, Workers: workers, Warm: warm,
			Seconds: secs, Iterations: stats.TotalIterations(),
			Methods: stats.MethodCounts(),
		})
		return pts, nil
	}

	serialCold, err := run("serial-cold", 1, false)
	if err != nil {
		return nil, err
	}
	parallelCold, err := run("parallel-cold", cfg.Workers, false)
	if err != nil {
		return nil, err
	}
	serialWarm, err := run("serial-warm", 1, true)
	if err != nil {
		return nil, err
	}
	parallelWarm, err := run("parallel-warm", cfg.Workers, true)
	if err != nil {
		return nil, err
	}

	res.BitIdentical = pointsIdentical(serialCold, parallelCold) &&
		pointsIdentical(serialWarm, parallelWarm)
	cold, warm := res.Variants[0], res.Variants[2]
	if cold.Iterations > 0 {
		res.WarmIterReductionPct = 100 * (1 - float64(warm.Iterations)/float64(cold.Iterations))
	}
	if s := res.Variants[3].Seconds; s > 0 {
		res.Speedup = res.Variants[0].Seconds / s
	}
	return res, nil
}

// FormatMethodCounts renders a method tally deterministically, e.g.
// "power:12,shiftinvert:4" (keys sorted; "-" when empty).
func FormatMethodCounts(m map[string]int) string {
	if len(m) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s:%d", k, m[k])
	}
	return out
}

// pointsIdentical reports bit-for-bit equality of two sweep results.
func pointsIdentical(a, b []ThresholdPoint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].P != b[i].P || len(a[i].Gamma) != len(b[i].Gamma) {
			return false
		}
		for k := range a[i].Gamma {
			if a[i].Gamma[k] != b[i].Gamma[k] {
				return false
			}
		}
	}
	return true
}

// WriteTSV renders the benchmark as tab-separated values: one row per
// variant plus a summary row.
func (r *SweepBenchResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# sweep bench: nu=%d points=%d p=[%.6g,%.6g] workers=%d bit_identical=%v\n",
		r.Nu, r.Points, r.PMin, r.PMax, r.Workers, r.BitIdentical); err != nil {
		return err
	}
	if r.Host != (HostInfo{}) {
		if _, err := fmt.Fprintf(w, "# host: %s %s/%s cpus=%d gomaxprocs=%d\n",
			r.Host.GoVersion, r.Host.GOOS, r.Host.GOARCH, r.Host.NumCPU, r.Host.GOMAXPROCS); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "variant\tworkers\twarm\tseconds\titerations\tmethods"); err != nil {
		return err
	}
	for _, v := range r.Variants {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%v\t%.6g\t%d\t%s\n",
			v.Name, v.Workers, v.Warm, v.Seconds, v.Iterations, FormatMethodCounts(v.Methods)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# warm_iter_reduction=%.1f%% speedup(serial-cold/parallel-warm)=%.2fx\n",
		r.WarmIterReductionPct, r.Speedup)
	return err
}
