package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

func TestFitConstantRecoversPlantedModel(t *testing.T) {
	s := &Series{Name: "planted"}
	const c = 3.5e-9
	for _, nu := range []int{8, 10, 12} {
		s.Samples = append(s.Samples, Sample{Nu: nu, Seconds: c * ModelN2(nu)})
	}
	got, err := FitConstant(s, ModelN2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-c)/c > 1e-12 {
		t.Errorf("fitted c = %g, want %g", got, c)
	}
}

func TestExtendByModel(t *testing.T) {
	s := &Series{Name: "x"}
	const c = 2e-9
	for _, nu := range []int{8, 10} {
		s.Samples = append(s.Samples, Sample{Nu: nu, Seconds: c * ModelN2(nu)})
	}
	if err := ExtendByModel(s, ModelN2, []int{8, 10, 14, 20}); err != nil {
		t.Fatal(err)
	}
	smp, ok := s.At(20)
	if !ok || !smp.Extrapolated {
		t.Fatal("missing extrapolated sample at ν=20")
	}
	want := c * ModelN2(20)
	if math.Abs(smp.Seconds-want)/want > 1e-9 {
		t.Errorf("extrapolated %g, want %g", smp.Seconds, want)
	}
	// Measured points must not be overwritten.
	if smp8, _ := s.At(8); smp8.Extrapolated {
		t.Error("measured sample marked extrapolated")
	}
}

func TestFitConstantNoSamples(t *testing.T) {
	s := &Series{Name: "empty"}
	if _, err := FitConstant(s, ModelN2); err == nil {
		t.Error("empty series must fail to fit")
	}
	s.Samples = append(s.Samples, Sample{Nu: 5, Seconds: 1, Extrapolated: true})
	if _, err := FitConstant(s, ModelN2); err == nil {
		t.Error("extrapolated-only series must fail to fit")
	}
}

func TestModelsGrowCorrectly(t *testing.T) {
	// N² model quadruples per +1 of ν; N·log₂N slightly more than doubles.
	if r := ModelN2(11) / ModelN2(10); math.Abs(r-4) > 1e-12 {
		t.Errorf("N² ratio %g", r)
	}
	r := ModelNLogN(11) / ModelNLogN(10)
	if r < 2 || r > 2.5 {
		t.Errorf("NlogN ratio %g", r)
	}
	// Neighborhood model with dmax=ν equals N·(Σ all C) = N·2^ν = N².
	m := ModelNNeighborhood(10)
	if math.Abs(m(10)-ModelN2(10)) > 1e-6*ModelN2(10) {
		t.Errorf("neighborhood(ν) = %g, want N² = %g", m(10), ModelN2(10))
	}
}

func TestSpeedupsTable(t *testing.T) {
	ref := &Series{Name: "ref", Samples: []Sample{{Nu: 10, Seconds: 8}, {Nu: 12, Seconds: 64}}}
	fast := &Series{Name: "fast", Samples: []Sample{{Nu: 10, Seconds: 2}, {Nu: 12, Seconds: 4}}}
	missing := &Series{Name: "partial", Samples: []Sample{{Nu: 10, Seconds: 1}}}
	tab := Speedups(ref, []*Series{fast, missing})
	if tab.Speedup[0][0] != 4 || tab.Speedup[1][0] != 16 {
		t.Errorf("speedups %v", tab.Speedup)
	}
	if !math.IsNaN(tab.Speedup[1][1]) {
		t.Error("missing point must be NaN")
	}
	var sb strings.Builder
	if err := tab.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fast") || !strings.Contains(sb.String(), "16") {
		t.Errorf("TSV output:\n%s", sb.String())
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	a := &Series{Name: "a", Samples: []Sample{{Nu: 5, Seconds: 0.5}, {Nu: 6, Seconds: 1, Extrapolated: true}}}
	b := &Series{Name: "b", Samples: []Sample{{Nu: 5, Seconds: 0.25}}}
	var sb strings.Builder
	if err := WriteSeriesTSV(&sb, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1*") {
		t.Errorf("extrapolated marker missing:\n%s", out)
	}
	if !strings.Contains(out, "\t-") {
		t.Errorf("missing-point marker absent:\n%s", out)
	}
}

func TestThresholdSweepSinglePeak(t *testing.T) {
	l, err := landscape.NewSinglePeak(20, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ThresholdSweep(l, []float64{0.005, 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || len(pts[0].Gamma) != 21 {
		t.Fatalf("unexpected sweep shape")
	}
	if pts[0].Gamma[0] < 0.5 {
		t.Errorf("ordered regime [Γ0] = %g", pts[0].Gamma[0])
	}
	if pts[1].Gamma[0] > 1e-3 {
		t.Errorf("random regime [Γ0] = %g", pts[1].Gamma[0])
	}
}

func TestThresholdSweepRejectsUnstructured(t *testing.T) {
	l, _ := landscape.NewRandom(8, 5, 1, 1)
	if _, err := ThresholdSweep(l, []float64{0.01}); err == nil {
		t.Error("unstructured landscape must be rejected")
	}
}

func TestThresholdSweepFullMatchesReduced(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := []float64{0.01, 0.05}
	reduced, err := ThresholdSweep(l, ps)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	fullSerial, err := ThresholdSweepFull(q, l, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullDev, err := ThresholdSweepFull(q, l, ps, device.New(4, device.WithGrain(16)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		for k := 0; k <= nu; k++ {
			if math.Abs(reduced[i].Gamma[k]-fullSerial[i].Gamma[k]) > 1e-7 {
				t.Errorf("p=%g class %d: reduced %g vs full %g",
					ps[i], k, reduced[i].Gamma[k], fullSerial[i].Gamma[k])
			}
			if math.Abs(fullDev[i].Gamma[k]-fullSerial[i].Gamma[k]) > 1e-10 {
				t.Errorf("p=%g class %d: device full sweep deviates", ps[i], k)
			}
		}
	}
}

func TestMatvecRuntimesSmoke(t *testing.T) {
	series, err := MatvecRuntimes(MatvecConfig{Nus: []int{6, 8, 10}, P: 0.01, Reps: 1, MaxFull: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	// Θ(N²) must be extrapolated at ν=10.
	smp, ok := series[0].At(10)
	if !ok || !smp.Extrapolated {
		t.Error("Xmvp(ν) at ν=10 must be extrapolated")
	}
	for _, s := range series {
		for _, smp := range s.Samples {
			if smp.Seconds <= 0 {
				t.Errorf("series %s has non-positive time at ν=%d", s.Name, smp.Nu)
			}
		}
	}
}

func TestSolverRuntimesSmoke(t *testing.T) {
	series, err := SolverRuntimes(SolverConfig{
		Nus: []int{6, 8, 10}, MaxFull: 8, TolExact: 1e-11, TolApprox: 1e-9, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	fm, ok := series[2].At(10)
	if !ok || fm.Iterations <= 0 {
		t.Error("Fmmp solve must record iterations")
	}
	full, ok := series[0].At(10)
	if !ok || !full.Extrapolated {
		t.Error("Pi(Xmvp(ν)) at ν=10 must be extrapolated")
	}
}

func TestShiftStudy(t *testing.T) {
	pts, err := ShiftStudy(9, 0.01, 1e-10, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	totalPlain, totalShifted := 0, 0
	for _, pt := range pts {
		if !pt.LambdaMatches {
			t.Errorf("seed %d: shifted eigenvalue differs", pt.Seed)
		}
		totalPlain += pt.IterPlain
		totalShifted += pt.IterShifted
	}
	if totalShifted >= totalPlain {
		t.Errorf("shift failed to help overall: %d vs %d", totalShifted, totalPlain)
	}
}

func TestAccuracyStudyMonotone(t *testing.T) {
	pts, err := AccuracyStudy(10, 0.01, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("want 8 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].VectorErr > pts[i-1].VectorErr*1.5+1e-15 {
			t.Errorf("dmax=%d: error %g grew from %g", pts[i].DMax, pts[i].VectorErr, pts[i-1].VectorErr)
		}
	}
	if pts[len(pts)-1].VectorErr > 1e-6 {
		t.Errorf("dmax=8 error %g still large", pts[len(pts)-1].VectorErr)
	}
}

func TestMeasureBest(t *testing.T) {
	calls := 0
	best := MeasureBest(5, func() { calls++ })
	if calls != 5 || best < 0 {
		t.Errorf("calls=%d best=%g", calls, best)
	}
	MeasureBest(0, func() { calls++ })
	if calls != 6 {
		t.Error("reps<1 must clamp to 1")
	}
}
