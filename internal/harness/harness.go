// Package harness drives the paper's evaluation: it measures the
// matrix–vector product variants (Figure 2), the full power-iteration
// solves (Figure 3), derives the algorithm×hardware speedup matrix
// (Figure 4) and sweeps the error rate for the error-threshold curves
// (Figure 1). Output is structured series data that the cmd tools render
// as TSV, so every figure in the paper maps to one callable function here
// plus one benchmark in the repository root.
//
// Where the paper extrapolates (the Θ(N²) reference beyond ν = 21 — "the
// execution times for Pi(Xmvp(ν)) are so long that they had to be
// extrapolated"), this package does the same: a least-squares fit of the
// model t = c·N²(·iters) on the measured prefix, extended to larger ν.
package harness

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Sample is one measured (or extrapolated) point of a runtime series.
type Sample struct {
	Nu           int     // chain length
	Seconds      float64 // wall time
	Iterations   int     // solver iterations, when applicable
	Extrapolated bool    // true when the point was model-extended
}

// Series is a named runtime curve over chain lengths.
type Series struct {
	Name    string
	Samples []Sample
}

// At returns the sample for chain length nu.
func (s *Series) At(nu int) (Sample, bool) {
	for _, smp := range s.Samples {
		if smp.Nu == nu {
			return smp, true
		}
	}
	return Sample{}, false
}

// MeasureSeconds times one invocation of f with a monotonic clock.
func MeasureSeconds(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// MeasureBest runs f reps times and returns the fastest time — the
// standard way to strip scheduler noise from short kernels.
func MeasureBest(reps int, f func()) float64 {
	if reps < 1 {
		reps = 1
	}
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		if t := MeasureSeconds(f); t < best {
			best = t
		}
	}
	return best
}

// ScalingModel maps a chain length to the predicted work of an algorithm
// (up to a constant factor).
type ScalingModel func(nu int) float64

// ModelN2 is the Θ(N²) cost of Smvp/Xmvp(ν) per product.
func ModelN2(nu int) float64 {
	n := math.Pow(2, float64(nu))
	return n * n
}

// ModelNLogN is the Θ(N·log₂N) cost of Fmmp per product.
func ModelNLogN(nu int) float64 {
	n := math.Pow(2, float64(nu))
	return n * float64(nu)
}

// ModelNNeighborhood returns the Θ(N·Σ_{k≤dmax}C(ν,k)) cost of Xmvp(dmax).
func ModelNNeighborhood(dmax int) ScalingModel {
	return func(nu int) float64 {
		n := math.Pow(2, float64(nu))
		var masks float64
		for k := 0; k <= dmax && k <= nu; k++ {
			masks += binomFloat(nu, k)
		}
		return n * masks
	}
}

func binomFloat(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}

// FitConstant returns the least-squares constant c minimizing
// Σ (log t_i − log(c·model(ν_i)))², i.e. the geometric-mean ratio of the
// measured times to the model — robust across the orders of magnitude a
// runtime curve spans. Extrapolated samples are excluded.
func FitConstant(s *Series, model ScalingModel) (float64, error) {
	var logSum float64
	n := 0
	for _, smp := range s.Samples {
		if smp.Extrapolated || smp.Seconds <= 0 {
			continue
		}
		logSum += math.Log(smp.Seconds / model(smp.Nu))
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("harness: no measured samples to fit in series %q", s.Name)
	}
	return math.Exp(logSum / float64(n)), nil
}

// ExtendByModel appends extrapolated samples for the chain lengths in nus
// that the series lacks, using c·model(ν) with c fitted on the measured
// samples — the paper's methodology for the ν ≥ 22 reference values.
func ExtendByModel(s *Series, model ScalingModel, nus []int) error {
	c, err := FitConstant(s, model)
	if err != nil {
		return err
	}
	for _, nu := range nus {
		if _, ok := s.At(nu); ok {
			continue
		}
		s.Samples = append(s.Samples, Sample{Nu: nu, Seconds: c * model(nu), Extrapolated: true})
	}
	return nil
}

// SpeedupTable computes, for each chain length present in the reference
// series, the ratio reference/series for every comparison series — the
// content of Figure 4.
type SpeedupTable struct {
	Nus       []int
	Reference string
	Names     []string
	// Speedup[i][j] is the speedup of series j at Nus[i]; NaN if missing.
	Speedup [][]float64
}

// Speedups builds the speedup table of the comparison series against the
// reference series.
func Speedups(reference *Series, comparisons []*Series) *SpeedupTable {
	t := &SpeedupTable{Reference: reference.Name}
	for _, c := range comparisons {
		t.Names = append(t.Names, c.Name)
	}
	for _, ref := range reference.Samples {
		row := make([]float64, len(comparisons))
		for j, c := range comparisons {
			if smp, ok := c.At(ref.Nu); ok && smp.Seconds > 0 {
				row[j] = ref.Seconds / smp.Seconds
			} else {
				row[j] = math.NaN()
			}
		}
		t.Nus = append(t.Nus, ref.Nu)
		t.Speedup = append(t.Speedup, row)
	}
	return t
}

// WriteTSV renders the speedup table as tab-separated values.
func (t *SpeedupTable) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "nu"); err != nil {
		return err
	}
	for _, n := range t.Names {
		if _, err := fmt.Fprintf(w, "\t%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, nu := range t.Nus {
		if _, err := fmt.Fprintf(w, "%d", nu); err != nil {
			return err
		}
		for _, v := range t.Speedup[i] {
			if _, err := fmt.Fprintf(w, "\t%.6g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesTSV renders runtime series side by side as TSV: one row per
// chain length, one column per series ("*" marks extrapolated values).
func WriteSeriesTSV(w io.Writer, series []*Series) error {
	nuSet := map[int]bool{}
	for _, s := range series {
		for _, smp := range s.Samples {
			nuSet[smp.Nu] = true
		}
	}
	var nus []int
	for nu := 0; nu <= 64; nu++ {
		if nuSet[nu] {
			nus = append(nus, nu)
		}
	}
	if _, err := fmt.Fprint(w, "nu"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "\t%s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, nu := range nus {
		if _, err := fmt.Fprintf(w, "%d", nu); err != nil {
			return err
		}
		for _, s := range series {
			if smp, ok := s.At(nu); ok {
				mark := ""
				if smp.Extrapolated {
					mark = "*"
				}
				if _, err := fmt.Fprintf(w, "\t%.6g%s", smp.Seconds, mark); err != nil {
					return err
				}
			} else if _, err := fmt.Fprint(w, "\t-"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
