package harness

import (
	"fmt"
	"math"

	"repro/internal/landscape"
)

// Error-threshold location. Figure 1 shows the phenomenon; this file
// turns it into a number: the critical error rate p_max at which the
// ordered quasispecies collapses, located by bisection on the master-class
// concentration, plus the classical first-order theory value to compare
// against.

// TheoreticalThreshold returns the textbook estimate of the error
// threshold for a single-peak landscape with superiority σ = f₀/f_base:
// the ordered phase persists while the master's effective replication
// rate σ·(1−p)^ν exceeds the background, giving
//
//	p_max ≈ 1 − σ^(−1/ν)  (≈ ln(σ)/ν for small p).
func TheoreticalThreshold(sigma float64, nu int) (float64, error) {
	if sigma <= 1 {
		return 0, fmt.Errorf("harness: superiority σ = %g must exceed 1", sigma)
	}
	if nu < 1 {
		return 0, fmt.Errorf("harness: ν = %d must be positive", nu)
	}
	return 1 - math.Pow(sigma, -1/float64(nu)), nil
}

// LocateThreshold bisects the error rate at which the master class
// concentration [Γ0] of a class-based landscape falls below the
// order criterion (factor × its uniform share 2^(−ν)). It returns the
// located p_max to within tol. It is the single-probe form of
// LocateThresholdOpts (see sweep.go), which evaluates several bracket
// points per round concurrently.
func LocateThreshold(l landscape.Landscape, lo, hi, tol float64) (float64, error) {
	return LocateThresholdOpts(l, lo, hi, tol, SweepOptions{Workers: 1})
}
