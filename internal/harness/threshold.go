package harness

import (
	"fmt"
	"math"

	"repro/internal/errorclass"
	"repro/internal/landscape"
)

// Error-threshold location. Figure 1 shows the phenomenon; this file
// turns it into a number: the critical error rate p_max at which the
// ordered quasispecies collapses, located by bisection on the master-class
// concentration, plus the classical first-order theory value to compare
// against.

// TheoreticalThreshold returns the textbook estimate of the error
// threshold for a single-peak landscape with superiority σ = f₀/f_base:
// the ordered phase persists while the master's effective replication
// rate σ·(1−p)^ν exceeds the background, giving
//
//	p_max ≈ 1 − σ^(−1/ν)  (≈ ln(σ)/ν for small p).
func TheoreticalThreshold(sigma float64, nu int) (float64, error) {
	if sigma <= 1 {
		return 0, fmt.Errorf("harness: superiority σ = %g must exceed 1", sigma)
	}
	if nu < 1 {
		return 0, fmt.Errorf("harness: ν = %d must be positive", nu)
	}
	return 1 - math.Pow(sigma, -1/float64(nu)), nil
}

// LocateThreshold bisects the error rate at which the master class
// concentration [Γ0] of a class-based landscape falls below the
// order criterion (factor × its uniform share 2^(−ν)). It returns the
// located p_max to within tol.
func LocateThreshold(l landscape.Landscape, lo, hi, tol float64) (float64, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return 0, fmt.Errorf("harness: threshold location needs a class-based landscape, got %T", l)
	}
	if !(lo > 0 && hi > lo && hi <= 0.5) {
		return 0, fmt.Errorf("harness: invalid bracket [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-5
	}
	nu := len(phi) - 1
	// Order criterion: [Γ0] above 100× the uniform share.
	uniformShare := math.Pow(2, -float64(nu))
	ordered := func(p float64) (bool, error) {
		red, err := errorclass.New(phi, p)
		if err != nil {
			return false, err
		}
		res, err := red.Solve()
		if err != nil {
			return false, err
		}
		return res.Gamma[0] > 100*uniformShare, nil
	}
	oLo, err := ordered(lo)
	if err != nil {
		return 0, err
	}
	oHi, err := ordered(hi)
	if err != nil {
		return 0, err
	}
	if !oLo {
		return 0, fmt.Errorf("harness: lower bracket p = %g is already disordered", lo)
	}
	if oHi {
		return 0, fmt.Errorf("harness: upper bracket p = %g is still ordered", hi)
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		om, err := ordered(mid)
		if err != nil {
			return 0, err
		}
		if om {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
