package harness

import (
	"math"
	"sort"
	"testing"
)

func TestFmmpSolveBytes(t *testing.T) {
	// 1 iteration at ν = 10: 16·1024·10 bytes.
	if got := FmmpSolveBytes(10, 1); got != 16*1024*10 {
		t.Errorf("FmmpSolveBytes = %g", got)
	}
	if got := FmmpSolveBytes(10, 7); got != 7*16*1024*10 {
		t.Errorf("iterations must scale linearly: %g", got)
	}
}

func TestAchievedBandwidthRecoversPlantedValue(t *testing.T) {
	const bw = 5e9
	s := &Series{Name: "planted"}
	for _, smp := range []struct{ nu, iters int }{{10, 30}, {12, 35}, {14, 40}} {
		s.Samples = append(s.Samples, Sample{
			Nu: smp.nu, Iterations: smp.iters,
			Seconds: FmmpSolveBytes(smp.nu, smp.iters) / bw,
		})
	}
	got, err := AchievedBandwidth(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-bw)/bw > 1e-12 {
		t.Errorf("bandwidth = %g, want %g", got, bw)
	}
}

func TestAchievedBandwidthRequiresIterations(t *testing.T) {
	s := &Series{Name: "x", Samples: []Sample{{Nu: 10, Seconds: 1}}}
	if _, err := AchievedBandwidth(s); err == nil {
		t.Error("series without iteration counts must fail")
	}
}

func TestModeledFmmpSeries(t *testing.T) {
	measured := &Series{Name: "cpu", Samples: []Sample{
		{Nu: 10, Iterations: 30, Seconds: 0.01},
		{Nu: 12, Iterations: 35, Seconds: 0.05},
	}}
	model, err := ModeledFmmpSeries("gpu-model", 144e9, measured)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Samples) != 2 {
		t.Fatalf("got %d samples", len(model.Samples))
	}
	for i, smp := range model.Samples {
		want := FmmpSolveBytes(measured.Samples[i].Nu, measured.Samples[i].Iterations) / 144e9
		if math.Abs(smp.Seconds-want) > 1e-18 {
			t.Errorf("sample %d: %g, want %g", i, smp.Seconds, want)
		}
		if !smp.Extrapolated {
			t.Error("model outputs must be marked as such")
		}
	}
	if _, err := ModeledFmmpSeries("bad", -1, measured); err == nil {
		t.Error("negative bandwidth must be rejected")
	}
	empty := &Series{Name: "none", Samples: []Sample{{Nu: 5, Seconds: 1}}}
	if _, err := ModeledFmmpSeries("bad", 1e9, empty); err == nil {
		t.Error("series without iterations must be rejected")
	}
}

func TestModelAgainstRealMeasurement(t *testing.T) {
	// Derive the host's achieved bandwidth from a real measured series,
	// then model a device with exactly that bandwidth: the modeled curve
	// must track the measured one within the fit spread (geometric mean
	// absorbs per-ν cache effects; allow 3×).
	series, err := SolverRuntimes(SolverConfig{
		Nus: []int{10, 12, 14}, MaxFull: 10, TolExact: 1e-11, TolApprox: 1e-9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fmmp := series[2]
	bw, err := AchievedBandwidth(fmmp)
	if err != nil {
		t.Fatal(err)
	}
	if bw < 1e8 || bw > 1e12 {
		t.Errorf("implausible achieved bandwidth %g B/s", bw)
	}
	model, err := ModeledFmmpSeries("self-model", bw, fmmp)
	if err != nil {
		t.Fatal(err)
	}
	// Individual points are one-shot wall-clock measurements and can be
	// inflated by scheduler or GC hiccups on a loaded host, so judge the
	// median ratio tightly and individual points only loosely.
	var ratios []float64
	for i, smp := range model.Samples {
		ratio := smp.Seconds / fmmp.Samples[i].Seconds
		ratios = append(ratios, ratio)
		if ratio < 1.0/100 || ratio > 100 {
			t.Errorf("ν=%d: model/measured ratio %g implausible", smp.Nu, ratio)
		}
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if median < 1.0/5 || median > 5 {
		t.Errorf("median model/measured ratio %g outside [1/5, 5]", median)
	}
	t.Logf("host achieved Fmmp bandwidth: %.2f GB/s (median ratio %.2f)", bw/1e9, median)
}
