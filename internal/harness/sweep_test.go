package harness

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

func sweepGrid(lo, hi float64, n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return ps
}

func requireIdentical(t *testing.T, tag string, a, b []ThresholdPoint) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].P != b[i].P {
			t.Fatalf("%s: point %d: p %g vs %g", tag, i, a[i].P, b[i].P)
		}
		for k := range a[i].Gamma {
			if a[i].Gamma[k] != b[i].Gamma[k] {
				t.Fatalf("%s: point %d class %d: %v vs %v (not bit-identical)",
					tag, i, k, a[i].Gamma[k], b[i].Gamma[k])
			}
		}
	}
}

// The determinism contract of the batch engine: a sweep's results are
// bit-identical at every worker count, cold or warm.
func TestThresholdSweepFullBitIdenticalAcrossWorkers(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	ps := sweepGrid(0.005, 0.12, 11)
	for _, warm := range []bool{false, true} {
		ref, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 32} {
			got, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: workers, WarmStart: warm})
			if err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warm, err)
			}
			requireIdentical(t, "full sweep", ref, got)
		}
	}
}

func TestThresholdSweepOptsBitIdenticalAcrossWorkers(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := sweepGrid(0.002, 0.09, 17)
	for _, warm := range []bool{false, true} {
		ref, stats, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Iterations) != len(ps) {
			t.Fatalf("stats cover %d of %d points", len(stats.Iterations), len(ps))
		}
		for _, workers := range []int{2, 5, 16} {
			got, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: workers, WarmStart: warm})
			if err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warm, err)
			}
			requireIdentical(t, "reduced sweep", ref, got)
		}
	}
}

// Warm-started solves must converge to the same eigenpair as cold ones —
// within tolerance, point by point — while saving iterations overall.
func TestWarmStartMatchesColdWithinTolerance(t *testing.T) {
	const nu = 9
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	// A monotone grid toward the threshold, where continuation pays off.
	ps := sweepGrid(0.01, 0.09, 12)
	cold, coldStats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: true, ChainLen: len(ps)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		for k := range cold[i].Gamma {
			if d := math.Abs(cold[i].Gamma[k] - warm[i].Gamma[k]); d > 1e-8 {
				t.Errorf("p=%g class %d: |cold−warm| = %g", ps[i], k, d)
			}
		}
	}
	if w, c := warmStats.TotalIterations(), coldStats.TotalIterations(); w >= c {
		t.Errorf("warm sweep took %d iterations, cold took %d — continuation saved nothing", w, c)
	}
	if warmStats.WarmPoints() != len(ps)-1 {
		t.Errorf("%d of %d points warm-started, want %d", warmStats.WarmPoints(), len(ps), len(ps)-1)
	}
	if coldStats.WarmPoints() != 0 {
		t.Errorf("cold sweep reports %d warm points", coldStats.WarmPoints())
	}
}

// The legacy entry points must agree with the engine they now wrap.
func TestLegacySweepWrappersMatchOpts(t *testing.T) {
	const nu = 7
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.02)
	ps := sweepGrid(0.01, 0.08, 5)

	legacy, err := ThresholdSweep(l, ps)
	if err != nil {
		t.Fatal(err)
	}
	opts, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "reduced wrapper", legacy, opts)

	legacyFull, err := ThresholdSweepFull(q, l, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	optsFull, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "full wrapper", legacyFull, optsFull)
}

func TestLocateThresholdOptsMatchesBisection(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LocateThreshold(l, 0.001, 0.4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := LocateThresholdOpts(l, 0.001, 0.4, 1e-4, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Different probe sequences may land on different points inside the
		// final bracket, but every answer is within tol of the transition.
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("workers=%d: p_max = %g, bisection %g", workers, got, want)
		}
	}
	theory, err := TheoreticalThreshold(4, nu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-theory)/theory > 0.25 {
		t.Errorf("located %g far from first-order theory %g", want, theory)
	}
}

func TestThresholdSweepFullOptsWithDevice(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	ps := sweepGrid(0.01, 0.06, 6)
	// The device's reduction tree has its own (deterministic) summation
	// order, so the bit-identity contract is per device configuration:
	// sweep-level concurrency must not change a single bit for a fixed
	// shared device.
	dev := device.New(4, device.WithGrain(16))
	ref, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: true, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: workers, WarmStart: true, Dev: dev})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "device sweep", ref, got)
	}
}

func TestRunSweepBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness exercised in long mode")
	}
	res, err := RunSweepBench(SweepBenchConfig{Nu: 8, Points: 6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Error("parallel sweeps deviated from serial")
	}
	if len(res.Variants) != 4 {
		t.Fatalf("%d variants, want 4", len(res.Variants))
	}
	if res.WarmIterReductionPct <= 0 {
		t.Errorf("warm start saved %.1f%% iterations, want > 0", res.WarmIterReductionPct)
	}
}

// The adaptive engine must honor the same determinism contract as the
// power path: with Method auto the gear selection, warm shifts, and
// results are chain-local, so sweeps stay bit-identical at every worker
// count — including across the critical window where the selector shifts
// gears.
func TestAdaptiveSweepBitIdenticalAcrossWorkers(t *testing.T) {
	const nu = 14
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	pc := 1 - math.Pow(2, -1/float64(nu))
	// A grid that crosses p_c. On the cold sweep the point just past p_c
	// stalls the power gear and escalates to Chebyshev; warm continuation
	// legitimately keeps every point on power (the previous eigenvector is
	// already inside the dominant subspace), so the downshift assertion is
	// cold-only.
	ps := sweepGrid(0.6*pc, 1.2*pc, 8)
	for _, warm := range []bool{false, true} {
		ref, stats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{
			Workers: 1, WarmStart: warm, Method: core.SolveAuto,
		})
		if err != nil {
			t.Fatalf("warm=%v: %v", warm, err)
		}
		for i, m := range stats.Methods {
			if m == "" {
				t.Fatalf("warm=%v: point %d has no recorded method", warm, i)
			}
		}
		counts := stats.MethodCounts()
		if counts["power"] == 0 {
			t.Errorf("warm=%v: no point far from the threshold used the power gear (%v)", warm, counts)
		}
		if !warm && counts["power"] == len(ps) {
			t.Errorf("cold sweep: the selector never downshifted crossing p_c (%v)", counts)
		}
		for _, workers := range []int{2, 3} {
			got, gstats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{
				Workers: workers, WarmStart: warm, Method: core.SolveAuto,
			})
			if err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warm, err)
			}
			requireIdentical(t, "adaptive sweep", ref, got)
			for i := range stats.Methods {
				if stats.Methods[i] != gstats.Methods[i] {
					t.Fatalf("workers=%d warm=%v: point %d method %q vs %q",
						workers, warm, i, stats.Methods[i], gstats.Methods[i])
				}
			}
			if stats.Escalations != gstats.Escalations {
				t.Errorf("workers=%d warm=%v: escalations %d vs %d",
					workers, warm, stats.Escalations, gstats.Escalations)
			}
		}
	}
}

// Inside the critical window the auto selector and a forced shift-invert
// sweep solve the same eigenproblem by (possibly) different routes; their
// concentration curves must agree to solver tolerance.
func TestAdaptiveSweepAutoMatchesForcedShiftInvert(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	pc := 1 - math.Pow(2, -1/float64(nu))
	ps := sweepGrid(0.95*pc, 1.02*pc, 5)
	auto, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{
		Workers: 1, WarmStart: true, Method: core.SolveAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	forced, fstats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{
		Workers: 1, WarmStart: true, Method: core.SolveShiftInvert,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range auto {
		for k := range auto[i].Gamma {
			if d := math.Abs(auto[i].Gamma[k] - forced[i].Gamma[k]); d > 1e-8 {
				t.Errorf("p=%g class %d: |auto−shiftinvert| = %g", ps[i], k, d)
			}
		}
	}
	for i, m := range fstats.Methods {
		if m != "shiftinvert" {
			t.Errorf("forced sweep point %d recorded method %q", i, m)
		}
	}
}

// The reduced sweep maps non-power methods onto the RQI/LU shift-invert
// path; its curves must match the dense power path to solver tolerance and
// stay bit-identical across worker counts.
func TestReducedSweepShiftInvertMatchesPower(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := sweepGrid(0.002, 0.09, 13)
	power, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	si, stats, err := ThresholdSweepOpts(l, ps, SweepOptions{
		Workers: 1, WarmStart: true, Method: core.SolveShiftInvert,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range power {
		for k := range power[i].Gamma {
			if d := math.Abs(power[i].Gamma[k] - si[i].Gamma[k]); d > 1e-9 {
				t.Errorf("p=%g class %d: |power−shiftinvert| = %g", ps[i], k, d)
			}
		}
	}
	for i, m := range stats.Methods {
		if m != "shiftinvert" {
			t.Errorf("point %d recorded method %q, want shiftinvert", i, m)
		}
	}
	for _, workers := range []int{2, 5} {
		got, _, err := ThresholdSweepOpts(l, ps, SweepOptions{
			Workers: workers, WarmStart: true, Method: core.SolveShiftInvert,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireIdentical(t, "reduced shift-invert sweep", si, got)
	}
}

// LocateThresholdOpts must find the same transition whichever reduced
// solver evaluates the order parameter.
func TestLocateThresholdMethodAgreement(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	power, err := LocateThresholdOpts(l, 0.001, 0.4, 1e-4, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	si, err := LocateThresholdOpts(l, 0.001, 0.4, 1e-4, SweepOptions{Workers: 2, Method: core.SolveShiftInvert})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(power-si) > 2e-4 {
		t.Errorf("p_max: power %g vs shift-invert %g", power, si)
	}
}

func TestRunCriticalBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness exercised in long mode")
	}
	// A small window crossing: ν = 12 keeps the test fast while still
	// exercising the grid layout, bit-identity check, and baseline capture.
	res, err := RunCriticalBench(CriticalBenchConfig{Nu: 12, Points: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Error("parallel adaptive sweep deviated from serial")
	}
	if len(res.Variants) != 3 {
		t.Fatalf("%d variants, want 3", len(res.Variants))
	}
	if len(res.Grid) != 5 {
		t.Fatalf("%d grid points, want 5", len(res.Grid))
	}
	for i, pt := range res.Grid {
		if pt.Method == "" {
			t.Errorf("grid point %d has no method", i)
		}
		if pt.Iterations <= 0 {
			t.Errorf("grid point %d has no iteration count", i)
		}
	}
	if res.Grid[0].FracPC >= 1 || res.Grid[len(res.Grid)-1].FracPC <= 1 {
		t.Errorf("grid [%.3f, %.3f]·p_c does not cross the threshold",
			res.Grid[0].FracPC, res.Grid[len(res.Grid)-1].FracPC)
	}
}
