package harness

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

func sweepGrid(lo, hi float64, n int) []float64 {
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return ps
}

func requireIdentical(t *testing.T, tag string, a, b []ThresholdPoint) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d points", tag, len(a), len(b))
	}
	for i := range a {
		if a[i].P != b[i].P {
			t.Fatalf("%s: point %d: p %g vs %g", tag, i, a[i].P, b[i].P)
		}
		for k := range a[i].Gamma {
			if a[i].Gamma[k] != b[i].Gamma[k] {
				t.Fatalf("%s: point %d class %d: %v vs %v (not bit-identical)",
					tag, i, k, a[i].Gamma[k], b[i].Gamma[k])
			}
		}
	}
}

// The determinism contract of the batch engine: a sweep's results are
// bit-identical at every worker count, cold or warm.
func TestThresholdSweepFullBitIdenticalAcrossWorkers(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	ps := sweepGrid(0.005, 0.12, 11)
	for _, warm := range []bool{false, true} {
		ref, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 32} {
			got, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: workers, WarmStart: warm})
			if err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warm, err)
			}
			requireIdentical(t, "full sweep", ref, got)
		}
	}
}

func TestThresholdSweepOptsBitIdenticalAcrossWorkers(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ps := sweepGrid(0.002, 0.09, 17)
	for _, warm := range []bool{false, true} {
		ref, stats, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1, WarmStart: warm})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.Iterations) != len(ps) {
			t.Fatalf("stats cover %d of %d points", len(stats.Iterations), len(ps))
		}
		for _, workers := range []int{2, 5, 16} {
			got, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: workers, WarmStart: warm})
			if err != nil {
				t.Fatalf("workers=%d warm=%v: %v", workers, warm, err)
			}
			requireIdentical(t, "reduced sweep", ref, got)
		}
	}
}

// Warm-started solves must converge to the same eigenpair as cold ones —
// within tolerance, point by point — while saving iterations overall.
func TestWarmStartMatchesColdWithinTolerance(t *testing.T) {
	const nu = 9
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	// A monotone grid toward the threshold, where continuation pays off.
	ps := sweepGrid(0.01, 0.09, 12)
	cold, coldStats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: true, ChainLen: len(ps)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		for k := range cold[i].Gamma {
			if d := math.Abs(cold[i].Gamma[k] - warm[i].Gamma[k]); d > 1e-8 {
				t.Errorf("p=%g class %d: |cold−warm| = %g", ps[i], k, d)
			}
		}
	}
	if w, c := warmStats.TotalIterations(), coldStats.TotalIterations(); w >= c {
		t.Errorf("warm sweep took %d iterations, cold took %d — continuation saved nothing", w, c)
	}
	if warmStats.WarmPoints() != len(ps)-1 {
		t.Errorf("%d of %d points warm-started, want %d", warmStats.WarmPoints(), len(ps), len(ps)-1)
	}
	if coldStats.WarmPoints() != 0 {
		t.Errorf("cold sweep reports %d warm points", coldStats.WarmPoints())
	}
}

// The legacy entry points must agree with the engine they now wrap.
func TestLegacySweepWrappersMatchOpts(t *testing.T) {
	const nu = 7
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.02)
	ps := sweepGrid(0.01, 0.08, 5)

	legacy, err := ThresholdSweep(l, ps)
	if err != nil {
		t.Fatal(err)
	}
	opts, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "reduced wrapper", legacy, opts)

	legacyFull, err := ThresholdSweepFull(q, l, ps, nil)
	if err != nil {
		t.Fatal(err)
	}
	optsFull, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "full wrapper", legacyFull, optsFull)
}

func TestLocateThresholdOptsMatchesBisection(t *testing.T) {
	const nu = 20
	l, err := landscape.NewSinglePeak(nu, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LocateThreshold(l, 0.001, 0.4, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, err := LocateThresholdOpts(l, 0.001, 0.4, 1e-4, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Different probe sequences may land on different points inside the
		// final bracket, but every answer is within tol of the transition.
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("workers=%d: p_max = %g, bisection %g", workers, got, want)
		}
	}
	theory, err := TheoreticalThreshold(4, nu)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-theory)/theory > 0.25 {
		t.Errorf("located %g far from first-order theory %g", want, theory)
	}
}

func TestThresholdSweepFullOptsWithDevice(t *testing.T) {
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := mutation.MustUniform(nu, 0.01)
	ps := sweepGrid(0.01, 0.06, 6)
	// The device's reduction tree has its own (deterministic) summation
	// order, so the bit-identity contract is per device configuration:
	// sweep-level concurrency must not change a single bit for a fixed
	// shared device.
	dev := device.New(4, device.WithGrain(16))
	ref, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, WarmStart: true, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: workers, WarmStart: true, Dev: dev})
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "device sweep", ref, got)
	}
}

func TestRunSweepBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness exercised in long mode")
	}
	res, err := RunSweepBench(SweepBenchConfig{Nu: 8, Points: 6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BitIdentical {
		t.Error("parallel sweeps deviated from serial")
	}
	if len(res.Variants) != 4 {
		t.Fatalf("%d variants, want 4", len(res.Variants))
	}
	if res.WarmIterReductionPct <= 0 {
		t.Errorf("warm start saved %.1f%% iterations, want > 0", res.WarmIterReductionPct)
	}
}
