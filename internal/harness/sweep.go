package harness

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/errorclass"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// This file is the batched sweep engine: the Figure 1 error-rate sweeps
// and the threshold search re-expressed over the internal/batch work-queue
// scheduler, with warm-start continuation along monotone p-chains and
// per-slot scratch reuse.
//
// Determinism contract: the sweep is partitioned into fixed-length
// continuation chains (batch.Chains) whose layout depends only on the
// point count — never on the worker count. Each chain is one schedulable
// task whose points run in order; within a chain the warm start for point
// i is exactly the converged vector of point i−1. Because the per-point
// arithmetic (operator, start, tolerance, shift) is thereby independent of
// scheduling, a sweep's results are bit-identical at every worker count.

// SweepOptions configures the batched sweep engine.
type SweepOptions struct {
	// Workers is the number of concurrent solves; ≤ 0 selects
	// GOMAXPROCS. Results are bit-identical at every worker count.
	Workers int
	// WarmStart seeds each point (after the first of its chain) with the
	// previous point's converged eigenvector instead of a cold start.
	WarmStart bool
	// ChainLen is the number of consecutive points per warm-start chain
	// (the scheduling granule); ≤ 0 selects batch.DefaultChainLen. The
	// chain layout is what keeps results independent of Workers.
	ChainLen int
	// Tol is the residual tolerance for the full-space solves; ≤ 0
	// selects core.DefaultTolerance for the landscape.
	Tol float64
	// MaxIter caps iterations per solve (0 = solver default).
	MaxIter int
	// Dev is the shared device runtime for the full-space solves; one
	// Device serves all workers (concurrent launches are pooled). Nil
	// runs each solve serially.
	Dev *device.Device
	// Observe, when non-nil, supplies the convergence-trace observer for
	// point i (p = ps[i]) of a full-space sweep; return nil to skip a
	// point. Observers for different points may be invoked concurrently
	// (one solve each), so the factory must be safe for concurrent calls —
	// obs.Trace.Recorder is. Reduced sweeps ignore it.
	Observe func(i int, p float64) core.Observer
	// Progress, when non-nil, is called once per finished point with its
	// solve cost and warm-start status. Calls arrive concurrently from the
	// sweep workers; implementations must be safe for concurrent use.
	Progress func(i int, p float64, iters int, warm bool)
}

// SweepStats instruments one sweep run.
type SweepStats struct {
	// Iterations[i] is the solver iteration count at point i.
	Iterations []int
	// Warm[i] reports whether point i was warm-started.
	Warm []bool
	// Chains is the number of continuation chains the sweep was split into.
	Chains int
}

// TotalIterations sums the per-point iteration counts.
func (s *SweepStats) TotalIterations() int {
	t := 0
	for _, it := range s.Iterations {
		t += it
	}
	return t
}

// WarmPoints counts the warm-started points.
func (s *SweepStats) WarmPoints() int {
	n := 0
	for _, w := range s.Warm {
		if w {
			n++
		}
	}
	return n
}

// ThresholdSweepOpts is ThresholdSweep on the batch engine: the reduced
// Section 5.1 solves of a Figure 1 sweep scheduled over opts.Workers
// concurrent slots, with warm-start continuation along each chain (the
// reduced iteration runs on M = QΓᵀ·diag(ϕ), so a neighbor's Gamma vector
// is the exact warm start).
func ThresholdSweepOpts(l landscape.Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, *SweepStats, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return nil, nil, fmt.Errorf("harness: threshold sweep needs a class-based landscape, got %T", l)
	}
	out := make([]ThresholdPoint, len(ps))
	stats := &SweepStats{Iterations: make([]int, len(ps)), Warm: make([]bool, len(ps))}
	chains := batch.Chains(len(ps), opts.ChainLen)
	stats.Chains = len(chains)
	err := batch.Run(len(chains), opts.Workers, func(ci int, _ *batch.Slot) error {
		var prev []float64
		for i := chains[ci].Lo; i < chains[ci].Hi; i++ {
			red, err := errorclass.New(phi, ps[i])
			if err != nil {
				return err
			}
			var start []float64
			if opts.WarmStart && prev != nil {
				start = prev
				stats.Warm[i] = true
			}
			res, err := red.SolveFrom(start)
			if err != nil {
				return fmt.Errorf("p = %g: %w", ps[i], err)
			}
			out[i] = ThresholdPoint{P: ps[i], Gamma: res.Gamma}
			stats.Iterations[i] = res.Iterations
			if opts.Progress != nil {
				opts.Progress(i, ps[i], res.Iterations, stats.Warm[i])
			}
			prev = res.Gamma
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("harness: %w", err)
	}
	return out, stats, nil
}

// ThresholdSweepFullOpts is ThresholdSweepFull on the batch engine: full
// 2^ν Pi(Fmmp) solves scheduled over opts.Workers slots. Each slot owns
// one reusable core.PowerWork, so memory stays at Workers·Θ(N) however
// long the sweep; each point's operator shares the landscape diagonals of
// a base operator (FmmpOperator.WithProcess) and, within a chain, is
// warm-started from the previous point's eigenvector held in the slot
// scratch.
func ThresholdSweepFullOpts(q *mutation.Process, l landscape.Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, *SweepStats, error) {
	baseOp, err := core.NewFmmpOperator(q, l, core.Right, opts.Dev)
	if err != nil {
		return nil, nil, err
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = core.DefaultTolerance(l)
	}
	cold := core.FitnessStart(l) // shared read-only across slots
	workers := batch.Workers(opts.Workers)
	works := make([]*core.PowerWork, workers)

	out := make([]ThresholdPoint, len(ps))
	stats := &SweepStats{Iterations: make([]int, len(ps)), Warm: make([]bool, len(ps))}
	chains := batch.Chains(len(ps), opts.ChainLen)
	stats.Chains = len(chains)
	err = batch.Run(len(chains), opts.Workers, func(ci int, s *batch.Slot) error {
		work := works[s.ID()]
		if work == nil {
			work = core.NewPowerWork(q.Dim())
			works[s.ID()] = work
		}
		var prev []float64
		for i := chains[ci].Lo; i < chains[ci].Hi; i++ {
			p := ps[i]
			qp, err := mutation.NewUniform(q.ChainLen(), p)
			if err != nil {
				return err
			}
			op, err := baseOp.WithProcess(qp)
			if err != nil {
				return err
			}
			start := cold
			if opts.WarmStart && prev != nil {
				start = prev // aliases the slot scratch; PowerIteration self-copies
				stats.Warm[i] = true
			}
			var observer core.Observer
			if opts.Observe != nil {
				observer = opts.Observe(i, p)
			}
			res, err := core.PowerIteration(op, core.PowerOptions{
				Tol:      tol,
				MaxIter:  opts.MaxIter,
				Start:    start,
				Shift:    core.ConservativeShift(qp, l),
				Dev:      opts.Dev,
				Work:     work,
				Observer: observer,
			})
			if err != nil {
				return fmt.Errorf("p = %g: %w", p, err)
			}
			stats.Iterations[i] = res.Iterations
			if opts.Progress != nil {
				opts.Progress(i, p, res.Iterations, stats.Warm[i])
			}
			// res.Vector aliases work.x; normalizing it to concentrations
			// in place keeps its direction, so it stays a valid warm start.
			x := res.Vector
			if err := core.Concentrations(x); err != nil {
				return err
			}
			gamma, err := core.ClassConcentrations(l.ChainLen(), x)
			if err != nil {
				return err
			}
			out[i] = ThresholdPoint{P: p, Gamma: gamma}
			prev = x
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("harness: %w", err)
	}
	return out, stats, nil
}

// LocateThresholdOpts locates p_max like LocateThreshold but evaluates
// opts.Workers interior points of the bracket concurrently per round
// (k-section search): each round shrinks the bracket by a factor k+1
// instead of 2, so the round count drops from log₂(Δ/tol) to
// log_{k+1}(Δ/tol) while every round costs one parallel batch of reduced
// solves. Workers ≤ 1 reproduces plain bisection exactly.
func LocateThresholdOpts(l landscape.Landscape, lo, hi, tol float64, opts SweepOptions) (float64, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return 0, fmt.Errorf("harness: threshold location needs a class-based landscape, got %T", l)
	}
	if !(lo > 0 && hi > lo && hi <= 0.5) {
		return 0, fmt.Errorf("harness: invalid bracket [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-5
	}
	k := opts.Workers
	if k <= 0 {
		k = batch.Workers(0)
	}
	nu := len(phi) - 1
	uniformShare := math.Pow(2, -float64(nu))
	ordered := func(p float64) (bool, error) {
		red, err := errorclass.New(phi, p)
		if err != nil {
			return false, err
		}
		res, err := red.Solve()
		if err != nil {
			return false, err
		}
		return res.Gamma[0] > 100*uniformShare, nil
	}
	oLo, err := ordered(lo)
	if err != nil {
		return 0, err
	}
	oHi, err := ordered(hi)
	if err != nil {
		return 0, err
	}
	if !oLo {
		return 0, fmt.Errorf("harness: lower bracket p = %g is already disordered", lo)
	}
	if oHi {
		return 0, fmt.Errorf("harness: upper bracket p = %g is still ordered", hi)
	}
	mids := make([]float64, k)
	states := make([]bool, k)
	for hi-lo > tol {
		h := (hi - lo) / float64(k+1)
		for j := 0; j < k; j++ {
			mids[j] = lo + float64(j+1)*h
		}
		err := batch.Run(k, k, func(j int, _ *batch.Slot) error {
			om, err := ordered(mids[j])
			if err != nil {
				return err
			}
			states[j] = om
			return nil
		})
		if err != nil {
			return 0, err
		}
		// The transition lies between the last ordered and the first
		// disordered probe (the order indicator is monotone in p).
		newLo, newHi := lo, hi
		for j := 0; j < k; j++ {
			if states[j] {
				newLo = mids[j]
			} else {
				newHi = mids[j]
				break
			}
		}
		lo, hi = newLo, newHi
	}
	return (lo + hi) / 2, nil
}
