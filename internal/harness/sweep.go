package harness

import (
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/errorclass"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// This file is the batched sweep engine: the Figure 1 error-rate sweeps
// and the threshold search re-expressed over the internal/batch work-queue
// scheduler, with warm-start continuation along monotone p-chains and
// per-slot scratch reuse.
//
// Determinism contract: the sweep is partitioned into fixed-length
// continuation chains (batch.Chains) whose layout depends only on the
// point count — never on the worker count. Each chain is one schedulable
// task whose points run in order; within a chain the warm start for point
// i is exactly the converged vector of point i−1. Because the per-point
// arithmetic (operator, start, tolerance, shift) is thereby independent of
// scheduling, a sweep's results are bit-identical at every worker count.

// SweepOptions configures the batched sweep engine.
type SweepOptions struct {
	// Workers is the number of concurrent solves; ≤ 0 selects
	// GOMAXPROCS. Results are bit-identical at every worker count.
	Workers int
	// WarmStart seeds each point (after the first of its chain) with the
	// previous point's converged eigenvector instead of a cold start.
	WarmStart bool
	// ChainLen is the number of consecutive points per warm-start chain
	// (the scheduling granule); ≤ 0 selects batch.DefaultChainLen. The
	// chain layout is what keeps results independent of Workers.
	ChainLen int
	// Tol is the residual tolerance for the full-space solves; ≤ 0
	// selects core.DefaultTolerance for the landscape.
	Tol float64
	// MaxIter caps iterations per solve (0 = solver default).
	MaxIter int
	// Dev is the shared device runtime for the full-space solves; one
	// Device serves all workers (concurrent launches are pooled). Nil
	// runs each solve serially.
	Dev *device.Device
	// Observe, when non-nil, supplies the convergence-trace observer for
	// point i (p = ps[i]) of a full-space sweep; return nil to skip a
	// point. Observers for different points may be invoked concurrently
	// (one solve each), so the factory must be safe for concurrent calls —
	// obs.Trace.Recorder is. Reduced sweeps ignore it.
	Observe func(i int, p float64) core.Observer
	// Progress, when non-nil, is called once per finished point with its
	// solve cost, warm-start status, and the solve method that produced
	// it. Calls arrive concurrently from the sweep workers;
	// implementations must be safe for concurrent use.
	Progress func(i int, p float64, iters int, warm bool, method string)
	// Method selects the per-point eigensolver gear of the sweep. The zero
	// value (core.SolvePower) reproduces the historical power-iteration
	// sweeps byte for byte; core.SolveAuto engages the adaptive selector
	// (probe → power/chebyshev/shift-invert escalation ladder), which is
	// what lets sweeps cross the critical window with bounded per-point
	// iterations. Reduced sweeps map every non-power method onto the
	// RQI/LU shift-invert path (errorclass.SolveShiftInvertFrom).
	Method core.SolveMethod
}

// SweepStats instruments one sweep run.
type SweepStats struct {
	// Iterations[i] is the solver cost at point i: power/RQI iterations on
	// the classic paths, total matrix–vector products (probe included) on
	// the adaptive path.
	Iterations []int
	// Warm[i] reports whether point i was warm-started.
	Warm []bool
	// Methods[i] names the solve method that produced point i ("power",
	// "chebyshev", "shiftinvert", …). Nil for sweeps predating the
	// adaptive engine's instrumentation.
	Methods []string
	// Escalations is the total number of abandoned gear attempts across
	// the sweep (adaptive path only).
	Escalations int
	// Chains is the number of continuation chains the sweep was split into.
	Chains int
}

// MethodCounts tallies sweep points by solve method.
func (s *SweepStats) MethodCounts() map[string]int {
	out := map[string]int{}
	for _, m := range s.Methods {
		if m != "" {
			out[m]++
		}
	}
	return out
}

// TotalIterations sums the per-point iteration counts.
func (s *SweepStats) TotalIterations() int {
	t := 0
	for _, it := range s.Iterations {
		t += it
	}
	return t
}

// WarmPoints counts the warm-started points.
func (s *SweepStats) WarmPoints() int {
	n := 0
	for _, w := range s.Warm {
		if w {
			n++
		}
	}
	return n
}

// ThresholdSweepOpts is ThresholdSweep on the batch engine: the reduced
// Section 5.1 solves of a Figure 1 sweep scheduled over opts.Workers
// concurrent slots, with warm-start continuation along each chain (the
// reduced iteration runs on M = QΓᵀ·diag(ϕ), so a neighbor's Gamma vector
// is the exact warm start).
func ThresholdSweepOpts(l landscape.Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, *SweepStats, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return nil, nil, fmt.Errorf("harness: threshold sweep needs a class-based landscape, got %T", l)
	}
	// The reduced matrix is dense and (ν+1)²-small, so the method map is
	// two-valued: the historical dense power path, or the RQI/LU
	// shift-invert path whose factorization count stays O(10) across the
	// critical window (every non-power method selects it — there is no
	// Krylov machinery worth running at this size).
	shiftInvert := opts.Method != core.SolvePower
	methodName := core.SolvePower.String()
	if shiftInvert {
		methodName = core.SolveShiftInvert.String()
	}
	out := make([]ThresholdPoint, len(ps))
	stats := &SweepStats{
		Iterations: make([]int, len(ps)), Warm: make([]bool, len(ps)),
		Methods: make([]string, len(ps)),
	}
	chains := batch.Chains(len(ps), opts.ChainLen)
	stats.Chains = len(chains)
	err := batch.Run(len(chains), opts.Workers, func(ci int, _ *batch.Slot) error {
		var prev []float64
		for i := chains[ci].Lo; i < chains[ci].Hi; i++ {
			red, err := errorclass.New(phi, ps[i])
			if err != nil {
				return err
			}
			var start []float64
			if opts.WarmStart && prev != nil {
				start = prev
				stats.Warm[i] = true
			}
			var res *errorclass.Result
			if shiftInvert {
				res, err = red.SolveShiftInvertFrom(start)
			} else {
				res, err = red.SolveFrom(start)
			}
			if err != nil {
				return fmt.Errorf("p = %g: %w", ps[i], err)
			}
			out[i] = ThresholdPoint{P: ps[i], Gamma: res.Gamma}
			stats.Iterations[i] = res.Iterations
			stats.Methods[i] = methodName
			if opts.Progress != nil {
				opts.Progress(i, ps[i], res.Iterations, stats.Warm[i], methodName)
			}
			prev = res.Gamma
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("harness: %w", err)
	}
	return out, stats, nil
}

// ThresholdSweepFullOpts is ThresholdSweepFull on the batch engine: full
// 2^ν Pi(Fmmp) solves scheduled over opts.Workers slots. Each slot owns
// one reusable core.PowerWork, so memory stays at Workers·Θ(N) however
// long the sweep; each point's operator shares the landscape diagonals of
// a base operator (FmmpOperator.WithProcess) and, within a chain, is
// warm-started from the previous point's eigenvector held in the slot
// scratch.
func ThresholdSweepFullOpts(q *mutation.Process, l landscape.Landscape, ps []float64, opts SweepOptions) ([]ThresholdPoint, *SweepStats, error) {
	baseOp, err := core.NewFmmpOperator(q, l, core.Right, opts.Dev)
	if err != nil {
		return nil, nil, err
	}
	// The adaptive gears (Chebyshev, shift-invert, Lanczos) run in the
	// Symmetric formulation; build the base operator once and share its
	// landscape diagonals across the sweep like the Right one.
	adaptive := opts.Method != core.SolvePower
	var baseOpS *core.FmmpOperator
	if adaptive {
		baseOpS, err = core.NewFmmpOperator(q, l, core.Symmetric, opts.Dev)
		if err != nil {
			return nil, nil, err
		}
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = core.DefaultTolerance(l)
	}
	cold := core.FitnessStart(l) // shared read-only across slots
	workers := batch.Workers(opts.Workers)
	works := make([]*core.PowerWork, workers)
	var aworks []*core.AdaptiveWork
	if adaptive {
		aworks = make([]*core.AdaptiveWork, workers)
	}

	out := make([]ThresholdPoint, len(ps))
	stats := &SweepStats{
		Iterations: make([]int, len(ps)), Warm: make([]bool, len(ps)),
		Methods: make([]string, len(ps)),
	}
	chains := batch.Chains(len(ps), opts.ChainLen)
	stats.Chains = len(chains)
	// Escalations accumulate per chain and are summed after the run, so the
	// total never depends on worker interleaving.
	escalations := make([]int, len(chains))
	err = batch.Run(len(chains), opts.Workers, func(ci int, s *batch.Slot) error {
		var work *core.PowerWork
		var awork *core.AdaptiveWork
		if adaptive {
			awork = aworks[s.ID()]
			if awork == nil {
				awork = core.NewAdaptiveWork(q.Dim())
				aworks[s.ID()] = awork
			}
		} else {
			work = works[s.ID()]
			if work == nil {
				work = core.NewPowerWork(q.Dim())
				works[s.ID()] = work
			}
		}
		// Selector state is chain-local: a fresh zero value per chain keeps
		// warm shifts (and with them the whole gear sequence) independent of
		// which worker runs the chain.
		var state core.MethodState
		var prev []float64
		for i := chains[ci].Lo; i < chains[ci].Hi; i++ {
			p := ps[i]
			qp, err := mutation.NewUniform(q.ChainLen(), p)
			if err != nil {
				return err
			}
			op, err := baseOp.WithProcess(qp)
			if err != nil {
				return err
			}
			start := cold
			if opts.WarmStart && prev != nil {
				start = prev // aliases the slot scratch; the solvers self-copy
				stats.Warm[i] = true
			}
			var observer core.Observer
			if opts.Observe != nil {
				observer = opts.Observe(i, p)
			}
			var x []float64
			if adaptive {
				opS, err := baseOpS.WithProcess(qp)
				if err != nil {
					return err
				}
				res, err := core.AdaptiveSolve(op, opS, core.AdaptiveOptions{
					Method:     opts.Method,
					Tol:        tol,
					MaxIter:    opts.MaxIter,
					PowerShift: core.ConservativeShift(qp, l),
					Start:      start,
					Dev:        opts.Dev,
					Observer:   observer,
					Work:       awork,
					State:      &state,
				})
				if err != nil {
					return fmt.Errorf("p = %g: %w", p, err)
				}
				stats.Iterations[i] = res.Iterations
				stats.Methods[i] = res.Method.String()
				escalations[ci] += res.Escalations
				if opts.Progress != nil {
					opts.Progress(i, p, res.Iterations, stats.Warm[i], stats.Methods[i])
				}
				x = res.Vector
			} else {
				res, err := core.PowerIteration(op, core.PowerOptions{
					Tol:      tol,
					MaxIter:  opts.MaxIter,
					Start:    start,
					Shift:    core.ConservativeShift(qp, l),
					Dev:      opts.Dev,
					Work:     work,
					Observer: observer,
				})
				if err != nil {
					return fmt.Errorf("p = %g: %w", p, err)
				}
				stats.Iterations[i] = res.Iterations
				stats.Methods[i] = core.SolvePower.String()
				if opts.Progress != nil {
					opts.Progress(i, p, res.Iterations, stats.Warm[i], stats.Methods[i])
				}
				x = res.Vector
			}
			// x aliases the slot scratch; normalizing it to concentrations
			// in place keeps its direction, so it stays a valid warm start.
			if err := core.Concentrations(x); err != nil {
				return err
			}
			gamma, err := core.ClassConcentrations(l.ChainLen(), x)
			if err != nil {
				return err
			}
			out[i] = ThresholdPoint{P: p, Gamma: gamma}
			prev = x
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("harness: %w", err)
	}
	for _, e := range escalations {
		stats.Escalations += e
	}
	return out, stats, nil
}

// LocateThresholdOpts locates p_max like LocateThreshold but evaluates
// opts.Workers interior points of the bracket concurrently per round
// (k-section search): each round shrinks the bracket by a factor k+1
// instead of 2, so the round count drops from log₂(Δ/tol) to
// log_{k+1}(Δ/tol) while every round costs one parallel batch of reduced
// solves. Workers ≤ 1 reproduces plain bisection exactly.
func LocateThresholdOpts(l landscape.Landscape, lo, hi, tol float64, opts SweepOptions) (float64, error) {
	phi, ok := landscape.ClassBased(l)
	if !ok {
		return 0, fmt.Errorf("harness: threshold location needs a class-based landscape, got %T", l)
	}
	if !(lo > 0 && hi > lo && hi <= 0.5) {
		return 0, fmt.Errorf("harness: invalid bracket [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-5
	}
	k := opts.Workers
	if k <= 0 {
		k = batch.Workers(0)
	}
	nu := len(phi) - 1
	uniformShare := math.Pow(2, -float64(nu))
	ordered := func(p float64) (bool, error) {
		red, err := errorclass.New(phi, p)
		if err != nil {
			return false, err
		}
		var res *errorclass.Result
		if opts.Method != core.SolvePower {
			res, err = red.SolveShiftInvert()
		} else {
			res, err = red.Solve()
		}
		if err != nil {
			return false, err
		}
		return res.Gamma[0] > 100*uniformShare, nil
	}
	oLo, err := ordered(lo)
	if err != nil {
		return 0, err
	}
	oHi, err := ordered(hi)
	if err != nil {
		return 0, err
	}
	if !oLo {
		return 0, fmt.Errorf("harness: lower bracket p = %g is already disordered", lo)
	}
	if oHi {
		return 0, fmt.Errorf("harness: upper bracket p = %g is still ordered", hi)
	}
	mids := make([]float64, k)
	states := make([]bool, k)
	for hi-lo > tol {
		h := (hi - lo) / float64(k+1)
		for j := 0; j < k; j++ {
			mids[j] = lo + float64(j+1)*h
		}
		err := batch.Run(k, k, func(j int, _ *batch.Slot) error {
			om, err := ordered(mids[j])
			if err != nil {
				return err
			}
			states[j] = om
			return nil
		})
		if err != nil {
			return 0, err
		}
		// The transition lies between the last ordered and the first
		// disordered probe (the order indicator is monotone in p).
		newLo, newHi := lo, hi
		for j := 0; j < k; j++ {
			if states[j] {
				newLo = mids[j]
			} else {
				newHi = mids[j]
				break
			}
		}
		lo, hi = newLo, newHi
	}
	return (lo + hi) / 2, nil
}
