package harness

import (
	"fmt"
	"math"
)

// Roofline model. Section 4 observes that Fmmp is memory bound ("a
// relatively high number of memory operations compared to floating-point
// operations") and that "the performance achieved on the GPUs used exactly
// corresponds to their particular memory bandwidth". That makes runtimes
// predictable from first principles: one Fmmp application moves
// 16·N·log₂N bytes (a read and a write of the vector per butterfly
// stage), so a full solve at bandwidth B takes ≈ iters·16·N·log₂N / B.
//
// This file turns that observation into a model: it derives the achieved
// bandwidth of a measured Pi(Fmmp) series and synthesizes the series a
// device with a different bandwidth would produce — the mechanism behind
// the parallel hardware offsets of Figure 4. The paper's Tesla C2050 has
// 144 GB/s of theoretical memory bandwidth.

// FmmpSolveBytes returns the modeled memory traffic of a full solve:
// iterations × 16·2^ν·ν bytes.
func FmmpSolveBytes(nu, iterations int) float64 {
	n := math.Pow(2, float64(nu))
	return float64(iterations) * 16 * n * float64(nu)
}

// AchievedBandwidth derives the effective bytes/second of each measured
// sample of a Pi(Fmmp) series (samples must carry iteration counts) and
// returns the geometric mean. Extrapolated samples are ignored.
func AchievedBandwidth(s *Series) (float64, error) {
	var logSum float64
	n := 0
	for _, smp := range s.Samples {
		if smp.Extrapolated || smp.Seconds <= 0 || smp.Iterations <= 0 {
			continue
		}
		logSum += math.Log(FmmpSolveBytes(smp.Nu, smp.Iterations) / smp.Seconds)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("harness: series %q has no measured samples with iteration counts", s.Name)
	}
	return math.Exp(logSum / float64(n)), nil
}

// ModeledFmmpSeries synthesizes the Pi(Fmmp) runtime series of a device
// with the given memory bandwidth (bytes/second), taking per-ν iteration
// counts from the measured series (the iteration count is a property of
// the problem, not the hardware). Samples are marked extrapolated since
// they are model outputs, not measurements.
func ModeledFmmpSeries(name string, bandwidth float64, measured *Series) (*Series, error) {
	if bandwidth <= 0 {
		return nil, fmt.Errorf("harness: bandwidth %g must be positive", bandwidth)
	}
	out := &Series{Name: name}
	for _, smp := range measured.Samples {
		if smp.Iterations <= 0 {
			continue
		}
		out.Samples = append(out.Samples, Sample{
			Nu:           smp.Nu,
			Seconds:      FmmpSolveBytes(smp.Nu, smp.Iterations) / bandwidth,
			Iterations:   smp.Iterations,
			Extrapolated: true,
		})
	}
	if len(out.Samples) == 0 {
		return nil, fmt.Errorf("harness: measured series %q carries no iteration counts", measured.Name)
	}
	return out, nil
}
