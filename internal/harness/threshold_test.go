package harness

import (
	"math"
	"testing"

	"repro/internal/landscape"
)

func TestTheoreticalThreshold(t *testing.T) {
	got, err := TheoreticalThreshold(2, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(2, -1.0/20)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("p_max = %g, want %g", got, want)
	}
	// ≈ ln2/ν for small p.
	if math.Abs(got-math.Ln2/20) > 0.001 {
		t.Errorf("p_max = %g far from ln2/ν = %g", got, math.Ln2/20)
	}
	if _, err := TheoreticalThreshold(1, 20); err == nil {
		t.Error("σ ≤ 1 must be rejected")
	}
	if _, err := TheoreticalThreshold(2, 0); err == nil {
		t.Error("ν < 1 must be rejected")
	}
}

func TestLocateThresholdMatchesPaperAndTheory(t *testing.T) {
	// The paper reads p_max ≈ 0.035 off Figure 1 for ν = 20, σ = 2; the
	// first-order theory gives 0.0341. Bisection on the solved model must
	// land nearby.
	l, _ := landscape.NewSinglePeak(20, 2, 1)
	located, err := LocateThreshold(l, 0.005, 0.08, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	theory, _ := TheoreticalThreshold(2, 20)
	if math.Abs(located-0.035) > 0.005 {
		t.Errorf("located p_max = %g, paper reads ≈ 0.035", located)
	}
	if math.Abs(located-theory) > 0.005 {
		t.Errorf("located p_max = %g, theory %g", located, theory)
	}
	t.Logf("located %0.5f, theory %0.5f, paper ≈0.035", located, theory)
}

func TestLocateThresholdScalesWithSigma(t *testing.T) {
	// Doubling σ raises the threshold roughly like ln σ.
	l2, _ := landscape.NewSinglePeak(16, 2, 1)
	l4, _ := landscape.NewSinglePeak(16, 4, 1)
	p2, err := LocateThreshold(l2, 0.005, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := LocateThreshold(l4, 0.005, 0.2, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if p4 <= p2 {
		t.Errorf("fitter master must tolerate more error: p_max(σ=4)=%g vs p_max(σ=2)=%g", p4, p2)
	}
	ratio := p4 / p2
	if math.Abs(ratio-2) > 0.25 { // ln4/ln2 = 2
		t.Errorf("threshold ratio %g, expected ≈ ln4/ln2 = 2", ratio)
	}
}

func TestLocateThresholdBracketValidation(t *testing.T) {
	l, _ := landscape.NewSinglePeak(12, 2, 1)
	if _, err := LocateThreshold(l, 0.2, 0.4, 1e-4); err == nil {
		t.Error("already-disordered lower bracket must error")
	}
	if _, err := LocateThreshold(l, 0.001, 0.002, 1e-4); err == nil {
		t.Error("still-ordered upper bracket must error")
	}
	if _, err := LocateThreshold(l, -1, 0.1, 1e-4); err == nil {
		t.Error("invalid bracket must error")
	}
	// No threshold for the linear landscape within a sensible bracket: the
	// decay is smooth, but the criterion still crosses somewhere — verify
	// the function simply works and returns increasing-p order.
	lin, _ := landscape.NewLinear(12, 2, 1)
	if _, err := LocateThreshold(lin, 0.0005, 0.45, 1e-4); err != nil {
		t.Logf("linear landscape: %v (acceptable: criterion may not bracket)", err)
	}
	rl, _ := landscape.NewRandom(8, 5, 1, 1)
	if _, err := LocateThreshold(rl, 0.001, 0.1, 1e-4); err == nil {
		t.Error("unstructured landscape must be rejected")
	}
}
