package harness

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// Critical-window benchmark: a full-space sweep across the error threshold
// p_c — the regime the adaptive engine exists for. The grid straddles p_c
// (default 0.90·p_c → 1.08·p_c), where the spectral gap collapses and the
// plain power iteration stalls or blows past any reasonable budget. The
// benchmark runs the adaptive sweep serially and in parallel (bit-identity
// cross-check), then attempts the same sweep with the capped power
// iteration as the baseline the paper's cost model predicts will struggle.

// CriticalBenchConfig parameterizes RunCriticalBench.
type CriticalBenchConfig struct {
	Nu    int     // chain length (default 18)
	Sigma float64 // single-peak superiority f₀/f_base (default 2)
	// Points is the sweep grid size (default 13).
	Points int
	// FracMin/FracMax bracket the grid in units of the theoretical
	// threshold p_c = 1 − σ^(−1/ν) (defaults 0.90 and 1.08: through the
	// window, not around it).
	FracMin, FracMax float64
	Workers          int // parallel worker count (default 4)
	Tol              float64
	// MaxIter caps matrix–vector products per adaptive gear attempt
	// (0 = solver defaults).
	MaxIter int
	// PowerMaxIter caps the baseline power sweep (default 20000); hitting
	// the cap marks the baseline variant failed rather than erroring the
	// whole benchmark — that failure is the benchmark's point.
	PowerMaxIter int
	Dev          *device.Device
}

// CriticalPoint is one solved grid point of the adaptive sweep.
type CriticalPoint struct {
	P          float64 `json:"p"`
	FracPC     float64 `json:"frac_pc"` // p / p_c
	Method     string  `json:"method"`
	Iterations int     `json:"iterations"` // matvecs: probe + every gear attempt
	Warm       bool    `json:"warm"`
	Gamma0     float64 `json:"gamma0"` // master-class concentration
}

// CriticalBenchVariant is one measured sweep configuration.
type CriticalBenchVariant struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	Iterations int     `json:"iterations"` // total over the sweep
	// MaxPointIterations is the worst single point — the bounded-per-point
	// cost the adaptive engine is gated on.
	MaxPointIterations int `json:"max_point_iterations"`
	// Failed marks a variant that could not finish the sweep (the capped
	// power baseline inside the window); Error says why.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CriticalBenchResult is the outcome of RunCriticalBench.
type CriticalBenchResult struct {
	Nu      int      `json:"nu"`
	Sigma   float64  `json:"sigma"`
	PC      float64  `json:"p_c"`
	Points  int      `json:"points"`
	Workers int      `json:"workers"`
	PMin    float64  `json:"p_min"`
	PMax    float64  `json:"p_max"`
	Host    HostInfo `json:"host"`
	// Grid holds the per-point outcomes of the serial adaptive sweep.
	Grid     []CriticalPoint        `json:"grid"`
	Variants []CriticalBenchVariant `json:"variants"`
	// MethodCounts tallies the serial adaptive sweep's points by gear.
	MethodCounts map[string]int `json:"method_counts"`
	// Escalations is the serial adaptive sweep's abandoned gear attempts.
	Escalations int `json:"escalations"`
	// BitIdentical reports that the parallel adaptive sweep reproduced the
	// serial Gamma curves bit for bit.
	BitIdentical bool `json:"bit_identical"`
	// PowerCrossed reports whether the capped power baseline finished the
	// sweep at all.
	PowerCrossed bool `json:"power_crossed"`
}

func (cfg *CriticalBenchConfig) defaults() error {
	if cfg.Nu <= 0 {
		cfg.Nu = 18
	}
	if cfg.Sigma <= 1 {
		cfg.Sigma = 2
	}
	if cfg.Points <= 0 {
		cfg.Points = 13
	}
	if cfg.Points < 2 {
		return fmt.Errorf("harness: critical bench needs at least 2 points, got %d", cfg.Points)
	}
	if cfg.FracMin <= 0 || cfg.FracMax <= cfg.FracMin {
		cfg.FracMin, cfg.FracMax = 0.90, 1.08
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.PowerMaxIter <= 0 {
		cfg.PowerMaxIter = 20000
	}
	return nil
}

// RunCriticalBench sweeps the critical window with the adaptive engine
// (serial and parallel, bit-identity checked) and attempts the same window
// with the capped power iteration as the baseline.
func RunCriticalBench(cfg CriticalBenchConfig) (*CriticalBenchResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	l, err := landscape.NewSinglePeak(cfg.Nu, cfg.Sigma, 1)
	if err != nil {
		return nil, err
	}
	pc := 1 - math.Pow(cfg.Sigma, -1/float64(cfg.Nu))
	pMin, pMax := cfg.FracMin*pc, cfg.FracMax*pc
	q, err := mutation.NewUniform(cfg.Nu, pMin)
	if err != nil {
		return nil, err
	}
	ps := make([]float64, cfg.Points)
	for i := range ps {
		ps[i] = pMin + (pMax-pMin)*float64(i)/float64(cfg.Points-1)
	}

	res := &CriticalBenchResult{
		Nu: cfg.Nu, Sigma: cfg.Sigma, PC: pc,
		Points: cfg.Points, Workers: cfg.Workers,
		PMin: pMin, PMax: pMax,
		Host: CollectHostInfo(),
	}
	run := func(name string, workers int, method core.SolveMethod, maxIter int) ([]ThresholdPoint, *SweepStats, error) {
		opts := SweepOptions{
			Workers: workers, WarmStart: true, Method: method,
			Tol: cfg.Tol, MaxIter: maxIter, Dev: cfg.Dev,
		}
		var pts []ThresholdPoint
		var stats *SweepStats
		var runErr error
		secs := MeasureSeconds(func() {
			pts, stats, runErr = ThresholdSweepFullOpts(q, l, ps, opts)
		})
		v := CriticalBenchVariant{Name: name, Workers: workers, Seconds: secs}
		if runErr != nil {
			v.Failed = true
			v.Error = runErr.Error()
		} else {
			v.Iterations = stats.TotalIterations()
			for _, it := range stats.Iterations {
				if it > v.MaxPointIterations {
					v.MaxPointIterations = it
				}
			}
		}
		res.Variants = append(res.Variants, v)
		return pts, stats, runErr
	}

	serial, serialStats, err := run("auto-serial", 1, core.SolveAuto, cfg.MaxIter)
	if err != nil {
		return nil, fmt.Errorf("harness: adaptive critical sweep failed: %w", err)
	}
	res.MethodCounts = serialStats.MethodCounts()
	res.Escalations = serialStats.Escalations
	res.Grid = make([]CriticalPoint, len(ps))
	for i := range ps {
		res.Grid[i] = CriticalPoint{
			P: ps[i], FracPC: ps[i] / pc,
			Method: serialStats.Methods[i], Iterations: serialStats.Iterations[i],
			Warm: serialStats.Warm[i], Gamma0: serial[i].Gamma[0],
		}
	}

	parallel, _, err := run("auto-parallel", cfg.Workers, core.SolveAuto, cfg.MaxIter)
	if err != nil {
		return nil, fmt.Errorf("harness: parallel adaptive sweep failed: %w", err)
	}
	res.BitIdentical = pointsIdentical(serial, parallel)

	// The baseline: the historical power sweep, capped. Convergence errors
	// are the expected outcome inside the window and are recorded, not
	// returned.
	_, _, err = run("power-capped", 1, core.SolvePower, cfg.PowerMaxIter)
	if err != nil && !errors.Is(err, core.ErrNoConvergence) && !errors.Is(err, core.ErrStagnated) {
		return nil, fmt.Errorf("harness: power baseline failed unexpectedly: %w", err)
	}
	res.PowerCrossed = err == nil
	return res, nil
}

// WriteTSV renders the benchmark as tab-separated values: per-point rows of
// the serial adaptive sweep, then one row per variant.
func (r *CriticalBenchResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# critical bench: nu=%d sigma=%g p_c=%.6g grid=[%.6g,%.6g] points=%d workers=%d bit_identical=%v power_crossed=%v escalations=%d\n",
		r.Nu, r.Sigma, r.PC, r.PMin, r.PMax, r.Points, r.Workers, r.BitIdentical, r.PowerCrossed, r.Escalations); err != nil {
		return err
	}
	if r.Host != (HostInfo{}) {
		if _, err := fmt.Fprintf(w, "# host: %s %s/%s cpus=%d gomaxprocs=%d\n",
			r.Host.GoVersion, r.Host.GOOS, r.Host.GOARCH, r.Host.NumCPU, r.Host.GOMAXPROCS); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "p\tfrac_pc\tmethod\titerations\twarm\tgamma0"); err != nil {
		return err
	}
	for _, pt := range r.Grid {
		if _, err := fmt.Fprintf(w, "%.8g\t%.4f\t%s\t%d\t%v\t%.8g\n",
			pt.P, pt.FracPC, pt.Method, pt.Iterations, pt.Warm, pt.Gamma0); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "variant\tworkers\tseconds\titerations\tmax_point_iterations\tfailed"); err != nil {
		return err
	}
	for _, v := range r.Variants {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.6g\t%d\t%d\t%v\n",
			v.Name, v.Workers, v.Seconds, v.Iterations, v.MaxPointIterations, v.Failed); err != nil {
			return err
		}
	}
	return nil
}
