package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// This file implements the four experiments of the paper's evaluation.

// ---------------------------------------------------------------------------
// Figure 1: error-threshold curves

// ThresholdPoint is one column of Figure 1: the cumulative class
// concentrations at a given error rate.
type ThresholdPoint struct {
	P     float64
	Gamma []float64 // [Γ0] … [Γν]
}

// ThresholdSweep computes the Figure 1 curves for a class-based landscape:
// for each error rate the dominant eigenvector is computed and accumulated
// into the error classes. The exact Section 5.1 reduction is used, which
// the reproduction tests verify against the full Pi(Fmmp) solve. It is
// the serial-cold form of ThresholdSweepOpts (see sweep.go).
func ThresholdSweep(l landscape.Landscape, ps []float64) ([]ThresholdPoint, error) {
	out, _, err := ThresholdSweepOpts(l, ps, SweepOptions{Workers: 1})
	return out, err
}

// ThresholdSweepFull is ThresholdSweep through the full 2^ν Pi(Fmmp)
// pipeline — usable for any landscape, at Θ(N) memory per solve. It is
// the serial-cold form of ThresholdSweepFullOpts; the tolerance is
// core.DefaultTolerance(l), the attainable floating-point floor of the
// landscape, rather than a fixed constant.
func ThresholdSweepFull(q *mutation.Process, l landscape.Landscape, ps []float64, dev *device.Device) ([]ThresholdPoint, error) {
	out, _, err := ThresholdSweepFullOpts(q, l, ps, SweepOptions{Workers: 1, Dev: dev})
	return out, err
}

// ---------------------------------------------------------------------------
// Figure 2: single-core matvec runtimes

// MatvecConfig parameterizes the Figure 2 measurement.
type MatvecConfig struct {
	Nus     []int   // chain lengths to measure
	P       float64 // error rate (paper: 0.01)
	Reps    int     // repetitions per point, best-of (default 3)
	MaxFull int     // largest ν for the Θ(N²) Xmvp(ν) variant (default 14)
	Seed    uint64  // random-landscape seed
}

// MatvecRuntimes measures one W·x per method per chain length on a single
// core: Xmvp(ν) (≡ Smvp, Θ(N²)), Xmvp(1) (coarsest sparsification) and
// Fmmp — the three curves of Figure 2. The Θ(N²) curve is extrapolated
// past MaxFull, as in the paper.
func MatvecRuntimes(cfg MatvecConfig) ([]*Series, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 3
	}
	if cfg.MaxFull <= 0 {
		cfg.MaxFull = 14
	}
	if cfg.P <= 0 {
		cfg.P = 0.01
	}
	full := &Series{Name: "Xmvp(nu)"}
	sparse1 := &Series{Name: "Xmvp(1)"}
	fmmp := &Series{Name: "Fmmp"}

	for _, nu := range cfg.Nus {
		l, err := landscape.NewRandom(nu, 5, 1, cfg.Seed+uint64(nu))
		if err != nil {
			return nil, err
		}
		q, err := mutation.NewUniform(nu, cfg.P)
		if err != nil {
			return nil, err
		}
		fm, err := core.NewFmmpOperator(q, l, core.Right, nil)
		if err != nil {
			return nil, err
		}
		n := q.Dim()
		x := core.FitnessStart(l)
		dst := make([]float64, n)

		fmmp.Samples = append(fmmp.Samples, Sample{Nu: nu,
			Seconds: MeasureBest(cfg.Reps, func() { fm.Apply(dst, x) })})

		x1, err := mutation.NewXmvp(nu, cfg.P, 1)
		if err != nil {
			return nil, err
		}
		o1, err := core.NewXmvpOperator(x1, l, core.Right, nil)
		if err != nil {
			return nil, err
		}
		sparse1.Samples = append(sparse1.Samples, Sample{Nu: nu,
			Seconds: MeasureBest(cfg.Reps, func() { o1.Apply(dst, x) })})

		if nu <= cfg.MaxFull {
			xf, err := mutation.NewXmvp(nu, cfg.P, nu)
			if err != nil {
				return nil, err
			}
			of, err := core.NewXmvpOperator(xf, l, core.Right, nil)
			if err != nil {
				return nil, err
			}
			full.Samples = append(full.Samples, Sample{Nu: nu,
				Seconds: MeasureBest(cfg.Reps, func() { of.Apply(dst, x) })})
		}
	}
	if err := ExtendByModel(full, ModelN2, cfg.Nus); err != nil {
		return nil, err
	}
	return []*Series{full, sparse1, fmmp}, nil
}

// ---------------------------------------------------------------------------
// Figure 3: full power-iteration solves

// SolverConfig parameterizes the Figure 3 measurement.
type SolverConfig struct {
	Nus []int
	P   float64 // error rate (paper: 0.01)
	C   float64 // random landscape c (paper: 5)
	Sig float64 // random landscape σ (paper: 1)
	// TolExact is τ for the fully accurate methods (paper: 1e-15).
	TolExact float64
	// TolApprox is τ for Xmvp(5) (paper: 1e-10, its attainable accuracy).
	TolApprox float64
	// MaxFull bounds measured ν for Pi(Xmvp(ν)); larger are extrapolated
	// from the measured prefix, as in the paper (default 13).
	MaxFull int
	// MaxSparse bounds measured ν for Pi(Xmvp(5)) (default: no bound).
	MaxSparse int
	Dev       *device.Device // nil = serial ("CPU"); workers>1 = "GPU" analogue
	Seed      uint64
	UseShift  bool
}

func (cfg *SolverConfig) defaults() {
	if cfg.P <= 0 {
		cfg.P = 0.01
	}
	if cfg.C <= 0 {
		cfg.C = 5
	}
	if cfg.Sig <= 0 {
		cfg.Sig = 1
	}
	if cfg.TolExact <= 0 {
		cfg.TolExact = 1e-13
	}
	if cfg.TolApprox <= 0 {
		cfg.TolApprox = 1e-10
	}
	if cfg.MaxFull <= 0 {
		cfg.MaxFull = 13
	}
	if cfg.MaxSparse <= 0 {
		cfg.MaxSparse = 1 << 30
	}
}

// solveOne runs a full power iteration on op and returns (seconds, iters).
func solveOne(op core.Operator, l landscape.Landscape, tol float64, shift float64, dev *device.Device) (float64, int, error) {
	var iters int
	secs := MeasureSeconds(func() {
		res, err := core.PowerIteration(op, core.PowerOptions{
			Tol: tol, Start: core.FitnessStart(l), Shift: shift, Dev: dev,
		})
		if err != nil {
			iters = -1
			return
		}
		iters = res.Iterations
	})
	if iters < 0 {
		return 0, 0, fmt.Errorf("harness: power iteration failed (tol %g)", tol)
	}
	return secs, iters, nil
}

// SolverRuntimes measures the three Figure 3 curves: Pi(Xmvp(ν)),
// Pi(Xmvp(5)) and Pi(Fmmp) on the random landscape of Eq. 13.
func SolverRuntimes(cfg SolverConfig) ([]*Series, error) {
	cfg.defaults()
	full := &Series{Name: "Pi(Xmvp(nu))"}
	sparse5 := &Series{Name: "Pi(Xmvp(5))"}
	fmmp := &Series{Name: "Pi(Fmmp)"}

	for _, nu := range cfg.Nus {
		l, err := landscape.NewRandom(nu, cfg.C, cfg.Sig, cfg.Seed+uint64(nu))
		if err != nil {
			return nil, err
		}
		q, err := mutation.NewUniform(nu, cfg.P)
		if err != nil {
			return nil, err
		}
		shift := 0.0
		if cfg.UseShift {
			shift = core.ConservativeShift(q, l)
		}

		op, err := core.NewFmmpOperator(q, l, core.Right, cfg.Dev)
		if err != nil {
			return nil, err
		}
		secs, iters, err := solveOne(op, l, cfg.TolExact, shift, cfg.Dev)
		if err != nil {
			return nil, fmt.Errorf("Fmmp ν=%d: %w", nu, err)
		}
		fmmp.Samples = append(fmmp.Samples, Sample{Nu: nu, Seconds: secs, Iterations: iters})

		if nu <= cfg.MaxSparse {
			x5, err := mutation.NewXmvp(nu, cfg.P, 5)
			if err != nil {
				return nil, err
			}
			o5, err := core.NewXmvpOperator(x5, l, core.Right, cfg.Dev)
			if err != nil {
				return nil, err
			}
			secs, iters, err = solveOne(o5, l, cfg.TolApprox, shift, cfg.Dev)
			if err != nil {
				return nil, fmt.Errorf("Xmvp(5) ν=%d: %w", nu, err)
			}
			sparse5.Samples = append(sparse5.Samples, Sample{Nu: nu, Seconds: secs, Iterations: iters})
		}

		if nu <= cfg.MaxFull {
			xf, err := mutation.NewXmvp(nu, cfg.P, nu)
			if err != nil {
				return nil, err
			}
			of, err := core.NewXmvpOperator(xf, l, core.Right, cfg.Dev)
			if err != nil {
				return nil, err
			}
			secs, iters, err = solveOne(of, l, cfg.TolExact, shift, cfg.Dev)
			if err != nil {
				return nil, fmt.Errorf("Xmvp(ν) ν=%d: %w", nu, err)
			}
			full.Samples = append(full.Samples, Sample{Nu: nu, Seconds: secs, Iterations: iters})
		}
	}
	// Extrapolate the Θ(N²)-per-iteration reference; the iteration count
	// grows slowly with ν, so the per-solve model N²·ν is a serviceable
	// envelope — consistent with the paper's curve-based extrapolation.
	if err := ExtendByModel(full, ModelN2, cfg.Nus); err != nil {
		return nil, err
	}
	if err := ExtendByModel(sparse5, ModelNNeighborhood(5), cfg.Nus); err != nil {
		return nil, err
	}
	return []*Series{full, sparse5, fmmp}, nil
}

// ---------------------------------------------------------------------------
// Shift ablation (the Section 3 "ten percent and more" claim)

// ShiftStudyPoint compares iteration counts with and without the
// conservative shift on one random landscape.
type ShiftStudyPoint struct {
	Nu            int
	Seed          uint64
	IterPlain     int
	IterShifted   int
	ReductionPct  float64
	LambdaMatches bool
}

// ShiftStudy runs the shifted-vs-plain comparison over several seeds.
func ShiftStudy(nu int, p float64, tol float64, seeds []uint64) ([]ShiftStudyPoint, error) {
	var out []ShiftStudyPoint
	for _, seed := range seeds {
		l, err := landscape.NewRandom(nu, 5, 1, seed)
		if err != nil {
			return nil, err
		}
		q, err := mutation.NewUniform(nu, p)
		if err != nil {
			return nil, err
		}
		op, err := core.NewFmmpOperator(q, l, core.Right, nil)
		if err != nil {
			return nil, err
		}
		plain, err := core.PowerIteration(op, core.PowerOptions{Tol: tol, Start: core.FitnessStart(l)})
		if err != nil {
			return nil, err
		}
		shifted, err := core.PowerIteration(op, core.PowerOptions{
			Tol: tol, Start: core.FitnessStart(l), Shift: core.ConservativeShift(q, l),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ShiftStudyPoint{
			Nu: nu, Seed: seed,
			IterPlain:     plain.Iterations,
			IterShifted:   shifted.Iterations,
			ReductionPct:  100 * (1 - float64(shifted.Iterations)/float64(plain.Iterations)),
			LambdaMatches: absDiff(plain.Lambda, shifted.Lambda) < 1e-8,
		})
	}
	return out, nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// ---------------------------------------------------------------------------
// Accuracy study (Xmvp(dmax) truncation error; Section 4's τ rationale)

// AccuracyPoint records the eigenvector error of Pi(Xmvp(dmax)) against
// the exact Pi(Fmmp) solution.
type AccuracyPoint struct {
	DMax        int
	VectorErr   float64 // ‖x_approx − x_exact‖∞ of the concentration vectors
	LambdaErr   float64
	MatvecMasks int
}

// AccuracyStudy quantifies the accuracy/cost trade-off of the sparsified
// baseline for dmax = 1…min(ν, maxD).
func AccuracyStudy(nu int, p float64, seed uint64, maxD int) ([]AccuracyPoint, error) {
	l, err := landscape.NewRandom(nu, 5, 1, seed)
	if err != nil {
		return nil, err
	}
	q, err := mutation.NewUniform(nu, p)
	if err != nil {
		return nil, err
	}
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		return nil, err
	}
	exact, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-13, Start: core.FitnessStart(l)})
	if err != nil {
		return nil, err
	}
	exactX := vec.Clone(exact.Vector)
	if err := core.Concentrations(exactX); err != nil {
		return nil, err
	}

	if maxD > nu {
		maxD = nu
	}
	var out []AccuracyPoint
	for d := 1; d <= maxD; d++ {
		x, err := mutation.NewXmvp(nu, p, d)
		if err != nil {
			return nil, err
		}
		o, err := core.NewXmvpOperator(x, l, core.Right, nil)
		if err != nil {
			return nil, err
		}
		res, err := core.PowerIteration(o, core.PowerOptions{Tol: 1e-13, MaxIter: 200000, Start: core.FitnessStart(l)})
		if err != nil && res.Vector == nil {
			return nil, err
		}
		ax := vec.Clone(res.Vector)
		if err := core.Concentrations(ax); err != nil {
			return nil, err
		}
		out = append(out, AccuracyPoint{
			DMax:        d,
			VectorErr:   vec.DistInf(ax, exactX),
			LambdaErr:   absDiff(res.Lambda, exact.Lambda),
			MatvecMasks: x.MaskCount(),
		})
	}
	return out, nil
}
