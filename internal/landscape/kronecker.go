package landscape

import (
	"fmt"
	"math"

	"repro/internal/bits"
)

// Kronecker is the structured landscape of Eq. 18, F = ⊗ᵢ F_{Gᵢ} with
// diagonal factors F_{Gᵢ} of dimension 2^gᵢ. Factor 0 acts on the lowest
// gᵢ bit positions, matching the bit convention of the mutation package.
//
// The representation stays implicit: fᵢ is the product of one entry per
// factor, so Σ 2^gᵢ values describe a landscape over 2^ν sequences and
// chain lengths far beyond dense storage (e.g. ν = 100 with g = 4 groups
// of 25 bits) remain representable. Such landscapes have Σᵢ 2^gᵢ degrees
// of freedom, "a much richer structure than … Hamming distances"
// (Section 5.2).
type Kronecker struct {
	factors [][]float64 // factor g: positive diagonal of length 2^bits[g]
	gbits   []int       // bits per factor
	offsets []int       // starting bit of each factor
	nu      int
	lo, hi  float64
}

// NewKronecker constructs the landscape from the diagonal factors. Every
// factor length must be a power of two ≥ 2 and every entry positive.
func NewKronecker(factors [][]float64) (*Kronecker, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("landscape: Kronecker landscape needs at least one factor")
	}
	k := &Kronecker{lo: 1, hi: 1}
	offset := 0
	for idx, f := range factors {
		n := len(f)
		if n < 2 || n&(n-1) != 0 {
			return nil, fmt.Errorf("landscape: factor %d length %d is not a power of two ≥ 2", idx, n)
		}
		g := 0
		for 1<<g < n {
			g++
		}
		flo, fhi := f[0], f[0]
		for i, v := range f {
			if v <= 0 {
				return nil, fmt.Errorf("%w: factor %d entry %d = %g", ErrNonPositive, idx, i, v)
			}
			flo = math.Min(flo, v)
			fhi = math.Max(fhi, v)
		}
		cp := make([]float64, n)
		copy(cp, f)
		k.factors = append(k.factors, cp)
		k.gbits = append(k.gbits, g)
		k.offsets = append(k.offsets, offset)
		k.lo *= flo
		k.hi *= fhi
		offset += g
	}
	if offset > bits.MaxChainLen {
		return nil, fmt.Errorf("landscape: total chain length %d exceeds %d for explicit indexing; "+
			"use the per-factor API for longer chains", offset, bits.MaxChainLen)
	}
	k.nu = offset
	return k, nil
}

func (k *Kronecker) ChainLen() int { return k.nu }
func (k *Kronecker) Dim() int      { return bits.SpaceSize(k.nu) }

// At returns fᵢ = Π_g factor_g[bits of i in group g].
func (k *Kronecker) At(i uint64) float64 {
	f := 1.0
	for g := range k.factors {
		sub := (i >> uint(k.offsets[g])) & ((1 << uint(k.gbits[g])) - 1)
		f *= k.factors[g][sub]
	}
	return f
}

func (k *Kronecker) Bounds() (lo, hi float64) { return k.lo, k.hi }

// NumFactors returns g, the number of independent groups.
func (k *Kronecker) NumFactors() int { return len(k.factors) }

// Factor returns the diagonal of factor g (read-only).
func (k *Kronecker) Factor(g int) []float64 { return k.factors[g] }

// FactorBits returns gᵢ, the number of bit positions factor g covers.
func (k *Kronecker) FactorBits(g int) int { return k.gbits[g] }

// FactorOffset returns the starting bit position of factor g.
func (k *Kronecker) FactorOffset(g int) int { return k.offsets[g] }

// DegreesOfFreedom returns Σᵢ 2^gᵢ, the number of free parameters — the
// quantity Section 5.2 compares against the ν+1 of class landscapes.
func (k *Kronecker) DegreesOfFreedom() int {
	s := 0
	for _, f := range k.factors {
		s += len(f)
	}
	return s
}
