package landscape

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/rng"
)

func checkBounds(t *testing.T, l Landscape) {
	t.Helper()
	lo, hi := l.Bounds()
	if lo <= 0 {
		t.Fatalf("lower bound %g not positive", lo)
	}
	n := l.Dim()
	if n > 1<<16 {
		n = 1 << 16
	}
	for i := 0; i < n; i++ {
		f := l.At(uint64(i))
		if f < lo || f > hi {
			t.Fatalf("f[%d] = %g outside bounds [%g, %g]", i, f, lo, hi)
		}
	}
}

func TestSinglePeak(t *testing.T) {
	s, err := NewSinglePeak(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 2 {
		t.Error("master fitness wrong")
	}
	for _, i := range []uint64{1, 5, 1023} {
		if s.At(i) != 1 {
			t.Errorf("f[%d] = %g", i, s.At(i))
		}
	}
	if s.Dim() != 1024 || s.ChainLen() != 10 {
		t.Error("dims wrong")
	}
	checkBounds(t, s)
}

func TestSinglePeakValidation(t *testing.T) {
	if _, err := NewSinglePeak(5, 0, 1); !errors.Is(err, ErrNonPositive) {
		t.Error("peak 0 must be rejected")
	}
	if _, err := NewSinglePeak(5, 1, -1); !errors.Is(err, ErrNonPositive) {
		t.Error("negative base must be rejected")
	}
}

func TestLinearEndpointsAndSlope(t *testing.T) {
	l, err := NewLinear(20, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.At(0) != 2 {
		t.Errorf("f₀ = %g, want 2", l.At(0))
	}
	full := uint64(1<<20 - 1)
	if math.Abs(l.At(full)-1) > 1e-15 {
		t.Errorf("f at distance ν = %g, want 1", l.At(full))
	}
	// Halfway.
	if got := l.Phi(10); math.Abs(got-1.5) > 1e-15 {
		t.Errorf("ϕ(10) = %g, want 1.5", got)
	}
	checkBounds(t, l)
}

func TestLinearDependsOnlyOnWeight(t *testing.T) {
	l, _ := NewLinear(8, 3, 1)
	for i := uint64(0); i < 256; i++ {
		if l.At(i) != l.Phi(bits.Weight(i)) {
			t.Fatalf("linear landscape not class based at %d", i)
		}
	}
}

func TestErrorClassLandscape(t *testing.T) {
	phi := []float64{5, 3, 2, 1, 0.5}
	e, err := NewErrorClass(phi)
	if err != nil {
		t.Fatal(err)
	}
	if e.ChainLen() != 4 || e.Dim() != 16 {
		t.Error("dims wrong")
	}
	for i := uint64(0); i < 16; i++ {
		if e.At(i) != phi[bits.Weight(i)] {
			t.Fatalf("f[%d] wrong", i)
		}
	}
	checkBounds(t, e)
	// Table copies are independent.
	tab := e.PhiTable()
	tab[0] = 999
	if e.Phi(0) != 5 {
		t.Error("PhiTable aliases internal state")
	}
	phi[1] = -1
	if e.Phi(1) != 3 {
		t.Error("constructor aliases caller slice")
	}
}

func TestErrorClassValidation(t *testing.T) {
	if _, err := NewErrorClass([]float64{1, 0, 1}); !errors.Is(err, ErrNonPositive) {
		t.Error("zero ϕ must be rejected")
	}
	if _, err := NewErrorClass(nil); err == nil {
		t.Error("empty ϕ must be rejected")
	}
}

func TestRandomLandscapeEq13(t *testing.T) {
	r, err := NewRandom(12, 5, 1, 123)
	if err != nil {
		t.Fatal(err)
	}
	if r.At(0) != 5 {
		t.Errorf("f₀ = %g, want c = 5", r.At(0))
	}
	// fᵢ = σ(η+0.5) ∈ [0.5, 1.5) for σ = 1.
	for i := uint64(1); i < 4096; i++ {
		f := r.At(i)
		if f < 0.5 || f >= 1.5 {
			t.Fatalf("f[%d] = %g outside [0.5, 1.5)", i, f)
		}
	}
	checkBounds(t, r)
}

func TestRandomLandscapeDeterministicRandomAccess(t *testing.T) {
	a, _ := NewRandom(20, 5, 1, 7)
	b, _ := NewRandom(20, 5, 1, 7)
	for _, i := range []uint64{1, 99, 1 << 19, 1<<20 - 1} {
		if a.At(i) != b.At(i) {
			t.Fatalf("same seed differs at %d", i)
		}
	}
	c, _ := NewRandom(20, 5, 1, 8)
	diff := 0
	for i := uint64(1); i < 100; i++ {
		if a.At(i) != c.At(i) {
			diff++
		}
	}
	if diff < 95 {
		t.Errorf("different seeds share %d of 99 values", 99-diff)
	}
}

func TestRandomLandscapeMeanIsUnbiased(t *testing.T) {
	r, _ := NewRandom(16, 5, 1, 42)
	var sum float64
	n := 1 << 16
	for i := 1; i < n; i++ {
		sum += r.At(uint64(i))
	}
	mean := sum / float64(n-1)
	if math.Abs(mean-1.0) > 0.01 {
		t.Errorf("mean fitness %g, want ≈ σ·1.0 = 1", mean)
	}
}

func TestRandomValidation(t *testing.T) {
	if _, err := NewRandom(5, 0, 1, 0); err == nil {
		t.Error("c = 0 must be rejected")
	}
	if _, err := NewRandom(5, 5, 2.5, 0); err == nil {
		t.Error("σ = c/2 must be rejected (must be strictly inside)")
	}
	if _, err := NewRandom(5, 5, 0, 0); err == nil {
		t.Error("σ = 0 must be rejected")
	}
}

func TestVectorLandscape(t *testing.T) {
	v, err := NewVector([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.ChainLen() != 2 || v.Dim() != 4 {
		t.Error("dims wrong")
	}
	if v.At(2) != 3 {
		t.Error("At wrong")
	}
	checkBounds(t, v)
}

func TestVectorValidation(t *testing.T) {
	if _, err := NewVector([]float64{1, 2, 3}); err == nil {
		t.Error("non-power-of-two length must be rejected")
	}
	if _, err := NewVector([]float64{1, -2}); !errors.Is(err, ErrNonPositive) {
		t.Error("negative fitness must be rejected")
	}
	if _, err := NewVector(nil); err == nil {
		t.Error("empty vector must be rejected")
	}
}

func TestVectorConstructorCopies(t *testing.T) {
	f := []float64{1, 2}
	v, _ := NewVector(f)
	f[0] = 99
	if v.At(0) != 1 {
		t.Error("NewVector aliases caller slice")
	}
}

func TestUniformLandscape(t *testing.T) {
	u, err := NewUniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if u.At(i) != 3 {
			t.Fatal("uniform landscape not uniform")
		}
	}
	checkBounds(t, u)
}

func TestClassBasedDetection(t *testing.T) {
	sp, _ := NewSinglePeak(4, 2, 1)
	lin, _ := NewLinear(4, 2, 1)
	ec, _ := NewErrorClass([]float64{1, 2, 3, 4, 5})
	uni, _ := NewUniform(4, 2)
	for name, l := range map[string]Landscape{"singlepeak": sp, "linear": lin, "errorclass": ec, "uniform": uni} {
		phi, ok := ClassBased(l)
		if !ok || len(phi) != 5 {
			t.Errorf("%s: ClassBased = (%v,%v)", name, phi, ok)
		}
		for i := uint64(0); i < 16; i++ {
			if phi[bits.Weight(i)] != l.At(i) {
				t.Errorf("%s: ϕ table inconsistent at %d", name, i)
			}
		}
	}
	// A class-structured explicit vector is detected…
	ecv, _ := NewVector(Materialize(ec))
	if _, ok := ClassBased(ecv); !ok {
		t.Error("class-structured vector not detected")
	}
	// …and a genuinely unstructured one is not.
	rl, _ := NewRandom(4, 5, 1, 3)
	rv, _ := NewVector(Materialize(rl))
	if _, ok := ClassBased(rv); ok {
		t.Error("random vector misdetected as class based")
	}
	if _, ok := ClassBased(rl); ok {
		t.Error("Random landscape misdetected as class based")
	}
}

func TestMaterializeMatchesAt(t *testing.T) {
	r, _ := NewRandom(10, 5, 1, 99)
	f := Materialize(r)
	for i := range f {
		if f[i] != r.At(uint64(i)) {
			t.Fatalf("Materialize differs at %d", i)
		}
	}
}

func TestKroneckerLandscape(t *testing.T) {
	k, err := NewKronecker([][]float64{{1, 2}, {3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if k.ChainLen() != 3 || k.Dim() != 8 || k.NumFactors() != 2 {
		t.Error("shape wrong")
	}
	// f(i) = factor0[bit0] * factor1[bits 1..2].
	want := []float64{1 * 3, 2 * 3, 1 * 4, 2 * 4, 1 * 5, 2 * 5, 1 * 6, 2 * 6}
	for i := range want {
		if got := k.At(uint64(i)); got != want[i] {
			t.Errorf("f[%d] = %g, want %g", i, got, want[i])
		}
	}
	if k.DegreesOfFreedom() != 6 {
		t.Errorf("DoF = %d, want 6", k.DegreesOfFreedom())
	}
	checkBounds(t, k)
}

func TestKroneckerEqualsExplicitProduct(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		var factors [][]float64
		total := 0
		for total < 5 {
			g := 1 + int(r.Uint64n(2))
			fac := make([]float64, 1<<g)
			for i := range fac {
				fac[i] = 0.5 + r.Float64()
			}
			factors = append(factors, fac)
			total += g
		}
		k, err := NewKronecker(factors)
		if err != nil {
			return false
		}
		// Explicit product over the bits.
		for i := uint64(0); i < uint64(k.Dim()); i++ {
			want := 1.0
			off := 0
			for _, fac := range factors {
				g := 0
				for 1<<g < len(fac) {
					g++
				}
				want *= fac[(i>>uint(off))&uint64(len(fac)-1)]
				off += g
			}
			if math.Abs(k.At(i)-want) > 1e-14*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKroneckerValidation(t *testing.T) {
	if _, err := NewKronecker(nil); err == nil {
		t.Error("empty factor list must be rejected")
	}
	if _, err := NewKronecker([][]float64{{1, 2, 3}}); err == nil {
		t.Error("non-power-of-two factor must be rejected")
	}
	if _, err := NewKronecker([][]float64{{1, -2}}); !errors.Is(err, ErrNonPositive) {
		t.Error("negative factor entry must be rejected")
	}
	if _, err := NewKronecker([][]float64{{1}}); err == nil {
		t.Error("length-1 factor must be rejected")
	}
}

func TestBoundsAreValidEnvelopes(t *testing.T) {
	r, _ := NewRandom(14, 5, 2, 11)
	lo, hi := r.Bounds()
	for i := uint64(0); i < uint64(r.Dim()); i++ {
		f := r.At(i)
		if f < lo || f > hi {
			t.Fatalf("f[%d] = %g escapes [%g,%g]", i, f, lo, hi)
		}
	}
}
