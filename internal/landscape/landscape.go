// Package landscape implements the fitness landscapes F = diag(f₀ … f_{N−1})
// of the quasispecies model, covering every family used in the paper:
//
//   - the single-peak landscape f₀ = a, fᵢ = b (Figure 1 left);
//   - the linear landscape fᵢ = f₀ − (f₀−f_ν)·dH(i,0)/ν (Figure 1 right);
//   - general error-class (Hamming distance based) landscapes
//     fᵢ = ϕ(dH(i,0)) (Section 5.1);
//   - the random landscape f₀ = c, fᵢ = σ·(η_rnd(i)+0.5) of Eq. 13
//     (Section 4's experiments), realized with a counter-based hash so any
//     fᵢ is random-accessible without storing N values;
//   - explicit vector landscapes (the fully general diagonal F);
//   - Kronecker landscapes F = ⊗ᵢ F_{Gᵢ} (Eq. 18, Section 5.2), which stay
//     implicit and therefore support chain lengths far beyond 2^ν storage.
//
// All fitness values must be strictly positive, as required for the
// Perron–Frobenius argument that makes the dominant eigenvector unique and
// non-negative.
package landscape

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/bits"
)

// Landscape is a diagonal fitness matrix F accessed by sequence index.
//
// Bounds returns (lo, hi) with lo ≤ min fᵢ and max fᵢ ≤ hi; lo must be
// strictly positive. Solvers use lo for the convergence shift
// µ = (1−2p)^ν·f_min, for which any positive lower bound is valid (a
// smaller-than-necessary shift is conservative, never incorrect).
type Landscape interface {
	// ChainLen returns ν.
	ChainLen() int
	// Dim returns N = 2^ν.
	Dim() int
	// At returns fᵢ for sequence i ∈ [0, Dim).
	At(i uint64) float64
	// Bounds returns positive lower/upper bounds on the fitness values.
	Bounds() (lo, hi float64)
}

// ErrNonPositive is returned by constructors for fitness values ≤ 0.
var ErrNonPositive = errors.New("landscape: fitness values must be strictly positive")

// Materialize returns the explicit vector diag(F). Θ(N) memory.
func Materialize(l Landscape) []float64 {
	n := l.Dim()
	f := make([]float64, n)
	for i := range f {
		f[i] = l.At(uint64(i))
	}
	return f
}

// ---------------------------------------------------------------------------
// Single peak

// SinglePeak is the classic landscape with a fitter master sequence:
// f₀ = Peak, fᵢ = Base for i ≠ 0. Figure 1 (left) uses Peak=2, Base=1.
type SinglePeak struct {
	nu         int
	Peak, Base float64
}

// NewSinglePeak constructs a single-peak landscape.
func NewSinglePeak(nu int, peak, base float64) (*SinglePeak, error) {
	if peak <= 0 || base <= 0 {
		return nil, fmt.Errorf("%w: peak %g, base %g", ErrNonPositive, peak, base)
	}
	bits.SpaceSize(nu) // validates nu
	return &SinglePeak{nu: nu, Peak: peak, Base: base}, nil
}

func (s *SinglePeak) ChainLen() int { return s.nu }
func (s *SinglePeak) Dim() int      { return bits.SpaceSize(s.nu) }

func (s *SinglePeak) At(i uint64) float64 {
	if i == 0 {
		return s.Peak
	}
	return s.Base
}

func (s *SinglePeak) Bounds() (lo, hi float64) {
	return math.Min(s.Peak, s.Base), math.Max(s.Peak, s.Base)
}

// Phi returns ϕ(k) of the equivalent error-class landscape.
func (s *SinglePeak) Phi(k int) float64 {
	if k == 0 {
		return s.Peak
	}
	return s.Base
}

// ---------------------------------------------------------------------------
// Linear

// Linear is the landscape fᵢ = F0 − (F0−FNu)·dH(i,0)/ν from Figure 1
// (right): fitness decays linearly with distance from the master sequence.
type Linear struct {
	nu      int
	F0, FNu float64
}

// NewLinear constructs a linear landscape with f₀ = f0 and f at maximum
// distance = fnu.
func NewLinear(nu int, f0, fnu float64) (*Linear, error) {
	if f0 <= 0 || fnu <= 0 {
		return nil, fmt.Errorf("%w: f0 %g, fν %g", ErrNonPositive, f0, fnu)
	}
	if nu < 1 {
		return nil, fmt.Errorf("landscape: linear landscape needs ν ≥ 1, got %d", nu)
	}
	bits.SpaceSize(nu)
	return &Linear{nu: nu, F0: f0, FNu: fnu}, nil
}

func (l *Linear) ChainLen() int { return l.nu }
func (l *Linear) Dim() int      { return bits.SpaceSize(l.nu) }

func (l *Linear) At(i uint64) float64 { return l.Phi(bits.Weight(i)) }

// Phi returns ϕ(k) = F0 − (F0−FNu)·k/ν.
func (l *Linear) Phi(k int) float64 {
	return l.F0 - (l.F0-l.FNu)*float64(k)/float64(l.nu)
}

func (l *Linear) Bounds() (lo, hi float64) {
	return math.Min(l.F0, l.FNu), math.Max(l.F0, l.FNu)
}

// ---------------------------------------------------------------------------
// General error-class landscapes

// ErrorClass is the general Hamming-distance-based landscape
// fᵢ = ϕ(dH(i,0)) given by an arbitrary table ϕ(0..ν) — the family for
// which Section 5.1 reduces the N×N problem exactly to (ν+1)×(ν+1).
type ErrorClass struct {
	nu  int
	phi []float64
	lo  float64
	hi  float64
}

// NewErrorClass constructs the landscape from the ν+1 class fitness values.
func NewErrorClass(phi []float64) (*ErrorClass, error) {
	nu := len(phi) - 1
	if nu < 0 {
		return nil, errors.New("landscape: empty ϕ table")
	}
	bits.SpaceSize(nu)
	lo, hi := phi[0], phi[0]
	for k, v := range phi {
		if v <= 0 {
			return nil, fmt.Errorf("%w: ϕ(%d) = %g", ErrNonPositive, k, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	cp := make([]float64, len(phi))
	copy(cp, phi)
	return &ErrorClass{nu: nu, phi: cp, lo: lo, hi: hi}, nil
}

func (e *ErrorClass) ChainLen() int            { return e.nu }
func (e *ErrorClass) Dim() int                 { return bits.SpaceSize(e.nu) }
func (e *ErrorClass) At(i uint64) float64      { return e.phi[bits.Weight(i)] }
func (e *ErrorClass) Bounds() (lo, hi float64) { return e.lo, e.hi }

// Phi returns ϕ(k).
func (e *ErrorClass) Phi(k int) float64 { return e.phi[k] }

// PhiTable returns a copy of the full ϕ table.
func (e *ErrorClass) PhiTable() []float64 {
	cp := make([]float64, len(e.phi))
	copy(cp, e.phi)
	return cp
}

// ClassBased reports whether l is an error-class landscape, returning its
// ϕ table when it is. SinglePeak, Linear and ErrorClass qualify; explicit
// vectors are scanned and qualify when their values depend only on the
// Hamming weight.
func ClassBased(l Landscape) ([]float64, bool) {
	switch t := l.(type) {
	case *SinglePeak:
		phi := make([]float64, t.nu+1)
		for k := range phi {
			phi[k] = t.Phi(k)
		}
		return phi, true
	case *Linear:
		phi := make([]float64, t.nu+1)
		for k := range phi {
			phi[k] = t.Phi(k)
		}
		return phi, true
	case *ErrorClass:
		return t.PhiTable(), true
	case *Uniform:
		phi := make([]float64, t.nu+1)
		for k := range phi {
			phi[k] = t.Value
		}
		return phi, true
	case *Vector:
		return t.classTable()
	default:
		return nil, false
	}
}

// ---------------------------------------------------------------------------
// Random landscape (Eq. 13)

// Random is the random landscape of Eq. 13: f₀ = C and
// fᵢ = Sigma·(η_rnd(i) + 0.5) with η_rnd uniform on [0,1). Values are
// produced by a counter-based hash of (Seed, i), so the landscape is
// deterministic, random-accessible and needs no Θ(N) storage.
type Random struct {
	nu    int
	C     float64
	Sigma float64
	Seed  uint64
}

// NewRandom constructs the Eq. 13 landscape. The paper requires c > 0 and
// σ ∈ (0, c/2), which guarantees f₀ = c is the unique fittest sequence.
func NewRandom(nu int, c, sigma float64, seed uint64) (*Random, error) {
	if c <= 0 {
		return nil, fmt.Errorf("%w: c = %g", ErrNonPositive, c)
	}
	if !(sigma > 0 && sigma < c/2) {
		return nil, fmt.Errorf("landscape: σ = %g outside (0, c/2) = (0, %g)", sigma, c/2)
	}
	bits.SpaceSize(nu)
	return &Random{nu: nu, C: c, Sigma: sigma, Seed: seed}, nil
}

func (r *Random) ChainLen() int { return r.nu }
func (r *Random) Dim() int      { return bits.SpaceSize(r.nu) }

func (r *Random) At(i uint64) float64 {
	if i == 0 {
		return r.C
	}
	return r.Sigma * (hash01(r.Seed, i) + 0.5)
}

func (r *Random) Bounds() (lo, hi float64) {
	// fᵢ ∈ [σ/2, 3σ/2) for i > 0 and f₀ = c > 3σ/2·(2/3)… use the loose
	// but always-valid envelope.
	return math.Min(r.C, r.Sigma/2), math.Max(r.C, 1.5*r.Sigma)
}

// hash01 maps (seed, i) to a uniform float64 in [0, 1) with a splitmix64
// finalizer — η_rnd(i) of Eq. 13.
func hash01(seed, i uint64) float64 {
	z := seed ^ (i * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// ---------------------------------------------------------------------------
// Explicit vector landscape

// Vector is the fully general diagonal landscape holding all N fitness
// values explicitly — "an unstructured landscape F … all its N values have
// to be stored" (Section 3).
type Vector struct {
	nu int
	f  []float64
	lo float64
	hi float64
}

// NewVector constructs a landscape from an explicit fitness vector of
// length 2^ν.
func NewVector(f []float64) (*Vector, error) {
	n := len(f)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("landscape: vector length %d is not a power of two", n)
	}
	nu := 0
	for 1<<nu < n {
		nu++
	}
	lo, hi := f[0], f[0]
	for i, v := range f {
		if v <= 0 {
			return nil, fmt.Errorf("%w: f[%d] = %g", ErrNonPositive, i, v)
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	cp := make([]float64, n)
	copy(cp, f)
	return &Vector{nu: nu, f: cp, lo: lo, hi: hi}, nil
}

func (v *Vector) ChainLen() int            { return v.nu }
func (v *Vector) Dim() int                 { return len(v.f) }
func (v *Vector) At(i uint64) float64      { return v.f[i] }
func (v *Vector) Bounds() (lo, hi float64) { return v.lo, v.hi }

// Values returns the underlying fitness vector (not a copy; treat as
// read-only).
func (v *Vector) Values() []float64 { return v.f }

// classTable returns (ϕ, true) when the vector depends only on Hamming
// weight.
func (v *Vector) classTable() ([]float64, bool) {
	phi := make([]float64, v.nu+1)
	seen := make([]bool, v.nu+1)
	for i, val := range v.f {
		k := bits.Weight(uint64(i))
		if !seen[k] {
			phi[k], seen[k] = val, true
		} else if phi[k] != val {
			return nil, false
		}
	}
	return phi, true
}

// ---------------------------------------------------------------------------
// Uniform landscape

// Uniform is the flat landscape fᵢ = Value for all i. With equal fitness W
// is a positive multiple of the bistochastic Q, whose Perron vector is the
// uniform distribution (Section 1.1).
type Uniform struct {
	nu    int
	Value float64
}

// NewUniform constructs a flat landscape.
func NewUniform(nu int, value float64) (*Uniform, error) {
	if value <= 0 {
		return nil, fmt.Errorf("%w: %g", ErrNonPositive, value)
	}
	bits.SpaceSize(nu)
	return &Uniform{nu: nu, Value: value}, nil
}

func (u *Uniform) ChainLen() int            { return u.nu }
func (u *Uniform) Dim() int                 { return bits.SpaceSize(u.nu) }
func (u *Uniform) At(i uint64) float64      { return u.Value }
func (u *Uniform) Bounds() (lo, hi float64) { return u.Value, u.Value }

// Phi returns the constant class fitness.
func (u *Uniform) Phi(k int) float64 { return u.Value }
