package vec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const eps = 1e-12

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func randVec(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Errorf("Dot = %g, want 12", got)
	}
}

func TestDotKahanMatchesDot(t *testing.T) {
	r := rng.New(1)
	x, y := randVec(r, 10001), randVec(r, 10001)
	if !almost(Dot(x, y), DotKahan(x, y), 1e-9) {
		t.Errorf("Dot = %g vs DotKahan = %g", Dot(x, y), DotKahan(x, y))
	}
}

func TestKahanBeatsNaiveOnAdversarialSum(t *testing.T) {
	// 1 followed by many tiny values that a naive sum absorbs to nothing.
	n := 1 << 20
	x := make([]float64, n+1)
	x[0] = 1
	for i := 1; i <= n; i++ {
		x[i] = 1e-16
	}
	want := 1 + float64(n)*1e-16
	if errK := math.Abs(SumKahan(x) - want); errK > 1e-18 {
		t.Errorf("Kahan error %g too large", errK)
	}
}

func TestSumVariants(t *testing.T) {
	r := rng.New(2)
	x := randVec(r, 4097)
	a, b, c := Sum(x), SumKahan(x), SumPairwise(x)
	if !almost(a, b, 1e-10) || !almost(a, c, 1e-10) {
		t.Errorf("sums disagree: %g %g %g", a, b, c)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm1(x) != 7 {
		t.Errorf("Norm1 = %g", Norm1(x))
	}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g", Norm2(x))
	}
	if NormInf(x) != 4 {
		t.Errorf("NormInf = %g", NormInf(x))
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	x := []float64{1e300, 1e300}
	want := 1e300 * math.Sqrt2
	if !almost(Norm2(x), want, 1e-14) {
		t.Errorf("Norm2 overflow handling: got %g want %g", Norm2(x), want)
	}
	y := []float64{1e-300, 1e-300}
	if Norm2(y) == 0 {
		t.Error("Norm2 underflowed to zero")
	}
}

func TestNormInequalities(t *testing.T) {
	// ‖x‖∞ ≤ ‖x‖₂ ≤ ‖x‖₁ for all x.
	f := func(raw []float64) bool {
		x := raw
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				x[i] = 0
			}
			// Clamp to avoid overflow differences in the naive comparisons.
			if math.Abs(x[i]) > 1e100 {
				x[i] = math.Copysign(1e100, x[i])
			}
		}
		n1, n2, ni := Norm1(x), Norm2(x), NormInf(x)
		return ni <= n2*(1+eps) && n2 <= n1*(1+eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAXPY(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	AXPY(2, x, y)
	for i, want := range []float64{12, 24, 36} {
		if y[i] != want {
			t.Fatalf("AXPY result %v", y)
		}
	}
	Scale(y, 0.5)
	for i, want := range []float64{6, 12, 18} {
		if y[i] != want {
			t.Fatalf("Scale result %v", y)
		}
	}
}

func TestMulElementwise(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	dst := make([]float64, 3)
	Mul(dst, x, y)
	for i, want := range []float64{4, 10, 18} {
		if dst[i] != want {
			t.Fatalf("Mul result %v", dst)
		}
	}
	// Aliasing: dst == x.
	Mul(x, x, y)
	for i, want := range []float64{4, 10, 18} {
		if x[i] != want {
			t.Fatalf("aliased Mul result %v", x)
		}
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{1, 3}
	old := Normalize1(x)
	if old != 4 || !almost(Norm1(x), 1, eps) {
		t.Errorf("Normalize1: old=%g x=%v", old, x)
	}
	y := []float64{3, 4}
	Normalize2(y)
	if !almost(Norm2(y), 1, eps) {
		t.Errorf("Normalize2: %v", y)
	}
}

func TestNormalizePanicsOnZero(t *testing.T) {
	for name, fn := range map[string]func([]float64) float64{"Normalize1": Normalize1, "Normalize2": Normalize2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of zero vector must panic", name)
				}
			}()
			fn([]float64{0, 0})
		}()
	}
}

func TestMaxMinIndex(t *testing.T) {
	x := []float64{-1, 7, 3, 7}
	i, v := MaxIndex(x)
	if i != 1 || v != 7 {
		t.Errorf("MaxIndex = (%d,%g)", i, v)
	}
	if Min(x) != -1 || Max(x) != 7 {
		t.Errorf("Min/Max wrong")
	}
}

func TestDistances(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{1, 4, 0}
	if DistInf(x, y) != 3 {
		t.Errorf("DistInf = %g", DistInf(x, y))
	}
	if !almost(Dist2(x, y), math.Sqrt(13), eps) {
		t.Errorf("Dist2 = %g", Dist2(x, y))
	}
}

func TestPredicates(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("AllFinite false negative")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Error("AllFinite false positive")
	}
	if !AllPositive([]float64{1, 2}) || AllPositive([]float64{1, 0}) {
		t.Error("AllPositive wrong")
	}
	if !AllNonNegative([]float64{0, -1e-16}, 1e-12) {
		t.Error("AllNonNegative must tolerate tiny negatives")
	}
	if AllNonNegative([]float64{-1}, 1e-12) {
		t.Error("AllNonNegative false positive")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 99
	if x[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	x, y := make([]float64, 3), make([]float64, 4)
	for name, fn := range map[string]func(){
		"Dot":     func() { Dot(x, y) },
		"AXPY":    func() { AXPY(1, x, y) },
		"Copy":    func() { Copy(x, y) },
		"Mul":     func() { Mul(x, x, y) },
		"Dist2":   func() { Dist2(x, y) },
		"DistInf": func() { DistInf(x, y) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCauchySchwarz(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + int(r.Uint64n(200))
		x, y := randVec(r, n), randVec(r, n)
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
