// Package vec provides the dense-vector kernels used throughout the
// solver: dot products, norms, scaled updates and compensated summation.
// All functions operate on []float64 in place where possible, since the
// quasispecies state vectors have N = 2^ν entries and every avoidable copy
// matters at large chain lengths.
//
// Serial implementations live in this file; parallel twins driven by the
// device runtime are provided by the device package so that this package
// stays dependency-free and trivially testable.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the Euclidean inner product xᵀy. It panics if the lengths
// differ.
func Dot(x, y []float64) float64 {
	checkLen("Dot", len(x), len(y))
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// DotKahan returns xᵀy using Kahan–Babuška compensated accumulation.
// At N = 2^25 entries the plain left-to-right sum can lose several digits;
// residual-based stopping tests with τ = 1e−15 need the compensated form.
func DotKahan(x, y []float64) float64 {
	checkLen("DotKahan", len(x), len(y))
	var s, c float64
	for i, xv := range x {
		t := xv*y[i] - c
		u := s + t
		c = (u - s) - t
		s = u
	}
	return s
}

// Sum returns the plain sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// SumKahan returns the compensated sum of the entries of x.
func SumKahan(x []float64) float64 {
	var s, c float64
	for _, v := range x {
		t := v - c
		u := s + t
		c = (u - s) - t
		s = u
	}
	return s
}

// SumPairwise returns the sum of x using recursive pairwise splitting,
// which has O(log n) error growth and vectorizes well. The base case is
// unrolled plain summation.
func SumPairwise(x []float64) float64 {
	const base = 128
	if len(x) <= base {
		var s float64
		for _, v := range x {
			s += v
		}
		return s
	}
	half := len(x) / 2
	return SumPairwise(x[:half]) + SumPairwise(x[half:])
}

// Norm1 returns ‖x‖₁ = Σ|xᵢ|.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns ‖x‖₂ with scaling to avoid premature overflow/underflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns ‖x‖∞ = max|xᵢ|.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies x by a in place.
func Scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// AXPY computes y ← a·x + y in place. It panics if the lengths differ.
func AXPY(a float64, x, y []float64) {
	checkLen("AXPY", len(x), len(y))
	for i, xv := range x {
		y[i] += a * xv
	}
}

// Copy copies src into dst. It panics if the lengths differ.
func Copy(dst, src []float64) {
	checkLen("Copy", len(dst), len(src))
	copy(dst, src)
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Mul computes dst ← x ⊙ y elementwise. dst may alias x or y.
func Mul(dst, x, y []float64) {
	checkLen("Mul", len(x), len(y))
	checkLen("Mul", len(dst), len(x))
	for i := range dst {
		dst[i] = x[i] * y[i]
	}
}

// Normalize1 scales x so that ‖x‖₁ = 1 and returns the original norm.
// Concentration vectors in the quasispecies model are probability
// distributions, so 1-norm normalization is the model's invariant
// Σ xᵢ = 1. It panics if x is the zero vector.
func Normalize1(x []float64) float64 {
	n := Norm1(x)
	if n == 0 {
		panic("vec: Normalize1 of zero vector")
	}
	Scale(x, 1/n)
	return n
}

// Normalize2 scales x so that ‖x‖₂ = 1 and returns the original norm.
// It panics if x is the zero vector.
func Normalize2(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		panic("vec: Normalize2 of zero vector")
	}
	Scale(x, 1/n)
	return n
}

// MaxIndex returns the index of the largest entry of x (first on ties)
// and that entry. It panics on an empty vector.
func MaxIndex(x []float64) (int, float64) {
	if len(x) == 0 {
		panic("vec: MaxIndex of empty vector")
	}
	idx, best := 0, x[0]
	for i, v := range x[1:] {
		if v > best {
			idx, best = i+1, v
		}
	}
	return idx, best
}

// Min returns the smallest entry of x. It panics on an empty vector.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("vec: Min of empty vector")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest entry of x. It panics on an empty vector.
func Max(x []float64) float64 {
	_, m := MaxIndex(x)
	return m
}

// DistInf returns ‖x − y‖∞. It panics if the lengths differ.
func DistInf(x, y []float64) float64 {
	checkLen("DistInf", len(x), len(y))
	var m float64
	for i, xv := range x {
		if d := math.Abs(xv - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Dist2 returns ‖x − y‖₂. It panics if the lengths differ.
func Dist2(x, y []float64) float64 {
	checkLen("Dist2", len(x), len(y))
	var s float64
	for i, xv := range x {
		d := xv - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AllFinite reports whether every entry of x is finite (no NaN or ±Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// AllPositive reports whether every entry of x is strictly positive.
func AllPositive(x []float64) bool {
	for _, v := range x {
		if v <= 0 {
			return false
		}
	}
	return true
}

// AllNonNegative reports whether every entry of x is ≥ −tol. The Perron
// eigenvector is mathematically non-negative; tiny negative round-off is
// tolerated by callers that pass a small tol.
func AllNonNegative(x []float64, tol float64) bool {
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	return true
}

// Clone returns a newly allocated copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("vec: %s length mismatch %d vs %d", op, a, b))
	}
}
