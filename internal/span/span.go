// Package span is the leaf hook point of the hierarchical span profiler.
// Unlike the per-package metric observers (mutation.KernelObserver,
// device.LaunchObserver, …), spans cross package boundaries — a batch task
// contains a solve, which contains kernel passes, which contain device
// launches — so nesting requires ONE process-wide recorder that every
// instrumented layer reports into. This package holds that single
// nil-by-default atomic.Pointer hook and nothing else; it depends only on
// the standard library, so every solver package (and internal/obs, which
// implements Recorder) can import it without cycles.
//
// Zero-overhead contract (same as the metric hooks, enforced by the alloc
// tests in internal/core and internal/mutation): with no recorder
// installed, Begin is one atomic pointer load returning a nil Handle — no
// timing calls, no allocations, bit-identical numerics. Hot loops hoist
// the load with Installed() and pay only a nil check per span site.
package span

import (
	"sync/atomic"
	"time"
)

// Layer names of the instrumented solver packages, used as the span
// category (the Chrome trace "cat" field and the first aggregation key).
const (
	LayerFacade   = "facade"
	LayerBatch    = "batch"
	LayerCore     = "core"
	LayerMutation = "mutation"
	LayerDevice   = "device"
)

// Handle is one open span. End closes it with two optional integer
// arguments whose meaning depends on the span site (butterfly stage count,
// grid size, slot index, …); pass zeros when there is nothing to report.
// End must be called on the goroutine that opened the span.
type Handle interface {
	End(a1, a2 int64)
}

// Recorder receives spans. Begin opens a nested span on the calling
// goroutine; Record reports a span post hoc — one that already finished,
// with the given duration, ending at the time of the call (the device
// queue-wait tail is measured this way). Implementations must be safe for
// concurrent use: spans arrive from pool workers and batch slots.
type Recorder interface {
	Begin(layer, name string) Handle
	Record(layer, name string, d time.Duration, a1, a2 int64)
}

type hook struct{ r Recorder }

var rec atomic.Pointer[hook]

// SetRecorder installs r as the process-wide span recorder (nil
// uninstalls). Like the metric observers, it is not meant to be toggled
// concurrently with running solves: install at startup or between runs.
func SetRecorder(r Recorder) {
	if r == nil {
		rec.Store(nil)
		return
	}
	rec.Store(&hook{r: r})
}

// Installed returns the current recorder, nil when disabled — one atomic
// load. Hot loops call it once and keep the result, paying a plain nil
// check per span site instead of an atomic load.
func Installed() Recorder {
	h := rec.Load()
	if h == nil {
		return nil
	}
	return h.r
}

// Enabled reports whether a recorder is installed.
func Enabled() bool { return rec.Load() != nil }

// Begin opens a span on the installed recorder and returns its handle,
// nil when no recorder is installed.
func Begin(layer, name string) Handle {
	h := rec.Load()
	if h == nil {
		return nil
	}
	return h.r.Begin(layer, name)
}

// End closes h if it is a live span handle; a nil h (spans disabled at
// Begin time) is a no-op. Keeps call sites branch-free.
func End(h Handle, a1, a2 int64) {
	if h != nil {
		h.End(a1, a2)
	}
}
