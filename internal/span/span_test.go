package span

import (
	"testing"
	"time"
)

type fakeHandle struct {
	rec          *fakeRecorder
	layer, name  string
	gotA1, gotA2 int64
	ended        bool
}

func (h *fakeHandle) End(a1, a2 int64) {
	h.gotA1, h.gotA2 = a1, a2
	h.ended = true
	h.rec.ends++
}

type fakeRecorder struct {
	begins, ends, records int
	last                  *fakeHandle
}

func (r *fakeRecorder) Begin(layer, name string) Handle {
	r.begins++
	r.last = &fakeHandle{rec: r, layer: layer, name: name}
	return r.last
}

func (r *fakeRecorder) Record(layer, name string, d time.Duration, a1, a2 int64) {
	r.records++
}

func TestDisabledBeginReturnsNil(t *testing.T) {
	SetRecorder(nil)
	if Enabled() {
		t.Fatal("Enabled() with no recorder installed")
	}
	if Installed() != nil {
		t.Fatal("Installed() != nil with no recorder")
	}
	if h := Begin(LayerCore, "matvec"); h != nil {
		t.Fatalf("Begin returned %v with no recorder", h)
	}
	End(nil, 1, 2) // must be a safe no-op
}

func TestInstallAndRoundTrip(t *testing.T) {
	r := &fakeRecorder{}
	SetRecorder(r)
	defer SetRecorder(nil)

	if !Enabled() {
		t.Fatal("Enabled() = false after SetRecorder")
	}
	if Installed() != Recorder(r) {
		t.Fatal("Installed() did not return the installed recorder")
	}
	h := Begin(LayerMutation, "apply")
	if h == nil {
		t.Fatal("Begin returned nil with a recorder installed")
	}
	End(h, 18, 1)
	if r.begins != 1 || r.ends != 1 {
		t.Fatalf("begins=%d ends=%d, want 1, 1", r.begins, r.ends)
	}
	if r.last.layer != LayerMutation || r.last.name != "apply" {
		t.Fatalf("span site = %s/%s", r.last.layer, r.last.name)
	}
	if r.last.gotA1 != 18 || r.last.gotA2 != 1 {
		t.Fatalf("End args = %d, %d", r.last.gotA1, r.last.gotA2)
	}

	Installed().Record(LayerDevice, "queue_wait", time.Millisecond, 4, 0)
	if r.records != 1 {
		t.Fatalf("records = %d", r.records)
	}

	SetRecorder(nil)
	if Enabled() || Begin(LayerCore, "x") != nil {
		t.Fatal("recorder still installed after SetRecorder(nil)")
	}
}

func TestDisabledBeginDoesNotAllocate(t *testing.T) {
	SetRecorder(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		h := Begin(LayerCore, "matvec")
		End(h, 0, 0)
	}); allocs != 0 {
		t.Errorf("disabled Begin/End allocates %.0f objects per call", allocs)
	}
}
