package persist

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

// FuzzRead hardens the checkpoint parser: arbitrary byte streams must
// either parse into a structurally valid Checkpoint or fail cleanly —
// never panic, never allocate absurd amounts (the ν ≤ 34 concentration
// guard), never return torn data that passes the checksum.
func FuzzRead(f *testing.F) {
	// Seed corpus: valid checkpoints with and without concentrations,
	// plus structured corruptions.
	r := rng.New(1)
	for _, withConc := range []bool{true, false} {
		c := sampleCheckpoint(r, 6, withConc)
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		truncated := buf.Bytes()[:buf.Len()/2]
		f.Add(truncated)
	}
	f.Add([]byte{})
	f.Add([]byte("QSPECv01 garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is the expected path
		}
		// Anything accepted must be structurally consistent.
		if c.ChainLen < 0 || c.ChainLen > 62 {
			t.Fatalf("accepted ν = %d", c.ChainLen)
		}
		if len(c.Gamma) != c.ChainLen+1 {
			t.Fatalf("accepted |Γ| = %d for ν = %d", len(c.Gamma), c.ChainLen)
		}
		if c.Concentrations != nil && len(c.Concentrations) != 1<<uint(c.ChainLen) {
			t.Fatalf("accepted %d concentrations for ν = %d", len(c.Concentrations), c.ChainLen)
		}
		// Round trip: what was read must re-serialize and re-read equal.
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		c2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if c2.ChainLen != c.ChainLen || c2.Lambda != c.Lambda {
			t.Fatal("round trip changed the checkpoint")
		}
	})
}
