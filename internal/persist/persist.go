// Package persist implements a small binary checkpoint format for solved
// quasispecies distributions. At large chain lengths a solve produces a
// 2^ν-entry vector that is expensive to recompute (and, on the paper's
// hardware horizon, expensive to even hold); writing it once and reloading
// it for analysis is the practical workflow.
//
// Format (little endian):
//
//	offset  size  field
//	0       8     magic "QSPECv01"
//	8       4     header words H (currently 6)
//	12      H×8   ν, λ, residual, iterations, flags, γ-length
//	...           γ values (ν+1 float64)
//	...           concentration values (2^ν float64; omitted when the
//	              CONC flag is clear)
//	last 8        CRC-64/ECMA of everything before it
//
// All floats are IEEE-754 bit patterns; the checksum catches truncation
// and corruption. The format is versioned through the magic string.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
)

var magic = [8]byte{'Q', 'S', 'P', 'E', 'C', 'v', '0', '1'}

const (
	flagHasConcentrations = 1 << 0
	headerWords           = 6
)

// Checkpoint is the serializable state of a solved quasispecies.
type Checkpoint struct {
	ChainLen   int
	Lambda     float64
	Residual   float64
	Iterations int
	// Gamma holds the ν+1 class concentrations (always present).
	Gamma []float64
	// Concentrations holds the full 2^ν vector; nil is allowed (reduced
	// solves of very long chains).
	Concentrations []float64
}

// ErrCorrupt is returned when a checkpoint fails structural or checksum
// validation.
var ErrCorrupt = errors.New("persist: corrupt or truncated checkpoint")

// Write serializes the checkpoint to w.
func Write(w io.Writer, c *Checkpoint) error {
	if c.ChainLen < 0 || c.ChainLen > 62 {
		return fmt.Errorf("persist: chain length %d out of range", c.ChainLen)
	}
	if len(c.Gamma) != c.ChainLen+1 {
		return fmt.Errorf("persist: Γ has %d entries, want %d", len(c.Gamma), c.ChainLen+1)
	}
	if c.Concentrations != nil && len(c.Concentrations) != 1<<uint(c.ChainLen) {
		return fmt.Errorf("persist: concentration vector has %d entries, want %d",
			len(c.Concentrations), 1<<uint(c.ChainLen))
	}

	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(headerWords)); err != nil {
		return err
	}
	var flags uint64
	if c.Concentrations != nil {
		flags |= flagHasConcentrations
	}
	header := []uint64{
		uint64(c.ChainLen),
		math.Float64bits(c.Lambda),
		math.Float64bits(c.Residual),
		uint64(c.Iterations),
		flags,
		uint64(len(c.Gamma)),
	}
	if err := binary.Write(mw, binary.LittleEndian, header); err != nil {
		return err
	}
	if err := writeFloats(mw, c.Gamma); err != nil {
		return err
	}
	if c.Concentrations != nil {
		if err := writeFloats(mw, c.Concentrations); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum64())
}

// Read deserializes a checkpoint from r, verifying structure and checksum.
func Read(r io.Reader) (*Checkpoint, error) {
	crc := crc64.New(crc64.MakeTable(crc64.ECMA))
	tr := io.TeeReader(r, crc)

	var gotMagic [8]byte
	if _, err := io.ReadFull(tr, gotMagic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if gotMagic != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, gotMagic[:])
	}
	var hw uint32
	if err := binary.Read(tr, binary.LittleEndian, &hw); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if hw < headerWords || hw > 1024 {
		return nil, fmt.Errorf("%w: implausible header size %d", ErrCorrupt, hw)
	}
	header := make([]uint64, hw)
	if err := binary.Read(tr, binary.LittleEndian, header); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	c := &Checkpoint{
		ChainLen:   int(header[0]),
		Lambda:     math.Float64frombits(header[1]),
		Residual:   math.Float64frombits(header[2]),
		Iterations: int(header[3]),
	}
	flags := header[4]
	gammaLen := header[5]
	if c.ChainLen < 0 || c.ChainLen > 62 || gammaLen != uint64(c.ChainLen+1) {
		return nil, fmt.Errorf("%w: inconsistent dimensions (ν=%d, |Γ|=%d)", ErrCorrupt, c.ChainLen, gammaLen)
	}
	c.Gamma = make([]float64, gammaLen)
	if err := readFloats(tr, c.Gamma); err != nil {
		return nil, err
	}
	if flags&flagHasConcentrations != 0 {
		if c.ChainLen > 34 {
			return nil, fmt.Errorf("%w: refusing to allocate 2^%d entries", ErrCorrupt, c.ChainLen)
		}
		c.Concentrations = make([]float64, 1<<uint(c.ChainLen))
		if err := readFloats(tr, c.Concentrations); err != nil {
			return nil, err
		}
	}
	wantSum := crc.Sum64()
	var gotSum uint64
	if err := binary.Read(r, binary.LittleEndian, &gotSum); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if gotSum != wantSum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return c, nil
}

func writeFloats(w io.Writer, v []float64) error {
	const chunk = 8192
	buf := make([]byte, 8*chunk)
	for off := 0; off < len(v); off += chunk {
		end := off + chunk
		if end > len(v) {
			end = len(v)
		}
		b := buf[:8*(end-off)]
		for i, x := range v[off:end] {
			binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(x))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func readFloats(r io.Reader, v []float64) error {
	const chunk = 8192
	buf := make([]byte, 8*chunk)
	for off := 0; off < len(v); off += chunk {
		end := off + chunk
		if end > len(v) {
			end = len(v)
		}
		b := buf[:8*(end-off)]
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		for i := range v[off:end] {
			v[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	return nil
}
