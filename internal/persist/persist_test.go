package persist

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func sampleCheckpoint(r *rng.Source, nu int, withConc bool) *Checkpoint {
	c := &Checkpoint{
		ChainLen:   nu,
		Lambda:     1 + r.Float64(),
		Residual:   r.Float64() * 1e-12,
		Iterations: int(r.Uint64n(1000)),
		Gamma:      make([]float64, nu+1),
	}
	for i := range c.Gamma {
		c.Gamma[i] = r.Float64()
	}
	if withConc {
		c.Concentrations = make([]float64, 1<<uint(nu))
		for i := range c.Concentrations {
			c.Concentrations[i] = r.Float64()
		}
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(12))
		withConc := r.Uint64n(2) == 0
		c := sampleCheckpoint(r, nu, withConc)

		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.ChainLen != c.ChainLen || got.Lambda != c.Lambda ||
			got.Residual != c.Residual || got.Iterations != c.Iterations {
			return false
		}
		if vec.DistInf(got.Gamma, c.Gamma) != 0 {
			return false
		}
		if withConc {
			if got.Concentrations == nil || vec.DistInf(got.Concentrations, c.Concentrations) != 0 {
				return false
			}
		} else if got.Concentrations != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	r := rng.New(1)
	c := sampleCheckpoint(r, 6, true)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte.
	mutated := append([]byte(nil), raw...)
	mutated[len(mutated)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(mutated)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip: err = %v, want ErrCorrupt", err)
	}

	// Truncate.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-9])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncation: err = %v, want ErrCorrupt", err)
	}

	// Wrong magic.
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("magic: err = %v, want ErrCorrupt", err)
	}

	// Empty stream.
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Checkpoint{ChainLen: -1}); err == nil {
		t.Error("negative ν must be rejected")
	}
	if err := Write(&buf, &Checkpoint{ChainLen: 3, Gamma: make([]float64, 2)}); err == nil {
		t.Error("Γ length mismatch must be rejected")
	}
	if err := Write(&buf, &Checkpoint{
		ChainLen: 3, Gamma: make([]float64, 4), Concentrations: make([]float64, 7),
	}); err == nil {
		t.Error("concentration length mismatch must be rejected")
	}
}

func TestOversizeAllocationRefused(t *testing.T) {
	// Hand-craft a header claiming ν = 60 with concentrations: the reader
	// must refuse the 2^60 allocation rather than OOM.
	r := rng.New(2)
	c := sampleCheckpoint(r, 4, true)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Header starts after magic (8) + header-size word (4); ν is the first
	// uint64 there. Set it to 60 and also fix |Γ| (6th word) to 61 so the
	// dimension consistency check passes and the allocation guard triggers.
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			raw[off+i] = byte(v >> (8 * uint(i)))
		}
	}
	putU64(12, 60)
	putU64(12+5*8, 61)
	_, err := Read(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for oversize claim", err)
	}
}

func TestChecksumCoversHeader(t *testing.T) {
	r := rng.New(3)
	c := sampleCheckpoint(r, 5, false)
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt λ's low byte in the header.
	raw[12+8] ^= 1
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("header corruption not caught: %v", err)
	}
}
