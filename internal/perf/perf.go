// Package perf is the solver's performance ledger: an append-only JSONL
// file of profiled benchmark runs (wall time plus the per-phase span
// breakdown), with benchstat-style comparison between runs and a
// regression gate for CI.
//
// The ledger decouples measurement from judgment. `qs-perf record` appends
// a Record per run; `qs-perf check` measures afresh and gates against the
// last recorded baseline. Because absolute timings are incomparable across
// machines (a laptop baseline must not fail a CI runner), the gate defaults
// to share-of-wall mode: a phase regresses when its fraction of total wall
// time grows, which is machine-speed invariant as long as the workload is
// fixed.
//
// The package holds no solver dependencies — callers (cmd/qs-perf) run the
// workload and hand in plain PhaseStat values.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/harness"
)

// PhaseStat is one span site's aggregate within a run, in seconds. The
// hardware-counter fields are present only in runs recorded with -hwc on
// a host with usable counters (HWCSamples > 0 marks them valid): IPC is
// self instructions per cycle, CacheMissRate self cache-misses per
// cache-reference.
type PhaseStat struct {
	Layer         string  `json:"layer"`
	Name          string  `json:"name"`
	Count         int64   `json:"count"`
	TotalSeconds  float64 `json:"total_seconds"`
	SelfSeconds   float64 `json:"self_seconds"`
	HWCSamples    int64   `json:"hwc_samples,omitempty"`
	IPC           float64 `json:"ipc,omitempty"`
	CacheMissRate float64 `json:"cache_miss_rate,omitempty"`
}

// Record is one ledger entry: a profiled run of a fixed benchmark workload.
type Record struct {
	Time string `json:"time"` // RFC 3339
	Rev  string `json:"rev,omitempty"`
	// RunID ties the entry to a flight-recorded run: it matches the run
	// manifest, span profile, and trace rows of the measurement, and
	// FlightBundle names the diagnostic bundle directory when the run
	// dumped one. Both are empty for runs recorded without -flight.
	RunID        string           `json:"run_id,omitempty"`
	FlightBundle string           `json:"flight_bundle,omitempty"`
	Label        string           `json:"label"`
	Nu           int              `json:"nu"`
	P            float64          `json:"p"`
	Method       string           `json:"method"`
	Reps         int              `json:"reps"`
	WallSeconds  float64          `json:"wall_seconds"`
	Iterations   int              `json:"iterations"`
	Lambda       float64          `json:"lambda"` // correctness anchor: must not drift between runs
	Host         harness.HostInfo `json:"host"`
	Phases       []PhaseStat      `json:"phases"`

	// HWCActive marks a run whose phases carry hardware-counter columns;
	// HWCReason preserves why they do not when -hwc was requested but
	// degraded (paranoid denial, no PMU, non-Linux).
	HWCActive bool   `json:"hwc_active,omitempty"`
	HWCReason string `json:"hwc_reason,omitempty"`

	// Memory footprint of the measurement process, stamped after the last
	// rep: peak RSS (VmHWM, zero when procfs is unavailable) and the
	// device-arena occupancy high-water in float64s. Gated like wall time
	// but only when both records carry the field — old ledger entries
	// without it never flag.
	PeakRSSBytes         int64 `json:"rss_peak_bytes,omitempty"`
	ArenaHighWaterFloats int64 `json:"arena_highwater_floats,omitempty"`
}

// DefaultLedgerPath is where the repo keeps its committed baseline ledger.
const DefaultLedgerPath = "results/PERF_ledger.jsonl"

// Append appends rec as one JSON line to the ledger at path, creating the
// file and its directory if needed.
func Append(path string, rec Record) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	err = enc.Encode(rec)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read parses all records of the ledger at path, in file order. A missing
// file is not an error — it reads as an empty ledger.
func Read(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Latest returns the last record matching label ("" matches any), or false.
func Latest(recs []Record, label string) (Record, bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if label == "" || recs[i].Label == label {
			return recs[i], true
		}
	}
	return Record{}, false
}

// PhaseDelta is the comparison of one span site between two records.
// Shares are fractions of the record's wall time; growth percentages are
// relative (100·(cur/base − 1)), with ±Inf when a side is zero.
type PhaseDelta struct {
	Layer         string
	Name          string
	BaseSeconds   float64
	CurSeconds    float64
	BaseShare     float64
	CurShare      float64
	SecondsGrowth float64
	ShareGrowth   float64
	BaseCount     int64
	CurCount      int64
}

func growthPct(base, cur float64) float64 {
	if base == cur {
		return 0
	}
	if base == 0 {
		return 100 // appeared from nothing: report as +100% rather than +Inf
	}
	return 100 * (cur/base - 1)
}

// Compare matches the two records' phases by layer/name and returns one
// delta per site present in either, sorted by current total descending.
// It uses TotalSeconds (not self): the gate cares where wall time is spent,
// and total is what the table and the trace viewer show.
func Compare(base, cur Record) []PhaseDelta {
	type key struct{ layer, name string }
	idx := make(map[key]*PhaseDelta)
	order := []*PhaseDelta{}
	at := func(k key) *PhaseDelta {
		if d, ok := idx[k]; ok {
			return d
		}
		d := &PhaseDelta{Layer: k.layer, Name: k.name}
		idx[k] = d
		order = append(order, d)
		return d
	}
	for _, p := range base.Phases {
		d := at(key{p.Layer, p.Name})
		d.BaseSeconds, d.BaseCount = p.TotalSeconds, p.Count
		if base.WallSeconds > 0 {
			d.BaseShare = p.TotalSeconds / base.WallSeconds
		}
	}
	for _, p := range cur.Phases {
		d := at(key{p.Layer, p.Name})
		d.CurSeconds, d.CurCount = p.TotalSeconds, p.Count
		if cur.WallSeconds > 0 {
			d.CurShare = p.TotalSeconds / cur.WallSeconds
		}
	}
	out := make([]PhaseDelta, 0, len(order))
	for _, d := range order {
		d.SecondsGrowth = growthPct(d.BaseSeconds, d.CurSeconds)
		d.ShareGrowth = growthPct(d.BaseShare, d.CurShare)
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CurSeconds > out[j].CurSeconds })
	return out
}

// GateOptions tunes the regression gate.
type GateOptions struct {
	// Threshold is the relative growth that flags a phase: 0.25 flags
	// phases ≥ 25% worse than the baseline. ≤ 0 selects 0.25.
	Threshold float64
	// MinShare ignores phases below this share of wall time in both
	// records — sub-percent phases regress by large factors from pure
	// timer noise. 0 selects 0.02; < 0 keeps everything.
	MinShare float64
	// AbsoluteSeconds gates on wall seconds instead of share-of-wall.
	// Only meaningful when base and current ran on comparable hardware;
	// CI should leave it false.
	AbsoluteSeconds bool
}

// Violation is one gate finding.
type Violation struct {
	Layer     string
	Name      string
	Metric    string // "share" or "seconds"
	Base, Cur float64
	GrowthPct float64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s %.4g → %.4g (+%.1f%%)",
		v.Layer, v.Name, v.Metric, v.Base, v.Cur, v.GrowthPct)
}

// Gate compares cur against base and returns the phases whose cost grew by
// more than the threshold. In share mode (the default) a phase's share of
// wall time must grow ≥ threshold·base_share to flag; in absolute mode the
// wall time itself is also gated as a pseudo-phase "total/wall".
func Gate(base, cur Record, opts GateOptions) []Violation {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.25
	}
	switch {
	case opts.MinShare == 0:
		opts.MinShare = 0.02
	case opts.MinShare < 0:
		opts.MinShare = 0
	}
	var out []Violation
	for _, d := range Compare(base, cur) {
		if d.BaseShare < opts.MinShare && d.CurShare < opts.MinShare {
			continue
		}
		if opts.AbsoluteSeconds {
			if d.CurSeconds > d.BaseSeconds*(1+opts.Threshold) {
				out = append(out, Violation{
					Layer: d.Layer, Name: d.Name, Metric: "seconds",
					Base: d.BaseSeconds, Cur: d.CurSeconds, GrowthPct: d.SecondsGrowth,
				})
			}
			continue
		}
		if d.CurShare > d.BaseShare*(1+opts.Threshold) {
			out = append(out, Violation{
				Layer: d.Layer, Name: d.Name, Metric: "share",
				Base: d.BaseShare, Cur: d.CurShare, GrowthPct: d.ShareGrowth,
			})
		}
	}
	if opts.AbsoluteSeconds && cur.WallSeconds > base.WallSeconds*(1+opts.Threshold) {
		out = append(out, Violation{
			Layer: "total", Name: "wall", Metric: "seconds",
			Base: base.WallSeconds, Cur: cur.WallSeconds,
			GrowthPct: growthPct(base.WallSeconds, cur.WallSeconds),
		})
	}
	// Memory regressions gate in both modes: a fixed workload's peak RSS and
	// arena high-water are machine-comparable the way shares are. Records
	// from before the fields existed (either side zero) never flag.
	if base.PeakRSSBytes > 0 && cur.PeakRSSBytes > 0 &&
		float64(cur.PeakRSSBytes) > float64(base.PeakRSSBytes)*(1+opts.Threshold) {
		out = append(out, Violation{
			Layer: "mem", Name: "peak_rss", Metric: "bytes",
			Base: float64(base.PeakRSSBytes), Cur: float64(cur.PeakRSSBytes),
			GrowthPct: growthPct(float64(base.PeakRSSBytes), float64(cur.PeakRSSBytes)),
		})
	}
	if base.ArenaHighWaterFloats > 0 && cur.ArenaHighWaterFloats > 0 &&
		float64(cur.ArenaHighWaterFloats) > float64(base.ArenaHighWaterFloats)*(1+opts.Threshold) {
		out = append(out, Violation{
			Layer: "mem", Name: "arena_highwater", Metric: "floats",
			Base: float64(base.ArenaHighWaterFloats), Cur: float64(cur.ArenaHighWaterFloats),
			GrowthPct: growthPct(float64(base.ArenaHighWaterFloats), float64(cur.ArenaHighWaterFloats)),
		})
	}
	return out
}

// IPCDrift is one advisory finding of the hardware-counter gate: a phase
// whose instructions-per-cycle fell (the code got less efficient per
// cycle) or whose cache-miss rate rose between two hwc-bearing records.
type IPCDrift struct {
	Layer  string
	Name   string
	Metric string // "ipc" or "cache_miss_rate"
	Base   float64
	Cur    float64
}

func (d IPCDrift) String() string {
	arrow := "fell"
	if d.Cur > d.Base {
		arrow = "rose"
	}
	return fmt.Sprintf("%s/%s: %s %s %.3f → %.3f", d.Layer, d.Name, d.Metric, arrow, d.Base, d.Cur)
}

// IPCGate compares per-phase hardware-counter efficiency between two
// records. It is ADVISORY: counter readings vary with the host CPU far
// more than share-of-wall does, so findings are printed next to the gate
// result but never fail a check. threshold is the relative change that
// flags a phase (≤ 0 selects 0.15, i.e. IPC down ≥ 15% or miss rate up
// ≥ 15%); phases below minShare of wall time in both records, or without
// counter samples on either side, are skipped. Returns nil (and ok =
// false) unless both records carry counters.
func IPCGate(base, cur Record, threshold, minShare float64) (drifts []IPCDrift, ok bool) {
	if !base.HWCActive || !cur.HWCActive {
		return nil, false
	}
	if threshold <= 0 {
		threshold = 0.15
	}
	if minShare <= 0 {
		minShare = 0.02
	}
	type key struct{ layer, name string }
	baseIdx := make(map[key]PhaseStat, len(base.Phases))
	for _, p := range base.Phases {
		baseIdx[key{p.Layer, p.Name}] = p
	}
	for _, p := range cur.Phases {
		b, found := baseIdx[key{p.Layer, p.Name}]
		if !found || b.HWCSamples == 0 || p.HWCSamples == 0 {
			continue
		}
		baseShare, curShare := 0.0, 0.0
		if base.WallSeconds > 0 {
			baseShare = b.TotalSeconds / base.WallSeconds
		}
		if cur.WallSeconds > 0 {
			curShare = p.TotalSeconds / cur.WallSeconds
		}
		if baseShare < minShare && curShare < minShare {
			continue
		}
		if b.IPC > 0 && p.IPC < b.IPC*(1-threshold) {
			drifts = append(drifts, IPCDrift{
				Layer: p.Layer, Name: p.Name, Metric: "ipc", Base: b.IPC, Cur: p.IPC,
			})
		}
		if b.CacheMissRate > 0 && p.CacheMissRate > b.CacheMissRate*(1+threshold) {
			drifts = append(drifts, IPCDrift{
				Layer: p.Layer, Name: p.Name, Metric: "cache_miss_rate",
				Base: b.CacheMissRate, Cur: p.CacheMissRate,
			})
		}
	}
	return drifts, true
}

// FormatCompare renders a benchstat-style per-phase comparison table.
func FormatCompare(w io.Writer, base, cur Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "baseline: %s  rev=%s  wall=%.4gs  iters=%d\n",
		base.Time, orDash(base.Rev), base.WallSeconds, base.Iterations)
	fmt.Fprintf(bw, "current:  %s  rev=%s  wall=%.4gs  iters=%d  (%+.1f%% wall)\n",
		cur.Time, orDash(cur.Rev), cur.WallSeconds, cur.Iterations,
		growthPct(base.WallSeconds, cur.WallSeconds))
	if base.Lambda != 0 && cur.Lambda != 0 && base.Lambda != cur.Lambda {
		fmt.Fprintf(bw, "WARNING: lambda drifted %.17g → %.17g — not the same computation\n",
			base.Lambda, cur.Lambda)
	}
	fmt.Fprintf(bw, "%-10s %-14s %12s %12s %8s %8s %8s\n",
		"layer", "phase", "base[s]", "cur[s]", "Δtime", "base%", "cur%")
	for _, d := range Compare(base, cur) {
		fmt.Fprintf(bw, "%-10s %-14s %12.6f %12.6f %+7.1f%% %7.1f%% %7.1f%%\n",
			d.Layer, d.Name, d.BaseSeconds, d.CurSeconds, d.SecondsGrowth,
			100*d.BaseShare, 100*d.CurShare)
	}
	return bw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// GitRev returns the short commit hash of the repository containing dir,
// or "" when git (or the repo) is unavailable — ledger records are still
// useful without it.
func GitRev(dir string) string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
