package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func rec(wall float64, phases ...PhaseStat) Record {
	return Record{
		Time: "2026-08-05T00:00:00Z", Label: "bench", Nu: 12, P: 0.01,
		Method: "fmmp", Reps: 3, WallSeconds: wall, Iterations: 100,
		Lambda: 1.5, Phases: phases,
	}
}

func ph(layer, name string, total float64) PhaseStat {
	return PhaseStat{Layer: layer, Name: name, Count: 100, TotalSeconds: total, SelfSeconds: total}
}

func TestLedgerAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "ledger.jsonl")
	if recs, err := Read(path); err != nil || recs != nil {
		t.Fatalf("missing ledger: recs=%v err=%v, want nil, nil", recs, err)
	}
	r1 := rec(2.0, ph("core", "matvec", 1.0))
	r2 := rec(2.1, ph("core", "matvec", 1.1))
	r2.Label = "other"
	if err := Append(path, r1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, r2); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].WallSeconds != 2.0 || recs[1].Label != "other" {
		t.Fatalf("read back %+v", recs)
	}
	if got, ok := Latest(recs, "bench"); !ok || got.WallSeconds != 2.0 {
		t.Fatalf("Latest(bench) = %+v, %v", got, ok)
	}
	if _, ok := Latest(recs, "absent"); ok {
		t.Fatalf("Latest(absent) found a record")
	}
}

// TestGateFlagsSyntheticRegression is the acceptance check for the CI gate:
// a phase whose share of wall time grows from 50% to 75% (+50%) must be
// flagged at the default 25% threshold, while an identical run must pass.
func TestGateFlagsSyntheticRegression(t *testing.T) {
	base := rec(2.0, ph("core", "matvec", 1.0), ph("core", "normalize", 0.4))
	same := rec(2.0, ph("core", "matvec", 1.0), ph("core", "normalize", 0.4))
	if v := Gate(base, same, GateOptions{}); len(v) != 0 {
		t.Fatalf("identical run flagged: %v", v)
	}

	// Same wall, but matvec's share grew 1.0/2.0 → 1.5/2.0.
	slow := rec(2.0, ph("core", "matvec", 1.5), ph("core", "normalize", 0.4))
	v := Gate(base, slow, GateOptions{})
	if len(v) != 1 || v[0].Name != "matvec" || v[0].Metric != "share" {
		t.Fatalf("violations = %v, want one matvec share regression", v)
	}
	if v[0].GrowthPct < 49 || v[0].GrowthPct > 51 {
		t.Fatalf("growth = %.1f%%, want ~50%%", v[0].GrowthPct)
	}
	if !strings.Contains(v[0].String(), "core/matvec") {
		t.Fatalf("violation string = %q", v[0].String())
	}

	// Share mode is machine-speed invariant: everything uniformly 3× slower
	// (slower CI runner) must NOT flag.
	slower := rec(6.0, ph("core", "matvec", 3.0), ph("core", "normalize", 1.2))
	if v := Gate(base, slower, GateOptions{}); len(v) != 0 {
		t.Fatalf("uniform slowdown flagged in share mode: %v", v)
	}
	// …but absolute mode flags it, including the wall pseudo-phase.
	v = Gate(base, slower, GateOptions{AbsoluteSeconds: true})
	names := map[string]bool{}
	for _, x := range v {
		names[x.Layer+"/"+x.Name] = true
	}
	if !names["core/matvec"] || !names["total/wall"] {
		t.Fatalf("absolute-mode violations = %v, want matvec and total/wall", v)
	}
}

func TestGateIgnoresNoiseFloorPhases(t *testing.T) {
	// A 0.5% phase tripling is timer noise, not a regression.
	base := rec(2.0, ph("core", "matvec", 1.9), ph("device", "queue_wait", 0.01))
	cur := rec(2.0, ph("core", "matvec", 1.9), ph("device", "queue_wait", 0.03))
	if v := Gate(base, cur, GateOptions{}); len(v) != 0 {
		t.Fatalf("sub-MinShare phase flagged: %v", v)
	}
	// A negative MinShare disables the noise floor and keeps everything.
	if v := Gate(base, cur, GateOptions{MinShare: -1}); len(v) != 1 {
		t.Fatalf("MinShare<0 violations = %v, want 1", v)
	}
}

func TestCompareHandlesDisjointPhases(t *testing.T) {
	base := rec(1.0, ph("core", "matvec", 0.6), ph("core", "shift", 0.2))
	cur := rec(1.0, ph("core", "matvec", 0.6), ph("core", "orthonormalize", 0.3))
	ds := Compare(base, cur)
	byName := map[string]PhaseDelta{}
	for _, d := range ds {
		byName[d.Name] = d
	}
	if d := byName["shift"]; d.CurSeconds != 0 || d.SecondsGrowth != -100 {
		t.Fatalf("vanished phase delta = %+v", d)
	}
	if d := byName["orthonormalize"]; d.BaseSeconds != 0 || d.SecondsGrowth != 100 {
		t.Fatalf("appeared phase delta = %+v", d)
	}
	// Sorted by current total descending: matvec first.
	if ds[0].Name != "matvec" {
		t.Fatalf("sort order = %v", ds)
	}
}

func TestFormatCompare(t *testing.T) {
	base := rec(2.0, ph("core", "matvec", 1.0))
	cur := rec(2.2, ph("core", "matvec", 1.4))
	cur.Lambda = 1.5000001
	var sb strings.Builder
	if err := FormatCompare(&sb, base, cur); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"baseline:", "current:", "matvec", "+40.0%", "WARNING: lambda drifted"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
}

func hwrec(wall float64, phases ...PhaseStat) Record {
	r := rec(wall, phases...)
	r.HWCActive = true
	return r
}

func hwph(layer, name string, total, ipc, missRate float64) PhaseStat {
	p := ph(layer, name, total)
	p.HWCSamples = 100
	p.IPC = ipc
	p.CacheMissRate = missRate
	return p
}

// TestIPCGateAdvisory pins the hardware-counter drift detector: IPC drops
// and miss-rate rises past the threshold are reported, hwc-less records
// disable the gate entirely (ok=false), and noise-floor phases are skipped.
func TestIPCGateAdvisory(t *testing.T) {
	base := hwrec(2.0, hwph("core", "matvec", 1.0, 2.0, 0.10), hwph("core", "normalize", 0.4, 1.0, 0.05))
	same := hwrec(2.0, hwph("core", "matvec", 1.0, 2.0, 0.10), hwph("core", "normalize", 0.4, 1.0, 0.05))
	if drifts, ok := IPCGate(base, same, 0, 0); !ok || len(drifts) != 0 {
		t.Fatalf("identical hwc runs: drifts=%v ok=%v", drifts, ok)
	}

	// matvec IPC 2.0 → 1.5 (−25%) and normalize miss rate 0.05 → 0.08 (+60%).
	cur := hwrec(2.0, hwph("core", "matvec", 1.0, 1.5, 0.10), hwph("core", "normalize", 0.4, 1.0, 0.08))
	drifts, ok := IPCGate(base, cur, 0.15, 0)
	if !ok || len(drifts) != 2 {
		t.Fatalf("drifts = %v ok=%v, want 2 findings", drifts, ok)
	}
	byMetric := map[string]IPCDrift{}
	for _, d := range drifts {
		byMetric[d.Metric] = d
	}
	if d := byMetric["ipc"]; d.Name != "matvec" || d.Base != 2.0 || d.Cur != 1.5 {
		t.Errorf("ipc drift = %+v", d)
	}
	if d := byMetric["cache_miss_rate"]; d.Name != "normalize" || d.Cur != 0.08 {
		t.Errorf("miss-rate drift = %+v", d)
	}
	if !strings.Contains(byMetric["ipc"].String(), "fell") {
		t.Errorf("drift string = %q", byMetric["ipc"].String())
	}

	// Records without counters disable the gate rather than report noise.
	plain := rec(2.0, ph("core", "matvec", 1.0))
	if _, ok := IPCGate(plain, cur, 0, 0); ok {
		t.Error("gate ran against an hwc-less baseline")
	}
	if _, ok := IPCGate(base, plain, 0, 0); ok {
		t.Error("gate ran against an hwc-less current run")
	}

	// A sub-noise-floor phase (1% of wall) never flags, and a phase with
	// no counter samples on one side is skipped.
	tiny := hwrec(2.0, hwph("core", "blip", 0.02, 2.0, 0.10))
	tinyCur := hwrec(2.0, hwph("core", "blip", 0.02, 0.5, 0.50))
	if drifts, ok := IPCGate(tiny, tinyCur, 0.15, 0); !ok || len(drifts) != 0 {
		t.Errorf("noise-floor phase flagged: %v", drifts)
	}
	nosamp := hwrec(2.0, hwph("core", "matvec", 1.0, 2.0, 0.10))
	nosamp.Phases[0].HWCSamples = 0
	if drifts, _ := IPCGate(nosamp, cur, 0.15, 0); len(drifts) != 0 {
		t.Errorf("sampleless phase flagged: %v", drifts)
	}
}

// TestLedgerRoundTripsHWCFields checks the counter columns survive the
// JSONL round trip.
func TestLedgerRoundTripsHWCFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	r := hwrec(1.0, hwph("core", "matvec", 0.6, 2.25, 0.125))
	if err := Append(path, r); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("read: %v %v", recs, err)
	}
	got := recs[0]
	if !got.HWCActive || got.Phases[0].IPC != 2.25 || got.Phases[0].CacheMissRate != 0.125 || got.Phases[0].HWCSamples != 100 {
		t.Fatalf("round-tripped record = %+v", got)
	}
}
