package perf

import (
	"path/filepath"
	"testing"
	"time"
)

func memRecord(wall float64, rss, arenaHi int64) Record {
	return Record{
		Time: time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC).Format(time.RFC3339),
		Nu:   14, Method: "power",
		WallSeconds:          wall,
		PeakRSSBytes:         rss,
		ArenaHighWaterFloats: arenaHi,
	}
}

// TestGateFlagsMemoryRegressions: peak RSS and arena high-water gate like
// wall time, in both share and absolute mode.
func TestGateFlagsMemoryRegressions(t *testing.T) {
	base := memRecord(1.0, 1<<30, 1<<20)
	cur := memRecord(1.0, 2<<30, 3<<20) // +100% RSS, +200% arena

	for _, abs := range []bool{false, true} {
		vs := Gate(base, cur, GateOptions{Threshold: 0.25, AbsoluteSeconds: abs})
		got := map[string]bool{}
		for _, v := range vs {
			got[v.Layer+"/"+v.Name] = true
			if v.Layer == "mem" && v.GrowthPct < 99 {
				t.Errorf("mem violation growth = %.1f%%, want ≥ 99%%: %s", v.GrowthPct, v)
			}
		}
		if !got["mem/peak_rss"] || !got["mem/arena_highwater"] {
			t.Fatalf("abs=%v: missing memory violations in %v", abs, vs)
		}
	}
}

// TestGateMemoryWithinThresholdPasses: growth inside the threshold does
// not flag.
func TestGateMemoryWithinThresholdPasses(t *testing.T) {
	base := memRecord(1.0, 1000, 1000)
	cur := memRecord(1.0, 1200, 1249) // +20%, +24.9% under a 25% threshold
	if vs := Gate(base, cur, GateOptions{Threshold: 0.25}); len(vs) != 0 {
		t.Fatalf("within-threshold growth flagged: %v", vs)
	}
}

// TestGateIgnoresRecordsWithoutMemoryFields: ledger entries from before the
// fields existed (zero on either side) never flag, so a new baseline can be
// compared against an old ledger.
func TestGateIgnoresRecordsWithoutMemoryFields(t *testing.T) {
	cases := []struct{ baseRSS, curRSS, baseHi, curHi int64 }{
		{0, 5 << 30, 0, 5 << 20}, // old baseline, new current
		{1 << 20, 0, 1 << 10, 0}, // new baseline, old current
		{0, 0, 0, 0},             // neither side instrumented
	}
	for _, c := range cases {
		base := memRecord(1.0, c.baseRSS, c.baseHi)
		cur := memRecord(1.0, c.curRSS, c.curHi)
		for _, v := range Gate(base, cur, GateOptions{Threshold: 0.25}) {
			if v.Layer == "mem" {
				t.Fatalf("uninstrumented record flagged: %s (base %+v cur %+v)", v, base, cur)
			}
		}
	}
}

// TestLedgerRoundTripsMemoryFields: the new fields survive the JSONL
// ledger, and absent fields stay zero (omitempty on write).
func TestLedgerRoundTripsMemoryFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := Append(path, memRecord(2.5, 123456789, 42_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, memRecord(2.5, 0, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records", len(recs))
	}
	if recs[0].PeakRSSBytes != 123456789 || recs[0].ArenaHighWaterFloats != 42_000_000 {
		t.Fatalf("round trip lost fields: %+v", recs[0])
	}
	if recs[1].PeakRSSBytes != 0 || recs[1].ArenaHighWaterFloats != 0 {
		t.Fatalf("zero fields came back nonzero: %+v", recs[1])
	}
}
