// Package bits provides the sequence-space primitives underlying the
// quasispecies model: binary sequences of chain length ν are identified
// with the integers 0 … 2^ν−1, mutation distance is the Hamming distance,
// and the error class Γ_{k,i} collects all sequences at Hamming distance k
// from sequence i.
//
// Everything in this package is exact integer or combinatorial arithmetic;
// it has no floating-point state and no dependencies beyond the standard
// library.
package bits

import (
	"fmt"
	"math"
	mathbits "math/bits"
)

// MaxChainLen is the largest chain length ν for which a full sequence space
// (N = 2^ν states) can be represented with signed 64-bit indices while still
// leaving headroom for index arithmetic such as 2*i. Implicit (Kronecker)
// representations may go far beyond this; dense vectors may not.
const MaxChainLen = 62

// SpaceSize returns N = 2^nu, the number of binary sequences of chain
// length nu. It panics if nu is negative or larger than MaxChainLen.
func SpaceSize(nu int) int {
	if nu < 0 || nu > MaxChainLen {
		panic(fmt.Sprintf("bits: chain length %d out of range [0,%d]", nu, MaxChainLen))
	}
	return 1 << uint(nu)
}

// Hamming returns the Hamming distance dH(i, j) between the binary
// representations of i and j, i.e. the number of single point mutations
// needed to transform sequence X_i into sequence X_j.
func Hamming(i, j uint64) int {
	return mathbits.OnesCount64(i ^ j)
}

// Weight returns dH(i, 0), the Hamming weight of i — the error class index
// of sequence i relative to the master sequence X_0.
func Weight(i uint64) int {
	return mathbits.OnesCount64(i)
}

// Gray returns the i-th Gray code value. Consecutive Gray codes differ in
// exactly one bit, so reordering the sequence space by Gray code makes
// dH(X_i, X_{i+1}) = 1 for all i (footnote 2 of the paper).
func Gray(i uint64) uint64 {
	return i ^ (i >> 1)
}

// GrayInverse returns the rank of the Gray code value g, inverting Gray.
func GrayInverse(g uint64) uint64 {
	i := g
	for shift := uint(1); shift < 64; shift <<= 1 {
		i ^= i >> shift
	}
	return i
}

// Binomial returns the binomial coefficient C(n, k) as an exact uint64.
// It panics on overflow, which cannot happen for the n ≤ 62 used with
// dense sequence spaces. C(n,k)=0 for k<0 or k>n.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		hi, lo := mathbits.Mul64(c, uint64(n-i))
		if hi != 0 {
			panic(fmt.Sprintf("bits: binomial C(%d,%d) overflows uint64", n, k))
		}
		c = lo / uint64(i+1)
	}
	return c
}

// BinomialFloat returns C(n, k) as a float64, valid also for large n where
// the exact value exceeds uint64 range (it uses lgamma in that regime).
func BinomialFloat(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if n <= 62 {
		return float64(Binomial(n, k))
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(lg - lk - lnk)
}

// ClassSizes returns the sizes |Γ_k| = C(nu, k) of all nu+1 error classes.
func ClassSizes(nu int) []uint64 {
	sizes := make([]uint64, nu+1)
	for k := 0; k <= nu; k++ {
		sizes[k] = Binomial(nu, k)
	}
	return sizes
}

// ClassRepresentative returns the canonical representative of error class
// Γ_k for chain length nu: the sequence 2^k − 1 whose k lowest bits are set
// (the "natural and most obvious" choice named in Section 5.1).
func ClassRepresentative(nu, k int) uint64 {
	if k < 0 || k > nu {
		panic(fmt.Sprintf("bits: class index %d out of range [0,%d]", k, nu))
	}
	return (uint64(1) << uint(k)) - 1
}

// EnumerateClass calls fn for every sequence j in the error class Γ_{k,i}
// = {j : dH(X_i, X_j) = k} for chain length nu, in increasing XOR-mask
// order. It visits exactly C(nu, k) sequences.
func EnumerateClass(nu, k int, i uint64, fn func(j uint64)) {
	EnumerateWeight(nu, k, func(mask uint64) { fn(i ^ mask) })
}

// EnumerateWeight calls fn for every nu-bit value of Hamming weight k in
// increasing numeric order, using Gosper's hack to step between values.
func EnumerateWeight(nu, k int, fn func(v uint64)) {
	if k < 0 || k > nu {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	limit := uint64(1) << uint(nu)
	v := (uint64(1) << uint(k)) - 1
	for v < limit {
		fn(v)
		// Gosper's hack: next higher value with the same popcount.
		c := v & (^v + 1)
		r := v + c
		if r >= limit || r < v {
			// Adding the carry overflowed past the nu-bit space.
			break
		}
		v = r | (((v ^ r) >> 2) / c)
	}
}

// EnumerateUpToWeight calls fn for every nu-bit value with Hamming weight in
// [0, dmax], ordered by weight then numerically. This is the neighbourhood
// mask set used by the sparse Xmvp(dmax) product of [Niederbrucker &
// Gansterer 2011a].
func EnumerateUpToWeight(nu, dmax int, fn func(v uint64, weight int)) {
	if dmax > nu {
		dmax = nu
	}
	for k := 0; k <= dmax; k++ {
		w := k
		EnumerateWeight(nu, k, func(v uint64) { fn(v, w) })
	}
}

// NeighborhoodSize returns Σ_{k=0..dmax} C(nu,k), the number of sequences
// within Hamming distance dmax of any fixed sequence.
func NeighborhoodSize(nu, dmax int) uint64 {
	if dmax > nu {
		dmax = nu
	}
	var s uint64
	for k := 0; k <= dmax; k++ {
		s += Binomial(nu, k)
	}
	return s
}

// BitIndices returns the positions of the set bits of v in increasing order.
func BitIndices(v uint64) []int {
	idx := make([]int, 0, mathbits.OnesCount64(v))
	for v != 0 {
		b := mathbits.TrailingZeros64(v)
		idx = append(idx, b)
		v &= v - 1
	}
	return idx
}

// SigmaPermutation represents the bit permutation σ_{i,i'} of Section 5.1:
// for two sequences i, i' in the same error class (dH(i,0) = dH(i',0)),
// σ maps the set bits of i onto the set bits of i' (as a product of
// transpositions in cycle notation) and fixes all other bit positions.
type SigmaPermutation struct {
	// perm[b] is the image bit position of bit position b.
	perm []int
}

// NewSigmaPermutation builds σ_{i,i'} for chain length nu. It panics if
// i and i' lie in different error classes, mirroring the paper's
// precondition dH(i,0) = dH(i',0).
func NewSigmaPermutation(nu int, i, iPrime uint64) *SigmaPermutation {
	if Weight(i) != Weight(iPrime) {
		panic(fmt.Sprintf("bits: σ undefined for %d and %d: different error classes (%d vs %d)",
			i, iPrime, Weight(i), Weight(iPrime)))
	}
	perm := make([]int, nu)
	bi := BitIndices(i)
	bj := BitIndices(iPrime)
	// Map the t-th set bit of i to the t-th set bit of i', and the t-th
	// clear bit of i to the t-th clear bit of i'. This realizes the same
	// mapping as the paper's product of transpositions: a bit permutation
	// with σ(i) = i' that therefore preserves Hamming weights (I), fixes
	// every error class setwise (II), and preserves distances (IV).
	for t := range bi {
		perm[bi[t]] = bj[t]
	}
	inI, inJ := make([]bool, nu), make([]bool, nu)
	for _, b := range bi {
		inI[b] = true
	}
	for _, b := range bj {
		inJ[b] = true
	}
	ci, cj := make([]int, 0, nu-len(bi)), make([]int, 0, nu-len(bj))
	for b := 0; b < nu; b++ {
		if !inI[b] {
			ci = append(ci, b)
		}
		if !inJ[b] {
			cj = append(cj, b)
		}
	}
	for t := range ci {
		perm[ci[t]] = cj[t]
	}
	return &SigmaPermutation{perm: perm}
}

// Apply permutes the bits of the nu-bit vector j according to σ.
func (s *SigmaPermutation) Apply(j uint64) uint64 {
	var out uint64
	for b, img := range s.perm {
		if j&(1<<uint(b)) != 0 {
			out |= 1 << uint(img)
		}
	}
	return out
}

// Len returns the chain length the permutation acts on.
func (s *SigmaPermutation) Len() int { return len(s.perm) }
