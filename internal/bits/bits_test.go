package bits

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpaceSize(t *testing.T) {
	cases := []struct {
		nu   int
		want int
	}{{0, 1}, {1, 2}, {10, 1024}, {20, 1 << 20}, {62, 1 << 62}}
	for _, c := range cases {
		if got := SpaceSize(c.nu); got != c.want {
			t.Errorf("SpaceSize(%d) = %d, want %d", c.nu, got, c.want)
		}
	}
}

func TestSpaceSizePanics(t *testing.T) {
	for _, nu := range []int{-1, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SpaceSize(%d) did not panic", nu)
				}
			}()
			SpaceSize(nu)
		}()
	}
}

func TestHamming(t *testing.T) {
	cases := []struct {
		i, j uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0b1010, 0b0101, 4},
		{0b1111, 0b1110, 1},
		{math.MaxUint64, 0, 64},
	}
	for _, c := range cases {
		if got := Hamming(c.i, c.j); got != c.want {
			t.Errorf("Hamming(%b,%b) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
}

func TestHammingIsMetric(t *testing.T) {
	// Symmetry and triangle inequality on random triples.
	f := func(i, j, k uint64) bool {
		if Hamming(i, j) != Hamming(j, i) {
			return false
		}
		return Hamming(i, k) <= Hamming(i, j)+Hamming(j, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayAdjacent(t *testing.T) {
	// Consecutive Gray codes differ in exactly one bit (footnote 2).
	for i := uint64(0); i < 1<<12; i++ {
		if d := Hamming(Gray(i), Gray(i+1)); d != 1 {
			t.Fatalf("Hamming(Gray(%d), Gray(%d)) = %d, want 1", i, i+1, d)
		}
	}
}

func TestGrayInverse(t *testing.T) {
	f := func(i uint64) bool { return GrayInverse(Gray(i)) == i && Gray(GrayInverse(i)) == i }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayIsPermutation(t *testing.T) {
	seen := make(map[uint64]bool, 1<<10)
	for i := uint64(0); i < 1<<10; i++ {
		g := Gray(i)
		if g >= 1<<10 {
			t.Fatalf("Gray(%d) = %d escapes the 10-bit space", i, g)
		}
		if seen[g] {
			t.Fatalf("Gray(%d) = %d repeated", i, g)
		}
		seen[g] = true
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want uint64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {20, 10, 184756},
		{62, 31, 465428353255261088}, {10, -1, 0}, {10, 11, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at C(%d,%d)", n, k)
			}
		}
	}
}

func TestBinomialFloatLargeN(t *testing.T) {
	// C(100,50) ≈ 1.0089e29; check ~10 significant digits.
	got := BinomialFloat(100, 50)
	const want = 1.0089134454556417e29
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("BinomialFloat(100,50) = %g, want ≈ %g", got, want)
	}
	if BinomialFloat(100, -1) != 0 || BinomialFloat(100, 101) != 0 {
		t.Error("BinomialFloat out-of-range must be 0")
	}
}

func TestClassSizesSum(t *testing.T) {
	// Σ_k |Γ_k| = N.
	for nu := 0; nu <= 30; nu++ {
		var sum uint64
		for _, s := range ClassSizes(nu) {
			sum += s
		}
		if sum != uint64(1)<<uint(nu) {
			t.Fatalf("ν=%d: Σ|Γ_k| = %d, want %d", nu, sum, uint64(1)<<uint(nu))
		}
	}
}

func TestClassRepresentative(t *testing.T) {
	for nu := 0; nu <= 20; nu++ {
		for k := 0; k <= nu; k++ {
			r := ClassRepresentative(nu, k)
			if Weight(r) != k {
				t.Fatalf("representative of Γ_%d has weight %d", k, Weight(r))
			}
		}
	}
}

func TestEnumerateWeightCountsAndOrder(t *testing.T) {
	for nu := 0; nu <= 14; nu++ {
		for k := 0; k <= nu; k++ {
			var count uint64
			last := int64(-1)
			EnumerateWeight(nu, k, func(v uint64) {
				count++
				if Weight(v) != k {
					t.Fatalf("EnumerateWeight(%d,%d) produced weight %d", nu, k, Weight(v))
				}
				if int64(v) <= last {
					t.Fatalf("EnumerateWeight(%d,%d) not strictly increasing", nu, k)
				}
				last = int64(v)
			})
			if count != Binomial(nu, k) {
				t.Fatalf("EnumerateWeight(%d,%d) visited %d values, want %d", nu, k, count, Binomial(nu, k))
			}
		}
	}
}

func TestEnumerateClassXORStructure(t *testing.T) {
	const nu = 8
	var center uint64 = 0b10110010
	for k := 0; k <= nu; k++ {
		seen := map[uint64]bool{}
		EnumerateClass(nu, k, center, func(j uint64) {
			if Hamming(center, j) != k {
				t.Fatalf("Γ_{%d,%d} member %d has distance %d", k, center, j, Hamming(center, j))
			}
			seen[j] = true
		})
		if uint64(len(seen)) != Binomial(nu, k) {
			t.Fatalf("|Γ_{%d,·}| = %d, want %d", k, len(seen), Binomial(nu, k))
		}
	}
}

func TestEnumerateUpToWeight(t *testing.T) {
	const nu, dmax = 10, 3
	var n uint64
	prevW := 0
	EnumerateUpToWeight(nu, dmax, func(v uint64, w int) {
		if Weight(v) != w || w > dmax {
			t.Fatalf("bad (v,w) = (%d,%d)", v, w)
		}
		if w < prevW {
			t.Fatal("weights not non-decreasing")
		}
		prevW = w
		n++
	})
	if n != NeighborhoodSize(nu, dmax) {
		t.Fatalf("visited %d masks, want %d", n, NeighborhoodSize(nu, dmax))
	}
}

func TestNeighborhoodSizeFullSpace(t *testing.T) {
	if got := NeighborhoodSize(12, 12); got != 1<<12 {
		t.Errorf("NeighborhoodSize(12,12) = %d, want %d", got, 1<<12)
	}
	if got := NeighborhoodSize(12, 20); got != 1<<12 {
		t.Errorf("dmax > ν must clamp: got %d", got)
	}
	if got := NeighborhoodSize(12, 0); got != 1 {
		t.Errorf("NeighborhoodSize(12,0) = %d, want 1", got)
	}
}

func TestBitIndices(t *testing.T) {
	got := BitIndices(0b101101)
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("BitIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BitIndices = %v, want %v", got, want)
		}
	}
	if len(BitIndices(0)) != 0 {
		t.Error("BitIndices(0) must be empty")
	}
}

// TestSigmaProperties verifies properties (I)-(IV) from Section 5.1 of the
// paper for the bit permutations σ_{i,i'}.
func TestSigmaProperties(t *testing.T) {
	const nu = 10
	const N = 1 << nu
	src := []uint64{0b0000011111, 0b1010100011, 0b1111100000}
	dst := []uint64{0b1111100000, 0b0101010110, 0b0000011111}
	for c := range src {
		i, ip := src[c], dst[c]
		sigma := NewSigmaPermutation(nu, i, ip)
		// (III) σ(i) = i'
		if got := sigma.Apply(i); got != ip {
			t.Fatalf("σ(%b) = %b, want %b", i, got, ip)
		}
		// (I) weight preservation for all j
		for j := uint64(0); j < N; j++ {
			if Weight(sigma.Apply(j)) != Weight(j) {
				t.Fatalf("σ does not preserve weight of %b", j)
			}
		}
		// (II) σ(Γ_k) = Γ_k: σ is injective + (I) implies this; verify injectivity.
		seen := make(map[uint64]bool, N)
		for j := uint64(0); j < N; j++ {
			v := sigma.Apply(j)
			if seen[v] {
				t.Fatalf("σ not injective at %b", j)
			}
			seen[v] = true
		}
		// (IV) distance preservation dH(i,j) = dH(i', σ(j))
		for j := uint64(0); j < N; j++ {
			if Hamming(i, j) != Hamming(ip, sigma.Apply(j)) {
				t.Fatalf("σ does not preserve distances at j=%b", j)
			}
		}
	}
}

func TestSigmaPanicsOnDifferentClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("σ for different error classes must panic")
		}
	}()
	NewSigmaPermutation(8, 0b11, 0b111)
}

func TestSigmaRandomPairs(t *testing.T) {
	f := func(a, b uint16) bool {
		const nu = 16
		i, ip := uint64(a), uint64(b)
		if Weight(i) != Weight(ip) {
			return true // precondition not met, skip
		}
		s := NewSigmaPermutation(nu, i, ip)
		if s.Apply(i) != ip {
			return false
		}
		// Spot-check distance preservation on derived points.
		for _, j := range []uint64{0, i, ip, i ^ ip, 0xffff} {
			if Hamming(i, j) != Hamming(ip, s.Apply(j)) {
				return false
			}
		}
		return s.Len() == nu
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
