// Package ode implements Eigen's replication–mutation ODE system (Eq. 1),
//
//	dxᵢ/dt = Σⱼ fⱼ·Qᵢⱼ·xⱼ − xᵢ·Φ(t),   Φ(t) = Σⱼ fⱼ·xⱼ,   Σⱼ xⱼ = 1,
//
// the dynamical model whose stationary distribution is the quasispecies.
// The right-hand side is W·x − (fᵀx)·x with W = Q·F applied through any of
// the fast implicit operators, so time integration costs Θ(N·log₂N) per
// stage evaluation instead of Θ(N²).
//
// The system is a Bernoulli ODE: the substitution z(t) = x(t)·exp(∫Φ dτ)
// linearizes it to ż = W·z, and x(t) = z(t)/‖z(t)‖₁. Both forms are
// implemented; their agreement is a strong end-to-end correctness check,
// and the convergence of x(t) to the dominant eigenvector of W ties the
// dynamical and spectral views of the model together.
package ode

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/vec"
)

// System is the replicator–mutator vector field.
type System struct {
	op      core.Operator // applies W = Q·F (Right formulation)
	fitness []float64     // diag(F) for Φ(t) = fᵀx
	scratch []float64
}

// NewSystem builds the ODE system from a Right-formulation operator and
// its landscape.
func NewSystem(op core.Operator, l landscape.Landscape) (*System, error) {
	if op.Dim() != l.Dim() {
		return nil, fmt.Errorf("ode: operator dimension %d does not match landscape dimension %d",
			op.Dim(), l.Dim())
	}
	return &System{
		op:      op,
		fitness: landscape.Materialize(l),
		scratch: make([]float64, op.Dim()),
	}, nil
}

// Dim returns the state dimension N.
func (s *System) Dim() int { return s.op.Dim() }

// Phi returns the mean population fitness Φ(x) = fᵀx — the dilution flux
// that keeps the total concentration constant.
func (s *System) Phi(x []float64) float64 { return vec.Dot(s.fitness, x) }

// RHS evaluates dst ← W·x − Φ(x)·x. dst must not alias x.
func (s *System) RHS(dst, x []float64) {
	if len(dst) != s.Dim() || len(x) != s.Dim() {
		panic("ode: RHS dimension mismatch")
	}
	if &dst[0] == &x[0] {
		panic("ode: RHS dst must not alias x")
	}
	s.op.Apply(dst, x)
	phi := s.Phi(x)
	vec.AXPY(-phi, x, dst)
}

// LinearRHS evaluates the linearized field dst ← W·x (the Bernoulli
// transform of the system). dst must not alias x.
func (s *System) LinearRHS(dst, x []float64) {
	if &dst[0] == &x[0] {
		panic("ode: LinearRHS dst must not alias x")
	}
	s.op.Apply(dst, x)
}

// MasterStart returns the model's canonical initial condition x₀ = 1
// (only the master sequence present), normalized on the simplex.
func MasterStart(n int) []float64 {
	x := make([]float64, n)
	x[0] = 1
	return x
}

// ---------------------------------------------------------------------------
// Fixed-step RK4

// RK4Options configures fixed-step integration.
type RK4Options struct {
	// Renormalize projects the state back onto the simplex (Σx = 1) after
	// every step, compensating integrator drift of the conserved quantity.
	Renormalize bool
	// Monitor, when non-nil, receives (step, t, x) after each step;
	// returning false stops the integration early.
	Monitor func(step int, t float64, x []float64) bool
}

// IntegrateRK4 advances x (in place) by steps fixed RK4 steps of size dt,
// starting at time t0, and returns the final time. The nonlinear field of
// Eq. 1 is used.
func (s *System) IntegrateRK4(x []float64, t0, dt float64, steps int, opts RK4Options) (float64, error) {
	if len(x) != s.Dim() {
		return t0, fmt.Errorf("ode: state length %d, want %d", len(x), s.Dim())
	}
	if dt <= 0 || steps < 0 {
		return t0, fmt.Errorf("ode: invalid dt = %g or steps = %d", dt, steps)
	}
	n := s.Dim()
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	t := t0
	for step := 1; step <= steps; step++ {
		s.RHS(k1, x)
		stage(tmp, x, k1, dt/2)
		s.RHS(k2, tmp)
		stage(tmp, x, k2, dt/2)
		s.RHS(k3, tmp)
		stage(tmp, x, k3, dt)
		s.RHS(k4, tmp)
		for i := range x {
			x[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += dt
		if opts.Renormalize {
			renormalizeSimplex(x)
		}
		if !vec.AllFinite(x) {
			return t, fmt.Errorf("ode: state became non-finite at step %d (dt too large?)", step)
		}
		if opts.Monitor != nil && !opts.Monitor(step, t, x) {
			return t, nil
		}
	}
	return t, nil
}

func stage(dst, x, k []float64, h float64) {
	for i := range dst {
		dst[i] = x[i] + h*k[i]
	}
}

// renormalizeSimplex clamps tiny negatives and rescales to Σx = 1.
func renormalizeSimplex(x []float64) {
	var sum float64
	for i, v := range x {
		if v < 0 {
			x[i] = 0
			continue
		}
		sum += v
	}
	if sum > 0 {
		vec.Scale(x, 1/sum)
	}
}

// ---------------------------------------------------------------------------
// Adaptive Runge–Kutta–Fehlberg 4(5)

// AdaptiveOptions configures adaptive integration.
type AdaptiveOptions struct {
	// Tol is the local error tolerance per unit step (default 1e-9).
	Tol float64
	// InitialStep seeds the step size (default (t1−t0)/100).
	InitialStep float64
	// MinStep aborts the integration when the controller demands smaller
	// steps (default 1e-12·(t1−t0)).
	MinStep float64
	// MaxSteps caps the number of accepted steps (default 10_000_000).
	MaxSteps int
	// Renormalize projects back onto the simplex after accepted steps.
	Renormalize bool
}

// ErrStepUnderflow is returned when the adaptive controller cannot meet
// the tolerance with the minimum step size.
var ErrStepUnderflow = errors.New("ode: adaptive step size underflow")

// rkf45 coefficients (Fehlberg).
var (
	rkfA = [6][5]float64{
		{},
		{1.0 / 4},
		{3.0 / 32, 9.0 / 32},
		{1932.0 / 2197, -7200.0 / 2197, 7296.0 / 2197},
		{439.0 / 216, -8, 3680.0 / 513, -845.0 / 4104},
		{-8.0 / 27, 2, -3544.0 / 2565, 1859.0 / 4104, -11.0 / 40},
	}
	rkfB4 = [6]float64{25.0 / 216, 0, 1408.0 / 2565, 2197.0 / 4104, -1.0 / 5, 0}
	rkfB5 = [6]float64{16.0 / 135, 0, 6656.0 / 12825, 28561.0 / 56430, -9.0 / 50, 2.0 / 55}
)

// IntegrateAdaptive advances x (in place) from t0 to t1 with the
// Runge–Kutta–Fehlberg 4(5) pair and PI step-size control, returning the
// number of accepted steps.
func (s *System) IntegrateAdaptive(x []float64, t0, t1 float64, opts AdaptiveOptions) (int, error) {
	if len(x) != s.Dim() {
		return 0, fmt.Errorf("ode: state length %d, want %d", len(x), s.Dim())
	}
	if t1 <= t0 {
		return 0, fmt.Errorf("ode: t1 = %g must exceed t0 = %g", t1, t0)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	h := opts.InitialStep
	if h <= 0 {
		h = (t1 - t0) / 100
	}
	minStep := opts.MinStep
	if minStep <= 0 {
		minStep = 1e-12 * (t1 - t0)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000000
	}

	n := s.Dim()
	var k [6][]float64
	for i := range k {
		k[i] = make([]float64, n)
	}
	tmp := make([]float64, n)
	x4 := make([]float64, n)

	t := t0
	accepted := 0
	for t < t1 {
		if h > t1-t {
			h = t1 - t
		}
		// Stages.
		s.RHS(k[0], x)
		for stg := 1; stg < 6; stg++ {
			copy(tmp, x)
			for j := 0; j < stg; j++ {
				if a := rkfA[stg][j]; a != 0 {
					vec.AXPY(h*a, k[j], tmp)
				}
			}
			s.RHS(k[stg], tmp)
		}
		// 4th and 5th order solutions; error = ‖x5 − x4‖∞.
		copy(x4, x)
		copy(tmp, x) // tmp = x5
		for j := 0; j < 6; j++ {
			if rkfB4[j] != 0 {
				vec.AXPY(h*rkfB4[j], k[j], x4)
			}
			if rkfB5[j] != 0 {
				vec.AXPY(h*rkfB5[j], k[j], tmp)
			}
		}
		errNorm := vec.DistInf(tmp, x4)
		scale := tol * math.Max(1, vec.NormInf(x))
		if errNorm <= scale*h || h <= minStep {
			if errNorm > scale*h && h <= minStep {
				return accepted, fmt.Errorf("%w at t = %g (error %g)", ErrStepUnderflow, t, errNorm)
			}
			copy(x, tmp) // accept the 5th-order solution (local extrapolation)
			t += h
			accepted++
			if opts.Renormalize {
				renormalizeSimplex(x)
			}
			if !vec.AllFinite(x) {
				return accepted, fmt.Errorf("ode: state became non-finite at t = %g", t)
			}
			if accepted >= maxSteps {
				return accepted, fmt.Errorf("ode: step budget %d exhausted at t = %g < t1 = %g",
					maxSteps, t, t1)
			}
		}
		// PI controller (order 4 ⇒ exponent 1/5), clamped growth.
		var factor float64
		if errNorm == 0 {
			factor = 5
		} else {
			factor = 0.9 * math.Pow(scale*h/errNorm, 0.2)
			factor = math.Max(0.2, math.Min(5, factor))
		}
		h *= factor
		if h < minStep {
			h = minStep
		}
	}
	return accepted, nil
}

// ---------------------------------------------------------------------------
// Steady state

// SteadyStateOptions configures the run-to-stationarity driver.
type SteadyStateOptions struct {
	// Tol stops when ‖dx/dt‖₂ ≤ Tol (default 1e-10).
	Tol float64
	// Dt is the RK4 step (default 0.05/f_max-ish; caller should scale with
	// the fitness magnitudes). Default 0.01.
	Dt float64
	// MaxSteps caps the run (default 10_000_000).
	MaxSteps int
}

// SteadyState integrates the nonlinear system from x (in place) until the
// vector field norm drops below Tol, returning (t, steps). At the fixed
// point, x is the quasispecies distribution and Φ(x) equals the dominant
// eigenvalue λ₀ of W.
func (s *System) SteadyState(x []float64, opts SteadyStateOptions) (float64, int, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	dt := opts.Dt
	if dt <= 0 {
		dt = 0.01
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 10000000
	}
	deriv := make([]float64, s.Dim())
	t := 0.0
	const block = 64
	for steps := 0; steps < maxSteps; steps += block {
		var err error
		t, err = s.IntegrateRK4(x, t, dt, block, RK4Options{Renormalize: true})
		if err != nil {
			return t, steps, err
		}
		s.RHS(deriv, x)
		if vec.Norm2(deriv) <= tol {
			return t, steps + block, nil
		}
	}
	s.RHS(deriv, x)
	return t, maxSteps, fmt.Errorf("ode: no steady state after %d steps (‖ẋ‖ = %g, tol %g)",
		maxSteps, vec.Norm2(deriv), tol)
}
