package ode

import (
	"testing"

	"repro/internal/landscape"
)

// TestCriticalSlowingDown verifies the dynamical counterpart of the
// closing spectral gap: relaxation to the quasispecies takes much longer
// near the error threshold than deep inside the ordered regime. This is
// the ODE-side view of the same phenomenon the gap estimator quantifies
// spectrally (internal/core TestGapClosesNearThreshold) — together they
// tie Eq. 1's dynamics to the eigenvalue analysis that justifies the
// paper's runtime discussion.
func TestCriticalSlowingDown(t *testing.T) {
	const nu = 10 // threshold at p_max ≈ ln2/10 ≈ 0.069
	l, err := landscape.NewSinglePeak(nu, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	relaxSteps := func(p float64) int {
		s := buildSystem(t, nu, p, l)
		x := MasterStart(s.Dim())
		_, steps, err := s.SteadyState(x, SteadyStateOptions{Tol: 1e-9, Dt: 0.02, MaxSteps: 2000000})
		if err != nil {
			t.Fatalf("p=%g: %v", p, err)
		}
		return steps
	}
	deep := relaxSteps(0.01)
	near := relaxSteps(0.06)
	if near <= deep {
		t.Errorf("no critical slowing down: %d steps near threshold vs %d deep in the ordered regime",
			near, deep)
	}
	if near < 2*deep {
		t.Errorf("slowing down too weak: %d vs %d steps (expected ≥ 2×)", near, deep)
	}
	t.Logf("relaxation steps: p=0.01 → %d, p=0.06 → %d (%.1f×)", deep, near, float64(near)/float64(deep))
}
