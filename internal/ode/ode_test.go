package ode

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func buildSystem(t *testing.T, nu int, p float64, l landscape.Landscape) *System {
	t.Helper()
	q := mutation.MustUniform(nu, p)
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(op, l)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func randLandscape(t *testing.T, nu int, seed uint64) landscape.Landscape {
	t.Helper()
	l, err := landscape.NewRandom(nu, 5, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRHSConservesTotalConcentration(t *testing.T) {
	// On the simplex Σxᵢ = 1 the field satisfies Σẋᵢ = Φ − Φ·Σxᵢ = 0.
	const nu = 8
	l := randLandscape(t, nu, 1)
	s := buildSystem(t, nu, 0.01, l)
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, s.Dim())
		for i := range x {
			x[i] = r.Float64()
		}
		vec.Normalize1(x)
		dx := make([]float64, s.Dim())
		s.RHS(dx, x)
		if sum := vec.SumKahan(dx); math.Abs(sum) > 1e-12 {
			t.Fatalf("Σẋ = %g on the simplex", sum)
		}
	}
}

func TestEigenvectorIsFixedPoint(t *testing.T) {
	// At the quasispecies x*, W·x* = λx* and Φ(x*) = λ, so ẋ = 0.
	const nu = 8
	l := randLandscape(t, nu, 3)
	s := buildSystem(t, nu, 0.01, l)
	q := mutation.MustUniform(nu, 0.01)
	op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
	res, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-13, Start: core.FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Clone(res.Vector)
	if err := core.Concentrations(x); err != nil {
		t.Fatal(err)
	}
	// Φ(x*) = λ.
	if math.Abs(s.Phi(x)-res.Lambda) > 1e-9 {
		t.Errorf("Φ(x*) = %g, λ = %g", s.Phi(x), res.Lambda)
	}
	dx := make([]float64, s.Dim())
	s.RHS(dx, x)
	if n := vec.Norm2(dx); n > 1e-9 {
		t.Errorf("‖ẋ‖ = %g at the quasispecies fixed point", n)
	}
}

func TestTrajectoryConvergesToQuasispecies(t *testing.T) {
	// Integrating Eq. 1 from x₀ = e₀ must reach the Perron eigenvector of
	// W — the dynamical and spectral definitions agree.
	const nu = 7
	const p = 0.02
	l := randLandscape(t, nu, 4)
	s := buildSystem(t, nu, p, l)

	x := MasterStart(s.Dim())
	_, steps, err := s.SteadyState(x, SteadyStateOptions{Tol: 1e-11, Dt: 0.02})
	if err != nil {
		t.Fatal(err)
	}

	q := mutation.MustUniform(nu, p)
	op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
	res, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-13, Start: core.FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	want := vec.Clone(res.Vector)
	if err := core.Concentrations(want); err != nil {
		t.Fatal(err)
	}
	if d := vec.DistInf(x, want); d > 1e-7 {
		t.Errorf("steady state deviates from eigenvector by %g (after %d steps)", d, steps)
	}
	if math.Abs(s.Phi(x)-res.Lambda) > 1e-7 {
		t.Errorf("Φ at steady state = %g, λ = %g", s.Phi(x), res.Lambda)
	}
}

func TestBernoulliLinearization(t *testing.T) {
	// x(t) from the nonlinear flow equals z(t)/‖z(t)‖₁ from ż = W·z when
	// both start at the same simplex point.
	const nu = 6
	l := randLandscape(t, nu, 5)
	s := buildSystem(t, nu, 0.03, l)
	n := s.Dim()

	x := MasterStart(n)
	if _, err := s.IntegrateRK4(x, 0, 0.001, 2000, RK4Options{}); err != nil {
		t.Fatal(err)
	}

	// Linear flow with the same RK4 scheme.
	z := MasterStart(n)
	k1, k2, k3, k4, tmp := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	dt := 0.001
	for step := 0; step < 2000; step++ {
		s.LinearRHS(k1, z)
		for i := range tmp {
			tmp[i] = z[i] + dt/2*k1[i]
		}
		s.LinearRHS(k2, tmp)
		for i := range tmp {
			tmp[i] = z[i] + dt/2*k2[i]
		}
		s.LinearRHS(k3, tmp)
		for i := range tmp {
			tmp[i] = z[i] + dt*k3[i]
		}
		s.LinearRHS(k4, tmp)
		for i := range z {
			z[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
	}
	vec.Normalize1(z)
	if d := vec.DistInf(x, z); d > 1e-8 {
		t.Errorf("nonlinear and linearized trajectories differ by %g", d)
	}
}

func TestRK4OrderOfAccuracy(t *testing.T) {
	// Halving dt must shrink the error by ≈2⁴ (global order 4).
	const nu = 5
	l := randLandscape(t, nu, 6)
	s := buildSystem(t, nu, 0.05, l)
	const T = 1.0

	solveWith := func(dt float64) []float64 {
		x := MasterStart(s.Dim())
		steps := int(math.Round(T / dt))
		if _, err := s.IntegrateRK4(x, 0, dt, steps, RK4Options{}); err != nil {
			t.Fatal(err)
		}
		return x
	}
	ref := solveWith(1.0 / 4096)
	errCoarse := vec.DistInf(solveWith(1.0/32), ref)
	errFine := vec.DistInf(solveWith(1.0/64), ref)
	ratio := errCoarse / errFine
	if ratio < 10 || ratio > 26 {
		t.Errorf("error ratio %g for dt halving; want ≈ 16 (order 4)", ratio)
	}
}

func TestAdaptiveMatchesRK4(t *testing.T) {
	const nu = 6
	l := randLandscape(t, nu, 7)
	s := buildSystem(t, nu, 0.02, l)
	const T = 2.0

	xa := MasterStart(s.Dim())
	steps, err := s.IntegrateAdaptive(xa, 0, T, AdaptiveOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 {
		t.Fatal("no steps accepted")
	}

	xr := MasterStart(s.Dim())
	if _, err := s.IntegrateRK4(xr, 0, 1e-3, 2000, RK4Options{}); err != nil {
		t.Fatal(err)
	}
	if d := vec.DistInf(xa, xr); d > 1e-7 {
		t.Errorf("adaptive and RK4 solutions differ by %g (adaptive used %d steps)", d, steps)
	}
}

func TestAdaptiveUsesFewStepsOnSmoothProblem(t *testing.T) {
	const nu = 6
	l := randLandscape(t, nu, 8)
	s := buildSystem(t, nu, 0.02, l)
	x := MasterStart(s.Dim())
	steps, err := s.IntegrateAdaptive(x, 0, 5, AdaptiveOptions{Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if steps > 500 {
		t.Errorf("adaptive integrator used %d steps on a smooth problem", steps)
	}
}

func TestSimplexPreservation(t *testing.T) {
	const nu = 7
	l := randLandscape(t, nu, 9)
	s := buildSystem(t, nu, 0.01, l)
	x := MasterStart(s.Dim())
	sumDrift := 0.0
	_, err := s.IntegrateRK4(x, 0, 0.01, 500, RK4Options{
		Monitor: func(step int, tt float64, state []float64) bool {
			d := math.Abs(vec.SumKahan(state) - 1)
			if d > sumDrift {
				sumDrift = d
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sumDrift > 1e-9 {
		t.Errorf("simplex drift %g without renormalization", sumDrift)
	}
	if !vec.AllNonNegative(x, 1e-12) {
		t.Error("concentrations went negative")
	}
}

func TestMonitorEarlyStop(t *testing.T) {
	const nu = 5
	l := randLandscape(t, nu, 10)
	s := buildSystem(t, nu, 0.02, l)
	x := MasterStart(s.Dim())
	calls := 0
	tEnd, err := s.IntegrateRK4(x, 0, 0.01, 1000, RK4Options{
		Monitor: func(step int, tt float64, state []float64) bool {
			calls++
			return step < 5
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 || math.Abs(tEnd-0.05) > 1e-12 {
		t.Errorf("early stop: calls=%d tEnd=%g", calls, tEnd)
	}
}

func TestIntegrationInputValidation(t *testing.T) {
	const nu = 4
	l := randLandscape(t, nu, 11)
	s := buildSystem(t, nu, 0.02, l)
	if _, err := s.IntegrateRK4(make([]float64, 3), 0, 0.1, 10, RK4Options{}); err == nil {
		t.Error("wrong state length must error")
	}
	x := MasterStart(s.Dim())
	if _, err := s.IntegrateRK4(x, 0, -0.1, 10, RK4Options{}); err == nil {
		t.Error("negative dt must error")
	}
	if _, err := s.IntegrateAdaptive(x, 1, 0, AdaptiveOptions{}); err == nil {
		t.Error("t1 < t0 must error")
	}
	if _, err := s.IntegrateAdaptive(make([]float64, 3), 0, 1, AdaptiveOptions{}); err == nil {
		t.Error("wrong adaptive state length must error")
	}
}

func TestRK4BlowupDetection(t *testing.T) {
	const nu = 4
	l := randLandscape(t, nu, 12)
	s := buildSystem(t, nu, 0.02, l)
	x := MasterStart(s.Dim())
	// dt = 1e6 with λ ~ 5 explodes immediately.
	if _, err := s.IntegrateRK4(x, 0, 1e6, 100, RK4Options{}); err == nil {
		t.Error("divergent integration must be detected")
	}
}

func TestNewSystemValidation(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	l4, _ := landscape.NewUniform(4, 1)
	l5, _ := landscape.NewUniform(5, 1)
	op, _ := core.NewFmmpOperator(q, l4, core.Right, nil)
	if _, err := NewSystem(op, l5); err == nil {
		t.Error("dimension mismatch must be rejected")
	}
}

func TestUniformFitnessFlowsToUniform(t *testing.T) {
	const nu = 6
	l, _ := landscape.NewUniform(nu, 2)
	s := buildSystem(t, nu, 0.05, l)
	x := MasterStart(s.Dim())
	if _, _, err := s.SteadyState(x, SteadyStateOptions{Tol: 1e-11, Dt: 0.05}); err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(s.Dim())
	for i, v := range x {
		if math.Abs(v-want) > 1e-8 {
			t.Fatalf("x[%d] = %g, want uniform %g", i, v, want)
		}
	}
}
