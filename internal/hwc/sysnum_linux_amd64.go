//go:build linux && amd64

package hwc

// perf_event_open syscall number (arch/x86/entry/syscalls/syscall_64.tbl).
const sysPerfEventOpen = 298
