//go:build linux && (amd64 || arm64)

package hwc

import (
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"unsafe"
)

// perfEventAttr is the leading 64 bytes of struct perf_event_attr
// (PERF_ATTR_SIZE_VER0) — everything a counting (non-sampling) group
// needs. The kernel accepts any attr size it knows; fields beyond VER0
// default to zero, which is exactly what we want.
type perfEventAttr struct {
	Type         uint32
	Size         uint32
	Config       uint64
	SamplePeriod uint64
	SampleType   uint64
	ReadFormat   uint64
	Bits         uint64
	WakeupEvents uint32
	BPType       uint32
	Config1      uint64
}

const (
	attrSizeVer0 = 64

	// ReadFormat flags.
	formatTotalTimeEnabled = 1 << 0
	formatTotalTimeRunning = 1 << 1
	formatGroup            = 1 << 3

	// Attr bitfield flags (perfEventAttr.Bits).
	bitDisabled      = 1 << 0
	bitExcludeKernel = 1 << 5
	bitExcludeHV     = 1 << 6

	// perf_event_open flags.
	flagFDCloexec = 1 << 3

	// ioctls on the group leader.
	iocEnable    = 0x2400
	iocReset     = 0x2403
	iocFlagGroup = 1
)

// threadGroup is one OS thread's counter group: the leader fd, the member
// fds and a read buffer sized for one PERF_FORMAT_GROUP read. A group is
// only ever read by its own thread (reads happen on the thread that
// triggered them), so buf needs no lock.
type threadGroup struct {
	fds  []int
	buf  []byte
	dead bool
}

// Session owns the process's counter groups, opened lazily per OS thread
// on first read. A degraded session (no permission, no PMU) is fully
// functional API-wise: ReadSelf reports false and Reason names the single
// cause. Safe for concurrent use.
type Session struct {
	events []Event
	reason string

	mu     sync.Mutex
	groups sync.Map // tid int -> *threadGroup
	closed bool
}

// Open creates a session measuring the base events plus the extras listed
// in the QS_HWC_EVENTS-style string (comma-separated names; "" for none).
// Open never fails: permission or hardware problems return a degraded
// session whose Reason explains why, probed eagerly on the calling thread
// so the caller can report it before any spans run.
func Open(extras string) *Session {
	events, err := ParseEvents(extras)
	if err != nil {
		return &Session{reason: err.Error()}
	}
	s := &Session{events: events}
	// Probe: open (and keep) the calling thread's group now. The probe
	// failing is the ONE degradation the whole session reports.
	g, err := s.openGroup()
	if err != nil {
		s.reason = err.Error()
		return s
	}
	s.groups.Store(syscall.Gettid(), g)
	return s
}

// Reason returns "" when counters are live, or the single degradation
// reason (permission denied, missing PMU, unsupported platform, bad event
// list) when every read will report false.
func (s *Session) Reason() string {
	if s == nil {
		return "hardware counters not attached"
	}
	return s.reason
}

// EventNames returns the live group's event names in Sample order, nil
// when degraded.
func (s *Session) EventNames() []string {
	if s == nil || s.reason != "" {
		return nil
	}
	names := make([]string, len(s.events))
	for i, e := range s.events {
		names[i] = e.Name
	}
	return names
}

// NumEvents returns the group size (0 when degraded).
func (s *Session) NumEvents() int {
	if s == nil || s.reason != "" {
		return 0
	}
	return len(s.events)
}

// ReadSelf reads the calling thread's counter group into out, opening the
// group on first use of a thread. Steady state is allocation-free: one
// gettid, one lock-free map load, one read(2) into the group's buffer.
// Reports false when the session is degraded, closed, or this thread's
// group could not be opened or read.
func (s *Session) ReadSelf(out *Sample) bool {
	if s == nil || s.reason != "" {
		return false
	}
	tid := syscall.Gettid()
	var g *threadGroup
	if v, ok := s.groups.Load(tid); ok {
		g = v.(*threadGroup)
	} else {
		g = s.adoptGroup(tid)
	}
	if g == nil || g.dead {
		return false
	}
	n, err := syscall.Read(g.fds[0], g.buf)
	if err != nil || n != len(g.buf) {
		return false
	}
	// PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
	le := binary.LittleEndian
	if int(le.Uint64(g.buf)) != len(s.events) {
		return false
	}
	out.TID = tid
	out.N = len(s.events)
	out.Enabled = le.Uint64(g.buf[8:])
	out.Running = le.Uint64(g.buf[16:])
	for i := range s.events {
		out.Values[i] = le.Uint64(g.buf[24+8*i:])
	}
	return true
}

// adoptGroup opens the calling thread's group under the session mutex
// (first span on a new pool worker). A failed open is remembered as a
// dead group so the thread does not retry on every span.
func (s *Session) adoptGroup(tid int) *threadGroup {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if v, ok := s.groups.Load(tid); ok {
		return v.(*threadGroup)
	}
	g, err := s.openGroup()
	if err != nil {
		g = &threadGroup{dead: true}
	}
	s.groups.Store(tid, g)
	return g
}

// openGroup opens one counter group on the calling thread: the first
// event is the disabled leader, members attach to it, then one grouped
// reset+enable arms them all atomically. Counters count user space only
// (exclude_kernel|exclude_hv) — the least-privileged mode, allowed up to
// kernel.perf_event_paranoid=2 — so IPC numbers mean "this phase's own
// instructions", not interrupt noise.
func (s *Session) openGroup() (*threadGroup, error) {
	g := &threadGroup{
		fds: make([]int, 0, len(s.events)),
		buf: make([]byte, 8*(3+len(s.events))),
	}
	for i, ev := range s.events {
		attr := perfEventAttr{
			Type:       ev.typ,
			Size:       attrSizeVer0,
			Config:     ev.config,
			ReadFormat: formatGroup | formatTotalTimeEnabled | formatTotalTimeRunning,
			Bits:       bitExcludeKernel | bitExcludeHV,
		}
		leader := -1
		if i == 0 {
			attr.Bits |= bitDisabled
		} else {
			leader = g.fds[0]
		}
		fd, err := perfEventOpen(&attr, 0, -1, leader, flagFDCloexec)
		if err != nil {
			g.close()
			return nil, fmt.Errorf("hwc: perf_event_open(%s): %s", ev.Name, describeErrno(err))
		}
		g.fds = append(g.fds, fd)
	}
	if err := ioctl(g.fds[0], iocReset, iocFlagGroup); err != nil {
		g.close()
		return nil, fmt.Errorf("hwc: PERF_EVENT_IOC_RESET: %v", err)
	}
	if err := ioctl(g.fds[0], iocEnable, iocFlagGroup); err != nil {
		g.close()
		return nil, fmt.Errorf("hwc: PERF_EVENT_IOC_ENABLE: %v", err)
	}
	return g, nil
}

func (g *threadGroup) close() {
	for _, fd := range g.fds {
		_ = syscall.Close(fd)
	}
	g.fds = nil
	g.dead = true
}

// Close releases every thread's descriptors. Further reads report false.
// The Shared session is never closed; Close exists for tests and
// short-lived explicit sessions.
func (s *Session) Close() {
	if s == nil || s.reason != "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.groups.Range(func(k, v any) bool {
		v.(*threadGroup).close()
		s.groups.Delete(k)
		return true
	})
}

// describeErrno turns the classic perf_event_open failures into
// actionable one-liners; everything else passes through.
func describeErrno(err error) string {
	errno, ok := err.(syscall.Errno)
	if !ok {
		return err.Error()
	}
	switch errno {
	case syscall.EACCES, syscall.EPERM:
		return fmt.Sprintf("%v (kernel.perf_event_paranoid=%s forbids unprivileged counters; need ≤ 2, or CAP_PERFMON)",
			err, paranoidLevel())
	case syscall.ENOENT, syscall.ENODEV, syscall.EOPNOTSUPP:
		return fmt.Sprintf("%v (no PMU exposed to this host — common in containers and VMs)", err)
	case syscall.ENOSYS:
		return fmt.Sprintf("%v (kernel built without perf events)", err)
	}
	return err.Error()
}

func paranoidLevel() string {
	raw, err := os.ReadFile("/proc/sys/kernel/perf_event_paranoid")
	if err != nil {
		return "?"
	}
	return strings.TrimSpace(string(raw))
}

func perfEventOpen(attr *perfEventAttr, pid, cpu, groupFD, flags int) (int, error) {
	fd, _, errno := syscall.Syscall6(sysPerfEventOpen,
		uintptr(unsafe.Pointer(attr)), uintptr(pid), uintptr(cpu),
		uintptr(groupFD), uintptr(flags), 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

func ioctl(fd int, req, arg uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(fd), req, arg)
	if errno != 0 {
		return errno
	}
	return nil
}
