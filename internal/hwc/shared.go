package hwc

import (
	"os"
	"sync"
)

// The process-wide session behind every -hwc flag: opened once with the
// QS_HWC_EVENTS extras, never closed (its per-thread descriptors live for
// the process — a handful of fds per worker thread). Multiple profiles
// attaching the shared session reuse the same thread groups instead of
// multiplying descriptors.
var shared struct {
	once sync.Once
	s    *Session
}

// Shared returns the process-wide counter session, opening it on first
// call with the extra events named in QS_HWC_EVENTS. Like Open it never
// fails; a degraded environment yields a session whose Reason explains
// the single cause.
func Shared() *Session {
	shared.once.Do(func() { shared.s = Open(os.Getenv("QS_HWC_EVENTS")) })
	return shared.s
}

// Available reports whether hardware counters are live on this host, with
// the degradation reason when they are not. Probing opens the shared
// session.
func Available() (bool, string) {
	s := Shared()
	return s.Reason() == "", s.Reason()
}
