package hwc

import (
	"strings"
	"testing"
)

func TestParseEventsBase(t *testing.T) {
	events, err := ParseEvents("")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"cycles", "instructions", "cache-references", "cache-misses", "branch-misses"}
	if len(events) != len(want) {
		t.Fatalf("base group has %d events, want %d", len(events), len(want))
	}
	for i, name := range want {
		if events[i].Name != name {
			t.Errorf("events[%d] = %q, want %q", i, events[i].Name, name)
		}
	}
}

func TestParseEventsExtras(t *testing.T) {
	events, err := ParseEvents(" LLC-Load-Misses , stalled-cycles-backend ")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != numBaseEvents+2 {
		t.Fatalf("group has %d events, want %d", len(events), numBaseEvents+2)
	}
	if events[numBaseEvents].Name != "llc-load-misses" || events[numBaseEvents+1].Name != "stalled-cycles-backend" {
		t.Errorf("extras = %q, %q", events[numBaseEvents].Name, events[numBaseEvents+1].Name)
	}

	// Duplicates (of base or extra) collapse.
	events, err = ParseEvents("cycles,llc-loads,llc-loads")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != numBaseEvents+1 {
		t.Fatalf("deduped group has %d events, want %d", len(events), numBaseEvents+1)
	}
}

func TestParseEventsErrors(t *testing.T) {
	if _, err := ParseEvents("no-such-counter"); err == nil || !strings.Contains(err.Error(), "no-such-counter") {
		t.Errorf("unknown event error = %v", err)
	}
	if _, err := ParseEvents("llc-loads,llc-load-misses,l1d-load-misses,dtlb-load-misses"); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("over-cap error = %v", err)
	}
}

func TestDelta(t *testing.T) {
	begin := &Sample{TID: 7, N: 3, Enabled: 1000, Running: 1000, Values: [MaxEvents]uint64{100, 200, 300}}
	end := &Sample{TID: 7, N: 3, Enabled: 2000, Running: 2000, Values: [MaxEvents]uint64{150, 260, 300}}
	var d [MaxEvents]float64
	if !Delta(begin, end, &d) {
		t.Fatal("same-thread delta reported false")
	}
	if d[0] != 50 || d[1] != 60 || d[2] != 0 {
		t.Errorf("deltas = %v", d[:3])
	}

	// Multiplexed window: ran half the enabled time → counts double.
	end2 := &Sample{TID: 7, N: 3, Enabled: 3000, Running: 2000, Values: [MaxEvents]uint64{150, 260, 300}}
	if !Delta(begin, end2, &d) {
		t.Fatal("multiplexed delta reported false")
	}
	if d[0] != 100 || d[1] != 120 {
		t.Errorf("scaled deltas = %v", d[:2])
	}

	// Thread migration refuses to subtract.
	moved := &Sample{TID: 8, N: 3, Enabled: 2000, Running: 2000}
	if Delta(begin, moved, &d) {
		t.Error("cross-thread delta reported true")
	}
	// Counter wrap clamps to zero instead of exploding.
	wrapped := &Sample{TID: 7, N: 3, Enabled: 2000, Running: 2000, Values: [MaxEvents]uint64{50, 300, 300}}
	if !Delta(begin, wrapped, &d) || d[0] != 0 || d[1] != 100 {
		t.Errorf("wrapped delta = %v", d[:2])
	}
}

func TestDegradedSessionIsInert(t *testing.T) {
	s := Open("definitely-not-an-event")
	if s.Reason() == "" {
		t.Fatal("bad event list did not degrade the session")
	}
	var sample Sample
	if s.ReadSelf(&sample) {
		t.Error("degraded session read a sample")
	}
	if s.EventNames() != nil || s.NumEvents() != 0 {
		t.Error("degraded session reports live events")
	}
	s.Close() // must not panic
	var nilSession *Session
	if nilSession.ReadSelf(&sample) || nilSession.Reason() == "" {
		t.Error("nil session not inert")
	}
}

// TestLiveCounters exercises the real perf_event_open path when the host
// permits it; on denied/PMU-less hosts it asserts the degradation contract
// instead (single reason, inert reads) — both sides of the matrix are
// always covered.
func TestLiveCounters(t *testing.T) {
	s := Open("")
	defer s.Close()
	if reason := s.Reason(); reason != "" {
		t.Logf("degraded host: %s", reason)
		var sample Sample
		if s.ReadSelf(&sample) {
			t.Error("degraded session read a sample")
		}
		return
	}
	if got := s.NumEvents(); got != numBaseEvents {
		t.Fatalf("NumEvents = %d, want %d", got, numBaseEvents)
	}

	var begin, end Sample
	if !s.ReadSelf(&begin) {
		t.Fatal("first ReadSelf failed on a live session")
	}
	// Burn user-space instructions so the deltas are unambiguous.
	sink := 0.0
	for i := 0; i < 2_000_000; i++ {
		sink += float64(i)
	}
	if sink == 0 {
		t.Fatal("unreachable")
	}
	if !s.ReadSelf(&end) {
		t.Fatal("second ReadSelf failed on a live session")
	}
	if begin.TID != end.TID {
		t.Skip("goroutine migrated threads mid-test; counters valid but not comparable")
	}
	var d [MaxEvents]float64
	if !Delta(&begin, &end, &d) {
		t.Fatal("Delta refused same-thread samples")
	}
	if d[IdxInstructions] < 1_000_000 {
		t.Errorf("instructions delta = %g, want ≥ 1e6 for a 2e6-iteration loop", d[IdxInstructions])
	}
	if d[IdxCycles] <= 0 {
		t.Errorf("cycles delta = %g, want > 0", d[IdxCycles])
	}
	t.Logf("live: %.0f instructions, %.0f cycles, IPC %.2f",
		d[IdxInstructions], d[IdxCycles], d[IdxInstructions]/d[IdxCycles])
}

// TestReadSelfAllocFree pins the steady-state zero-allocation contract of
// the hot read path (one read per span Begin/End on the -hwc path).
func TestReadSelfAllocFree(t *testing.T) {
	s := Open("")
	defer s.Close()
	if s.Reason() != "" {
		t.Skipf("degraded host: %s", s.Reason())
	}
	var sample Sample
	s.ReadSelf(&sample) // warm this thread's group
	allocs := testing.AllocsPerRun(200, func() {
		s.ReadSelf(&sample)
	})
	if allocs != 0 {
		t.Errorf("ReadSelf allocates %.1f per call, want 0", allocs)
	}
}
