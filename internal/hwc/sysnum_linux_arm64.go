//go:build linux && arm64

package hwc

// perf_event_open syscall number (include/uapi/asm-generic/unistd.h).
const sysPerfEventOpen = 241
