// Package hwc reads CPU hardware performance counters for the span
// profiler: per-thread perf_event_open counter groups whose deltas the
// profiler attributes to span phases, turning the wall-time table into an
// IPC / cache-miss-rate table ("is this phase slow because it stalls, or
// because it executes more instructions?").
//
// Design constraints, in order:
//
//   - Zero dependencies. The perf_event_open ABI is spoken directly
//     through package syscall (attr struct, group reads, ioctls); no
//     cgo, no x/sys.
//   - Graceful degradation. Counters are a privilege- and
//     hardware-gated resource: kernel.perf_event_paranoid can forbid
//     them, containers and VMs often expose no PMU, and non-Linux hosts
//     have no perf_event_open at all. Every failure mode degrades to a
//     Session that reads nothing and reports ONE human-readable reason;
//     callers never branch on platform.
//   - No steady-state allocations. A counter read is one gettid, one
//     lock-free group lookup and one read(2) into a buffer preallocated
//     when the thread's group was opened — safe to call from the span
//     hooks of a hot solve.
//
// Counters are per OS thread (perf events follow threads, goroutines
// migrate), so a Sample records the thread it was taken on and Delta
// refuses to subtract samples from different threads — the profiler
// counts such spans as dropped rather than attributing another thread's
// work. See DESIGN.md §5.7 for the attribution accounting and the full
// degradation matrix.
package hwc

import (
	"fmt"
	"strings"
)

// MaxEvents bounds a counter group: the five base events plus up to
// three extras. Small enough that group reads stay one cache line and
// fixed-size arrays embed in span records without allocation; and most
// PMUs multiplex beyond a handful of generic counters anyway.
const MaxEvents = 8

// Indices of the base events in every Sample / delta vector.
const (
	IdxCycles = iota
	IdxInstructions
	IdxCacheRefs
	IdxCacheMisses
	IdxBranchMisses
	numBaseEvents
)

// perf_event_attr type/config pairs (uapi/linux/perf_event.h). Declared
// portably so event parsing and tests run on every platform; only the
// Linux session uses them to open descriptors.
const (
	perfTypeHardware = 0
	perfTypeHWCache  = 3

	hwCycles          = 0
	hwInstructions    = 1
	hwCacheReferences = 2
	hwCacheMisses     = 3
	hwBranchInstr     = 4
	hwBranchMisses    = 5
	hwBusCycles       = 6
	hwStalledFrontend = 7
	hwStalledBackend  = 8
	hwRefCycles       = 9
	cacheLL           = 2
	cacheL1D          = 0
	cacheDTLB         = 3
	cacheOpRead       = 0
	cacheResultAccess = 0
	cacheResultMiss   = 1
	cacheMissConfig   = cacheResultMiss << 16
	cacheAccessConfig = cacheResultAccess << 16
	cacheReadConfig   = cacheOpRead << 8
)

// Event is one counter in a group.
type Event struct {
	// Name is the canonical spelling accepted by QS_HWC_EVENTS and used
	// as the column / metric label.
	Name string

	typ    uint32
	config uint64
}

// baseEvents is the always-on group prefix, in Idx* order.
var baseEvents = [numBaseEvents]Event{
	{Name: "cycles", typ: perfTypeHardware, config: hwCycles},
	{Name: "instructions", typ: perfTypeHardware, config: hwInstructions},
	{Name: "cache-references", typ: perfTypeHardware, config: hwCacheReferences},
	{Name: "cache-misses", typ: perfTypeHardware, config: hwCacheMisses},
	{Name: "branch-misses", typ: perfTypeHardware, config: hwBranchMisses},
}

// extraCatalog maps QS_HWC_EVENTS names onto optional events.
var extraCatalog = map[string]Event{
	"llc-loads":               {Name: "llc-loads", typ: perfTypeHWCache, config: cacheLL | cacheReadConfig | cacheAccessConfig},
	"llc-load-misses":         {Name: "llc-load-misses", typ: perfTypeHWCache, config: cacheLL | cacheReadConfig | cacheMissConfig},
	"l1d-load-misses":         {Name: "l1d-load-misses", typ: perfTypeHWCache, config: cacheL1D | cacheReadConfig | cacheMissConfig},
	"dtlb-load-misses":        {Name: "dtlb-load-misses", typ: perfTypeHWCache, config: cacheDTLB | cacheReadConfig | cacheMissConfig},
	"stalled-cycles-frontend": {Name: "stalled-cycles-frontend", typ: perfTypeHardware, config: hwStalledFrontend},
	"stalled-cycles-backend":  {Name: "stalled-cycles-backend", typ: perfTypeHardware, config: hwStalledBackend},
	"branch-instructions":     {Name: "branch-instructions", typ: perfTypeHardware, config: hwBranchInstr},
	"bus-cycles":              {Name: "bus-cycles", typ: perfTypeHardware, config: hwBusCycles},
	"ref-cycles":              {Name: "ref-cycles", typ: perfTypeHardware, config: hwRefCycles},
}

// ParseEvents resolves a comma-separated QS_HWC_EVENTS list into the full
// event group: the five base events followed by the recognized extras, in
// listed order, deduplicated and capped at MaxEvents. Unknown names are an
// error listing the catalog, so a typo degrades loudly instead of silently
// measuring less.
func ParseEvents(extras string) ([]Event, error) {
	events := append([]Event(nil), baseEvents[:]...)
	if strings.TrimSpace(extras) == "" {
		return events, nil
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e.Name] = true
	}
	for _, name := range strings.Split(extras, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		if name == "" || seen[name] {
			continue
		}
		ev, ok := extraCatalog[name]
		if !ok {
			return nil, fmt.Errorf("hwc: unknown event %q in QS_HWC_EVENTS (have: %s)", name, catalogNames())
		}
		if len(events) == MaxEvents {
			return nil, fmt.Errorf("hwc: QS_HWC_EVENTS lists more than %d extra events (group cap %d)", MaxEvents-numBaseEvents, MaxEvents)
		}
		events = append(events, ev)
		seen[name] = true
	}
	return events, nil
}

func catalogNames() string {
	names := make([]string, 0, len(extraCatalog))
	for n := range extraCatalog {
		names = append(names, n)
	}
	// Deterministic order for error messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// Sample is one point-in-time read of a thread's counter group. Enabled
// and Running carry the kernel's multiplexing clocks; when the PMU had to
// time-share the group, Running < Enabled and Delta scales accordingly.
type Sample struct {
	// TID is the OS thread the sample was read on.
	TID int
	// N is the number of live values (== the session's event count).
	N int
	// Enabled and Running are the group's time-enabled / time-running
	// clocks in nanoseconds.
	Enabled, Running uint64
	// Values holds the raw counter values in session event order.
	Values [MaxEvents]uint64
}

// Delta fills out with the multiplexing-scaled counter increments between
// two samples of one span. It reports false — and leaves out untouched —
// when the samples cannot be subtracted: different threads (the goroutine
// migrated mid-span, so the counters saw someone else's work) or
// mismatched group shapes.
func Delta(begin, end *Sample, out *[MaxEvents]float64) bool {
	if begin.TID != end.TID || begin.N != end.N || begin.N == 0 {
		return false
	}
	enabled := float64(end.Enabled - begin.Enabled)
	running := float64(end.Running - begin.Running)
	scale := 1.0
	if running > 0 && enabled > running {
		scale = enabled / running
	}
	for i := 0; i < begin.N; i++ {
		// Counters are monotonic within one thread's group; guard the
		// subtraction anyway so a kernel quirk yields a zero, not 2^64.
		if end.Values[i] < begin.Values[i] {
			out[i] = 0
			continue
		}
		out[i] = float64(end.Values[i]-begin.Values[i]) * scale
	}
	for i := begin.N; i < MaxEvents; i++ {
		out[i] = 0
	}
	return true
}
