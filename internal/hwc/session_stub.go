//go:build !linux || (!amd64 && !arm64)

package hwc

import (
	"fmt"
	"runtime"
)

// Session on platforms without perf_event_open support: permanently
// degraded, same API surface as the Linux session so no caller branches
// on platform.
type Session struct {
	reason string
}

// Open returns the degraded session; extras are validated anyway so a bad
// QS_HWC_EVENTS list is diagnosed identically on every platform.
func Open(extras string) *Session {
	if _, err := ParseEvents(extras); err != nil {
		return &Session{reason: err.Error()}
	}
	return &Session{reason: fmt.Sprintf(
		"hwc: hardware counters unsupported on %s/%s (perf_event_open is Linux amd64/arm64 only)",
		runtime.GOOS, runtime.GOARCH)}
}

// Reason returns the platform degradation reason.
func (s *Session) Reason() string {
	if s == nil {
		return "hardware counters not attached"
	}
	return s.reason
}

// EventNames returns nil: no counters are live.
func (s *Session) EventNames() []string { return nil }

// NumEvents returns 0: no counters are live.
func (s *Session) NumEvents() int { return 0 }

// ReadSelf reports false: no counters are live.
func (s *Session) ReadSelf(out *Sample) bool { return false }

// Close is a no-op.
func (s *Session) Close() {}
