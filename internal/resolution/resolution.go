// Package resolution implements the multi-resolution analysis of
// quasispecies distributions named in the paper's conclusions ("efficient
// methods which allow for computing quasispecies concentrations at various
// resolution levels"):
//
//   - hierarchical coarsening: the distribution aggregated over blocks of
//     2^s consecutive sequences, for every level s — a full pyramid in
//     Θ(N) total work;
//   - per-position marginals P(bit k = 1) and pairwise joint probabilities
//     P(bit j = 1 ∧ bit k = 1), obtainable either by direct accumulation
//     or — fittingly for this paper — from the Walsh spectrum of the
//     distribution: one FWHT yields every first- and second-order marginal
//     at once, since Walsh coefficients at singleton and pair masks are
//     exactly the ±1-encoded moments;
//   - top-k extraction of the most concentrated sequences.
//
// All functions treat x as a probability distribution over 2^ν sequences
// (Σx = 1); they do not require it but the probabilistic readings do.
package resolution

import (
	"fmt"
	"sort"

	"repro/internal/bits"
	"repro/internal/mutation"
)

// Coarsen aggregates x over 2^s-sized blocks of consecutive sequences:
// out[b] = Σ_{i in block b} x[i]. Level 0 returns a copy of x; level ν
// returns the single total. Blocks group sequences sharing the high
// ν−s bits, i.e. the coarse distribution over the leading positions.
func Coarsen(x []float64, level int) ([]float64, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("resolution: length %d is not a power of two", n)
	}
	nu := 0
	for 1<<nu < n {
		nu++
	}
	if level < 0 || level > nu {
		return nil, fmt.Errorf("resolution: level %d outside [0, %d]", level, nu)
	}
	block := 1 << uint(level)
	out := make([]float64, n/block)
	for b := range out {
		var s float64
		for i := b * block; i < (b+1)*block; i++ {
			s += x[i]
		}
		out[b] = s
	}
	return out, nil
}

// Pyramid returns all coarsening levels 0…ν, computed bottom-up so the
// total work is Θ(N) (each level halves the previous one).
func Pyramid(x []float64) ([][]float64, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("resolution: length %d is not a power of two", n)
	}
	levels := [][]float64{append([]float64(nil), x...)}
	for len(levels[len(levels)-1]) > 1 {
		prev := levels[len(levels)-1]
		next := make([]float64, len(prev)/2)
		for i := range next {
			next[i] = prev[2*i] + prev[2*i+1]
		}
		levels = append(levels, next)
	}
	return levels, nil
}

// Marginals returns P(bit k = 1) for every position k by direct
// accumulation — Θ(N·ν).
func Marginals(x []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("resolution: length %d is not a power of two", n)
	}
	nu := 0
	for 1<<nu < n {
		nu++
	}
	m := make([]float64, nu)
	for i, v := range x {
		rem := uint64(i)
		for rem != 0 {
			k := bits.BitIndices(rem & (^rem + 1))[0]
			m[k] += v
			rem &= rem - 1
		}
	}
	return m, nil
}

// Moments holds the first- and second-order structure of a distribution
// extracted from its Walsh spectrum.
type Moments struct {
	Nu int
	// P1[k] = P(bit k = 1).
	P1 []float64
	// P2[j][k] = P(bit j = 1 ∧ bit k = 1) for j < k (upper triangle;
	// P2[k][k] = P1[k]).
	P2 [][]float64
	// Total is Σx (the Walsh coefficient at mask 0).
	Total float64
}

// WalshMoments computes all single and pairwise marginals with a single
// Θ(N·log₂N) Walsh–Hadamard transform: for mask m with bits {j, k},
//
//	ŵ(m) = Σᵢ x[i]·(−1)^{popcount(i & m)}
//
// so ŵ(2^k) = Total − 2·P1[k] and
// ŵ(2^j|2^k) = Total − 2·P1[j] − 2·P1[k] + 4·P2[j][k].
func WalshMoments(x []float64) (*Moments, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("resolution: length %d is not a power of two", n)
	}
	nu := 0
	for 1<<nu < n {
		nu++
	}
	w := append([]float64(nil), x...)
	mutation.FWHT(w)
	m := &Moments{Nu: nu, Total: w[0]}
	m.P1 = make([]float64, nu)
	for k := 0; k < nu; k++ {
		m.P1[k] = (m.Total - w[1<<uint(k)]) / 2
	}
	m.P2 = make([][]float64, nu)
	for j := 0; j < nu; j++ {
		m.P2[j] = make([]float64, nu)
		m.P2[j][j] = m.P1[j]
	}
	for j := 0; j < nu; j++ {
		for k := j + 1; k < nu; k++ {
			c := w[(1<<uint(j))|(1<<uint(k))]
			p2 := (c - m.Total + 2*m.P1[j] + 2*m.P1[k]) / 4
			m.P2[j][k] = p2
			m.P2[k][j] = p2
		}
	}
	return m, nil
}

// Covariance returns Cov(bit j, bit k) = P2[j][k] − P1[j]·P1[k]; positive
// covariance means the two positions tend to mutate together in the
// stationary population (linkage).
func (m *Moments) Covariance(j, k int) float64 {
	return m.P2[j][k] - m.P1[j]*m.P1[k]
}

// SequenceConcentration is one entry of a top-k result.
type SequenceConcentration struct {
	Sequence      uint64
	Concentration float64
}

// TopK returns the k most concentrated sequences in descending order
// (ties broken by sequence index) using a single pass with a bounded
// selection buffer — Θ(N·log k).
func TopK(x []float64, k int) []SequenceConcentration {
	if k <= 0 {
		return nil
	}
	if k > len(x) {
		k = len(x)
	}
	// Maintain a sorted buffer of the current best k (k is small).
	buf := make([]SequenceConcentration, 0, k+1)
	for i, v := range x {
		if len(buf) == k && v <= buf[k-1].Concentration {
			continue
		}
		e := SequenceConcentration{Sequence: uint64(i), Concentration: v}
		pos := sort.Search(len(buf), func(t int) bool {
			if buf[t].Concentration != e.Concentration {
				return buf[t].Concentration < e.Concentration
			}
			return buf[t].Sequence > e.Sequence
		})
		buf = append(buf, SequenceConcentration{})
		copy(buf[pos+1:], buf[pos:])
		buf[pos] = e
		if len(buf) > k {
			buf = buf[:k]
		}
	}
	return buf
}

// ConsensusSequence returns the per-position majority sequence of the
// distribution: bit k is set iff P(bit k = 1) > ½. For an ordered
// quasispecies this recovers the master sequence; past the error
// threshold it is meaningless — a cheap threshold diagnostic.
func ConsensusSequence(x []float64) (uint64, error) {
	p1, err := Marginals(x)
	if err != nil {
		return 0, err
	}
	var seq uint64
	for k, p := range p1 {
		if p > 0.5 {
			seq |= 1 << uint(k)
		}
	}
	return seq, nil
}
