package resolution

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randDistribution(r *rng.Source, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
	}
	vec.Normalize1(x)
	return x
}

func TestCoarsenLevels(t *testing.T) {
	x := []float64{0.1, 0.2, 0.3, 0.4}
	l0, err := Coarsen(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vec.DistInf(l0, x) != 0 {
		t.Error("level 0 must copy")
	}
	l1, _ := Coarsen(x, 1)
	if vec.DistInf(l1, []float64{0.3, 0.7}) > 1e-15 {
		t.Errorf("level 1 = %v", l1)
	}
	l2, _ := Coarsen(x, 2)
	if math.Abs(l2[0]-1) > 1e-15 {
		t.Errorf("level 2 = %v", l2)
	}
}

func TestCoarsenValidation(t *testing.T) {
	if _, err := Coarsen([]float64{1, 2, 3}, 0); err == nil {
		t.Error("non-power-of-two length must be rejected")
	}
	if _, err := Coarsen([]float64{1, 2}, 2); err == nil {
		t.Error("level beyond ν must be rejected")
	}
	if _, err := Coarsen([]float64{1, 2}, -1); err == nil {
		t.Error("negative level must be rejected")
	}
}

func TestPyramidConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(10))
		x := randDistribution(r, 1<<nu)
		pyr, err := Pyramid(x)
		if err != nil {
			return false
		}
		if len(pyr) != nu+1 {
			return false
		}
		for level := range pyr {
			direct, err := Coarsen(x, level)
			if err != nil {
				return false
			}
			if vec.DistInf(pyr[level], direct) > 1e-12 {
				return false
			}
			// Mass is conserved at every level.
			if math.Abs(vec.Sum(pyr[level])-1) > 1e-10 {
				return false
			}
		}
		return len(pyr[nu]) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarginalsDirect(t *testing.T) {
	// Point mass at 0b101: marginals are exactly the bits.
	x := make([]float64, 8)
	x[0b101] = 1
	m, err := Marginals(x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 1}
	if vec.DistInf(m, want) != 0 {
		t.Errorf("marginals %v, want %v", m, want)
	}
}

func TestWalshMomentsMatchDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nu := 1 + int(r.Uint64n(9))
		x := randDistribution(r, 1<<nu)
		wm, err := WalshMoments(x)
		if err != nil {
			return false
		}
		if math.Abs(wm.Total-1) > 1e-10 {
			return false
		}
		direct, err := Marginals(x)
		if err != nil {
			return false
		}
		if vec.DistInf(wm.P1, direct) > 1e-10 {
			return false
		}
		// Pairwise against direct accumulation.
		for j := 0; j < nu; j++ {
			for k := j + 1; k < nu; k++ {
				var want float64
				for i, v := range x {
					if uint64(i)&(1<<uint(j)) != 0 && uint64(i)&(1<<uint(k)) != 0 {
						want += v
					}
				}
				if math.Abs(wm.P2[j][k]-want) > 1e-10 {
					return false
				}
				if wm.P2[j][k] != wm.P2[k][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCovarianceOfIndependentBitsIsZero(t *testing.T) {
	// Product distribution: bits independent ⇒ covariance ≈ 0.
	const nu = 6
	r := rng.New(3)
	probs := make([]float64, nu)
	for k := range probs {
		probs[k] = r.Float64()
	}
	x := make([]float64, 1<<nu)
	for i := range x {
		p := 1.0
		for k := 0; k < nu; k++ {
			if uint64(i)&(1<<uint(k)) != 0 {
				p *= probs[k]
			} else {
				p *= 1 - probs[k]
			}
		}
		x[i] = p
	}
	wm, err := WalshMoments(x)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < nu; j++ {
		for k := j + 1; k < nu; k++ {
			if c := wm.Covariance(j, k); math.Abs(c) > 1e-12 {
				t.Errorf("Cov(%d,%d) = %g for independent bits", j, k, c)
			}
		}
	}
}

func TestQuasispeciesMarginalsAreSymmetricOnSinglePeak(t *testing.T) {
	// On the single-peak landscape all positions are exchangeable, so all
	// marginals coincide, and below threshold they are ≪ ½.
	const nu = 10
	q := mutation.MustUniform(nu, 0.01)
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	op, _ := core.NewFmmpOperator(q, l, core.Right, nil)
	res, err := core.PowerIteration(op, core.PowerOptions{Tol: 1e-12, Start: core.FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	x := res.Vector
	if err := core.Concentrations(x); err != nil {
		t.Fatal(err)
	}
	m, err := Marginals(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < nu; k++ {
		if math.Abs(m[k]-m[0]) > 1e-9 {
			t.Errorf("marginal[%d] = %g differs from marginal[0] = %g", k, m[k], m[0])
		}
	}
	if m[0] > 0.1 {
		t.Errorf("below threshold each position should rarely be mutated; P = %g", m[0])
	}
	cons, err := ConsensusSequence(x)
	if err != nil {
		t.Fatal(err)
	}
	if cons != 0 {
		t.Errorf("consensus %b, want the master sequence", cons)
	}
}

func TestTopK(t *testing.T) {
	x := []float64{0.1, 0.5, 0.2, 0.2}
	top := TopK(x, 2)
	if len(top) != 2 || top[0].Sequence != 1 || top[0].Concentration != 0.5 {
		t.Errorf("top = %v", top)
	}
	// Tie at 0.2: lower index first.
	if top[1].Sequence != 2 {
		t.Errorf("tie broken wrongly: %v", top)
	}
	if len(TopK(x, 0)) != 0 {
		t.Error("k = 0 must return nothing")
	}
	if len(TopK(x, 10)) != 4 {
		t.Error("k > N must clamp")
	}
}

func TestTopKMatchesFullSort(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 << (1 + r.Uint64n(9))
		x := randDistribution(r, n)
		k := 1 + int(r.Uint64n(10))
		top := TopK(x, k)
		if k > n {
			k = n
		}
		if len(top) != k {
			return false
		}
		// Verify descending order and that no excluded value beats the
		// smallest included one.
		for i := 1; i < len(top); i++ {
			if top[i].Concentration > top[i-1].Concentration {
				return false
			}
		}
		included := map[uint64]bool{}
		for _, e := range top {
			included[e.Sequence] = true
		}
		floor := top[len(top)-1].Concentration
		for i, v := range x {
			if !included[uint64(i)] && v > floor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMarginalsOfErrorClasses(t *testing.T) {
	// Sanity link to the Γ machinery: Σ_k marginal_k = expected number of
	// mutations = Σ_d d·[Γd].
	const nu = 8
	r := rng.New(5)
	x := randDistribution(r, 1<<nu)
	m, _ := Marginals(x)
	var lhs float64
	for _, p := range m {
		lhs += p
	}
	gamma, err := core.ClassConcentrations(nu, x)
	if err != nil {
		t.Fatal(err)
	}
	var rhs float64
	for d, g := range gamma {
		rhs += float64(d) * g
	}
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Errorf("Σ marginals = %g, Σ d·[Γd] = %g", lhs, rhs)
	}
	_ = bits.Weight(0) // anchor: error classes and marginals share the bits substrate
}
