package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", ""); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}

	gf := r.GaugeFloat("gf", "a float gauge")
	gf.Set(2.5)
	if got := gf.Value(); got != 2.5 {
		t.Fatalf("float gauge = %g, want 2.5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative buckets: ≤0.01 → 1, ≤0.1 → 3, ≤1 → 4, +Inf → 5.
	for _, line := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 3`,
		`h_seconds_bucket{le="1"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

// TestPrometheusExpositionConformance pins the exposition details scrapers
// depend on: the +Inf bucket equals _count exactly, bucket counts are
// cumulative (monotonically non-decreasing down the ladder), and per-series
// lines for a labeled histogram carry the label on every _bucket/_sum/_count.
func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_seconds{op="solve"}`, "latency", []float64{0.25, 0.5})
	for _, v := range []float64{0.1, 0.3, 0.3, 0.7, 9} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`lat_seconds_bucket{op="solve",le="0.25"} 1`,
		`lat_seconds_bucket{op="solve",le="0.5"} 3`,
		`lat_seconds_bucket{op="solve",le="+Inf"} 5`,
		`lat_seconds_sum{op="solve"} 10.4`,
		`lat_seconds_count{op="solve"} 5`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// Cumulative monotonicity + +Inf == _count, parsed rather than pinned.
	var counts []int64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "lat_seconds_bucket") {
			var n int64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n); err != nil {
				t.Fatalf("unparseable bucket line %q", line)
			}
			counts = append(counts, n)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("bucket lines = %d, want 3", len(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != h.Count() {
		t.Fatalf("+Inf bucket = %d, _count = %d", counts[len(counts)-1], h.Count())
	}
}

func TestHistogramObserveGuards(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("g_seconds", "", []float64{1})
	h.Observe(0.5)
	h.Observe(math.NaN()) // dropped: would poison the sum forever
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Fatalf("after NaN observe: count=%d sum=%g, want 1, 0.5", h.Count(), h.Sum())
	}
	// A start time in the future (clock stepped back) clamps to zero.
	h.ObserveSince(time.Now().Add(time.Hour))
	if h.Count() != 2 || h.Sum() != 0.5 {
		t.Fatalf("after future ObserveSince: count=%d sum=%g, want 2, 0.5", h.Count(), h.Sum())
	}
	// -Inf and +Inf still land in buckets without breaking cumulative order.
	h.Observe(math.Inf(1))
	if h.Count() != 3 {
		t.Fatalf("count after +Inf observe = %d, want 3", h.Count())
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`pa"th`, `pa\"th`},
		{`a\b`, `a\\b`},
		{"two\nlines", `two\nlines`},
		{`all"three` + "\n" + `\`, `all\"three\n\\`},
	} {
		if got := EscapeLabel(tc.in); got != tc.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Round trip through the exposition writer: the escaped value yields a
	// line a conformant parser reads back as the original string.
	r := NewRegistry()
	r.Counter(`files_total{path="`+EscapeLabel(`C:\a "b"`)+`"}`, "").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `files_total{path="C:\\a \"b\""} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}

func TestWritePrometheusFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter(`apples_total{kind="red"}`, "apples by kind").Add(3)
	r.Counter(`apples_total{kind="green"}`, "apples by kind").Add(2)
	r.Gauge("depth", "queue depth").Set(9)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, "# TYPE apples_total counter"); got != 1 {
		t.Errorf("TYPE header for family emitted %d times, want 1:\n%s", got, out)
	}
	for _, line := range []string{
		`apples_total{kind="green"} 2`,
		`apples_total{kind="red"} 3`,
		"# HELP apples_total apples by kind",
		"# TYPE depth gauge",
		"depth 9",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("n_total", "").Add(11)
	r.Histogram("d_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if got := snap["n_total"]; got != int64(11) {
		t.Fatalf("snapshot n_total = %v, want 11", got)
	}
	hm, ok := snap["d_seconds"].(map[string]any)
	if !ok || hm["count"] != int64(1) || hm["sum"] != 0.5 {
		t.Fatalf("snapshot histogram = %v", snap["d_seconds"])
	}
}

// TestConcurrentMetricUpdates exercises the lock-free update paths under
// the race detector (CI runs this package with -race).
func TestConcurrentMetricUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", SecondsBuckets())
	gf := r.GaugeFloat("conc_last", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				gf.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestSecondsBucketsShape(t *testing.T) {
	b := SecondsBuckets()
	if len(b) == 0 || b[0] != 1e-6 {
		t.Fatalf("buckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending: %v", b)
		}
	}
}
