package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
)

// Resource introspection for the telemetry sampler: Go runtime state via
// runtime/metrics plus Linux procfs memory/NUMA files. Mirrors the
// internal/hwc degradation contract — every failure mode (non-Linux host,
// missing or unreadable /proc file, kernel without smaps_rollup) collapses
// to a status with Available == false and ONE human-readable Reason, and
// callers never branch on platform. The parsers take raw file contents so
// they are fixture-testable on every OS.

// MemStatus is one read of the process' memory placement: current and peak
// RSS from /proc/self/status, transparent-huge-page adoption from
// /proc/self/smaps_rollup.
type MemStatus struct {
	Available bool   `json:"available"`
	Reason    string `json:"reason,omitempty"`
	// RSSBytes and PeakRSSBytes are VmRSS / VmHWM.
	RSSBytes     int64 `json:"rss_bytes,omitempty"`
	PeakRSSBytes int64 `json:"rss_peak_bytes,omitempty"`
	// AnonHugeBytes is the RSS currently backed by transparent huge pages
	// (AnonHugePages), the adoption signal for the MADV_HUGEPAGE vectors.
	AnonHugeBytes int64 `json:"anon_huge_bytes,omitempty"`
	// HugeRatio is AnonHugeBytes / RSSBytes (0 when RSS is 0).
	HugeRatio float64 `json:"huge_ratio,omitempty"`
}

// NUMAStatus is one read of /proc/self/numa_maps: how the process' pages
// are placed across NUMA nodes — the verification signal for first-touch
// arena placement.
type NUMAStatus struct {
	Available bool   `json:"available"`
	Reason    string `json:"reason,omitempty"`
	// NodeBytes maps NUMA node id → resident bytes placed on it.
	NodeBytes map[int]int64 `json:"node_bytes,omitempty"`
	// TotalBytes is the sum over nodes; HugeBytes the share of it in
	// mappings flagged huge.
	TotalBytes int64 `json:"total_bytes,omitempty"`
	HugeBytes  int64 `json:"huge_bytes,omitempty"`
}

// procSelfDir is the procfs directory the collectors read; tests point it
// at fixture trees.
const procSelfDir = "/proc/self"

// ReadMemStatus reads the live process memory status. Non-Linux hosts and
// unreadable files degrade to Available == false with one reason.
func ReadMemStatus() MemStatus {
	if runtime.GOOS != "linux" {
		return MemStatus{Reason: "memory introspection requires Linux procfs (GOOS=" + runtime.GOOS + ")"}
	}
	return readMemStatusFrom(procSelfDir)
}

func readMemStatusFrom(dir string) MemStatus {
	status, err := os.ReadFile(dir + "/status")
	if err != nil {
		return MemStatus{Reason: fmt.Sprintf("reading %s/status: %v", dir, err)}
	}
	rss, peak, err := ParseProcStatus(status)
	if err != nil {
		return MemStatus{Reason: fmt.Sprintf("parsing %s/status: %v", dir, err)}
	}
	m := MemStatus{Available: true, RSSBytes: rss, PeakRSSBytes: peak}
	// smaps_rollup needs a newer kernel (4.14+) and may be denied under
	// hardened hidepid setups; losing it only costs the huge-page columns.
	if rollup, err := os.ReadFile(dir + "/smaps_rollup"); err == nil {
		if sm, perr := ParseSMapsRollup(rollup); perr == nil {
			m.AnonHugeBytes = sm.AnonHugeBytes
			if m.RSSBytes > 0 {
				m.HugeRatio = float64(sm.AnonHugeBytes) / float64(m.RSSBytes)
			}
		}
	}
	return m
}

// ReadNUMAStatus reads the live process NUMA placement.
func ReadNUMAStatus() NUMAStatus {
	if runtime.GOOS != "linux" {
		return NUMAStatus{Reason: "NUMA introspection requires Linux procfs (GOOS=" + runtime.GOOS + ")"}
	}
	return readNUMAStatusFrom(procSelfDir)
}

func readNUMAStatusFrom(dir string) NUMAStatus {
	raw, err := os.ReadFile(dir + "/numa_maps")
	if err != nil {
		return NUMAStatus{Reason: fmt.Sprintf("reading %s/numa_maps: %v", dir, err)}
	}
	st := ParseNUMAMaps(raw)
	return st
}

// SMapsRollup is the parsed subset of /proc/self/smaps_rollup the solver
// cares about, in bytes.
type SMapsRollup struct {
	RSSBytes      int64
	PSSBytes      int64
	AnonBytes     int64
	AnonHugeBytes int64
}

// ParseSMapsRollup parses smaps_rollup contents: "Field:   1234 kB" lines
// after a header line. Unrecognized or truncated lines are skipped; it is
// an error only when no recognized field parses at all (an empty or
// foreign file).
func ParseSMapsRollup(data []byte) (SMapsRollup, error) {
	var out SMapsRollup
	found := false
	for _, line := range strings.Split(string(data), "\n") {
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		var dst *int64
		switch strings.TrimSpace(name) {
		case "Rss":
			dst = &out.RSSBytes
		case "Pss":
			dst = &out.PSSBytes
		case "Anonymous":
			dst = &out.AnonBytes
		case "AnonHugePages":
			dst = &out.AnonHugeBytes
		default:
			continue
		}
		v, ok := parseKB(rest)
		if !ok {
			continue // truncated mid-line: keep what already parsed
		}
		*dst = v
		found = true
	}
	if !found {
		return SMapsRollup{}, fmt.Errorf("no recognized smaps_rollup fields in %d bytes", len(data))
	}
	return out, nil
}

// ParseProcStatus extracts VmRSS and VmHWM (bytes) from /proc/self/status
// contents. VmHWM may be absent on exotic kernels; then peak reports as
// rss. Missing VmRSS is an error — without it there is nothing to report.
func ParseProcStatus(data []byte) (rss, peak int64, err error) {
	rss, peak = -1, -1
	for _, line := range strings.Split(string(data), "\n") {
		name, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		switch strings.TrimSpace(name) {
		case "VmRSS":
			if v, ok := parseKB(rest); ok {
				rss = v
			}
		case "VmHWM":
			if v, ok := parseKB(rest); ok {
				peak = v
			}
		}
	}
	if rss < 0 {
		return 0, 0, fmt.Errorf("no VmRSS field in %d bytes", len(data))
	}
	if peak < rss {
		peak = rss
	}
	return rss, peak, nil
}

// parseKB parses the value part of a "   1234 kB" procfs field into bytes.
func parseKB(s string) (int64, bool) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	if len(fields) > 1 && fields[1] != "kB" {
		return 0, false
	}
	return v * 1024, true
}

// ParseNUMAMaps aggregates numa_maps contents: one line per mapping of the
// form "addr policy tok=val tok ...", where N<node>=<pages> tokens carry
// the per-node page counts and kernelpagesize_kB the page size of the
// mapping. Malformed lines are skipped; an input with no parsable mapping
// reports Available == false rather than zeros masquerading as data.
func ParseNUMAMaps(data []byte) NUMAStatus {
	st := NUMAStatus{NodeBytes: map[int]int64{}}
	parsed := 0
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		pageBytes := int64(4096)
		huge := false
		type nodePages struct {
			node  int
			pages int64
		}
		var nodes []nodePages
		lineOK := false
		for _, tok := range fields[1:] {
			if tok == "huge" {
				huge = true
				continue
			}
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				continue
			}
			switch {
			case key == "kernelpagesize_kB":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil && v > 0 {
					pageBytes = v * 1024
				}
			case len(key) > 1 && key[0] == 'N':
				node, err1 := strconv.Atoi(key[1:])
				pages, err2 := strconv.ParseInt(val, 10, 64)
				if err1 != nil || err2 != nil || node < 0 || pages < 0 {
					continue
				}
				nodes = append(nodes, nodePages{node, pages})
				lineOK = true
			}
		}
		if !lineOK {
			continue
		}
		parsed++
		for _, np := range nodes {
			b := np.pages * pageBytes
			st.NodeBytes[np.node] += b
			st.TotalBytes += b
			if huge {
				st.HugeBytes += b
			}
		}
	}
	if parsed == 0 {
		return NUMAStatus{Reason: fmt.Sprintf("no parsable mappings in %d bytes of numa_maps", len(data))}
	}
	st.Available = true
	return st
}

// runtimeSampler reads the Go runtime state the sampler publishes, via
// runtime/metrics (no stop-the-world, no allocation after construction).
type runtimeSampler struct {
	samples []metrics.Sample
}

const (
	rmHeap       = "/memory/classes/heap/objects:bytes"
	rmTotal      = "/memory/classes/total:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
)

func newRuntimeSampler() *runtimeSampler {
	names := []string{rmHeap, rmTotal, rmGoroutines, rmGCCycles, rmGCPauses}
	rs := &runtimeSampler{samples: make([]metrics.Sample, len(names))}
	for i, n := range names {
		rs.samples[i].Name = n
	}
	return rs
}

// RuntimeStatus is one read of the Go runtime's own resource state.
type RuntimeStatus struct {
	HeapBytes         int64   `json:"heap_bytes"`
	RuntimeTotalBytes int64   `json:"runtime_total_bytes"`
	Goroutines        int64   `json:"goroutines"`
	GCCycles          int64   `json:"gc_cycles"`
	GCPauseTotal      float64 `json:"gc_pause_total_seconds"`
}

func (rs *runtimeSampler) read() RuntimeStatus {
	metrics.Read(rs.samples)
	var st RuntimeStatus
	for _, s := range rs.samples {
		switch s.Name {
		case rmHeap:
			if s.Value.Kind() == metrics.KindUint64 {
				st.HeapBytes = int64(s.Value.Uint64())
			}
		case rmTotal:
			if s.Value.Kind() == metrics.KindUint64 {
				st.RuntimeTotalBytes = int64(s.Value.Uint64())
			}
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				st.Goroutines = int64(s.Value.Uint64())
			}
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				st.GCCycles = int64(s.Value.Uint64())
			}
		case rmGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				st.GCPauseTotal = histogramApproxSum(s.Value.Float64Histogram())
			}
		}
	}
	return st
}

// histogramApproxSum estimates Σ values of a runtime/metrics histogram as
// Σ count·bucket-midpoint — exact enough for a monotone cumulative pause
// series whose windowed rate is what the dashboard plots.
func histogramApproxSum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	sum := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		switch {
		case hi > 1e308 && lo > 0: // [lo, +Inf): take the finite bound
			sum += float64(c) * lo
		case hi > 1e308: // degenerate (-Inf, +Inf): nothing sane to add
		case lo < 0: // (-Inf, hi]: take the finite bound
			sum += float64(c) * hi
		default:
			sum += float64(c) * (lo + hi) / 2
		}
	}
	return sum
}
