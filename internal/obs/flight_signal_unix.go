//go:build unix

package obs

import (
	"os"
	"os/signal"
	"syscall"
)

// watchSignals dumps a diagnostic bundle on SIGUSR1 and SIGQUIT — the
// operator's "what is this run doing right now?" lever for a process that
// is still alive but suspect. While the flight is active the signals are
// intercepted (the process keeps running, unlike the default SIGQUIT
// core-dump exit); Stop restores the default dispositions.
func (f *FlightRecorder) watchSignals() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGUSR1, syscall.SIGQUIT)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer signal.Stop(ch)
		for {
			select {
			case <-f.stopCh:
				return
			case s := <-ch:
				_, _ = f.DumpBundle("signal", map[string]any{"signal": s.String()})
			}
		}
	}()
}
