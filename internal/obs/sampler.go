package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// The resource sampler is the background goroutine that feeds the telemetry
// rings (timeseries.go): once per period it polls procfs (resource.go), the
// Go runtime, the always-on device/batch counters (wire.go) and a few qs_*
// registry families, appends one point per series, and refreshes the
// pull-based resource gauges. Like every other hook it is nil by default —
// nothing samples until StartResourceSampler is called — and it never
// touches a solver hot path: everything it reads is either procfs or an
// atomic the solver already maintains, so a running sweep is bit-identical
// and allocation-free with the sampler on or off.

// SamplerConfig configures StartResourceSampler. The zero value selects a
// 1 s period and 600 retained points per series (10 minutes at 1 Hz).
type SamplerConfig struct {
	// Period is the sampling interval (minimum 10 ms enforced).
	Period time.Duration
	// Capacity is the per-series ring size.
	Capacity int
}

const (
	defaultSamplerPeriod   = time.Second
	defaultSamplerCapacity = 600
	// numaEvery spaces out /proc/self/numa_maps reads: the kernel walks the
	// whole address space under mmap_sem to produce it, so once every 5
	// ticks is plenty for a placement signal that changes slowly.
	numaEvery = 5
)

// SamplerState is the most recent tick's raw reads, published atomically
// for /debug/telemetry and /healthz.
type SamplerState struct {
	TickUnixNS int64           `json:"tick_unix_ns"`
	Mem        MemStatus       `json:"mem"`
	NUMA       NUMAStatus      `json:"numa"`
	Runtime    RuntimeStatus   `json:"runtime"`
	Solver     SolverResources `json:"solver"`
}

// Sampler owns the telemetry series and the goroutine that feeds them.
type Sampler struct {
	period  time.Duration
	started time.Time
	cap     int

	rs   *runtimeSampler
	set  seriesSet
	last atomic.Pointer[SamplerState]

	stop chan struct{}
	done chan struct{}

	// Fixed series (writer-side handles; readers go through set).
	sRSS, sPeak, sHuge           *TimeSeries
	sHeap, sGoroutines, sGCPause *TimeSeries
	sPoints, sIters, sResidual   *TimeSeries
	sInflight, sDone             *TimeSeries
	sArenaUsed, sArenaHi         *TimeSeries
	sQueue, sSteals              *TimeSeries
	numaSeries                   map[int]*TimeSeries // sampler-goroutine only
}

// activeSampler is the process-wide sampler, nil until StartResourceSampler.
var activeSampler atomic.Pointer[Sampler]

// ActiveSampler returns the running process-wide sampler, or nil when
// telemetry was never started — the hook every exposition path checks.
func ActiveSampler() *Sampler { return activeSampler.Load() }

// StartResourceSampler starts the process-wide resource sampler (calling
// EnableSolverMetrics first, so the gauges it refreshes exist). Idempotent:
// a second call returns the already-running sampler unchanged.
func StartResourceSampler(cfg SamplerConfig) *Sampler {
	if s := activeSampler.Load(); s != nil {
		return s
	}
	EnableSolverMetrics()
	s := newSampler(cfg)
	if !activeSampler.CompareAndSwap(nil, s) {
		return activeSampler.Load()
	}
	go s.run()
	return s
}

func newSampler(cfg SamplerConfig) *Sampler {
	period := cfg.Period
	if period <= 0 {
		period = defaultSamplerPeriod
	}
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = defaultSamplerCapacity
	}
	s := &Sampler{
		period:     period,
		started:    time.Now(),
		cap:        capacity,
		rs:         newRuntimeSampler(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		numaSeries: map[int]*TimeSeries{},
	}
	add := func(name, unit string, kind SeriesKind) *TimeSeries {
		ts := NewTimeSeries(name, unit, kind, capacity)
		s.set.add(ts)
		return ts
	}
	s.sRSS = add("mem.rss_bytes", "bytes", SeriesGauge)
	s.sPeak = add("mem.rss_peak_bytes", "bytes", SeriesGauge)
	s.sHuge = add("mem.anon_huge_bytes", "bytes", SeriesGauge)
	s.sHeap = add("runtime.heap_bytes", "bytes", SeriesGauge)
	s.sGoroutines = add("runtime.goroutines", "1", SeriesGauge)
	s.sGCPause = add("runtime.gc_pause_seconds", "s", SeriesCumulative)
	s.sPoints = add("sweep.points_total", "1", SeriesCumulative)
	s.sIters = add("sweep.iterations_total", "1", SeriesCumulative)
	s.sResidual = add("power.last_residual", "1", SeriesGauge)
	s.sInflight = add("batch.inflight", "1", SeriesGauge)
	s.sDone = add("batch.done_total", "1", SeriesCumulative)
	s.sArenaUsed = add("arena.used_floats", "float64s", SeriesGauge)
	s.sArenaHi = add("arena.highwater_floats", "float64s", SeriesGauge)
	s.sQueue = add("pool.queue_depth", "1", SeriesGauge)
	s.sSteals = add("pool.steals_total", "1", SeriesCumulative)
	return s
}

// run ticks until Stop. The first tick is immediate so short-lived tools
// (qs-top -once against a fresh process, CI smokes) see data right away.
func (s *Sampler) run() {
	defer close(s.done)
	tick := time.NewTicker(s.period)
	defer tick.Stop()
	for k := 0; ; k++ {
		s.tick(k)
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
	}
}

// Stop halts the sampling goroutine and waits for it to exit. The series
// remain readable (a stopped sampler just goes stale); the process-wide
// slot stays claimed, matching the one-sampler-per-process model.
func (s *Sampler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// tick performs one sampling round: read everything, append one point per
// series, refresh the pull-based gauges, publish the raw state.
func (s *Sampler) tick(k int) {
	now := time.Now()
	mem := ReadMemStatus()
	rt := s.rs.read()
	res := ReadSolverResources()

	var numa *NUMAStatus
	if k%numaEvery == 0 {
		n := ReadNUMAStatus()
		numa = &n
	}

	if mem.Available {
		s.sRSS.Append(now, float64(mem.RSSBytes))
		s.sPeak.Append(now, float64(mem.PeakRSSBytes))
		s.sHuge.Append(now, float64(mem.AnonHugeBytes))
	}
	s.sHeap.Append(now, float64(rt.HeapBytes))
	s.sGoroutines.Append(now, float64(rt.Goroutines))
	s.sGCPause.Append(now, rt.GCPauseTotal)

	r := Default()
	if v, ok := r.Value("qs_sweep_points_total"); ok {
		s.sPoints.Append(now, v)
	}
	if v, ok := r.Value("qs_sweep_iterations_total"); ok {
		s.sIters.Append(now, v)
	}
	if v, ok := r.Value("qs_power_last_residual"); ok {
		s.sResidual.Append(now, v)
	}

	s.sInflight.Append(now, float64(res.BatchInflight))
	s.sDone.Append(now, float64(res.BatchDone))
	var used, hi int64
	for _, a := range res.Arenas {
		used += a.UsedFloats
		if a.HighWaterFloats > hi {
			hi = a.HighWaterFloats
		}
	}
	s.sArenaUsed.Append(now, float64(used))
	s.sArenaHi.Append(now, float64(hi))
	s.sQueue.Append(now, float64(res.PoolQueueDepth))
	s.sSteals.Append(now, float64(res.PoolStolen))

	if numa != nil && numa.Available {
		for node, b := range numa.NodeBytes {
			ts, ok := s.numaSeries[node]
			if !ok {
				ts = NewTimeSeries(fmt.Sprintf("numa.node%d_bytes", node), "bytes", SeriesGauge, s.cap)
				s.numaSeries[node] = ts
				s.set.add(ts)
			}
			ts.Append(now, float64(b))
		}
	}

	UpdateResourceGauges(mem, rt, numa, res)

	st := &SamplerState{TickUnixNS: now.UnixNano(), Mem: mem, Runtime: rt, Solver: res}
	if numa != nil {
		st.NUMA = *numa
	} else if prev := s.last.Load(); prev != nil {
		st.NUMA = prev.NUMA // carry the last placement read between NUMA ticks
	}
	s.last.Store(st)
}

// Period returns the sampling interval.
func (s *Sampler) Period() time.Duration { return s.period }

// Started returns when the sampler was created.
func (s *Sampler) Started() time.Time { return s.started }

// State returns the most recent tick's raw reads (nil before the first
// tick completes).
func (s *Sampler) State() *SamplerState { return s.last.Load() }

// Series returns every series in registration order (fixed series first,
// then lazily discovered per-NUMA-node series).
func (s *Sampler) Series() []*TimeSeries { return s.set.all() }

// Get returns the named series, or nil.
func (s *Sampler) Get(name string) *TimeSeries { return s.set.get(name) }

// Notice returns the single degradation line tools print when part of the
// telemetry is unavailable ("" when everything works). Only procfs-backed
// collectors can degrade; runtime and solver series work on every OS.
func (s *Sampler) Notice() string {
	st := s.last.Load()
	if st == nil {
		return ""
	}
	if !st.Mem.Available {
		return fmt.Sprintf("resource telemetry degraded: %s; runtime and solver series still active", st.Mem.Reason)
	}
	if !st.NUMA.Available && st.NUMA.Reason != "" {
		return fmt.Sprintf("NUMA telemetry unavailable: %s; memory and solver series still active", st.NUMA.Reason)
	}
	return ""
}

// WriteJSONL exports the retained points of every series as JSONL — the
// flight-bundle and CI artifact format.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	return WriteSeriesJSONL(w, s.Series())
}
