package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/span"
)

// Chrome trace-event export of a span recording: one complete ("X") event
// per buffered span, timestamps/durations in microseconds relative to the
// profiler epoch, the recording goroutine as the track (tid). The output
// loads directly in chrome://tracing and in Perfetto (ui.perfetto.dev →
// "Open trace file"); nesting is reconstructed from the containment of
// the events on each track, which holds by construction because nested
// spans open and close on one goroutine.

// chromeEvent is one trace event in the Trace Event Format (the JSON
// object format with a traceEvents array).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// spanArgNames maps a span site to the meaning of its two End arguments,
// so exported traces carry named args instead of a1/a2.
func spanArgNames(layer, name string) (string, string) {
	switch layer {
	case span.LayerFacade:
		return "dim", ""
	case span.LayerMutation:
		return "stages", "vectors"
	case span.LayerDevice:
		if name == "queue_wait" {
			return "chunks", ""
		}
		return "grid", "chunks"
	case span.LayerBatch:
		if name == "run" {
			return "tasks", "workers"
		}
		return "slot", "task"
	case span.LayerCore:
		switch name {
		case "power", "block_power":
			return "dim", "iters"
		}
		return "iter", ""
	}
	return "a1", "a2"
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace renders the buffered span events as Chrome trace-event
// JSON. Events dropped past the buffer bound are noted in otherData
// (the aggregate Stats stay exact regardless).
func (p *SpanProfiler) WriteChromeTrace(w io.Writer) error {
	rows := p.Rows()
	events := make([]chromeEvent, 0, len(rows))
	for _, r := range rows {
		ev := chromeEvent{
			Name: r.Name, Cat: r.Layer, Ph: "X",
			TS: usec(r.Start), Dur: usec(r.Dur),
			PID: 1, TID: r.TID,
		}
		if r.A1 != 0 || r.A2 != 0 {
			n1, n2 := spanArgNames(r.Layer, r.Name)
			ev.Args = map[string]any{}
			if n1 != "" {
				ev.Args[n1] = r.A1
			}
			if n2 != "" && r.A2 != 0 {
				ev.Args[n2] = r.A2
			}
		}
		events = append(events, ev)
	}
	tr := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"wall_us": usec(p.Wall()),
		},
	}
	if d := p.Dropped(); d > 0 {
		tr.OtherData["dropped_events"] = d
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tr); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace-event JSON to path.
func (p *SpanProfiler) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = p.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTable renders the per-site aggregate as an aligned text table,
// sorted by total time descending, with a wall-time footer. Self is each
// site's own share (total minus nested children); the self column of the
// leaf-most layers sums to the instrumented share of wall time.
func (p *SpanProfiler) WriteTable(w io.Writer) error {
	stats := p.Stats()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-9s %-20s %10s %14s %14s %12s\n",
		"layer", "span", "count", "total", "self", "avg")
	for _, s := range stats {
		avg := time.Duration(0)
		if s.Count > 0 {
			avg = s.Total / time.Duration(s.Count)
		}
		fmt.Fprintf(bw, "%-9s %-20s %10d %14s %14s %12s\n",
			s.Layer, s.Name, s.Count,
			fmtDur(s.Total), fmtDur(s.Self), fmtDur(avg))
	}
	fmt.Fprintf(bw, "wall %s", fmtDur(p.Wall()))
	if d := p.Dropped(); d > 0 {
		fmt.Fprintf(bw, "   (%d span events dropped past the %d-event buffer; aggregates exact)", d, p.maxRows)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// fmtDur rounds a duration for table display without losing short spans.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
