package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/hwc"
	"repro/internal/span"
)

// Chrome trace-event export of a span recording: one complete ("X") event
// per buffered span, timestamps/durations in microseconds relative to the
// profiler epoch, the recording goroutine as the track (tid). The output
// loads directly in chrome://tracing and in Perfetto (ui.perfetto.dev →
// "Open trace file"); nesting is reconstructed from the containment of
// the events on each track, which holds by construction because nested
// spans open and close on one goroutine.

// chromeEvent is one trace event in the Trace Event Format (the JSON
// object format with a traceEvents array).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// spanArgNames maps a span site to the meaning of its two End arguments,
// so exported traces carry named args instead of a1/a2.
func spanArgNames(layer, name string) (string, string) {
	switch layer {
	case span.LayerFacade:
		return "dim", ""
	case span.LayerMutation:
		return "stages", "vectors"
	case span.LayerDevice:
		if name == "queue_wait" {
			return "chunks", ""
		}
		return "grid", "chunks"
	case span.LayerBatch:
		if name == "run" {
			return "tasks", "workers"
		}
		return "slot", "task"
	case span.LayerCore:
		switch name {
		case "power", "block_power":
			return "dim", "iters"
		}
		return "iter", ""
	}
	return "a1", "a2"
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace renders the buffered span events as Chrome trace-event
// JSON. Events dropped past the buffer bound are noted in otherData
// (the aggregate Stats stay exact regardless).
func (p *SpanProfiler) WriteChromeTrace(w io.Writer) error {
	p.mu.Lock()
	rows := make([]SpanRow, len(p.rows))
	copy(rows, p.rows)
	var hwrows []hwcSample
	if p.hw != nil {
		hwrows = make([]hwcSample, len(p.hwrows))
		copy(hwrows, p.hwrows)
	}
	p.mu.Unlock()
	names := p.hwNames()
	events := make([]chromeEvent, 0, len(rows))
	for i, r := range rows {
		ev := chromeEvent{
			Name: r.Name, Cat: r.Layer, Ph: "X",
			TS: usec(r.Start), Dur: usec(r.Dur),
			PID: 1, TID: r.TID,
		}
		if r.A1 != 0 || r.A2 != 0 {
			n1, n2 := spanArgNames(r.Layer, r.Name)
			ev.Args = map[string]any{}
			if n1 != "" {
				ev.Args[n1] = r.A1
			}
			if n2 != "" && r.A2 != 0 {
				ev.Args[n2] = r.A2
			}
		}
		if i < len(hwrows) && hwrows[i].valid {
			if ev.Args == nil {
				ev.Args = map[string]any{}
			}
			for j, name := range names {
				ev.Args[name] = int64(hwrows[i].v[j])
			}
			if cycles := hwrows[i].v[hwc.IdxCycles]; cycles > 0 {
				ipc := hwrows[i].v[hwc.IdxInstructions] / cycles
				ev.Args["ipc"] = float64(int64(ipc*100)) / 100
			}
		}
		events = append(events, ev)
	}
	tr := chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"wall_us": usec(p.Wall()),
		},
	}
	if id := p.RunID(); id != "" {
		tr.OtherData["run_id"] = id
	}
	if d := p.Dropped(); d > 0 {
		tr.OtherData["dropped_events"] = d
	}
	if p.HWCActive() {
		tr.OtherData["hwc_events"] = names
		tr.OtherData["hwc_samples"] = p.HWCSamples()
		if d := p.HWCDropped(); d > 0 {
			tr.OtherData["hwc_dropped"] = d
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tr); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace-event JSON to path.
func (p *SpanProfiler) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = p.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteTable renders the per-site aggregate as an aligned text table,
// sorted by total time descending, with a wall-time footer. Self is each
// site's own share (total minus nested children); the self column of the
// leaf-most layers sums to the instrumented share of wall time.
func (p *SpanProfiler) WriteTable(w io.Writer) error {
	stats := p.Stats()
	hw := p.HWCActive()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-9s %-20s %10s %14s %14s %12s",
		"layer", "span", "count", "total", "self", "avg")
	if hw {
		fmt.Fprintf(bw, " %6s %7s %12s %12s", "ipc", "miss%", "miss/op", "cyc/op")
	}
	fmt.Fprintln(bw)
	for _, s := range stats {
		avg := time.Duration(0)
		if s.Count > 0 {
			avg = s.Total / time.Duration(s.Count)
		}
		fmt.Fprintf(bw, "%-9s %-20s %10d %14s %14s %12s",
			s.Layer, s.Name, s.Count,
			fmtDur(s.Total), fmtDur(s.Self), fmtDur(avg))
		if hw {
			if s.HWCSamples > 0 {
				fmt.Fprintf(bw, " %6.2f %6.1f%% %12s %12s",
					s.IPC(), 100*s.CacheMissRate(),
					fmtCount(s.MissesPerOp()), fmtCount(s.CyclesPerOp()))
			} else {
				fmt.Fprintf(bw, " %6s %7s %12s %12s", "-", "-", "-", "-")
			}
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "wall %s", fmtDur(p.Wall()))
	if id := p.RunID(); id != "" {
		fmt.Fprintf(bw, "   run %s", id)
	}
	if d := p.Dropped(); d > 0 {
		fmt.Fprintf(bw, "   (%d span events dropped past the %d-event buffer; aggregates exact)", d, p.maxRows)
	}
	if hw {
		fmt.Fprintf(bw, "   hwc: %d spans attributed", p.HWCSamples())
		if d := p.HWCDropped(); d > 0 {
			fmt.Fprintf(bw, ", %d dropped (thread migration)", d)
		}
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// fmtCount renders a per-op counter magnitude compactly (1.2k, 3.4M).
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// fmtDur rounds a duration for table display without losing short spans.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
