package obs

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"

	rttrace "runtime/trace"

	"repro/internal/hwc"
	"repro/internal/span"
)

// Hierarchical span profiler: answers "where does the time go inside one
// solve?" by recording the nested span stream the solver layers emit
// through internal/span — batch task → eigensolve → iteration phase
// (matvec, shift, rayleigh, residual, normalize) → kernel pass → stage
// group → device launch / queue wait.
//
// Two products come out of one recording:
//
//   - an exact per-site aggregate (count, total time, self time = total
//     minus time attributed to nested child spans), maintained online so
//     it stays correct even when the event buffer fills, and
//   - a bounded buffer of individual span events exportable as Chrome
//     trace-event JSON (load the file in chrome://tracing or Perfetto).
//
// Self time is computed without post-processing: each goroutine's
// innermost open span is tracked, a closing span adds its duration to its
// parent's child-time accumulator, and the parent's self time is its
// duration minus that accumulator. Spans reported post hoc
// (Recorder.Record, e.g. the device queue-wait tail) are treated as leaf
// children of the goroutine's currently open span.
//
// When a Go execution trace is active (go test -trace, the /debug/pprof/
// trace endpoint, rttrace.Start), Begin additionally opens a
// runtime/trace region named "layer:name" under one profiler-wide task,
// so spans land in the execution-trace timeline next to the scheduler's
// own events; post-hoc spans become trace log messages.

// SpanRow is one recorded span event. Start is relative to the profiler's
// epoch; TID is the recording goroutine's id, the Chrome trace track.
type SpanRow struct {
	Layer string
	Name  string
	TID   int64
	Start time.Duration
	Dur   time.Duration
	A1    int64
	A2    int64
}

// SpanStat is the aggregate of one span site (layer, name).
type SpanStat struct {
	Layer string
	Name  string
	Count int64
	// Total is the summed wall time of all spans of the site.
	Total time.Duration
	// Self is Total minus the time spent in nested child spans — the
	// site's own share, the column that sums to wall time across sites.
	Self time.Duration

	// HWCSamples counts the spans of this site whose hardware-counter
	// deltas were attributed (0 when no counter session is attached or
	// every span migrated threads). HWC holds the per-event totals, in
	// session event order; nil without samples.
	HWCSamples int64
	HWC        []CounterStat
}

type spanKey struct{ layer, name string }

type spanAgg struct {
	count int64
	total time.Duration
	self  time.Duration
	hw    *hwcAgg // non-nil once the site has a valid counter sample
}

// DefaultMaxSpanEvents bounds the event buffer of a SpanProfiler:
// per-iteration phase spans of a long solve near the error threshold can
// run to millions, and the aggregate stays exact regardless, so the
// buffer trades completeness of the exported timeline for bounded memory.
const DefaultMaxSpanEvents = 1 << 20

// SpanProfiler records the solver's span stream. Create with
// StartSpanProfiler (which installs it as the process-wide recorder) or
// NewSpanProfiler + span.SetRecorder. Safe for concurrent use.
type SpanProfiler struct {
	epoch time.Time

	// hw is the attached hardware-counter session (AttachHWC), nil for a
	// wall-time-only profile. hwEvents caches its event names (Sample
	// order) and hwReason the degradation cause when attachment was
	// requested but counters are unavailable. All immutable once recording
	// starts.
	hw       *hwc.Session
	hwEvents []string
	hwReason string

	mu      sync.Mutex
	runID   string
	rows    []SpanRow
	maxRows int
	dropped int64
	cur     map[int64]*activeSpan // per-goroutine innermost open span
	stats   map[spanKey]*spanAgg
	stopped time.Duration // wall time frozen by Stop (0 while running)

	// hwrows holds each buffered row's counter deltas (index-aligned with
	// rows; only populated while hw is live). hwcSamples / hwcDropped
	// count spans whose deltas were attributed vs discarded (thread
	// migration, read failure).
	hwrows     []hwcSample
	hwcSamples int64
	hwcDropped int64

	ctx  context.Context // runtime/trace task context (nil without a trace)
	task *rttrace.Task
}

// NewSpanProfiler returns an idle profiler. maxEvents bounds the event
// buffer (≤ 0 selects DefaultMaxSpanEvents); the aggregate table is exact
// regardless of the bound.
func NewSpanProfiler(maxEvents int) *SpanProfiler {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxSpanEvents
	}
	p := &SpanProfiler{
		epoch:   time.Now(),
		maxRows: maxEvents,
		cur:     make(map[int64]*activeSpan),
		stats:   make(map[spanKey]*spanAgg),
	}
	// A profiler born during a flight belongs to that run: stamp the run ID
	// so later-installed profiles (per-rep -spans, qs-perf reps) still name
	// their manifest.
	if fl := ActiveFlight(); fl != nil {
		p.runID = fl.RunID()
	}
	if rttrace.IsEnabled() {
		p.ctx, p.task = rttrace.NewTask(context.Background(), "qs-spans")
	}
	return p
}

// StartSpanProfiler creates a profiler and installs it as the process-wide
// span recorder. Call Stop to uninstall and freeze it.
func StartSpanProfiler(maxEvents int) *SpanProfiler {
	p := NewSpanProfiler(maxEvents)
	span.SetRecorder(p)
	return p
}

// Stop uninstalls the profiler (if it is the installed recorder), ends its
// runtime/trace task and freezes the recording's wall time. Safe to call
// more than once; already-open spans may still End into the profiler
// afterwards and are accounted normally.
func (p *SpanProfiler) Stop() {
	if span.Installed() == span.Recorder(p) {
		span.SetRecorder(nil)
	}
	p.mu.Lock()
	if p.stopped == 0 {
		p.stopped = time.Since(p.epoch)
	}
	p.mu.Unlock()
	if p.task != nil {
		p.task.End()
		p.task = nil
	}
}

// Wall returns the recording's wall time: epoch to Stop, or to now while
// still running.
func (p *SpanProfiler) Wall() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped != 0 {
		return p.stopped
	}
	return time.Since(p.epoch)
}

// SetRunID stamps the profile with the run identity of its flight: the
// run ID appears in the Chrome trace's otherData, the text table footer,
// and the /debug/spans payload, so a profile artifact names the manifest
// it belongs to.
func (p *SpanProfiler) SetRunID(id string) {
	p.mu.Lock()
	p.runID = id
	p.mu.Unlock()
}

// RunID returns the stamped run identity ("" when none).
func (p *SpanProfiler) RunID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.runID
}

// Dropped returns how many span events exceeded the buffer bound (their
// aggregate contribution is still exact).
func (p *SpanProfiler) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

type activeSpan struct {
	p           *SpanProfiler
	layer, name string
	gid         int64
	start       time.Time
	parent      *activeSpan
	child       time.Duration // time attributed to nested children
	region      *rttrace.Region

	// Hardware-counter state (used only when the profiler has a live hwc
	// session): the group sample at Begin and the counter deltas already
	// attributed to nested children, mirroring the child time accumulator.
	hwBegin hwc.Sample
	hwOK    bool
	hwChild [hwc.MaxEvents]float64
}

// Begin implements span.Recorder.
func (p *SpanProfiler) Begin(layer, name string) span.Handle {
	a := &activeSpan{p: p, layer: layer, name: name, gid: goid(), start: time.Now()}
	if p.ctx != nil && rttrace.IsEnabled() {
		a.region = rttrace.StartRegion(p.ctx, layer+":"+name)
	}
	if p.hw != nil {
		// Counter reads are syscalls; keep them outside the mutex. Read
		// AFTER the timestamp so the window never includes the lock wait
		// of a sibling's End.
		a.hwOK = p.hw.ReadSelf(&a.hwBegin)
	}
	p.mu.Lock()
	a.parent = p.cur[a.gid]
	p.cur[a.gid] = a
	p.mu.Unlock()
	return a
}

// End implements span.Handle.
func (a *activeSpan) End(a1, a2 int64) {
	if a.region != nil {
		a.region.End()
	}
	p := a.p
	var hwDelta hwc.Sample
	hwValid := false
	if p.hw != nil && a.hwOK {
		hwValid = p.hw.ReadSelf(&hwDelta)
	}
	end := time.Now()
	d := end.Sub(a.start)
	var delta [hwc.MaxEvents]float64
	if hwValid {
		hwValid = hwc.Delta(&a.hwBegin, &hwDelta, &delta)
	}
	p.mu.Lock()
	if p.cur[a.gid] == a {
		if a.parent != nil {
			p.cur[a.gid] = a.parent
		} else {
			delete(p.cur, a.gid)
		}
	}
	if a.parent != nil {
		a.parent.child += d
	}
	self := d - a.child
	agg := p.account(a.layer, a.name, d, self)
	if p.hw != nil {
		if hwValid {
			p.hwcSamples++
			if a.parent != nil {
				for i := range delta {
					a.parent.hwChild[i] += delta[i]
				}
			}
			p.accountHW(agg, &delta, &a.hwChild)
		} else {
			// Migrated or unreadable: attributing another thread's
			// counters would be worse than a counted gap. The span's
			// counts stay inside the nearest same-thread ancestor's self.
			p.hwcDropped++
		}
	}
	p.push(SpanRow{
		Layer: a.layer, Name: a.name, TID: a.gid,
		Start: a.start.Sub(p.epoch), Dur: d, A1: a1, A2: a2,
	}, &delta, hwValid)
	p.mu.Unlock()
}

// Record implements span.Recorder: a completed leaf span of duration d
// ending now, charged as a child of the calling goroutine's open span.
func (p *SpanProfiler) Record(layer, name string, d time.Duration, a1, a2 int64) {
	if d < 0 {
		d = 0
	}
	end := time.Now()
	gid := goid()
	if p.ctx != nil && rttrace.IsEnabled() {
		rttrace.Log(p.ctx, layer, name)
	}
	p.mu.Lock()
	if open := p.cur[gid]; open != nil {
		open.child += d
	}
	p.account(layer, name, d, d)
	p.push(SpanRow{
		Layer: layer, Name: name, TID: gid,
		Start: end.Add(-d).Sub(p.epoch), Dur: d, A1: a1, A2: a2,
	}, nil, false)
	p.mu.Unlock()
}

// account and push run under p.mu.
func (p *SpanProfiler) account(layer, name string, total, self time.Duration) *spanAgg {
	k := spanKey{layer, name}
	agg := p.stats[k]
	if agg == nil {
		agg = &spanAgg{}
		p.stats[k] = agg
	}
	agg.count++
	agg.total += total
	agg.self += self
	return agg
}

func (p *SpanProfiler) push(r SpanRow, delta *[hwc.MaxEvents]float64, hwValid bool) {
	// Tee into the flight recorder's span ring before the buffer-bound
	// check: the ring overwrites its oldest entries, so it keeps the most
	// recent spans even after the profiler buffer filled. The disabled
	// cost is the one atomic load of ActiveFlight.
	if fl := ActiveFlight(); fl != nil {
		fl.noteSpan(r)
	}
	if len(p.rows) >= p.maxRows {
		p.dropped++
		return
	}
	p.rows = append(p.rows, r)
	if p.hw != nil {
		var hr hwcSample
		if hwValid {
			hr.valid = true
			hr.v = *delta
		}
		p.hwrows = append(p.hwrows, hr)
	}
}

// Rows returns a copy of the buffered span events in completion order.
func (p *SpanProfiler) Rows() []SpanRow {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SpanRow, len(p.rows))
	copy(out, p.rows)
	return out
}

// Stats returns the exact per-site aggregates, sorted by total time
// descending (ties by layer, name).
func (p *SpanProfiler) Stats() []SpanStat {
	p.mu.Lock()
	names := p.hwNames()
	out := make([]SpanStat, 0, len(p.stats))
	for k, a := range p.stats {
		st := SpanStat{
			Layer: k.layer, Name: k.name,
			Count: a.count, Total: a.total, Self: a.self,
		}
		if a.hw != nil {
			st.HWCSamples = a.hw.samples
			st.HWC = a.hw.counterStats(names)
		}
		out = append(out, st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		if out[i].Layer != out[j].Layer {
			return out[i].Layer < out[j].Layer
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// goid returns the current goroutine's id by parsing the first line of its
// stack ("goroutine 123 [running]:"). Only called while spans are enabled;
// the disabled path never reaches it.
func goid() int64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	var id int64
	for i := len("goroutine "); i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
