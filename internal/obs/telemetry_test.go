package obs

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestTelemetryEndpointLifecycle exercises /debug/telemetry across the whole
// sampler lifecycle in one test, because StartResourceSampler claims a
// process-wide slot that is never released: first the inactive responses
// (JSON active=false and the single text notice), then a live sampler at a
// fast period, asserting the acceptance bar — at least three distinct
// non-empty series — plus the text table and the point/window query knobs.
func TestTelemetryEndpointLifecycle(t *testing.T) {
	if ActiveSampler() != nil {
		t.Fatal("a sampler is already running; inactive half of this test needs a fresh process")
	}

	// Inactive, JSON: active=false with the notice, not an HTTP error.
	rec := httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	if rec.Code != 200 {
		t.Fatalf("inactive status = %d", rec.Code)
	}
	var inactive telemetryPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &inactive); err != nil {
		t.Fatal(err)
	}
	if inactive.Active || inactive.Notice != telemetryInactiveNotice {
		t.Fatalf("inactive payload = %+v", inactive)
	}
	if inactive.Series == nil {
		t.Fatal("inactive payload omits the series array")
	}

	// Inactive, text: exactly the one notice line.
	rec = httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry?format=text", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != telemetryInactiveNotice {
		t.Fatalf("inactive text = %q", got)
	}

	s := StartResourceSampler(SamplerConfig{Period: 20 * time.Millisecond, Capacity: 64})
	defer s.Stop()
	if StartResourceSampler(SamplerConfig{}) != s {
		t.Fatal("second StartResourceSampler did not return the running sampler")
	}

	// Wait for a few ticks so windowed aggregates have ≥ 2 points.
	deadline := time.Now().Add(5 * time.Second)
	for s.Get("runtime.heap_bytes").Len() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampler produced < 3 ticks in 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rec = httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry", nil))
	var p telemetryPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Active || p.PeriodSeconds != 0.02 {
		t.Fatalf("active payload: active=%v period=%g", p.Active, p.PeriodSeconds)
	}
	if p.State == nil || p.State.TickUnixNS == 0 {
		t.Fatal("no sampler state published")
	}
	nonEmpty := map[string]bool{}
	for _, sp := range p.Series {
		if len(sp.Points) > 0 {
			nonEmpty[sp.Name] = true
		}
	}
	// The acceptance bar: ≥ 3 distinct non-empty series. Runtime + solver
	// series fill on every OS; on Linux the mem.* series join them.
	for _, name := range []string{"runtime.heap_bytes", "runtime.goroutines", "arena.used_floats", "batch.inflight"} {
		if !nonEmpty[name] {
			t.Errorf("series %s has no points", name)
		}
	}
	if len(nonEmpty) < 3 {
		t.Fatalf("only %d non-empty series: %v", len(nonEmpty), nonEmpty)
	}
	if runtime.GOOS == "linux" && !nonEmpty["mem.rss_bytes"] {
		t.Error("mem.rss_bytes empty on Linux")
	}

	// ?points=0 keeps the aggregates but drops the point arrays.
	rec = httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry?points=0", nil))
	var agg telemetryPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &agg); err != nil {
		t.Fatal(err)
	}
	for _, sp := range agg.Series {
		if len(sp.Points) != 0 {
			t.Fatalf("points=0 still exported %d points for %s", len(sp.Points), sp.Name)
		}
	}
	var heapWin *WindowStats
	for _, sp := range agg.Series {
		if sp.Name == "runtime.heap_bytes" {
			heapWin = sp.Window
		}
	}
	if heapWin == nil || heapWin.Points < 3 || heapWin.Max <= 0 {
		t.Fatalf("runtime.heap_bytes window = %+v", heapWin)
	}

	// ?points=2 caps the export to the newest points.
	rec = httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry?points=2", nil))
	var capped telemetryPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &capped); err != nil {
		t.Fatal(err)
	}
	for _, sp := range capped.Series {
		if len(sp.Points) > 2 {
			t.Fatalf("points=2 exported %d points for %s", len(sp.Points), sp.Name)
		}
	}

	// Text table: header plus one row per non-empty series, with sparklines.
	rec = httptest.NewRecorder()
	serveTelemetry(rec, httptest.NewRequest("GET", "/debug/telemetry?format=text", nil))
	text := rec.Body.String()
	for _, want := range []string{"SERIES", "TREND", "runtime.heap_bytes", "▁"} {
		if !strings.Contains(text, want) {
			t.Errorf("text table missing %q:\n%s", want, text)
		}
	}

	// JSONL export carries every non-empty series.
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"series":"runtime.heap_bytes"`) {
		t.Fatalf("JSONL export missing runtime.heap_bytes:\n%.400s", sb.String())
	}
}

// TestHealthzMemorySummary: /healthz doubles as a cheap resource probe —
// runtime fields everywhere, RSS fields (or one reason) from procfs.
func TestHealthzMemorySummary(t *testing.T) {
	rec := httptest.NewRecorder()
	serveHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var p healthzPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Status != "ok" {
		t.Fatalf("status = %q", p.Status)
	}
	if p.HeapBytes == 0 || p.Goroutines < 1 {
		t.Fatalf("runtime summary: heap=%d goroutines=%d", p.HeapBytes, p.Goroutines)
	}
	if runtime.GOOS == "linux" {
		if p.RSSBytes <= 0 || p.PeakRSSBytes < p.RSSBytes {
			t.Fatalf("rss summary: rss=%d peak=%d (reason %q)", p.RSSBytes, p.PeakRSSBytes, p.MemReason)
		}
	} else if p.MemReason == "" {
		t.Fatal("no RSS and no reason")
	}
}
