package obs

import (
	"fmt"
	"io"

	"repro/internal/hwc"
	"repro/internal/span"
)

// Hardware-counter attribution for the span profiler: when a live
// hwc.Session is attached, Begin/End read the calling thread's counter
// group and the per-site aggregate gains counter totals alongside its
// time totals, using the same parent/child self-attribution — a span's
// self counters are its deltas minus the deltas already attributed to
// nested children. Spans whose goroutine migrated OS threads mid-span
// are counted as dropped rather than charged with another thread's work
// (their counts remain inside the nearest same-thread ancestor's self).
// See DESIGN.md §5.7.

// hwcSample is one buffered row's counter deltas, index-aligned with
// SpanProfiler.rows while a session is attached.
type hwcSample struct {
	valid bool
	v     [hwc.MaxEvents]float64
}

// hwcAgg is a span site's counter accumulator, in session event order.
type hwcAgg struct {
	samples int64
	total   [hwc.MaxEvents]float64
	self    [hwc.MaxEvents]float64
}

// counterStats materializes the aggregate for Stats(); n caps at the
// session's event count via len(names).
func (a *hwcAgg) counterStats(names []string) []CounterStat {
	out := make([]CounterStat, len(names))
	for i, name := range names {
		out[i] = CounterStat{Name: name, Total: a.total[i], Self: a.self[i]}
	}
	return out
}

// CounterStat is one hardware event's aggregate for a span site. Total
// sums the deltas of all attributed spans; Self subtracts the share
// already attributed to nested children (the column that sums to the
// recording's counter totals across sites).
type CounterStat struct {
	Name  string
	Total float64
	Self  float64
}

// accountHW runs under p.mu: fold one span's counter deltas into its
// site aggregate, subtracting the counts its nested children claimed.
func (p *SpanProfiler) accountHW(agg *spanAgg, delta, child *[hwc.MaxEvents]float64) {
	hw := agg.hw
	if hw == nil {
		hw = &hwcAgg{}
		agg.hw = hw
	}
	hw.samples++
	for i := range delta {
		hw.total[i] += delta[i]
		self := delta[i] - child[i]
		if self < 0 {
			// Multiplex scaling can make a child's scaled counts exceed
			// the parent's window; clamp rather than go negative.
			self = 0
		}
		hw.self[i] += self
	}
}

// hwNames runs under p.mu (or on an immutable profiler) and returns the
// attached session's event names, nil without one.
func (p *SpanProfiler) hwNames() []string { return p.hwEvents }

// AttachHWC attaches a hardware-counter session to the profiler. Call
// before any spans are recorded (the field is read without the lock on
// the hot path). A nil or degraded session attaches nothing but records
// the degradation reason, so callers report one cause and move on.
func (p *SpanProfiler) AttachHWC(s *hwc.Session) {
	if s == nil {
		p.hwReason = (*hwc.Session)(nil).Reason()
		return
	}
	if r := s.Reason(); r != "" {
		p.hwReason = r
		return
	}
	p.hw = s
	p.hwEvents = s.EventNames()
}

// HWCActive reports whether a live counter session is attached.
func (p *SpanProfiler) HWCActive() bool { return p.hw != nil }

// HWCReason returns the degradation reason recorded when AttachHWC was
// given an unavailable session ("" when active or never requested).
func (p *SpanProfiler) HWCReason() string { return p.hwReason }

// HWCEventNames returns the attached session's event names in counter
// order, nil without a live session.
func (p *SpanProfiler) HWCEventNames() []string {
	return append([]string(nil), p.hwEvents...)
}

// HWCSamples returns how many spans had their counter deltas attributed.
func (p *SpanProfiler) HWCSamples() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hwcSamples
}

// HWCDropped returns how many spans' counters were discarded (thread
// migration mid-span, failed group read).
func (p *SpanProfiler) HWCDropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hwcDropped
}

// StartSpanProfilerHWC creates a profiler with the process-wide shared
// counter session attached and installs it as the span recorder. On
// hosts without usable counters it degrades to a plain StartSpanProfiler
// whose HWCReason names the single cause.
func StartSpanProfilerHWC(maxEvents int) *SpanProfiler {
	p := NewSpanProfiler(maxEvents)
	p.AttachHWC(hwc.Shared())
	span.SetRecorder(p)
	return p
}

// InstalledProfiler returns the currently installed span recorder if it
// is a SpanProfiler (the live profile the debug endpoints serve), nil
// otherwise.
func InstalledProfiler() *SpanProfiler {
	p, _ := span.Installed().(*SpanProfiler)
	return p
}

// Counter returns the site's aggregate for the named event.
func (s SpanStat) Counter(name string) (CounterStat, bool) {
	for _, c := range s.HWC {
		if c.Name == name {
			return c, true
		}
	}
	return CounterStat{}, false
}

// hwcBase returns the self value of base event idx, relying on the base
// events always occupying the leading indices of the group.
func (s SpanStat) hwcBase(idx int) (float64, bool) {
	if idx >= len(s.HWC) {
		return 0, false
	}
	return s.HWC[idx].Self, true
}

// IPC returns the site's self instructions-per-cycle (0 without samples).
func (s SpanStat) IPC() float64 {
	instr, ok1 := s.hwcBase(hwc.IdxInstructions)
	cycles, ok2 := s.hwcBase(hwc.IdxCycles)
	if !ok1 || !ok2 || cycles <= 0 {
		return 0
	}
	return instr / cycles
}

// CacheMissRate returns self cache-misses per cache-reference in [0,1]
// (0 without samples or references).
func (s SpanStat) CacheMissRate() float64 {
	miss, ok1 := s.hwcBase(hwc.IdxCacheMisses)
	refs, ok2 := s.hwcBase(hwc.IdxCacheRefs)
	if !ok1 || !ok2 || refs <= 0 {
		return 0
	}
	return miss / refs
}

// MissesPerOp returns self cache-misses per span (count-normalized), the
// "how much memory traffic does one pass cost" column.
func (s SpanStat) MissesPerOp() float64 {
	miss, ok := s.hwcBase(hwc.IdxCacheMisses)
	if !ok || s.HWCSamples <= 0 {
		return 0
	}
	return miss / float64(s.HWCSamples)
}

// CyclesPerOp returns self cycles per span.
func (s SpanStat) CyclesPerOp() float64 {
	cycles, ok := s.hwcBase(hwc.IdxCycles)
	if !ok || s.HWCSamples <= 0 {
		return 0
	}
	return cycles / float64(s.HWCSamples)
}

// WriteHWCPrometheus appends the profiler's hardware-counter families to
// a Prometheus text exposition: per-site self counter totals, per-site
// IPC, and the attribution bookkeeping. No-op without a live session.
func (p *SpanProfiler) WriteHWCPrometheus(w io.Writer) error {
	if p == nil || !p.HWCActive() {
		return nil
	}
	stats := p.Stats()
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("# HELP qs_hwc_samples_total Spans with attributed hardware-counter deltas.\n")
	pf("# TYPE qs_hwc_samples_total counter\n")
	pf("qs_hwc_samples_total %d\n", p.HWCSamples())
	pf("# HELP qs_hwc_dropped_total Spans whose counters were discarded (thread migration, read failure).\n")
	pf("# TYPE qs_hwc_dropped_total counter\n")
	pf("qs_hwc_dropped_total %d\n", p.HWCDropped())
	pf("# HELP qs_hwc_counter_self_total Self-attributed hardware-counter totals per span site.\n")
	pf("# TYPE qs_hwc_counter_self_total counter\n")
	for _, s := range stats {
		for _, c := range s.HWC {
			pf("qs_hwc_counter_self_total{layer=%q,span=%q,event=%q} %g\n",
				s.Layer, s.Name, c.Name, c.Self)
		}
	}
	pf("# HELP qs_hwc_phase_ipc Self instructions-per-cycle per span site.\n")
	pf("# TYPE qs_hwc_phase_ipc gauge\n")
	for _, s := range stats {
		if s.HWCSamples > 0 {
			pf("qs_hwc_phase_ipc{layer=%q,span=%q} %.4f\n", s.Layer, s.Name, s.IPC())
		}
	}
	return err
}
