package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestTraceThinning(t *testing.T) {
	tr := NewTrace(10)
	rec := tr.Recorder("p=0.01")
	rec.Event("start", 0, 0.05, 0)
	for i := 1; i <= 95; i++ {
		rec.Step(i, 1.5, 1e-3/float64(i))
	}
	rec.Event("converged", 95, 1.5, 1e-5)
	rows := tr.Rows()
	// 9 thinned steps (every 10th of 95), the flushed final step 95, and
	// the 2 events: the terminal event flushes the pending thinned step so
	// the last pre-convergence residual is never lost.
	steps, events := 0, 0
	for _, r := range rows {
		if r.Event == "" {
			steps++
		} else {
			events++
		}
		if r.Label != "p=0.01" {
			t.Fatalf("row label = %q", r.Label)
		}
	}
	if steps != 10 || events != 2 {
		t.Fatalf("got %d steps, %d events; want 10, 2", steps, events)
	}
	// The flushed row is step 95, right before the converged event.
	if rows[len(rows)-2].Iter != 95 || rows[len(rows)-2].Event != "" {
		t.Fatalf("penultimate row = %+v, want flushed step 95", rows[len(rows)-2])
	}
}

func TestTraceThinningFlushesFinalStepOnce(t *testing.T) {
	// When the final step lands exactly on the every-N grid there is
	// nothing pending, so the terminal event must not duplicate it.
	tr := NewTrace(10)
	rec := tr.Recorder("")
	rec.Event("start", 0, 0, 0)
	for i := 1; i <= 90; i++ {
		rec.Step(i, 1, 0.1)
	}
	rec.Event("stagnated", 90, 1, 0.1)
	steps := 0
	for _, r := range tr.Rows() {
		if r.Event == "" {
			steps++
		}
	}
	if steps != 9 {
		t.Fatalf("steps = %d, want 9 (no duplicate flush on grid-aligned final step)", steps)
	}
	// The opening start event must not flush anything either.
	tr2 := NewTrace(10)
	rec2 := tr2.Recorder("")
	rec2.Step(1, 1, 0.5) // thinned away, pending
	rec2.Event("start", 0, 0, 0)
	if got := len(tr2.Rows()); got != 1 {
		t.Fatalf("rows after start = %d, want just the event", got)
	}
	// …but a later terminal event flushes the still-pending step.
	rec2.Event("aborted", 1, 1, 0.5)
	if got := len(tr2.Rows()); got != 3 {
		t.Fatalf("rows after aborted = %d, want pending step + 2 events", got)
	}
}

func TestTraceKeepsAllWithEveryOne(t *testing.T) {
	tr := NewTrace(0) // ≤1 keeps everything
	rec := tr.Recorder("")
	for i := 1; i <= 7; i++ {
		rec.Step(i, 1, 0.1)
	}
	if got := len(tr.Rows()); got != 7 {
		t.Fatalf("rows = %d, want 7", got)
	}
}

func TestTraceConcurrentRecorders(t *testing.T) {
	tr := NewTrace(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := tr.Recorder("w")
			for i := 1; i <= 100; i++ {
				rec.Step(i, 1, 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Rows()); got != 400 {
		t.Fatalf("rows = %d, want 400", got)
	}
}

func TestTraceWriteTSVAndJSONL(t *testing.T) {
	tr := NewTrace(1)
	rec := tr.Recorder("p=0.02")
	rec.Method("power")
	rec.Event("start", 0, 0.0625, 0)
	rec.Step(100, 1.875, 2.5e-4)

	var tsv strings.Builder
	if err := tr.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tsv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("tsv lines = %d, want 3:\n%s", len(lines), tsv.String())
	}
	if lines[0] != "label\titer\tlambda\tresidual\tevent\tmethod" {
		t.Fatalf("tsv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "p=0.02\t0\t") || !strings.HasSuffix(lines[1], "\tstart\tpower") {
		t.Fatalf("tsv event row = %q", lines[1])
	}

	var jl strings.Builder
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	var row TraceRow
	if err := json.Unmarshal([]byte(strings.Split(jl.String(), "\n")[1]), &row); err != nil {
		t.Fatal(err)
	}
	if row.Iter != 100 || row.Lambda != 1.875 || row.Residual != 2.5e-4 || row.Method != "power" {
		t.Fatalf("jsonl row = %+v", row)
	}
}

func TestTraceWriteFileByExtension(t *testing.T) {
	tr := NewTrace(1)
	tr.Recorder("x").Step(1, 1, 0.5)
	dir := t.TempDir()

	tsvPath := filepath.Join(dir, "trace.tsv")
	if err := tr.WriteFile(tsvPath); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(tsvPath)
	if !strings.HasPrefix(string(b), "label\t") {
		t.Fatalf("tsv file content = %q", b)
	}

	jlPath := filepath.Join(dir, "trace.jsonl")
	if err := tr.WriteFile(jlPath); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(jlPath)
	if !strings.HasPrefix(string(b), "{") {
		t.Fatalf("jsonl file content = %q", b)
	}
}
