package obs

import (
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mutation"
)

// wire.go is the single place where obs reaches into the solver packages:
// EnableSolverMetrics builds the qs_* metric families in the default
// registry and installs one observer per hook point (mutation kernels,
// device launches, batch scheduler, eigensolvers). The solver packages
// never import obs — each exposes a nil-by-default observer interface that
// this file populates.

// kernelMetrics feeds the qs_kernel_* families from mutation kernel spans.
type kernelMetrics struct {
	applies map[string]*Counter
	seconds map[string]*Histogram
	stages  *Counter
	vectors *Counter
}

func (m *kernelMetrics) KernelApply(kind string, stages, vectors int, d time.Duration) {
	if c := m.applies[kind]; c != nil {
		c.Inc()
	}
	if h := m.seconds[kind]; h != nil {
		h.Observe(d.Seconds())
	}
	m.stages.Add(int64(stages))
	m.vectors.Add(int64(vectors))
}

// launchMetrics feeds the qs_device_* families from device launch spans.
type launchMetrics struct {
	launches map[string]*Counter
	chunks   *Counter
	seconds  *Histogram
	wait     *Histogram
}

func (m *launchMetrics) Launch(kind string, n, chunks int, total, wait time.Duration) {
	if c := m.launches[kind]; c != nil {
		c.Inc()
	}
	m.chunks.Add(int64(chunks))
	m.seconds.Observe(total.Seconds())
	m.wait.Observe(wait.Seconds())
}

// schedMetrics feeds the qs_batch_* families from scheduler callbacks.
type schedMetrics struct {
	runs     *Counter
	tasks    *Counter
	failures *Counter
	inflight *Gauge
	taskSec  *Histogram
	runSec   *Histogram
}

func (m *schedMetrics) RunStart(tasks, workers int) { m.runs.Inc() }

func (m *schedMetrics) TaskStart(slot, task int) { m.inflight.Add(1) }

func (m *schedMetrics) TaskDone(slot, task int, d time.Duration, failed bool) {
	m.inflight.Add(-1)
	m.tasks.Inc()
	if failed {
		m.failures.Inc()
	}
	m.taskSec.Observe(d.Seconds())
}

func (m *schedMetrics) RunDone(tasks int, d time.Duration) { m.runSec.Observe(d.Seconds()) }

// solveMetrics feeds the qs_power_* families from eigensolver callbacks.
type solveMetrics struct {
	solves   map[string]*Counter
	iters    *Counter
	checks   *Counter
	outcomes map[string]*Counter
	lastRes  *GaugeFloat
}

func (m *solveMetrics) SolveStart(kind string, dim int) {
	if c := m.solves[kind]; c != nil {
		c.Inc()
	}
}

func (m *solveMetrics) SolveStep(kind string, iters int) {
	m.iters.Add(int64(iters))
	m.checks.Inc()
}

func (m *solveMetrics) SolveDone(kind string, iters int, residual float64, outcome string) {
	if c := m.outcomes[outcome]; c != nil {
		c.Inc()
	}
	m.lastRes.Set(residual)
}

// sweepMetrics backs RecordSweepPoint.
type sweepMetrics struct {
	points   *Counter
	iters    *Counter
	warmHits *Counter
	lastP    *GaugeFloat
}

var wire struct {
	once  sync.Once
	sweep *sweepMetrics
}

// EnableSolverMetrics registers the qs_* metric families in the default
// registry and installs the solver observers (mutation kernels, device
// launches, batch scheduler, eigensolvers). Idempotent; call once at tool
// startup — StartDebugServer calls it for you.
func EnableSolverMetrics() {
	wire.once.Do(func() {
		r := Default()
		sb := SecondsBuckets()

		km := &kernelMetrics{
			applies: map[string]*Counter{},
			seconds: map[string]*Histogram{},
			stages:  r.Counter("qs_kernel_stages_total", "Butterfly stages executed by instrumented kernel passes."),
			vectors: r.Counter("qs_kernel_vectors_total", "Vectors processed by instrumented kernel passes."),
		}
		for _, kind := range []string{
			mutation.KindApply, mutation.KindApplyDevice,
			mutation.KindApplyBatch, mutation.KindApplyBatchDevice,
			mutation.KindStageGroup,
		} {
			km.applies[kind] = r.Counter(
				`qs_kernel_applies_total{kind="`+kind+`"}`,
				"Mutation kernel passes by kind (apply, apply_device, apply_batch, apply_batch_device, stage_group).")
			km.seconds[kind] = r.Histogram(
				`qs_kernel_apply_seconds{kind="`+kind+`"}`,
				"Wall time of mutation kernel passes by kind.", sb)
		}
		mutation.SetKernelObserver(km)

		lm := &launchMetrics{
			launches: map[string]*Counter{},
			chunks:   r.Counter("qs_device_chunks_total", "Chunks dispatched by observed device launches."),
			seconds:  r.Histogram("qs_device_launch_seconds", "Wall time of device kernel launches.", sb),
			wait:     r.Histogram("qs_device_queue_wait_seconds", "Barrier tail the submitter spent waiting on pool workers.", sb),
		}
		for _, kind := range []string{
			device.LaunchKindRange, device.LaunchKindStages, device.LaunchKindReduce,
		} {
			lm.launches[kind] = r.Counter(
				`qs_device_launches_total{kind="`+kind+`"}`,
				"Device kernel launches by kind (range, stages, reduce).")
		}
		device.SetLaunchObserver(lm)

		bm := &schedMetrics{
			runs:     r.Counter("qs_batch_runs_total", "Batched scheduler runs started."),
			tasks:    r.Counter("qs_batch_tasks_total", "Scheduler tasks completed."),
			failures: r.Counter("qs_batch_task_failures_total", "Scheduler tasks that returned an error."),
			inflight: r.Gauge("qs_batch_tasks_inflight", "Scheduler tasks currently executing (slot occupancy)."),
			taskSec:  r.Histogram("qs_batch_task_seconds", "Wall time of individual scheduler tasks.", sb),
			runSec:   r.Histogram("qs_batch_run_seconds", "Wall time of whole scheduler runs.", sb),
		}
		batch.SetObserver(bm)

		sm := &solveMetrics{
			solves:   map[string]*Counter{},
			iters:    r.Counter("qs_power_iterations_total", "Power-iteration steps performed (accumulated at residual checks)."),
			checks:   r.Counter("qs_power_residual_checks_total", "Residual evaluations performed."),
			outcomes: map[string]*Counter{},
			lastRes:  r.GaugeFloat("qs_power_last_residual", "Residual reported by the most recently finished solve."),
		}
		for _, kind := range []string{
			core.SolveKindPower, core.SolveKindBlockPower,
			core.SolveKindLanczos, core.SolveKindShiftInvert, core.SolveKindChebyshev,
		} {
			sm.solves[kind] = r.Counter(
				`qs_power_solves_total{kind="`+kind+`"}`,
				"Eigensolves started by kind (power, block_power, lanczos, shift_invert, chebyshev).")
		}
		for _, outcome := range []string{
			core.EventConverged, core.EventStagnated, core.EventBudgetExhausted,
			core.EventBreakdown, core.EventAborted,
		} {
			sm.outcomes[outcome] = r.Counter(
				`qs_power_outcomes_total{outcome="`+outcome+`"}`,
				"Eigensolve terminations by outcome.")
		}
		core.SetSolveObserver(sm)

		wire.sweep = &sweepMetrics{
			points:   r.Counter("qs_sweep_points_total", "Sweep points solved."),
			iters:    r.Counter("qs_sweep_iterations_total", "Power iterations accumulated over sweep points."),
			warmHits: r.Counter("qs_sweep_warm_hits_total", "Sweep points solved from a warm-start seed."),
			lastP:    r.GaugeFloat("qs_sweep_last_p", "Mutation probability of the most recently solved sweep point."),
		}
	})
}

// RecordSweepPoint feeds the qs_sweep_* families with one finished sweep
// point: its mutation probability p, the iterations its solve took, and
// whether it started from a warm seed. A no-op until EnableSolverMetrics
// has run.
func RecordSweepPoint(p float64, iters int, warm bool) {
	m := wire.sweep
	if m == nil {
		return
	}
	m.points.Inc()
	m.iters.Add(int64(iters))
	if warm {
		m.warmHits.Inc()
	}
	m.lastP.Set(p)
}
