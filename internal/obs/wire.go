package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mutation"
)

// wire.go is the single place where obs reaches into the solver packages:
// EnableSolverMetrics builds the qs_* metric families in the default
// registry and installs one observer per hook point (mutation kernels,
// device launches, batch scheduler, eigensolvers). The solver packages
// never import obs — each exposes a nil-by-default observer interface that
// this file populates.

// kernelMetrics feeds the qs_kernel_* families from mutation kernel spans.
type kernelMetrics struct {
	applies map[string]*Counter
	seconds map[string]*Histogram
	stages  *Counter
	vectors *Counter
}

func (m *kernelMetrics) KernelApply(kind string, stages, vectors int, d time.Duration) {
	if c := m.applies[kind]; c != nil {
		c.Inc()
	}
	if h := m.seconds[kind]; h != nil {
		h.Observe(d.Seconds())
	}
	m.stages.Add(int64(stages))
	m.vectors.Add(int64(vectors))
}

// launchMetrics feeds the qs_device_* families from device launch spans.
type launchMetrics struct {
	launches map[string]*Counter
	chunks   *Counter
	seconds  *Histogram
	wait     *Histogram
}

func (m *launchMetrics) Launch(kind string, n, chunks int, total, wait time.Duration) {
	if c := m.launches[kind]; c != nil {
		c.Inc()
	}
	m.chunks.Add(int64(chunks))
	m.seconds.Observe(total.Seconds())
	m.wait.Observe(wait.Seconds())
}

// schedMetrics feeds the qs_batch_* families from scheduler callbacks.
type schedMetrics struct {
	runs     *Counter
	tasks    *Counter
	failures *Counter
	inflight *Gauge
	taskSec  *Histogram
	runSec   *Histogram
}

func (m *schedMetrics) RunStart(tasks, workers int) { m.runs.Inc() }

func (m *schedMetrics) TaskStart(slot, task int) { m.inflight.Add(1) }

func (m *schedMetrics) TaskDone(slot, task int, d time.Duration, failed bool) {
	m.inflight.Add(-1)
	m.tasks.Inc()
	if failed {
		m.failures.Inc()
	}
	m.taskSec.Observe(d.Seconds())
}

func (m *schedMetrics) RunDone(tasks int, d time.Duration) { m.runSec.Observe(d.Seconds()) }

// solveMetrics feeds the qs_power_* families from eigensolver callbacks.
type solveMetrics struct {
	solves   map[string]*Counter
	iters    *Counter
	checks   *Counter
	outcomes map[string]*Counter
	lastRes  *GaugeFloat
}

func (m *solveMetrics) SolveStart(kind string, dim int) {
	if c := m.solves[kind]; c != nil {
		c.Inc()
	}
}

func (m *solveMetrics) SolveStep(kind string, iters int) {
	m.iters.Add(int64(iters))
	m.checks.Inc()
}

func (m *solveMetrics) SolveDone(kind string, iters int, residual float64, outcome string) {
	if c := m.outcomes[outcome]; c != nil {
		c.Inc()
	}
	m.lastRes.Set(residual)
}

// sweepMetrics backs RecordSweepPoint and RecordSweepStart.
type sweepMetrics struct {
	points   *Counter
	iters    *Counter
	warmHits *Counter
	lastP    *GaugeFloat
	planned  *Counter
}

// resourceMetrics backs UpdateResourceGauges: pull-based qs_* gauges the
// telemetry sampler refreshes once per tick, covering process memory,
// Go runtime state, arena occupancy and pool pressure. Per-node families
// are registered lazily at the first tick that sees the node.
type resourceMetrics struct {
	r *Registry

	memRSS    *Gauge
	memPeak   *Gauge
	memHuge   *Gauge
	hugeRatio *GaugeFloat

	heap       *Gauge
	goroutines *Gauge
	gcPause    *GaugeFloat

	arenaFoot map[int]*Gauge
	arenaUsed map[int]*Gauge
	arenaHi   map[int]*Gauge
	numaBytes map[int]*Gauge

	poolQueue  *Gauge
	poolSteals *Gauge
	poolClaims *Gauge

	inflight *Gauge
	planned  *Gauge
	progress *GaugeFloat
}

var wire struct {
	once     sync.Once
	sweep    *sweepMetrics
	resource *resourceMetrics
}

// ArenaSnapshot mirrors device.ArenaStats without exposing the device
// package to the rest of obs (wire.go stays the single crossing point).
type ArenaSnapshot struct {
	Node            int   `json:"node"`
	FootprintFloats int64 `json:"footprint_floats"`
	UsedFloats      int64 `json:"used_floats"`
	HighWaterFloats int64 `json:"highwater_floats"`
}

// SolverResources is one pull of the always-on device/batch counters — the
// solver-side half of a sampler tick. All fields are readable whether or
// not any observer hook was ever installed.
type SolverResources struct {
	Arenas []ArenaSnapshot `json:"arenas,omitempty"`

	PoolWorkers    int   `json:"pool_workers"`
	PoolQueueDepth int   `json:"pool_queue_depth"`
	PoolClaimed    int64 `json:"pool_chunks_claimed"`
	PoolStolen     int64 `json:"pool_chunks_stolen"`

	BatchInflight int64 `json:"batch_inflight"`
	BatchDone     int64 `json:"batch_done"`
	BatchPlanned  int64 `json:"batch_planned"`
}

// ReadSolverResources polls the device arenas, the worker pool and the
// batch scheduler. Cost: a few dozen atomic loads; safe at any frequency.
func ReadSolverResources() SolverResources {
	res := SolverResources{}
	for _, a := range device.AllArenaStats() {
		res.Arenas = append(res.Arenas, ArenaSnapshot{
			Node:            a.Node,
			FootprintFloats: a.FootprintFloats,
			UsedFloats:      a.UsedFloats,
			HighWaterFloats: a.HighWaterFloats,
		})
	}
	ps := device.PoolStatsNow()
	res.PoolWorkers = ps.Workers
	res.PoolQueueDepth = ps.QueueDepth
	res.PoolClaimed = ps.ChunksClaimed
	res.PoolStolen = ps.ChunksStolen
	res.BatchInflight, res.BatchDone, res.BatchPlanned = batch.LiveStats()
	return res
}

// nodeGauge lazily registers a per-node gauge family member.
func (m *resourceMetrics) nodeGauge(cache map[int]*Gauge, node int, family, help string) *Gauge {
	if g, ok := cache[node]; ok {
		return g
	}
	label := "unattributed"
	if node >= 0 {
		label = fmt.Sprintf("%d", node)
	}
	g := m.r.Gauge(fmt.Sprintf(`%s{node=%q}`, family, label), help)
	cache[node] = g
	return g
}

// UpdateResourceGauges refreshes the pull-based resource gauges from one
// sampler tick's reads. numa may be nil (NUMA is sampled less often than
// the rest). A no-op until EnableSolverMetrics has run. Not safe for
// concurrent callers (the sampler goroutine is the only caller).
func UpdateResourceGauges(mem MemStatus, rt RuntimeStatus, numa *NUMAStatus, res SolverResources) {
	m := wire.resource
	if m == nil {
		return
	}
	if mem.Available {
		m.memRSS.Set(mem.RSSBytes)
		m.memPeak.Set(mem.PeakRSSBytes)
		m.memHuge.Set(mem.AnonHugeBytes)
		m.hugeRatio.Set(mem.HugeRatio)
	}
	m.heap.Set(rt.HeapBytes)
	m.goroutines.Set(rt.Goroutines)
	m.gcPause.Set(rt.GCPauseTotal)
	for _, a := range res.Arenas {
		m.nodeGauge(m.arenaFoot, a.Node, "qs_device_arena_footprint_floats",
			"Total slab capacity of the device arenas, in float64s, by NUMA node.").Set(a.FootprintFloats)
		m.nodeGauge(m.arenaUsed, a.Node, "qs_device_arena_used_floats",
			"Live bump occupancy of the device arenas, in float64s, by NUMA node.").Set(a.UsedFloats)
		m.nodeGauge(m.arenaHi, a.Node, "qs_device_arena_highwater_floats",
			"High-water bump occupancy of the device arenas, in float64s, by NUMA node.").Set(a.HighWaterFloats)
	}
	if numa != nil && numa.Available {
		for node, b := range numa.NodeBytes {
			m.nodeGauge(m.numaBytes, node, "qs_mem_numa_bytes",
				"Resident bytes placed on each NUMA node (from /proc/self/numa_maps).").Set(b)
		}
	}
	m.poolQueue.Set(int64(res.PoolQueueDepth))
	m.poolSteals.Set(res.PoolStolen)
	m.poolClaims.Set(res.PoolClaimed)
	m.inflight.Set(res.BatchInflight)
	m.planned.Set(res.BatchPlanned)
	if res.BatchPlanned > 0 {
		m.progress.Set(float64(res.BatchDone) / float64(res.BatchPlanned))
	}
}

// EnableSolverMetrics registers the qs_* metric families in the default
// registry and installs the solver observers (mutation kernels, device
// launches, batch scheduler, eigensolvers). Idempotent; call once at tool
// startup — StartDebugServer calls it for you.
func EnableSolverMetrics() {
	wire.once.Do(func() {
		r := Default()
		sb := SecondsBuckets()

		km := &kernelMetrics{
			applies: map[string]*Counter{},
			seconds: map[string]*Histogram{},
			stages:  r.Counter("qs_kernel_stages_total", "Butterfly stages executed by instrumented kernel passes."),
			vectors: r.Counter("qs_kernel_vectors_total", "Vectors processed by instrumented kernel passes."),
		}
		for _, kind := range []string{
			mutation.KindApply, mutation.KindApplyDevice,
			mutation.KindApplyBatch, mutation.KindApplyBatchDevice,
			mutation.KindStageGroup,
		} {
			km.applies[kind] = r.Counter(
				`qs_kernel_applies_total{kind="`+kind+`"}`,
				"Mutation kernel passes by kind (apply, apply_device, apply_batch, apply_batch_device, stage_group).")
			km.seconds[kind] = r.Histogram(
				`qs_kernel_apply_seconds{kind="`+kind+`"}`,
				"Wall time of mutation kernel passes by kind.", sb)
		}
		mutation.SetKernelObserver(km)

		lm := &launchMetrics{
			launches: map[string]*Counter{},
			chunks:   r.Counter("qs_device_chunks_total", "Chunks dispatched by observed device launches."),
			seconds:  r.Histogram("qs_device_launch_seconds", "Wall time of device kernel launches.", sb),
			wait:     r.Histogram("qs_device_queue_wait_seconds", "Barrier tail the submitter spent waiting on pool workers.", sb),
		}
		for _, kind := range []string{
			device.LaunchKindRange, device.LaunchKindStages, device.LaunchKindReduce,
		} {
			lm.launches[kind] = r.Counter(
				`qs_device_launches_total{kind="`+kind+`"}`,
				"Device kernel launches by kind (range, stages, reduce).")
		}
		device.SetLaunchObserver(lm)

		bm := &schedMetrics{
			runs:     r.Counter("qs_batch_runs_total", "Batched scheduler runs started."),
			tasks:    r.Counter("qs_batch_tasks_total", "Scheduler tasks completed."),
			failures: r.Counter("qs_batch_task_failures_total", "Scheduler tasks that returned an error."),
			inflight: r.Gauge("qs_batch_tasks_inflight", "Scheduler tasks currently executing (slot occupancy)."),
			taskSec:  r.Histogram("qs_batch_task_seconds", "Wall time of individual scheduler tasks.", sb),
			runSec:   r.Histogram("qs_batch_run_seconds", "Wall time of whole scheduler runs.", sb),
		}
		batch.SetObserver(bm)

		sm := &solveMetrics{
			solves:   map[string]*Counter{},
			iters:    r.Counter("qs_power_iterations_total", "Power-iteration steps performed (accumulated at residual checks)."),
			checks:   r.Counter("qs_power_residual_checks_total", "Residual evaluations performed."),
			outcomes: map[string]*Counter{},
			lastRes:  r.GaugeFloat("qs_power_last_residual", "Residual reported by the most recently finished solve."),
		}
		for _, kind := range []string{
			core.SolveKindPower, core.SolveKindBlockPower,
			core.SolveKindLanczos, core.SolveKindShiftInvert, core.SolveKindChebyshev,
		} {
			sm.solves[kind] = r.Counter(
				`qs_power_solves_total{kind="`+kind+`"}`,
				"Eigensolves started by kind (power, block_power, lanczos, shift_invert, chebyshev).")
		}
		for _, outcome := range []string{
			core.EventConverged, core.EventStagnated, core.EventBudgetExhausted,
			core.EventBreakdown, core.EventAborted,
		} {
			sm.outcomes[outcome] = r.Counter(
				`qs_power_outcomes_total{outcome="`+outcome+`"}`,
				"Eigensolve terminations by outcome.")
		}
		core.SetSolveObserver(sm)

		wire.sweep = &sweepMetrics{
			points:   r.Counter("qs_sweep_points_total", "Sweep points solved."),
			iters:    r.Counter("qs_sweep_iterations_total", "Power iterations accumulated over sweep points."),
			warmHits: r.Counter("qs_sweep_warm_hits_total", "Sweep points solved from a warm-start seed."),
			lastP:    r.GaugeFloat("qs_sweep_last_p", "Mutation probability of the most recently solved sweep point."),
			planned:  r.Counter("qs_sweep_points_planned_total", "Sweep points announced by sweep drivers before solving."),
		}

		wire.resource = &resourceMetrics{
			r:          r,
			memRSS:     r.Gauge("qs_mem_rss_bytes", "Resident set size (VmRSS), refreshed by the resource sampler."),
			memPeak:    r.Gauge("qs_mem_rss_peak_bytes", "Peak resident set size (VmHWM)."),
			memHuge:    r.Gauge("qs_mem_anon_huge_bytes", "RSS backed by transparent huge pages (AnonHugePages)."),
			hugeRatio:  r.GaugeFloat("qs_mem_huge_ratio", "Share of RSS backed by transparent huge pages."),
			heap:       r.Gauge("qs_runtime_heap_bytes", "Go heap object bytes (runtime/metrics)."),
			goroutines: r.Gauge("qs_runtime_goroutines", "Live goroutine count."),
			gcPause:    r.GaugeFloat("qs_runtime_gc_pause_seconds", "Approximate cumulative GC stop-the-world pause seconds."),
			arenaFoot:  map[int]*Gauge{},
			arenaUsed:  map[int]*Gauge{},
			arenaHi:    map[int]*Gauge{},
			numaBytes:  map[int]*Gauge{},
			poolQueue:  r.Gauge("qs_device_pool_queue_depth", "Batches sitting unclaimed in pool worker queues."),
			poolSteals: r.Gauge("qs_device_pool_chunks_stolen", "Cumulative chunks executed from a non-home part (work stealing)."),
			poolClaims: r.Gauge("qs_device_pool_chunks_claimed", "Cumulative chunks executed from a participant's home part."),
			inflight:   r.Gauge("qs_batch_live_inflight", "Scheduler tasks currently executing (always-on counter, no observer needed)."),
			planned:    r.Gauge("qs_batch_tasks_planned", "Scheduler tasks ever submitted across all runs."),
			progress:   r.GaugeFloat("qs_batch_chain_progress", "Completed fraction of all submitted scheduler tasks."),
		}
	})
}

// RecordSweepStart announces a sweep of n points before any of them solve,
// feeding qs_sweep_points_planned_total so dashboards can show progress
// (points_total / points_planned_total). A no-op until EnableSolverMetrics.
func RecordSweepStart(n int) {
	m := wire.sweep
	if m == nil || n <= 0 {
		return
	}
	m.planned.Add(int64(n))
}

// RecordSweepPoint feeds the qs_sweep_* families with one finished sweep
// point: its mutation probability p, the iterations its solve took, and
// whether it started from a warm seed. A no-op until EnableSolverMetrics
// has run.
func RecordSweepPoint(p float64, iters int, warm bool) {
	m := wire.sweep
	if m == nil {
		return
	}
	m.points.Inc()
	m.iters.Add(int64(iters))
	if warm {
		m.warmHits.Inc()
	}
	m.lastP.Set(p)
}
