package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/device"
	"repro/internal/hwc"
	"repro/internal/mutation"
)

// Run manifest: the schema-versioned identity record of one solver run.
// A manifest is stamped once at solve/sweep start and answers, months
// later, the questions a bare trace file cannot: which binary (module
// version, VCS revision, dirty tree), which machine shape (GOMAXPROCS,
// NUMA node map), which fast paths were live (AVX2, hardware counters —
// and if not, why), and which workload (tool, flags, p-grid). Its RunID is
// threaded through span profiles, trace rows, perf-ledger entries and
// /metrics, so every artifact of a run names the same identity.

// ManifestSchema is the current manifest schema version. Bump it when a
// field changes meaning; readers must tolerate unknown fields (plain
// encoding/json semantics) so newer bundles stay readable.
const ManifestSchema = 1

// ManifestName is the file name a manifest is written under inside a
// flight bundle directory.
const ManifestName = "manifest.json"

// Manifest is the run identity record. All fields are stamped at creation
// and immutable afterwards.
type Manifest struct {
	Schema int      `json:"schema"`
	RunID  string   `json:"run_id"`
	Time   string   `json:"time"` // RFC 3339, manifest creation
	Tool   string   `json:"tool,omitempty"`
	Args   []string `json:"args,omitempty"`
	// Flags is the tool's resolved flag set (name → value) at start.
	Flags map[string]string `json:"flags,omitempty"`

	// Build identity, from debug.ReadBuildInfo. Revision/VCSTime/Dirty are
	// empty when the binary was built without VCS stamping (go test, go
	// run from a non-repo directory).
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"module_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	VCSTime   string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty,omitempty"`

	// Host shape.
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NUMANodes  [][]int `json:"numa_node_cpus"`

	// Fast-path availability with degradation reasons.
	AVX2       bool   `json:"avx2"`
	AVX2Reason string `json:"avx2_reason,omitempty"`
	HWC        bool   `json:"hwc"`
	HWCReason  string `json:"hwc_reason,omitempty"`

	// Workload parameters (zero values when not applicable to the tool).
	Nu      int       `json:"nu,omitempty"`
	Method  string    `json:"method,omitempty"`
	Workers int       `json:"workers,omitempty"`
	PGrid   []float64 `json:"p_grid,omitempty"`
}

// NewRunID returns a fresh run identifier: a UTC timestamp plus random
// hex, e.g. "20260808T154501-9f2c41d8" — sortable, file-name safe, and
// unique across concurrent processes.
func NewRunID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the timestamp alone; collisions need two runs in
		// the same second with a broken entropy source.
		return time.Now().UTC().Format("20060102T150405")
	}
	return time.Now().UTC().Format("20060102T150405") + "-" + hex.EncodeToString(b[:])
}

// ManifestWorkload carries the workload fields of NewManifest.
type ManifestWorkload struct {
	Tool    string
	Args    []string
	Flags   map[string]string
	Nu      int
	Method  string
	Workers int
	PGrid   []float64
}

// NewManifest stamps a manifest for a new run: a fresh RunID plus the
// build, host, and fast-path probes. Probing hardware counters opens the
// process-wide perf_event_open session (the same one -hwc uses).
func NewManifest(w ManifestWorkload) *Manifest {
	m := &Manifest{
		Schema: ManifestSchema,
		RunID:  NewRunID(),
		Time:   time.Now().UTC().Format(time.RFC3339),
		Tool:   w.Tool,
		Args:   w.Args,
		Flags:  w.Flags,

		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NUMANodes:  device.Topo().NodeCPUs,

		Nu: w.Nu, Method: w.Method, Workers: w.Workers, PGrid: w.PGrid,
	}
	m.AVX2, m.AVX2Reason = mutation.AVX2()
	m.HWC, m.HWCReason = hwc.Available()
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
		m.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Revision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	return m
}

// WriteFile writes the manifest as indented JSON to path, creating parent
// directories as needed.
func (m *Manifest) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifestFile parses a manifest written by WriteFile, validating the
// schema version and run ID.
func ReadManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: manifest %s: %w", path, err)
	}
	if m.Schema <= 0 || m.Schema > ManifestSchema {
		return nil, fmt.Errorf("obs: manifest %s: unsupported schema %d", path, m.Schema)
	}
	if m.RunID == "" {
		return nil, fmt.Errorf("obs: manifest %s: missing run_id", path)
	}
	return &m, nil
}
