package obs

import (
	"math"
	"os"
	"path/filepath"
	"runtime/metrics"
	"strings"
	"testing"
)

const procStatusFixture = `Name:	qsolve
Umask:	0022
State:	R (running)
VmPeak:	  204800 kB
VmSize:	  102400 kB
VmHWM:	   81920 kB
VmRSS:	   40960 kB
RssAnon:	   30720 kB
Threads:	9
`

func TestParseProcStatus(t *testing.T) {
	rss, peak, err := ParseProcStatus([]byte(procStatusFixture))
	if err != nil {
		t.Fatal(err)
	}
	if rss != 40960*1024 {
		t.Fatalf("rss = %d, want %d", rss, 40960*1024)
	}
	if peak != 81920*1024 {
		t.Fatalf("peak = %d, want %d", peak, 81920*1024)
	}
}

func TestParseProcStatusMissingVmHWMClampsToRSS(t *testing.T) {
	in := "VmRSS:\t 512 kB\nThreads:\t1\n"
	rss, peak, err := ParseProcStatus([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if rss != 512*1024 || peak != rss {
		t.Fatalf("rss/peak = %d/%d, want peak clamped to rss %d", rss, peak, 512*1024)
	}
}

func TestParseProcStatusMissingVmRSSErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"Name:\tqsolve\nVmHWM:\t 100 kB\n",
		"VmRSS:\t notanumber kB\n", // present but unparsable == absent
		"VmRSS:\t 100 MB\n",        // wrong unit suffix
	} {
		if _, _, err := ParseProcStatus([]byte(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestParseSMapsRollup(t *testing.T) {
	in := `00400000-7fff9d8f3000 ---p 00000000 00:00 0      [rollup]
Rss:	   40960 kB
Pss:	   39000 kB
Anonymous:	   30720 kB
AnonHugePages:	   16384 kB
Shared_Clean:	     512 kB
`
	sm, err := ParseSMapsRollup([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sm.RSSBytes != 40960*1024 || sm.PSSBytes != 39000*1024 {
		t.Fatalf("rss/pss = %d/%d", sm.RSSBytes, sm.PSSBytes)
	}
	if sm.AnonBytes != 30720*1024 || sm.AnonHugeBytes != 16384*1024 {
		t.Fatalf("anon/anonHuge = %d/%d", sm.AnonBytes, sm.AnonHugeBytes)
	}
}

func TestParseSMapsRollupTruncatedMidLineKeepsParsedFields(t *testing.T) {
	in := "Rss:\t 1024 kB\nAnonHugePages:\t 51" // cut mid-value: no kB suffix needed, still parses
	sm, err := ParseSMapsRollup([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sm.RSSBytes != 1024*1024 {
		t.Fatalf("RSSBytes = %d", sm.RSSBytes)
	}
	// A line truncated to just "AnonHugePages:" contributes nothing but
	// doesn't discard the fields that did parse.
	in2 := "Rss:\t 1024 kB\nAnonHugePages:"
	sm2, err := ParseSMapsRollup([]byte(in2))
	if err != nil || sm2.RSSBytes != 1024*1024 || sm2.AnonHugeBytes != 0 {
		t.Fatalf("truncated field line: %+v err=%v", sm2, err)
	}
}

func TestParseSMapsRollupForeignFileErrors(t *testing.T) {
	if _, err := ParseSMapsRollup([]byte("totally: not procfs\n")); err == nil {
		t.Fatal("foreign file parsed without error")
	}
	if _, err := ParseSMapsRollup(nil); err == nil {
		t.Fatal("empty file parsed without error")
	}
}

func TestParseNUMAMaps(t *testing.T) {
	in := `7f0000000000 default anon=256 dirty=256 N0=192 N1=64 kernelpagesize_kB=4
7f0100000000 default file=/usr/lib/libc.so mapped=10 N0=10 kernelpagesize_kB=4
7f0200000000 default huge anon=2 dirty=2 N1=2 kernelpagesize_kB=2048
7fff00000000 default stack
`
	st := ParseNUMAMaps([]byte(in))
	if !st.Available {
		t.Fatalf("not available: %s", st.Reason)
	}
	wantN0 := int64((192 + 10) * 4096)
	wantN1 := int64(64*4096 + 2*2048*1024)
	if st.NodeBytes[0] != wantN0 || st.NodeBytes[1] != wantN1 {
		t.Fatalf("NodeBytes = %v, want N0=%d N1=%d", st.NodeBytes, wantN0, wantN1)
	}
	if st.TotalBytes != wantN0+wantN1 {
		t.Fatalf("TotalBytes = %d, want %d", st.TotalBytes, wantN0+wantN1)
	}
	if st.HugeBytes != 2*2048*1024 {
		t.Fatalf("HugeBytes = %d, want %d", st.HugeBytes, 2*2048*1024)
	}
}

func TestParseNUMAMapsNoParsableMappings(t *testing.T) {
	st := ParseNUMAMaps([]byte("7fff00000000 default stack\n\n"))
	if st.Available {
		t.Fatal("zeros masquerading as data: Available = true with no mappings")
	}
	if st.Reason == "" {
		t.Fatal("degraded without a reason")
	}
}

// TestReadMemStatusFromFixtureTree drives the collector against t.TempDir()
// procfs trees: a full tree, one without smaps_rollup (old kernel), and a
// missing status file (hidepid) — the first two succeed, the last degrades
// with one reason.
func TestReadMemStatusFromFixtureTree(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "status", procStatusFixture)
	writeFixture(t, dir, "smaps_rollup", "Rss:\t 40960 kB\nAnonHugePages:\t 20480 kB\n")

	m := readMemStatusFrom(dir)
	if !m.Available {
		t.Fatalf("not available: %s", m.Reason)
	}
	if m.RSSBytes != 40960*1024 || m.PeakRSSBytes != 81920*1024 {
		t.Fatalf("rss/peak = %d/%d", m.RSSBytes, m.PeakRSSBytes)
	}
	if m.AnonHugeBytes != 20480*1024 {
		t.Fatalf("AnonHugeBytes = %d", m.AnonHugeBytes)
	}
	if want := 0.5; math.Abs(m.HugeRatio-want) > 1e-12 {
		t.Fatalf("HugeRatio = %g, want %g", m.HugeRatio, want)
	}

	// Kernel without smaps_rollup: RSS columns still available, huge = 0.
	old := t.TempDir()
	writeFixture(t, old, "status", procStatusFixture)
	m = readMemStatusFrom(old)
	if !m.Available || m.AnonHugeBytes != 0 || m.HugeRatio != 0 {
		t.Fatalf("old-kernel read = %+v", m)
	}

	// No status at all: degraded, reason names the path.
	m = readMemStatusFrom(t.TempDir())
	if m.Available || !strings.Contains(m.Reason, "status") {
		t.Fatalf("missing status: %+v", m)
	}

	// Unparsable status: degraded with a parse reason.
	bad := t.TempDir()
	writeFixture(t, bad, "status", "Name:\tqsolve\n")
	m = readMemStatusFrom(bad)
	if m.Available || !strings.Contains(m.Reason, "parsing") {
		t.Fatalf("unparsable status: %+v", m)
	}
}

func TestReadNUMAStatusFromFixtureTree(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "numa_maps", "7f00 default anon=4 N0=4 kernelpagesize_kB=4\n")
	st := readNUMAStatusFrom(dir)
	if !st.Available || st.NodeBytes[0] != 4*4096 {
		t.Fatalf("fixture read = %+v", st)
	}
	st = readNUMAStatusFrom(t.TempDir())
	if st.Available || !strings.Contains(st.Reason, "numa_maps") {
		t.Fatalf("missing numa_maps: %+v", st)
	}
}

func writeFixture(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramApproxSum(t *testing.T) {
	if got := histogramApproxSum(nil); got != 0 {
		t.Fatalf("nil = %g", got)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 2, 1},
		Buckets: []float64{math.Inf(-1), 1, 3, math.Inf(1)},
	}
	// (-Inf,1]: empty. [1,3): 2 × midpoint 2 = 4. [3,+Inf): 1 × finite bound 3.
	if got, want := histogramApproxSum(h), 7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestRuntimeSamplerReadsLiveState(t *testing.T) {
	rs := newRuntimeSampler()
	st := rs.read()
	if st.HeapBytes <= 0 {
		t.Fatalf("HeapBytes = %d", st.HeapBytes)
	}
	if st.Goroutines < 1 {
		t.Fatalf("Goroutines = %d", st.Goroutines)
	}
	if st.RuntimeTotalBytes < st.HeapBytes {
		t.Fatalf("RuntimeTotalBytes %d < HeapBytes %d", st.RuntimeTotalBytes, st.HeapBytes)
	}
}
