//go:build !unix

package obs

// watchSignals is a no-op off unix: SIGUSR1/SIGQUIT do not exist, and the
// other dump triggers (watchdog, errors, panics, /debug/flight) carry the
// diagnostic load.
func (f *FlightRecorder) watchSignals() {}
