package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/span"
)

func testFlightManifest(runID string) *Manifest {
	return &Manifest{
		Schema: ManifestSchema, RunID: runID,
		Time:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: "go-test", GOOS: "test", GOARCH: "test",
		NumCPU: 1, GOMAXPROCS: 1,
	}
}

// quietConfig is a watchdog-off, signal-off flight config for ring and
// bundle tests.
func quietConfig(dir string) FlightConfig {
	return FlightConfig{
		Dir: dir, TraceEvery: 1,
		MetricPeriod:   -1 * time.Second,
		Watchdog:       WatchdogConfig{Interval: -1 * time.Second},
		DisableSignals: true, DisablePanicHook: true,
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 10; i++ {
		r.push(i)
	}
	got := r.snapshot()
	want := []int{6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("snapshot %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot %v, want %v", got, want)
		}
	}
	retained, total := r.totals()
	if retained != 4 || total != 10 {
		t.Fatalf("totals = (%d, %d), want (4, 10)", retained, total)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := newRing[string](8)
	r.push("a")
	r.push("b")
	got := r.snapshot()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("snapshot %v, want [a b]", got)
	}
}

func TestFlightWatchdogStallEscalation(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var warns []string
	cfg := quietConfig(dir)
	cfg.Watchdog = WatchdogConfig{
		Interval:    2 * time.Millisecond,
		StallChecks: 3,
		StallWall:   -1 * time.Second,
		WarnAfter:   1,
		DumpAfter:   2,
		Log: func(line string) {
			mu.Lock()
			warns = append(warns, line)
			mu.Unlock()
		},
	}
	f := StartFlight(testFlightManifest("testrun-stall"), cfg)
	defer f.Stop()

	o := f.Observer("p=stall")
	o.Method(core.SolveKindPower)
	o.Event(core.EventStart, 0, 0, 0)
	o.Step(1, 2.0, 1e-3) // first check improves over +Inf
	for i := 2; i <= 12; i++ {
		o.Step(i, 2.0, 1e-3) // flat residual: no improvement
	}

	deadline := time.Now().Add(10 * time.Second)
	for len(f.Bundles()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	bundles := f.Bundles()
	if len(bundles) == 0 {
		t.Fatal("watchdog did not dump a stall bundle")
	}
	if !strings.HasSuffix(bundles[0], "-stall") {
		t.Fatalf("bundle dir %q does not name reason stall", bundles[0])
	}

	man, err := ReadManifestFile(filepath.Join(bundles[0], ManifestName))
	if err != nil {
		t.Fatalf("bundle manifest: %v", err)
	}
	if man.RunID != "testrun-stall" {
		t.Fatalf("bundle manifest run ID %q, want testrun-stall", man.RunID)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(warns) == 0 {
		t.Fatal("no structured warning emitted before the dump")
	}
	var fields map[string]any
	if err := json.Unmarshal([]byte(warns[0]), &fields); err != nil {
		t.Fatalf("warning %q is not a JSON object: %v", warns[0], err)
	}
	if fields["kind"] != "stall" || fields["run_id"] != "testrun-stall" {
		t.Fatalf("warning fields = %v, want kind=stall run_id=testrun-stall", fields)
	}
	if fields["method"] != core.SolveKindPower {
		t.Fatalf("warning method = %v, want %q", fields["method"], core.SolveKindPower)
	}
}

func TestFlightNaNEscalatesImmediately(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var warns []string
	cfg := quietConfig(dir)
	cfg.Watchdog.Log = func(line string) {
		mu.Lock()
		warns = append(warns, line)
		mu.Unlock()
	}
	f := StartFlight(testFlightManifest("testrun-nan"), cfg)
	defer f.Stop()

	o := f.Observer("p=nan")
	o.Event(core.EventStart, 0, 0, 0)
	o.Step(1, 1.0, 1e-3)
	nan := 0.0
	nan /= nan // NaN without math.NaN, keeps the import list short
	o.Step(2, 1.0, nan)
	o.Step(3, 1.0, nan) // second NaN must not dump a second bundle

	bundles := f.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("NaN escalation dumped %d bundles, want exactly 1", len(bundles))
	}
	if !strings.HasSuffix(bundles[0], "-nan") {
		t.Fatalf("bundle dir %q does not name reason nan", bundles[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if len(warns) != 1 || !strings.Contains(warns[0], `"kind":"nan"`) {
		t.Fatalf("warnings = %v, want one nan warning", warns)
	}
}

func TestFlightTraceThinning(t *testing.T) {
	cfg := quietConfig(t.TempDir())
	cfg.TraceEvery = 4
	f := StartFlight(testFlightManifest("testrun-thin"), cfg)
	defer f.Stop()

	o := f.Observer("p=thin")
	o.Event(core.EventStart, 0, 0, 0)
	for i := 1; i <= 10; i++ {
		o.Step(i, 1.0, 1.0/float64(i))
	}
	o.Event(core.EventConverged, 10, 1.0, 0.1)

	rows := f.TraceRows()
	var iters []int
	for _, r := range rows {
		if r.Event == "" {
			iters = append(iters, r.Iter)
		}
		if r.RunID != "testrun-thin" {
			t.Fatalf("trace row missing run ID: %+v", r)
		}
	}
	// Kept: every 4th step (4, 8) plus the pending step 10 flushed by the
	// terminal event.
	want := []int{4, 8, 10}
	if len(iters) != len(want) {
		t.Fatalf("retained step iters %v, want %v", iters, want)
	}
	for i := range want {
		if iters[i] != want[i] {
			t.Fatalf("retained step iters %v, want %v", iters, want)
		}
	}
	last := rows[len(rows)-1]
	if last.Event != core.EventConverged || last.Iter != 10 {
		t.Fatalf("last row = %+v, want converged event at iter 10", last)
	}
}

func TestFlightObserverReuseRearms(t *testing.T) {
	f := StartFlight(testFlightManifest("testrun-reuse"), quietConfig(t.TempDir()))
	defer f.Stop()

	o := f.Observer("p=reuse")
	o.Event(core.EventStart, 0, 0, 0)
	o.Step(1, 1.0, 1e-3)
	o.Event(core.EventConverged, 1, 1.0, 1e-3)
	f.mu.Lock()
	n := len(f.solves)
	f.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d solves registered after terminal event, want 0", n)
	}

	o.Event(core.EventStart, 0, 0, 0) // rep 2 on the same model/observer
	f.mu.Lock()
	n = len(f.solves)
	done := o.done
	f.mu.Unlock()
	if n != 1 || done {
		t.Fatalf("reused observer not re-armed: registered=%d done=%v", n, done)
	}
}

func TestDumpBundleContentsAndCap(t *testing.T) {
	dir := t.TempDir()
	cfg := quietConfig(dir)
	cfg.MaxBundles = 2
	f := StartFlight(testFlightManifest("testrun-dump"), cfg)
	defer f.Stop()

	f.NoteDecision("method", "p=0.03", "power", 0)
	first, err := f.DumpBundle("manual", map[string]any{"trigger": "test"})
	if err != nil {
		t.Fatalf("DumpBundle: %v", err)
	}
	for _, name := range []string{
		ManifestName, "spans.jsonl", "trace.jsonl", "decisions.jsonl",
		"metrics.jsonl", "goroutines.txt", "dump.json",
	} {
		if _, err := os.Stat(filepath.Join(first, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	var sum dumpSummary
	data, err := os.ReadFile(filepath.Join(first, "dump.json"))
	if err != nil {
		t.Fatalf("dump.json: %v", err)
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("dump.json: %v", err)
	}
	if sum.RunID != "testrun-dump" || sum.Reason != "manual" {
		t.Fatalf("dump summary = %+v", sum)
	}

	if _, err := f.DumpBundle("manual", nil); err != nil {
		t.Fatalf("second DumpBundle: %v", err)
	}
	third, err := f.DumpBundle("manual", nil)
	if err != nil {
		t.Fatalf("capped DumpBundle: %v", err)
	}
	if third != "" {
		t.Fatalf("third bundle %q dumped past MaxBundles=2", third)
	}
	if got := len(f.Bundles()); got != 2 {
		t.Fatalf("Bundles() has %d entries, want 2", got)
	}
}

func TestDumpOnError(t *testing.T) {
	f := StartFlight(testFlightManifest("testrun-err"), quietConfig(t.TempDir()))
	defer f.Stop()

	if dir, ok := f.DumpOnError(nil); ok || dir != "" {
		t.Fatal("nil error dumped a bundle")
	}
	if dir, ok := f.DumpOnError(os.ErrNotExist); ok || dir != "" {
		t.Fatal("unrelated error dumped a bundle")
	}

	cerr := &core.ConvergenceError{
		Reason: core.ErrStagnated, Method: core.SolveKindPower,
		Iterations: 42, Residual: 1e-9, BestResidual: 1e-9,
		SinceImprovement: 7, Tol: 1e-13,
	}
	dir, ok := f.DumpOnError(cerr)
	if !ok || !strings.HasSuffix(dir, "-convergence_error") {
		t.Fatalf("DumpOnError = (%q, %v)", dir, ok)
	}
	data, err := os.ReadFile(filepath.Join(dir, "error.json"))
	if err != nil {
		t.Fatalf("error.json: %v", err)
	}
	var back core.ConvergenceError
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("error.json round-trip: %v", err)
	}
	if back.Iterations != 42 || back.Method != core.SolveKindPower {
		t.Fatalf("error.json round-trip = %+v", back)
	}

	gerr := &core.GapUnresolvedError{Reason: "window too narrow", Lambda0: 2, Lambda1: 1.999}
	dir, ok = f.DumpOnError(gerr)
	if !ok || !strings.HasSuffix(dir, "-gap_unresolved") {
		t.Fatalf("DumpOnError gap = (%q, %v)", dir, ok)
	}
}

func TestFlightSpanTeeAndRunIDStamping(t *testing.T) {
	f := StartFlight(testFlightManifest("testrun-spans"), quietConfig(t.TempDir()))
	defer f.Stop()

	// A profiler born during the flight is stamped with its run ID.
	p := StartSpanProfiler(64)
	defer p.Stop()
	if p.RunID() != "testrun-spans" {
		t.Fatalf("profiler run ID %q, want testrun-spans", p.RunID())
	}

	sp := span.Begin(span.LayerFacade, "test_span")
	span.End(sp, 1, 2)

	spans := f.Spans()
	if len(spans) == 0 {
		t.Fatal("span event did not tee into the flight ring")
	}
	found := false
	for _, s := range spans {
		if s.Name == "test_span" && s.A1 == 1 && s.A2 == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("test_span not retained; ring = %+v", spans)
	}
}

func TestFlightStatus(t *testing.T) {
	f := StartFlight(testFlightManifest("testrun-status"), quietConfig(t.TempDir()))
	defer f.Stop()
	f.NoteDecision("method", "p=0.01", "power", 3)
	st := f.status()
	if !st.Active || st.RunID != "testrun-status" {
		t.Fatalf("status = %+v", st)
	}
	if st.Decisions.Total != 1 || len(st.Recent) != 1 {
		t.Fatalf("status decisions = %+v recent=%d", st.Decisions, len(st.Recent))
	}
}
