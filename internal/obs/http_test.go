package obs

import (
	"net"
	"net/http"
	"testing"
)

// TestDebugServerCloseReleasesListener guards the shutdown handle: Close
// must actually release the socket (the old API leaked the listener for the
// life of the process), be idempotent, and leave the port rebindable.
func TestDebugServerCloseReleasesListener(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("server not reachable before Close: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if conn, err := net.Dial("tcp", srv.Addr()); err == nil {
		conn.Close()
		t.Fatal("listener still accepting connections after Close")
	}
	ln, err := net.Listen("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}
