package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/span"
)

func spanStat(t *testing.T, p *SpanProfiler, layer, name string) SpanStat {
	t.Helper()
	for _, s := range p.Stats() {
		if s.Layer == layer && s.Name == name {
			return s
		}
	}
	t.Fatalf("no aggregate for %s/%s", layer, name)
	return SpanStat{}
}

func TestSpanNestingAndSelfTime(t *testing.T) {
	p := StartSpanProfiler(0)
	defer p.Stop()

	outer := span.Begin(span.LayerCore, "power")
	time.Sleep(2 * time.Millisecond)
	inner := span.Begin(span.LayerMutation, "apply")
	time.Sleep(4 * time.Millisecond)
	span.End(inner, 12, 1)
	span.End(outer, 4096, 0)
	p.Stop()

	solve := spanStat(t, p, span.LayerCore, "power")
	apply := spanStat(t, p, span.LayerMutation, "apply")
	if solve.Count != 1 || apply.Count != 1 {
		t.Fatalf("counts: solve=%d apply=%d", solve.Count, apply.Count)
	}
	if solve.Total < apply.Total {
		t.Errorf("outer total %v < inner total %v", solve.Total, apply.Total)
	}
	// Self time of the outer span excludes the inner span entirely.
	if got, want := solve.Self, solve.Total-apply.Total; got != want {
		t.Errorf("outer self = %v, want total-child = %v", got, want)
	}
	if apply.Self != apply.Total {
		t.Errorf("leaf self = %v, want its total %v", apply.Self, apply.Total)
	}
	rows := p.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	// Completion order: inner ends first; both on the same track.
	if rows[0].Name != "apply" || rows[1].Name != "power" {
		t.Errorf("row order: %s, %s", rows[0].Name, rows[1].Name)
	}
	if rows[0].TID != rows[1].TID {
		t.Errorf("tids differ: %d vs %d", rows[0].TID, rows[1].TID)
	}
	if rows[1].Start > rows[0].Start || rows[1].Start+rows[1].Dur < rows[0].Start+rows[0].Dur {
		t.Errorf("outer [%v,+%v] does not contain inner [%v,+%v]",
			rows[1].Start, rows[1].Dur, rows[0].Start, rows[0].Dur)
	}
	if rows[1].A1 != 4096 || rows[0].A1 != 12 || rows[0].A2 != 1 {
		t.Errorf("args: %+v, %+v", rows[0], rows[1])
	}
}

func TestSpanRecordChargesOpenParent(t *testing.T) {
	p := StartSpanProfiler(0)
	defer p.Stop()

	h := span.Begin(span.LayerDevice, "stages")
	time.Sleep(time.Millisecond)
	p.Record(span.LayerDevice, "queue_wait", 500*time.Microsecond, 3, 0)
	span.End(h, 1024, 4)
	p.Stop()

	launch := spanStat(t, p, span.LayerDevice, "stages")
	wait := spanStat(t, p, span.LayerDevice, "queue_wait")
	if wait.Total != 500*time.Microsecond || wait.Self != wait.Total {
		t.Errorf("queue_wait aggregate = %+v", wait)
	}
	if got, want := launch.Self, launch.Total-wait.Total; got != want {
		t.Errorf("launch self = %v, want %v (wait charged as child)", got, want)
	}
	// A negative post-hoc duration is clamped, not accounted backwards.
	p2 := NewSpanProfiler(0)
	p2.Record("device", "queue_wait", -time.Second, 0, 0)
	if s := spanStat(t, p2, "device", "queue_wait"); s.Total != 0 || s.Count != 1 {
		t.Errorf("negative duration record: %+v", s)
	}
}

func TestSpanBufferBoundKeepsAggregatesExact(t *testing.T) {
	p := StartSpanProfiler(4)
	defer p.Stop()
	for i := 0; i < 10; i++ {
		span.End(span.Begin(span.LayerCore, "matvec"), int64(i), 0)
	}
	p.Stop()
	if got := len(p.Rows()); got != 4 {
		t.Errorf("buffered rows = %d, want 4", got)
	}
	if got := p.Dropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	if s := spanStat(t, p, span.LayerCore, "matvec"); s.Count != 10 {
		t.Errorf("aggregate count = %d, want 10 despite drops", s.Count)
	}
}

func TestSpanConcurrentGoroutinesGetDistinctTracks(t *testing.T) {
	p := StartSpanProfiler(0)
	defer p.Stop()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := span.Begin(span.LayerBatch, "task")
			inner := span.Begin(span.LayerCore, "power")
			span.End(inner, 0, 0)
			span.End(h, 0, 0)
		}()
	}
	wg.Wait()
	p.Stop()
	if s := spanStat(t, p, span.LayerBatch, "task"); s.Count != 4 {
		t.Fatalf("task count = %d", s.Count)
	}
	tids := map[int64]bool{}
	for _, r := range p.Rows() {
		if r.Layer == span.LayerBatch {
			tids[r.TID] = true
		}
	}
	if len(tids) != 4 {
		t.Errorf("distinct tids = %d, want 4", len(tids))
	}
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	p := StartSpanProfiler(0)
	defer p.Stop()
	outer := span.Begin(span.LayerCore, "power")
	inner := span.Begin(span.LayerMutation, "apply")
	span.End(inner, 14, 1)
	span.End(outer, 16384, 0)
	p.Stop()

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(tr.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.TraceEvents))
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 || ev.TID == 0 || ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("malformed event: %+v", ev)
		}
	}
	// Named args: the mutation apply span carries stages/vectors.
	for _, ev := range tr.TraceEvents {
		if ev.Cat == "mutation" {
			if ev.Args["stages"] != float64(14) || ev.Args["vectors"] != float64(1) {
				t.Errorf("mutation args = %v", ev.Args)
			}
		}
	}
}

func TestSpanWriteTable(t *testing.T) {
	p := StartSpanProfiler(0)
	defer p.Stop()
	span.End(span.Begin(span.LayerCore, "matvec"), 1, 0)
	p.Stop()
	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"layer", "span", "self", "matvec", "wall "} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestStopUninstallsRecorder(t *testing.T) {
	p := StartSpanProfiler(0)
	if !span.Enabled() {
		t.Fatal("recorder not installed by StartSpanProfiler")
	}
	p.Stop()
	if span.Enabled() {
		t.Fatal("recorder still installed after Stop")
	}
	if p.Wall() <= 0 {
		t.Errorf("wall = %v", p.Wall())
	}
	// Wall is frozen by Stop.
	w1 := p.Wall()
	time.Sleep(2 * time.Millisecond)
	if w2 := p.Wall(); w2 != w1 {
		t.Errorf("wall moved after Stop: %v -> %v", w1, w2)
	}
}
