package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/hwc"
	"repro/internal/span"
)

// TestHWCAttachDegraded pins the degradation contract: attaching a nil or
// unavailable session records ONE reason, leaves the profiler fully
// functional and keeps the hot path free of counter reads.
func TestHWCAttachDegraded(t *testing.T) {
	p := NewSpanProfiler(0)
	p.AttachHWC(nil)
	if p.HWCActive() {
		t.Fatal("nil session attached as active")
	}
	if p.HWCReason() == "" {
		t.Error("nil attach recorded no reason")
	}

	s := hwc.Open("definitely-not-an-event") // degraded on every host
	p2 := NewSpanProfiler(0)
	p2.AttachHWC(s)
	if p2.HWCActive() {
		t.Fatal("degraded session attached as active")
	}
	if !strings.Contains(p2.HWCReason(), "definitely-not-an-event") {
		t.Errorf("reason = %q", p2.HWCReason())
	}
	// The profiler still records time normally.
	span.SetRecorder(p2)
	span.End(span.Begin(span.LayerCore, "matvec"), 1, 0)
	p2.Stop()
	if st := spanStat(t, p2, span.LayerCore, "matvec"); st.Count != 1 || st.HWCSamples != 0 {
		t.Errorf("degraded-profile stat = %+v", st)
	}
}

// TestHWCAccounting drives the parent/child counter attribution directly
// with synthetic deltas (the live path needs a PMU): self = delta − child,
// clamped at zero, and the derived IPC / miss-rate columns follow.
func TestHWCAccounting(t *testing.T) {
	p := NewSpanProfiler(0)
	p.hwEvents = []string{"cycles", "instructions", "cache-references", "cache-misses", "branch-misses"}

	agg := p.account(span.LayerCore, "power", 0, 0)
	delta := [hwc.MaxEvents]float64{1000, 2000, 100, 25, 5}
	child := [hwc.MaxEvents]float64{400, 500, 20, 5, 0}
	p.accountHW(agg, &delta, &child)

	st := spanStat(t, p, span.LayerCore, "power")
	if st.HWCSamples != 1 {
		t.Fatalf("HWCSamples = %d", st.HWCSamples)
	}
	cyc, ok := st.Counter("cycles")
	if !ok || cyc.Total != 1000 || cyc.Self != 600 {
		t.Errorf("cycles = %+v ok=%v", cyc, ok)
	}
	// IPC and miss rate use self values: 1500/600 and 20/80.
	if got := st.IPC(); math.Abs(got-1500.0/600.0) > 1e-12 {
		t.Errorf("IPC = %g", got)
	}
	if got := st.CacheMissRate(); math.Abs(got-20.0/80.0) > 1e-12 {
		t.Errorf("miss rate = %g", got)
	}
	if got := st.MissesPerOp(); got != 20 {
		t.Errorf("misses/op = %g", got)
	}
	if got := st.CyclesPerOp(); got != 600 {
		t.Errorf("cycles/op = %g", got)
	}

	// A child that claimed more (multiplex-scaled) than the parent's
	// window clamps self at zero instead of going negative.
	agg2 := p.account(span.LayerCore, "shift", 0, 0)
	over := [hwc.MaxEvents]float64{100, 100, 0, 0, 0}
	huge := [hwc.MaxEvents]float64{500, 500, 0, 0, 0}
	p.accountHW(agg2, &over, &huge)
	if st2 := spanStat(t, p, span.LayerCore, "shift"); st2.HWC[0].Self != 0 || st2.HWC[0].Total != 100 {
		t.Errorf("clamped stat = %+v", st2.HWC[0])
	}
}

// TestHWCSpanPathBothWorlds runs real spans through a profiler holding a
// freshly opened session. On a PMU-less or denied host every span's
// counters are dropped (and the row ledger stays aligned); on a
// permissive host they are attributed with plausible magnitudes. Both
// sides of the degradation matrix stay covered wherever the test runs.
func TestHWCSpanPathBothWorlds(t *testing.T) {
	s := hwc.Open("")
	defer s.Close()
	p := NewSpanProfiler(0)
	if s.Reason() == "" {
		p.AttachHWC(s)
		if !p.HWCActive() {
			t.Fatal("live session did not attach")
		}
	} else {
		t.Logf("degraded host: %s", s.Reason())
		// Force the hot path anyway: a non-nil degraded session makes
		// every ReadSelf fail, which must count as dropped, not crash.
		p.hw = s
		p.hwEvents = nil
	}
	span.SetRecorder(p)
	outer := span.Begin(span.LayerCore, "power")
	inner := span.Begin(span.LayerMutation, "apply")
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
	span.End(inner, 1, 0)
	span.End(outer, 2, 0)
	p.Stop()

	total := p.HWCSamples() + p.HWCDropped()
	if total != 2 {
		t.Fatalf("samples+dropped = %d, want 2", total)
	}
	if len(p.hwrows) != len(p.rows) {
		t.Fatalf("hwrows/rows misaligned: %d vs %d", len(p.hwrows), len(p.rows))
	}
	if s.Reason() != "" && p.HWCDropped() != 2 {
		t.Errorf("degraded path attributed spans: dropped = %d", p.HWCDropped())
	}
	if s.Reason() == "" && p.HWCSamples() > 0 {
		st := spanStat(t, p, span.LayerCore, "power")
		if st.HWCSamples > 0 {
			if c, _ := st.Counter("instructions"); c.Total <= 0 {
				t.Errorf("live instructions total = %g", c.Total)
			}
		}
	}
}

// TestHWCWriteTableColumns checks the table grows the counter columns
// exactly when a session is attached: ipc/miss% present with data, "-"
// cells for sites without samples, and no columns at all without hwc.
func TestHWCWriteTableColumns(t *testing.T) {
	p := NewSpanProfiler(0)
	p.hw = hwc.Open("definitely-degraded-but-non-nil-for-rendering")
	p.hwEvents = []string{"cycles", "instructions", "cache-references", "cache-misses", "branch-misses"}
	agg := p.account(span.LayerCore, "matvec", 0, 0)
	delta := [hwc.MaxEvents]float64{1e6, 2e6, 1e4, 1e3, 10}
	var none [hwc.MaxEvents]float64
	p.accountHW(agg, &delta, &none)
	p.account(span.LayerCore, "residual", 0, 0) // no counter samples

	var buf bytes.Buffer
	if err := p.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ipc", "miss%", "miss/op", "cyc/op", "2.00", "hwc: 0 spans attributed"} {
		if !strings.Contains(out, want) {
			t.Errorf("hwc table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Errorf("sampleless site has no dash cells:\n%s", out)
	}

	var plain bytes.Buffer
	p2 := NewSpanProfiler(0)
	p2.account(span.LayerCore, "matvec", 0, 0)
	if err := p2.WriteTable(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "ipc") {
		t.Errorf("plain table grew hwc columns:\n%s", plain.String())
	}
}

// TestHWCPrometheusFamilies checks the qs_hwc_* exposition renders from a
// profiler with synthetic counter aggregates.
func TestHWCPrometheusFamilies(t *testing.T) {
	p := NewSpanProfiler(0)
	p.hw = hwc.Open("x-degraded-x")
	p.hwEvents = []string{"cycles", "instructions", "cache-references", "cache-misses", "branch-misses"}
	agg := p.account(span.LayerCore, "matvec", 0, 0)
	delta := [hwc.MaxEvents]float64{100, 250, 10, 2, 1}
	var none [hwc.MaxEvents]float64
	p.accountHW(agg, &delta, &none)

	var buf bytes.Buffer
	if err := p.WriteHWCPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"qs_hwc_samples_total",
		"qs_hwc_dropped_total",
		`qs_hwc_counter_self_total{layer="core",span="matvec",event="instructions"} 250`,
		`qs_hwc_phase_ipc{layer="core",span="matvec"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Inactive profiler writes nothing.
	var empty bytes.Buffer
	if err := NewSpanProfiler(0).WriteHWCPrometheus(&empty); err != nil || empty.Len() != 0 {
		t.Errorf("inactive exposition: err=%v len=%d", err, empty.Len())
	}
}

// TestDebugSpansEndpoint smoke-tests /debug/spans in both formats,
// with and without an installed profiler.
func TestDebugSpansEndpoint(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No profiler installed: active=false, not an error.
	span.SetRecorder(nil)
	code, body := get("/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans status = %d", code)
	}
	var idle spansPayload
	if err := json.Unmarshal([]byte(body), &idle); err != nil || idle.Active {
		t.Fatalf("idle payload = %q err=%v", body, err)
	}

	p := StartSpanProfiler(0)
	defer p.Stop()
	span.End(span.Begin(span.LayerCore, "matvec"), 7, 0)

	code, body = get("/debug/spans")
	if code != http.StatusOK {
		t.Fatalf("/debug/spans status = %d", code)
	}
	var live spansPayload
	if err := json.Unmarshal([]byte(body), &live); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !live.Active || len(live.Spans) != 1 || live.Spans[0].Name != "matvec" || live.Spans[0].Count != 1 {
		t.Errorf("live payload = %+v", live)
	}

	code, body = get("/debug/spans?format=text")
	if code != http.StatusOK || !strings.Contains(body, "matvec") || !strings.Contains(body, "layer") {
		t.Errorf("text format: status=%d body:\n%s", code, body)
	}
}
