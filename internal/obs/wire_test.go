package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
)

// TestEnableSolverMetricsEndToEnd installs the hooks, runs a real solve and
// a sweep-point record, and verifies the metric families move and are
// served over HTTP — the in-process version of the CI smoke test.
func TestEnableSolverMetricsEndToEnd(t *testing.T) {
	EnableSolverMetrics()

	const nu = 8
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	q := mutation.MustUniform(nu, 0.01)
	op, err := core.NewFmmpOperator(q, l, core.Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(1)
	res, err := core.PowerIteration(op, core.PowerOptions{
		Tol:      1e-10,
		Observer: tr.Recorder("test"),
	})
	if err != nil {
		t.Fatalf("PowerIteration: %v", err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge")
	}
	RecordSweepPoint(0.01, res.Iterations, true)

	// The Krylov gears must feed the same counter families (satellite of
	// the adaptive engine: lanczos/shift_invert/chebyshev solve kinds).
	opS, err := core.NewFmmpOperator(q, l, core.Symmetric, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Lanczos(opS, core.LanczosOptions{Tol: 1e-10}); err != nil {
		t.Fatalf("Lanczos: %v", err)
	}
	if _, err := core.ShiftInvertLanczos(opS, core.ShiftInvertOptions{
		Tol: 1e-10, Shift: core.UpperBoundLambda(l),
	}); err != nil {
		t.Fatalf("ShiftInvertLanczos: %v", err)
	}
	theta0, theta1, err := core.RitzGap(opS, 16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.ChebyshevIteration(opS, core.ChebyshevOptions{
		Tol: 1e-10, UpperEdge: theta1 + 0.5*(theta0-theta1),
	}); err != nil {
		t.Fatalf("ChebyshevIteration: %v", err)
	}

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, family := range []string{
		`qs_kernel_applies_total{kind="apply"}`,
		"qs_power_iterations_total",
		"qs_power_residual_checks_total",
		`qs_power_solves_total{kind="power"}`,
		`qs_power_solves_total{kind="lanczos"}`,
		`qs_power_solves_total{kind="shift_invert"}`,
		`qs_power_solves_total{kind="chebyshev"}`,
		`qs_power_outcomes_total{outcome="converged"}`,
		"qs_sweep_points_total",
		"qs_sweep_warm_hits_total",
		"qs_batch_tasks_inflight",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
	// The solve above must have produced non-zero kernel and iteration
	// counts (other tests may add more; ≥ is enough).
	for _, m := range []*Counter{
		Default().Counter(`qs_kernel_applies_total{kind="apply"}`, ""),
		Default().Counter("qs_power_iterations_total", ""),
		Default().Counter("qs_sweep_points_total", ""),
		Default().Counter("qs_sweep_warm_hits_total", ""),
		Default().Counter(`qs_power_solves_total{kind="lanczos"}`, ""),
		Default().Counter(`qs_power_solves_total{kind="shift_invert"}`, ""),
		Default().Counter(`qs_power_solves_total{kind="chebyshev"}`, ""),
	} {
		if m.Value() < 1 {
			t.Errorf("metric stayed zero after instrumented solve")
		}
	}

	// The observer trace must carry the start event and the convergence tail.
	rows := tr.Rows()
	if len(rows) < 2 {
		t.Fatalf("trace rows = %d", len(rows))
	}
	if rows[0].Event != "start" {
		t.Errorf("first trace row = %+v, want start event", rows[0])
	}
	for i, r := range rows {
		if r.Method != core.SolveKindPower {
			t.Errorf("trace row %d method = %q, want %q (solver must stamp the method column)", i, r.Method, core.SolveKindPower)
			break
		}
	}
	if last := rows[len(rows)-1]; last.Event != "converged" {
		t.Errorf("last trace row = %+v, want converged event", last)
	}

	// /debug/vars must include the registry snapshot.
	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "qs_solver") {
		t.Errorf("/debug/vars missing qs_solver snapshot")
	}

	// /healthz responds.
	resp, err = http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
}
