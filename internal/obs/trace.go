package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Convergence-trace recorder: collects the per-iteration (iter, λ̃, R)
// stream and the solver lifecycle events of one or many eigensolves, for
// export as TSV or JSONL. A TraceRecorder satisfies core.Observer
// structurally (Step/Event), so the trace plugs into PowerOptions.Observer
// without this package importing internal/core.

// TraceRow is one record of a convergence trace. Event is "" for plain
// residual-check steps and a lifecycle tag (start, converged, stagnated,
// budget_exhausted, breakdown, aborted) otherwise. Method names the
// eigensolver gear that produced the row ("power", "chebyshev",
// "shift_invert", …); it may change mid-label when an adaptive solve falls
// through several gears on one point, and is "" for recordings made
// before the solver reported it.
type TraceRow struct {
	// RunID names the flight-recorded run the row belongs to ("" for
	// recordings made outside a flight).
	RunID    string  `json:"run_id,omitempty"`
	Label    string  `json:"label,omitempty"`
	Iter     int     `json:"iter"`
	Lambda   float64 `json:"lambda"`
	Residual float64 `json:"residual"`
	Event    string  `json:"event,omitempty"`
	Method   string  `json:"method,omitempty"`
}

// Trace accumulates convergence rows from one or more solves. Recorders
// append under a mutex, so one Trace may serve concurrent sweep workers;
// rows of interleaved solves are distinguished by their labels.
type Trace struct {
	mu    sync.Mutex
	every int
	runID string
	rows  []TraceRow
}

// SetRunID stamps every subsequently appended row with the flight run
// identity, tying exported trace files to their manifest.
func (t *Trace) SetRunID(id string) {
	t.mu.Lock()
	t.runID = id
	t.mu.Unlock()
}

// NewTrace returns a trace that keeps every `every`-th Step row of each
// recorder (and all Event rows); every ≤ 1 keeps all steps. Thinning keeps
// trace files of slowly converging solves near the error threshold at
// plottable size without losing the stagnation signature.
func NewTrace(every int) *Trace {
	if every < 1 {
		every = 1
	}
	return &Trace{every: every}
}

func (t *Trace) append(row TraceRow) {
	t.mu.Lock()
	if row.RunID == "" {
		row.RunID = t.runID
	}
	t.rows = append(t.rows, row)
	t.mu.Unlock()
}

// Rows returns a copy of the recorded rows in append order.
func (t *Trace) Rows() []TraceRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceRow, len(t.rows))
	copy(out, t.rows)
	return out
}

// Recorder returns a per-solve recorder whose rows carry the given label
// (e.g. "p=0.0312"). The recorder is not safe for concurrent use — one
// recorder per solve, as PowerOptions.Observer prescribes.
func (t *Trace) Recorder(label string) *TraceRecorder {
	return &TraceRecorder{t: t, label: label}
}

// TraceRecorder records one solve's convergence stream into its Trace.
// Its method set matches core.Observer.
type TraceRecorder struct {
	t       *Trace
	label   string
	method  string
	steps   int
	pending TraceRow // last thinned-away step, flushed by a terminal Event
	hasPend bool
}

// Method labels subsequent rows with the solve method that produces them.
// The core solvers call it through their optional methodReporter hook at
// solve start, so adaptive sweeps that retry a point with another gear
// relabel the stream mid-trace.
func (r *TraceRecorder) Method(kind string) { r.method = kind }

// Step records a residual check, thinned to the Trace's every-N setting.
// A thinned-away step is held as pending so the trace never loses the final
// pre-convergence residual: when a terminal Event arrives, the last step is
// flushed even if it fell between every-N samples.
func (r *TraceRecorder) Step(iter int, lambda, residual float64) {
	r.steps++
	if r.t.every > 1 && r.steps%r.t.every != 0 {
		r.pending = TraceRow{Label: r.label, Iter: iter, Lambda: lambda, Residual: residual, Method: r.method}
		r.hasPend = true
		return
	}
	r.hasPend = false
	r.t.append(TraceRow{Label: r.label, Iter: iter, Lambda: lambda, Residual: residual, Method: r.method})
}

// Event records a solver lifecycle event (never thinned). Any event other
// than the opening "start" terminates the solve, so it first flushes the
// pending thinned step — the residual check the outcome was decided on.
func (r *TraceRecorder) Event(event string, iter int, lambda, residual float64) {
	if r.hasPend && event != "start" {
		r.t.append(r.pending)
		r.hasPend = false
	}
	r.t.append(TraceRow{Label: r.label, Iter: iter, Lambda: lambda, Residual: residual, Event: event, Method: r.method})
}

// WriteTSV renders the trace as tab-separated values with a header row.
func (t *Trace) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "label\titer\tlambda\tresidual\tevent\tmethod")
	for _, r := range t.Rows() {
		fmt.Fprintf(bw, "%s\t%d\t%.17g\t%.6g\t%s\t%s\n", r.Label, r.Iter, r.Lambda, r.Residual, r.Event, r.Method)
	}
	return bw.Flush()
}

// WriteJSONL renders the trace as one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Rows() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to path, choosing JSONL for a .jsonl (or
// .json) extension and TSV otherwise.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteTSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
