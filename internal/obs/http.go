package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the debug mux: /metrics (Prometheus text exposition of
// the default registry), /debug/vars (expvar, including the registry
// snapshot under "qs_solver"), the net/http/pprof endpoints under
// /debug/pprof/, and a trivial /healthz.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

var expvarOnce sync.Once

// publishExpvar exposes the default registry under /debug/vars exactly
// once (expvar.Publish panics on duplicates).
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("qs_solver", expvar.Func(func() any { return Default().Snapshot() }))
	})
}

// DebugServer is a running debug HTTP server. Close releases its listener
// and in-flight connections; earlier versions leaked the listener for the
// life of the process, which made repeated starts in one process (tests,
// embedding programs) accumulate sockets.
type DebugServer struct {
	addr string
	srv  *http.Server
}

// Addr returns the bound listen address (host:port).
func (s *DebugServer) Addr() string { return s.addr }

// Close shuts the server down, closing the listener and any active
// connections. Safe to call more than once.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Serve starts the debug HTTP server on addr (host:port; port 0 picks a
// free port). The caller owns the returned server and should Close it when
// done; tools that serve for the life of the process may ignore it.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	publishExpvar()
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{addr: ln.Addr().String(), srv: srv}, nil
}

// StartDebugServer is the one-call tool entry point behind the shared
// -debug-addr flag: it installs the solver metric hooks (EnableSolverMetrics)
// and starts the debug server.
func StartDebugServer(addr string) (*DebugServer, error) {
	EnableSolverMetrics()
	return Serve(addr)
}
