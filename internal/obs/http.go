package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// procStart anchors the /healthz uptime report.
var procStart = time.Now()

// Handler returns the debug mux: /metrics (Prometheus text exposition of
// the default registry), /debug/vars (expvar, including the registry
// snapshot under "qs_solver"), /debug/spans, /debug/flight, the
// net/http/pprof endpoints under /debug/pprof/, and /healthz.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
		if p := InstalledProfiler(); p != nil {
			_ = p.WriteHWCPrometheus(w)
		}
	})
	mux.HandleFunc("/debug/spans", serveSpans)
	mux.HandleFunc("/debug/flight", serveFlight)
	mux.HandleFunc("/debug/telemetry", serveTelemetry)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", serveHealthz)
	return mux
}

// healthzPayload identifies the deployment: build provenance (module
// version, VCS revision, dirty flag), uptime, and — when a flight is
// active — the run ID. Status stays "ok"/200 whenever the process can
// answer at all, so existing `curl -sf /healthz` probes keep working.
type healthzPayload struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Module        string  `json:"module,omitempty"`
	Version       string  `json:"module_version,omitempty"`
	Revision      string  `json:"vcs_revision,omitempty"`
	VCSTime       string  `json:"vcs_time,omitempty"`
	Dirty         bool    `json:"vcs_dirty,omitempty"`
	RunID         string  `json:"run_id,omitempty"`

	// Memory summary, so a health probe doubles as a cheap resource check.
	// RSS fields come from procfs and are omitted (with MemReason set) when
	// unavailable; the Go runtime fields work everywhere.
	RSSBytes      int64  `json:"rss_bytes,omitempty"`
	PeakRSSBytes  int64  `json:"rss_peak_bytes,omitempty"`
	MemReason     string `json:"mem_reason,omitempty"`
	HeapBytes     uint64 `json:"heap_bytes"`
	Goroutines    int    `json:"goroutines"`
	LastGCPauseNS uint64 `json:"last_gc_pause_ns"`
	Telemetry     bool   `json:"telemetry_active"`
}

func serveHealthz(w http.ResponseWriter, _ *http.Request) {
	p := healthzPayload{
		Status:        "ok",
		UptimeSeconds: time.Since(procStart).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Telemetry:     ActiveSampler() != nil,
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.HeapBytes = ms.HeapAlloc
	if ms.NumGC > 0 {
		p.LastGCPauseNS = ms.PauseNs[(ms.NumGC+255)%256]
	}
	if mem := ReadMemStatus(); mem.Available {
		p.RSSBytes = mem.RSSBytes
		p.PeakRSSBytes = mem.PeakRSSBytes
	} else {
		p.MemReason = mem.Reason
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.GoVersion = bi.GoVersion
		p.Module = bi.Main.Path
		p.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.Revision = s.Value
			case "vcs.time":
				p.VCSTime = s.Value
			case "vcs.modified":
				p.Dirty = s.Value == "true"
			}
		}
	}
	if fl := ActiveFlight(); fl != nil {
		p.RunID = fl.RunID()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p)
}

// serveFlight serves the live flight-recorder status: manifest, ring
// occupancy, recent decisions, dumped bundles. With no flight active it
// reports active=false rather than an error. ?dump=1 additionally dumps a
// bundle (reason "manual") and names it in the response.
func serveFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fl := ActiveFlight()
	if fl == nil {
		_ = json.NewEncoder(w).Encode(flightStatus{Active: false})
		return
	}
	if r.URL.Query().Get("dump") == "1" {
		_, _ = fl.DumpBundle("manual", map[string]any{"trigger": "/debug/flight?dump=1"})
	}
	_ = json.NewEncoder(w).Encode(fl.status())
}

// spansPayload is the /debug/spans JSON shape: the live profiler's exact
// per-site aggregate plus its wall clock and hardware-counter status.
type spansPayload struct {
	Active     bool       `json:"active"`
	RunID      string     `json:"run_id,omitempty"`
	WallNs     int64      `json:"wall_ns,omitempty"`
	Dropped    int64      `json:"dropped_events,omitempty"`
	HWCActive  bool       `json:"hwc_active,omitempty"`
	HWCReason  string     `json:"hwc_reason,omitempty"`
	HWCEvents  []string   `json:"hwc_events,omitempty"`
	HWCSamples int64      `json:"hwc_samples,omitempty"`
	HWCDropped int64      `json:"hwc_dropped,omitempty"`
	Spans      []spanJSON `json:"spans"`
}

type spanJSON struct {
	Layer      string        `json:"layer"`
	Name       string        `json:"span"`
	Count      int64         `json:"count"`
	TotalNs    int64         `json:"total_ns"`
	SelfNs     int64         `json:"self_ns"`
	HWCSamples int64         `json:"hwc_samples,omitempty"`
	IPC        float64       `json:"ipc,omitempty"`
	MissRate   float64       `json:"cache_miss_rate,omitempty"`
	Counters   []CounterStat `json:"counters,omitempty"`
}

// serveSpans serves the live span-profile table: JSON by default,
// the aligned text table (WriteTable) with ?format=text. With no
// profiler installed it reports active=false rather than an error, so
// smoke probes can hit it unconditionally.
func serveSpans(w http.ResponseWriter, r *http.Request) {
	p := InstalledProfiler()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if p == nil {
			fmt.Fprintln(w, "no span profiler installed (run with -spans or -hwc)")
			return
		}
		_ = p.WriteTable(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	payload := spansPayload{Spans: []spanJSON{}}
	if p != nil {
		payload.Active = true
		payload.RunID = p.RunID()
		payload.WallNs = p.Wall().Nanoseconds()
		payload.Dropped = p.Dropped()
		payload.HWCActive = p.HWCActive()
		payload.HWCReason = p.HWCReason()
		payload.HWCEvents = p.HWCEventNames()
		payload.HWCSamples = p.HWCSamples()
		payload.HWCDropped = p.HWCDropped()
		for _, s := range p.Stats() {
			payload.Spans = append(payload.Spans, spanJSON{
				Layer: s.Layer, Name: s.Name, Count: s.Count,
				TotalNs: s.Total.Nanoseconds(), SelfNs: s.Self.Nanoseconds(),
				HWCSamples: s.HWCSamples,
				IPC:        s.IPC(), MissRate: s.CacheMissRate(),
				Counters: s.HWC,
			})
		}
	}
	_ = json.NewEncoder(w).Encode(payload)
}

var expvarOnce sync.Once

// publishExpvar exposes the default registry under /debug/vars exactly
// once (expvar.Publish panics on duplicates).
func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("qs_solver", expvar.Func(func() any { return Default().Snapshot() }))
		expvar.Publish("qs_hwc", expvar.Func(func() any {
			p := InstalledProfiler()
			if p == nil {
				return map[string]any{"active": false}
			}
			return map[string]any{
				"active":  p.HWCActive(),
				"reason":  p.HWCReason(),
				"events":  p.HWCEventNames(),
				"samples": p.HWCSamples(),
				"dropped": p.HWCDropped(),
			}
		}))
	})
}

// DebugServer is a running debug HTTP server. Close releases its listener
// and in-flight connections; earlier versions leaked the listener for the
// life of the process, which made repeated starts in one process (tests,
// embedding programs) accumulate sockets.
type DebugServer struct {
	addr string
	srv  *http.Server
}

// Addr returns the bound listen address (host:port).
func (s *DebugServer) Addr() string { return s.addr }

// Close shuts the server down, closing the listener and any active
// connections. Safe to call more than once.
func (s *DebugServer) Close() error { return s.srv.Close() }

// Serve starts the debug HTTP server on addr (host:port; port 0 picks a
// free port). The caller owns the returned server and should Close it when
// done; tools that serve for the life of the process may ignore it.
func Serve(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	publishExpvar()
	srv := &http.Server{Handler: Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{addr: ln.Addr().String(), srv: srv}, nil
}

// StartDebugServer is the one-call tool entry point behind the shared
// -debug-addr flag: it installs the solver metric hooks (EnableSolverMetrics)
// and starts the debug server.
func StartDebugServer(addr string) (*DebugServer, error) {
	EnableSolverMetrics()
	return Serve(addr)
}
