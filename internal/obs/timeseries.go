package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Continuous telemetry: fixed-capacity time-series rings fed by a
// background sampler goroutine (sampler.go). A TimeSeries retains the most
// recent Capacity (timestamp, value) points with a lock-free single-writer
// append — the sampler tick stores two atomics per point — and serves
// windowed aggregate queries (min/max/mean/quantile, and for cumulative
// series a per-second rate) to /debug/telemetry, qs-top and the
// flight-recorder bundles. Readers never block the writer: a snapshot
// re-validates the append cursor after copying and drops any points the
// writer overwrote mid-read, so a scrape racing a tick loses at most the
// oldest points of the window, never coherence.

// SeriesKind distinguishes how a series' values aggregate over a window.
type SeriesKind int

const (
	// SeriesGauge values are instantaneous levels (RSS bytes, queue depth):
	// windows aggregate by min/max/mean/quantile.
	SeriesGauge SeriesKind = iota
	// SeriesCumulative values are monotone running totals (points solved,
	// chunks stolen): the interesting window aggregate is the rate, the
	// increase per second between the window's earliest and latest points.
	SeriesCumulative
)

func (k SeriesKind) String() string {
	if k == SeriesCumulative {
		return "cumulative"
	}
	return "gauge"
}

// Point is one retained observation.
type Point struct {
	// T is the observation time in nanoseconds since the Unix epoch.
	T int64 `json:"unix_ns"`
	// V is the observed value.
	V float64 `json:"value"`
}

// TimeSeries is a fixed-capacity ring of timestamped observations with one
// writer (the sampler goroutine) and any number of concurrent readers.
type TimeSeries struct {
	name string
	unit string
	kind SeriesKind

	ts []atomic.Int64  // unix nanos per slot
	vs []atomic.Uint64 // float64 bits per slot
	n  atomic.Int64    // total points ever appended (append cursor)
}

// NewTimeSeries returns an empty series retaining the last capacity points
// (capacity < 16 selects 16). unit is a display hint ("bytes", "1", "1/s").
func NewTimeSeries(name, unit string, kind SeriesKind, capacity int) *TimeSeries {
	if capacity < 16 {
		capacity = 16
	}
	return &TimeSeries{
		name: name, unit: unit, kind: kind,
		ts: make([]atomic.Int64, capacity),
		vs: make([]atomic.Uint64, capacity),
	}
}

// Name returns the series name.
func (s *TimeSeries) Name() string { return s.name }

// Unit returns the series' display unit.
func (s *TimeSeries) Unit() string { return s.unit }

// Kind returns the series kind.
func (s *TimeSeries) Kind() SeriesKind { return s.kind }

// Capacity returns the ring capacity.
func (s *TimeSeries) Capacity() int { return len(s.ts) }

// Len returns the number of currently retained points.
func (s *TimeSeries) Len() int {
	n := s.n.Load()
	if n > int64(len(s.ts)) {
		return len(s.ts)
	}
	return int(n)
}

// Total returns the number of points ever appended.
func (s *TimeSeries) Total() int64 { return s.n.Load() }

// Append records (t, v), overwriting the oldest point when full. NaN values
// are dropped (they would poison every window aggregate). Append is
// lock-free but single-writer: concurrent appends require external
// serialization (the sampler goroutine is the only writer in practice).
func (s *TimeSeries) Append(t time.Time, v float64) {
	if math.IsNaN(v) {
		return
	}
	n := s.n.Load()
	i := int(n % int64(len(s.ts)))
	s.ts[i].Store(t.UnixNano())
	s.vs[i].Store(math.Float64bits(v))
	// The release store readers synchronize on: a point is visible only
	// after both its slots are written.
	s.n.Store(n + 1)
}

// Snapshot copies out the retained points in append order. Points the
// writer overwrote while the copy was in flight are dropped from the front,
// so the result is always coherent (every returned point was fully written
// and never torn).
func (s *TimeSeries) Snapshot() []Point {
	for {
		n0 := s.n.Load()
		count := n0
		if count > int64(len(s.ts)) {
			count = int64(len(s.ts))
		}
		if count == 0 {
			return nil
		}
		out := make([]Point, 0, count)
		for k := n0 - count; k < n0; k++ {
			i := int(k % int64(len(s.ts)))
			out = append(out, Point{T: s.ts[i].Load(), V: math.Float64frombits(s.vs[i].Load())})
		}
		n1 := s.n.Load()
		if n1 == n0 {
			return out
		}
		// The writer advanced mid-copy: points with index < n1-cap may have
		// been overwritten (possibly torn). Drop them; retry if the writer
		// lapped the whole copy.
		valid := n1 - int64(len(s.ts))
		if valid <= n0-count {
			return out
		}
		drop := valid - (n0 - count)
		if drop < count {
			return out[drop:]
		}
		// Fully lapped (reader descheduled for cap ticks): start over.
	}
}

// WindowStats are the aggregates of a series over one query window.
// Quantiles and rate are computed from the retained points whose timestamp
// falls inside the window; out-of-order timestamps are tolerated (points
// are filtered and ranked by timestamp, not ring position).
type WindowStats struct {
	Points int     `json:"points"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	// RatePerSec is the value increase per second between the window's
	// earliest and latest timestamps — meaningful for cumulative series
	// (points/sec, steals/sec). 0 when the window spans < 2 distinct times.
	RatePerSec float64 `json:"rate_per_sec"`
	// SpanSeconds is the wall time between the earliest and latest points.
	SpanSeconds float64 `json:"span_seconds"`
}

// Last returns the most recently appended point, or false when empty.
func (s *TimeSeries) Last() (Point, bool) {
	pts := s.Snapshot()
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

// Window aggregates the retained points observed at or after cutoff.
// A zero cutoff aggregates everything retained. An empty window returns
// ok == false.
func (s *TimeSeries) Window(cutoff time.Time) (WindowStats, bool) {
	return aggregate(s.Snapshot(), cutoff.UnixNano())
}

// aggregate computes WindowStats over the points with T >= cutoffNS.
func aggregate(pts []Point, cutoffNS int64) (WindowStats, bool) {
	in := pts[:0:0]
	for _, p := range pts {
		if p.T >= cutoffNS {
			in = append(in, p)
		}
	}
	if len(in) == 0 {
		return WindowStats{}, false
	}
	// Rank by timestamp: the ring is append-ordered, but sources with their
	// own clocks (imported snapshots, merged rings) may interleave.
	sort.SliceStable(in, func(i, j int) bool { return in[i].T < in[j].T })
	st := WindowStats{
		Points: len(in),
		First:  in[0].V,
		Last:   in[len(in)-1].V,
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
	sum := 0.0
	vals := make([]float64, len(in))
	for i, p := range in {
		vals[i] = p.V
		sum += p.V
		if p.V < st.Min {
			st.Min = p.V
		}
		if p.V > st.Max {
			st.Max = p.V
		}
	}
	st.Mean = sum / float64(len(in))
	sort.Float64s(vals)
	st.P50 = quantile(vals, 0.50)
	st.P99 = quantile(vals, 0.99)
	spanNS := in[len(in)-1].T - in[0].T
	st.SpanSeconds = float64(spanNS) / 1e9
	if spanNS > 0 {
		st.RatePerSec = (st.Last - st.First) / st.SpanSeconds
	}
	return st, true
}

// quantile returns the q-quantile of sorted vals by linear interpolation.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	if len(vals) == 1 {
		return vals[0]
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	if lo >= len(vals)-1 {
		return vals[len(vals)-1]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// seriesPointJSON is the JSONL export shape: one line per point, tagged
// with its series so a bundle's telemetry.jsonl is self-describing.
type seriesPointJSON struct {
	Series string  `json:"series"`
	Kind   string  `json:"kind"`
	Unit   string  `json:"unit,omitempty"`
	UnixMS int64   `json:"unix_ms"`
	Value  float64 `json:"value"`
}

// WriteJSONL writes the retained points of every series as one JSON object
// per line, in series order then time order — the flight-bundle and CI
// artifact format.
func WriteSeriesJSONL(w io.Writer, series []*TimeSeries) error {
	bw := bufio.NewWriter(w)
	for _, s := range series {
		for _, p := range s.Snapshot() {
			// Hand-rolled fixed shape: no reflection surprises, stable field
			// order for line-oriented tooling.
			j := seriesPointJSON{
				Series: s.Name(), Kind: s.Kind().String(), Unit: s.Unit(),
				UnixMS: p.T / 1e6, Value: p.V,
			}
			if _, err := fmt.Fprintf(bw, `{"series":%q,"kind":%q,"unit":%q,"unix_ms":%d,"value":%g}`+"\n",
				j.Series, j.Kind, j.Unit, j.UnixMS, j.Value); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Sparkline renders vals as a fixed-width Unicode block sparkline, the
// ?format=text and qs-top cell renderer. Width ≤ 0 selects len(vals);
// longer inputs are tail-truncated, shorter ones left-padded with spaces.
func Sparkline(vals []float64, width int) string {
	const blocks = "▁▂▃▄▅▆▇█"
	if width <= 0 {
		width = len(vals)
	}
	if width == 0 {
		return ""
	}
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b []rune
	for i := 0; i < width-len(vals); i++ {
		b = append(b, ' ')
	}
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * 7.999)
		}
		if idx < 0 {
			idx = 0
		}
		if idx > 7 {
			idx = 7
		}
		b = append(b, []rune(blocks)[idx])
	}
	return string(b)
}

// seriesSet is the sampler's ordered, name-indexed series collection.
type seriesSet struct {
	mu     sync.Mutex
	order  []*TimeSeries
	byName map[string]*TimeSeries
}

func (ss *seriesSet) add(s *TimeSeries) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.byName == nil {
		ss.byName = make(map[string]*TimeSeries)
	}
	if _, dup := ss.byName[s.name]; dup {
		return
	}
	ss.byName[s.name] = s
	ss.order = append(ss.order, s)
}

func (ss *seriesSet) all() []*TimeSeries {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*TimeSeries, len(ss.order))
	copy(out, ss.order)
	return out
}

func (ss *seriesSet) get(name string) *TimeSeries {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.byName[name]
}
