package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNewManifestStampsIdentity(t *testing.T) {
	m := NewManifest(ManifestWorkload{
		Tool: "qs-test", Args: []string{"-nu", "14"},
		Flags: map[string]string{"nu": "14"},
		Nu:    14, Method: "power", Workers: 2, PGrid: []float64{0.01, 0.02},
	})
	if m.Schema != ManifestSchema {
		t.Fatalf("schema %d, want %d", m.Schema, ManifestSchema)
	}
	if m.RunID == "" || m.Time == "" || m.GoVersion == "" {
		t.Fatalf("missing identity fields: %+v", m)
	}
	if m.Tool != "qs-test" || m.Nu != 14 || m.Workers != 2 || len(m.PGrid) != 2 {
		t.Fatalf("workload fields not carried: %+v", m)
	}
	if m.NumCPU < 1 || m.GOMAXPROCS < 1 {
		t.Fatalf("host shape not probed: %+v", m)
	}
	// The fast-path probes must state a reason whenever unavailable.
	if !m.AVX2 && m.AVX2Reason == "" {
		t.Error("AVX2 unavailable without a degradation reason")
	}
	if !m.HWC && m.HWCReason == "" {
		t.Error("HWC unavailable without a degradation reason")
	}
}

func TestNewRunIDUnique(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if a == b {
		t.Fatalf("consecutive run IDs collide: %s", a)
	}
	if strings.ContainsAny(a, "/\\ :") {
		t.Fatalf("run ID %q is not file-name safe", a)
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested", ManifestName)
	m := NewManifest(ManifestWorkload{Tool: "qs-test", Nu: 10})
	if err := m.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err := ReadManifestFile(path)
	if err != nil {
		t.Fatalf("ReadManifestFile: %v", err)
	}
	if back.RunID != m.RunID || back.Tool != m.Tool || back.Nu != m.Nu {
		t.Fatalf("round-trip = %+v, want %+v", back, m)
	}
}

func TestReadManifestFileRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body string
	}{
		{"future-schema", `{"schema": 99, "run_id": "x", "go_version": "go"}`},
		{"zero-schema", `{"schema": 0, "run_id": "x"}`},
		{"missing-run-id", `{"schema": 1}`},
		{"not-json", `schema: 1`},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name+".json")
		if err := os.WriteFile(path, []byte(c.body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadManifestFile(path); err == nil {
			t.Errorf("%s: accepted invalid manifest", c.name)
		}
	}
}
