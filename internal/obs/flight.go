package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
)

// Flight recorder: the black box of a solver run. While a flight is
// active it retains — in fixed-size rings, with zero allocation on the
// hot paths — the most recent span events, thinned convergence-trace
// rows, method/escalation decisions, and periodic metric snapshots, and a
// numerical-health watchdog goroutine scans the live solves for
// iteration-progress stalls, NaN/Inf residuals, and phases running far
// over their committed PERF-ledger share. Escalation is a ladder: metrics
// counter → structured warning line → diagnostic bundle dump (manifest +
// ring contents + goroutine dump + profile table + Chrome trace) into a
// tar-friendly directory. Bundles are also dumped on ConvergenceError /
// GapUnresolvedError (DumpOnError), worker panics (the batch recover
// hook), SIGQUIT/SIGUSR1 (flight_signal_unix.go), and on demand.
//
// Nothing here runs unless a flight is installed: the only always-on cost
// is one atomic pointer load at the existing hook points, the same
// nil-by-default discipline as wire.go.

// FlightSpan is one retained span event, a compact copy of SpanRow with
// JSON tags for bundle export. Times are relative to the span profiler's
// epoch, like SpanRow.
type FlightSpan struct {
	Layer   string `json:"layer"`
	Name    string `json:"name"`
	TID     int64  `json:"tid"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	A1      int64  `json:"a1,omitempty"`
	A2      int64  `json:"a2,omitempty"`
}

// Decision is one retained method/escalation decision: which gear a solve
// chose, how it terminated, what the watchdog observed.
type Decision struct {
	OffsetMS float64 `json:"offset_ms"` // since flight start
	Kind     string  `json:"kind"`      // "method", "outcome", "watchdog", "bundle"
	Label    string  `json:"label,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	Iter     int     `json:"iter,omitempty"`
}

// MetricSnapshot is one periodic capture of the default registry.
type MetricSnapshot struct {
	OffsetMS float64        `json:"offset_ms"`
	Values   map[string]any `json:"values"`
}

// ring is a fixed-capacity overwrite-oldest buffer. push never allocates;
// snapshot copies out in append order.
type ring[T any] struct {
	mu    sync.Mutex
	buf   []T
	next  int
	count int
	total int64
}

func newRing[T any](size int) *ring[T] {
	if size < 1 {
		size = 1
	}
	return &ring[T]{buf: make([]T, size)}
}

func (r *ring[T]) push(v T) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
	r.mu.Unlock()
}

func (r *ring[T]) snapshot() []T {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]T, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		j := start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	return out
}

func (r *ring[T]) totals() (retained int, allTime int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count, r.total
}

// PhaseShare is one committed baseline share: the fraction of wall time a
// span site is expected to take (from the PERF ledger). The watchdog's
// slow-phase detector flags live shares far above it.
type PhaseShare struct {
	Layer string  `json:"layer"`
	Name  string  `json:"name"`
	Share float64 `json:"share"`
}

// WatchdogConfig tunes the numerical-health watchdog.
type WatchdogConfig struct {
	// Interval between health scans; 0 selects 500ms, < 0 disables the
	// watchdog goroutine entirely.
	Interval time.Duration
	// StallWall flags a live solve whose best residual has not improved
	// for this much wall time; 0 selects 30s, < 0 disables the criterion.
	StallWall time.Duration
	// StallChecks flags a live solve with this many residual checks since
	// the last improvement; 0 selects 5000, < 0 disables the criterion.
	StallChecks int
	// WarnAfter and DumpAfter are the escalation rungs, in consecutive
	// detections (watchdog ticks for stalls/slow phases): the counter
	// increments on every detection, the structured warning fires at
	// WarnAfter (0 selects 2), the bundle dump at DumpAfter (0 selects 4).
	WarnAfter int
	DumpAfter int
	// Baseline holds the committed per-phase shares the slow-phase
	// detector compares against; empty disables it. SlowFactor is the
	// multiple of the baseline share that flags a phase (0 selects 3);
	// MinShare ignores phases below this live share (0 selects 0.05).
	Baseline   []PhaseShare
	SlowFactor float64
	MinShare   float64
	// Log receives structured warning lines (JSON objects); nil writes
	// them to stderr.
	Log func(line string)
}

// FlightConfig configures a flight recording. The zero value is usable:
// default ring sizes, watchdog defaults, bundles under "flight-bundles".
type FlightConfig struct {
	// Dir is where diagnostic bundles are dumped; "" selects
	// "flight-bundles" under the current directory.
	Dir string
	// Ring capacities; 0 selects the defaults (spans 4096, trace 4096,
	// decisions 1024, metrics 256).
	SpanRing, TraceRing, DecisionRing, MetricRing int
	// TraceEvery thins Step rows entering the trace ring (every ≤ 1 keeps
	// all; 0 selects 16). Event rows are never thinned.
	TraceEvery int
	// MetricPeriod is the metric-snapshot cadence; 0 selects 2s, < 0
	// disables snapshots.
	MetricPeriod time.Duration
	// MaxBundles caps dumped bundles per run (0 selects 8).
	MaxBundles int
	Watchdog   WatchdogConfig
	// DisableSignals skips the SIGUSR1/SIGQUIT dump handler;
	// DisablePanicHook skips the batch-worker recover hook.
	DisableSignals   bool
	DisablePanicHook bool
}

func (c *FlightConfig) fill() {
	if c.Dir == "" {
		c.Dir = "flight-bundles"
	}
	if c.SpanRing == 0 {
		c.SpanRing = 4096
	}
	if c.TraceRing == 0 {
		c.TraceRing = 4096
	}
	if c.DecisionRing == 0 {
		c.DecisionRing = 1024
	}
	if c.MetricRing == 0 {
		c.MetricRing = 256
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 16
	}
	if c.MetricPeriod == 0 {
		c.MetricPeriod = 2 * time.Second
	}
	if c.MaxBundles == 0 {
		c.MaxBundles = 8
	}
	w := &c.Watchdog
	if w.Interval == 0 {
		w.Interval = 500 * time.Millisecond
	}
	if w.StallWall == 0 {
		w.StallWall = 30 * time.Second
	}
	if w.StallChecks == 0 {
		w.StallChecks = 5000
	}
	if w.WarnAfter == 0 {
		w.WarnAfter = 2
	}
	if w.DumpAfter == 0 {
		w.DumpAfter = 4
	}
	if w.SlowFactor == 0 {
		w.SlowFactor = 3
	}
	if w.MinShare == 0 {
		w.MinShare = 0.05
	}
}

// BundleReasons is the fixed label set of qs_flight_bundles_total.
var BundleReasons = []string{
	"stall", "nan", "slow_phase", "convergence_error", "gap_unresolved",
	"panic", "signal", "manual", "other",
}

// FlightRecorder is one active flight recording. Create with StartFlight;
// safe for concurrent use.
type FlightRecorder struct {
	manifest *Manifest
	cfg      FlightConfig
	epoch    time.Time

	spans     *ring[FlightSpan]
	trace     *ring[TraceRow]
	decisions *ring[Decision]
	metrics   *ring[MetricSnapshot]

	mu        sync.Mutex
	solves    map[*FlightSolveRecorder]struct{}
	bundles   []string
	seq       int
	onceDump  map[string]bool // reason → dumped (ladder reasons dump once per run)
	slowTicks int
	slowWarn  bool

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mStalls, mNaNs, mSlow *Counter
	mBundles              map[string]*Counter
}

var activeFlight atomic.Pointer[FlightRecorder]

// ActiveFlight returns the installed flight recorder, nil when no flight
// is active. The disabled cost at every tee point is this one atomic load.
func ActiveFlight() *FlightRecorder { return activeFlight.Load() }

// StartFlight installs a flight recording for the run described by m and
// returns it. Only one flight is active at a time; starting a new one
// supersedes the previous. Call Stop when the run ends.
func StartFlight(m *Manifest, cfg FlightConfig) *FlightRecorder {
	cfg.fill()
	r := Default()
	f := &FlightRecorder{
		manifest:  m,
		cfg:       cfg,
		epoch:     time.Now(),
		spans:     newRing[FlightSpan](cfg.SpanRing),
		trace:     newRing[TraceRow](cfg.TraceRing),
		decisions: newRing[Decision](cfg.DecisionRing),
		metrics:   newRing[MetricSnapshot](cfg.MetricRing),
		solves:    make(map[*FlightSolveRecorder]struct{}),
		onceDump:  make(map[string]bool),
		stopCh:    make(chan struct{}),
		mStalls:   r.Counter("qs_flight_watchdog_stalls_total", "Watchdog stall detections (one per scan of a stalled solve)."),
		mNaNs:     r.Counter("qs_flight_watchdog_nan_total", "Watchdog NaN/Inf residual detections."),
		mSlow:     r.Counter("qs_flight_watchdog_slow_phases_total", "Watchdog slow-phase detections against the PERF-ledger baseline."),
		mBundles:  make(map[string]*Counter, len(BundleReasons)),
	}
	for _, reason := range BundleReasons {
		f.mBundles[reason] = r.Counter(
			`qs_flight_bundles_total{reason="`+reason+`"}`,
			"Diagnostic bundles dumped by trigger reason.")
	}
	r.Gauge(`qs_flight_run_info{run_id="`+EscapeLabel(m.RunID)+`"}`,
		"Identity of the flight-recorded run (1 while its process runs).").Set(1)
	if p := InstalledProfiler(); p != nil {
		p.SetRunID(m.RunID)
	}
	activeFlight.Store(f)
	if !cfg.DisablePanicHook {
		batch.SetPanicHook(func(task int, recovered any, stack []byte) {
			f.dumpPanic(task, recovered, stack)
		})
	}
	if !cfg.DisableSignals {
		f.watchSignals()
	}
	if cfg.Watchdog.Interval > 0 {
		f.wg.Add(1)
		go f.watchdogLoop()
	}
	if cfg.MetricPeriod > 0 {
		f.wg.Add(1)
		go f.metricLoop()
	}
	return f
}

// Stop ends the recording: uninstalls the flight (if it is the active
// one), stops the watchdog and snapshot goroutines, and releases the
// signal and panic hooks. Safe to call more than once. The rings stay
// readable after Stop.
func (f *FlightRecorder) Stop() {
	f.stopOnce.Do(func() {
		if activeFlight.Load() == f {
			activeFlight.Store(nil)
			if !f.cfg.DisablePanicHook {
				batch.SetPanicHook(nil)
			}
		}
		close(f.stopCh)
	})
	f.wg.Wait()
}

// RunID returns the run identifier of the flight's manifest.
func (f *FlightRecorder) RunID() string { return f.manifest.RunID }

// Manifest returns the run manifest.
func (f *FlightRecorder) Manifest() *Manifest { return f.manifest }

// Bundles returns the directories of the bundles dumped so far.
func (f *FlightRecorder) Bundles() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.bundles))
	copy(out, f.bundles)
	return out
}

// noteSpan retains one completed span event. Called by SpanProfiler.push
// under the profiler mutex; the ring has its own lock and the ordering
// profiler → ring is acyclic.
func (f *FlightRecorder) noteSpan(r SpanRow) {
	f.spans.push(FlightSpan{
		Layer: r.Layer, Name: r.Name, TID: r.TID,
		StartNS: int64(r.Start), DurNS: int64(r.Dur), A1: r.A1, A2: r.A2,
	})
}

// NoteDecision retains one method/escalation decision row.
func (f *FlightRecorder) NoteDecision(kind, label, detail string, iter int) {
	f.decisions.push(Decision{
		OffsetMS: f.offsetMS(), Kind: kind, Label: label, Detail: detail, Iter: iter,
	})
}

func (f *FlightRecorder) offsetMS() float64 {
	return float64(time.Since(f.epoch).Nanoseconds()) / 1e6
}

// Observer returns a per-solve recorder for the labelled solve (e.g.
// "p=0.0312"): it feeds the trace ring (thinned) and registers the solve
// with the watchdog until a terminal event arrives. The recorder's method
// set matches core.Observer plus the optional Method extension, so it tees
// into PowerOptions.Observer and SweepOptions.Observe directly.
func (f *FlightRecorder) Observer(label string) *FlightSolveRecorder {
	r := &FlightSolveRecorder{
		f: f, label: label,
		best:        math.Inf(1),
		started:     time.Now(),
		lastImprove: time.Now(),
	}
	f.register(r)
	return r
}

// register adds r to the watchdog's watch set (idempotent).
func (f *FlightRecorder) register(r *FlightSolveRecorder) {
	f.mu.Lock()
	f.solves[r] = struct{}{}
	f.mu.Unlock()
}

func (f *FlightRecorder) unregister(r *FlightSolveRecorder) {
	f.mu.Lock()
	delete(f.solves, r)
	f.mu.Unlock()
}

// FlightSolveRecorder records one solve's convergence stream into the
// flight rings and exposes its progress to the watchdog. Step/Event match
// core.Observer; Method matches the optional methodReporter extension.
type FlightSolveRecorder struct {
	f     *FlightRecorder
	label string

	mu           sync.Mutex
	method       string
	steps        int
	iter         int
	residual     float64
	best         float64
	sinceImprove int
	started      time.Time
	lastImprove  time.Time
	pending      TraceRow
	hasPend      bool
	done         bool
	nanSeen      bool
	stallTicks   int
	stallWarned  bool
}

// Method labels subsequent rows with the solve gear and retains the
// method decision.
func (r *FlightSolveRecorder) Method(kind string) {
	r.mu.Lock()
	r.method = kind
	iter := r.iter
	r.mu.Unlock()
	r.f.NoteDecision("method", r.label, kind, iter)
}

// Step records a residual check: watchdog progress bookkeeping plus a
// thinned trace-ring row. NaN/Inf residuals escalate immediately.
func (r *FlightSolveRecorder) Step(iter int, lambda, residual float64) {
	bad := math.IsNaN(residual) || math.IsInf(residual, 0) ||
		math.IsNaN(lambda) || math.IsInf(lambda, 0)
	r.mu.Lock()
	r.steps++
	r.iter = iter
	r.residual = residual
	if residual < r.best*(1-1e-6) {
		r.best = residual
		r.sinceImprove = 0
		r.lastImprove = time.Now()
	} else {
		r.sinceImprove++
	}
	row := TraceRow{
		RunID: r.f.manifest.RunID, Label: r.label,
		Iter: iter, Lambda: lambda, Residual: residual, Method: r.method,
	}
	thin := r.f.cfg.TraceEvery > 1 && r.steps%r.f.cfg.TraceEvery != 0
	if thin {
		r.pending = row
		r.hasPend = true
	} else {
		r.hasPend = false
	}
	escalate := bad && !r.nanSeen
	if bad {
		r.nanSeen = true
	}
	r.mu.Unlock()
	if !thin {
		r.f.trace.push(row)
	}
	if escalate {
		r.f.escalateNaN(r.label, iter, residual)
	}
}

// Event records a lifecycle event (never thinned), flushing the pending
// thinned step first on terminal events, and unregisters the solve from
// the watchdog when the event terminates it.
func (r *FlightSolveRecorder) Event(event string, iter int, lambda, residual float64) {
	r.mu.Lock()
	method := r.method
	flush := r.hasPend && event != core.EventStart
	pending := r.pending
	r.hasPend = false
	terminal := event != core.EventStart
	if terminal {
		r.done = true
	} else if r.done {
		// The observer is being reused for a fresh solve (repeated
		// benchmark reps on one model): re-arm the watchdog state.
		r.done, r.nanSeen = false, false
		r.steps, r.sinceImprove, r.stallTicks = 0, 0, 0
		r.stallWarned = false
		r.best = math.Inf(1)
		r.started, r.lastImprove = time.Now(), time.Now()
	}
	r.mu.Unlock()
	if !terminal {
		// Idempotent for the first start; re-registers a reused observer
		// that a previous solve's terminal event unregistered.
		r.f.register(r)
	}
	if flush {
		r.f.trace.push(pending)
	}
	r.f.trace.push(TraceRow{
		RunID: r.f.manifest.RunID, Label: r.label,
		Iter: iter, Lambda: lambda, Residual: residual, Event: event, Method: method,
	})
	if terminal {
		r.f.NoteDecision("outcome", r.label, event, iter)
		r.f.unregister(r)
	}
}

// escalateNaN is the immediate full escalation for a NaN/Inf residual:
// counter, structured warning, bundle (once per run).
func (f *FlightRecorder) escalateNaN(label string, iter int, residual float64) {
	f.mNaNs.Inc()
	f.warn(map[string]any{
		"kind": "nan", "label": label, "iter": iter, "residual": fmt.Sprint(residual),
	})
	f.dumpOnce("nan", map[string]any{"label": label, "iter": iter})
}

// warn emits one structured (JSON-object) warning line and retains it as
// a watchdog decision.
func (f *FlightRecorder) warn(fields map[string]any) {
	fields["ts"] = time.Now().UTC().Format(time.RFC3339Nano)
	fields["run_id"] = f.manifest.RunID
	line, err := json.Marshal(fields)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"run_id":%q,"kind":"warn_marshal_failed"}`, f.manifest.RunID))
	}
	if f.cfg.Watchdog.Log != nil {
		f.cfg.Watchdog.Log(string(line))
	} else {
		fmt.Fprintf(os.Stderr, "qs-flight: %s\n", line)
	}
	detail, _ := fields["kind"].(string)
	label, _ := fields["label"].(string)
	f.NoteDecision("watchdog", label, detail, 0)
}

// dumpOnce dumps a bundle for a ladder reason at most once per run.
func (f *FlightRecorder) dumpOnce(reason string, extra map[string]any) {
	f.mu.Lock()
	if f.onceDump[reason] {
		f.mu.Unlock()
		return
	}
	f.onceDump[reason] = true
	f.mu.Unlock()
	_, _ = f.DumpBundle(reason, extra)
}

// watchdogLoop is the health scan: every Interval it checks live solves
// for stalls and the installed profiler for slow phases, climbing the
// escalation ladder per detector.
func (f *FlightRecorder) watchdogLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.Watchdog.Interval)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			f.scanSolves()
			f.scanPhases()
		}
	}
}

func (f *FlightRecorder) scanSolves() {
	w := f.cfg.Watchdog
	f.mu.Lock()
	live := make([]*FlightSolveRecorder, 0, len(f.solves))
	for r := range f.solves {
		live = append(live, r)
	}
	f.mu.Unlock()
	for _, r := range live {
		r.mu.Lock()
		stalled := false
		if !r.done && r.steps > 0 {
			if w.StallChecks > 0 && r.sinceImprove >= w.StallChecks {
				stalled = true
			}
			if w.StallWall > 0 && time.Since(r.lastImprove) >= w.StallWall {
				stalled = true
			}
		}
		var warnFields map[string]any
		dump := false
		if stalled {
			r.stallTicks++
			if r.stallTicks == w.WarnAfter || (r.stallTicks >= w.WarnAfter && !r.stallWarned) {
				r.stallWarned = true
				warnFields = map[string]any{
					"kind": "stall", "label": r.label, "iter": r.iter,
					"residual": fmt.Sprint(r.residual), "best": fmt.Sprint(r.best),
					"since_improvement":    r.sinceImprove,
					"since_improvement_ms": time.Since(r.lastImprove).Milliseconds(),
					"method":               r.method,
				}
			}
			dump = r.stallTicks >= w.DumpAfter
		} else {
			r.stallTicks = 0
		}
		label, iter := r.label, r.iter
		r.mu.Unlock()
		if stalled {
			f.mStalls.Inc()
		}
		if warnFields != nil {
			f.warn(warnFields)
		}
		if dump {
			f.dumpOnce("stall", map[string]any{"label": label, "iter": iter})
		}
	}
}

func (f *FlightRecorder) scanPhases() {
	w := f.cfg.Watchdog
	if len(w.Baseline) == 0 {
		return
	}
	p := InstalledProfiler()
	if p == nil {
		return
	}
	wall := p.Wall().Seconds()
	if wall <= 0 {
		return
	}
	stats := p.Stats()
	type slow struct {
		layer, name      string
		share, baseShare float64
	}
	var worst *slow
	for _, base := range w.Baseline {
		if base.Share <= 0 {
			continue
		}
		for _, s := range stats {
			if s.Layer != base.Layer || s.Name != base.Name {
				continue
			}
			share := s.Total.Seconds() / wall
			if share >= w.MinShare && share > base.Share*w.SlowFactor {
				if worst == nil || share/base.Share > worst.share/worst.baseShare {
					worst = &slow{base.Layer, base.Name, share, base.Share}
				}
			}
			break
		}
	}
	f.mu.Lock()
	if worst != nil {
		f.slowTicks++
	} else {
		f.slowTicks = 0
	}
	ticks := f.slowTicks
	warned := f.slowWarn
	if worst != nil && ticks >= w.WarnAfter {
		f.slowWarn = true
	}
	f.mu.Unlock()
	if worst == nil {
		return
	}
	f.mSlow.Inc()
	if ticks >= w.WarnAfter && !warned {
		f.warn(map[string]any{
			"kind": "slow_phase", "label": worst.layer + "/" + worst.name,
			"share": fmt.Sprintf("%.4f", worst.share), "baseline_share": fmt.Sprintf("%.4f", worst.baseShare),
		})
	}
	if ticks >= w.DumpAfter {
		f.dumpOnce("slow_phase", map[string]any{
			"phase": worst.layer + "/" + worst.name,
			"share": worst.share, "baseline_share": worst.baseShare,
		})
	}
}

// metricLoop captures periodic registry snapshots into the metric ring.
func (f *FlightRecorder) metricLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.MetricPeriod)
	defer t.Stop()
	for {
		select {
		case <-f.stopCh:
			return
		case <-t.C:
			f.metrics.push(MetricSnapshot{
				OffsetMS: f.offsetMS(), Values: Default().Snapshot(),
			})
		}
	}
}

// dumpPanic is the batch-worker recover hook: it dumps a bundle carrying
// the panic value and worker stack. The worker re-panics afterwards, so
// crash semantics are unchanged.
func (f *FlightRecorder) dumpPanic(task int, recovered any, stack []byte) {
	dir, err := f.DumpBundle("panic", map[string]any{
		"task": task, "panic": fmt.Sprint(recovered),
	})
	if err != nil || dir == "" {
		return
	}
	_ = os.WriteFile(filepath.Join(dir, "panic.txt"),
		[]byte(fmt.Sprintf("task %d panicked: %v\n\n%s", task, recovered, stack)), 0o644)
}

// DumpOnError dumps a bundle when err carries a *core.ConvergenceError or
// *core.GapUnresolvedError (directly or wrapped), writing the error's
// lossless JSON form as error.json inside the bundle. Returns the bundle
// directory and true when a bundle was dumped.
func (f *FlightRecorder) DumpOnError(err error) (string, bool) {
	if err == nil {
		return "", false
	}
	var (
		reason  string
		payload any
	)
	var ce *core.ConvergenceError
	var ge *core.GapUnresolvedError
	switch {
	case errors.As(err, &ce):
		reason, payload = "convergence_error", ce
	case errors.As(err, &ge):
		reason, payload = "gap_unresolved", ge
	default:
		return "", false
	}
	dir, derr := f.DumpBundle(reason, map[string]any{"error": err.Error()})
	if derr != nil || dir == "" {
		return "", false
	}
	if data, jerr := json.MarshalIndent(payload, "", "  "); jerr == nil {
		_ = os.WriteFile(filepath.Join(dir, "error.json"), append(data, '\n'), 0o644)
	}
	return dir, true
}

// dumpSummary is the bundle's dump.json shape.
type dumpSummary struct {
	RunID     string         `json:"run_id"`
	Reason    string         `json:"reason"`
	Time      string         `json:"time"`
	UptimeMS  float64        `json:"uptime_ms"`
	Spans     int64          `json:"spans_total"`
	TraceRows int64          `json:"trace_rows_total"`
	Decisions int64          `json:"decisions_total"`
	Extra     map[string]any `json:"extra,omitempty"`
}

// DumpBundle writes a diagnostic bundle — manifest, ring contents,
// goroutine dump, and (when a span profiler is installed) the profile
// table and Chrome trace — into a fresh directory under the flight's
// bundle dir, named "<runID>-<seq>-<reason>". It returns the directory
// path; an empty path with nil error means the per-run bundle cap was
// reached.
func (f *FlightRecorder) DumpBundle(reason string, extra map[string]any) (string, error) {
	f.mu.Lock()
	if len(f.bundles) >= f.cfg.MaxBundles {
		f.mu.Unlock()
		f.NoteDecision("bundle", "", "bundle cap reached, dump skipped: "+reason, 0)
		return "", nil
	}
	f.seq++
	seq := f.seq
	dir := filepath.Join(f.cfg.Dir, fmt.Sprintf("%s-%03d-%s", f.manifest.RunID, seq, reason))
	f.bundles = append(f.bundles, dir)
	f.mu.Unlock()

	if c := f.mBundles[reason]; c != nil {
		c.Inc()
	} else {
		f.mBundles["other"].Inc()
	}
	f.NoteDecision("bundle", "", reason+" → "+dir, 0)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(f.manifest.WriteFile(filepath.Join(dir, ManifestName)))
	keep(writeJSONL(filepath.Join(dir, "spans.jsonl"), f.spans.snapshot()))
	keep(writeJSONL(filepath.Join(dir, "trace.jsonl"), f.trace.snapshot()))
	keep(writeJSONL(filepath.Join(dir, "decisions.jsonl"), f.decisions.snapshot()))
	keep(writeJSONL(filepath.Join(dir, "metrics.jsonl"), f.metrics.snapshot()))
	keep(os.WriteFile(filepath.Join(dir, "goroutines.txt"), allStacks(), 0o644))
	if s := ActiveSampler(); s != nil {
		if tf, err := os.Create(filepath.Join(dir, "telemetry.jsonl")); err == nil {
			keep(s.WriteJSONL(tf))
			keep(tf.Close())
		} else {
			keep(err)
		}
	}
	if p := InstalledProfiler(); p != nil {
		if tf, err := os.Create(filepath.Join(dir, "profile.txt")); err == nil {
			keep(p.WriteTable(tf))
			keep(tf.Close())
		} else {
			keep(err)
		}
		keep(p.WriteChromeTraceFile(filepath.Join(dir, "chrome_trace.json")))
	}
	_, spansTotal := f.spans.totals()
	_, traceTotal := f.trace.totals()
	_, decTotal := f.decisions.totals()
	sum := dumpSummary{
		RunID: f.manifest.RunID, Reason: reason,
		Time: time.Now().UTC().Format(time.RFC3339), UptimeMS: f.offsetMS(),
		Spans: spansTotal, TraceRows: traceTotal, Decisions: decTotal,
		Extra: extra,
	}
	if data, err := json.MarshalIndent(sum, "", "  "); err == nil {
		keep(os.WriteFile(filepath.Join(dir, "dump.json"), append(data, '\n'), 0o644))
	} else {
		keep(err)
	}
	return dir, firstErr
}

// writeJSONL writes one JSON object per element of rows.
func writeJSONL[T any](path string, rows []T) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(fh)
	for i := range rows {
		if err := enc.Encode(rows[i]); err != nil {
			fh.Close()
			return err
		}
	}
	return fh.Close()
}

// allStacks captures every goroutine's stack.
func allStacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// flightStatus is the /debug/flight JSON shape.
type flightStatus struct {
	Active    bool       `json:"active"`
	RunID     string     `json:"run_id,omitempty"`
	UptimeMS  float64    `json:"uptime_ms,omitempty"`
	Manifest  *Manifest  `json:"manifest,omitempty"`
	Spans     ringStatus `json:"spans"`
	TraceRows ringStatus `json:"trace_rows"`
	Decisions ringStatus `json:"decisions"`
	Metrics   ringStatus `json:"metric_snapshots"`
	Recent    []Decision `json:"recent_decisions,omitempty"`
	Bundles   []string   `json:"bundles,omitempty"`
}

type ringStatus struct {
	Retained int   `json:"retained"`
	Total    int64 `json:"total"`
}

func (f *FlightRecorder) status() flightStatus {
	st := flightStatus{
		Active: true, RunID: f.manifest.RunID, UptimeMS: f.offsetMS(),
		Manifest: f.manifest, Bundles: f.Bundles(),
	}
	st.Spans.Retained, st.Spans.Total = f.spans.totals()
	st.TraceRows.Retained, st.TraceRows.Total = f.trace.totals()
	st.Decisions.Retained, st.Decisions.Total = f.decisions.totals()
	st.Metrics.Retained, st.Metrics.Total = f.metrics.totals()
	st.Recent = f.decisions.snapshot()
	if len(st.Recent) > 64 {
		st.Recent = st.Recent[len(st.Recent)-64:]
	}
	return st
}

// TraceRows returns a copy of the retained trace-ring rows.
func (f *FlightRecorder) TraceRows() []TraceRow { return f.trace.snapshot() }

// Spans returns a copy of the retained span-ring events.
func (f *FlightRecorder) Spans() []FlightSpan { return f.spans.snapshot() }

// Decisions returns a copy of the retained decision rows.
func (f *FlightRecorder) Decisions() []Decision { return f.decisions.snapshot() }
