// Package obs is the solver's zero-dependency observability layer: a
// process-wide metrics registry (atomic counters, gauges, bounded
// histograms) with Prometheus-text and expvar exposition, an HTTP debug
// server bundling /metrics, /debug/vars and net/http/pprof, and a
// convergence-trace recorder for the power iterations.
//
// Design contract (enforced by tests in internal/core and
// internal/mutation): when no observer is installed the solver hot paths
// pay exactly one atomic pointer load per kernel pass — no allocations, no
// timing calls, bit-identical numerics. All instrumentation hooks in the
// solver packages (mutation, device, batch, core) are nil by default and
// are only populated by EnableSolverMetrics or by an explicit
// PowerOptions.Observer.
//
// The package itself depends only on the standard library; wire.go is the
// single place where it reaches into the solver packages to install hooks.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 for the Prometheus counter contract).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic integer gauge (set/add, may decrease).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFloat is an atomic float64 gauge.
type GaugeFloat struct{ bits atomic.Uint64 }

// Set stores v.
func (g *GaugeFloat) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *GaugeFloat) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a bounded histogram with fixed bucket upper bounds: values
// land in the first bucket whose bound is ≥ v, with an implicit +Inf
// bucket. Observe is lock-free (atomic per-bucket counters; the sum is a
// CAS loop), so histograms are safe for concurrent use from kernel hooks.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records v. NaN observations are dropped: they would land in the
// +Inf bucket but poison the sum, so every later scrape of _sum would read
// NaN and rate() over the series would be empty.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start, clamped at zero:
// a wall-clock step backwards (NTP slew, VM migration) must not push a
// duration histogram's sum below its buckets' implied minimum.
func (h *Histogram) ObserveSince(start time.Time) {
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// SecondsBuckets is the default duration bucket ladder (seconds): a ×4
// geometric grid from 1µs to ~67s, wide enough for single butterfly stage
// passes and whole sweep tasks alike while staying at 14 buckets.
func SecondsBuckets() []float64 {
	b := make([]float64, 0, 14)
	for v := 1e-6; v < 100; v *= 4 {
		b = append(b, v)
	}
	return b
}

// ---------------------------------------------------------------------------
// Registry

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFloat
	kindHistogram
)

type entry struct {
	name string // full name, possibly with a {label="v"} suffix
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	gf   *GaugeFloat
	h    *Histogram
}

// family returns the metric family name (the name without its label set);
// HELP/TYPE headers are emitted once per family.
func (e *entry) family() string {
	if i := strings.IndexByte(e.name, '{'); i >= 0 {
		return e.name[:i]
	}
	return e.name
}

// labels returns the label set without braces ("" when unlabeled).
func (e *entry) labels() string {
	if i := strings.IndexByte(e.name, '{'); i >= 0 {
		return strings.TrimSuffix(e.name[i+1:], "}")
	}
	return ""
}

// Registry is a named collection of metrics. Metric registration takes a
// lock; the returned metric handles are lock-free. Names follow the
// Prometheus convention and may carry a fixed label set, e.g.
// `qs_kernel_applies_total{kind="apply"}` — metrics sharing a family must
// share a kind and are grouped under one HELP/TYPE header.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var std = NewRegistry()

// Default returns the process-wide registry used by the solver hooks and
// served by the debug HTTP endpoints.
func Default() *Registry { return std }

func (r *Registry) register(name, help string, kind metricKind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindGaugeFloat:
		e.gf = &GaugeFloat{}
	}
	r.entries[name] = e
	return e
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter).c
}

// Gauge returns (registering on first use) the named integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge).g
}

// GaugeFloat returns (registering on first use) the named float gauge.
func (r *Registry) GaugeFloat(name, help string) *GaugeFloat {
	return r.register(name, help, kindGaugeFloat).gf
}

// Histogram returns (registering on first use) the named histogram with
// the given ascending bucket upper bounds (+Inf is implicit). The bounds
// of an existing histogram are kept.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.register(name, help, kindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		e.h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return e.h
}

// sorted returns the entries in name order.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), entries sorted by name, one HELP/TYPE header per
// family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, e := range r.sorted() {
		fam := e.family()
		if fam != lastFamily {
			if e.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", fam, e.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", fam, map[metricKind]string{
				kindCounter: "counter", kindGauge: "gauge",
				kindGaugeFloat: "gauge", kindHistogram: "histogram",
			}[e.kind])
			lastFamily = fam
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.c.Value())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", e.name, e.g.Value())
		case kindGaugeFloat:
			fmt.Fprintf(bw, "%s %g\n", e.name, e.gf.Value())
		case kindHistogram:
			labels := e.labels()
			cum := int64(0)
			for i, b := range e.h.bounds {
				cum += e.h.counts[i].Load()
				fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", fam, joinLabels(labels), formatBound(b), cum)
			}
			cum += e.h.counts[len(e.h.bounds)].Load()
			fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, joinLabels(labels), cum)
			if labels == "" {
				fmt.Fprintf(bw, "%s_sum %g\n", fam, e.h.Sum())
				fmt.Fprintf(bw, "%s_count %d\n", fam, e.h.Count())
			} else {
				fmt.Fprintf(bw, "%s_sum{%s} %g\n", fam, labels, e.h.Sum())
				fmt.Fprintf(bw, "%s_count{%s} %d\n", fam, labels, e.h.Count())
			}
		}
	}
	return bw.Flush()
}

func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// EscapeLabel escapes a label value for the Prometheus text exposition
// format: backslash, double quote and newline must be written as \\, \"
// and \n inside the quoted value. Use it when building labeled metric
// names from run-time strings (landscape names, file paths).
func EscapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 4)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Value returns the current scalar value of the named metric: counters and
// gauges report their value, histograms their observation count. ok is
// false for names that were never registered — the resource sampler uses
// this to poll qs_* families without keeping handles.
func (r *Registry) Value(name string) (v float64, ok bool) {
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch e.kind {
	case kindCounter:
		return float64(e.c.Value()), true
	case kindGauge:
		return float64(e.g.Value()), true
	case kindGaugeFloat:
		return e.gf.Value(), true
	case kindHistogram:
		return float64(e.h.Count()), true
	}
	return 0, false
}

// Snapshot returns a flat name→value map of the registry, the form
// published under /debug/vars. Histograms appear as {count, sum}.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			out[e.name] = e.c.Value()
		case kindGauge:
			out[e.name] = e.g.Value()
		case kindGaugeFloat:
			out[e.name] = e.gf.Value()
		case kindHistogram:
			out[e.name] = map[string]any{"count": e.h.Count(), "sum": e.h.Sum()}
		}
	}
	return out
}
