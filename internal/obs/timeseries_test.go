package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func ts(sec int64) time.Time { return time.Unix(sec, 0) }

// TestTimeSeriesWrapAround guards the ring contract: a series filled past
// capacity retains exactly the newest Capacity points, in append order.
func TestTimeSeriesWrapAround(t *testing.T) {
	s := NewTimeSeries("x", "1", SeriesGauge, 16)
	for i := 0; i < 40; i++ {
		s.Append(ts(int64(i)), float64(i))
	}
	if got := s.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	if got := s.Total(); got != 40 {
		t.Fatalf("Total = %d, want 40", got)
	}
	pts := s.Snapshot()
	if len(pts) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(pts))
	}
	for i, p := range pts {
		want := float64(24 + i) // oldest retained point is append #24
		if p.V != want {
			t.Fatalf("pts[%d].V = %g, want %g", i, p.V, want)
		}
	}
}

// TestTimeSeriesCapacityFloorAndNaN: tiny capacities are clamped to 16,
// and NaN values are dropped rather than poisoning the aggregates.
func TestTimeSeriesCapacityFloorAndNaN(t *testing.T) {
	s := NewTimeSeries("x", "1", SeriesGauge, 2)
	if s.Capacity() != 16 {
		t.Fatalf("Capacity = %d, want 16", s.Capacity())
	}
	s.Append(ts(1), math.NaN())
	if s.Len() != 0 {
		t.Fatalf("NaN was retained: Len = %d", s.Len())
	}
	s.Append(ts(2), 5)
	st, ok := s.Window(time.Time{})
	if !ok || st.Points != 1 || st.Mean != 5 {
		t.Fatalf("Window after NaN drop = %+v ok=%v", st, ok)
	}
}

// TestTimeSeriesEmptyWindow: an empty series and a cutoff past every point
// both report ok == false instead of zero-filled stats.
func TestTimeSeriesEmptyWindow(t *testing.T) {
	s := NewTimeSeries("x", "1", SeriesGauge, 16)
	if _, ok := s.Window(time.Time{}); ok {
		t.Fatal("empty series reported a window")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("empty series reported a last point")
	}
	s.Append(ts(10), 1)
	if _, ok := s.Window(ts(11)); ok {
		t.Fatal("future cutoff reported a window")
	}
	if st, ok := s.Window(ts(10)); !ok || st.Points != 1 {
		t.Fatalf("inclusive cutoff: %+v ok=%v", st, ok)
	}
}

// TestTimeSeriesOutOfOrderTimestamps: aggregates rank points by timestamp,
// so first/last/rate are right even when appends arrived out of order.
func TestTimeSeriesOutOfOrderTimestamps(t *testing.T) {
	s := NewTimeSeries("x", "1", SeriesCumulative, 16)
	s.Append(ts(30), 300)
	s.Append(ts(10), 100)
	s.Append(ts(20), 200)
	st, ok := s.Window(time.Time{})
	if !ok {
		t.Fatal("no window")
	}
	if st.First != 100 || st.Last != 300 {
		t.Fatalf("First/Last = %g/%g, want 100/300", st.First, st.Last)
	}
	if st.SpanSeconds != 20 {
		t.Fatalf("SpanSeconds = %g, want 20", st.SpanSeconds)
	}
	if st.RatePerSec != 10 { // (300-100)/20s
		t.Fatalf("RatePerSec = %g, want 10", st.RatePerSec)
	}
}

// TestWindowStatsQuantiles checks min/max/mean/p50/p99 on a known ramp.
func TestWindowStatsQuantiles(t *testing.T) {
	s := NewTimeSeries("x", "1", SeriesGauge, 128)
	for i := 1; i <= 100; i++ {
		s.Append(ts(int64(i)), float64(i))
	}
	st, ok := s.Window(time.Time{})
	if !ok {
		t.Fatal("no window")
	}
	if st.Min != 1 || st.Max != 100 {
		t.Fatalf("Min/Max = %g/%g", st.Min, st.Max)
	}
	if st.Mean != 50.5 {
		t.Fatalf("Mean = %g, want 50.5", st.Mean)
	}
	if st.P50 != 50.5 { // interpolated between 50 and 51
		t.Fatalf("P50 = %g, want 50.5", st.P50)
	}
	if st.P99 < 99 || st.P99 > 100 {
		t.Fatalf("P99 = %g, want within [99, 100]", st.P99)
	}
}

// TestTimeSeriesSnapshotUnderConcurrentAppend: a reader racing the writer
// must never observe a torn point. Values encode their own timestamps so
// coherence is checkable per point.
func TestTimeSeriesSnapshotUnderConcurrentAppend(t *testing.T) {
	s := NewTimeSeries("race", "1", SeriesGauge, 64)
	const total = 20000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			s.Append(time.Unix(0, int64(i+1)), float64(i+1))
		}
	}()
	for k := 0; k < 200; k++ {
		for _, p := range s.Snapshot() {
			if p.V != float64(p.T) {
				t.Fatalf("torn point: T=%d V=%g", p.T, p.V)
			}
		}
	}
	wg.Wait()
	pts := s.Snapshot()
	if len(pts) != 64 {
		t.Fatalf("final Snapshot len = %d, want 64", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T != pts[i-1].T+1 {
			t.Fatalf("snapshot not contiguous at %d: %d then %d", i, pts[i-1].T, pts[i].T)
		}
	}
}

// TestWriteSeriesJSONL checks the export shape: one self-describing JSON
// object per point, series then time order.
func TestWriteSeriesJSONL(t *testing.T) {
	a := NewTimeSeries("alpha", "bytes", SeriesGauge, 16)
	a.Append(time.UnixMilli(1500), 42)
	b := NewTimeSeries("beta", "1", SeriesCumulative, 16)
	b.Append(time.UnixMilli(2500), 7)
	var sb strings.Builder
	if err := WriteSeriesJSONL(&sb, []*TimeSeries{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	if want := `{"series":"alpha","kind":"gauge","unit":"bytes","unix_ms":1500,"value":42}`; lines[0] != want {
		t.Fatalf("line 0 = %s\nwant      %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `"series":"beta"`) || !strings.Contains(lines[1], `"kind":"cumulative"`) {
		t.Fatalf("line 1 = %s", lines[1])
	}
}

// TestSparkline pins the renderer's shape rules: fixed width, left padding,
// flat series map to the lowest block.
func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 0); got != "" {
		t.Fatalf("empty = %q", got)
	}
	got := Sparkline([]float64{0, 7}, 2)
	if got != "▁█" {
		t.Fatalf("ramp = %q, want ▁█", got)
	}
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Fatalf("flat = %q, want ▁▁▁", got)
	}
	if got := Sparkline([]float64{1}, 4); got != "   ▁" {
		t.Fatalf("padded = %q", got)
	}
	if got := Sparkline([]float64{0, 1, 2, 3}, 2); got != "▁█" {
		t.Fatalf("truncated = %q, want tail ▁█", got)
	}
}
