package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// /debug/telemetry: the HTTP view of the resource sampler. JSON by default
// (full series with windowed aggregates — the qs-top wire format), an
// aligned sparkline table with ?format=text for humans with curl. With no
// sampler running it reports active=false rather than an error, so smoke
// probes can hit it unconditionally.

// telemetryPayload is the /debug/telemetry JSON shape.
type telemetryPayload struct {
	Active        bool            `json:"active"`
	Notice        string          `json:"notice,omitempty"`
	StartedUnixMS int64           `json:"started_unix_ms,omitempty"`
	PeriodSeconds float64         `json:"period_seconds,omitempty"`
	State         *SamplerState   `json:"state,omitempty"`
	Series        []seriesPayload `json:"series"`
}

type seriesPayload struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Unit   string       `json:"unit,omitempty"`
	Window *WindowStats `json:"window,omitempty"`
	Points []Point      `json:"points,omitempty"`
}

// telemetryInactiveNotice is the single line tools print when telemetry was
// never started.
const telemetryInactiveNotice = "resource sampler not running (start with -telemetry)"

// serveTelemetry handles /debug/telemetry. Query parameters: ?format=text
// for the sparkline table, ?points=N to bound the exported points per
// series (default 120, 0 for none — aggregates only), ?window=30s to
// restrict the aggregate window (default: everything retained).
func serveTelemetry(w http.ResponseWriter, r *http.Request) {
	s := ActiveSampler()
	text := r.URL.Query().Get("format") == "text"

	if s == nil {
		if text {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, telemetryInactiveNotice)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(telemetryPayload{Active: false, Notice: telemetryInactiveNotice, Series: []seriesPayload{}})
		return
	}

	maxPoints := 120
	if v := r.URL.Query().Get("points"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			maxPoints = n
		}
	}
	var cutoff time.Time
	if v := r.URL.Query().Get("window"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			cutoff = time.Now().Add(-d)
		}
	}

	if text {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = writeTelemetryTable(w, s, cutoff)
		return
	}

	payload := telemetryPayload{
		Active:        true,
		Notice:        s.Notice(),
		StartedUnixMS: s.Started().UnixMilli(),
		PeriodSeconds: s.Period().Seconds(),
		State:         s.State(),
		Series:        []seriesPayload{},
	}
	for _, ts := range s.Series() {
		sp := seriesPayload{Name: ts.Name(), Kind: ts.Kind().String(), Unit: ts.Unit()}
		if st, ok := ts.Window(cutoff); ok {
			sp.Window = &st
		}
		if maxPoints > 0 {
			pts := ts.Snapshot()
			if len(pts) > maxPoints {
				pts = pts[len(pts)-maxPoints:]
			}
			sp.Points = pts
		}
		payload.Series = append(payload.Series, sp)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(payload)
}

// writeTelemetryTable renders the sampler as an aligned sparkline table —
// shared by ?format=text and (via the JSON payload) mirrored in qs-top.
func writeTelemetryTable(w interface{ Write([]byte) (int, error) }, s *Sampler, cutoff time.Time) error {
	st := s.State()
	fmt.Fprintf(w, "resource telemetry — period %s, up %s\n",
		s.Period(), time.Since(s.Started()).Round(time.Second))
	if n := s.Notice(); n != "" {
		fmt.Fprintf(w, "notice: %s\n", n)
	}
	if st != nil && st.Mem.Available {
		fmt.Fprintf(w, "rss %s (peak %s), thp %s (%.0f%%)\n",
			FormatBytes(st.Mem.RSSBytes), FormatBytes(st.Mem.PeakRSSBytes),
			FormatBytes(st.Mem.AnonHugeBytes), 100*st.Mem.HugeRatio)
	}
	fmt.Fprintf(w, "%-28s %12s %12s %12s %10s  %s\n",
		"SERIES", "LAST", "MIN", "MAX", "RATE/S", "TREND")
	for _, ts := range s.Series() {
		stw, ok := ts.Window(cutoff)
		if !ok {
			continue
		}
		pts := ts.Snapshot()
		vals := make([]float64, len(pts))
		for i, p := range pts {
			vals[i] = p.V
		}
		rate := "-"
		if ts.Kind() == SeriesCumulative {
			rate = formatUnitValue("1/s", stw.RatePerSec)
		}
		fmt.Fprintf(w, "%-28s %12s %12s %12s %10s  %s\n",
			ts.Name(),
			formatUnitValue(ts.Unit(), stw.Last),
			formatUnitValue(ts.Unit(), stw.Min),
			formatUnitValue(ts.Unit(), stw.Max),
			rate,
			Sparkline(vals, 24))
	}
	return nil
}

// FormatBytes renders a byte count with a binary-prefix unit, the human
// format shared by the telemetry table, qs-top and qs-perf list.
func FormatBytes(b int64) string {
	const kib = 1024.0
	v := float64(b)
	switch {
	case v >= kib*kib*kib:
		return fmt.Sprintf("%.2fGiB", v/(kib*kib*kib))
	case v >= kib*kib:
		return fmt.Sprintf("%.1fMiB", v/(kib*kib))
	case v >= kib:
		return fmt.Sprintf("%.0fKiB", v/kib)
	}
	return fmt.Sprintf("%dB", b)
}

// formatUnitValue renders v according to a series' display unit.
func formatUnitValue(unit string, v float64) string {
	switch unit {
	case "bytes":
		return FormatBytes(int64(v))
	case "s":
		return fmt.Sprintf("%.4gs", v)
	default:
		if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
			return strconv.FormatInt(int64(v), 10)
		}
		return fmt.Sprintf("%.4g", v)
	}
}
