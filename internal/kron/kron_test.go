package kron

import (
	"math"
	"testing"

	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/dense"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func randFactor(t *testing.T, r *rng.Source, gbits int) Factor {
	t.Helper()
	q := mutation.MustUniform(gbits, 0.005+0.05*r.Float64())
	vals := make([]float64, 1<<gbits)
	for i := range vals {
		vals[i] = 0.5 + 2*r.Float64()
	}
	l, err := landscape.NewVector(vals)
	if err != nil {
		t.Fatal(err)
	}
	return Factor{Q: q, F: l}
}

func buildSystem(t *testing.T, r *rng.Source, gbitsList []int) *System {
	t.Helper()
	factors := make([]Factor, len(gbitsList))
	for i, g := range gbitsList {
		factors[i] = randFactor(t, r, g)
	}
	s, err := NewSystem(factors)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDecouplingMatchesFullSolve(t *testing.T) {
	// The paper's central Section 5.2 claim: eigenvalue multiplies and the
	// eigenvector factorizes across groups.
	r := rng.New(1)
	for _, gb := range [][]int{{2, 3}, {1, 2, 3}, {4, 2}, {3, 3, 2}} {
		s := buildSystem(t, r, gb)
		res, err := s.Solve(SolveOptions{Tol: 1e-13})
		if err != nil {
			t.Fatal(err)
		}

		full, err := s.DenseW()
		if err != nil {
			t.Fatal(err)
		}
		wantLam, wantX, _, err := dense.Dominant(full.M, &dense.DominantOptions{Tol: 1e-13, MaxIter: 2000000})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Lambda-wantLam) > 1e-9*(1+wantLam) {
			t.Errorf("groups %v: λ = %.14g, want %.14g", gb, res.Lambda, wantLam)
		}
		got, err := res.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		// Normalize the dense reference to Σ = 1 for comparison.
		if err := core.Concentrations(wantX); err != nil {
			t.Fatal(err)
		}
		if d := vec.DistInf(got, wantX); d > 1e-8 {
			t.Errorf("groups %v: eigenvector deviates by %g", gb, d)
		}
	}
}

func TestResultAt(t *testing.T) {
	r := rng.New(2)
	s := buildSystem(t, r, []int{2, 2})
	res, err := s.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		v, err := res.At(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if v != x[i] {
			t.Fatalf("At(%d) = %g, Materialize[%d] = %g", i, v, i, x[i])
		}
	}
	if res.MasterConcentration() != x[0] {
		t.Error("MasterConcentration inconsistent")
	}
}

func TestClassAggregatesMatchDirect(t *testing.T) {
	r := rng.New(3)
	s := buildSystem(t, r, []int{3, 2, 2})
	res, err := s.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyMaterialized(); err != nil {
		t.Fatal(err)
	}
	// Min/max envelopes against direct enumeration.
	x, _ := res.Materialize()
	nu := s.ChainLen()
	mn, mx := res.ClassMinMax()
	dmn := make([]float64, nu+1)
	dmx := make([]float64, nu+1)
	for k := range dmn {
		dmn[k] = math.Inf(1)
	}
	for i, v := range x {
		k := bits.Weight(uint64(i))
		dmn[k] = math.Min(dmn[k], v)
		dmx[k] = math.Max(dmx[k], v)
	}
	for k := 0; k <= nu; k++ {
		if math.Abs(mn[k]-dmn[k]) > 1e-12 || math.Abs(mx[k]-dmx[k]) > 1e-12 {
			t.Errorf("class %d: envelope (%g,%g), direct (%g,%g)", k, mn[k], mx[k], dmn[k], dmx[k])
		}
	}
}

func TestLongChainNu100(t *testing.T) {
	// The paper's flagship example: ν = 100 via g = 4 groups — far beyond
	// 2^100 dense storage. Here each group is 10 bits wide to keep the
	// test fast; examples exercise the full 25-bit groups.
	if testing.Short() {
		t.Skip("long-chain solve in short mode")
	}
	r := rng.New(4)
	var factors []Factor
	for g := 0; g < 10; g++ {
		q := mutation.MustUniform(10, 0.002)
		vals := make([]float64, 1<<10)
		for i := range vals {
			vals[i] = 1 + 0.001*r.Float64()
		}
		vals[0] = 2 // per-group peak
		l, err := landscape.NewVector(vals)
		if err != nil {
			t.Fatal(err)
		}
		factors = append(factors, Factor{Q: q, F: l})
	}
	s, err := NewSystem(factors)
	if err != nil {
		t.Fatal(err)
	}
	if s.ChainLen() != 100 {
		t.Fatalf("ν = %d", s.ChainLen())
	}
	res, err := s.Solve(SolveOptions{Tol: 1e-12, UseShift: true})
	if err != nil {
		t.Fatal(err)
	}
	gamma := res.ClassConcentrations()
	if len(gamma) != 101 {
		t.Fatalf("got %d classes", len(gamma))
	}
	var sum float64
	for _, g := range gamma {
		sum += g
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("Σ[Γk] = %g", sum)
	}
	// Well below threshold, the master must dominate its error class.
	if res.MasterConcentration() < 0.1 {
		t.Errorf("master concentration %g unexpectedly small", res.MasterConcentration())
	}
	mn, mx := res.ClassMinMax()
	for k := range mn {
		if mn[k] > mx[k] {
			t.Fatalf("class %d: min %g > max %g", k, mn[k], mx[k])
		}
	}
}

func TestMixedProductIdentity(t *testing.T) {
	// (Q₁⊗Q₀)(F₁⊗F₀) = (Q₁F₁)⊗(Q₀F₀) verified through the operators.
	r := rng.New(5)
	s := buildSystem(t, r, []int{2, 2})
	full, err := s.DenseW()
	if err != nil {
		t.Fatal(err)
	}
	// Build ⊗Q and ⊗F explicitly and multiply.
	q0 := s.factors[0].Q.Dense()
	q1 := s.factors[1].Q.Dense()
	bigQ := q1.Kronecker(q0)
	f := make([]float64, 16)
	for i := range f {
		f[i] = s.factors[1].F.At(uint64(i)>>2) * s.factors[0].F.At(uint64(i)&3)
	}
	bigQ.ScaleColumns(f)
	if vec.DistInf(bigQ.Data, full.M.Data) > 1e-12 {
		t.Error("mixed product identity violated in DenseW")
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil); err == nil {
		t.Error("empty system must be rejected")
	}
	q := mutation.MustUniform(2, 0.1)
	l, _ := landscape.NewUniform(3, 1)
	if _, err := NewSystem([]Factor{{Q: q, F: l}}); err == nil {
		t.Error("ν mismatch within a factor must be rejected")
	}
	if _, err := NewSystem([]Factor{{Q: nil, F: l}}); err == nil {
		t.Error("nil components must be rejected")
	}
}

func TestMaterializeRefusesLargeSystems(t *testing.T) {
	r := rng.New(6)
	var factors []Factor
	for g := 0; g < 8; g++ {
		factors = append(factors, randFactor(t, r, 4))
	}
	s, err := NewSystem(factors)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Materialize(); err == nil {
		t.Error("materializing 2^32 entries must be refused")
	}
	// But implicit access still works.
	if _, err := res.At(12345); err != nil {
		t.Error(err)
	}
}

func TestDegenerateSingleFactor(t *testing.T) {
	// One factor: the "decoupled" solve is just the plain solve.
	r := rng.New(7)
	s := buildSystem(t, r, []int{5})
	res, err := s.Solve(SolveOptions{Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyMaterialized(); err != nil {
		t.Error(err)
	}
}
