// Package kron implements the Kronecker-structured solver of Section 5.2:
// when the mutation matrix Q = ⊗ᵢ Q_{Gᵢ} (Eq. 11) and the fitness
// landscape F = ⊗ᵢ F_{Gᵢ} (Eq. 18) share a compatible group structure,
// the mixed product formula (A⊗B)(C⊗D) = AC⊗BD decouples the eigenproblem
// entirely:
//
//	W = Q·F = ⊗ᵢ (Q_{Gᵢ}·F_{Gᵢ}),   λ₀(W) = Πᵢ λ₀(Wᵢ),   x₀(W) = ⊗ᵢ x₀(Wᵢ).
//
// A chain of length ν = Σ gᵢ therefore costs g independent subproblems of
// size 2^gᵢ instead of one problem of size 2^ν — e.g. ν = 100 with four
// 25-bit groups becomes four tractable 2^25 solves (the paper's flagship
// example). Each subproblem is itself a quasispecies problem solved with
// the fast Pi(Fmmp) machinery, so the construction composes recursively.
//
// Beyond the implicit eigenvector ⊗ᵢ xᵢ, the package extracts aggregate
// information without materializing 2^ν values: per-error-class minimum
// and maximum concentrations (the quantity Section 5.2 proposes for
// detecting the error threshold) and even exact cumulative class
// concentrations [Γ_k], both by dynamic programming over the factors.
package kron

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/batch"
	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/vec"
)

// Factor is one independent group: a mutation process and a fitness
// landscape over the same gᵢ positions.
type Factor struct {
	Q *mutation.Process
	F landscape.Landscape
}

// System is a quasispecies problem with fully Kronecker-structured W.
type System struct {
	factors []Factor
	nu      int // total chain length Σ gᵢ (may exceed dense range)
}

// NewSystem validates and assembles the factor list. Factors are ordered
// from the lowest bit positions upward, matching the mutation package's
// convention.
func NewSystem(factors []Factor) (*System, error) {
	if len(factors) == 0 {
		return nil, errors.New("kron: system needs at least one factor")
	}
	nu := 0
	for i, f := range factors {
		if f.Q == nil || f.F == nil {
			return nil, fmt.Errorf("kron: factor %d has nil components", i)
		}
		if f.Q.ChainLen() != f.F.ChainLen() {
			return nil, fmt.Errorf("kron: factor %d mixes ν=%d mutation with ν=%d landscape",
				i, f.Q.ChainLen(), f.F.ChainLen())
		}
		if f.Q.ChainLen() == 0 {
			return nil, fmt.Errorf("kron: factor %d is empty", i)
		}
		nu += f.Q.ChainLen()
	}
	return &System{factors: append([]Factor(nil), factors...), nu: nu}, nil
}

// ChainLen returns the total chain length ν = Σ gᵢ.
func (s *System) ChainLen() int { return s.nu }

// NumFactors returns g, the number of independent subproblems.
func (s *System) NumFactors() int { return len(s.factors) }

// SolveOptions configures the per-factor eigensolves.
type SolveOptions struct {
	// Tol is the per-factor residual threshold (default: the
	// floating-point-floor tolerance of each factor).
	Tol float64
	// MaxIter caps each subproblem's power iteration (default 500000).
	MaxIter int
	// UseShift enables the conservative shift on each subproblem.
	UseShift bool
	// Workers solves that many factors concurrently (they are fully
	// independent subproblems); 0 or 1 solves sequentially, < 0 selects
	// GOMAXPROCS. Results are identical at every worker count: each
	// factor's solve is self-contained and results are assembled in
	// factor order, including the λ₀ = Π λᵢ product.
	Workers int
}

// FactorResult is the solved eigenpair of one subproblem.
type FactorResult struct {
	Lambda     float64
	Vector     []float64 // concentration-normalized (Σ = 1)
	Iterations int
}

// Result is the implicit dominant eigenpair of the full system.
type Result struct {
	system  *System
	Factors []FactorResult
	// Lambda is λ₀(W) = Π λ₀(Wᵢ).
	Lambda float64
}

// Solve runs the decoupled per-factor eigensolves. The subproblems are
// independent ("can all be solved independently instead of solving one
// problem of size 2^ν"); Workers > 1 schedules them over the batch
// work-queue, assembling results — including the λ₀ = Π λᵢ product — in
// factor order so the outcome matches the sequential solve exactly.
func (s *System) Solve(opts SolveOptions) (*Result, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = 1
	}
	res := &Result{system: s, Lambda: 1, Factors: make([]FactorResult, len(s.factors))}
	err := batch.Run(len(s.factors), workers, func(i int, _ *batch.Slot) error {
		f := s.factors[i]
		op, err := core.NewFmmpOperator(f.Q, f.F, core.Right, nil)
		if err != nil {
			return fmt.Errorf("kron: factor %d: %w", i, err)
		}
		tol := opts.Tol
		if tol <= 0 {
			tol = core.DefaultTolerance(f.F)
		}
		po := core.PowerOptions{Tol: tol, MaxIter: opts.MaxIter, Start: core.FitnessStart(f.F)}
		if opts.UseShift {
			po.Shift = core.ConservativeShift(f.Q, f.F)
		}
		pr, err := core.PowerIteration(op, po)
		if err != nil {
			return fmt.Errorf("kron: factor %d did not converge: %w", i, err)
		}
		x := pr.Vector
		if err := core.Concentrations(x); err != nil {
			return fmt.Errorf("kron: factor %d: %w", i, err)
		}
		res.Factors[i] = FactorResult{Lambda: pr.Lambda, Vector: x, Iterations: pr.Iterations}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range res.Factors {
		res.Lambda *= f.Lambda
	}
	return res, nil
}

// At returns the concentration of sequence i of the full problem,
// xᵢ = Π_g x_g[bits of i in group g]. Because each factor is normalized to
// Σ = 1, the product vector is automatically the full concentration
// distribution (Σ over 2^ν sequences = Π Σ_g = 1). Only valid when the
// total ν permits 64-bit indexing.
func (r *Result) At(i uint64) (float64, error) {
	if r.system.nu > bits.MaxChainLen {
		return 0, fmt.Errorf("kron: ν = %d exceeds 64-bit indexing; use class aggregates", r.system.nu)
	}
	x := 1.0
	off := 0
	for g, f := range r.system.factors {
		gb := f.Q.ChainLen()
		sub := (i >> uint(off)) & ((1 << uint(gb)) - 1)
		x *= r.Factors[g].Vector[sub]
		off += gb
	}
	return x, nil
}

// Materialize expands the full eigenvector (Θ(2^ν) memory; small ν only).
func (r *Result) Materialize() ([]float64, error) {
	if r.system.nu > 30 {
		return nil, fmt.Errorf("kron: refusing to materialize 2^%d entries", r.system.nu)
	}
	n := bits.SpaceSize(r.system.nu)
	x := make([]float64, n)
	for i := range x {
		v, err := r.At(uint64(i))
		if err != nil {
			return nil, err
		}
		x[i] = v
	}
	return x, nil
}

// factorClassAggregates returns, for factor g, per-weight (sum, min, max)
// of its concentration vector.
func (r *Result) factorClassAggregates(g int) (sum, mn, mx []float64) {
	f := r.system.factors[g]
	gb := f.Q.ChainLen()
	v := r.Factors[g].Vector
	sum = make([]float64, gb+1)
	mn = make([]float64, gb+1)
	mx = make([]float64, gb+1)
	for w := range mn {
		mn[w] = math.Inf(1)
	}
	for i, x := range v {
		w := bits.Weight(uint64(i))
		sum[w] += x
		mn[w] = math.Min(mn[w], x)
		mx[w] = math.Max(mx[w], x)
	}
	return sum, mn, mx
}

// ClassConcentrations returns the exact cumulative class concentrations
// [Γ_k] of the full 2^ν problem by convolving the per-factor class sums —
// Θ(ν²) work regardless of 2^ν. This extends Section 5.2's proposal of
// extracting eigenvector information from the implicit description.
func (r *Result) ClassConcentrations() []float64 {
	acc := []float64{1}
	for g := range r.system.factors {
		sum, _, _ := r.factorClassAggregates(g)
		acc = convolve(acc, sum)
	}
	return acc
}

// ClassMinMax returns, for every error class Γ_k of the full problem, the
// minimum and maximum single-sequence concentration — the per-class
// envelope Section 5.2 suggests "should provide sufficient information for
// investigating … whether the error threshold phenomenon occurs".
// Positivity of concentrations makes min/max factor across the ⊗ product,
// so a min-plus/max-plus convolution over factors is exact.
func (r *Result) ClassMinMax() (mn, mx []float64) {
	mnAcc, mxAcc := []float64{1}, []float64{1}
	for g := range r.system.factors {
		_, fmn, fmx := r.factorClassAggregates(g)
		mnAcc = convolveExtreme(mnAcc, fmn, math.Min)
		mxAcc = convolveExtreme(mxAcc, fmx, math.Max)
	}
	return mnAcc, mxAcc
}

// convolve returns the additive convolution c[k] = Σ_j a[j]·b[k−j].
func convolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// convolveExtreme returns c[k] = extreme_j (a[j]·b[k−j]) for positive a, b.
func convolveExtreme(a, b []float64, extreme func(x, y float64) float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	init := make([]bool, len(out))
	for i, av := range a {
		for j, bv := range b {
			v := av * bv
			if !init[i+j] {
				out[i+j], init[i+j] = v, true
			} else {
				out[i+j] = extreme(out[i+j], v)
			}
		}
	}
	return out
}

// MasterConcentration returns x₀ = Π_g x_g[0], the concentration of the
// master sequence, available at any chain length.
func (r *Result) MasterConcentration() float64 {
	x := 1.0
	for _, f := range r.Factors {
		x *= f.Vector[0]
	}
	return x
}

// DenseW materializes the full W = ⊗(QᵢFᵢ) for verification at small ν.
func (s *System) DenseW() (*core.DenseOperator, error) {
	if s.nu > 14 {
		return nil, fmt.Errorf("kron: refusing to materialize a 2^%d dense matrix", s.nu)
	}
	var acc *core.DenseOperator
	for i, f := range s.factors {
		w, err := core.NewDenseW(f.Q, f.F, core.Right)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			acc = w
			continue
		}
		// Higher factors occupy higher bits: W = W_g ⊗ … ⊗ W_0.
		m := w.M.Kronecker(acc.M)
		acc, err = core.NewDenseOperator(m)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// VerifyMaterialized checks Σx = 1 and consistency between the implicit
// class aggregates and a materialized eigenvector (test support; small ν).
func (r *Result) VerifyMaterialized() error {
	x, err := r.Materialize()
	if err != nil {
		return err
	}
	if s := vec.SumKahan(x); math.Abs(s-1) > 1e-10 {
		return fmt.Errorf("kron: materialized eigenvector sums to %g", s)
	}
	gamma := r.ClassConcentrations()
	direct, err := core.ClassConcentrations(r.system.nu, x)
	if err != nil {
		return err
	}
	for k := range gamma {
		if math.Abs(gamma[k]-direct[k]) > 1e-10 {
			return fmt.Errorf("kron: [Γ%d] convolved %g vs direct %g", k, gamma[k], direct[k])
		}
	}
	return nil
}
