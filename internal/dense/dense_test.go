package dense

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/vec"
)

func randMatrix(r *rng.Source, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
	return m
}

func randSymmetric(r *rng.Source, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 2*r.Float64() - 1
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randVector(r *rng.Source, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*r.Float64() - 1
	}
	return v
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	a.MatVec(dst, x)
	want := []float64{-1, -1, -1}
	if vec.DistInf(dst, want) != 0 {
		t.Errorf("MatVec = %v, want %v", dst, want)
	}
}

func TestMatVecT(t *testing.T) {
	r := rng.New(1)
	a := randMatrix(r, 7, 5)
	x := randVector(r, 7)
	got := make([]float64, 5)
	a.MatVecT(got, x)
	want := make([]float64, 5)
	a.Transpose().MatVec(want, x)
	if vec.DistInf(got, want) > 1e-14 {
		t.Errorf("MatVecT disagrees with explicit transpose")
	}
}

func TestMulAssociatesWithMatVec(t *testing.T) {
	// (A·B)·x == A·(B·x)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(r.Uint64n(10))
		a, b := randMatrix(r, n, n), randMatrix(r, n, n)
		x := randVector(r, n)
		ab := a.Mul(b)
		got := make([]float64, n)
		ab.MatVec(got, x)
		tmp, want := make([]float64, n), make([]float64, n)
		b.MatVec(tmp, x)
		a.MatVec(want, tmp)
		return vec.DistInf(got, want) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	id.MatVec(dst, x)
	if vec.DistInf(dst, x) != 0 {
		t.Error("I·x != x")
	}
}

func TestScaleRowsColumns(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	ac := a.Clone()
	ac.ScaleColumns([]float64{2, 3})
	want := FromRows([][]float64{{2, 6}, {6, 12}})
	if vec.DistInf(ac.Data, want.Data) != 0 {
		t.Errorf("ScaleColumns = %v", ac.Data)
	}
	ar := a.Clone()
	ar.ScaleRows([]float64{2, 3})
	want = FromRows([][]float64{{2, 4}, {9, 12}})
	if vec.DistInf(ar.Data, want.Data) != 0 {
		t.Errorf("ScaleRows = %v", ar.Data)
	}
}

func TestAddDiag(t *testing.T) {
	a := NewMatrix(3, 3)
	a.AddDiag(2.5)
	for i := 0; i < 3; i++ {
		if a.At(i, i) != 2.5 {
			t.Fatal("AddDiag failed")
		}
	}
}

func TestKroneckerShapeAndValues(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 5}, {6, 7}})
	k := a.Kronecker(b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("Kronecker shape %d×%d", k.Rows, k.Cols)
	}
	// (A⊗B)[i*rb+r][j*cb+c] = A[i][j]*B[r][c]
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for r := 0; r < 2; r++ {
				for c := 0; c < 2; c++ {
					want := a.At(i, j) * b.At(r, c)
					if got := k.At(i*2+r, j*2+c); got != want {
						t.Fatalf("K[%d][%d] = %g, want %g", i*2+r, j*2+c, got, want)
					}
				}
			}
		}
	}
}

func TestKroneckerMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = AC ⊗ BD — the identity Section 5.2 relies on.
	r := rng.New(7)
	a, b := randMatrix(r, 2, 2), randMatrix(r, 3, 3)
	c, d := randMatrix(r, 2, 2), randMatrix(r, 3, 3)
	lhs := a.Kronecker(b).Mul(c.Kronecker(d))
	rhs := a.Mul(c).Kronecker(b.Mul(d))
	if vec.DistInf(lhs.Data, rhs.Data) > 1e-12 {
		t.Error("mixed product identity violated")
	}
}

func TestColumnSums(t *testing.T) {
	a := FromRows([][]float64{{0.3, 0.9}, {0.7, 0.1}})
	s := a.ColumnSums()
	if math.Abs(s[0]-1) > 1e-15 || math.Abs(s[1]-1) > 1e-15 {
		t.Errorf("ColumnSums = %v", s)
	}
}

func TestLUSolve(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + int(r.Uint64n(30))
		a := randMatrix(r, n, n)
		a.AddDiag(float64(n)) // diagonally dominant → well conditioned
		x := randVector(r, n)
		b := make([]float64, n)
		a.MatVec(b, x)
		lu, err := Factorize(a)
		if err != nil {
			return false
		}
		got := make([]float64, n)
		lu.Solve(got, b)
		return vec.DistInf(got, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLUSolveInPlace(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{3, 4} // solution (1,1)
	lu.Solve(b, b)
	if vec.DistInf(b, []float64{1, 1}) > 1e-14 {
		t.Errorf("in-place solve = %v", b)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factorize(a); !errors.Is(err, ErrSingular) {
		t.Errorf("Factorize(singular) err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factorize(NewMatrix(2, 3)); err == nil {
		t.Error("Factorize of non-square matrix must fail")
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	lu, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lu.Det()-(-2)) > 1e-14 {
		t.Errorf("Det = %g, want -2", lu.Det())
	}
}

func TestInverse(t *testing.T) {
	r := rng.New(3)
	n := 8
	a := randMatrix(r, n, n)
	a.AddDiag(float64(n))
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	id := Identity(n)
	if vec.DistInf(prod.Data, id.Data) > 1e-10 {
		t.Errorf("A·A⁻¹ deviates from I by %g", vec.DistInf(prod.Data, id.Data))
	}
}

func TestDominantSimpleMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1; dominant vector (1,1)/√2.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	lambda, x, iters, err := Dominant(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-3) > 1e-10 {
		t.Errorf("λ = %g, want 3 (in %d iters)", lambda, iters)
	}
	w := 1 / math.Sqrt2
	if vec.DistInf(x, []float64{w, w}) > 1e-6 {
		t.Errorf("x = %v", x)
	}
}

func TestDominantStochasticMatrix(t *testing.T) {
	// A column-stochastic positive matrix has Perron value exactly 1... for
	// the transpose; use a symmetric doubly-stochastic one so λ = 1 both ways.
	a := FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	lambda, x, _, err := Dominant(a, &DominantOptions{Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-1) > 1e-12 {
		t.Errorf("λ = %g, want 1", lambda)
	}
	if math.Abs(x[0]-x[1]) > 1e-6 {
		t.Errorf("Perron vector of bistochastic matrix must be uniform, got %v", x)
	}
}

func TestDominantNoConvergence(t *testing.T) {
	// ±1 eigenvalues with equal modulus: power method cannot converge.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	start := []float64{1, 0.3}
	_, _, _, err := Dominant(a, &DominantOptions{MaxIter: 50, Start: start})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestInverseIterationFindsInteriorEigenvalue(t *testing.T) {
	// diag(1,2,5): shift 1.8 must find eigenvalue 2, eigenvector e2.
	a := FromRows([][]float64{{1, 0, 0}, {0, 2, 0}, {0, 0, 5}})
	lambda, x, _, err := InverseIteration(a, 1.8, &DominantOptions{Start: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-2) > 1e-10 {
		t.Errorf("λ = %g, want 2", lambda)
	}
	if math.Abs(math.Abs(x[1])-1) > 1e-8 {
		t.Errorf("x = %v, want ±e₂", x)
	}
}

func TestInverseIterationExactShift(t *testing.T) {
	// Shift equal to an eigenvalue: the perturbation fallback must cope.
	a := FromRows([][]float64{{1, 0}, {0, 3}})
	lambda, _, _, err := InverseIteration(a, 3, &DominantOptions{Start: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-3) > 1e-8 {
		t.Errorf("λ = %g, want 3", lambda)
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, -1}})
	vals, vecs, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-14 || math.Abs(vals[1]+1) > 1e-14 {
		t.Errorf("vals = %v", vals)
	}
	if vecs == nil {
		t.Fatal("nil eigenvector matrix")
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(r.Uint64n(12))
		a := randSymmetric(r, n)
		vals, v, err := JacobiEigen(a, 1e-14)
		if err != nil {
			return false
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		// A·V = V·diag(vals), column by column.
		col, av := make([]float64, n), make([]float64, n)
		for c := 0; c < n; c++ {
			for r2 := 0; r2 < n; r2++ {
				col[r2] = v.At(r2, c)
			}
			a.MatVec(av, col)
			for r2 := 0; r2 < n; r2++ {
				if math.Abs(av[r2]-vals[c]*col[r2]) > 1e-9 {
					return false
				}
			}
		}
		// Orthonormality of V.
		vtv := v.Transpose().Mul(v)
		id := Identity(n)
		return vec.DistInf(vtv.Data, id.Data) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJacobiEigenRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := JacobiEigen(a, 0); err == nil {
		t.Error("JacobiEigen must reject asymmetric input")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows must panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatVecShapePanics(t *testing.T) {
	a := NewMatrix(2, 3)
	defer func() {
		if recover() == nil {
			t.Error("MatVec with wrong shapes must panic")
		}
	}()
	a.MatVec(make([]float64, 2), make([]float64, 2))
}
