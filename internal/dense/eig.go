package dense

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// ErrNoConvergence is returned when an iterative eigensolver exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("dense: eigensolver did not converge")

// DominantOptions configures the dense dominant-eigenpair solvers.
type DominantOptions struct {
	Tol     float64 // residual tolerance on ‖Ax − λx‖₂ / ‖x‖₂ (default 1e-13)
	MaxIter int     // iteration budget (default 100000)
	Start   []float64
}

func (o *DominantOptions) defaults(n int) (tol float64, maxIter int, start []float64) {
	tol = 1e-13
	maxIter = 100000
	if o != nil {
		if o.Tol > 0 {
			tol = o.Tol
		}
		if o.MaxIter > 0 {
			maxIter = o.MaxIter
		}
		start = o.Start
	}
	if start == nil {
		start = make([]float64, n)
		vec.Fill(start, 1/float64(n))
	}
	return tol, maxIter, start
}

// Dominant computes the dominant eigenpair (λ, x) of the square matrix a
// using the power method with Rayleigh-quotient estimates. The returned
// eigenvector has unit 2-norm and non-negative orientation of its largest
// component. For the non-negative irreducible matrices of the quasispecies
// model the dominant eigenvalue is simple (Perron–Frobenius) and the
// iteration is globally convergent from any positive start vector.
func Dominant(a *Matrix, opts *DominantOptions) (lambda float64, x []float64, iters int, err error) {
	if a.Rows != a.Cols {
		return 0, nil, 0, fmt.Errorf("dense: Dominant needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	tol, maxIter, start := opts.defaults(n)
	x = vec.Clone(start)
	if vec.Norm2(x) == 0 {
		return 0, nil, 0, errors.New("dense: Dominant start vector is zero")
	}
	vec.Normalize2(x)
	w := make([]float64, n)
	for iters = 1; iters <= maxIter; iters++ {
		a.MatVec(w, x)
		lambda = vec.Dot(x, w) // Rayleigh quotient for unit x
		// residual ‖w − λx‖₂
		var rs float64
		for i, wi := range w {
			r := wi - lambda*x[i]
			rs += r * r
		}
		if math.Sqrt(rs) <= tol*math.Max(1, math.Abs(lambda)) {
			orient(x)
			return lambda, x, iters, nil
		}
		nrm := vec.Norm2(w)
		if nrm == 0 {
			return 0, nil, iters, errors.New("dense: Dominant hit the zero vector (nilpotent direction)")
		}
		for i := range x {
			x[i] = w[i] / nrm
		}
	}
	orient(x)
	return lambda, x, maxIter, ErrNoConvergence
}

// InverseIteration computes the eigenpair of a nearest to the shift sigma
// by inverse iteration on (A − σI). The returned eigenvector has unit
// 2-norm. Convergence is measured by the residual of the original matrix.
func InverseIteration(a *Matrix, sigma float64, opts *DominantOptions) (lambda float64, x []float64, iters int, err error) {
	if a.Rows != a.Cols {
		return 0, nil, 0, fmt.Errorf("dense: InverseIteration needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	tol, maxIter, start := opts.defaults(n)
	shifted := a.Clone()
	shifted.AddDiag(-sigma)
	f, ferr := Factorize(shifted)
	if ferr != nil {
		// σ is (numerically) an exact eigenvalue: perturb it slightly.
		shifted = a.Clone()
		eps := math.Max(math.Abs(sigma), 1) * 1e-12
		shifted.AddDiag(-(sigma + eps))
		if f, ferr = Factorize(shifted); ferr != nil {
			return 0, nil, 0, ferr
		}
	}
	x = vec.Clone(start)
	vec.Normalize2(x)
	w := make([]float64, n)
	for iters = 1; iters <= maxIter; iters++ {
		f.Solve(w, x)
		nrm := vec.Norm2(w)
		if nrm == 0 || math.IsInf(nrm, 0) || math.IsNaN(nrm) {
			return 0, nil, iters, ErrSingular
		}
		for i := range x {
			x[i] = w[i] / nrm
		}
		a.MatVec(w, x)
		lambda = vec.Dot(x, w)
		var rs float64
		for i, wi := range w {
			r := wi - lambda*x[i]
			rs += r * r
		}
		if math.Sqrt(rs) <= tol*math.Max(1, math.Abs(lambda)) {
			orient(x)
			return lambda, x, iters, nil
		}
	}
	orient(x)
	return lambda, x, maxIter, ErrNoConvergence
}

// orient flips the sign of x so that its absolutely largest component is
// positive, fixing the sign ambiguity of eigenvectors.
func orient(x []float64) {
	idx, m := 0, 0.0
	for i, v := range x {
		if a := math.Abs(v); a > m {
			idx, m = i, a
		}
	}
	if x[idx] < 0 {
		vec.Scale(x, -1)
	}
}

// JacobiEigen computes the full eigendecomposition of the symmetric matrix
// a using the cyclic Jacobi method: A = V·diag(λ)·Vᵀ with orthonormal
// columns of V. Eigenvalues are returned in descending order. The input
// must be symmetric; asymmetry beyond 1e-12·‖A‖∞ is reported as an error.
func JacobiEigen(a *Matrix, tol float64) (eigenvalues []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: JacobiEigen needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	if !a.IsSymmetric(1e-12 * scale) {
		return nil, nil, errors.New("dense: JacobiEigen requires a symmetric matrix")
	}
	if tol <= 0 {
		tol = 1e-14
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= tol*scale*1e-3 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				// Stable rotation computation (Golub & Van Loan §8.4).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(m, v, p, q, c, s)
			}
		}
	}
	if off := offDiagNorm(m); off > math.Sqrt(tol)*scale {
		return nil, nil, ErrNoConvergence
	}
	// Extract and sort eigenpairs (descending).
	eigenvalues = make([]float64, n)
	for i := 0; i < n; i++ {
		eigenvalues[i] = m.At(i, i)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small (ν+1)
		for j := i; j > 0 && eigenvalues[order[j]] > eigenvalues[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for c, idx := range order {
		sortedVals[c] = eigenvalues[idx]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, c, v.At(r, idx))
		}
	}
	return sortedVals, sortedVecs, nil
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			v := m.At(r, c)
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// applyJacobiRotation applies the rotation J(p,q,θ) to m (two-sided) and
// accumulates it into v (one-sided).
func applyJacobiRotation(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m.At(p, i), m.At(q, i)
		m.Set(p, i, c*mpi-s*mqi)
		m.Set(q, i, s*mpi+c*mqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}
