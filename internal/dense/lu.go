package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("dense: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, with L
// unit lower triangular and U upper triangular, both packed into lu.
type LU struct {
	lu    *Matrix
	pivot []int
	signP int // determinant sign of P
}

// Factorize computes the LU factorization of the square matrix a with
// partial (row) pivoting. a is not modified. It returns ErrSingular when a
// pivot column is exactly zero; near-singular systems succeed here and
// surface as large residuals for the caller to judge.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Factorize needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, best := k, math.Abs(lu.At(k, k))
		for r := k + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, k)); v > best {
				p, best = r, v
			}
		}
		pivot[k] = p
		if best == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for c := range rk {
				rk[c], rp[c] = rp[c], rk[c]
			}
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for r := k + 1; r < n; r++ {
			l := lu.At(r, k) * inv
			lu.Set(r, k, l)
			if l == 0 {
				continue
			}
			rr, rk := lu.Row(r), lu.Row(k)
			for c := k + 1; c < n; c++ {
				rr[c] -= l * rk[c]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signP: sign}, nil
}

// Solve computes x with A·x = b into dst (dst may alias b).
func (f *LU) Solve(dst, b []float64) {
	n := f.lu.Rows
	if len(b) != n || len(dst) != n {
		panic("dense: LU.Solve length mismatch")
	}
	if &dst[0] != &b[0] {
		copy(dst, b)
	}
	// Apply row permutation.
	for k, p := range f.pivot {
		if p != k {
			dst[k], dst[p] = dst[p], dst[k]
		}
	}
	// Forward substitution with unit L.
	for r := 1; r < n; r++ {
		row := f.lu.Row(r)
		s := dst[r]
		for c := 0; c < r; c++ {
			s -= row[c] * dst[c]
		}
		dst[r] = s
	}
	// Back substitution with U.
	for r := n - 1; r >= 0; r-- {
		row := f.lu.Row(r)
		s := dst[r]
		for c := r + 1; c < n; c++ {
			s -= row[c] * dst[c]
		}
		dst[r] = s / row[r]
	}
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.signP)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ of the matrix a, via LU factorization.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	col := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		f.Solve(col, e)
		for r := 0; r < n; r++ {
			inv.Set(r, c, col[r])
		}
	}
	return inv, nil
}
