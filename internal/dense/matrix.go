// Package dense implements the small dense linear-algebra substrate the
// solver needs: a row-major matrix type with matrix–vector products (the
// Smvp baseline of the paper), LU factorization with partial pivoting,
// inverse iteration, a Jacobi eigensolver for symmetric matrices and a
// dominant-eigenpair power method for small general matrices.
//
// Dense storage grows as Θ(N²) and is only viable for small chain lengths;
// that is precisely the point of the paper, and this package exists both as
// the reference baseline (Figures 2–4) and as the solver for the reduced
// (ν+1)×(ν+1) problems of Section 5.1.
package dense

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c] = A[r][c]
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: invalid shape %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices, which must all have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for r, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged row %d: %d vs %d", r, len(row), c))
		}
		copy(m.Data[r*c:(r+1)*c], row)
	}
	return m
}

// At returns A[r][c].
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns A[r][c] = v.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatVec computes dst ← A·x. dst must not alias x. This is the standard
// Θ(N²) matrix–vector product, the paper's Smvp baseline.
func (m *Matrix) MatVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("dense: MatVec shape mismatch: %d×%d by %d into %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, a := range row {
			s += a * x[c]
		}
		dst[r] = s
	}
}

// MatVecT computes dst ← Aᵀ·x. dst must not alias x.
func (m *Matrix) MatVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("dense: MatVecT shape mismatch")
	}
	vec.Fill(dst, 0)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xv := x[r]
		for c, a := range row {
			dst[c] += a * xv
		}
	}
}

// Mul returns the product A·B.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %d×%d by %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		arow := m.Row(r)
		orow := out.Row(r)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for c, bv := range brow {
				orow[c] += a * bv
			}
		}
	}
	return out
}

// ScaleColumns multiplies column c by d[c] in place: A ← A·diag(d).
func (m *Matrix) ScaleColumns(d []float64) {
	if len(d) != m.Cols {
		panic("dense: ScaleColumns length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c := range row {
			row[c] *= d[c]
		}
	}
}

// ScaleRows multiplies row r by d[r] in place: A ← diag(d)·A.
func (m *Matrix) ScaleRows(d []float64) {
	if len(d) != m.Rows {
		panic("dense: ScaleRows length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		vec.Scale(m.Row(r), d[r])
	}
}

// AddDiag adds s to every diagonal entry in place: A ← A + s·I.
func (m *Matrix) AddDiag(s float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += s
	}
}

// Transpose returns Aᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// Kronecker returns the Kronecker product A ⊗ B.
func (m *Matrix) Kronecker(b *Matrix) *Matrix {
	out := NewMatrix(m.Rows*b.Rows, m.Cols*b.Cols)
	for ra := 0; ra < m.Rows; ra++ {
		for ca := 0; ca < m.Cols; ca++ {
			a := m.At(ra, ca)
			if a == 0 {
				continue
			}
			for rb := 0; rb < b.Rows; rb++ {
				orow := out.Row(ra*b.Rows + rb)
				brow := b.Row(rb)
				base := ca * b.Cols
				for cb, bv := range brow {
					orow[base+cb] += a * bv
				}
			}
		}
	}
	return out
}

// IsSymmetric reports whether |A − Aᵀ|∞ ≤ tol elementwise.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := r + 1; c < m.Cols; c++ {
			if math.Abs(m.At(r, c)-m.At(c, r)) > tol {
				return false
			}
		}
	}
	return true
}

// ColumnSums returns the vector of column sums; a column-stochastic matrix
// has all column sums equal to 1.
func (m *Matrix) ColumnSums() []float64 {
	s := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			s[c] += v
		}
	}
	return s
}

// MaxAbs returns the largest absolute entry of the matrix.
func (m *Matrix) MaxAbs() float64 {
	return vec.NormInf(m.Data)
}

// String renders small matrices for debugging; large matrices are elided.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("dense.Matrix(%d×%d)", m.Rows, m.Cols)
	}
	s := ""
	for r := 0; r < m.Rows; r++ {
		s += fmt.Sprintf("%v\n", m.Row(r))
	}
	return s
}
