package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/vec"
)

// Concentrations converts a dominant eigenvector of the Right formulation
// (Q·F) in place into the relative-concentration distribution of the
// quasispecies: tiny negative round-off is clamped to zero and the vector
// is normalized to Σxᵢ = 1. It returns an error if genuinely negative
// entries are present (which would contradict Perron–Frobenius and
// indicates the iterate has not converged).
func Concentrations(x []float64) error {
	const tol = 1e-9
	nrm := vec.NormInf(x)
	if nrm == 0 {
		return fmt.Errorf("core: zero vector has no concentration interpretation")
	}
	for i, v := range x {
		if v < 0 {
			if v < -tol*nrm {
				return fmt.Errorf("core: eigenvector entry %d = %g is significantly negative; "+
					"not a Perron vector", i, v)
			}
			x[i] = 0
		}
	}
	vec.Normalize1(x)
	return nil
}

// ClassConcentrations returns the cumulative concentrations
// [Γ_k] = Σ_{j ∈ Γ_k} x_j of the ν+1 error classes with respect to the
// master sequence — the quantities plotted in Figure 1. x must be a
// concentration vector of length 2^ν.
func ClassConcentrations(nu int, x []float64) ([]float64, error) {
	if len(x) != bits.SpaceSize(nu) {
		return nil, fmt.Errorf("core: vector length %d does not match 2^%d", len(x), nu)
	}
	gamma := make([]float64, nu+1)
	for i, v := range x {
		gamma[bits.Weight(uint64(i))] += v
	}
	return gamma, nil
}

// ClassConcentrationsAbout generalizes ClassConcentrations to the error
// classes Γ_{k,center} around an arbitrary center sequence (Eq. 6).
func ClassConcentrationsAbout(nu int, x []float64, center uint64) ([]float64, error) {
	if len(x) != bits.SpaceSize(nu) {
		return nil, fmt.Errorf("core: vector length %d does not match 2^%d", len(x), nu)
	}
	if center >= uint64(len(x)) {
		return nil, fmt.Errorf("core: center %d outside sequence space of size %d", center, len(x))
	}
	gamma := make([]float64, nu+1)
	for i, v := range x {
		gamma[bits.Hamming(uint64(i), center)] += v
	}
	return gamma, nil
}
