package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/span"
	"repro/internal/vec"
)

// This file implements the restarted Lanczos method that Section 3 names
// as the main alternative to the power iteration. The paper dismisses
// Lanczos/Arnoldi for the very largest instances because they "require
// storing more intermediate vectors"; this implementation makes that
// trade-off explicit and measurable: memory is (BasisSize+2)·N floats
// against the power iteration's 2·N.

// LanczosOptions configures the restarted Lanczos solver.
type LanczosOptions struct {
	// Tol is the residual threshold on ‖W·x − λ·x‖₂. Default 1e-13.
	Tol float64
	// BasisSize is the Krylov basis length per restart cycle (default 24).
	BasisSize int
	// MaxRestarts caps the number of restart cycles (default 1000).
	MaxRestarts int
	// Start is the starting vector (copied). Default: uniform.
	Start []float64
	// Observer, when non-nil, receives one Step per restart (iter counts
	// operator applications) plus lifecycle events — the same contract as
	// PowerOptions.Observer.
	Observer Observer
}

// LanczosResult is the outcome of the Lanczos solver.
type LanczosResult struct {
	Lambda     float64
	Vector     []float64 // unit 2-norm, non-negative orientation
	MatVecs    int       // operator applications used
	Restarts   int
	Residual   float64
	Converged  bool
	BasisBytes int // peak basis storage in bytes, for the memory trade-off
}

// Lanczos computes the dominant eigenpair of the *symmetric* operator op
// (use the Symmetric formulation of Eq. 4) by restarted Lanczos with full
// reorthogonalization of the small basis. It returns the partial result
// with ErrNoConvergence when the restart budget is exhausted.
func Lanczos(op Operator, opts LanczosOptions) (LanczosResult, error) {
	n := op.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-13
	}
	m := opts.BasisSize
	if m <= 0 {
		m = 24
	}
	if m > n {
		m = n
	}
	maxRestarts := opts.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1000
	}

	q := device.AllocVector(n)
	if opts.Start != nil {
		if len(opts.Start) != n {
			return LanczosResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(q, opts.Start)
	} else {
		vec.Fill(q, 1)
	}
	if vec.Norm2(q) == 0 {
		return LanczosResult{}, errors.New("core: start vector is zero")
	}
	vec.Normalize2(q)

	basis := make([][]float64, m)
	for i := range basis {
		basis[i] = device.AllocVector(n)
	}
	alpha := make([]float64, m)
	beta := make([]float64, m) // beta[j] couples basis[j] and basis[j+1]
	w := device.AllocVector(n)

	// Same hook discipline as PowerIteration: hoisted loads, no deferred
	// closures, every exit path reports through powerDone.
	sh := solveObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerCore, SolveKindLanczos)
	}
	if sh != nil {
		sh.o.SolveStart(SolveKindLanczos, n)
	}
	if opts.Observer != nil {
		notifyMethod(opts.Observer, SolveKindLanczos)
		opts.Observer.Event(EventStart, 0, 0, 0)
	}

	res := LanczosResult{BasisBytes: (m + 2) * n * 8}
	lastMatVecs := 0
	for restart := 0; restart < maxRestarts; restart++ {
		res.Restarts = restart + 1
		copy(basis[0], q)
		ph := beginPhase(sr, PhaseMatvec)
		k := lanczosSteps(op, basis, alpha, beta, w, m, &res.MatVecs)
		span.End(ph, int64(res.Restarts), int64(k))
		// Dominant eigenpair of the k×k tridiagonal T.
		ph = beginPhase(sr, PhaseTridiag)
		vals, ritz, err := tridiagEigenpairs(alpha[:k], beta[:max(k-1, 0)])
		span.End(ph, int64(res.Restarts), int64(k))
		if err != nil {
			powerDone(sh, sp, opts.Observer, SolveKindLanczos, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, err
		}
		res.Lambda = vals[0]
		// Ritz vector y = V·e₀ mapped back: x = Σ_j ritz[j]·basis[j].
		vec.Fill(q, 0)
		for j := 0; j < k; j++ {
			vec.AXPY(ritz[j], basis[j], q)
		}
		vec.Normalize2(q)
		// Explicit residual of the Ritz pair.
		ph = beginPhase(sr, PhaseResidual)
		op.Apply(w, q)
		res.MatVecs++
		var rs float64
		for i, wi := range w {
			r := wi - res.Lambda*q[i]
			rs += r * r
		}
		res.Residual = math.Sqrt(rs)
		span.End(ph, int64(res.Restarts), 0)
		if sh != nil {
			sh.o.SolveStep(SolveKindLanczos, res.MatVecs-lastMatVecs)
		}
		lastMatVecs = res.MatVecs
		if opts.Observer != nil {
			opts.Observer.Step(res.MatVecs, res.Lambda, res.Residual)
		}
		if res.Residual <= tol {
			res.Converged = true
			orientPositive(q)
			res.Vector = q
			powerDone(sh, sp, opts.Observer, SolveKindLanczos, EventConverged, n, res.MatVecs, res.Lambda, res.Residual)
			return res, nil
		}
	}
	orientPositive(q)
	res.Vector = q
	powerDone(sh, sp, opts.Observer, SolveKindLanczos, EventBudgetExhausted, n, res.MatVecs, res.Lambda, res.Residual)
	return res, fmt.Errorf("%w after %d restarts (residual %g, tol %g)",
		ErrNoConvergence, res.Restarts, res.Residual, tol)
}
