package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/device"
	"repro/internal/vec"
)

// This file implements restarted Arnoldi iteration, the Krylov method for
// the *non-symmetric* formulations. The paper's generalized mutation
// processes (Section 2.2) can make W = Q·F non-symmetrizable — asymmetric
// per-site factors break Q's symmetry — so Lanczos no longer applies;
// Arnoldi is the standard replacement, at the cost of a full (not
// tridiagonal) projected matrix and full orthogonalization.
//
// Because W is non-negative and irreducible, the dominant eigenvalue is
// real and simple (Perron–Frobenius), so the dominant Ritz pair of the
// small Hessenberg matrix is safely extracted with the dense real
// power method.

// ArnoldiOptions configures the restarted Arnoldi solver.
type ArnoldiOptions struct {
	// Tol is the residual threshold on ‖W·x − λ·x‖₂. Default 1e-12.
	Tol float64
	// BasisSize is the Krylov basis per restart cycle (default 24).
	BasisSize int
	// MaxRestarts caps the restart cycles (default 1000).
	MaxRestarts int
	// Start is the starting vector (copied). Default: uniform.
	Start []float64
}

// ArnoldiResult is the outcome of the Arnoldi solver.
type ArnoldiResult struct {
	Lambda     float64
	Vector     []float64
	MatVecs    int
	Restarts   int
	Residual   float64
	Converged  bool
	BasisBytes int
}

// Arnoldi computes the dominant eigenpair of op (any square operator, no
// symmetry required) with restarted Arnoldi and modified Gram–Schmidt
// orthogonalization.
func Arnoldi(op Operator, opts ArnoldiOptions) (ArnoldiResult, error) {
	n := op.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-12
	}
	m := opts.BasisSize
	if m <= 0 {
		m = 24
	}
	if m > n {
		m = n
	}
	maxRestarts := opts.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 1000
	}

	q := device.AllocVector(n)
	if opts.Start != nil {
		if len(opts.Start) != n {
			return ArnoldiResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(q, opts.Start)
	} else {
		vec.Fill(q, 1)
	}
	if vec.Norm2(q) == 0 {
		return ArnoldiResult{}, errors.New("core: start vector is zero")
	}
	vec.Normalize2(q)

	basis := make([][]float64, m)
	for i := range basis {
		basis[i] = device.AllocVector(n)
	}
	h := dense.NewMatrix(m, m)
	w := device.AllocVector(n)

	res := ArnoldiResult{BasisBytes: (m + 2) * n * 8}
	prevResidual := math.Inf(1)
	stalled := 0
	for restart := 0; restart < maxRestarts; restart++ {
		res.Restarts = restart + 1
		for i := range h.Data {
			h.Data[i] = 0
		}
		copy(basis[0], q)
		k := 0
		for j := 0; j < m; j++ {
			op.Apply(w, basis[j])
			res.MatVecs++
			// Modified Gram–Schmidt against the whole basis.
			for t := 0; t <= j; t++ {
				c := vec.Dot(basis[t], w)
				h.Set(t, j, c)
				vec.AXPY(-c, basis[t], w)
			}
			// One reorthogonalization pass for robustness.
			for t := 0; t <= j; t++ {
				c := vec.Dot(basis[t], w)
				if c != 0 {
					h.Set(t, j, h.At(t, j)+c)
					vec.AXPY(-c, basis[t], w)
				}
			}
			k = j + 1
			b := vec.Norm2(w)
			if j+1 < m {
				if b < 1e-300 {
					break // invariant subspace
				}
				h.Set(j+1, j, b)
				for i := range w {
					basis[j+1][i] = w[i] / b
				}
			}
		}
		// Dominant Ritz pair of the k×k upper-left block of H.
		hk := dense.NewMatrix(k, k)
		for r := 0; r < k; r++ {
			copy(hk.Row(r), h.Row(r)[:k])
		}
		lam, y, _, err := dense.Dominant(hk, &dense.DominantOptions{Tol: 1e-13, MaxIter: 200000})
		if err != nil && !errors.Is(err, dense.ErrNoConvergence) {
			return res, fmt.Errorf("core: Hessenberg eigensolve failed: %w", err)
		}
		res.Lambda = lam
		vec.Fill(q, 0)
		for j := 0; j < k; j++ {
			vec.AXPY(y[j], basis[j], q)
		}
		nrm := vec.Norm2(q)
		if nrm == 0 {
			return res, errors.New("core: Arnoldi produced a zero Ritz vector")
		}
		vec.Scale(q, 1/nrm)
		op.Apply(w, q)
		res.MatVecs++
		var rs float64
		for i, wi := range w {
			r := wi - lam*q[i]
			rs += r * r
		}
		res.Residual = math.Sqrt(rs)
		if res.Residual <= tol {
			res.Converged = true
			orientPositive(q)
			res.Vector = q
			return res, nil
		}
		if res.Residual < prevResidual*(1-1e-6) {
			prevResidual = res.Residual
			stalled = 0
		} else if stalled++; stalled >= 10 {
			orientPositive(q)
			res.Vector = q
			return res, fmt.Errorf("%w: residual %g after %d restarts", ErrStagnated, res.Residual, res.Restarts)
		}
	}
	orientPositive(q)
	res.Vector = q
	return res, fmt.Errorf("%w after %d restarts (residual %g, tol %g)",
		ErrNoConvergence, res.Restarts, res.Residual, tol)
}
