package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/span"
	"repro/internal/vec"
)

// Chebyshev-accelerated power iteration: the middle gear of the adaptive
// critical-window engine. One restart applies the degree-d Chebyshev
// polynomial T_d mapped onto a damping interval [a, b] with b < λ₀: every
// eigencomponent inside [a, b] is suppressed to |T_d| ≤ 1 while the
// dominant one is amplified by T_d(2λ₀/(b−a) − (b+a)/(b−a)) ≈ cosh(d·√γ)
// — a quadratic speedup in the effective rate over the plain power method
// for the same number of matrix–vector products, with the same 3·N memory
// footprint (no Krylov basis to store, which is what makes it usable at
// the ν ≥ 18 sizes where the paper rejects Lanczos on memory grounds).
//
// The upper edge b must separate λ₁ from λ₀: λ₁ ≤ b < λ₀. A safe choice
// comes from a RitzGap probe — by Cauchy interlacing θ₁ ≤ λ₁ and θ₀ ≤ λ₀,
// so b = θ₁ + ½(θ₀ − θ₁) is below θ₀ ≤ λ₀ whenever the probe resolves the
// pair. If b turns out ≥ λ₀ the filter damps the dominant component too;
// the stall guard detects the flat residual and returns ErrStagnated so
// the adaptive layer can re-probe or escalate.

// ChebyshevOptions configures the Chebyshev-filtered iteration.
type ChebyshevOptions struct {
	// Tol is the residual threshold on ‖W·x − λ·x‖₂. Default 1e-13.
	Tol float64
	// Degree is the filter polynomial degree per restart (matrix–vector
	// products per restart). Default 30.
	Degree int
	// MaxMatVecs caps the total operator applications. Default 500000.
	MaxMatVecs int
	// LowerEdge is the damping interval's lower end a; for the PSD
	// quasispecies operators 0 is always valid. Values < 0 are clamped.
	LowerEdge float64
	// UpperEdge is the damping interval's upper end b, with λ₁ ≤ b < λ₀
	// required for amplification (see the file comment). Mandatory.
	UpperEdge float64
	// Start is the starting vector; copied, not mutated. Default: uniform.
	// May alias the Work iterate (warm-start continuation).
	Start []float64
	// Dev selects device-parallel BLAS-1 operations; nil runs serially.
	Dev *device.Device
	// StallRestarts is the number of consecutive restarts without residual
	// improvement (relative 1e-6) after which the solve stops with
	// ErrStagnated. Default 6; negative disables the guard.
	StallRestarts int
	// Observer, when non-nil, receives one Step per restart plus lifecycle
	// events — same contract as PowerOptions.Observer.
	Observer Observer
	// Work supplies reusable scratch; the returned Vector aliases its
	// iterate. Nil allocates fresh scratch.
	Work *ChebyshevWork
}

// ChebyshevWork is the reusable scratch of the Chebyshev iteration: the
// current and previous recurrence iterates plus one product vector.
type ChebyshevWork struct {
	x, z, w []float64
}

// NewChebyshevWork returns scratch for dimension-n solves.
func NewChebyshevWork(n int) *ChebyshevWork {
	return &ChebyshevWork{x: device.AllocVector(n), z: device.AllocVector(n), w: device.AllocVector(n)}
}

func (cw *ChebyshevWork) vectors(n int) (x, z, w []float64) {
	if len(cw.x) != n {
		cw.x = device.AllocVector(n)
	}
	if len(cw.z) != n {
		cw.z = device.AllocVector(n)
	}
	if len(cw.w) != n {
		cw.w = device.AllocVector(n)
	}
	return cw.x, cw.z, cw.w
}

// ChebyshevResult is the outcome of the Chebyshev-filtered iteration.
type ChebyshevResult struct {
	// Lambda is the Rayleigh quotient of the final iterate.
	Lambda float64
	// Vector is the eigenvector estimate, unit 2-norm, non-negative
	// orientation. Aliases Work's iterate when Work was supplied.
	Vector []float64
	// MatVecs is the number of operator applications performed.
	MatVecs int
	// Restarts is the number of degree-d filter applications.
	Restarts int
	// Residual is the final ‖W·x − λ·x‖₂.
	Residual float64
	// Converged reports whether Residual ≤ Tol was reached.
	Converged bool
}

// ChebyshevIteration computes the dominant eigenpair of the *symmetric*
// operator op by restarted Chebyshev filtering on [LowerEdge, UpperEdge].
// It returns the partial result with ErrNoConvergence when the budget is
// exhausted and ErrStagnated when restarts stop improving the residual
// (typically a mis-set UpperEdge ≥ λ₀).
func ChebyshevIteration(op Operator, opts ChebyshevOptions) (ChebyshevResult, error) {
	n := op.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-13
	}
	deg := opts.Degree
	if deg <= 0 {
		deg = 30
	}
	maxMatVecs := opts.MaxMatVecs
	if maxMatVecs <= 0 {
		maxMatVecs = 500000
	}
	stallRestarts := opts.StallRestarts
	if stallRestarts == 0 {
		stallRestarts = 6
	}
	a := opts.LowerEdge
	if a < 0 {
		a = 0
	}
	b := opts.UpperEdge
	if !(b > a) || math.IsNaN(b) || math.IsInf(b, 0) {
		return ChebyshevResult{}, fmt.Errorf("core: Chebyshev damping interval [%g, %g] is empty or invalid", a, b)
	}
	dev := opts.Dev

	var x, z, w []float64
	if opts.Work != nil {
		x, z, w = opts.Work.vectors(n)
	} else {
		x = device.AllocVector(n)
		z = device.AllocVector(n)
		w = device.AllocVector(n)
	}
	if opts.Start != nil {
		if len(opts.Start) != n {
			return ChebyshevResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(x, opts.Start) // self-copy when Start aliases the scratch iterate
	} else {
		vec.Fill(x, 1)
	}
	nrm := norm2(dev, x)
	if nrm == 0 {
		return ChebyshevResult{}, errors.New("core: start vector is zero")
	}
	scale(dev, x, 1/nrm)

	// Interval map: λ ↦ (2λ − (b+a))/(b−a) sends [a, b] to [−1, 1].
	center := (b + a) / 2
	halfWidth := (b - a) / 2

	sh := solveObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerCore, SolveKindChebyshev)
	}
	if sh != nil {
		sh.o.SolveStart(SolveKindChebyshev, n)
	}
	if opts.Observer != nil {
		notifyMethod(opts.Observer, SolveKindChebyshev)
		opts.Observer.Event(EventStart, 0, b, 0)
	}

	res := ChebyshevResult{Vector: x}
	bestResidual := math.Inf(1)
	stalled := 0
	lastMatVecs := 0
	for res.MatVecs < maxMatVecs {
		res.Restarts++
		// One degree-deg filter application via the three-term recurrence
		// z_{j+1} = 2·A'·z_j − z_{j−1} with A' = (W − c·I)/e, rescaling both
		// iterates jointly whenever they grow (the recurrence is linear, so
		// a joint rescale only changes the overall normalization).
		steps := deg
		if remaining := maxMatVecs - res.MatVecs; steps > remaining {
			steps = remaining
		}
		ph := beginPhase(sr, PhaseChebPoly)
		// z ← A'·x (degree 1), previous iterate is x (degree 0).
		op.Apply(w, x)
		res.MatVecs++
		chebMap(dev, z, w, x, center, halfWidth, nil)
		for j := 1; j < steps; j++ {
			op.Apply(w, z)
			res.MatVecs++
			// x ← 2·A'·z − x, then swap roles of x and z.
			chebMap2(dev, x, w, z, center, halfWidth)
			x, z = z, x
			if m := norm2(dev, x); m > 1e100 || (m < 1e-100 && m > 0) {
				inv := 1 / m
				scale(dev, x, inv)
				scale(dev, z, inv)
			}
		}
		// The in-loop swap leaves the newest iterate z_steps in z; swap once
		// more so x names the filtered vector.
		x, z = z, x
		span.End(ph, int64(res.Restarts), int64(steps))

		ph = beginPhase(sr, PhaseNormalize)
		nrm = norm2(dev, x)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			span.End(ph, int64(res.Restarts), 0)
			finishCheb(&res, x, opts.Work)
			powerDone(sh, sp, opts.Observer, SolveKindChebyshev, EventBreakdown, n, res.MatVecs, res.Lambda, res.Residual)
			return res, fmt.Errorf("core: Chebyshev iteration broke down at restart %d (‖x‖ = %g)", res.Restarts, nrm)
		}
		scale(dev, x, 1/nrm)
		span.End(ph, int64(res.Restarts), 0)

		// Rayleigh quotient and explicit residual of the filtered iterate.
		ph = beginPhase(sr, PhaseRayleigh)
		op.Apply(w, x)
		res.MatVecs++
		lambda := dot(dev, x, w)
		span.End(ph, int64(res.Restarts), 0)
		res.Lambda = lambda
		ph = beginPhase(sr, PhaseResidual)
		r := residual(dev, w, x, lambda)
		span.End(ph, int64(res.Restarts), 0)
		res.Residual = r
		if sh != nil {
			sh.o.SolveStep(SolveKindChebyshev, res.MatVecs-lastMatVecs)
		}
		lastMatVecs = res.MatVecs
		if opts.Observer != nil {
			opts.Observer.Step(res.MatVecs, lambda, r)
		}
		if r <= tol {
			res.Converged = true
			finishCheb(&res, x, opts.Work)
			powerDone(sh, sp, opts.Observer, SolveKindChebyshev, EventConverged, n, res.MatVecs, lambda, r)
			return res, nil
		}
		if r < bestResidual*(1-1e-6) {
			bestResidual = r
			stalled = 0
		} else if stalled++; stallRestarts > 0 && stalled >= stallRestarts {
			finishCheb(&res, x, opts.Work)
			powerDone(sh, sp, opts.Observer, SolveKindChebyshev, EventStagnated, n, res.MatVecs, lambda, r)
			return res, &ConvergenceError{
				Reason: ErrStagnated, Method: SolveKindChebyshev,
				Detail:     fmt.Sprintf("damping interval [%g, %g] may not separate λ₁ from λ₀", a, b),
				Iterations: res.MatVecs, Residual: r, BestResidual: bestResidual,
				SinceImprovement: stalled * deg, Shift: b, Tol: tol,
			}
		}
	}
	finishCheb(&res, x, opts.Work)
	powerDone(sh, sp, opts.Observer, SolveKindChebyshev, EventBudgetExhausted, n, res.MatVecs, res.Lambda, res.Residual)
	return res, &ConvergenceError{
		Reason: ErrNoConvergence, Method: SolveKindChebyshev,
		Iterations: res.MatVecs, Residual: res.Residual, BestResidual: bestResidual,
		Shift: b, Tol: tol,
	}
}

// finishCheb orients the final iterate and repoints the Work scratch so the
// next solve's vectors(n) call hands the caller-visible Vector back as the
// iterate (the swap inside the recurrence may have exchanged x and z).
func finishCheb(res *ChebyshevResult, x []float64, work *ChebyshevWork) {
	orientPositive(x)
	res.Vector = x
	if work != nil && &work.x[0] != &x[0] {
		work.x, work.z = x, work.x
	}
}

// chebMap computes out ← (w − c·x)/e, the degree-1 Chebyshev step
// T₁(A')·x with w = W·x. prev is unused (kept for symmetry with chebMap2).
func chebMap(dev *device.Device, out, w, x []float64, c, e float64, prev []float64) {
	_ = prev
	inv := 1 / e
	if dev != nil {
		od, wd, xd := out, w, x
		dev.LaunchRange(len(out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = (wd[i] - c*xd[i]) * inv
			}
		})
		return
	}
	for i := range out {
		out[i] = (w[i] - c*x[i]) * inv
	}
}

// chebMap2 computes out ← 2·(w − c·z)/e − out, the three-term recurrence
// step z_{j+1} = 2·A'·z_j − z_{j−1} with w = W·z and out holding z_{j−1}
// on entry.
func chebMap2(dev *device.Device, out, w, z []float64, c, e float64) {
	s := 2 / e
	if dev != nil {
		od, wd, zd := out, w, z
		dev.LaunchRange(len(out), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				od[i] = s*(wd[i]-c*zd[i]) - od[i]
			}
		})
		return
	}
	for i := range out {
		out[i] = s*(w[i]-c*z[i]) - out[i]
	}
}
