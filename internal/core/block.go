package core

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/span"
	"repro/internal/vec"
)

// This file adds the multi-vector solver machinery on top of the batched
// Fmmp kernel (mutation.ApplyBatch): an operator interface for pushing K
// vectors through W in one shared stage traversal, one-pass residual
// verification of many candidate eigenpairs (how the sweep engine
// cross-checks a whole sweep), and a block power iteration (orthogonal
// simultaneous iteration) that advances K iterates per traversal — the
// multi-vector analogue of the paper's Pi(Fmmp).

// BatchApplier is an Operator that can apply itself to K vectors in one
// shared traversal. Implementations must produce results bit-identical to
// K separate Apply calls; dst[j] may alias src[j].
type BatchApplier interface {
	Operator
	// ApplyBatch computes dst[j] ← A·src[j] for every j.
	ApplyBatch(dst, src [][]float64)
}

// ApplyBatch computes dst[j] ← W·src[j] for every j with one shared
// butterfly traversal per stage group (mutation.ApplyBatch); the
// per-vector diagonal scalings of the formulation are applied around it.
// Results are bit-identical to per-vector Apply.
func (op *FmmpOperator) ApplyBatch(dst, src [][]float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("core: ApplyBatch got %d dst but %d src vectors", len(dst), len(src)))
	}
	n := op.Dim()
	for j := range src {
		if len(dst[j]) != n || len(src[j]) != n {
			panic("core: FmmpOperator.ApplyBatch dimension mismatch")
		}
	}
	switch op.Form {
	case Right: // Q·F: scale each vector, then one batched transform
		for j := range src {
			mulInto(op.Dev, dst[j], src[j], op.fdiag)
		}
		op.applyQBatch(dst)
	case Symmetric: // F^½·Q·F^½
		for j := range src {
			mulInto(op.Dev, dst[j], src[j], op.fsqrt)
		}
		op.applyQBatch(dst)
		for j := range dst {
			mulInto(op.Dev, dst[j], dst[j], op.fsqrt)
		}
	case Left: // F·Q
		for j := range src {
			if &dst[j][0] != &src[j][0] {
				copyInto(op.Dev, dst[j], src[j])
			}
		}
		op.applyQBatch(dst)
		for j := range dst {
			mulInto(op.Dev, dst[j], dst[j], op.fdiag)
		}
	default:
		panic(fmt.Sprintf("core: unknown formulation %d", op.Form))
	}
}

func (op *FmmpOperator) applyQBatch(vs [][]float64) {
	if op.Dev != nil {
		op.Q.ApplyBatchDevice(op.Dev, vs)
	} else {
		op.Q.ApplyBatch(vs)
	}
}

// batchApply computes dst[j] ← A·src[j], through the operator's batched
// path when it has one.
func batchApply(op Operator, dst, src [][]float64) {
	if ba, ok := op.(BatchApplier); ok {
		ba.ApplyBatch(dst, src)
		return
	}
	for j := range src {
		op.Apply(dst[j], src[j])
	}
}

// BatchResiduals evaluates the paper's accuracy measure
// R(λ̃ⱼ, x̃ⱼ) = ‖W·x̃ⱼ − λ̃ⱼ·x̃ⱼ‖₂ for K candidate eigenpairs with a single
// batched operator pass — the sweep engine's end-of-run verification.
// scratch, when non-nil, must hold K vectors of the operator dimension and
// is overwritten; nil allocates internally.
func BatchResiduals(op Operator, lambdas []float64, xs, scratch [][]float64) ([]float64, error) {
	if len(lambdas) != len(xs) {
		return nil, fmt.Errorf("core: %d eigenvalues but %d vectors", len(lambdas), len(xs))
	}
	n := op.Dim()
	for j := range xs {
		if len(xs[j]) != n {
			return nil, fmt.Errorf("core: vector %d has length %d, want %d", j, len(xs[j]), n)
		}
	}
	if scratch == nil {
		scratch = make([][]float64, len(xs))
		for j := range scratch {
			scratch[j] = device.AllocVector(n)
		}
	} else if len(scratch) < len(xs) {
		return nil, fmt.Errorf("core: %d scratch vectors for %d candidates", len(scratch), len(xs))
	} else {
		for j := range xs {
			if len(scratch[j]) != n {
				return nil, fmt.Errorf("core: scratch vector %d has length %d, want %d", j, len(scratch[j]), n)
			}
		}
	}
	batchApply(op, scratch[:len(xs)], xs)
	out := make([]float64, len(xs))
	for j := range xs {
		var s float64
		lam := lambdas[j]
		x, w := xs[j], scratch[j]
		for i, wi := range w {
			r := wi - lam*x[i]
			s += r * r
		}
		out[j] = math.Sqrt(s)
	}
	return out, nil
}

// BlockPowerResult is the outcome of a block power iteration.
type BlockPowerResult struct {
	// Lambdas holds the leading eigenvalue estimates, dominant first.
	Lambdas []float64
	// Vectors holds the corresponding orthonormal eigenvector estimates.
	Vectors [][]float64
	// Iterations is the number of batched operator applications.
	Iterations int
	// Residuals holds the final per-pair ‖A·xⱼ − λⱼ·xⱼ‖₂.
	Residuals []float64
	// Converged reports whether every residual reached the tolerance.
	Converged bool
}

// BlockPowerIteration computes the k dominant eigenpairs of a *symmetric*
// operator by orthogonal simultaneous iteration: all k iterates advance
// through one batched operator application per step (a single shared
// butterfly traversal for Fmmp-backed operators), followed by modified
// Gram–Schmidt re-orthonormalization in fixed column order, so the result
// is deterministic. For the quasispecies matrices use the Symmetric
// formulation F^½·Q·F^½, whose spectrum equals that of Q·F; the leading
// two values give the spectral gap λ₁/λ₀ that governs power-iteration
// cost near the error threshold. opts.Start, when set, seeds the first
// column; remaining columns start from deterministic independent vectors.
func BlockPowerIteration(op Operator, k int, opts PowerOptions) (*BlockPowerResult, error) {
	n := op.Dim()
	if k < 1 || k > n {
		return nil, fmt.Errorf("core: block width %d outside [1, %d]", k, n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-11
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500000
	}

	X := make([][]float64, k)
	W := make([][]float64, k)
	for j := range X {
		X[j] = device.AllocVector(n)
		W[j] = device.AllocVector(n)
		for i := range X[j] {
			// Deterministic, pairwise independent starts with overlap on
			// every coordinate (cf. SecondEigenpair's start).
			X[j][i] = 1 + 0.5*math.Sin(float64((j+1)*(3*i+1)))
		}
	}
	if opts.Start != nil {
		if len(opts.Start) != n {
			return nil, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(X[0], opts.Start)
	}
	if err := orthonormalize(X); err != nil {
		return nil, err
	}

	sh := solveObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerCore, SolveKindBlockPower)
	}
	if sh != nil {
		sh.o.SolveStart(SolveKindBlockPower, n)
	}
	if opts.Observer != nil {
		notifyMethod(opts.Observer, SolveKindBlockPower)
		opts.Observer.Event(EventStart, 0, 0, 0)
	}
	res := &BlockPowerResult{
		Lambdas:   make([]float64, k),
		Residuals: make([]float64, k),
	}
	bestWorst := math.Inf(1)
	bestIter := 0
	worst := 0.0
	for iter := 1; iter <= maxIter; iter++ {
		ph := beginPhase(sr, PhaseMatvec)
		batchApply(op, W, X)
		span.End(ph, int64(iter), int64(k))
		res.Iterations = iter
		worst = 0.0
		ph = beginPhase(sr, PhaseResidual)
		for j := 0; j < k; j++ {
			theta := vec.Dot(X[j], W[j]) // Rayleigh quotient, ‖X[j]‖₂ = 1
			res.Lambdas[j] = theta
			var s float64
			for i, wi := range W[j] {
				r := wi - theta*X[j][i]
				s += r * r
			}
			res.Residuals[j] = math.Sqrt(s)
			if res.Residuals[j] > worst {
				worst = res.Residuals[j]
			}
		}
		span.End(ph, int64(iter), int64(k))
		if sh != nil {
			sh.o.SolveStep(SolveKindBlockPower, 1)
		}
		if opts.Observer != nil {
			// Step reports the dominant estimate and the worst residual of
			// the block — the pair that bounds overall convergence.
			opts.Observer.Step(iter, res.Lambdas[0], worst)
		}
		if worst < bestWorst {
			bestWorst = worst
			bestIter = iter
		}
		if worst <= tol {
			res.Converged = true
			break
		}
		ph = beginPhase(sr, PhaseOrthonormalize)
		err := orthonormalize(W)
		span.End(ph, int64(iter), int64(k))
		if err != nil {
			powerDone(sh, sp, opts.Observer, SolveKindBlockPower, EventBreakdown, n, iter, res.Lambdas[0], worst)
			return res, fmt.Errorf("core: block iteration broke down at step %d: %w", iter, err)
		}
		X, W = W, X
	}
	for j := range X {
		orientPositive(X[j])
	}
	res.Vectors = X
	if !res.Converged {
		powerDone(sh, sp, opts.Observer, SolveKindBlockPower, EventBudgetExhausted, n, res.Iterations, res.Lambdas[0], worst)
		return res, &ConvergenceError{
			Reason: ErrNoConvergence, Method: SolveKindBlockPower,
			Iterations: res.Iterations, Residual: maxSlice(res.Residuals), BestResidual: bestWorst,
			SinceImprovement: res.Iterations - bestIter, Shift: opts.Shift, Tol: tol,
		}
	}
	powerDone(sh, sp, opts.Observer, SolveKindBlockPower, EventConverged, n, res.Iterations, res.Lambdas[0], worst)
	return res, nil
}

// orthonormalize runs modified Gram–Schmidt over the vectors in index
// order, normalizing each to unit 2-norm.
func orthonormalize(vs [][]float64) error {
	for j := range vs {
		for t := 0; t < j; t++ {
			vec.AXPY(-vec.Dot(vs[t], vs[j]), vs[t], vs[j])
		}
		nrm := vec.Norm2(vs[j])
		if nrm < 1e-300 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			return fmt.Errorf("core: basis vector %d collapsed (‖v‖ = %g)", j, nrm)
		}
		vec.Scale(vs[j], 1/nrm)
	}
	return nil
}

func maxSlice(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
