package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/vec"
)

// The adaptive critical-window engine: a per-sweep-point method selector
// over the solver gears of this package. Far from the error threshold the
// shifted power iteration is unbeatable (2·N memory, one matvec per step);
// as p approaches p_c the spectral gap collapses exponentially and the
// selector shifts gears — Chebyshev-filtered restarts (quadratic rate
// improvement, still 3·N memory), then shift-invert Lanczos with
// warm-started shifts µ carried along the p-sweep. Selection is driven by
// an online gap estimate: a k-step Lanczos probe (RitzGap) whose Ritz
// values bound λ₀ and λ₁ from below by Cauchy interlacing.
//
// Everything here is deterministic — probes use fixed starts, thresholds
// are pure arithmetic, escalation is a fixed ladder — so batched sweeps
// stay bit-identical at every worker count (the batch layer's contract).

// SolveMethod selects the eigensolver gear of a sweep point. The zero
// value is the plain power iteration, keeping existing sweep paths
// byte-for-byte unchanged.
type SolveMethod int

const (
	// SolvePower is the (optionally shifted) power iteration — the paper's
	// baseline and the right tool away from the critical window.
	SolvePower SolveMethod = iota
	// SolveAuto probes the gap at each point and picks the cheapest gear.
	SolveAuto
	// SolveChebyshev forces Chebyshev-filtered restarts.
	SolveChebyshev
	// SolveShiftInvert forces shift-invert Lanczos.
	SolveShiftInvert
	// SolveLanczos forces the restarted Lanczos solver.
	SolveLanczos
)

func (m SolveMethod) String() string {
	switch m {
	case SolvePower:
		return "power"
	case SolveAuto:
		return "auto"
	case SolveChebyshev:
		return "chebyshev"
	case SolveShiftInvert:
		return "shiftinvert"
	case SolveLanczos:
		return "lanczos"
	default:
		return fmt.Sprintf("SolveMethod(%d)", int(m))
	}
}

// ParseSolveMethod parses the CLI spelling of a solve method. The empty
// string means SolvePower (the historical default).
func ParseSolveMethod(s string) (SolveMethod, error) {
	switch s {
	case "", "power":
		return SolvePower, nil
	case "auto":
		return SolveAuto, nil
	case "chebyshev", "cheb":
		return SolveChebyshev, nil
	case "shiftinvert", "shift-invert", "shift_invert", "si":
		return SolveShiftInvert, nil
	case "lanczos":
		return SolveLanczos, nil
	default:
		return SolvePower, fmt.Errorf("core: unknown solve method %q (want auto, power, chebyshev, shiftinvert or lanczos)", s)
	}
}

// MethodState is the selector state a warm-start chain carries from point
// to point: the previous eigenvalue doubles as the next shift-invert shift
// (λ₀(p) is decreasing along increasing p, so the previous λ₀ lies above
// the next point's spectrum automatically). Chain-local by construction —
// reset it at every chain head to keep sweeps worker-count independent.
type MethodState struct {
	// HavePrev reports whether PrevLambda holds the previous point's λ₀.
	HavePrev bool
	// PrevLambda is λ₀ of the previous chain point.
	PrevLambda float64
	// LastMethod is the gear that solved the previous point.
	LastMethod SolveMethod
}

// Reset clears the state (chain head).
func (s *MethodState) Reset() { *s = MethodState{} }

// AdaptiveWork is the per-slot scratch of adaptive solves: the power
// iterate pair (which also stages the Right-form result every gear
// returns), plus lazily allocated Chebyshev, shift-invert, and probe
// scratch — power-only sweeps never pay for the Krylov buffers.
type AdaptiveWork struct {
	// Power is the power-gear scratch; AdaptiveResult.Vector always
	// aliases its iterate, whatever gear produced it.
	Power *PowerWork
	cheb  *ChebyshevWork
	si    *ShiftInvertWork
	probe *KrylovWork
	sym   []float64 // symmetric-form start/result staging
}

// NewAdaptiveWork returns scratch for dimension-n adaptive solves.
func NewAdaptiveWork(n int) *AdaptiveWork {
	return &AdaptiveWork{Power: NewPowerWork(n)}
}

func (aw *AdaptiveWork) symBuf(n int) []float64 {
	if len(aw.sym) != n {
		aw.sym = device.AllocVector(n)
	}
	return aw.sym
}

// AdaptiveOptions configures one adaptive solve.
type AdaptiveOptions struct {
	// Method is the requested gear; SolveAuto engages the selector.
	Method SolveMethod
	// Tol is the residual tolerance (applies to every gear). Default 1e-13.
	Tol float64
	// MaxIter caps matrix–vector products per gear attempt (0 = solver
	// defaults).
	MaxIter int
	// PowerShift is the spectral shift of the power gear (use
	// ConservativeShift); it also sharpens the probe's rate prediction.
	PowerShift float64
	// Start is the Right-form warm start; may alias Work.Power's iterate
	// (the continuation pattern). Nil cold-starts each gear.
	Start []float64
	// Dev selects device-parallel BLAS-1 operations; nil runs serially.
	Dev *device.Device
	// Observer, when non-nil, receives the convergence trace of every gear
	// attempt of this point.
	Observer Observer
	// Work supplies reusable per-slot scratch. Nil allocates fresh.
	Work *AdaptiveWork
	// State, when non-nil, carries selector state along a warm-start chain
	// and is updated in place on success.
	State *MethodState
	// ProbeSteps is the Lanczos probe length of the auto selector.
	// Default 24.
	ProbeSteps int
	// PowerIterLimit is the probe-predicted power iteration count above
	// which auto abandons the power gear. Default 3000.
	PowerIterLimit int
}

// AdaptiveResult is the outcome of an adaptive solve.
type AdaptiveResult struct {
	// Method is the gear that produced the accepted result.
	Method SolveMethod
	// Escalations counts abandoned gear attempts before Method succeeded.
	Escalations int
	// Lambda is the dominant eigenvalue (formulation-invariant).
	Lambda float64
	// Vector is the Right-form eigenvector, unit 2-norm, non-negative
	// orientation; aliases Work.Power's iterate.
	Vector []float64
	// Iterations is the total matrix–vector product count across the
	// probe and every gear attempt.
	Iterations int
	// Residual is the accepted gear's final residual (in its own
	// formulation).
	Residual float64
	// Converged reports whether the accepted gear met Tol.
	Converged bool
	// Mu is the shift-invert shift that succeeded (0 when unused).
	Mu float64
	// Probed reports whether the selector ran a gap probe; Theta0/Theta1
	// are its Ritz values when it did.
	Probed         bool
	Theta0, Theta1 float64
}

// AdaptiveSolve computes the dominant eigenpair with the requested gear
// (or the auto selector). opR and opS are the Right and Symmetric
// formulations of the same (Q, F) problem — share diagonals via
// FmmpOperator.WithProcess; the power gear runs on opR (bit-identical to
// the historical sweep path), the Krylov/Chebyshev gears on opS.
func AdaptiveSolve(opR, opS *FmmpOperator, opts AdaptiveOptions) (AdaptiveResult, error) {
	n := opR.Dim()
	if opS.Dim() != n {
		return AdaptiveResult{}, fmt.Errorf("core: formulation dimensions differ (%d vs %d)", n, opS.Dim())
	}
	if opS.Form != Symmetric {
		return AdaptiveResult{}, fmt.Errorf("core: adaptive solve needs the Symmetric formulation, got %v", opS.Form)
	}
	work := opts.Work
	if work == nil {
		work = NewAdaptiveWork(n)
	}
	if work.Power == nil {
		work.Power = NewPowerWork(n)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-13
	}
	probeSteps := opts.ProbeSteps
	if probeSteps <= 0 {
		probeSteps = 24
	}
	powerLimit := opts.PowerIterLimit
	if powerLimit <= 0 {
		powerLimit = 3000
	}

	res := AdaptiveResult{}
	switch opts.Method {
	case SolvePower:
		return res, errors.New("core: AdaptiveSolve does not implement the plain power path; call PowerIteration directly")
	case SolveLanczos:
		return adaptiveLanczos(opS, opts, work, tol, &res)
	case SolveChebyshev, SolveShiftInvert, SolveAuto:
		// All three need the probe: forced Chebyshev needs filter edges,
		// forced shift-invert needs a λ₀ bound for its shift ladder, and
		// auto needs the rate estimate.
	default:
		return res, fmt.Errorf("core: unknown solve method %v", opts.Method)
	}

	theta0, theta1, probeErr := RitzGap(opS, probeSteps, nil, work.probeWork())
	res.Iterations += probeSteps
	if probeErr != nil && !errors.Is(probeErr, ErrGapUnresolved) {
		return res, probeErr
	}
	res.Probed, res.Theta0, res.Theta1 = true, theta0, theta1
	// The probe resolves the pair when its Ritz separation clears the
	// floating-point floor of θ₀ by a safe factor.
	sep := theta0 - theta1
	resolved := probeErr == nil && sep > 1e-10*math.Abs(theta0)

	gear := opts.Method
	if gear == SolveAuto {
		gear = SolveShiftInvert // the unresolved-probe default: deepest window
		if resolved {
			rate := theta1 / theta0
			if mu := opts.PowerShift; mu > 0 && mu < theta1 {
				rate = (theta1 - mu) / (theta0 - mu)
			}
			if rate < 1 {
				if iters, err := PredictIterations(rate, 1e-10); err == nil && iters <= powerLimit {
					gear = SolvePower
				} else {
					gear = SolveChebyshev
				}
			} else {
				gear = SolveChebyshev
			}
		}
	}

	if gear == SolvePower {
		pres, err := PowerIteration(opR, PowerOptions{
			Tol: tol, MaxIter: opts.MaxIter, Start: opts.Start,
			Shift: opts.PowerShift, Dev: opts.Dev, Work: work.Power,
			Observer: opts.Observer,
		})
		res.Method = SolvePower
		res.Lambda, res.Vector = pres.Lambda, pres.Vector
		res.Iterations += pres.Iterations
		res.Residual, res.Converged = pres.Residual, pres.Converged
		if err != nil {
			// Inside a misjudged window the power gear stalls; escalate
			// instead of failing the sweep point.
			if opts.Method == SolveAuto && (errors.Is(err, ErrStagnated) || errors.Is(err, ErrNoConvergence)) {
				res.Escalations++
				gear = SolveChebyshev
			} else {
				finishAdaptive(&res, opts.State)
				return res, err
			}
		} else {
			finishAdaptive(&res, opts.State)
			return res, nil
		}
	}

	// The Krylov/Chebyshev gears run in the Symmetric formulation: stage
	// the Right-form start as x_S = F^½·x_R.
	symStart := work.symBuf(n)
	if opts.Start != nil && len(opts.Start) == n {
		copy(symStart, opts.Start)
	} else {
		copy(symStart, FitnessStart(opS.F))
	}
	if err := ConvertEigenvector(symStart, Right, Symmetric, opS.F); err != nil {
		return res, err
	}
	if nrm := vec.Norm2(symStart); nrm > 0 {
		vec.Scale(symStart, 1/nrm)
	} else {
		vec.Fill(symStart, 1)
	}

	if gear == SolveChebyshev && resolved {
		// Safe filter edge: θ₁ ≤ λ₁ and θ₀ ≤ λ₀ (interlacing), so
		// b = θ₁ + ½(θ₀−θ₁) < θ₀ ≤ λ₀ always separates once the probe has
		// converged to λ₁ from below.
		if work.cheb == nil {
			work.cheb = NewChebyshevWork(n)
		}
		cres, err := ChebyshevIteration(opS, ChebyshevOptions{
			Tol: tol, UpperEdge: theta1 + 0.5*sep, MaxMatVecs: opts.MaxIter,
			Start: symStart, Dev: opts.Dev, Work: work.cheb, Observer: opts.Observer,
		})
		res.Iterations += cres.MatVecs
		if err == nil {
			res.Method = SolveChebyshev
			res.Lambda, res.Residual, res.Converged = cres.Lambda, cres.Residual, true
			if cerr := acceptSymmetric(&res, work, opS, cres.Vector); cerr != nil {
				return res, cerr
			}
			finishAdaptive(&res, opts.State)
			return res, nil
		}
		if !(errors.Is(err, ErrStagnated) || errors.Is(err, ErrNoConvergence)) {
			return res, err
		}
		// Mis-set edge or tighter window than the probe suggested:
		// escalate, reusing the partial iterate as the next start.
		res.Escalations++
		copy(symStart, cres.Vector)
		gear = SolveShiftInvert
	} else if gear == SolveChebyshev {
		// Forced Chebyshev with an unresolved probe cannot set safe edges.
		res.Escalations++
		gear = SolveShiftInvert
	}

	// Shift-invert ladder. The warm shift is the previous chain point's λ₀
	// (guaranteed above the current spectrum on monotone sweeps); cold
	// chains fall back to the provable bound λ₀ ≤ f_max. Failed attempts
	// tighten (after ErrNoConvergence, toward the improved λ estimate) or
	// widen (after ErrBadShift, toward f_max and beyond) deterministically.
	if work.si == nil {
		work.si = NewShiftInvertWork(n)
	}
	upper := UpperBoundLambda(opS.F)
	mu := upper
	if st := opts.State; st != nil && st.HavePrev && st.PrevLambda > theta0 {
		mu = st.PrevLambda
	}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		sres, err := ShiftInvertLanczos(opS, ShiftInvertOptions{
			Tol: tol, Shift: mu, Start: symStart, Dev: opts.Dev,
			Work: work.si, Observer: opts.Observer,
		})
		res.Iterations += sres.MatVecs
		if err == nil {
			res.Method = SolveShiftInvert
			res.Mu = mu
			res.Lambda, res.Residual, res.Converged = sres.Lambda, sres.Residual, true
			if cerr := acceptSymmetric(&res, work, opS, sres.Vector); cerr != nil {
				return res, cerr
			}
			finishAdaptive(&res, opts.State)
			return res, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, ErrBadShift):
			// µ landed at or below λ₀: widen toward (and past) the provable
			// upper bound.
			res.Escalations++
			if mu < upper {
				mu = upper
			} else {
				mu = upper * (1 + math.Ldexp(1, attempt-6)) // ×(1+2^(a−6)): 1.015…1.25
			}
		case errors.Is(err, ErrNoConvergence):
			// Progress was made: restart from the improved iterate with a
			// shift tightened toward the improved λ estimate. The margin
			// stays above the Rayleigh error ≈ residual²/gap by using the
			// residual itself (gap ≥ residual whenever SI is converging).
			res.Escalations++
			copy(symStart, sres.Vector)
			mu = sres.Lambda + math.Max(4*sres.Residual, 1e-12*math.Abs(sres.Lambda))
		default:
			res.Method = SolveShiftInvert
			res.Mu = mu
			return res, err
		}
	}
	res.Method = SolveShiftInvert
	res.Mu = mu
	return res, fmt.Errorf("core: adaptive shift-invert ladder exhausted: %w", lastErr)
}

// adaptiveLanczos runs the forced restarted-Lanczos gear.
func adaptiveLanczos(opS *FmmpOperator, opts AdaptiveOptions, work *AdaptiveWork, tol float64, res *AdaptiveResult) (AdaptiveResult, error) {
	n := opS.Dim()
	symStart := work.symBuf(n)
	if opts.Start != nil && len(opts.Start) == n {
		copy(symStart, opts.Start)
	} else {
		copy(symStart, FitnessStart(opS.F))
	}
	if err := ConvertEigenvector(symStart, Right, Symmetric, opS.F); err != nil {
		return *res, err
	}
	if nrm := vec.Norm2(symStart); nrm > 0 {
		vec.Scale(symStart, 1/nrm)
	} else {
		vec.Fill(symStart, 1)
	}
	lres, err := Lanczos(opS, LanczosOptions{Tol: tol, Start: symStart, Observer: opts.Observer})
	res.Iterations += lres.MatVecs
	res.Method = SolveLanczos
	res.Lambda, res.Residual, res.Converged = lres.Lambda, lres.Residual, lres.Converged
	if err != nil {
		return *res, err
	}
	if cerr := acceptSymmetric(res, work, opS, lres.Vector); cerr != nil {
		return *res, cerr
	}
	finishAdaptive(res, opts.State)
	return *res, nil
}

// acceptSymmetric converts a Symmetric-form eigenvector into the Right
// form, staged in the power scratch so Vector obeys the same aliasing
// contract as the power gear (and remains a valid warm start).
func acceptSymmetric(res *AdaptiveResult, work *AdaptiveWork, opS *FmmpOperator, symVec []float64) error {
	x, _ := work.Power.vectors(len(symVec))
	copy(x, symVec)
	if err := ConvertEigenvector(x, Symmetric, Right, opS.F); err != nil {
		return err
	}
	nrm := vec.Norm2(x)
	if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
		return errors.New("core: eigenvector collapsed in formulation conversion")
	}
	vec.Scale(x, 1/nrm)
	orientPositive(x)
	res.Vector = x
	return nil
}

// finishAdaptive records the accepted solve into the chain state.
func finishAdaptive(res *AdaptiveResult, st *MethodState) {
	if st == nil {
		return
	}
	st.HavePrev = true
	st.PrevLambda = res.Lambda
	st.LastMethod = res.Method
}

func (aw *AdaptiveWork) probeWork() *KrylovWork {
	if aw.probe == nil {
		aw.probe = &KrylovWork{}
	}
	return aw.probe
}
