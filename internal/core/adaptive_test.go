package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/landscape"
	"repro/internal/mutation"
)

// criticalProblem returns a single-peak problem near its error threshold
// p_c = 1 − σ^(−1/ν), where the spectral gap is small and the Krylov gears
// earn their keep.
func criticalProblem(t *testing.T, nu int, frac float64) (*mutation.Process, landscape.Landscape, float64) {
	t.Helper()
	l, err := landscape.NewSinglePeak(nu, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := 1 - math.Pow(10, -1/float64(nu))
	p := frac * pc
	q := mutation.MustUniform(nu, p)
	return q, l, p
}

func referenceLambda(t *testing.T, q *mutation.Process, l landscape.Landscape) (float64, []float64) {
	t.Helper()
	op, err := NewFmmpOperator(q, l, Right, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PowerIteration(op, PowerOptions{
		Tol: 1e-12, MaxIter: 5000000, Start: FitnessStart(l),
		Shift: ConservativeShift(q, l),
	})
	if err != nil && !errors.Is(err, ErrStagnated) {
		t.Fatal(err)
	}
	return res.Lambda, res.Vector
}

func TestChebyshevMatchesPower(t *testing.T) {
	q, l, _ := criticalProblem(t, 8, 0.9)
	want, _ := referenceLambda(t, q, l)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	theta0, theta1, err := RitzGap(opS, 24, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ChebyshevIteration(opS, ChebyshevOptions{
		Tol: 1e-12, UpperEdge: theta1 + 0.5*(theta0-theta1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.Lambda-want) > 1e-9 {
		t.Fatalf("λ = %.15g, power reference %.15g", res.Lambda, want)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("residual %g above tolerance", res.Residual)
	}
}

func TestChebyshevRejectsEmptyInterval(t *testing.T) {
	q, l, _ := criticalProblem(t, 6, 0.5)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	if _, err := ChebyshevIteration(opS, ChebyshevOptions{UpperEdge: 0}); err == nil {
		t.Fatal("expected an error for an empty damping interval")
	}
}

func TestShiftInvertMatchesPower(t *testing.T) {
	q, l, _ := criticalProblem(t, 8, 0.95)
	want, _ := referenceLambda(t, q, l)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	res, err := ShiftInvertLanczos(opS, ShiftInvertOptions{
		Tol: 1e-12, Shift: UpperBoundLambda(l),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.Lambda-want) > 1e-9 {
		t.Fatalf("λ = %.15g, power reference %.15g", res.Lambda, want)
	}
}

func TestShiftInvertDetectsBadShift(t *testing.T) {
	q, l, _ := criticalProblem(t, 6, 0.5)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	want, _ := referenceLambda(t, q, l)
	// A shift at half the dominant eigenvalue is inside the spectrum:
	// (µI − S) is indefinite and CG must flag it quickly.
	_, err := ShiftInvertLanczos(opS, ShiftInvertOptions{Tol: 1e-12, Shift: want / 2})
	if !errors.Is(err, ErrBadShift) {
		t.Fatalf("got %v, want ErrBadShift", err)
	}
}

func TestRitzGapInterlacesDenseSpectrum(t *testing.T) {
	q, l, _ := criticalProblem(t, 7, 0.8)
	vals := denseSpectrum(t, q, l)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	theta0, theta1, err := RitzGap(opS, 30, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cauchy interlacing: Ritz values are lower bounds (up to roundoff).
	if theta0 > vals[0]+1e-10 || theta1 > vals[1]+1e-10 {
		t.Fatalf("Ritz values (%.12g, %.12g) exceed eigenvalues (%.12g, %.12g)",
			theta0, theta1, vals[0], vals[1])
	}
	// And with a 30-step probe at ν=7 they should be tight.
	if math.Abs(theta0-vals[0]) > 1e-8 || math.Abs(theta1-vals[1]) > 1e-6 {
		t.Fatalf("probe not tight: (%.12g, %.12g) vs (%.12g, %.12g)",
			theta0, theta1, vals[0], vals[1])
	}
}

func TestAdaptiveSolveAutoFarFromThresholdPicksPower(t *testing.T) {
	q, l, _ := criticalProblem(t, 8, 0.4)
	opR, _ := NewFmmpOperator(q, l, Right, nil)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	res, err := AdaptiveSolve(opR, opS, AdaptiveOptions{
		Method: SolveAuto, Tol: 1e-12, Start: FitnessStart(l),
		PowerShift: ConservativeShift(q, l),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != SolvePower {
		t.Fatalf("far from threshold the selector picked %v, want power", res.Method)
	}
	want, _ := referenceLambda(t, q, l)
	if math.Abs(res.Lambda-want) > 1e-9 {
		t.Fatalf("λ = %.15g, want %.15g", res.Lambda, want)
	}
}

func TestAdaptiveSolveGearsAgreeNearThreshold(t *testing.T) {
	q, l, _ := criticalProblem(t, 8, 0.98)
	want, wantVec := referenceLambda(t, q, l)
	opR, _ := NewFmmpOperator(q, l, Right, nil)
	opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
	for _, m := range []SolveMethod{SolveAuto, SolveChebyshev, SolveShiftInvert, SolveLanczos} {
		res, err := AdaptiveSolve(opR, opS, AdaptiveOptions{
			Method: m, Tol: 1e-12, Start: FitnessStart(l),
			PowerShift: ConservativeShift(q, l),
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(res.Lambda-want) > 1e-8 {
			t.Fatalf("%v: λ = %.15g, want %.15g", m, res.Lambda, want)
		}
		// Right-form eigenvectors must agree up to sign (orientation fixes
		// the sign, so directly).
		var dot float64
		for i := range res.Vector {
			dot += res.Vector[i] * wantVec[i]
		}
		if dot < 1-1e-6 {
			t.Fatalf("%v: eigenvector overlap %g with power reference", m, dot)
		}
	}
}

func TestAdaptiveSolveWarmShiftChain(t *testing.T) {
	// Sweep three p values up to near-critical along one chain: the state
	// must carry λ₀ forward, and every point must converge with a bounded
	// matvec count.
	const nu = 8
	l, err := landscape.NewSinglePeak(nu, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	pc := 1 - math.Pow(10, -1/float64(nu))
	work := NewAdaptiveWork(1 << nu)
	state := &MethodState{}
	var start []float64
	for _, frac := range []float64{0.90, 0.95, 0.99} {
		q := mutation.MustUniform(nu, frac*pc)
		opR, _ := NewFmmpOperator(q, l, Right, nil)
		opS, _ := NewFmmpOperator(q, l, Symmetric, nil)
		res, err := AdaptiveSolve(opR, opS, AdaptiveOptions{
			Method: SolveAuto, Tol: 1e-11, Start: start,
			PowerShift: ConservativeShift(q, l), Work: work, State: state,
		})
		if err != nil {
			t.Fatalf("p = %g·p_c: %v", frac, err)
		}
		if !state.HavePrev || state.PrevLambda != res.Lambda {
			t.Fatalf("state not updated at p = %g·p_c", frac)
		}
		if res.Iterations > 100000 {
			t.Fatalf("p = %g·p_c: unbounded solve (%d matvecs)", frac, res.Iterations)
		}
		want, _ := referenceLambda(t, q, l)
		if math.Abs(res.Lambda-want) > 1e-8 {
			t.Fatalf("p = %g·p_c: λ = %.15g, want %.15g", frac, res.Lambda, want)
		}
		start = res.Vector // continuation: aliases work.Power's iterate
	}
}

func TestParseSolveMethod(t *testing.T) {
	cases := []struct {
		in   string
		want SolveMethod
		ok   bool
	}{
		{"", SolvePower, true},
		{"power", SolvePower, true},
		{"auto", SolveAuto, true},
		{"chebyshev", SolveChebyshev, true},
		{"cheb", SolveChebyshev, true},
		{"shiftinvert", SolveShiftInvert, true},
		{"shift-invert", SolveShiftInvert, true},
		{"shift_invert", SolveShiftInvert, true},
		{"lanczos", SolveLanczos, true},
		{"newton", SolvePower, false},
	}
	for _, c := range cases {
		got, err := ParseSolveMethod(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSolveMethod(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSolveMethod(%q) accepted", c.in)
		}
	}
	for _, m := range []SolveMethod{SolvePower, SolveAuto, SolveChebyshev, SolveShiftInvert, SolveLanczos} {
		back, err := ParseSolveMethod(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip %v → %q → %v, %v", m, m.String(), back, err)
		}
	}
}
