package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestConvergenceErrorJSONRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		err  ConvergenceError
	}{
		{
			name: "budget exhausted",
			err: ConvergenceError{
				Reason: ErrNoConvergence, Method: SolveKindPower,
				Iterations: 500000, Residual: 3.2e-11, BestResidual: 3.1e-11,
				SinceImprovement: 12, Shift: 0.25, Tol: 1e-13,
			},
		},
		{
			name: "stagnated",
			err: ConvergenceError{
				Reason: ErrStagnated, Method: SolveKindChebyshev,
				Detail:     "inside the critical window",
				Iterations: 812, Residual: 7.7e-14, BestResidual: 7.7e-14,
				SinceImprovement: 100, Tol: 1e-15,
			},
		},
		{
			name: "monitor abort",
			err: ConvergenceError{
				Reason: ErrNoConvergence, Method: SolveKindShiftInvert,
				Detail: "aborted by monitor", Iterations: 4,
			},
		},
		{
			name: "custom reason survives as text",
			err: ConvergenceError{
				Reason: errors.New("some future cause"), Iterations: 1,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data, err := json.Marshal(&c.err)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back ConvergenceError
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			// Sentinel reasons must restore to the package sentinels so
			// errors.Is keeps working after the round-trip.
			switch {
			case errors.Is(c.err.Reason, ErrNoConvergence):
				if !errors.Is(back.Reason, ErrNoConvergence) {
					t.Errorf("reason did not restore to ErrNoConvergence: %v", back.Reason)
				}
			case errors.Is(c.err.Reason, ErrStagnated):
				if !errors.Is(back.Reason, ErrStagnated) {
					t.Errorf("reason did not restore to ErrStagnated: %v", back.Reason)
				}
			default:
				if back.Reason == nil || back.Reason.Error() != c.err.Reason.Error() {
					t.Errorf("custom reason %v round-tripped to %v", c.err.Reason, back.Reason)
				}
			}
			if back.Method != c.err.Method || back.Detail != c.err.Detail {
				t.Errorf("method/detail = %q/%q, want %q/%q",
					back.Method, back.Detail, c.err.Method, c.err.Detail)
			}
			if back.Iterations != c.err.Iterations ||
				back.Residual != c.err.Residual ||
				back.BestResidual != c.err.BestResidual ||
				back.SinceImprovement != c.err.SinceImprovement ||
				back.Shift != c.err.Shift || back.Tol != c.err.Tol {
				t.Errorf("numeric fields drifted: got %+v want %+v", back, c.err)
			}
		})
	}
}

func TestConvergenceErrorJSONTokens(t *testing.T) {
	// The wire reason is a stable token, not the sentinel's message text.
	data, err := json.Marshal(&ConvergenceError{Reason: ErrStagnated})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"stagnated"`) {
		t.Fatalf("wire form %s does not use the stagnated token", data)
	}
	data, err = json.Marshal(&ConvergenceError{Reason: ErrNoConvergence})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"reason":"no_convergence"`) {
		t.Fatalf("wire form %s does not use the no_convergence token", data)
	}
}

func TestGapUnresolvedErrorJSONRoundTrip(t *testing.T) {
	cases := []GapUnresolvedError{
		{Reason: "near_degenerate", Lambda0: 2.0001, Lambda1: 2.0000, Separation: 1e-4, Resolution: 2e-4},
		{Reason: "unconverged_ritz", Lambda0: 1.5, Lambda1: 1.1, Separation: 0.4, Resolution: 0.5},
	}
	for _, c := range cases {
		t.Run(c.Reason, func(t *testing.T) {
			data, err := json.Marshal(&c)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back GapUnresolvedError
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal %s: %v", data, err)
			}
			if back != c {
				t.Errorf("round-trip = %+v, want %+v", back, c)
			}
		})
	}
}

func TestGapUnresolvedErrorJSONRejectsMissingReason(t *testing.T) {
	var e GapUnresolvedError
	if err := json.Unmarshal([]byte(`{"lambda0": 2}`), &e); err == nil {
		t.Fatal("accepted gap error JSON without a reason")
	}
}
