package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/rng"
	"repro/internal/vec"
)

func asymmetricProcess(t *testing.T, nu int, seed uint64) *mutation.Process {
	t.Helper()
	r := rng.New(seed)
	factors := make([]mutation.Factor2, nu)
	for i := range factors {
		c0 := 0.01 + 0.05*r.Float64()
		c1 := 0.01 + 0.15*r.Float64() // strongly asymmetric
		factors[i] = mutation.Factor2{A: 1 - c0, B: c1, C: c0, D: 1 - c1}
	}
	q, err := mutation.NewPerSite(factors)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestArnoldiMatchesPowerOnNonsymmetricW(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		const nu = 8
		q := asymmetricProcess(t, nu, seed)
		l := randLandscape(rng.New(seed+10), nu)
		op, _ := NewFmmpOperator(q, l, Right, nil)

		pi, err := PowerIteration(op, PowerOptions{Tol: 1e-11, Start: FitnessStart(l)})
		if err != nil {
			t.Fatal(err)
		}
		ar, err := Arnoldi(op, ArnoldiOptions{Tol: 1e-11, Start: FitnessStart(l)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ar.Converged {
			t.Fatal("Arnoldi did not converge")
		}
		if math.Abs(ar.Lambda-pi.Lambda) > 1e-8 {
			t.Errorf("seed %d: Arnoldi λ = %.14g, power λ = %.14g", seed, ar.Lambda, pi.Lambda)
		}
		if d := vec.DistInf(ar.Vector, pi.Vector); d > 1e-6 {
			t.Errorf("seed %d: eigenvectors differ by %g", seed, d)
		}
		t.Logf("seed %d: Arnoldi %d matvecs vs power %d iterations", seed, ar.MatVecs, pi.Iterations)
	}
}

func TestArnoldiOnSymmetricAgreesWithLanczos(t *testing.T) {
	const nu = 8
	q := mutation.MustUniform(nu, 0.02)
	l := randLandscape(rng.New(3), nu)
	op, _ := NewFmmpOperator(q, l, Symmetric, nil)
	lz, err := Lanczos(op, LanczosOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Arnoldi(op, ArnoldiOptions{Tol: 1e-11, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ar.Lambda-lz.Lambda) > 1e-8 {
		t.Errorf("Arnoldi λ = %.14g, Lanczos λ = %.14g", ar.Lambda, lz.Lambda)
	}
	if d := vec.DistInf(ar.Vector, lz.Vector); d > 1e-6 {
		t.Errorf("eigenvectors differ by %g", d)
	}
}

func TestArnoldiBeatsPowerNearThreshold(t *testing.T) {
	const nu = 10
	q := mutation.MustUniform(nu, 0.05)
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	pi, err := PowerIteration(op, PowerOptions{Tol: 1e-10, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Arnoldi(op, ArnoldiOptions{Tol: 1e-10, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if ar.MatVecs >= pi.Iterations {
		t.Errorf("Arnoldi used %d matvecs vs power's %d near the threshold", ar.MatVecs, pi.Iterations)
	}
}

func TestArnoldiValidation(t *testing.T) {
	q := mutation.MustUniform(4, 0.1)
	l, _ := landscape.NewUniform(4, 1)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	if _, err := Arnoldi(op, ArnoldiOptions{Start: make([]float64, 3)}); err == nil {
		t.Error("wrong start length must be rejected")
	}
	if _, err := Arnoldi(op, ArnoldiOptions{Start: make([]float64, 16)}); err == nil {
		t.Error("zero start must be rejected")
	}
}

func TestArnoldiBudgetExhaustion(t *testing.T) {
	const nu = 8
	q := mutation.MustUniform(nu, 0.04)
	l, _ := landscape.NewSinglePeak(nu, 2, 1)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := Arnoldi(op, ArnoldiOptions{Tol: 1e-14, BasisSize: 2, MaxRestarts: 2})
	if err == nil {
		t.Fatal("tiny budget must fail")
	}
	if !errors.Is(err, ErrNoConvergence) && !errors.Is(err, ErrStagnated) {
		t.Errorf("err = %v, want ErrNoConvergence or ErrStagnated", err)
	}
	if res.Vector == nil {
		t.Error("partial result must be populated")
	}
}

func TestArnoldiFullDimensionBasis(t *testing.T) {
	q := mutation.MustUniform(3, 0.05)
	l := randLandscape(rng.New(4), 3)
	op, _ := NewFmmpOperator(q, l, Right, nil)
	res, err := Arnoldi(op, ArnoldiOptions{Tol: 1e-11, BasisSize: 100, Start: FitnessStart(l)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("full-dimension Arnoldi must converge in one cycle")
	}
}
