package core

import (
	"sync/atomic"
	"time"
)

// InstrumentedOperator wraps any Operator and counts applications and the
// time spent in them — the measurement hook the harness uses to attribute
// solver cost to matrix–vector products versus BLAS-1 overhead (the paper
// notes the vector summations have "almost no influence on the overall
// execution time"; this makes that checkable).
type InstrumentedOperator struct {
	Base Operator

	applies atomic.Int64
	nanos   atomic.Int64
}

// Instrument wraps op.
func Instrument(op Operator) *InstrumentedOperator {
	return &InstrumentedOperator{Base: op}
}

// Dim returns the base operator's dimension.
func (op *InstrumentedOperator) Dim() int { return op.Base.Dim() }

// Apply delegates to the base operator, recording count and duration.
func (op *InstrumentedOperator) Apply(dst, src []float64) {
	start := time.Now()
	op.Base.Apply(dst, src)
	op.nanos.Add(int64(time.Since(start)))
	op.applies.Add(1)
}

// Applies returns the number of operator applications so far.
func (op *InstrumentedOperator) Applies() int64 { return op.applies.Load() }

// Elapsed returns the cumulative time spent inside Apply.
func (op *InstrumentedOperator) Elapsed() time.Duration {
	return time.Duration(op.nanos.Load())
}

// Reset zeroes the counters.
func (op *InstrumentedOperator) Reset() {
	op.applies.Store(0)
	op.nanos.Store(0)
}

// MatvecBytes returns the main-memory traffic of one Fmmp application at
// dimension n: each of the log₂n butterfly stages reads and writes the
// full vector (16 bytes per element per stage), the roofline the paper
// invokes when it attributes GPU performance to memory bandwidth.
func MatvecBytes(n int) int64 {
	log := 0
	for 1<<log < n {
		log++
	}
	return int64(16) * int64(n) * int64(log)
}

// EffectiveBandwidth converts an instrumented Fmmp operator's counters
// into achieved bytes/second, comparable against the machine's memory
// bandwidth.
func (op *InstrumentedOperator) EffectiveBandwidth() float64 {
	el := op.Elapsed().Seconds()
	if el == 0 {
		return 0
	}
	return float64(op.Applies()*MatvecBytes(op.Dim())) / el
}
