package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/landscape"
	"repro/internal/mutation"
	"repro/internal/span"
	"repro/internal/vec"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget before the residual falls below the tolerance. The
// partial result is still returned alongside it.
var ErrNoConvergence = errors.New("core: iteration budget exhausted before convergence")

// ErrStagnated is returned when the residual stops improving above the
// tolerance — the iterate has hit the floating-point floor of the
// operator. The returned result holds the best attained eigenpair, which
// is typically accurate to near machine precision; callers that find the
// attained residual acceptable can use it directly.
var ErrStagnated = errors.New("core: residual stagnated above the tolerance (floating-point floor reached)")

// PowerOptions configures the power iteration.
type PowerOptions struct {
	// Tol is the residual threshold τ: the iteration stops when
	// R(λ̃, x̃) = ‖W·x̃ − λ̃·x̃‖₂ ≤ τ for the 2-norm-normalized iterate,
	// matching the paper's stopping criterion. Default 1e-13.
	Tol float64
	// MaxIter caps the number of matrix–vector products. Default 500000.
	MaxIter int
	// Shift is the spectral shift µ ≥ 0; the iteration runs on W − µI,
	// improving the rate from λ₁/λ₀ to (λ₁−µ)/(λ₀−µ). Use
	// ConservativeShift for the paper's provably safe choice. Default 0.
	Shift float64
	// Start is the starting vector; it is copied, not mutated. The paper
	// recommends diag(F)/‖diag(F)‖₁ (see FitnessStart). Default: uniform.
	Start []float64
	// Dev selects device-parallel BLAS-1 operations; nil runs serially.
	// (The operator's own device is configured on the operator.)
	Dev *device.Device
	// CheckEvery controls how often the residual is evaluated (every
	// iteration by default). Residual checks cost one pass over the
	// vectors but no extra operator application.
	CheckEvery int
	// StallChecks is the number of consecutive residual checks without
	// measurable improvement (relative 1e-6 — at the floating-point floor
	// the residual is flat to machine precision, while even a barely
	// converging iteration improves faster) after which the iteration
	// stops with ErrStagnated instead of burning the remaining budget.
	// Default 100; negative disables the guard.
	StallChecks int
	// Monitor, when non-nil, receives (iteration, λ̃, residual) after each
	// residual check. Returning false aborts with ErrNoConvergence.
	Monitor func(iter int, lambda, residual float64) bool
	// Observer, when non-nil, receives the solve's convergence trace: one
	// Step per residual check plus lifecycle Events (start, converged,
	// stagnated, …). Unlike Monitor it cannot abort the solve. A nil
	// Observer costs nothing — no calls, no allocations.
	Observer Observer
	// Work, when non-nil, supplies reusable iterate/product scratch so
	// repeated solves of the same dimension (sweeps, batched runs)
	// allocate nothing per solve. The returned PowerResult.Vector aliases
	// the scratch iterate — copy out whatever must survive the next solve
	// that reuses the same Work. Start may alias the scratch iterate
	// (the warm-start continuation pattern) but not the product vector.
	Work *PowerWork
}

// PowerWork is the reusable scratch of a power iteration: the iterate and
// the operator-product vector. Allocate once per solve slot with
// NewPowerWork and pass through PowerOptions.Work.
type PowerWork struct {
	x, w []float64
}

// NewPowerWork returns scratch for dimension-n solves.
func NewPowerWork(n int) *PowerWork {
	return &PowerWork{x: device.AllocVector(n), w: device.AllocVector(n)}
}

// vectors returns the iterate and product buffers, (re)sized to n.
func (pw *PowerWork) vectors(n int) (x, w []float64) {
	if len(pw.x) != n {
		pw.x = device.AllocVector(n)
	}
	if len(pw.w) != n {
		pw.w = device.AllocVector(n)
	}
	return pw.x, pw.w
}

// PowerResult is the outcome of a power iteration.
type PowerResult struct {
	// Lambda is the dominant eigenvalue estimate of the *unshifted*
	// operator.
	Lambda float64
	// Vector is the dominant eigenvector, normalized to unit 2-norm with
	// non-negative orientation.
	Vector []float64
	// Iterations is the number of operator applications performed.
	Iterations int
	// Residual is the final ‖W·x − λ·x‖₂.
	Residual float64
	// Converged reports whether Residual ≤ Tol was reached.
	Converged bool
}

// PowerIteration computes the dominant eigenpair of op with the (optionally
// shifted) power method. For the quasispecies matrices W the dominant
// eigenvalue is simple and positive (Perron–Frobenius on a positive
// matrix), so convergence from any positive start vector is guaranteed
// (Section 3). It returns the partial result with ErrNoConvergence when
// MaxIter is exhausted.
func PowerIteration(op Operator, opts PowerOptions) (PowerResult, error) {
	n := op.Dim()
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-13
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 500000
	}
	checkEvery := opts.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 1
	}
	stallChecks := opts.StallChecks
	if stallChecks == 0 {
		stallChecks = 100
	}
	mu := opts.Shift
	dev := opts.Dev

	var x, w []float64
	if opts.Work != nil {
		x, w = opts.Work.vectors(n)
	} else {
		x = device.AllocVector(n)
		w = device.AllocVector(n)
	}
	if opts.Start != nil {
		if len(opts.Start) != n {
			return PowerResult{}, fmt.Errorf("core: start vector length %d, want %d", len(opts.Start), n)
		}
		copy(x, opts.Start) // self-copy when Start aliases the scratch iterate
	} else {
		vec.Fill(x, 1)
	}
	nrm := norm2(dev, x)
	if nrm == 0 {
		return PowerResult{}, errors.New("core: start vector is zero")
	}
	scale(dev, x, 1/nrm)
	// Both hooks are hoisted: one atomic load each per solve, then plain
	// nil checks in the loop. The solve span closes in powerDone so every
	// exit path ends it without a deferred closure (which would allocate).
	sh := solveObs.Load()
	sr := span.Installed()
	var sp span.Handle
	if sr != nil {
		sp = sr.Begin(span.LayerCore, SolveKindPower)
	}
	if sh != nil {
		sh.o.SolveStart(SolveKindPower, n)
	}
	if opts.Observer != nil {
		notifyMethod(opts.Observer, SolveKindPower)
		opts.Observer.Event(EventStart, 0, mu, 0)
	}
	res := PowerResult{Vector: x}
	bestResidual := math.Inf(1)
	bestIter := 0 // iteration at which bestResidual last improved
	lastCheck := 0
	stalled := 0
	for iter := 1; iter <= maxIter; iter++ {
		ph := beginPhase(sr, PhaseMatvec)
		op.Apply(w, x)
		span.End(ph, int64(iter), 0)
		if mu != 0 {
			ph = beginPhase(sr, PhaseShift)
			axpyInto(dev, -mu, x, w) // w ← (W − µI)·x
			span.End(ph, int64(iter), 0)
		}
		res.Iterations = iter
		// Rayleigh quotient of the *shifted* operator for unit x.
		ph = beginPhase(sr, PhaseRayleigh)
		lamShifted := dot(dev, x, w)
		span.End(ph, int64(iter), 0)
		res.Lambda = lamShifted + mu
		if iter%checkEvery == 0 || iter == maxIter {
			// Residual of the shifted pair equals that of the unshifted
			// pair: Wx − λx = (W−µI)x − (λ−µ)x.
			ph = beginPhase(sr, PhaseResidual)
			r := residual(dev, w, x, lamShifted)
			span.End(ph, int64(iter), 0)
			res.Residual = r
			if sh != nil {
				sh.o.SolveStep(SolveKindPower, iter-lastCheck)
			}
			lastCheck = iter
			if opts.Observer != nil {
				opts.Observer.Step(iter, res.Lambda, r)
			}
			if r < bestResidual*(1-1e-6) {
				bestResidual = r
				bestIter = iter
				stalled = 0
			} else {
				stalled++
			}
			if opts.Monitor != nil && !opts.Monitor(iter, res.Lambda, r) {
				finish(dev, &res, x)
				powerDone(sh, sp, opts.Observer, SolveKindPower, EventAborted, n, iter, res.Lambda, r)
				return res, &ConvergenceError{
					Reason: ErrNoConvergence, Method: SolveKindPower,
					Detail:     fmt.Sprintf("aborted by monitor at iteration %d", iter),
					Iterations: iter, Residual: r, BestResidual: bestResidual,
					SinceImprovement: iter - bestIter, Shift: mu, Tol: tol,
				}
			}
			if r <= tol {
				res.Converged = true
				finish(dev, &res, x)
				powerDone(sh, sp, opts.Observer, SolveKindPower, EventConverged, n, iter, res.Lambda, r)
				return res, nil
			}
			if stallChecks > 0 && stalled >= stallChecks {
				finish(dev, &res, x)
				powerDone(sh, sp, opts.Observer, SolveKindPower, EventStagnated, n, iter, res.Lambda, r)
				return res, &ConvergenceError{
					Reason: ErrStagnated, Method: SolveKindPower,
					Iterations: iter, Residual: r, BestResidual: bestResidual,
					SinceImprovement: iter - bestIter, Shift: mu, Tol: tol,
				}
			}
		}
		ph = beginPhase(sr, PhaseNormalize)
		nrm = norm2(dev, w)
		if nrm == 0 || math.IsNaN(nrm) || math.IsInf(nrm, 0) {
			span.End(ph, int64(iter), 0)
			finish(dev, &res, x)
			powerDone(sh, sp, opts.Observer, SolveKindPower, EventBreakdown, n, iter, res.Lambda, res.Residual)
			return res, fmt.Errorf("core: iteration broke down at step %d (‖w‖ = %g)", iter, nrm)
		}
		inv := 1 / nrm
		// x ← w/‖w‖. The device closure captures branch-local copies of
		// the vectors: capturing x/w directly would make them escape and
		// cost two heap allocations per solve even on the serial path
		// (escape analysis is static), breaking the zero-alloc guarantee
		// of Work-backed sweep solves.
		if dev != nil {
			xd, wd := x, w
			dev.LaunchRange(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					xd[i] = wd[i] * inv
				}
			})
		} else {
			for i := range x {
				x[i] = w[i] * inv
			}
		}
		span.End(ph, int64(iter), 0)
	}
	finish(dev, &res, x)
	powerDone(sh, sp, opts.Observer, SolveKindPower, EventBudgetExhausted, n, res.Iterations, res.Lambda, res.Residual)
	return res, &ConvergenceError{
		Reason: ErrNoConvergence, Method: SolveKindPower,
		Iterations: res.Iterations, Residual: res.Residual, BestResidual: bestResidual,
		SinceImprovement: res.Iterations - bestIter, Shift: mu, Tol: tol,
	}
}

// powerDone emits the end-of-solve notifications to all three hook
// mechanisms, closing the solve span last so the observer callbacks are
// charged to it. sp is nil when spans were disabled at solve start.
func powerDone(sh *solveHook, sp span.Handle, obs Observer, kind, outcome string, dim, iter int, lambda, residual float64) {
	if obs != nil {
		obs.Event(outcome, iter, lambda, residual)
	}
	if sh != nil {
		sh.o.SolveDone(kind, iter, residual, outcome)
	}
	span.End(sp, int64(dim), int64(iter))
}

// beginPhase opens a core-layer phase span when a recorder was installed at
// solve start; the disabled path is a single nil check, no calls.
func beginPhase(sr span.Recorder, name string) span.Handle {
	if sr == nil {
		return nil
	}
	return sr.Begin(span.LayerCore, name)
}

func finish(dev *device.Device, res *PowerResult, x []float64) {
	orientPositive(x)
	res.Vector = x
	_ = dev
}

// orientPositive flips x so its absolutely largest entry is positive.
func orientPositive(x []float64) {
	idx, m := 0, 0.0
	for i, v := range x {
		if a := math.Abs(v); a > m {
			idx, m = i, a
		}
	}
	if x[idx] < 0 {
		vec.Scale(x, -1)
	}
}

// ConservativeShift returns the paper's provably safe shift
// µ = (1−2p)^ν · f_min for W = Q·F with a uniform-rate process: Section 3
// shows λ_min(W) ≥ (1−2p)^ν·f_min via ‖W⁻¹‖₁ ≤ ‖F⁻¹‖₁·‖Q⁻¹‖₁, so
// subtracting µ keeps λ₀ − µ the dominant eigenvalue. A positive lower
// bound on f_min (from Landscape.Bounds) yields a smaller, still-valid
// shift.
func ConservativeShift(q *mutation.Process, f landscape.Landscape) float64 {
	p, ok := q.Uniform()
	if !ok {
		// Without the closed-form inverse bound no shift is justified.
		return 0
	}
	fmin, _ := f.Bounds()
	return math.Pow(1-2*p, float64(q.ChainLen())) * fmin
}

// FitnessStart returns the paper's starting vector
// s = diag(F)/‖diag(F)‖₁, chosen because the dominant eigenvector of
// W = Q·F resembles the landscape itself (the dominant eigenvector of Q
// alone is the constant vector).
func FitnessStart(f landscape.Landscape) []float64 {
	s := landscape.Materialize(f)
	vec.Normalize1(s)
	return s
}

// UpperBoundLambda returns the paper's bound λ₀ ≤ ‖W‖₁ ≤ f_max.
func UpperBoundLambda(f landscape.Landscape) float64 {
	_, fmax := f.Bounds()
	return fmax
}

// DefaultTolerance returns a residual tolerance matched to the attainable
// floating-point floor of the problem: ‖W·x − λx‖₂ for a unit-norm x
// cannot reliably drop below ≈ ε·‖W‖·√N of accumulated rounding, so the
// default is max(1e−12, 64·ε·f_max·√N). Pass an explicit tolerance to
// override.
func DefaultTolerance(f landscape.Landscape) float64 {
	_, fmax := f.Bounds()
	floor := 64 * 2.220446049250313e-16 * fmax * math.Sqrt(float64(f.Dim()))
	return math.Max(1e-12, floor)
}

// ---------------------------------------------------------------------------
// device-or-serial BLAS-1 helpers

func dot(dev *device.Device, x, y []float64) float64 {
	if dev != nil {
		return dev.Dot(x, y)
	}
	return vec.Dot(x, y)
}

func norm2(dev *device.Device, x []float64) float64 {
	if dev != nil {
		return dev.Norm2(x)
	}
	return vec.Norm2(x)
}

func scale(dev *device.Device, x []float64, a float64) {
	if dev != nil {
		dev.Scale(x, a)
	} else {
		vec.Scale(x, a)
	}
}

func residual(dev *device.Device, w, x []float64, lambda float64) float64 {
	if dev != nil {
		return dev.ResidualNorm2(w, x, lambda)
	}
	var s float64
	for i, wi := range w {
		r := wi - lambda*x[i]
		s += r * r
	}
	return math.Sqrt(s)
}
